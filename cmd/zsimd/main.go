// Command zsimd is the zsim simulation daemon: an HTTP/JSON job service that
// runs bound-weave simulations through a bounded worker pool with per-job
// deadlines, cooperative cancellation, panic isolation and graceful drain.
//
// API (JSON bodies everywhere):
//
//	POST /jobs              submit a job; 202 + status, or 503 + Retry-After when shedding
//	GET  /jobs              list all jobs
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  job result (409 until finished; partial metrics on failures)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /healthz           liveness plus queue/worker/pool gauges
//	GET  /readyz            readiness (503 while draining)
//	GET  /metrics           Prometheus text exposition (plain text, not JSON)
//	GET  /debug/pprof/      net/http/pprof profiles (only with -pprof)
//
// SIGTERM/SIGINT stop admission, let in-flight jobs finish within -grace,
// then cooperatively cancel whatever remains (those jobs report partial
// metrics) and flush the audit log before exiting.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zsim/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is main without the process-global bits, so the integration test can
// drive a real daemon (including its signal handling) in-process. onReady, if
// non-nil, receives the bound address once the server is accepting.
func run(args []string, stderr io.Writer, onReady func(net.Addr)) int {
	fs := flag.NewFlagSet("zsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port)")
		workers    = fs.Int("workers", 1, "concurrent simulation workers")
		queueDepth = fs.Int("queue", 16, "admission queue depth (full queue sheds with 503)")
		jobTimeout = fs.Duration("job-timeout", 0, "default per-job wall-time budget (0 = unlimited)")
		grace      = fs.Duration("grace", 10*time.Second, "shutdown grace period before in-flight jobs are cancelled")
		auditPath  = fs.String("audit", "", "append-only JSONL audit log file (empty = disabled)")
		poolSize   = fs.Int("pool-size", 8, "warm-simulator pool: total simulators retained across shapes (0 = disabled)")
		poolShape  = fs.Int("pool-per-shape", 2, "warm-simulator pool: simulators retained per configuration shape")
		pprofOn    = fs.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var auditW io.Writer
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "zsimd:", err)
			return 1
		}
		defer f.Close()
		auditW = f
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "zsimd:", err)
		return 1
	}
	srv := serve.New(serve.Options{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		JobTimeout:   *jobTimeout,
		Audit:        auditW,
		PoolSize:     *poolSize,
		PoolPerShape: *poolShape,
		Pprof:        *pprofOn,
	})
	httpSrv := &http.Server{Handler: srv}

	fmt.Fprintf(stderr, "zsimd: listening on %s (workers=%d queue=%d pool=%d)\n", ln.Addr(), *workers, *queueDepth, *poolSize)
	if onReady != nil {
		onReady(ln.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "zsimd:", err)
		srv.Shutdown(0)
		return 1
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "zsimd: received %v, draining (grace %s)\n", sig, *grace)
		// Stop accepting connections first, then drain the job queue. The
		// HTTP close is immediate (job execution is asynchronous, handlers
		// are short-lived); the job drain honours the grace period.
		_ = httpSrv.Close()
		srv.Shutdown(*grace)
		fmt.Fprintln(stderr, "zsimd: drained, exiting")
		return 0
	}
}
