// Command zsimd is the zsim simulation daemon: an HTTP/JSON job service that
// runs bound-weave simulations through a bounded worker pool with per-job
// deadlines, cooperative cancellation, panic isolation and graceful drain.
//
// API (JSON bodies everywhere):
//
//	POST /jobs              submit a job; 202 + status, or 503 + Retry-After when shedding
//	GET  /jobs              list retained jobs
//	GET  /jobs/{id}         job status (410 once evicted by -retain)
//	GET  /jobs/{id}/result  job result (409 until finished; partial metrics on failures)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	POST /campaigns         submit a design-space sweep (base job × axes)
//	GET  /campaigns         list campaigns
//	GET  /campaigns/{id}    campaign progress + live aggregates (curves, percentiles)
//	POST /campaigns/{id}/cancel  stop a campaign; outstanding children are cancelled
//	GET  /results           query recent result rows (?campaign= ?shape= ?outcome= ?job= ?limit=)
//	GET  /healthz           liveness plus queue/worker/pool/store gauges
//	GET  /readyz            readiness (503 while draining)
//	GET  /metrics           Prometheus text exposition (plain text, not JSON)
//	GET  /debug/pprof/      net/http/pprof profiles (only with -pprof)
//
// Jobs are admitted by priority class ("high"/"normal"/"low"): campaign
// children default to low so sweeps cannot starve interactive jobs, and shed
// responses derive Retry-After from queue depth and observed job latency.
//
// SIGTERM/SIGINT stop admission, let in-flight jobs finish within -grace,
// then cooperatively cancel whatever remains (those jobs report partial
// metrics) and flush the audit log before exiting.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zsim"
	"zsim/internal/serve"
)

// loadPrewarmConfigs reads a -prewarm file: one config object, or an array of
// them. Each config goes through the same strict decoding as -config files
// (unknown fields rejected).
func loadPrewarmConfigs(path string) ([]*zsim.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("prewarm: %w", err)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var cfgs []*zsim.Config
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(data, &cfgs); err != nil {
			return nil, fmt.Errorf("prewarm %s: %w", path, err)
		}
	} else {
		var cfg zsim.Config
		if err := json.Unmarshal(data, &cfg); err != nil {
			return nil, fmt.Errorf("prewarm %s: %w", path, err)
		}
		cfgs = []*zsim.Config{&cfg}
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("prewarm %s: no configs", path)
	}
	return cfgs, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is main without the process-global bits, so the integration test can
// drive a real daemon (including its signal handling) in-process. onReady, if
// non-nil, receives the bound address once the server is accepting.
func run(args []string, stderr io.Writer, onReady func(net.Addr)) int {
	fs := flag.NewFlagSet("zsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8347", "listen address (use :0 for an ephemeral port)")
		workers    = fs.Int("workers", 1, "concurrent simulation workers")
		queueDepth = fs.Int("queue", 16, "admission queue depth (full queue sheds with 503)")
		jobTimeout = fs.Duration("job-timeout", 0, "default per-job wall-time budget (0 = unlimited)")
		grace      = fs.Duration("grace", 10*time.Second, "shutdown grace period before in-flight jobs are cancelled")
		auditPath  = fs.String("audit", "", "append-only JSONL audit log file (empty = disabled)")
		poolSize   = fs.Int("pool-size", 8, "warm-simulator pool: total simulators retained across shapes (0 = disabled)")
		poolShape  = fs.Int("pool-per-shape", 2, "warm-simulator pool: simulators retained per configuration shape")
		poolExpiry = fs.Duration("pool-idle-expiry", 0, "close pooled simulators idle longer than this (0 = never)")
		prewarm    = fs.String("prewarm", "", "JSON file with a config (or array of configs) to pre-build warm simulators for at startup")
		retain     = fs.Int("retain", 1024, "terminal jobs kept addressable via GET /jobs/{id} (older ones evict to the result store; -1 = unlimited)")
		storeSize  = fs.Int("store-size", 4096, "result rows retained in the in-memory store ring")
		campPoints = fs.Int("campaign-points", 0, "max points per campaign expansion (0 = default 10000)")
		pprofOn    = fs.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var auditW io.Writer
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "zsimd:", err)
			return 1
		}
		defer f.Close()
		auditW = f
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "zsimd:", err)
		return 1
	}
	srv := serve.New(serve.Options{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		JobTimeout:        *jobTimeout,
		Audit:             auditW,
		PoolSize:          *poolSize,
		PoolPerShape:      *poolShape,
		PoolIdleExpiry:    *poolExpiry,
		RetainJobs:        *retain,
		StoreSize:         *storeSize,
		MaxCampaignPoints: *campPoints,
		Pprof:             *pprofOn,
	})
	if *prewarm != "" {
		cfgs, err := loadPrewarmConfigs(*prewarm)
		if err == nil {
			var n int
			n, err = srv.Prewarm(cfgs)
			fmt.Fprintf(stderr, "zsimd: prewarmed %d/%d configs\n", n, len(cfgs))
		}
		if err != nil {
			fmt.Fprintln(stderr, "zsimd:", err)
			srv.Shutdown(0)
			return 1
		}
	}
	httpSrv := &http.Server{Handler: srv}

	fmt.Fprintf(stderr, "zsimd: listening on %s (workers=%d queue=%d pool=%d)\n", ln.Addr(), *workers, *queueDepth, *poolSize)
	if onReady != nil {
		onReady(ln.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(stderr, "zsimd:", err)
		srv.Shutdown(0)
		return 1
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "zsimd: received %v, draining (grace %s)\n", sig, *grace)
		// Stop accepting connections first, then drain the job queue. The
		// HTTP close is immediate (job execution is asynchronous, handlers
		// are short-lived); the job drain honours the grace period.
		_ = httpSrv.Close()
		srv.Shutdown(*grace)
		fmt.Fprintln(stderr, "zsimd: drained, exiting")
		return 0
	}
}
