package main

// Daemon-level campaign coverage: the -prewarm flag path, and a SIGTERM
// delivered mid-sweep. The drain must cancel the outstanding children, write
// a campaign-drain audit record carrying the final CampaignStatus, and
// archive the children's result rows — the audit file is what an operator
// replays to resume or post-mortem an interrupted sweep.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"zsim/internal/campaign"
	"zsim/internal/config"
	"zsim/internal/serve"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the daemon goroutine writes
// its stderr while the test reads it, so the plain buffer would race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// smallConfigJSON serializes the validated small preset, for prewarm files.
func smallConfigJSON(t *testing.T) []byte {
	t.Helper()
	cfg := config.SmallTest()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadPrewarmConfigs(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	one := smallConfigJSON(t)

	if _, err := loadPrewarmConfigs(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatalf("missing file accepted")
	}
	if _, err := loadPrewarmConfigs(write("bad.json", []byte("{nope"))); err == nil {
		t.Fatalf("malformed JSON accepted")
	}
	if _, err := loadPrewarmConfigs(write("unknown.json", []byte(`{"definitelyNotAField":1}`))); err == nil {
		t.Fatalf("unknown fields accepted — prewarm decoding is not strict")
	}
	if _, err := loadPrewarmConfigs(write("empty.json", []byte("  []"))); err == nil {
		t.Fatalf("empty array accepted")
	}
	cfgs, err := loadPrewarmConfigs(write("one.json", one))
	if err != nil || len(cfgs) != 1 {
		t.Fatalf("single object: %d configs, err %v", len(cfgs), err)
	}
	var arr bytes.Buffer
	arr.WriteString("[")
	arr.Write(one)
	arr.WriteString(",")
	arr.Write(one)
	arr.WriteString("]")
	cfgs, err = loadPrewarmConfigs(write("two.json", arr.Bytes()))
	if err != nil || len(cfgs) != 2 {
		t.Fatalf("array form: %d configs, err %v", len(cfgs), err)
	}
}

func TestDaemonBadPrewarmExits(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{
		"-addr", "127.0.0.1:0",
		"-prewarm", filepath.Join(t.TempDir(), "missing.json"),
	}, &stderr, nil)
	if code != 1 {
		t.Fatalf("bad -prewarm: exit %d, want 1; stderr: %s", code, stderr.String())
	}
}

func TestDaemonCampaignSIGTERMDrain(t *testing.T) {
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.jsonl")
	prewarmPath := filepath.Join(dir, "prewarm.json")
	if err := os.WriteFile(prewarmPath, smallConfigJSON(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var stderr syncBuffer

	addrCh := make(chan net.Addr, 1)
	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "1",
			"-queue", "8",
			"-grace", "50ms",
			"-audit", auditPath,
			"-prewarm", prewarmPath,
			"-pool-size", "2",
		}, &stderr, func(a net.Addr) { addrCh <- a })
	}()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "prewarmed 1/1") {
		t.Fatalf("prewarm not reported: %s", stderr.String())
	}

	// A sweep of endless children: only the drain can stop it.
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(&serve.CampaignRequest{
		Name: "daemon-sweep",
		Base: serve.JobRequest{
			Workloads: []serve.WorkloadSpec{{Name: "blackscholes", Threads: 1, Blocks: 1 << 30}},
		},
		Axes:  campaign.Axes{Seeds: []uint64{1, 2, 3}},
		Quota: 1,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/campaigns", "application/json", &body)
	if err != nil {
		t.Fatalf("submit campaign: %v", err)
	}
	var camp serve.CampaignStatus
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit campaign: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&camp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if camp.Points != 3 {
		t.Fatalf("campaign expanded to %d points, want 3", camp.Points)
	}

	// Wait until at least one child has been released to the queue, so the
	// SIGTERM lands mid-sweep.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/campaigns/" + camp.ID)
		if err != nil {
			t.Fatalf("poll campaign: %v", err)
		}
		var st serve.CampaignStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Released >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never released a child: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("daemon exited %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM; stderr: %s", stderr.String())
	}

	// The audit file must carry the campaign's full story: the submission,
	// the drain record with the final status, and the children's result rows.
	data, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	var (
		events     = make(map[string]int)
		drainBody  string
		resultRows int
	)
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var rec struct {
			Event  string           `json:"event"`
			Job    string           `json:"job"`
			Detail string           `json:"detail"`
			Result *serve.ResultRow `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad audit line %q: %v", sc.Text(), err)
		}
		events[rec.Event]++
		if rec.Event == "campaign-drain" && rec.Job == camp.ID {
			drainBody = rec.Detail
		}
		if rec.Event == "result" && rec.Result != nil && rec.Result.Campaign == camp.ID {
			resultRows++
		}
	}
	for _, want := range []string{"prewarm", "campaign", "campaign-drain", "shutdown", "drained"} {
		if events[want] == 0 {
			t.Fatalf("audit log missing %q event: %v", want, events)
		}
	}
	if drainBody == "" {
		t.Fatalf("no campaign-drain record for %s in audit log:\n%s", camp.ID, data)
	}
	var final serve.CampaignStatus
	if err := json.Unmarshal([]byte(drainBody), &final); err != nil {
		t.Fatalf("campaign-drain detail is not a CampaignStatus: %v\n%s", err, drainBody)
	}
	if final.Name != "daemon-sweep" || final.Points != 3 || final.Outstanding != 0 {
		t.Fatalf("drained campaign status: %+v", final)
	}
	if resultRows == 0 {
		t.Fatalf("no result rows archived for campaign %s", camp.ID)
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatalf("daemon still serving after drain")
	}
}
