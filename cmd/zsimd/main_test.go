package main

// End-to-end daemon test: boots the real zsimd entrypoint (flag parsing,
// listener, signal handling, audit file) in-process on an ephemeral port,
// hammers it with concurrent submits and cancels, then delivers a real
// SIGTERM and verifies the graceful drain — exit code 0, every admitted job
// in a terminal state, and a complete audit trail on disk.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"zsim/internal/serve"
)

func TestDaemonLifecycleAndSIGTERMDrain(t *testing.T) {
	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	var stderr bytes.Buffer

	addrCh := make(chan net.Addr, 1)
	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-queue", "8",
			"-grace", "50ms",
			"-audit", auditPath,
		}, &stderr, func(a net.Addr) { addrCh <- a })
	}()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}

	// Liveness and readiness up front.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
	}

	// Concurrent submits: a mix of quick jobs, cancelled jobs, and one
	// endless job that only the SIGTERM drain can stop.
	submit := func(req *serve.JobRequest) (serve.JobStatus, int) {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(req); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/jobs", "application/json", &buf)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		defer resp.Body.Close()
		var st serve.JobStatus
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
		}
		return st, resp.StatusCode
	}

	endless, code := submit(&serve.JobRequest{
		Workloads: []serve.WorkloadSpec{{Name: "blackscholes", Threads: 2, Blocks: 1 << 30}},
	})
	if code != http.StatusAccepted {
		t.Fatalf("endless submit: HTTP %d", code)
	}

	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code := submit(&serve.JobRequest{
				Workloads: []serve.WorkloadSpec{{Name: "blackscholes", Threads: 1, Blocks: 30}},
				Seed:      uint64(i + 1),
			})
			if code != http.StatusAccepted {
				return // shed under load is legitimate
			}
			mu.Lock()
			ids = append(ids, st.ID)
			mu.Unlock()
			if i%2 == 0 {
				resp, err := http.Post(base+"/jobs/"+st.ID+"/cancel", "application/json", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
		}(i)
	}
	wg.Wait()
	ids = append(ids, endless.ID)

	// Deliver a real SIGTERM to ourselves; the daemon's handler must catch
	// it, drain within the grace, cancel the endless job, and return 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("daemon exited %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM; stderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Fatalf("drain not reported: %s", stderr.String())
	}

	// The audit file is the post-mortem record: every admitted job must have
	// reached a terminal state (finish event), and the shutdown/drained
	// markers must be present and flushed to disk.
	data, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	finished := make(map[string]string)
	events := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var rec struct {
			Event string `json:"event"`
			Job   string `json:"job"`
			State string `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad audit line %q: %v", sc.Text(), err)
		}
		events[rec.Event]++
		if rec.Event == "finish" {
			finished[rec.Job] = rec.State
		}
	}
	for _, id := range ids {
		state, ok := finished[id]
		if !ok {
			t.Fatalf("job %s has no finish record in the audit log:\n%s", id, data)
		}
		if state != serve.StateSucceeded && state != serve.StateCancelled {
			t.Fatalf("job %s drained in state %q", id, state)
		}
	}
	if finished[endless.ID] != serve.StateCancelled {
		t.Fatalf("endless job should be cancelled by the drain, got %q", finished[endless.ID])
	}
	for _, want := range []string{"serve", "shutdown", "drained"} {
		if events[want] == 0 {
			t.Fatalf("audit log missing %q event: %v", want, events)
		}
	}

	// The daemon is gone: the port no longer accepts.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatalf("daemon still serving after drain")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stderr, nil); code != 2 {
		t.Fatalf("bad flags: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:bogus"}, &stderr, nil); code != 1 {
		t.Fatalf("bad address: exit %d, want 1", code)
	}
}
