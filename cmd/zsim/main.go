// Command zsim runs one configuration-driven simulation: it loads a system
// description (JSON) or one of the built-in presets, attaches a named
// workload, runs the bound-weave simulation and prints the results and,
// optionally, the full statistics tree.
//
// Examples:
//
//	zsim -preset westmere -workload mcf -threads 1
//	zsim -preset tiled -tiles 16 -workload fluidanimate -threads 256 -stats
//	zsim -config mychip.json -workload stream -threads 8 -max-instrs 50000000
//	zsim -preset tiled -tiles 16 -workload stream -threads 64 -progress -trace-out run.trace.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"zsim"
)

func main() {
	var (
		configPath = flag.String("config", "", "JSON system configuration file (overrides -preset)")
		preset     = flag.String("preset", "westmere", "built-in preset: westmere, tiled, small")
		tiles      = flag.Int("tiles", 4, "number of 16-core tiles for the tiled preset")
		coreModel  = flag.String("cores", "ooo", "core model for the tiled preset: ooo or ipc1")
		workload   = flag.String("workload", "blackscholes", "named workload (see -list)")
		threads    = flag.Int("threads", 1, "software threads of the workload")
		maxInstrs  = flag.Uint64("max-instrs", 0, "stop after this many simulated instructions (0 = run to completion)")
		hostThr    = flag.Int("host-threads", 0, "host worker threads (0 = all CPUs)")
		blocks     = flag.Int("blocks", 0, "override the workload's per-thread basic-block budget")
		nocCont    = flag.Bool("noc", false, "enable weave-phase NoC contention (implies the weave phase; routed topologies only)")
		domains    = flag.Int("domains", 0, "weave domain count (0 = config default)")
		weaveMode  = flag.String("weave-mode", "", "weave execution mode: parallel (deterministic bounded-skew domains, the default) or serial (single-heap escape hatch)")
		linkBytes  = flag.Int("noc-link-bytes", 0, "NoC link width in bytes (0 = config default)")
		statsDump  = flag.Bool("stats", false, "dump the full statistics tree after the run")
		list       = flag.Bool("list", false, "list the registered workloads and exit")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = unlimited); an overrun exits non-zero with partial results")
		progress   = flag.Bool("progress", false, "print a live progress heartbeat on stderr while the run executes")
		progEvery  = flag.Duration("progress-interval", 2*time.Second, "heartbeat period for -progress")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON file of the run's phases and weave domains (load in Perfetto)")
		traceCap   = flag.Int("trace-events", 0, "trace-event capacity for -trace-out (0 = default bound; excess events are dropped and counted)")
	)
	flag.Parse()

	if *list {
		for _, n := range zsim.NamedWorkloads() {
			fmt.Println(n)
		}
		return
	}

	cfg, err := loadConfig(*configPath, *preset, *tiles, *coreModel)
	if err != nil {
		fatal(err)
	}
	if *nocCont {
		// NoC contention is a weave-phase model: enabling it implies the
		// weave phase itself, so -noc on a contention-off preset (small)
		// does not silently no-op.
		cfg.NOCContention = true
		cfg.Contention = true
	}
	if *linkBytes > 0 {
		cfg.NOCLinkBytes = *linkBytes
	}
	if *timeout > 0 {
		cfg.MaxWallTime = *timeout
	}
	if *domains > 0 {
		cfg.WeaveDomains = *domains
	}
	if *weaveMode != "" {
		cfg.WeaveModeKind = zsim.WeaveMode(*weaveMode)
	}
	sim, err := zsim.New(cfg)
	if err != nil {
		fatal(err)
	}
	params, ok := zsim.LookupWorkload(*workload)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q (use -list)", *workload))
	}
	if *blocks > 0 {
		params.BlocksPerThread = *blocks
	}
	sim.AddWorkload(*workload, params, *threads)
	sim.SetMaxInstructions(*maxInstrs)
	sim.SetHostThreads(*hostThr)

	var sink *zsim.TraceSink
	if *traceOut != "" {
		sink = zsim.NewTraceSink(*traceCap)
		sim.SetTrace(sink)
	}
	stopHeartbeat := func() {}
	if *progress {
		stopHeartbeat = zsim.StartHeartbeat(os.Stderr, sim.Probe(), "zsim: ", *progEvery)
	}

	res, err := sim.Run()
	stopHeartbeat() // always prints one final line, even for sub-period runs
	if sink != nil {
		if werr := writeTrace(*traceOut, sink); werr != nil {
			fmt.Fprintln(os.Stderr, "zsim: trace-out:", werr)
		}
	}
	if err != nil {
		// Abnormal stops still carry partial results: print the diagnostic
		// and whatever was simulated, then exit non-zero so scripts notice.
		var re *zsim.RunError
		if !errors.As(err, &re) {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, re.Error()) // message already carries the zsim: prefix
		switch re.Reason {
		case zsim.Deadlocked:
			fmt.Fprintln(os.Stderr, "zsim: the workload deadlocked: no thread is runnable and none can be"+
				" woken by simulated time (lock cycle or unmatched barrier)")
		case zsim.DeadlineExceeded:
			fmt.Fprintf(os.Stderr, "zsim: the run exceeded its -timeout of %v; partial results below\n", *timeout)
		}
		fmt.Println(res.Summary())
		os.Exit(1)
	}
	fmt.Println(res.Summary())
	if *statsDump {
		if err := sim.WriteStats(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func loadConfig(path, preset string, tiles int, coreModel string) (*zsim.Config, error) {
	if path != "" {
		return zsim.LoadConfigFile(path)
	}
	switch preset {
	case "westmere":
		return zsim.WestmereConfig(), nil
	case "tiled":
		return zsim.TiledConfig(tiles, coreModel), nil
	case "small":
		return zsim.SmallConfig(), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}

// writeTrace exports the run's trace slices as Chrome trace-event JSON.
func writeTrace(path string, sink *zsim.TraceSink) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sink.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zsim:", err)
	os.Exit(1)
}
