package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"zsim/internal/campaign"
	"zsim/internal/harness"
	"zsim/internal/serve"
)

// runSweep is the submit-to-daemon mode: it POSTs a core-count scaling
// campaign to a running zsimd (-daemon URL), polls the campaign until it
// finishes, and prints the per-axis scaling curve and latency aggregates the
// daemon computed — the paper's design-space-exploration loop driven through
// the service API instead of in-process.
func runSweep(daemon string, opts harness.Options, stdout io.Writer) error {
	blocks := int(300 * opts.Scale)
	if blocks < 20 {
		blocks = 20
	}
	cores := []int{1, 2, 4, 8}
	kept := cores[:0]
	for _, c := range cores {
		if c <= opts.MaxCores {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		kept = []int{1}
	}
	req := serve.CampaignRequest{
		Name: "zsimexp-sweep",
		Base: serve.JobRequest{
			Preset:      "small",
			Workloads:   []serve.WorkloadSpec{{Name: "fluidanimate", Threads: 1, Blocks: blocks}},
			Seed:        7,
			HostThreads: opts.HostThreads,
		},
		Axes: campaign.Axes{Cores: kept},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(daemon+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("sweep: submit: %w", err)
	}
	var status serve.CampaignStatus
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("sweep: submit: daemon answered %s", resp.Status)
	}
	if err != nil {
		return fmt.Errorf("sweep: submit: %w", err)
	}

	deadline := time.Now().Add(10 * time.Minute)
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	for status.State == "running" {
		if time.Now().After(deadline) {
			return fmt.Errorf("sweep: %s still %s after deadline (%d/%d points)",
				status.ID, status.State, status.Done, status.Points)
		}
		time.Sleep(100 * time.Millisecond)
		resp, err := client.Get(daemon + "/campaigns/" + status.ID)
		if err != nil {
			return fmt.Errorf("sweep: poll: %w", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("sweep: poll: %w", err)
		}
	}

	fmt.Fprintf(stdout, "Campaign %s (%s): %d points, %d shapes, state %s\n",
		status.ID, status.Name, status.Points, status.Shapes, status.State)
	if status.Summary == nil {
		return fmt.Errorf("sweep: daemon returned no summary")
	}
	if l := status.Summary.Latency; l != nil {
		fmt.Fprintf(stdout, "latency: n=%d mean=%.3fs p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs\n",
			l.Count, l.Mean, l.P50, l.P90, l.P99, l.Max)
	}
	for _, curve := range status.Summary.Curves {
		fmt.Fprintf(stdout, "%-10s %6s %14s %10s %10s %8s\n", curve.Axis, "done", "meanCycles", "IPC", "simMIPS", "speedup")
		for _, p := range curve.Points {
			fmt.Fprintf(stdout, "%-10s %6d %14.0f %10.3f %10.2f %8.2f\n",
				p.Value, p.Done, p.MeanCycles, p.MeanIPC, p.MeanSimMIPS, p.Speedup)
		}
	}
	return nil
}
