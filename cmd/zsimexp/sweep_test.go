package main

// Tests for the sweep experiment: the zsimexp → zsimd client loop, driven
// against a real in-process serve.Server over live HTTP. Covers the flag
// guard, the full submit/poll/print cycle, and the unreachable-daemon path.

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"zsim/internal/serve"
)

func TestSweepNeedsDaemonFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := cliMain([]string{"sweep"}, &stdout, &stderr); code != 2 {
		t.Fatalf("sweep without -daemon: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-daemon") {
		t.Fatalf("usage error does not mention -daemon: %s", stderr.String())
	}
}

func TestSweepUnreachableDaemon(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// A closed server: the URL is syntactically fine but refuses connections.
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close()
	if code := cliMain([]string{"-daemon", url, "sweep"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unreachable daemon: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "sweep: submit") {
		t.Fatalf("error does not name the failing step: %s", stderr.String())
	}
}

func TestSweepEndToEnd(t *testing.T) {
	srv := serve.New(serve.Options{
		Workers:      2,
		QueueDepth:   8,
		PoolSize:     4,
		PoolPerShape: 2,
	})
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Shutdown(0)
	}()

	var stdout, stderr bytes.Buffer
	code := cliMain([]string{"-scale", "0.1", "-max-cores", "2", "-host-threads", "2",
		"-daemon", ts.URL, "sweep"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("sweep exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()

	// The header reports the daemon's view: 2 points (cores 1 and 2 after the
	// -max-cores cap), finished.
	if !strings.Contains(out, "2 points") || !strings.Contains(out, "state done") {
		t.Fatalf("sweep header wrong:\n%s", out)
	}
	// Latency aggregates over both points.
	if !strings.Contains(out, "latency: n=2") {
		t.Fatalf("latency line missing or wrong count:\n%s", out)
	}
	// The cores scaling curve, one row per value, every row complete.
	if !strings.Contains(out, "cores") || !strings.Contains(out, "speedup") {
		t.Fatalf("curve table missing:\n%s", out)
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && (fields[0] == "1" || fields[0] == "2") {
			rows++
			if fields[1] != "1" {
				t.Errorf("curve row for cores=%s reports done=%s, want 1: %q", fields[0], fields[1], line)
			}
		}
	}
	if rows != 2 {
		t.Fatalf("curve rows = %d, want 2 (cores 1 and 2):\n%s", rows, out)
	}
}
