// Command zsimexp regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the same rows or series the
// paper reports; EXPERIMENTS.md records a full run.
//
// Usage:
//
//	zsimexp [-scale 1.0] [-max-cores 1024] [-host-threads N] <experiment>
//
// Experiments: table2, table3, fig2, fig5, fig6perf, fig6speedup, fig6stream,
// table4, fig7, fig8, fig9, intervals, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"zsim/internal/config"
	"zsim/internal/harness"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// cliMain is main without the process-global bits, so tests can drive the
// full flag-parse/run/print path in-process and capture both streams.
func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zsimexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale    = fs.Float64("scale", 0.25, "instruction-budget scale factor (1.0 = full EXPERIMENTS.md sizes)")
		maxCores = fs.Int("max-cores", 1024, "cap on the simulated core count for the large-chip experiments")
		hostThr  = fs.Int("host-threads", 0, "host worker threads (0 = all CPUs)")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
		timeout  = fs.Duration("timeout", 0, "per-run wall-clock budget (0 = unlimited); an overrun fails the experiment instead of hanging it")
		domains  = fs.Int("domains", 0, "override the weave domain count for every run (0 = per-experiment default)")
		weave    = fs.String("weave-mode", "", "weave execution mode for every run: parallel (deterministic bounded-skew domains, the default) or serial (single-heap escape hatch)")
		progress = fs.Bool("progress", false, "print a live per-run heartbeat on stderr (phase, intervals, cycles, sim-MIPS)")
		progIvl  = fs.Duration("progress-interval", 2*time.Second, "heartbeat period for -progress")
		daemon   = fs.String("daemon", "", "zsimd base URL (e.g. http://127.0.0.1:8347); required by the sweep experiment, which runs through the daemon instead of in-process")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: zsimexp [flags] <table2|table3|fig2|fig5|fig6perf|fig6speedup|fig6stream|table4|fig7|fig8|fig9|intervals|meshhotspot|sweep|all>")
		return 2
	}
	if fs.Arg(0) == "sweep" {
		if *daemon == "" {
			fmt.Fprintln(stderr, "zsimexp: sweep needs -daemon URL (a running zsimd)")
			return 2
		}
		opts := harness.Options{Scale: *scale, MaxCores: *maxCores, HostThreads: *hostThr, Timeout: *timeout}
		if err := runSweep(*daemon, opts, stdout); err != nil {
			fmt.Fprintln(stderr, "zsimexp:", err)
			return 1
		}
		return 0
	}
	opts := harness.Options{Scale: *scale, MaxCores: *maxCores, HostThreads: *hostThr, Timeout: *timeout,
		WeaveDomains: *domains, WeaveMode: config.WeaveMode(*weave)}
	if *weave != "" && *weave != string(config.WeaveParallelDet) && *weave != string(config.WeaveSerial) {
		fmt.Fprintf(stderr, "zsimexp: unknown -weave-mode %q (want parallel or serial)\n", *weave)
		return 2
	}
	if *progress {
		opts.Progress = stderr
		opts.ProgressPeriod = *progIvl
	}
	if !*quiet {
		opts.Log = stderr
		mode := *weave
		if mode == "" {
			mode = string(config.WeaveParallelDet)
		}
		dom := "per-experiment default"
		if *domains > 0 {
			dom = fmt.Sprintf("%d", *domains)
		}
		fmt.Fprintf(stderr, "weave: mode=%s domains=%s\n", mode, dom)
	}

	if err := run(fs.Arg(0), opts, stdout); err != nil {
		fmt.Fprintln(stderr, "zsimexp:", err)
		return 1
	}
	return 0
}

func run(name string, opts harness.Options, stdout io.Writer) error {
	type formatter interface{ Format() string }
	emit := func(r formatter, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Format())
		return nil
	}
	switch name {
	case "table2":
		fmt.Fprintln(stdout, harness.Table2())
	case "table3":
		fmt.Fprintln(stdout, harness.Table3(64))
	case "fig2":
		return emit(harness.Figure2(opts))
	case "fig5":
		return emit(harness.Figure5(opts))
	case "fig6perf":
		return emit(harness.Figure6Perf(opts))
	case "fig6speedup":
		return emit(harness.Figure6Speedup(opts))
	case "fig6stream":
		return emit(harness.Figure6Stream(opts))
	case "table4":
		return emit(harness.Table4(opts))
	case "fig7":
		return emit(harness.Figure7(opts))
	case "fig8":
		return emit(harness.Figure8(opts, ""))
	case "fig9":
		return emit(harness.Figure9(opts))
	case "intervals":
		return emit(harness.IntervalSensitivity(opts, ""))
	case "meshhotspot":
		return emit(harness.MeshHotspot(opts))
	case "all":
		fmt.Fprintln(stdout, harness.Table2())
		fmt.Fprintln(stdout, harness.Table3(64))
		for _, exp := range []string{"fig2", "fig5", "fig6perf", "fig6speedup", "fig6stream", "table4", "fig7", "fig8", "fig9", "intervals", "meshhotspot"} {
			if err := run(exp, opts, stdout); err != nil {
				return fmt.Errorf("%s: %w", exp, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
