// Command zsimexp regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the same rows or series the
// paper reports; EXPERIMENTS.md records a full run.
//
// Usage:
//
//	zsimexp [-scale 1.0] [-max-cores 1024] [-host-threads N] <experiment>
//
// Experiments: table2, table3, fig2, fig5, fig6perf, fig6speedup, fig6stream,
// table4, fig7, fig8, fig9, intervals, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"zsim/internal/config"
	"zsim/internal/harness"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.25, "instruction-budget scale factor (1.0 = full EXPERIMENTS.md sizes)")
		maxCores = flag.Int("max-cores", 1024, "cap on the simulated core count for the large-chip experiments")
		hostThr  = flag.Int("host-threads", 0, "host worker threads (0 = all CPUs)")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
		timeout  = flag.Duration("timeout", 0, "per-run wall-clock budget (0 = unlimited); an overrun fails the experiment instead of hanging it")
		domains  = flag.Int("domains", 0, "override the weave domain count for every run (0 = per-experiment default)")
		weave    = flag.String("weave-mode", "", "weave execution mode for every run: parallel (deterministic bounded-skew domains, the default) or serial (single-heap escape hatch)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: zsimexp [flags] <table2|table3|fig2|fig5|fig6perf|fig6speedup|fig6stream|table4|fig7|fig8|fig9|intervals|meshhotspot|all>")
		os.Exit(2)
	}
	opts := harness.Options{Scale: *scale, MaxCores: *maxCores, HostThreads: *hostThr, Timeout: *timeout,
		WeaveDomains: *domains, WeaveMode: config.WeaveMode(*weave)}
	if *weave != "" && *weave != string(config.WeaveParallelDet) && *weave != string(config.WeaveSerial) {
		fmt.Fprintf(os.Stderr, "zsimexp: unknown -weave-mode %q (want parallel or serial)\n", *weave)
		os.Exit(2)
	}
	if !*quiet {
		opts.Log = os.Stderr
		mode := *weave
		if mode == "" {
			mode = string(config.WeaveParallelDet)
		}
		dom := "per-experiment default"
		if *domains > 0 {
			dom = fmt.Sprintf("%d", *domains)
		}
		fmt.Fprintf(os.Stderr, "weave: mode=%s domains=%s\n", mode, dom)
	}

	if err := run(flag.Arg(0), opts); err != nil {
		fmt.Fprintln(os.Stderr, "zsimexp:", err)
		os.Exit(1)
	}
}

func run(name string, opts harness.Options) error {
	type formatter interface{ Format() string }
	emit := func(r formatter, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	}
	switch name {
	case "table2":
		fmt.Println(harness.Table2())
	case "table3":
		fmt.Println(harness.Table3(64))
	case "fig2":
		return emit(harness.Figure2(opts))
	case "fig5":
		return emit(harness.Figure5(opts))
	case "fig6perf":
		return emit(harness.Figure6Perf(opts))
	case "fig6speedup":
		return emit(harness.Figure6Speedup(opts))
	case "fig6stream":
		return emit(harness.Figure6Stream(opts))
	case "table4":
		return emit(harness.Table4(opts))
	case "fig7":
		return emit(harness.Figure7(opts))
	case "fig8":
		return emit(harness.Figure8(opts, ""))
	case "fig9":
		return emit(harness.Figure9(opts))
	case "intervals":
		return emit(harness.IntervalSensitivity(opts, ""))
	case "meshhotspot":
		return emit(harness.MeshHotspot(opts))
	case "all":
		fmt.Println(harness.Table2())
		fmt.Println(harness.Table3(64))
		for _, exp := range []string{"fig2", "fig5", "fig6perf", "fig6speedup", "fig6stream", "table4", "fig7", "fig8", "fig9", "intervals", "meshhotspot"} {
			if err := run(exp, opts); err != nil {
				return fmt.Errorf("%s: %w", exp, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
