package main

// End-to-end tests for the zsimexp CLI, driven through cliMain so the full
// flag-parse/run/print path (including the -progress heartbeat) runs
// in-process.

import (
	"bytes"
	"strings"
	"testing"
)

func TestProgressHeartbeatEmitted(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// A cheap multi-run experiment at test scale; -progress-interval is tiny
	// so periodic lines can land too, but the guaranteed line is the final
	// one each run emits at stop.
	code := cliMain([]string{"-scale", "0.02", "-max-cores", "16", "-host-threads", "2",
		"-progress", "-progress-interval", "5ms", "fig6stream"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("cliMain exit %d\nstderr: %s", code, stderr.String())
	}
	if stdout.Len() == 0 {
		t.Fatal("experiment printed nothing")
	}
	lines := 0
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.Contains(line, "progress:") {
			lines++
			for _, field := range []string{"phase=", "intervals=", "cycles=", "sim-MIPS="} {
				if !strings.Contains(line, field) {
					t.Errorf("heartbeat line missing %s: %q", field, line)
				}
			}
		}
	}
	if lines == 0 {
		t.Fatalf("no heartbeat lines on stderr with -progress:\n%s", stderr.String())
	}
}

func TestProgressDisabledByDefault(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := cliMain([]string{"-scale", "0.02", "-max-cores", "16", "-host-threads", "2",
		"-progress=false", "fig6stream"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("cliMain exit %d\nstderr: %s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "progress:") {
		t.Fatalf("heartbeat lines on stderr without -progress:\n%s", stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := cliMain(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no experiment: exit %d, want 2", code)
	}
	if code := cliMain([]string{"no-such-experiment"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown experiment: exit %d, want 1", code)
	}
	if code := cliMain([]string{"-weave-mode", "bogus", "fig6stream"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad weave mode: exit %d, want 2", code)
	}
}
