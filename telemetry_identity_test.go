package zsim

// Telemetry perturbation tests at the facade level: the observability layer's
// cardinal rule is that observation never changes simulation results. A
// fixed-seed run with a trace sink attached and its probe scraped continuously
// from another goroutine must produce bit-identical simulated metrics to an
// unobserved run.

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func identityRun(t *testing.T, observe bool) (*Result, *Simulator, *TraceSink) {
	t.Helper()
	sim, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultWorkloadParams()
	params.BlocksPerThread = 4000 // long enough that the scraper observes mid-run snapshots
	sim.AddWorkload("ident", params, 4)
	sim.SetHostThreads(2)
	sim.SetSeed(11)

	var sink *TraceSink
	stop := make(chan struct{})
	scraped := make(chan int)
	if observe {
		sink = NewTraceSink(0)
		sim.SetTrace(sink)
		go func() {
			n := 0
			for {
				select {
				case <-stop:
					scraped <- n
					return
				default:
					snap := sim.Probe().Snapshot()
					if snap.Intervals > 0 {
						n++
					}
				}
			}
		}()
	}
	res, err := sim.Run()
	if observe {
		close(stop)
		if n := <-scraped; n == 0 {
			t.Log("scraper never saw a mid-run snapshot (run too fast); identity still checked")
		}
	}
	if err != nil {
		t.Fatalf("run (observe=%v): %v", observe, err)
	}
	return res, sim, sink
}

func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain, _, _ := identityRun(t, false)
	observed, sim, sink := identityRun(t, true)

	a, b := *plain.Metrics, *observed.Metrics
	a.HostNanos, b.HostNanos = 0, 0
	a.SimMIPS, b.SimMIPS = 0, 0
	if a != b {
		t.Fatalf("observed run diverged from plain run:\n plain:    %+v\n observed: %+v", a, b)
	}
	if plain.Intervals != observed.Intervals || plain.WeaveEvents != observed.WeaveEvents {
		t.Fatalf("interval/event counts diverge: %d/%d vs %d/%d",
			plain.Intervals, plain.WeaveEvents, observed.Intervals, observed.WeaveEvents)
	}

	// The probe ends the run in phase "done" with counters matching the result.
	snap := sim.Probe().Snapshot()
	if snap.Phase != "done" {
		t.Errorf("post-run phase = %q, want done", snap.Phase)
	}
	if snap.Intervals != observed.Intervals {
		t.Errorf("probe intervals = %d, result %d", snap.Intervals, observed.Intervals)
	}
	if snap.Instrs != observed.Metrics.Instrs {
		t.Errorf("probe instrs = %d, metrics %d", snap.Instrs, observed.Metrics.Instrs)
	}

	// The trace sink recorded phase slices and exports valid JSON.
	if sink.Len() == 0 {
		t.Fatal("trace sink recorded nothing")
	}
	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(events) < sink.Len() {
		t.Errorf("export has %d events for %d recorded slices", len(events), sink.Len())
	}
}

// TestHeartbeatFacade: the facade's heartbeat helper emits at least one line
// for any run, however short, and none after stop.
func TestHeartbeatFacade(t *testing.T) {
	sim, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultWorkloadParams()
	params.BlocksPerThread = 100
	sim.AddWorkload("hb", params, 2)
	sim.SetHostThreads(1)

	var buf bytes.Buffer
	stop := StartHeartbeat(&buf, sim.Probe(), "t: ", time.Hour)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	stop()
	out := buf.String()
	if !bytes.Contains([]byte(out), []byte("t: progress:")) || !bytes.Contains([]byte(out), []byte("(done)")) {
		t.Fatalf("heartbeat final line missing: %q", out)
	}
}
