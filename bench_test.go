package zsim

// This file is the benchmark harness entry point: one benchmark per table and
// figure of the paper's evaluation section, plus ablation benchmarks for the
// design choices called out in DESIGN.md (instruction-driven cores vs
// re-decoding emulation, bound-only vs bound-weave, interval length).
//
// The benchmarks run the same code paths as cmd/zsimexp but at reduced scale
// so `go test -bench=. -benchmem` completes in minutes; EXPERIMENTS.md records
// a full-scale run of the zsimexp binary. Each benchmark reports simulated
// MIPS (or the experiment's headline quantity) through b.ReportMetric, so the
// benchmark output doubles as the regenerated rows/series.

import (
	"fmt"
	"testing"

	"zsim/internal/baseline"
	"zsim/internal/config"
	"zsim/internal/core"
	"zsim/internal/harness"
	"zsim/internal/isa"
	"zsim/internal/stats"
	"zsim/internal/trace"
)

// benchOpts returns harness options sized for benchmarking.
func benchOpts() harness.Options {
	return harness.Options{Scale: 0.05, MaxCores: 64}
}

// BenchmarkFig2PathAltering regenerates Figure 2: the fraction of accesses
// with path-altering interference for 1K/10K/100K-cycle intervals.
func BenchmarkFig2PathAltering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, fr := range res.Fractions {
			if fr[0] > worst {
				worst = fr[0]
			}
		}
		b.ReportMetric(worst, "worst-frac-1K")
	}
}

// BenchmarkFig5Validation regenerates the Figure 5 validation on a subset of
// the SPEC-like workloads (full suite in EXPERIMENTS.md).
func BenchmarkFig5Validation(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure5(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgAbsPerfError*100, "avg-abs-perf-err-%")
		b.ReportMetric(float64(res.Within10Pct), "within-10%")
	}
}

// BenchmarkFig6Contention regenerates Figure 6 (right): STREAM scalability
// under the different contention models.
func BenchmarkFig6Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure6Stream(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series["No contention"][5], "nocont-speedup-6t")
		b.ReportMetric(res.Series["Ev-driven cont"][5], "evdriven-speedup-6t")
	}
}

// BenchmarkFig6Speedup regenerates Figure 6 (middle): PARSEC speedup curves
// under the golden reference and under zsim.
func BenchmarkFig6Speedup(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 0.02
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure6Speedup(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Zsim["blackscholes"][5], "zsim-blkschls-speedup-6t")
	}
}

// BenchmarkTable4ThousandCore regenerates Table 4: simulation performance on
// the large tiled chip for the four model combinations.
func BenchmarkTable4ThousandCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HMeanMIPS[harness.ModelIPC1NC], "hmean-MIPS-IPC1-NC")
		b.ReportMetric(res.HMeanMIPS[harness.ModelOOOC], "hmean-MIPS-OOO-C")
	}
}

// BenchmarkFig7SingleThread regenerates Figure 7: single-thread simulation
// performance for the four model combinations.
func BenchmarkFig7SingleThread(b *testing.B) {
	opts := benchOpts()
	opts.Scale = 0.02
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure7(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HMean[harness.ModelIPC1NC], "hmean-MIPS-IPC1-NC")
		b.ReportMetric(res.HMean[harness.ModelOOOC], "hmean-MIPS-OOO-C")
	}
}

// BenchmarkFig8HostScaling regenerates Figure 8: simulator speedup as host
// worker threads increase.
func BenchmarkFig8HostScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure8(benchOpts(), "blackscholes")
		if err != nil {
			b.Fatal(err)
		}
		sp := res.Speedup[harness.ModelIPC1NC]
		b.ReportMetric(sp[len(sp)-1], "speedup-max-host")
	}
}

// BenchmarkFig9TargetScaling regenerates Figure 9: hmean simulation MIPS as
// the simulated chip grows.
func BenchmarkFig9TargetScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		series := res.HMeanMIPS[harness.ModelIPC1NC]
		b.ReportMetric(series[len(series)-1], "hmean-MIPS-largest-chip")
	}
}

// BenchmarkIntervalSensitivity regenerates the Section 4.2 interval-length
// sweep (accuracy vs speed for 1K/10K/100K-cycle intervals).
func BenchmarkIntervalSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.IntervalSensitivity(benchOpts(), "")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HostSpeedup[2], "speedup-100K-vs-1K")
		b.ReportMetric(res.PerfError[2]*100, "perf-err-100K-%")
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (design choices from DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkCoreModelSpeed measures raw core-model simulation speed (simulated
// instructions per host second) for the IPC1 and OOO instruction-driven
// models, the Section 3.1 headline claim.
func BenchmarkCoreModelSpeed(b *testing.B) {
	for _, kind := range []string{"ipc1", "ooo"} {
		b.Run(kind, func(b *testing.B) {
			cfg := config.WestmereValidation()
			cfg.CoreModel = config.CoreModel(kind)
			cfg.Contention = false
			params := trace.MustLookup("namd")
			params.BlocksPerThread = 1 << 30 // effectively unbounded; MaxInstrs stops the run
			sim, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			sim.AddWorkload("namd", params, 1)
			sim.SetMaxInstructions(uint64(b.N) * 1000)
			sim.SetHostThreads(1)
			b.ResetTimer()
			res, err := sim.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(res.Metrics.SimMIPS, "sim-MIPS")
			b.ReportMetric(float64(res.Metrics.Instrs), "instrs")
		})
	}
}

// BenchmarkDecodeCacheVsRedecode quantifies the benefit of doing decode work
// once per static block (the DBT-style translation cache) versus re-decoding
// every dynamic block (emulation-style), on the same OOO core model.
func BenchmarkDecodeCacheVsRedecode(b *testing.B) {
	staticBlock := &isa.BasicBlock{ID: 1, Addr: 0x400000}
	for i := 0; i < 12; i++ {
		staticBlock.Instrs = append(staticBlock.Instrs, isa.Instruction{
			Op: isa.OpAddMem, Dst: isa.GPR(i % 8), Src1: isa.GPR(i % 8), Src2: isa.RBP, Bytes: 4,
		})
	}
	staticBlock.Instrs = append(staticBlock.Instrs,
		isa.Instruction{Op: isa.OpCmp, Src1: isa.RAX, Src2: isa.RBX, Bytes: 3},
		isa.Instruction{Op: isa.OpJcc, Bytes: 2})
	addrs := make([]uint64, 12)
	for i := range addrs {
		addrs[i] = uint64(0x10_0000_0000 + i*64)
	}

	b.Run("cached-decode", func(b *testing.B) {
		c := core.NewOOO(0, core.OOOWestmere(), core.MemPorts{}, stats.NewRegistry("c"))
		decoded := isa.Decode(staticBlock) // once, at "translation time"
		dyn := &trace.DynBlock{Decoded: decoded, Addrs: addrs, Taken: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.SimulateBlock(dyn)
		}
		b.ReportMetric(float64(c.Instrs())/b.Elapsed().Seconds()/1e6, "sim-MIPS")
	})
	b.Run("redecode-every-block", func(b *testing.B) {
		emu := &baseline.EmulationCore{Inner: core.NewOOO(0, core.OOOWestmere(), core.MemPorts{}, stats.NewRegistry("c"))}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			emu.SimulateStaticBlock(staticBlock, addrs, true)
		}
		b.ReportMetric(float64(emu.Inner.Instrs())/b.Elapsed().Seconds()/1e6, "sim-MIPS")
	})
}

// BenchmarkBoundVsBoundWeave measures the cost of the weave phase: the same
// workload with contention modeling off (bound only) and on (bound-weave).
func BenchmarkBoundVsBoundWeave(b *testing.B) {
	for _, contention := range []bool{false, true} {
		name := "bound-only"
		if contention {
			name = "bound-weave"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.TiledChip(2, config.CoreIPC1)
				cfg.Contention = contention
				sim, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				params := trace.MustLookup("ocean")
				params.BlocksPerThread = 100
				sim.AddWorkload("ocean", params, cfg.NumCores)
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Metrics.SimMIPS, "sim-MIPS")
			}
		})
	}
}

// BenchmarkLockstepPDESBaseline measures the pessimistic-PDES-style baseline
// (barrier every 10 cycles) so its cost can be compared against the
// bound-weave runs above.
func BenchmarkLockstepPDESBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.TiledChip(2, config.CoreIPC1)
		params := trace.MustLookup("ocean")
		params.BlocksPerThread = 100
		w := trace.New("ocean", params, cfg.NumCores)
		m, err := baseline.RunLockstep(cfg, w, 10, 0)
		if err != nil {
			b.Fatal(err)
		}
		_ = m
	}
}

// BenchmarkGoldenReference measures the sequential golden reference's speed,
// the sequential-simulation comparison point.
func BenchmarkGoldenReference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.WestmereValidation()
		params := trace.MustLookup("namd")
		params.BlocksPerThread = 300
		w := trace.New("namd", params, 6)
		res, err := baseline.RunGolden(cfg, w, 0)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkConstruct1024 measures construction cost only: building the
// 1,024-core tiled chip (Table 3), its scheduler and one 1,024-thread
// workload, plus the bound-weave simulator state (recorders, event slabs,
// weave engine, worker pool) — without simulating a single cycle. This is
// the path the arena-backed constructors exist for; run with -benchmem and
// compare against BENCH_2.json to catch construction-cost regressions.
func BenchmarkConstruct1024(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := config.TiledChip(64, config.CoreIPC1)
		sim, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sim.AddWorkload("construct", trace.DefaultParams(), cfg.NumCores)
		sim.buildSim().Close()
	}
}

// BenchmarkMeshHotspot measures the weave-phase NoC contention subsystem on
// its headline experiment: a hotspot workload over an under-provisioned
// (4-byte-link) mesh, run under both the zero-load network model and the
// contended one. The reported metrics track the scaling-collapse gap the
// zero-load model cannot see and the router queueing behind it.
func BenchmarkMeshHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.MeshHotspot(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Threads) - 1
		b.ReportMetric(res.ScalingZeroLoad[last], "zeroload-scaling")
		b.ReportMetric(res.ScalingNoC[last], "noc-scaling")
		b.ReportMetric(float64(res.QueueDelay[last]), "router-queue-delay")
	}
}

// BenchmarkWeaveScaling measures the deterministic parallel weave's scaling
// on the NoC-on mesh-hotspot workload: GOMAXPROCS 1, 2 and 4 with 4 weave
// domains. The cells are bit-identical in simulation results (the
// determinism matrix gates that), so only wall-clock and simulated MIPS
// vary. The gm4 cell additionally reports its measured wall-clock speedup
// over a same-process GOMAXPROCS=1 reference run. On a single-vCPU CI host
// that speedup is ~1.0 and ns/op is noisy; gate B/op, allocs/op and result
// signatures there, and read speedups from multi-core hosts (see the
// ROADMAP benchmarking caveat).
func BenchmarkWeaveScaling(b *testing.B) {
	for _, gm := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("gm%d", gm), func(b *testing.B) {
			b.ReportAllocs()
			var last *harness.WeaveScalingResult
			for i := 0; i < b.N; i++ {
				res, err := harness.WeaveScaling(benchOpts(), gm, 4)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.SimMIPS, "sim-MIPS")
			if gm == 4 {
				ref, err := harness.WeaveScaling(benchOpts(), 1, 4)
				if err != nil {
					b.Fatal(err)
				}
				if last.WallNanos > 0 {
					b.ReportMetric(float64(ref.WallNanos)/float64(last.WallNanos), "weave-speedup-4t")
				}
			}
		})
	}
}

// BenchmarkOversubscribedClientServer measures the Section 3.3 usage model
// the mid-interval scheduler exists for: an oversubscribed client-server
// workload (20 software threads on 8 cores) whose server threads block in
// request waits and contend on request-queue locks. Wall-clock here tracks
// how well freed cores are refilled inside intervals.
func BenchmarkOversubscribedClientServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.OversubscribedClientServer(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics.SimMIPS, "sim-MIPS")
		b.ReportMetric(float64(res.MidIntervalJoins), "mid-interval-joins")
	}
}

// BenchmarkPhaseBreakdown splits a contention-on run's host wall time by
// engine phase using the telemetry probe: bound-phase and weave-phase
// nanoseconds per job, plus the time weave domain workers spent parked on
// committed horizons (stall). The breakdown is diagnostic — it shows where a
// perf regression landed, not just that one happened — so record it into
// BENCH_6.json but gate on allocs/op and the simulated signature metrics,
// never the ns splits themselves (1-vCPU CI host, ROADMAP noise caveat).
func BenchmarkPhaseBreakdown(b *testing.B) {
	b.ReportAllocs()
	var boundNS, weaveNS, stallNS, intervals float64
	for i := 0; i < b.N; i++ {
		cfg := config.TiledChip(2, config.CoreIPC1)
		cfg.Contention = true
		sim, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		params := trace.MustLookup("ocean")
		params.BlocksPerThread = 100
		sim.AddWorkload("ocean", params, cfg.NumCores)
		sim.SetHostThreads(2)
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
		snap := sim.Probe().Snapshot()
		boundNS += float64(snap.BoundNanos)
		weaveNS += float64(snap.WeaveNanos)
		stallNS += float64(snap.StallNanos)
		intervals += float64(snap.Intervals)
	}
	n := float64(b.N)
	b.ReportMetric(boundNS/n, "bound-ns/op")
	b.ReportMetric(weaveNS/n, "weave-ns/op")
	b.ReportMetric(stallNS/n, "stall-ns/op")
	b.ReportMetric(intervals/n, "intervals")
}

// BenchmarkJobThroughput measures the warm-simulator reuse path against
// fresh per-job construction — the zsimd serving scenario where many small
// jobs of one configuration shape arrive back to back. "fresh" pays full
// construction (system, recorders, slabs, engine, worker pool) per job;
// "warm" builds once and Reset-rewinds between jobs, so per-job allocations
// collapse to near zero and throughput is bounded by simulation alone.
// Gate on jobs/sec ratio and allocs/op, not ns/op (1-vCPU CI host).
func BenchmarkJobThroughput(b *testing.B) {
	jobCfg := func() *Config {
		cfg := TiledConfig(16, "ipc1") // 64 cores: construction-dominated jobs
		cfg.Contention = true
		return cfg
	}
	runJob := func(b *testing.B, sim *Simulator) {
		b.Helper()
		params, _ := LookupWorkload("fluidanimate")
		params.BlocksPerThread = 25
		sim.AddWorkload("fluidanimate", params, 2)
		sim.SetHostThreads(2)
		sim.SetSeed(7)
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim, err := New(jobCfg())
			if err != nil {
				b.Fatal(err)
			}
			runJob(b, sim)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		sim, err := New(jobCfg())
		if err != nil {
			b.Fatal(err)
		}
		sim.SetReusable(true)
		defer sim.Close()
		runJob(b, sim) // establish the arena working set off the clock
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.Reset(nil); err != nil {
				b.Fatal(err)
			}
			runJob(b, sim)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})
}
