// Package zsim is a fast, parallel, user-level microarchitectural simulator
// for large multicore chips, reproducing "ZSim: Fast and Accurate
// Microarchitectural Simulation of Thousand-Core Systems" (Sanchez &
// Kozyrakis, ISCA 2013) as a pure-Go library.
//
// The simulator combines three techniques from the paper:
//
//   - instruction-driven core timing models (a simple IPC=1 core and a
//     detailed Westmere-class out-of-order core) whose per-instruction decode
//     work is done once per static basic block, the way zsim leverages
//     dynamic binary translation;
//   - the bound-weave two-phase parallelization algorithm, which simulates
//     cores in parallel over small intervals with zero-load latencies (bound
//     phase) and then replays the recorded accesses through detailed
//     contention models across parallel event-driven domains (weave phase);
//   - lightweight user-level virtualization: a thread scheduler with
//     affinities and oversubscription, simulated-time synchronization (locks,
//     barriers, blocking system calls), and timing/system virtualization.
//
// # Quick start
//
//	cfg := zsim.WestmereConfig()
//	sim, _ := zsim.New(cfg)
//	sim.AddNamedWorkload("blackscholes", 6)  // 6 threads of a PARSEC-like kernel
//	res, _ := sim.Run()
//	fmt.Println(res.Summary())
//
// Workloads are deterministic synthetic program models (package
// internal/trace) parameterized to match the behavioural envelope of the
// paper's benchmarks; see DESIGN.md for the substitution rationale.
package zsim

import (
	"context"
	"fmt"
	"io"
	"time"

	"zsim/internal/arena"
	"zsim/internal/boundweave"
	"zsim/internal/config"
	"zsim/internal/runctl"
	"zsim/internal/stats"
	"zsim/internal/telemetry"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// Config is the simulated-system description. It is an alias of the internal
// configuration type so callers can construct or load configurations
// directly.
type Config = config.System

// CoreModel selects the core timing model in a Config ("ooo" or "ipc1").
type CoreModel = config.CoreModel

// WeaveMode selects the weave-phase execution mode in a Config:
// WeaveParallel (deterministic bounded-skew domain parallelism, the default)
// or WeaveSerial (the single-heap serial escape hatch).
type WeaveMode = config.WeaveMode

// The weave execution modes.
const (
	WeaveParallel = config.WeaveParallelDet
	WeaveSerial   = config.WeaveSerial
)

// WorkloadParams are the behavioural parameters of a synthetic workload.
type WorkloadParams = trace.Params

// Metrics are the derived results of a run (IPC, MPKIs, simulation MIPS...).
type Metrics = stats.Metrics

// Probe is the live-telemetry publication point of a running simulation:
// phase, intervals, simulated cycles, per-phase wall time, weave skew
// diagnostics. Every Simulator owns one (see Simulator.Probe); readers take
// Snapshots at any time without perturbing the run.
type Probe = telemetry.Probe

// ProgressSnapshot is a point-in-time copy of a Probe's published counters.
type ProgressSnapshot = telemetry.Snapshot

// TraceSink collects bounded Chrome trace-event slices from a run (phases
// track + one track per weave domain), exportable as Perfetto-loadable JSON
// via WriteJSON. Attach one with Simulator.SetTrace.
type TraceSink = telemetry.TraceSink

// NewTraceSink builds a trace sink holding at most capacity events (<= 0
// selects the default bound). Recording past capacity drops events and counts
// them, so a trace can never grow without bound.
func NewTraceSink(capacity int) *TraceSink { return telemetry.NewTraceSink(capacity) }

// StartHeartbeat starts a background goroutine that writes one progress line
// to w every period, fed from the probe's snapshots (phase, intervals, cycles,
// sim-MIPS). The returned stop function halts the goroutine and always emits
// one final line, so even a run shorter than period produces output. Backs the
// -progress flag of cmd/zsim and cmd/zsimexp.
func StartHeartbeat(w io.Writer, p *Probe, prefix string, period time.Duration) (stop func()) {
	return telemetry.StartHeartbeat(w, p, prefix, period)
}

// WestmereConfig returns the paper's Table 2 validation configuration: a
// 6-core Westmere-class chip.
func WestmereConfig() *Config { return config.WestmereValidation() }

// TiledConfig returns the paper's Table 3 tiled-chip configuration with the
// given number of 16-core tiles (4, 16 and 64 tiles give the 64, 256 and
// 1024-core chips of the evaluation). model is "ooo" or "ipc1".
func TiledConfig(tiles int, model string) *Config {
	return config.TiledChip(tiles, config.CoreModel(model))
}

// SmallConfig returns a small 4-core configuration suitable for quick
// experiments and examples.
func SmallConfig() *Config { return config.SmallTest() }

// LoadConfig reads a JSON configuration.
func LoadConfig(r io.Reader) (*Config, error) { return config.Load(r) }

// LoadConfigFile reads a JSON configuration from a file.
func LoadConfigFile(path string) (*Config, error) { return config.LoadFile(path) }

// FailureReason classifies why a run stopped abnormally. A clean completion
// (all threads finished, or MaxInstructions reached) has no failure reason.
type FailureReason = runctl.Reason

// The typed reasons a run can fail with. Every abnormal stop returns partial
// metrics alongside a *RunError carrying one of these.
const (
	// Cancelled: the caller's context was cancelled (or a service cancel
	// request arrived) and the run stopped at the next interval boundary.
	Cancelled = runctl.ReasonCancelled
	// DeadlineExceeded: the run exceeded Config.MaxWallTime and the watchdog
	// stopped it.
	DeadlineExceeded = runctl.ReasonDeadline
	// CycleLimit: simulated time reached Config.MaxCycles.
	CycleLimit = runctl.ReasonCycleLimit
	// Deadlocked: the workload deadlocked — no thread runnable and none
	// wakeable by the passage of simulated time.
	Deadlocked = runctl.ReasonDeadlocked
	// Panicked: a panic inside the simulation (worker or driver) was
	// recovered; the process survives and RunError.Stack has the fault site.
	Panicked = runctl.ReasonPanicked
)

// RunError is the structured failure report of an abnormal run: the typed
// reason, where the run was when it stopped (phase, interval, cycle), the
// recovered panic stack when Reason == Panicked, and the partial results.
// It is returned as the error of Run/RunContext; the same partial Result is
// also returned directly alongside it.
type RunError struct {
	// Reason is the typed failure classification.
	Reason FailureReason
	// Phase is the bound-weave phase that was executing ("bound" or
	// "weave"); "run" when the run stopped between phases or never started
	// an interval.
	Phase string
	// Interval and Cycle locate the stop point in simulated time.
	Interval uint64
	Cycle    uint64
	// Panic is the formatted panic value and Stack the panicking goroutine's
	// stack, both set only when Reason == Panicked.
	Panic string
	Stack []byte
	// Partial holds the metrics and statistics accumulated up to the stop
	// point; it is always non-nil and always internally consistent.
	Partial *Result
}

// Error implements error.
func (e *RunError) Error() string {
	msg := fmt.Sprintf("zsim: run %s (phase %s, interval %d, cycle %d)",
		e.Reason, e.Phase, e.Interval, e.Cycle)
	if e.Reason == Panicked {
		msg += ": " + e.Panic
	}
	return msg
}

// DefaultWorkloadParams returns a moderate compute-leaning workload parameter
// set that callers can adjust.
func DefaultWorkloadParams() WorkloadParams { return trace.DefaultParams() }

// NamedWorkloads returns the names of all registered workloads (the SPEC
// CPU2006, PARSEC, SPLASH-2, SPEC OMP and STREAM stand-ins used by the
// paper's evaluation).
func NamedWorkloads() []string { return trace.AllNames() }

// LookupWorkload returns the registered parameters for a named workload.
func LookupWorkload(name string) (WorkloadParams, bool) { return trace.Lookup(name) }

// Simulator is the public facade over the bound-weave engine: configure it,
// add one or more workloads (processes), then Run.
type Simulator struct {
	cfg   *Config
	sys   *boundweave.System
	sched *virt.Scheduler

	// runArena backs per-run state (workload decode caches); Reset rewinds
	// it, unlike the construction arena that owns the system itself.
	runArena *arena.Arena

	// Options.
	maxInstrs   uint64
	hostThreads int
	seed        uint64

	workloads int
	usedAddr  map[uint64]bool
	ran       bool

	// Warm-reuse state: when reusable is set, bw is the persistent
	// bound-weave simulator kept alive across runs, and lastReason remembers
	// how the previous run ended (Reset refuses to rewind after a panic).
	reusable   bool
	bw         *boundweave.Simulator
	lastReason runctl.Reason

	// probe is the simulator's always-on telemetry publication point (cheap:
	// atomic stores at interval boundaries); traceSink is the optional
	// Chrome-trace sink.
	probe     *telemetry.Probe
	traceSink *telemetry.TraceSink
}

// assignAddrSpace places a new process in its own simulated address-space
// slice so multiprocess runs do not alias each other's code, lock words or
// data lines. Explicit AddrSpace values are respected; auto-assignment picks
// the smallest slice not already taken (the first process keeps the legacy
// layout 0).
func (s *Simulator) assignAddrSpace(params *WorkloadParams) {
	if s.usedAddr == nil {
		s.usedAddr = make(map[uint64]bool)
	}
	if params.AddrSpace == 0 && s.workloads > 0 {
		for next := uint64(1); ; next++ {
			if !s.usedAddr[next] {
				params.AddrSpace = next
				break
			}
		}
	}
	s.usedAddr[params.AddrSpace] = true
}

// New builds a simulator for the given configuration.
func New(cfg *Config) (*Simulator, error) {
	sys, err := boundweave.BuildSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:      cfg,
		sys:      sys,
		sched:    virt.NewScheduler(cfg.NumCores),
		runArena: arena.New(),
		seed:     1,
		probe:    new(telemetry.Probe),
	}, nil
}

// Probe returns the simulator's telemetry probe. Snapshot it at any time —
// including while RunContext is executing on another goroutine — for live
// progress (phase, intervals, cycles, sim-MIPS). The probe rewinds at the
// start of every run.
func (s *Simulator) Probe() *Probe { return s.probe }

// SetTrace attaches a Chrome-trace sink to subsequent runs (nil detaches).
// Call before Run; use sink.WriteJSON after the run to export. Tracing is
// observation only — results are bit-identical with tracing on or off.
func (s *Simulator) SetTrace(sink *TraceSink) { s.traceSink = sink }

// ArenaStats reports the simulator's current arena footprint (construction
// arena plus the per-run workload arena) without running it, for pool/memory
// telemetry.
func (s *Simulator) ArenaStats() (chunks int, bytes uint64) {
	sysChunks, sysBytes := s.sys.Root.Arena().Stats()
	runChunks, runBytes := s.runArena.Stats()
	return sysChunks + runChunks, sysBytes + runBytes
}

// SetReusable marks the simulator for warm reuse: RunContext keeps the
// bound-weave engine, worker pool and all per-core weave state alive after
// the run, and Reset rewinds the whole simulator for another run without
// reconstruction. A reusable simulator must be Closed by its owner when no
// longer needed. Call before the first run.
func (s *Simulator) SetReusable(v bool) { s.reusable = v }

// ShapeKey returns the configuration's construction-shape hash: two
// simulators with equal shape keys are structurally interchangeable, and a
// Reset may swap in any same-shape configuration. See Config.ShapeKey.
func (s *Simulator) ShapeKey() uint64 { return s.cfg.ShapeKey() }

// Close releases the persistent resources of a reusable simulator (worker
// pool, weave engine). It is idempotent and a no-op for simulators that were
// never marked reusable (their resources are released when Run returns).
func (s *Simulator) Close() {
	if s.bw != nil {
		s.bw.Close()
		s.bw = nil
	}
}

// Reset rewinds a reusable simulator to its just-built state so it can serve
// another run: all statistics, core/cache/predictor/contention state, the
// scheduler and the per-run arena rewind; the construction arena, worker
// pool and weave engine stay warm. cfg supplies the next run's
// configuration; it must have the same ShapeKey as the simulator's (only
// run-variable fields — name, seeds, limits — may differ), and nil keeps the
// current one. Workloads and options are cleared: re-add workloads and
// re-apply Set* options before the next run.
//
// Reset fails (leaving the simulator unusable for further runs) when the
// previous run panicked: an aborted engine cannot be safely rewound, so the
// caller must Close this simulator and build a fresh one.
func (s *Simulator) Reset(cfg *Config) error {
	if !s.reusable {
		return fmt.Errorf("zsim: Reset requires a reusable simulator (SetReusable)")
	}
	if s.lastReason == Panicked {
		return fmt.Errorf("zsim: cannot Reset after a panicked run; Close and build a fresh simulator")
	}
	if cfg == nil {
		cfg = s.cfg
	} else {
		if err := cfg.Validate(); err != nil {
			return err
		}
		if cfg.ShapeKey() != s.cfg.ShapeKey() {
			return fmt.Errorf("zsim: Reset config shape mismatch (got %#x, simulator built for %#x)", cfg.ShapeKey(), s.cfg.ShapeKey())
		}
	}
	s.cfg = cfg
	s.sys.Cfg = cfg
	s.sched.Reset()
	// The run arena backed the previous run's workload decode state, which the
	// scheduler reset just dropped; rewinding it lets the next run's workloads
	// decode into the same warm chunks.
	s.runArena.Reset()
	s.workloads = 0
	s.usedAddr = nil
	s.ran = false
	s.maxInstrs = 0
	s.hostThreads = 0
	s.seed = 1
	s.traceSink = nil // a Set* option: re-apply per run
	s.probe.Reset()   // the next run's BeginRun rewinds it too; clear eagerly
	return nil
}

// SetMaxInstructions bounds the run to approximately n simulated instructions
// (0 = run every workload to completion).
func (s *Simulator) SetMaxInstructions(n uint64) { s.maxInstrs = n }

// SetHostThreads caps the number of host worker threads used by the bound
// phase (0 = all host CPUs).
func (s *Simulator) SetHostThreads(n int) { s.hostThreads = n }

// SetSeed sets the seed used for the interval barrier's wake-up shuffling.
func (s *Simulator) SetSeed(seed uint64) { s.seed = seed }

// AddWorkload adds a process running the given synthetic workload with the
// given number of software threads (which may exceed the number of simulated
// cores; the round-robin scheduler time-multiplexes them). It returns the
// process ID.
func (s *Simulator) AddWorkload(name string, params WorkloadParams, threads int) int {
	s.assignAddrSpace(&params)
	// Workload static code (blocks + decoder cache) lives in the per-run
	// arena so Reset can rewind it for the next run's workloads.
	w := trace.NewIn(s.runArena, name, params, threads)
	p := s.sched.AddWorkload(w)
	s.workloads++
	return p.ID
}

// AddNamedWorkload adds a process running one of the registered named
// workloads. It returns an error for unknown names.
func (s *Simulator) AddNamedWorkload(name string, threads int) (int, error) {
	params, ok := trace.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("zsim: unknown workload %q (see NamedWorkloads)", name)
	}
	return s.AddWorkload(name, params, threads), nil
}

// AddPinnedWorkload adds a workload whose threads are restricted to the given
// cores (the "groups of cores per application" usage model the paper
// describes for multiprogrammed runs).
func (s *Simulator) AddPinnedWorkload(name string, params WorkloadParams, threads int, cores []int) int {
	s.assignAddrSpace(&params)
	w := trace.NewIn(s.runArena, name, params, threads)
	p := &virt.Process{ID: s.workloads, Name: name, Affinity: cores}
	for i := 0; i < threads; i++ {
		p.Threads = append(p.Threads, &virt.Thread{Stream: w.NewThread(i)})
	}
	s.sched.AddProcess(p)
	s.workloads++
	return p.ID
}

// NOCStats summarizes the weave-phase NoC contention subsystem's activity
// during a run (all zero unless Config.NOCContention is enabled).
type NOCStats struct {
	// Traversals counts packets scheduled through router output ports.
	Traversals uint64
	// PortConflicts counts packets that found their output port's link busy;
	// QueueStalls counts the subset of them that also found the port's
	// bounded queue full on arrival (each charges the port backpressure
	// occupancy for the time the packet blocked the upstream link).
	PortConflicts uint64
	QueueStalls   uint64
	// QueueDelay is the total cycles packets spent waiting for ports, and
	// MaxRouterDelay the largest per-router share of it (hotspot indicator).
	QueueDelay     uint64
	MaxRouterDelay uint64
}

// SchedStats summarizes the virtualization layer's scheduling activity
// during a run.
type SchedStats struct {
	// ContextSwitches counts thread-to-core placements.
	ContextSwitches uint64
	// MidIntervalJoins counts threads pulled onto a core inside an interval
	// (after another thread blocked on a lock or syscall) instead of waiting
	// for the next interval barrier.
	MidIntervalJoins uint64
	// LockBlocks, BarrierWaits and SyscallBlocks count the synchronization
	// events resolved against simulated time.
	LockBlocks    uint64
	BarrierWaits  uint64
	SyscallBlocks uint64
}

// Result is the outcome of a simulation run.
type Result struct {
	// Metrics holds the aggregate performance metrics of the run.
	Metrics *Metrics
	// Intervals is the number of bound-weave intervals executed.
	Intervals uint64
	// BoundRounds is the number of bound-phase rounds executed; rounds beyond
	// one per interval are mid-interval rescheduling points.
	BoundRounds uint64
	// HostTime is the wall-clock time the simulation took.
	HostTime time.Duration
	// WeaveEvents is the number of weave-phase events simulated (0 when the
	// configuration disables contention).
	WeaveEvents uint64
	// WeaveMode is the effective weave execution mode ("parallel" —
	// deterministic bounded-skew domains — or the "serial" escape hatch).
	WeaveMode string
	// WeaveDomains is the effective weave domain count after validation
	// clamped it to the system size.
	WeaveDomains int
	// Sched reports the scheduling activity of the virtualization layer.
	Sched SchedStats
	// NOC reports the NoC contention subsystem's activity (zero when
	// Config.NOCContention is off).
	NOC NOCStats
	// Stalled reports that the run stopped because the workload deadlocked
	// (no thread runnable and none wakeable by simulated time).
	Stalled bool
	// ArenaChunks and ArenaBytes report the simulator's arena footprint
	// (construction arena plus the per-run workload arena). Both are
	// monotone over a simulator's lifetime: on a warm-reused simulator they
	// stop growing once the working set is established, so equal values
	// across runs demonstrate allocation-free reuse.
	ArenaChunks int
	ArenaBytes  uint64
}

// Summary returns a one-paragraph human-readable summary of the run.
func (r *Result) Summary() string {
	m := r.Metrics
	return fmt.Sprintf(
		"simulated %d instructions on %d cores in %d cycles (IPC %.2f) — "+
			"L1D %.2f MPKI, L2 %.2f MPKI, L3 %.2f MPKI — "+
			"host time %v, %.1f MIPS, %d intervals, %d weave events (%s weave, %d domains)",
		m.Instrs, m.Cores, m.Cycles, m.IPC,
		m.L1DMPKI, m.L2MPKI, m.L3MPKI,
		r.HostTime.Round(time.Millisecond), m.SimMIPS, r.Intervals, r.WeaveEvents,
		r.WeaveMode, r.WeaveDomains)
}

// buildSim constructs the bound-weave simulator state (recorders, event
// slabs, weave engine, worker pool) for the configured system and workloads
// without running it. Run calls it implicitly; the construction benchmarks
// call it directly and Close the result.
func (s *Simulator) buildSim() *boundweave.Simulator {
	return s.buildSimCtl(nil)
}

// buildSimCtl is buildSim with the run-control token and the configuration's
// run limits wired in.
func (s *Simulator) buildSimCtl(ctl *runctl.Token) *boundweave.Simulator {
	return boundweave.NewSimulator(s.sys, s.sched, s.runOptions(ctl))
}

// runOptions assembles the bound-weave options for one run.
func (s *Simulator) runOptions(ctl *runctl.Token) boundweave.Options {
	return boundweave.Options{
		MaxInstrs:   s.maxInstrs,
		HostThreads: s.hostThreads,
		Seed:        s.seed,
		Ctl:         ctl,
		MaxWallTime: s.cfg.MaxWallTime,
		MaxCycles:   s.cfg.MaxCycles,
		Reusable:    s.reusable,
		Probe:       s.probe,
		Trace:       s.traceSink,
	}
}

// acquireSim returns the bound-weave simulator for this run: a fresh build on
// the first run (or always, when not reusable), a warm Reset of the retained
// one on every run after that.
func (s *Simulator) acquireSim(ctl *runctl.Token) (*boundweave.Simulator, error) {
	if !s.reusable {
		return s.buildSimCtl(ctl), nil
	}
	if s.bw == nil {
		s.bw = s.buildSimCtl(ctl)
		return s.bw, nil
	}
	if err := s.bw.Reset(s.runOptions(ctl)); err != nil {
		return nil, err
	}
	return s.bw, nil
}

// Run executes the simulation and returns its results. A simulator runs
// once; build a new one for another run, or mark it reusable (SetReusable)
// and Reset it between runs. It is RunContext with a
// background context: only Config.MaxWallTime / Config.MaxCycles (and a
// workload deadlock) can stop it early.
func (s *Simulator) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the simulation under the given context and returns its
// results. The run stops cooperatively at the next interval boundary when
// the context is cancelled, when Config.MaxWallTime expires (a wall-clock
// watchdog), when simulated time reaches Config.MaxCycles, or when the
// workload deadlocks; panics inside simulation workers are recovered rather
// than crashing the process. Any abnormal stop returns the partial Result
// (never nil, always internally consistent) together with a *RunError
// carrying the typed reason — callers that only care about best-effort
// metrics can use the Result and log the error.
func (s *Simulator) RunContext(ctx context.Context) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("zsim: simulator already ran; create a new one")
	}
	if s.workloads == 0 {
		return nil, fmt.Errorf("zsim: no workloads added")
	}
	s.ran = true
	ctl := new(runctl.Token)
	sim, err := s.acquireSim(ctl)
	if err != nil {
		return nil, err
	}
	if !s.reusable {
		// The simulator owns a persistent worker pool and weave engine; Close
		// is idempotent, and deferring it here guarantees release on every
		// exit path — including cancellation and panic recovery — not just
		// the happy path inside sim.Run. A reusable simulator instead keeps
		// these warm for the next Reset, and its owner Closes it.
		defer sim.Close()
	}
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { ctl.Cancel(runctl.ReasonCancelled) })
		defer stop()
	}

	start := time.Now()
	facadePanic := runGuarded(sim)
	elapsed := time.Since(start)

	res := s.collectResult(sim, elapsed)
	reason, panicErr, phase := sim.Reason, sim.PanicErr, sim.FailPhase
	if facadePanic != nil {
		// A fault that escaped the simulator's own containment (it recovers
		// everything raised inside Run, so this is the facade's last line).
		reason, panicErr, phase = Panicked, facadePanic, "run"
	}
	s.lastReason = reason
	if reason == Panicked {
		// An aborted engine cannot be rewound; release the warm state now so
		// a reusable simulator fails closed instead of leaking its pool.
		s.Close()
	}
	if reason == runctl.ReasonNone {
		return res, nil
	}
	if phase == "" {
		phase = "run"
	}
	runErr := &RunError{
		Reason:   reason,
		Phase:    phase,
		Interval: sim.Intervals,
		Cycle:    sim.GlobalCycle(),
		Partial:  res,
	}
	if panicErr != nil {
		runErr.Panic = fmt.Sprintf("%v", panicErr.Value)
		runErr.Stack = panicErr.Stack
	}
	return res, runErr
}

// runGuarded runs the simulation with a facade-level panic guard: anything
// that escapes the simulator's own recovery is captured and reported instead
// of unwinding into the caller.
func runGuarded(sim *boundweave.Simulator) (pe *runctl.PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = runctl.NewPanicError(r, -1)
		}
	}()
	sim.Run()
	return nil
}

// collectResult assembles the public Result from the simulated system and the
// finished (or failed) simulator.
func (s *Simulator) collectResult(sim *boundweave.Simulator, elapsed time.Duration) *Result {
	m := s.sys.Metrics()
	m.Model = string(s.cfg.CoreModel)
	m.HostNanos = elapsed.Nanoseconds()
	m.Finalize()
	var nocStats NOCStats
	if s.sys.Fabric != nil {
		fs := s.sys.Fabric.TotalStats()
		nocStats = NOCStats{
			Traversals:     fs.Traversals,
			PortConflicts:  fs.PortConflicts,
			QueueStalls:    fs.QueueStalls,
			QueueDelay:     fs.QueueDelay,
			MaxRouterDelay: fs.MaxRouterDelay,
		}
	}
	sysChunks, sysBytes := s.sys.Root.Arena().Stats()
	runChunks, runBytes := s.runArena.Stats()
	return &Result{
		Metrics:     m,
		Intervals:   sim.Intervals,
		BoundRounds: sim.BoundRounds,
		HostTime:    elapsed,
		WeaveEvents: sim.WeaveEvents,
		ArenaChunks: sysChunks + runChunks,
		ArenaBytes:  sysBytes + runBytes,
		Sched: SchedStats{
			ContextSwitches:  s.sched.ContextSwitches.Load(),
			MidIntervalJoins: s.sched.MidIntervalJoins.Load(),
			LockBlocks:       s.sched.LockBlocks.Load(),
			BarrierWaits:     s.sched.BarrierWaits.Load(),
			SyscallBlocks:    s.sched.SyscallBlocks.Load(),
		},
		NOC:          nocStats,
		Stalled:      sim.Stalled,
		WeaveMode:    string(s.cfg.WeaveModeKind),
		WeaveDomains: s.sys.NumDomains,
	}
}

// WriteStats dumps the full hierarchical statistics tree of the simulated
// system (per-core, per-cache, per-controller counters) in text form. Call it
// after Run.
func (s *Simulator) WriteStats(w io.Writer) error {
	return s.sys.Root.WriteText(w)
}

// WriteStatsCSV dumps the statistics tree as CSV rows.
func (s *Simulator) WriteStatsCSV(w io.Writer) error {
	return s.sys.Root.WriteCSV(w)
}
