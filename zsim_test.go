package zsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIQuickRun(t *testing.T) {
	cfg := SmallConfig()
	sim, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	params := DefaultWorkloadParams()
	params.BlocksPerThread = 300
	sim.AddWorkload("unit", params, 4)
	sim.SetHostThreads(2)
	sim.SetSeed(7)
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Metrics.Instrs == 0 || res.Metrics.IPC <= 0 {
		t.Fatalf("run produced no work: %+v", res.Metrics)
	}
	if !strings.Contains(res.Summary(), "simulated") {
		t.Fatalf("summary malformed: %s", res.Summary())
	}
	var buf bytes.Buffer
	if err := sim.WriteStats(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("WriteStats failed: %v", err)
	}
	buf.Reset()
	if err := sim.WriteStatsCSV(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("WriteStatsCSV failed: %v", err)
	}
	// Running twice is an error.
	if _, err := sim.Run(); err == nil {
		t.Fatalf("second Run should fail")
	}
}

func TestPublicAPINamedWorkloads(t *testing.T) {
	names := NamedWorkloads()
	if len(names) < 50 {
		t.Fatalf("expected the full workload registry, got %d names", len(names))
	}
	if _, ok := LookupWorkload("mcf"); !ok {
		t.Fatalf("mcf should be registered")
	}
	sim, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddNamedWorkload("not-a-workload", 1); err == nil {
		t.Fatalf("unknown workload should be rejected")
	}
	if _, err := sim.AddNamedWorkload("blackscholes", 2); err != nil {
		t.Fatalf("AddNamedWorkload: %v", err)
	}
	sim.SetMaxInstructions(50000)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Instrs < 50000 {
		t.Fatalf("bounded run should reach its budget, got %d", res.Metrics.Instrs)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	if _, err := New(&Config{}); err == nil {
		t.Fatalf("invalid config should be rejected")
	}
	sim, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatalf("running with no workloads should fail")
	}
}

func TestPublicAPIConfigs(t *testing.T) {
	if WestmereConfig().NumCores != 6 {
		t.Fatalf("Westmere config wrong")
	}
	if TiledConfig(4, "ipc1").NumCores != 64 {
		t.Fatalf("tiled config wrong")
	}
	var buf bytes.Buffer
	if err := SmallConfig().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(&buf)
	if err != nil || loaded.NumCores != 4 {
		t.Fatalf("config round trip failed: %v", err)
	}
	if _, err := LoadConfigFile("/does/not/exist.json"); err == nil {
		t.Fatalf("missing file should error")
	}
}

func TestPublicAPIPinnedMultiprocess(t *testing.T) {
	cfg := SmallConfig()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultWorkloadParams()
	params.BlocksPerThread = 150
	// Two processes pinned to disjoint core groups, like the multiprogrammed
	// usage model the paper describes.
	p0 := sim.AddPinnedWorkload("front", params, 2, []int{0, 1})
	p1 := sim.AddPinnedWorkload("back", params, 2, []int{2, 3})
	if p0 == p1 {
		t.Fatalf("distinct processes expected")
	}
	sim.SetHostThreads(2)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Instrs == 0 {
		t.Fatalf("pinned multiprocess run should execute work")
	}
}
