package zsim

// Warm-simulator reuse tests: a reusable Simulator that is Reset between
// runs must be indistinguishable — bit-identical simulated results — from a
// freshly constructed one, across weave modes, NoC contention on/off, host
// parallelism levels, and after aborted (cancelled / cycle-limited) runs.
// Panicked runs are the exception: Reset must refuse them.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"zsim/internal/config"
)

// reuseCfg returns a small contention-enabled configuration for the given
// weave mode and NoC setting. Each call returns a fresh copy (Validate and
// the facade mutate configs in place). Like the boundweave determinism
// tests, the L3 gets generous associativity so the disjoint per-process
// footprints never force an eviction whose victim choice could depend on
// bound-phase arrival order.
func reuseCfg(mode WeaveMode, noc bool) *Config {
	cfg := SmallConfig()
	cfg.Contention = true
	cfg.WeaveModeKind = mode
	cfg.L3.SizeKB = 4096
	cfg.L3.Ways = 32
	if noc {
		cfg.Network = config.NetMesh // 4 single-core tiles -> a 2x2 mesh
		cfg.NetRouterStage = 1
		cfg.NOCContention = true
		cfg.NOCLinkBytes = 4 // 18-flit packets: ports back up under load
	}
	return cfg
}

// reuseRun drives one full run on sim, inside the documented determinism
// envelope (DESIGN.md "Determinism model"): 8 single-thread processes in
// disjoint address-space slices, two pinned per core, with locks and
// blocking syscalls so the mid-interval scheduler is exercised without
// thread migration. blocks scales run length; ctx == nil means Background.
func reuseRun(t *testing.T, sim *Simulator, ctx context.Context, blocks int) (*Result, error) {
	t.Helper()
	for i := 0; i < 8; i++ {
		p := DefaultWorkloadParams()
		p.Seed = uint64(1000 + 17*i)
		p.AddrSpace = uint64(i + 1) // disjoint address-space slices
		p.SharedFraction = 0
		p.WorkingSet = 8 << 10
		p.StaticBlocks = 16
		p.BlocksPerThread = blocks
		p.LockEvery = 16
		p.NumLocks = 2
		p.LockHoldBlocks = 3
		p.BlockedSyscallEvery = 48
		p.BlockedSyscallCycles = 2500
		sim.AddPinnedWorkload(fmt.Sprintf("proc-%d", i), p, 1, []int{i % 4})
	}
	sim.SetHostThreads(4)
	sim.SetSeed(99)
	if ctx == nil {
		ctx = context.Background()
	}
	return sim.RunContext(ctx)
}

// normalizeResult zeroes the host-time-derived (and allocation-history)
// fields that legitimately differ between two otherwise identical runs.
func normalizeResult(r *Result) {
	if r == nil {
		return
	}
	r.HostTime = 0
	r.ArenaChunks = 0
	r.ArenaBytes = 0
	if r.Metrics != nil {
		r.Metrics.HostNanos = 0
		r.Metrics.SimMIPS = 0
	}
}

func requireIdentical(t *testing.T, stage string, want, got *Result) {
	t.Helper()
	normalizeResult(want)
	normalizeResult(got)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: reused simulator diverged from fresh:\n fresh:  %+v\n metrics %+v\n reused: %+v\n metrics %+v",
			stage, want, want.Metrics, got, got.Metrics)
	}
}

// TestReuseBitIdentityMatrix is the fresh-vs-reused identity matrix:
// GOMAXPROCS {1,4} x weave mode {serial,parallel} x NoC {off,on}, with the
// reused simulator exercised after a clean run, after a cycle-limit abort,
// and after a cancellation — every subsequent clean run must match the fresh
// baseline exactly.
func TestReuseBitIdentityMatrix(t *testing.T) {
	modes := []struct {
		name string
		mode WeaveMode
		noc  bool
	}{
		{"serial", WeaveSerial, false},
		{"parallel", WeaveParallel, false},
		{"serial-noc", WeaveSerial, true},
		{"parallel-noc", WeaveParallel, true},
	}
	for _, gmp := range []int{1, 4} {
		for _, m := range modes {
			t.Run(fmt.Sprintf("gomaxprocs-%d/%s", gmp, m.name), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))

				// Fresh baseline: ordinary single-use simulator.
				fresh, err := New(reuseCfg(m.mode, m.noc))
				if err != nil {
					t.Fatal(err)
				}
				want, err := reuseRun(t, fresh, nil, 300)
				if err != nil {
					t.Fatalf("fresh run: %v", err)
				}

				// Reusable simulator, run 1: must match fresh.
				sim, err := New(reuseCfg(m.mode, m.noc))
				if err != nil {
					t.Fatal(err)
				}
				sim.SetReusable(true)
				defer sim.Close()
				got, err := reuseRun(t, sim, nil, 300)
				if err != nil {
					t.Fatalf("reusable run 1: %v", err)
				}
				requireIdentical(t, "first run", want, got)

				// Reset + run 2 (clean -> clean).
				if err := sim.Reset(nil); err != nil {
					t.Fatalf("Reset after clean run: %v", err)
				}
				got, err = reuseRun(t, sim, nil, 300)
				if err != nil {
					t.Fatalf("reusable run 2: %v", err)
				}
				requireIdentical(t, "after clean run", want, got)

				// Reset into a cycle-limited abort, then Reset back to clean.
				limited := reuseCfg(m.mode, m.noc)
				limited.MaxCycles = 3000
				if err := sim.Reset(limited); err != nil {
					t.Fatalf("Reset to limited cfg: %v", err)
				}
				if _, err = reuseRun(t, sim, nil, 300); err == nil {
					t.Fatalf("cycle-limited run should report a RunError")
				} else {
					var re *RunError
					if !errors.As(err, &re) || re.Reason != CycleLimit {
						t.Fatalf("cycle-limited run: %v", err)
					}
				}
				if err := sim.Reset(reuseCfg(m.mode, m.noc)); err != nil {
					t.Fatalf("Reset after cycle-limit abort: %v", err)
				}
				got, err = reuseRun(t, sim, nil, 300)
				if err != nil {
					t.Fatalf("run after abort: %v", err)
				}
				requireIdentical(t, "after cycle-limit abort", want, got)

				// Reset into a cancelled run, then Reset back to clean.
				cancelled, cancel := context.WithCancel(context.Background())
				cancel()
				if err := sim.Reset(nil); err != nil {
					t.Fatalf("Reset before cancelled run: %v", err)
				}
				// A long workload guarantees the (asynchronously delivered)
				// cancellation lands mid-run rather than after completion.
				if _, err = reuseRun(t, sim, cancelled, 100000); err == nil {
					t.Fatalf("cancelled run should report a RunError")
				} else {
					var re *RunError
					if !errors.As(err, &re) || re.Reason != Cancelled {
						t.Fatalf("cancelled run: %v", err)
					}
				}
				if err := sim.Reset(nil); err != nil {
					t.Fatalf("Reset after cancellation: %v", err)
				}
				got, err = reuseRun(t, sim, nil, 300)
				if err != nil {
					t.Fatalf("run after cancellation: %v", err)
				}
				requireIdentical(t, "after cancellation", want, got)
			})
		}
	}
}

// panicObserver is an access observer that faults after a fixed number of
// observed accesses — the injected-fault vector for the panic-discard tests.
type panicObserver struct{ fuse int }

func (p *panicObserver) ObserveAccess(lineAddr uint64, write bool, coreID int, cycle uint64) {
	p.fuse--
	if p.fuse <= 0 {
		panic("injected observer fault")
	}
}

// TestReuseRefusedAfterPanic injects a panic into a reusable simulator's run
// and requires (a) the run to be contained and typed, (b) Reset to refuse the
// panicked simulator, and (c) a replacement fresh simulator to still produce
// the baseline results — the discard-and-rebuild path the serve pool uses.
func TestReuseRefusedAfterPanic(t *testing.T) {
	fresh, err := New(reuseCfg(WeaveParallel, false))
	if err != nil {
		t.Fatal(err)
	}
	want, err := reuseRun(t, fresh, nil, 300)
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}

	sim, err := New(reuseCfg(WeaveParallel, false))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetReusable(true)
	defer sim.Close()
	sim.sys.Cores[0].SetObserver(&panicObserver{fuse: 100})
	_, err = reuseRun(t, sim, nil, 300)
	var re *RunError
	if !errors.As(err, &re) || re.Reason != Panicked {
		t.Fatalf("injected fault not typed as panic: %v", err)
	}
	if err := sim.Reset(nil); err == nil {
		t.Fatalf("Reset must refuse a panicked simulator")
	}

	replacement, err := New(reuseCfg(WeaveParallel, false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := reuseRun(t, replacement, nil, 300)
	if err != nil {
		t.Fatalf("replacement run: %v", err)
	}
	requireIdentical(t, "replacement after panic-discard", want, got)
}

// TestReuseShapeKeyGuards pins the Reset preconditions: non-reusable
// simulators refuse Reset, and a shape-changing configuration is rejected
// while a run-variable-only change is accepted.
func TestReuseShapeKeyGuards(t *testing.T) {
	plain, err := New(reuseCfg(WeaveParallel, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Reset(nil); err == nil {
		t.Fatalf("Reset on a non-reusable simulator must fail")
	}

	sim, err := New(reuseCfg(WeaveParallel, false))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetReusable(true)
	defer sim.Close()
	if _, err := reuseRun(t, sim, nil, 300); err != nil {
		t.Fatal(err)
	}

	other := reuseCfg(WeaveParallel, false)
	other.NumCores = 8
	if err := sim.Reset(other); err == nil {
		t.Fatalf("shape-changing Reset must fail")
	}

	same := reuseCfg(WeaveParallel, false)
	same.Name = "renamed"
	same.MaxCycles = 1 << 40
	if err := sim.Reset(same); err != nil {
		t.Fatalf("run-variable-only Reset should succeed: %v", err)
	}

	// The shape key itself: insensitive to run-variable fields, sensitive to
	// construction shape.
	a, b := reuseCfg(WeaveParallel, false), reuseCfg(WeaveParallel, false)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	b.Name, b.MaxCycles, b.MaxWallTime = "x", 123, 456
	if a.ShapeKey() != b.ShapeKey() {
		t.Fatalf("shape key must ignore run-variable fields")
	}
	b.L3.Banks = 4
	if a.ShapeKey() == b.ShapeKey() {
		t.Fatalf("shape key must see construction shape changes")
	}
}

// TestReuseArenaFootprintFlat pins the warm-memory claim: once a reusable
// simulator has served one run, further Reset+run cycles allocate no new
// arena chunks — the construction and per-run arenas serve every subsequent
// run from retained memory.
func TestReuseArenaFootprintFlat(t *testing.T) {
	sim, err := New(reuseCfg(WeaveParallel, true))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetReusable(true)
	defer sim.Close()
	first, err := reuseRun(t, sim, nil, 300)
	if err != nil {
		t.Fatal(err)
	}
	if first.ArenaChunks == 0 || first.ArenaBytes == 0 {
		t.Fatalf("arena stats missing from result: %+v", first)
	}
	for i := 0; i < 3; i++ {
		if err := sim.Reset(nil); err != nil {
			t.Fatal(err)
		}
		res, err := reuseRun(t, sim, nil, 300)
		if err != nil {
			t.Fatal(err)
		}
		if res.ArenaChunks != first.ArenaChunks || res.ArenaBytes != first.ArenaBytes {
			t.Fatalf("reuse %d grew the arenas: %d chunks / %d B, first run had %d / %d",
				i+1, res.ArenaChunks, res.ArenaBytes, first.ArenaChunks, first.ArenaBytes)
		}
	}
}

// TestConfigShapeKeyStability double-checks ShapeKey through the config
// package's own types (it is the key the serve pool indexes by).
func TestConfigShapeKeyStability(t *testing.T) {
	a := config.SmallTest()
	b := config.SmallTest()
	if a.ShapeKey() != b.ShapeKey() {
		t.Fatalf("identical configs must agree on shape")
	}
	b.CoreModel = config.CoreOOO
	if a.ShapeKey() == b.ShapeKey() {
		t.Fatalf("core model is construction shape")
	}
}
