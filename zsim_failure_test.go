package zsim

// Facade-level failure matrix: every abnormal-stop path must return partial
// metrics plus a typed *RunError, release the simulator's resources, and
// leave the process reusable (a fresh simulation runs cleanly afterwards).

import (
	"context"
	"errors"
	"testing"
	"time"
)

// endlessFacadeSim builds a facade simulator whose workload never finishes on
// its own.
func endlessFacadeSim(t *testing.T, mutate func(*Config)) *Simulator {
	t.Helper()
	cfg := SmallConfig()
	cfg.NumCores = 2
	if mutate != nil {
		mutate(cfg)
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	params := DefaultWorkloadParams()
	params.BlocksPerThread = 1 << 30
	sim.AddWorkload("endless", params, cfg.NumCores)
	sim.SetHostThreads(2)
	return sim
}

// expectRunError asserts the run failed with the given reason and that the
// partial result is present and consistent on both return paths.
func expectRunError(t *testing.T, res *Result, err error, want FailureReason) *RunError {
	t.Helper()
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v (%T)", err, err)
	}
	if re.Reason != want {
		t.Fatalf("reason = %v, want %v", re.Reason, want)
	}
	if res == nil || re.Partial != res {
		t.Fatalf("partial result must be returned directly and via RunError.Partial")
	}
	if res.Metrics == nil {
		t.Fatalf("partial result should carry metrics")
	}
	return re
}

// reusableAfterFailure runs a fresh simulation to completion, proving the
// failure left the process (pools, engines, goroutines) healthy.
func reusableAfterFailure(t *testing.T) {
	t.Helper()
	sim, err := New(SmallConfig())
	if err != nil {
		t.Fatalf("New after failure: %v", err)
	}
	params := DefaultWorkloadParams()
	params.BlocksPerThread = 100
	sim.AddWorkload("after-failure", params, 2)
	sim.SetHostThreads(2)
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("follow-up run should be clean, got %v", err)
	}
	if res.Metrics.Instrs == 0 {
		t.Fatalf("follow-up run did no work")
	}
}

func TestRunContextCancelledMidRun(t *testing.T) {
	sim := endlessFacadeSim(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res, err := sim.RunContext(ctx)
	re := expectRunError(t, res, err, Cancelled)
	if res.Metrics.Instrs == 0 || res.Intervals == 0 {
		t.Fatalf("cancelled run should report partial progress: %+v", res.Metrics)
	}
	if re.Interval == 0 || re.Cycle == 0 {
		t.Fatalf("RunError should locate the stop point: %+v", re)
	}
	reusableAfterFailure(t)
}

func TestRunWallTimeExceeded(t *testing.T) {
	sim := endlessFacadeSim(t, func(cfg *Config) { cfg.MaxWallTime = 25 * time.Millisecond })
	start := time.Now()
	res, err := sim.Run()
	expectRunError(t, res, err, DeadlineExceeded)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog stop took %v", elapsed)
	}
	if res.Metrics.Instrs == 0 {
		t.Fatalf("overrun run should keep partial metrics")
	}
	reusableAfterFailure(t)
}

func TestRunCycleLimitHit(t *testing.T) {
	sim := endlessFacadeSim(t, func(cfg *Config) { cfg.MaxCycles = 20_000 })
	res, err := sim.Run()
	re := expectRunError(t, res, err, CycleLimit)
	if re.Cycle < 20_000 {
		t.Fatalf("run stopped before the cycle limit: %d", re.Cycle)
	}
	if res.Metrics.Instrs == 0 {
		t.Fatalf("cycle-limited run should keep partial metrics")
	}
	reusableAfterFailure(t)
}

func TestRunDeadlockReturnsTypedError(t *testing.T) {
	cfg := SmallConfig()
	cfg.NumCores = 2
	sim, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	params := DefaultWorkloadParams()
	params.BlocksPerThread = 100
	sim.AddWorkload("deadlock", params, 2)
	// Pre-seed a genuine deadlock in the scheduler: thread 0 waits at a
	// barrier holding the lock thread 1 needs.
	t0, t1 := sim.sched.Thread(0), sim.sched.Thread(1)
	sim.sched.ScheduleInterval(0)
	if !sim.sched.OnLockAcquire(t0, 1, 0) {
		t.Fatal("free lock should be granted")
	}
	sim.sched.OnBarrier(t0, 1, 0)
	if sim.sched.OnLockAcquire(t1, 1, 0) {
		t.Fatal("held lock should block")
	}
	res, err := sim.Run()
	expectRunError(t, res, err, Deadlocked)
	if !res.Stalled {
		t.Fatalf("deadlocked run should also report Result.Stalled")
	}
	reusableAfterFailure(t)
}

// panicAccessObserver panics after n observed accesses, from inside a
// bound-phase worker.
type panicAccessObserver struct{ countdown int }

func (p *panicAccessObserver) ObserveAccess(lineAddr uint64, write bool, coreID int, cycle uint64) {
	p.countdown--
	if p.countdown <= 0 {
		panic("injected facade fault")
	}
}

func TestRunWorkerPanicIsolated(t *testing.T) {
	sim := endlessFacadeSim(t, nil)
	sim.sys.Cores[0].SetObserver(&panicAccessObserver{countdown: 200})
	res, err := sim.Run() // must return a structured error, not crash
	re := expectRunError(t, res, err, Panicked)
	if re.Panic != "injected facade fault" {
		t.Fatalf("panic value lost: %q", re.Panic)
	}
	if len(re.Stack) == 0 {
		t.Fatalf("panicked RunError should carry the worker stack")
	}
	if re.Phase != "bound" {
		t.Fatalf("fault phase = %q, want bound", re.Phase)
	}
	reusableAfterFailure(t)
}

// TestRunContextCleanRunNoError pins the happy path: an uncancelled context
// changes nothing, and reaching MaxInstructions is a completion, not a
// failure.
func TestRunContextCleanRunNoError(t *testing.T) {
	sim := endlessFacadeSim(t, nil)
	sim.SetMaxInstructions(50_000)
	res, err := sim.RunContext(context.Background())
	if err != nil {
		t.Fatalf("clean run returned %v", err)
	}
	if res.Metrics.Instrs < 50_000 {
		t.Fatalf("run should reach its instruction budget, got %d", res.Metrics.Instrs)
	}
}
