module zsim

go 1.24
