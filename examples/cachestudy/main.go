// Cachestudy: the kind of experiment the paper's introduction motivates —
// using fast IPC1 cores to sweep a cache parameter (here, the private L2
// size) and measure its effect on miss rates and performance for a
// streaming workload whose working set straddles the swept sizes. This is the
// "caching optimization evaluated with simple cores" usage pattern, where
// simulation speed matters more than core detail.
//
// Run with:
//
//	go run ./examples/cachestudy
package main

import (
	"fmt"
	"log"

	"zsim"
)

func main() {
	fmt.Println("== L2 size sweep, streaming workload with a 384 KB working set, IPC1 cores ==")
	fmt.Printf("%-10s %-10s %-10s %-10s %-10s\n", "L2 size", "L2 MPKI", "L3 MPKI", "IPC", "cycles")
	for _, sizeKB := range []int{128, 256, 512, 1024, 2048} {
		cfg := zsim.WestmereConfig()
		cfg.CoreModel = "ipc1" // fast cores for a cache study
		cfg.Contention = false
		cfg.L2.SizeKB = sizeKB

		sim, err := zsim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		params := zsim.DefaultWorkloadParams()
		params.BlocksPerThread = 60000
		params.WorkingSet = 384 << 10 // streams over 384 KB, wrapping repeatedly
		params.StridedFraction = 1.0
		params.MemFraction = 0.38
		sim.AddWorkload("stream-384k", params, 1)
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-10.2f %-10.2f %-10.2f %-10d\n",
			fmt.Sprintf("%d KB", sizeKB), res.Metrics.L2MPKI, res.Metrics.L3MPKI, res.Metrics.IPC, res.Metrics.Cycles)
	}
	fmt.Println("\nOnce the L2 covers the working set (>= 512 KB here), its miss rate collapses and IPC rises.")
}
