// Quickstart: simulate a PARSEC-like multithreaded workload on the validated
// 6-core Westmere-class configuration and print the headline results.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"zsim"
)

func main() {
	// The Table 2 configuration from the paper: 6 OOO cores, 32KB L1s, 256KB
	// private L2s, a 12MB 6-bank shared L3 and one DDR3-1333 memory channel.
	cfg := zsim.WestmereConfig()

	sim, err := zsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Run the blackscholes-like workload with 6 threads. Named workloads are
	// deterministic synthetic program models tuned to match the behavioural
	// envelope of the paper's benchmarks.
	if _, err := sim.AddNamedWorkload("blackscholes", 6); err != nil {
		log.Fatal(err)
	}
	sim.SetMaxInstructions(2_000_000)

	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== quickstart ==")
	fmt.Println(res.Summary())
	fmt.Printf("aggregate IPC: %.2f   L3 MPKI: %.2f   simulation speed: %.1f MIPS\n",
		res.Metrics.IPC, res.Metrics.L3MPKI, res.Metrics.SimMIPS)
}
