// Clientserver: a multiprocess client-server workload of the kind Section 3.3
// motivates (h-store, memcached): a "server" process whose threads block on
// request-wait system calls and a "client" process that issues bursts of
// work, both running on one simulated chip. The example exercises the
// user-level virtualization layer: multiple processes, more software threads
// than cores, blocking syscalls that leave and rejoin the interval barrier,
// and the round-robin scheduler.
//
// Run with:
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"

	"zsim"
)

func main() {
	cfg := zsim.SmallConfig()
	cfg.CoreModel = "ooo"
	sim, err := zsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The server: 6 worker threads (more than the chip's 4 cores, so the
	// scheduler time-multiplexes them) that periodically block waiting for
	// requests, like a thread-per-connection network server.
	server := zsim.DefaultWorkloadParams()
	server.BlocksPerThread = 2500
	server.MemFraction = 0.35
	server.SharedWorkingSet = 4 << 20
	server.SharedFraction = 0.3
	server.LockEvery = 40 // a shared request queue protected by a lock
	server.LockHoldBlocks = 2
	server.NumLocks = 4
	server.BlockedSyscallEvery = 120 // epoll/recv-style blocking waits
	server.BlockedSyscallCycles = 8000
	sim.AddWorkload("server", server, 6)

	// The client: 2 threads generating requests with small working sets,
	// also blocking between bursts (think of a load generator with timeouts;
	// timing virtualization keeps its timeouts in simulated time).
	client := zsim.DefaultWorkloadParams()
	client.BlocksPerThread = 2000
	client.MemFraction = 0.2
	client.BlockedSyscallEvery = 200
	client.BlockedSyscallCycles = 4000
	sim.AddWorkload("client", client, 2)

	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== client-server ==")
	fmt.Println(res.Summary())
	fmt.Printf("8 software threads were multiplexed onto %d cores; blocking syscalls and lock\n"+
		"contention shaped the schedule in simulated time.\n", cfg.NumCores)
	fmt.Printf("scheduler: %d context switches, %d mid-interval joins (threads pulled onto a\n"+
		"core freed by a blocking thread without waiting for the next interval barrier),\n"+
		"%d lock blocks, %d barrier waits, %d blocking syscalls, %d bound rounds over %d intervals.\n",
		res.Sched.ContextSwitches, res.Sched.MidIntervalJoins,
		res.Sched.LockBlocks, res.Sched.BarrierWaits, res.Sched.SyscallBlocks,
		res.BoundRounds, res.Intervals)
}
