// Heterogeneous: the Section 3.4 scenario — a chip with a few big
// out-of-order cores and many small in-order (IPC1) cores sharing the same
// L3, running two different applications pinned to each core group.
//
// The example builds both halves as separate simulations of the same workload
// budget (a big-core run and a little-core run) and contrasts their results,
// then runs the multiprogrammed case: two workloads pinned to disjoint core
// groups of one chip, showing the scheduler's affinity support.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"zsim"
)

func main() {
	// A latency-critical, ILP-rich workload and a throughput batch workload.
	fgName, bgName := "namd", "mcf"

	// Part 1: same workload budget on an OOO core vs an IPC1 core.
	fmt.Println("== per-core-type comparison ==")
	for _, model := range []string{"ooo", "ipc1"} {
		cfg := zsim.WestmereConfig()
		cfg.CoreModel = zsim.CoreModel(model)
		sim, err := zsim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sim.AddNamedWorkload(fgName, 1); err != nil {
			log.Fatal(err)
		}
		sim.SetMaxInstructions(1_000_000)
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s cores: IPC %.2f, %d cycles\n", model, res.Metrics.IPC, res.Metrics.Cycles)
	}

	// Part 2: a multiprogrammed run with core-group affinities — the big
	// cores (0-1) run the latency-critical workload, the little cores (2-3)
	// run the batch workload, all sharing the L3.
	fmt.Println("\n== multiprogrammed chip with core-group affinities ==")
	cfg := zsim.SmallConfig()
	cfg.CoreModel = "ooo"
	sim, err := zsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fg, _ := zsim.LookupWorkload(fgName)
	bg, _ := zsim.LookupWorkload(bgName)
	fg.BlocksPerThread = 3000
	bg.BlocksPerThread = 3000
	sim.AddPinnedWorkload(fgName, fg, 2, []int{0, 1})
	sim.AddPinnedWorkload(bgName, bg, 2, []int{2, 3})
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())
}
