// Package arena provides the slab allocator that backs simulator
// construction. Building a large simulated chip (1,024 cores, thousands of
// caches, predictors and statistics counters) naturally decomposes into
// millions of small, identically-typed, never-freed allocations; the arena
// turns each type's stream of small allocations into a handful of large
// chunk allocations. One Arena is created per simulated system (it hangs off
// the root stats.Registry) and feeds cache sets, stripe state, predictor
// tables, statistics counters and weave-event slabs.
//
// Objects taken from an arena are never returned individually, but a whole
// arena can be rewound: Reset retains every allocated chunk and rewinds the
// carve offsets, so the next construction pass re-Takes the same warm memory
// with zero new chunk allocations (the basis of warm-simulator reuse).
// Memory handed out is always zeroed — chunks come fresh from the Go
// allocator, and Reset re-zeroes the carved prefix of every chunk — so
// zero-value-initialized structures (biased branch-predictor counters,
// Invalid cache lines, statistics counters) need no separate init pass,
// fresh or reused.
//
// All entry points accept a nil *Arena and fall back to plain make, so
// components remain constructible in isolation (tests, examples) without
// threading an arena through every call site.
package arena

import (
	"reflect"
	"sync"
	"unsafe"
)

// Chunk sizing: each type's pool starts with a small chunk and doubles up to
// the cap, so small systems (a 4-core test chip touches ~20 element types)
// pay kilobytes of slack per type while 1,024-core chips still amortize into
// a handful of large chunks. Takes bigger than the cap get a dedicated
// exactly-sized chunk.
const (
	minChunkBytes = 2 << 10
	maxChunkBytes = 256 << 10
)

// Arena is a type-segregated slab allocator that only grows between Resets.
// It is safe for concurrent use (construction is mostly single-threaded, but
// lazily allocated cache sets take from the arena during the parallel bound
// phase).
type Arena struct {
	mu    sync.Mutex
	pools map[reflect.Type]any

	chunks int
	bytes  uint64
}

// New creates an empty arena.
func New() *Arena {
	return &Arena{pools: make(map[reflect.Type]any)}
}

// Stats reports the number of chunk allocations performed and the total bytes
// reserved so far (diagnostics for construction benchmarks and job results).
// Both are monotone: Reset retains chunks, so a warm arena's stats stop
// growing once its working set is established.
func (a *Arena) Stats() (chunks int, bytes uint64) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.chunks, a.bytes
}

// resetter lets Arena.Reset rewind a pool without knowing its element type.
type resetter interface{ reset() }

// Reset rewinds the arena: every chunk is retained, its carved prefix is
// re-zeroed, and carving restarts from the first chunk. Slices previously
// Taken become dangling aliases of memory the arena will hand out again —
// callers must drop every reference rooted in the arena before resetting
// (the warm-pool discipline: the whole object graph built from the arena is
// torn down or rebuilt together).
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, p := range a.pools {
		p.(resetter).reset()
	}
}

// chunk is one retained slab of a pool: its backing storage and how much of
// it has been carved.
type chunk[T any] struct {
	buf  []T
	used int
}

// pool is the per-type chunk state: the retained chunks, the index of the
// chunk currently being carved, and the size the next new chunk will have
// (geometric growth, preserved across Resets).
type pool[T any] struct {
	chunks    []chunk[T]
	cur       int
	nextBytes int
}

func (p *pool[T]) reset() {
	for i := range p.chunks {
		ch := &p.chunks[i]
		clear(ch.buf[:ch.used])
		ch.used = 0
	}
	p.cur = 0
}

// Take returns a zeroed slice of n Ts with len == cap == n, carved from the
// arena's current chunk for T (allocating a new chunk when it runs out). A
// nil arena falls back to make([]T, n).
func Take[T any](a *Arena, n int) []T {
	return TakeCap[T](a, n, n)
}

// TakeCap returns a zeroed slice of type []T with the given length and
// capacity, carved from the arena. Appending beyond cap spills to the regular
// heap (a correct, rare slow path for growable slices whose typical size is
// known). A nil arena falls back to make([]T, n, c).
func TakeCap[T any](a *Arena, n, c int) []T {
	if c < n {
		c = n
	}
	if a == nil {
		if c == 0 {
			return nil
		}
		return make([]T, n, c)
	}
	if c == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	key := reflect.TypeOf((*T)(nil))
	p, ok := a.pools[key].(*pool[T])
	if !ok {
		p = &pool[T]{}
		a.pools[key] = p
	}
	// Advance past retained chunks that cannot fit this request. After a
	// Reset this walks forward through warm chunks; before any Reset, cur is
	// always the last chunk, matching the original single-tail behavior.
	for p.cur < len(p.chunks) && len(p.chunks[p.cur].buf)-p.chunks[p.cur].used < c {
		p.cur++
	}
	if p.cur == len(p.chunks) {
		var zero T
		size := int(unsafe.Sizeof(zero))
		if p.nextBytes < minChunkBytes {
			p.nextBytes = minChunkBytes
		}
		elems := c
		if size > 0 {
			if per := p.nextBytes / size; per > elems {
				elems = per
			}
		}
		if p.nextBytes < maxChunkBytes {
			p.nextBytes *= 2
		}
		p.chunks = append(p.chunks, chunk[T]{buf: make([]T, elems)})
		a.chunks++
		a.bytes += uint64(elems * size)
	}
	ch := &p.chunks[p.cur]
	s := ch.buf[ch.used : ch.used+c : ch.used+c]
	ch.used += c
	return s[:n]
}

// One returns a pointer to a zeroed T carved from the arena (or heap-allocated
// for a nil arena).
func One[T any](a *Arena) *T {
	if a == nil {
		return new(T)
	}
	return &Take[T](a, 1)[0]
}
