package arena

import "testing"

func TestTakeCarvesZeroedStableSlices(t *testing.T) {
	a := New()
	s1 := Take[uint64](a, 100)
	if len(s1) != 100 || cap(s1) != 100 {
		t.Fatalf("len/cap: %d/%d", len(s1), cap(s1))
	}
	for i := range s1 {
		if s1[i] != 0 {
			t.Fatalf("arena memory not zeroed at %d", i)
		}
		s1[i] = uint64(i)
	}
	// A second take must not alias the first.
	s2 := Take[uint64](a, 100)
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatalf("second take aliases the first at %d", i)
		}
	}
	for i := range s1 {
		if s1[i] != uint64(i) {
			t.Fatalf("first take corrupted at %d", i)
		}
	}
}

func TestTakeCapSpillsToHeapOnAppend(t *testing.T) {
	a := New()
	s := TakeCap[int](a, 0, 4)
	if len(s) != 0 || cap(s) != 4 {
		t.Fatalf("len/cap: %d/%d", len(s), cap(s))
	}
	next := Take[int](a, 1)
	// Appending past cap must reallocate (not bleed into the arena chunk).
	s = append(s, 1, 2, 3, 4, 5)
	if next[0] != 0 {
		t.Fatalf("append past cap overwrote the next arena object")
	}
}

func TestLargeTakeGetsDedicatedChunk(t *testing.T) {
	a := New()
	huge := Take[byte](a, 4<<20)
	if len(huge) != 4<<20 {
		t.Fatalf("len: %d", len(huge))
	}
	chunks, bytes := a.Stats()
	if chunks != 1 || bytes < 4<<20 {
		t.Fatalf("stats: chunks=%d bytes=%d", chunks, bytes)
	}
}

func TestNilArenaFallsBackToHeap(t *testing.T) {
	s := Take[int]((*Arena)(nil), 3)
	if len(s) != 3 {
		t.Fatalf("nil-arena take: %d", len(s))
	}
	p := One[int](nil)
	if p == nil || *p != 0 {
		t.Fatalf("nil-arena one")
	}
	if c, b := (*Arena)(nil).Stats(); c != 0 || b != 0 {
		t.Fatalf("nil-arena stats")
	}
}

func TestChunkAmortization(t *testing.T) {
	a := New()
	// Many small takes of one type consume O(log total + total/maxChunk)
	// chunks: geometric growth to the cap, then cap-sized chunks.
	for i := 0; i < 10000; i++ {
		_ = Take[uint64](a, 4)
	}
	chunks, _ := a.Stats()
	if chunks > 10 {
		t.Fatalf("10k 32-byte takes (320KB) should amortize into ≤10 chunks, used %d", chunks)
	}
	// A fresh arena's first take stays small: tiny systems must not pay the
	// max chunk size per type.
	b := New()
	_ = Take[uint64](b, 4)
	if _, bytes := b.Stats(); bytes > 4<<10 {
		t.Fatalf("first chunk should be small, got %d bytes", bytes)
	}
}
