// Package core implements the instruction-driven core timing models that are
// the paper's first contribution: a simple IPC=1 core and a detailed
// Westmere-class out-of-order core. Both are driven once per µop (or block)
// by the dynamic instruction stream, rather than being stepped every cycle
// (cycle-driven) or scheduled through a priority queue (event-driven). All
// per-instruction decode work (µop fission, port masks, latencies, frontend
// stall cycles) was already done once per static block by the isa.Decoder, so
// the per-µop work here is a handful of clock updates — this is what gives
// the 10-100x core-model speedup over conventional simulators.
package core

import (
	"zsim/internal/arena"
	"zsim/internal/bpred"
	"zsim/internal/cache"
	"zsim/internal/stats"
	"zsim/internal/trace"
)

// Core is the interface shared by the IPC1 and OOO core models. A core is
// driven by one host thread at a time (the bound phase barrier guarantees
// this), so implementations are not internally synchronized.
type Core interface {
	// SimulateBlock advances the core's timing state over one dynamic basic
	// block, performing the instruction-cache and data-cache accesses it
	// implies.
	SimulateBlock(b *trace.DynBlock)
	// Cycle returns the core's current cycle (the retire-stage clock).
	Cycle() uint64
	// Instrs returns the number of instructions simulated.
	Instrs() uint64
	// Uops returns the number of µops simulated.
	Uops() uint64
	// AddDelay applies weave-phase feedback: it advances every internal clock
	// by the given number of cycles (the contention-induced delay of the
	// core's accesses in the previous interval).
	AddDelay(cycles uint64)
	// SetCycle fast-forwards the core's clocks to at least the given cycle
	// (used when a descheduled thread is rescheduled onto the core, and at
	// interval joins).
	SetCycle(cycle uint64)
	// ContextSwitch notifies the core that a different software thread is
	// about to run on it (mid-interval rescheduling or time multiplexing):
	// transient micro-state tied to the outgoing thread's instruction stream
	// (e.g. the last-fetched I-cache line) is invalidated so the incoming
	// thread pays its own first fetch.
	ContextSwitch()
	// SetRecorder installs the bound-phase access recorder used to build
	// weave events; a nil recorder (the default) disables recording.
	SetRecorder(rec AccessRecorder)
	// SetObserver installs a line-granularity access observer (used by the
	// path-altering-interference profiler); nil disables it.
	SetObserver(obs cache.AccessObserver)
	// Reset restores the core to its just-constructed state (clocks, branch
	// predictor, pipeline structures, transient fetch state) for
	// warm-simulator reuse. Registry-owned counters are zeroed separately by
	// the stats tree's Reset; installed recorders and observers are removed
	// (the simulator re-installs them). The core must be quiescent.
	Reset()
	// ID returns the core's index in the simulated chip.
	ID() int
	// Name returns the core model's name ("ipc1" or "ooo").
	Name() string
	// BranchStats returns (predicted, mispredicted) branch counts.
	BranchStats() (uint64, uint64)
}

// AccessRecorder receives, for every memory access that leaves the core while
// recording is enabled, the zero-load issue cycle and the hierarchy hops the
// access performed. The bound-weave driver uses it to build weave events for
// accesses that miss beyond the private levels.
//
// RecordAccess takes ownership of the hops slice and returns a replacement
// hop buffer (length 0, possibly nil) for the core's next access. Recorders
// recycle the buffers of consumed traces back to their core, which makes the
// steady-state record path allocation-free. write distinguishes stores (which
// do not stall the core) from loads, so the weave phase can serialize a
// core's access stream behind its loads only.
type AccessRecorder interface {
	RecordAccess(coreID int, issueCycle uint64, write bool, hops []cache.Hop) []cache.Hop
}

// MemPorts bundles the cache ports a core issues accesses to.
type MemPorts struct {
	L1I cache.Level
	L1D cache.Level
}

// memUnit is the access machinery shared by the core models: the cache
// ports, the installed recorder and observer, and the pooled request plus
// recycled hop buffer that make the steady-state access path
// allocation-free. Core models embed it and issue every hierarchy access
// through its access method.
type memUnit struct {
	id    int
	ports MemPorts
	rec   AccessRecorder
	obs   cache.AccessObserver

	// req is the core's reusable request (one access is in flight at a time)
	// and hopBuf the recycled hop buffer for the next traced access.
	req    cache.Request
	hopBuf []cache.Hop
}

// ID returns the core's index.
func (m *memUnit) ID() int { return m.id }

// SetRecorder installs the access recorder.
func (m *memUnit) SetRecorder(rec AccessRecorder) { m.rec = rec }

// SetObserver installs the line-access observer.
func (m *memUnit) SetObserver(obs cache.AccessObserver) { m.obs = obs }

// reset clears the unit's transient state (in-flight request, installed
// recorder and observer) while keeping the identity, ports and the recycled
// hop buffer's capacity. A fresh core's hop buffer is nil and a reused one is
// a zero-length warm buffer; both are fully overwritten before any read.
func (m *memUnit) reset() {
	m.rec = nil
	m.obs = nil
	m.req = cache.Request{}
	m.hopBuf = m.hopBuf[:0]
}

// access issues one request to a cache port, recording hops when a recorder
// is installed. The request struct and the hop buffer are reused across
// accesses, so the steady-state access path allocates nothing.
func (m *memUnit) access(port cache.Level, lineAddr uint64, write bool, cycle uint64) uint64 {
	if port == nil {
		return cycle
	}
	m.req = cache.Request{
		LineAddr:   lineAddr,
		Write:      write,
		CoreID:     m.id,
		Cycle:      cycle,
		Hops:       m.hopBuf[:0],
		RecordHops: m.rec != nil,
		Prof:       m.obs,
	}
	avail := port.Access(&m.req)
	if m.rec != nil && len(m.req.Hops) > 0 {
		m.hopBuf = m.rec.RecordAccess(m.id, cycle, write, m.req.Hops)
	} else {
		m.hopBuf = m.req.Hops
	}
	m.req.Hops = nil
	return avail
}

// Counters groups the statistic counters every core model maintains.
type Counters struct {
	Instrs     *stats.Counter
	Uops       *stats.Counter
	Cycles     *stats.Counter
	Loads      *stats.Counter
	Stores     *stats.Counter
	Fetches    *stats.Counter
	BrPred     *stats.Counter
	BrMiss     *stats.Counter
	FetchStall *stats.Counter
	IssueStall *stats.Counter
}

func newCounters(reg *stats.Registry) Counters {
	return Counters{
		Instrs:     reg.Counter("instrs", "instructions simulated"),
		Uops:       reg.Counter("uops", "µops simulated"),
		Cycles:     reg.Counter("cycles", "core cycles elapsed"),
		Loads:      reg.Counter("loads", "load µops issued to the L1D"),
		Stores:     reg.Counter("stores", "store µops issued to the L1D"),
		Fetches:    reg.Counter("fetches", "instruction-fetch accesses to the L1I"),
		BrPred:     reg.Counter("branchPredictions", "conditional branches predicted"),
		BrMiss:     reg.Counter("branchMispredicts", "conditional branches mispredicted"),
		FetchStall: reg.Counter("fetchStallCycles", "cycles lost to frontend stalls"),
		IssueStall: reg.Counter("issueStallCycles", "cycles lost to backend (issue) stalls"),
	}
}

// IPC1 is the simple core model: one cycle per instruction, plus the memory
// hierarchy's latency for loads (stores are buffered and do not stall), plus
// instruction-fetch stalls. It is the model architects use for quick cache
// studies, and the "IPC1" configuration of the paper's evaluation.
type IPC1 struct {
	memUnit
	cnt Counters

	cycle     uint64
	lastFetch uint64 // line address of the last fetched I-cache line
	pred      *bpred.Stats
}

// NewIPC1 creates a simple core. When the registry tree carries a
// construction arena, the core object and its predictor tables are carved
// from it.
func NewIPC1(id int, ports MemPorts, reg *stats.Registry) *IPC1 {
	a := reg.Arena()
	c := arena.One[IPC1](a)
	c.memUnit = memUnit{id: id, ports: ports}
	c.cnt = newCounters(reg)
	c.pred = bpred.NewStatsIn(a, bpred.NewDefaultIn(a))
	return c
}

// Name returns "ipc1".
func (c *IPC1) Name() string { return "ipc1" }

// Cycle returns the core's current cycle.
func (c *IPC1) Cycle() uint64 { return c.cycle }

// Instrs returns the instruction count.
func (c *IPC1) Instrs() uint64 { return c.cnt.Instrs.Get() }

// Uops returns the µop count.
func (c *IPC1) Uops() uint64 { return c.cnt.Uops.Get() }

// BranchStats returns (predictions, mispredictions).
func (c *IPC1) BranchStats() (uint64, uint64) { return c.pred.Predictions, c.pred.Mispredicts }

// AddDelay applies weave-phase feedback.
func (c *IPC1) AddDelay(cycles uint64) {
	c.cycle += cycles
	c.cnt.Cycles.Set(c.cycle)
}

// SetCycle fast-forwards the core clock.
func (c *IPC1) SetCycle(cycle uint64) {
	if cycle > c.cycle {
		c.cycle = cycle
		c.cnt.Cycles.Set(c.cycle)
	}
}

// ContextSwitch invalidates the fetch micro-state when a different software
// thread is placed on the core, so the incoming thread refetches its first
// I-cache line instead of inheriting the outgoing thread's.
func (c *IPC1) ContextSwitch() { c.lastFetch = ^uint64(0) }

// Reset restores the just-constructed state for warm reuse.
func (c *IPC1) Reset() {
	c.memUnit.reset()
	c.cycle = 0
	c.lastFetch = 0
	c.pred.Reset()
}

// SimulateBlock simulates one dynamic block on the simple core.
func (c *IPC1) SimulateBlock(b *trace.DynBlock) {
	d := b.Decoded
	if d == nil {
		return
	}

	// Instruction fetch: one L1I access per new I-cache line touched.
	fetchLine := cache.LineAddr(d.Addr)
	if fetchLine != c.lastFetch {
		c.lastFetch = fetchLine
		c.cnt.Fetches.Inc()
		avail := c.access(c.ports.L1I, fetchLine, false, c.cycle)
		if avail > c.cycle {
			// The simple model charges I-cache miss latency fully.
			lat := avail - c.cycle
			if lat > uint64(lineHitLatency(c.ports.L1I)) {
				c.cnt.FetchStall.Add(lat)
				c.cycle = avail
			}
		}
	}

	// One cycle per instruction, using the block's precomputed aggregates.
	c.cycle += uint64(d.Instrs)
	c.cnt.Instrs.Add(uint64(d.Instrs))
	c.cnt.Uops.Add(uint64(len(d.Uops)))
	c.cnt.Loads.Add(uint64(d.Loads))
	c.cnt.Stores.Add(uint64(d.Stores))

	// Memory operations: loads stall the core for their full latency, stores
	// are sent to the hierarchy but do not stall. The block's timing template
	// lists exactly the memory µops, so the simple core's per-block work is
	// O(memory accesses) rather than O(µops).
	for i := range d.MemOps {
		m := &d.MemOps[i]
		addr := addrFor(b, m.Slot)
		if m.Store {
			c.access(c.ports.L1D, cache.LineAddr(addr), true, c.cycle)
		} else {
			avail := c.access(c.ports.L1D, cache.LineAddr(addr), false, c.cycle)
			if avail > c.cycle {
				c.cycle = avail
			}
		}
	}

	// Branch prediction: mispredictions add a fixed penalty even on the
	// simple core (this keeps branch MPKI statistics meaningful).
	if d.CondBranch {
		c.cnt.BrPred.Inc()
		if !c.pred.PredictAndUpdate(b.BranchPC, b.Taken) {
			c.cnt.BrMiss.Inc()
			c.cycle += mispredictPenalty
		}
	}
	c.cnt.Cycles.Set(c.cycle)
}

// lineHitLatency returns the hit latency of a cache.Level if it is a *cache.Cache.
func lineHitLatency(l cache.Level) uint32 {
	if cc, ok := l.(*cache.Cache); ok {
		return cc.Latency()
	}
	return 0
}

// addrFor returns the dynamic address for a memory slot, tolerating blocks
// whose address list is shorter than expected (defensive: the generator
// guarantees one address per slot).
func addrFor(b *trace.DynBlock, slot int8) uint64 {
	if slot < 0 || int(slot) >= len(b.Addrs) {
		return 0
	}
	return b.Addrs[slot]
}

// mispredictPenalty is the fixed branch-misprediction recovery penalty in
// cycles (Westmere recovers in ~17 cycles).
const mispredictPenalty = 17
