package core

import (
	"testing"

	"zsim/internal/cache"
	"zsim/internal/isa"
	"zsim/internal/memctrl"
	"zsim/internal/stats"
	"zsim/internal/trace"
)

// buildHierarchy creates a small private L1I/L1D + L2 -> memory hierarchy for
// one core and returns the ports.
func buildHierarchy() MemPorts {
	reg := stats.NewRegistry("sys")
	mem := memctrl.NewSimple("mem", 99, 120, reg.Child("mem"))
	l2 := cache.New(cache.Config{Name: "l2", SizeKB: 256, Ways: 8, Latency: 7}, 3, reg.Child("l2"))
	l2.SetParent(mem)
	l1i := cache.New(cache.Config{Name: "l1i", SizeKB: 32, Ways: 4, Latency: 3}, 1, reg.Child("l1i"))
	l1d := cache.New(cache.Config{Name: "l1d", SizeKB: 32, Ways: 8, Latency: 4}, 2, reg.Child("l1d"))
	l1i.SetParent(l2)
	l1d.SetParent(l2)
	l2.AddChild(l1i)
	l2.AddChild(l1d)
	return MemPorts{L1I: l1i, L1D: l1d}
}

// mkBlock builds a dynamic block from instructions and addresses.
func mkBlock(id uint64, addr uint64, instrs []isa.Instruction, addrs []uint64, taken bool) *trace.DynBlock {
	bb := &isa.BasicBlock{ID: id, Addr: addr, Instrs: instrs}
	d := isa.Decode(bb)
	return &trace.DynBlock{Decoded: d, Addrs: addrs, Taken: taken, BranchPC: addr + d.Bytes}
}

// aluBlock builds a block of n ALU instructions terminated by a conditional
// branch (cmp+jcc), like the blocks the workload generator emits.
func aluBlock(id uint64, n int) *trace.DynBlock {
	var instrs []isa.Instruction
	for i := 0; i < n; i++ {
		instrs = append(instrs, isa.Instruction{Op: isa.OpAdd, Dst: isa.GPR(i % 4), Src1: isa.GPR(i % 4), Src2: isa.GPR((i + 1) % 4), Bytes: 3})
	}
	instrs = append(instrs,
		isa.Instruction{Op: isa.OpCmp, Src1: isa.RAX, Src2: isa.RBX, Bytes: 3},
		isa.Instruction{Op: isa.OpJcc, Bytes: 2})
	return mkBlock(id, 0x400000+id*64, instrs, nil, true)
}

func loadBlock(id uint64, addrs []uint64) *trace.DynBlock {
	var instrs []isa.Instruction
	for range addrs {
		instrs = append(instrs, isa.Instruction{Op: isa.OpLoad, Dst: isa.RAX, Src1: isa.RBP, Bytes: 4})
	}
	return mkBlock(id, 0x400000+id*64, instrs, addrs, true)
}

func TestIPC1Basics(t *testing.T) {
	c := NewIPC1(3, buildHierarchy(), stats.NewRegistry("core"))
	if c.ID() != 3 || c.Name() != "ipc1" {
		t.Fatalf("metadata wrong")
	}
	b := aluBlock(1, 10)
	c.SimulateBlock(b)
	if c.Instrs() != 12 { // 10 ALU + cmp + jcc
		t.Fatalf("instrs: %d", c.Instrs())
	}
	if c.Uops() == 0 {
		t.Fatalf("uops should be counted")
	}
	// IPC1: pure ALU block costs ~1 cycle/instr plus the initial I-fetch.
	if c.Cycle() < 10 || c.Cycle() > 200 {
		t.Fatalf("cycle count out of range: %d", c.Cycle())
	}
	// Simulating the same block again is cheaper (warm I-cache) and still 1
	// cycle per instruction (12 instructions, correctly-predicted branch).
	c.SimulateBlock(b) // train the branch predictor
	before := c.Cycle()
	c.SimulateBlock(b)
	delta := c.Cycle() - before
	if delta != 12 {
		t.Fatalf("warm ALU block should cost exactly 12 cycles on IPC1, got %d", delta)
	}
}

func TestIPC1LoadLatencyStalls(t *testing.T) {
	ports := buildHierarchy()
	c := NewIPC1(0, ports, stats.NewRegistry("core"))
	// Warm up the I-cache with an ALU block at the same address.
	addrs := []uint64{1 << 30}
	b := loadBlock(1, addrs)
	c.SimulateBlock(b) // cold: misses all the way to memory
	coldCycles := c.Cycle()
	if coldCycles < 120 {
		t.Fatalf("cold load should pay memory latency, cycle=%d", coldCycles)
	}
	// Re-run with the same address: now a cache hit, much cheaper.
	before := c.Cycle()
	c.SimulateBlock(loadBlock(1, addrs))
	warmDelta := c.Cycle() - before
	if warmDelta > 20 {
		t.Fatalf("warm load block should be cheap, got %d cycles", warmDelta)
	}
}

func TestIPC1DelayAndSetCycle(t *testing.T) {
	c := NewIPC1(0, buildHierarchy(), stats.NewRegistry("core"))
	c.SimulateBlock(aluBlock(1, 4))
	base := c.Cycle()
	c.AddDelay(100)
	if c.Cycle() != base+100 {
		t.Fatalf("AddDelay should advance the clock")
	}
	c.SetCycle(base + 50) // behind: no effect
	if c.Cycle() != base+100 {
		t.Fatalf("SetCycle must never rewind")
	}
	c.SetCycle(base + 500)
	if c.Cycle() != base+500 {
		t.Fatalf("SetCycle should fast-forward")
	}
}

func TestIPC1BranchMispredictPenalty(t *testing.T) {
	c := NewIPC1(0, buildHierarchy(), stats.NewRegistry("core"))
	// Alternate outcomes on the same branch address at first confuse the
	// predictor; total mispredicts must be > 0 and each costs 17 cycles.
	b := aluBlock(1, 2)
	for i := 0; i < 50; i++ {
		b.Taken = i%3 == 0 // irregular pattern
		c.SimulateBlock(b)
	}
	pred, miss := c.BranchStats()
	if pred != 50 {
		t.Fatalf("should have predicted 50 branches, got %d", pred)
	}
	if miss == 0 {
		t.Fatalf("irregular branch should cause mispredictions")
	}
}

func TestOOOBasicThroughput(t *testing.T) {
	c := NewOOO(1, OOOWestmere(), buildHierarchy(), stats.NewRegistry("core"))
	if c.ID() != 1 || c.Name() != "ooo" {
		t.Fatalf("metadata wrong")
	}
	// High-ILP ALU blocks: the OOO core should sustain well above 1 IPC once
	// warm (4-wide issue, independent chains).
	var instrs []isa.Instruction
	for i := 0; i < 16; i++ {
		instrs = append(instrs, isa.Instruction{Op: isa.OpAdd, Dst: isa.GPR(i % 8), Src1: isa.GPR(i % 8), Src2: isa.GPR(i % 8), Bytes: 3})
	}
	b := mkBlock(1, 0x400000, instrs, nil, true)
	for i := 0; i < 200; i++ {
		c.SimulateBlock(b)
	}
	ipc := float64(c.Instrs()) / float64(c.Cycle())
	if ipc < 1.2 {
		t.Fatalf("OOO core should exceed IPC 1.2 on independent ALU work, got %.2f", ipc)
	}
	if ipc > 4.01 {
		t.Fatalf("OOO core cannot exceed its issue width, got %.2f", ipc)
	}
}

func TestOOOFasterThanIPC1OnILP(t *testing.T) {
	// The same high-ILP instruction stream should take fewer cycles on the
	// OOO core than on the IPC1 core.
	mkCores := func() (Core, Core) {
		return NewIPC1(0, buildHierarchy(), stats.NewRegistry("a")),
			NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("b"))
	}
	simple, ooo := mkCores()
	// Independent integer ALU work spread over many registers: three ALU
	// ports let the OOO core sustain ~3 per cycle, while IPC1 does 1.
	var instrs []isa.Instruction
	for i := 0; i < 12; i++ {
		instrs = append(instrs, isa.Instruction{Op: isa.OpAdd, Dst: isa.GPR(i % 12), Src1: isa.GPR(i % 12), Src2: isa.GPR(i % 12), Bytes: 3})
	}
	b := mkBlock(1, 0x400000, instrs, nil, true)
	for i := 0; i < 100; i++ {
		simple.SimulateBlock(b)
		ooo.SimulateBlock(b)
	}
	if ooo.Cycle() >= simple.Cycle() {
		t.Fatalf("OOO (%d cycles) should beat IPC1 (%d cycles) on ILP-rich code", ooo.Cycle(), simple.Cycle())
	}
}

func TestOOODependencyChainSerializes(t *testing.T) {
	// A long dependent chain of multiplies (latency 3) cannot run faster than
	// latency * count, regardless of width.
	c := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("core"))
	var instrs []isa.Instruction
	for i := 0; i < 10; i++ {
		instrs = append(instrs, isa.Instruction{Op: isa.OpMul, Dst: isa.RAX, Src1: isa.RAX, Src2: isa.RBX, Bytes: 3})
	}
	b := mkBlock(1, 0x400000, instrs, nil, true)
	for i := 0; i < 50; i++ {
		c.SimulateBlock(b)
	}
	cpi := float64(c.Cycle()) / float64(c.Instrs())
	if cpi < 2.5 {
		t.Fatalf("dependent multiply chain should be bound by its 3-cycle latency, got CPI %.2f", cpi)
	}
}

func TestOOOLoadMissStalls(t *testing.T) {
	ports := buildHierarchy()
	c := NewOOO(0, OOOWestmere(), ports, stats.NewRegistry("core"))
	// Dependent loads to distinct cold lines: every one misses to memory and
	// the dependent chain exposes the full latency.
	var lat []uint64
	for i := 0; i < 20; i++ {
		addrs := []uint64{uint64(1<<32) + uint64(i)*4096}
		instrs := []isa.Instruction{
			{Op: isa.OpLoad, Dst: isa.RAX, Src1: isa.RAX, Bytes: 4},
			{Op: isa.OpAdd, Dst: isa.RAX, Src1: isa.RAX, Src2: isa.RAX, Bytes: 3},
		}
		before := c.Cycle()
		c.SimulateBlock(mkBlock(uint64(i+1), 0x400000, instrs, addrs, true))
		lat = append(lat, c.Cycle()-before)
	}
	// Skip the first (cold I-cache); later blocks should each cost roughly a
	// memory access.
	var sum uint64
	for _, l := range lat[5:] {
		sum += l
	}
	avg := sum / uint64(len(lat)-5)
	if avg < 100 {
		t.Fatalf("dependent cold loads should cost ~memory latency per block, got %d", avg)
	}
}

func TestOOOStoreForwarding(t *testing.T) {
	ports := buildHierarchy()
	c := NewOOO(0, OOOWestmere(), ports, stats.NewRegistry("core"))
	addr := uint64(1 << 33)
	// Store to a line then immediately load it: the load should forward from
	// the store queue instead of paying a miss.
	instrs := []isa.Instruction{
		{Op: isa.OpStore, Dst: isa.RBX, Src1: isa.RBP, Bytes: 4},
		{Op: isa.OpLoad, Dst: isa.RAX, Src1: isa.RBP, Bytes: 4},
	}
	// First execution warms the I-cache (its cold fetch miss would otherwise
	// dominate); measure the second.
	c.SimulateBlock(mkBlock(1, 0x400000, instrs, []uint64{addr, addr}, true))
	before := c.Cycle()
	c.SimulateBlock(mkBlock(1, 0x400000, instrs, []uint64{addr + 128, addr + 128}, true))
	delta := c.Cycle() - before
	// Without forwarding the dependent load would wait for the store's miss
	// (>120 cycles); with forwarding the block costs far less. The store's own
	// drain happens in the background.
	if delta > 100 {
		t.Fatalf("store-to-load forwarding should avoid the load stall, block took %d cycles", delta)
	}
}

func TestOOOMispredictionPenalty(t *testing.T) {
	predictable := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("a"))
	unpredictable := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("b"))
	b := aluBlock(1, 6)
	for i := 0; i < 300; i++ {
		b.Taken = true
		predictable.SimulateBlock(b)
		b.Taken = (i*2654435761)%7 < 3 // pseudo-random pattern
		unpredictable.SimulateBlock(b)
	}
	_, missP := predictable.BranchStats()
	_, missU := unpredictable.BranchStats()
	if missU <= missP {
		t.Fatalf("random branches should mispredict more: %d vs %d", missU, missP)
	}
	if unpredictable.Cycle() <= predictable.Cycle() {
		t.Fatalf("mispredictions should cost cycles: %d vs %d", unpredictable.Cycle(), predictable.Cycle())
	}
}

func TestOOOFenceSerializes(t *testing.T) {
	withFence := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("a"))
	without := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("b"))
	addr := uint64(1 << 34)
	fenced := []isa.Instruction{
		{Op: isa.OpStore, Dst: isa.RBX, Src1: isa.RBP, Bytes: 4},
		{Op: isa.OpFence, Bytes: 3},
		{Op: isa.OpLoad, Dst: isa.RAX, Src1: isa.RBP, Bytes: 4},
	}
	unfenced := []isa.Instruction{
		{Op: isa.OpStore, Dst: isa.RBX, Src1: isa.RBP, Bytes: 4},
		{Op: isa.OpLoad, Dst: isa.RAX, Src1: isa.RBP, Bytes: 4},
	}
	for i := 0; i < 100; i++ {
		a := uint64(i*128) + addr
		withFence.SimulateBlock(mkBlock(uint64(i+1), 0x400000, fenced, []uint64{a, a + 64}, true))
		without.SimulateBlock(mkBlock(uint64(i+1), 0x400000, unfenced, []uint64{a, a + 64}, true))
	}
	if withFence.Cycle() <= without.Cycle() {
		t.Fatalf("fences should cost cycles: %d vs %d", withFence.Cycle(), without.Cycle())
	}
}

func TestOOOAddDelayAdvancesAllClocks(t *testing.T) {
	c := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("core"))
	c.SimulateBlock(aluBlock(1, 8))
	base := c.Cycle()
	c.AddDelay(1000)
	if c.Cycle() != base+1000 {
		t.Fatalf("AddDelay should advance the retire clock")
	}
	// New work starts after the delay (fetch clock also advanced).
	c.SimulateBlock(aluBlock(2, 8))
	if c.Cycle() <= base+1000 {
		t.Fatalf("post-delay work should land after the delay")
	}
	c.SetCycle(c.Cycle() - 10) // no rewind
	before := c.Cycle()
	c.SetCycle(before + 77)
	if c.Cycle() != before+77 {
		t.Fatalf("SetCycle fast-forward broken")
	}
}

func TestOOOConfigDefaults(t *testing.T) {
	c := NewOOO(0, OOOConfig{}, buildHierarchy(), stats.NewRegistry("core"))
	if c.cfg.IssueWidth != 4 || c.cfg.ROBSize != 128 || c.cfg.LoadQueueSize != 48 ||
		c.cfg.StoreQueueSize != 32 || c.cfg.MispredictCycles != 17 {
		t.Fatalf("zero config should get Westmere-like defaults: %+v", c.cfg)
	}
	// A degenerate config still works.
	c.SimulateBlock(aluBlock(1, 4))
	if c.Instrs() != 6 { // 4 ALU + cmp + jcc
		t.Fatalf("defaulted core should simulate, got %d instrs", c.Instrs())
	}
}

type recordingSink struct {
	accesses int
	hops     int
}

func (r *recordingSink) RecordAccess(coreID int, issueCycle uint64, write bool, hops []cache.Hop) []cache.Hop {
	r.accesses++
	r.hops += len(hops)
	return nil
}

func TestAccessRecorderReceivesHops(t *testing.T) {
	for _, mk := range []func() Core{
		func() Core { return NewIPC1(0, buildHierarchy(), stats.NewRegistry("c")) },
		func() Core { return NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("c")) },
	} {
		c := mk()
		sink := &recordingSink{}
		c.SetRecorder(sink)
		c.SimulateBlock(loadBlock(1, []uint64{1 << 35}))
		if sink.accesses == 0 || sink.hops == 0 {
			t.Fatalf("%s: recorder should receive the block's accesses", c.Name())
		}
		// Disabling the recorder stops recording.
		c.SetRecorder(nil)
		before := sink.accesses
		c.SimulateBlock(loadBlock(2, []uint64{1<<35 + 4096}))
		if sink.accesses != before {
			t.Fatalf("%s: recorder should not be called after being removed", c.Name())
		}
	}
}

func TestOOONilDecodedBlockIgnored(t *testing.T) {
	c := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("core"))
	c.SimulateBlock(&trace.DynBlock{})
	if c.Instrs() != 0 {
		t.Fatalf("nil decoded block should be ignored")
	}
	s := NewIPC1(0, buildHierarchy(), stats.NewRegistry("core"))
	s.SimulateBlock(&trace.DynBlock{})
	if s.Instrs() != 0 {
		t.Fatalf("nil decoded block should be ignored by IPC1 too")
	}
}

func TestOOOWorkloadDriven(t *testing.T) {
	// Drive the OOO core with a real workload generator end to end and check
	// the aggregate behaviour is sane.
	p := trace.DefaultParams()
	p.BlocksPerThread = 1500
	w := trace.New("unit", p, 1)
	th := w.NewThread(0)
	c := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("core"))
	for {
		b := th.NextBlock()
		if b.Sync == trace.SyncDone {
			break
		}
		c.SimulateBlock(b)
	}
	if c.Instrs() < 5000 {
		t.Fatalf("workload should execute a meaningful number of instructions, got %d", c.Instrs())
	}
	ipc := float64(c.Instrs()) / float64(c.Cycle())
	if ipc < 0.05 || ipc > 4.0 {
		t.Fatalf("workload IPC out of plausible range: %.3f", ipc)
	}
	if c.cnt.Loads.Get() == 0 || c.cnt.Stores.Get() == 0 || c.cnt.Fetches.Get() == 0 {
		t.Fatalf("memory and fetch counters should be populated")
	}
}

func TestSchedulePortRespectsBusy(t *testing.T) {
	c := NewOOO(0, OOOWestmere(), buildHierarchy(), stats.NewRegistry("core"))
	// The load port (port 2) can hold only one µop per cycle: scheduling two
	// loads at the same earliest cycle must place them on different cycles.
	c1, _ := c.schedulePort(isa.PortsLoad, 100)
	c2, _ := c.schedulePort(isa.PortsLoad, 100)
	if c1 == c2 {
		t.Fatalf("single-port contention should serialize: %d vs %d", c1, c2)
	}
	// ALU µops have three ports: three can share a cycle, the fourth moves on.
	cycles := map[uint64]int{}
	for i := 0; i < 4; i++ {
		cy, _ := c.schedulePort(isa.PortsALU, 500)
		cycles[cy]++
	}
	if cycles[500] != 3 {
		t.Fatalf("three ALU ports should be usable at cycle 500, got %v", cycles)
	}
	// Scheduling far beyond the window slides it without panicking.
	cy, _ := c.schedulePort(isa.PortsALU, 1_000_000)
	if cy != 1_000_000 {
		t.Fatalf("far-future scheduling should start at the requested cycle, got %d", cy)
	}
}
