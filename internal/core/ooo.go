package core

import (
	"zsim/internal/arena"
	"zsim/internal/bpred"
	"zsim/internal/cache"
	"zsim/internal/isa"
	"zsim/internal/stats"
	"zsim/internal/trace"
)

// OOOConfig holds the microarchitectural parameters of the out-of-order core
// model. Defaults (OOOWestmere) follow the validated Westmere configuration:
// 4-wide issue and retire, a 36-entry reservation-station-like issue window
// approximated through the port scheduler, a 128-entry ROB, 48-entry load
// queue and 32-entry store queue, 16-bytes-per-cycle fetch and a 17-cycle
// misprediction recovery.
type OOOConfig struct {
	IssueWidth       int
	RetireWidth      int
	ROBSize          int
	LoadQueueSize    int
	StoreQueueSize   int
	FetchBytesPerCyc int
	MispredictCycles uint64
	// RRFWritesPerCycle models the limited register-renaming bandwidth for
	// non-captured operands (the paper models a limited-width RRF).
	RRFWritesPerCycle int
	// SchedWindowCycles bounds how far ahead of the issue clock a µop may be
	// scheduled on a port (the future window of port occupancy).
	SchedWindowCycles int
	// PredictorEntries and PredictorHistBits configure the two-level branch
	// predictor.
	PredictorEntries  int
	PredictorHistBits uint
}

// OOOWestmere returns the Westmere-class configuration used for validation.
func OOOWestmere() OOOConfig {
	return OOOConfig{
		IssueWidth:        4,
		RetireWidth:       4,
		ROBSize:           128,
		LoadQueueSize:     48,
		StoreQueueSize:    32,
		FetchBytesPerCyc:  16,
		MispredictCycles:  17,
		RRFWritesPerCycle: 4,
		SchedWindowCycles: 256,
		PredictorEntries:  16384,
		PredictorHistBits: 12,
	}
}

// storeEntry is one entry of the store queue, used for store-to-load
// forwarding and TSO ordering.
type storeEntry struct {
	lineAddr   uint64
	dataCycle  uint64 // cycle at which the store's data is available
	commitDone uint64 // cycle at which the store has drained to the L1D
}

// OOO is the detailed out-of-order core model. It is instruction-driven: each
// µop passes through fetch, decode, issue and retire in a single call,
// updating the per-stage clocks and the structures that couple them (register
// scoreboard, port-occupancy window, ROB, load/store queues), exactly as
// described in Section 3.1 and Figure 1 of the paper.
type OOO struct {
	memUnit
	cfg  OOOConfig
	cnt  Counters
	pred *bpred.Stats

	// Per-stage clocks.
	fetchClock  uint64
	decodeClock uint64
	issueClock  uint64
	retireClock uint64

	// Register scoreboard: cycle at which each architectural register's value
	// becomes available.
	scoreboard [isa.NumRegs]uint64

	// Port-occupancy window: portBusy[c%len][p] reports whether port p is
	// taken at absolute cycle c. windowBase is the lowest absolute cycle with
	// valid entries; entries below it are stale and cleared lazily as the
	// window slides forward.
	portBusy   [][isa.NumPorts]bool
	windowBase uint64

	// ROB: retire cycle of each in-flight µop, in allocation order.
	rob     []uint64
	robHead int

	// Issue and retire bandwidth accounting within the current cycle.
	issuedThisCycle  int
	issueCycle       uint64
	retiredThisCycle int
	retireCycle      uint64

	// Load/store queues.
	storeQ []storeEntry
	loadQ  []uint64 // completion cycles of in-flight loads

	// Fetch state.
	lastFetchLine uint64
	// pendingRedirect is the cycle at which the frontend may resume fetching
	// after a branch misprediction detected in a previous block.
	pendingRedirect uint64

	// fenceUntil serializes memory operations after a fence µop.
	fenceUntil uint64

	// doneBuf is the reusable per-block µop completion-cycle scratch consumed
	// by the template-driven dispatch loop (in-block dependence edges index
	// into it).
	doneBuf []uint64
}

// NewOOO creates an out-of-order core with the given configuration.
func NewOOO(id int, cfg OOOConfig, ports MemPorts, reg *stats.Registry) *OOO {
	if cfg.IssueWidth < 1 {
		cfg.IssueWidth = 4
	}
	if cfg.RetireWidth < 1 {
		cfg.RetireWidth = 4
	}
	if cfg.ROBSize < 8 {
		cfg.ROBSize = 128
	}
	if cfg.SchedWindowCycles < 32 {
		cfg.SchedWindowCycles = 256
	}
	if cfg.FetchBytesPerCyc < 1 {
		cfg.FetchBytesPerCyc = 16
	}
	if cfg.MispredictCycles == 0 {
		cfg.MispredictCycles = 17
	}
	if cfg.LoadQueueSize < 1 {
		cfg.LoadQueueSize = 48
	}
	if cfg.StoreQueueSize < 1 {
		cfg.StoreQueueSize = 32
	}
	if cfg.PredictorEntries == 0 {
		cfg.PredictorEntries = 16384
	}
	if cfg.PredictorHistBits == 0 {
		cfg.PredictorHistBits = 12
	}
	a := reg.Arena()
	c := arena.One[OOO](a)
	c.memUnit = memUnit{id: id, ports: ports}
	c.cfg = cfg
	c.cnt = newCounters(reg)
	c.pred = bpred.NewStatsIn(a, bpred.NewTwoLevelIn(a, cfg.PredictorEntries, cfg.PredictorHistBits))
	c.portBusy = arena.Take[[isa.NumPorts]bool](a, cfg.SchedWindowCycles)
	c.rob = arena.Take[uint64](a, cfg.ROBSize)
	// Pre-size the load/store queues and the per-block scratch so the
	// steady-state simulation loop never grows them on the heap.
	c.loadQ = arena.TakeCap[uint64](a, 0, cfg.LoadQueueSize)
	c.storeQ = arena.TakeCap[storeEntry](a, 0, cfg.StoreQueueSize)
	c.doneBuf = arena.TakeCap[uint64](a, 0, 64)
	return c
}

// Name returns "ooo".
func (c *OOO) Name() string { return "ooo" }

// Cycle returns the retire-stage clock (the architected completion point).
func (c *OOO) Cycle() uint64 { return c.retireClock }

// Instrs returns the instruction count.
func (c *OOO) Instrs() uint64 { return c.cnt.Instrs.Get() }

// Uops returns the µop count.
func (c *OOO) Uops() uint64 { return c.cnt.Uops.Get() }

// BranchStats returns (predictions, mispredictions).
func (c *OOO) BranchStats() (uint64, uint64) { return c.pred.Predictions, c.pred.Mispredicts }

// AddDelay applies weave-phase feedback by advancing every stage clock.
func (c *OOO) AddDelay(cycles uint64) {
	c.fetchClock += cycles
	c.decodeClock += cycles
	c.issueClock += cycles
	c.retireClock += cycles
	c.cnt.Cycles.Set(c.retireClock)
}

// SetCycle fast-forwards all clocks to at least the given cycle.
func (c *OOO) SetCycle(cycle uint64) {
	if cycle > c.retireClock {
		delta := cycle - c.retireClock
		c.AddDelay(delta)
	}
}

// ContextSwitch invalidates the fetch micro-state when a different software
// thread is placed on the core, so the incoming thread refetches its first
// I-cache line instead of inheriting the outgoing thread's.
func (c *OOO) ContextSwitch() { c.lastFetchLine = ^uint64(0) }

// Reset restores the just-constructed state for warm reuse: every stage
// clock, the scoreboard, the port window, the ROB and the load/store queues
// go back to zero, keeping their arena-backed capacity. The per-block
// done-cycle scratch is kept as-is: every entry is written before it is read
// within a block, so stale values can never leak into timing.
func (c *OOO) Reset() {
	c.memUnit.reset()
	c.fetchClock, c.decodeClock, c.issueClock, c.retireClock = 0, 0, 0, 0
	c.scoreboard = [isa.NumRegs]uint64{}
	for i := range c.portBusy {
		c.portBusy[i] = [isa.NumPorts]bool{}
	}
	c.windowBase = 0
	clear(c.rob)
	c.robHead = 0
	c.issuedThisCycle, c.issueCycle = 0, 0
	c.retiredThisCycle, c.retireCycle = 0, 0
	c.storeQ = c.storeQ[:0]
	c.loadQ = c.loadQ[:0]
	c.lastFetchLine = 0
	c.pendingRedirect = 0
	c.fenceUntil = 0
	c.pred.Reset()
}

// SimulateBlock simulates one dynamic basic block: the instruction fetch
// (including branch prediction and I-cache access), the frontend decode
// stalls, and every µop's dispatch, port scheduling, execution and
// retirement.
func (c *OOO) SimulateBlock(b *trace.DynBlock) {
	d := b.Decoded
	if d == nil {
		return
	}

	// --- Fetch stage ---------------------------------------------------
	// Resume after any pending misprediction redirect.
	if c.pendingRedirect > c.fetchClock {
		c.cnt.FetchStall.Add(c.pendingRedirect - c.fetchClock)
		c.fetchClock = c.pendingRedirect
		c.pendingRedirect = 0
	}
	// Instruction-cache access, one per line the block spans.
	firstLine := cache.LineAddr(d.Addr)
	lastLine := cache.LineAddr(d.Addr + d.Bytes)
	for lineA := firstLine; lineA <= lastLine; lineA++ {
		if lineA == c.lastFetchLine {
			continue
		}
		c.lastFetchLine = lineA
		c.cnt.Fetches.Inc()
		avail := c.access(c.ports.L1I, lineA, false, c.fetchClock)
		if avail > c.fetchClock {
			hitLat := uint64(lineHitLatency(c.ports.L1I))
			if avail-c.fetchClock > hitLat {
				// I-cache miss: the frontend stalls for the excess latency.
				c.cnt.FetchStall.Add(avail - c.fetchClock - hitLat)
				c.fetchClock = avail - hitLat
			}
		}
	}
	// Fetch bandwidth: the block's bytes drain at FetchBytesPerCyc.
	c.fetchClock += (d.Bytes + uint64(c.cfg.FetchBytesPerCyc) - 1) / uint64(c.cfg.FetchBytesPerCyc)

	// --- Decode stage ----------------------------------------------------
	if c.decodeClock < c.fetchClock {
		c.decodeClock = c.fetchClock
	}
	c.decodeClock += uint64(d.DecodeCycles)

	// --- Issue / execute / retire, one µop at a time --------------------
	// The block's translation-time skeleton (d.Tmpl) already names each µop's
	// in-block producer, so operand readiness is resolved from the block-local
	// done-cycle scratch; the architectural scoreboard is consulted only for
	// cross-block sources and written back only from the live-out list.
	blockIssue := c.decodeClock // µops cannot issue before the block is decoded
	done := c.doneBuf
	if cap(done) < len(d.Uops) {
		done = make([]uint64, len(d.Uops))
		c.doneBuf = done
	}
	done = done[:len(d.Uops)]
	for i := range d.Uops {
		u := &d.Uops[i]
		tm := &d.Tmpl[i]
		// Minimum dispatch cycle: operand readiness from the in-block
		// dependence edges or the cross-block scoreboard, then fence ordering.
		dispatch := blockIssue
		if tm.Dep1 >= 0 {
			if t := done[tm.Dep1]; t > dispatch {
				dispatch = t
			}
		} else if tm.Ext1 != isa.RegZero {
			if t := c.scoreboard[tm.Ext1]; t > dispatch {
				dispatch = t
			}
		}
		if tm.Dep2 >= 0 {
			if t := done[tm.Dep2]; t > dispatch {
				dispatch = t
			}
		} else if tm.Ext2 != isa.RegZero {
			if t := c.scoreboard[tm.Ext2]; t > dispatch {
				dispatch = t
			}
		}
		if tm.OrderedMem && c.fenceUntil > dispatch {
			dispatch = c.fenceUntil
		}
		done[i] = c.simulateUop(b, u, dispatch)
	}
	// Cross-block register liveness: publish the block's live-out values.
	for i := range d.LiveOut {
		lw := &d.LiveOut[i]
		c.scoreboard[lw.Reg] = done[lw.Uop]
	}

	c.cnt.Instrs.Add(uint64(d.Instrs))
	c.cnt.Uops.Add(uint64(len(d.Uops)))

	// --- Branch resolution ----------------------------------------------
	if d.CondBranch {
		c.cnt.BrPred.Inc()
		if !c.pred.PredictAndUpdate(b.BranchPC, b.Taken) {
			c.cnt.BrMiss.Inc()
			// The redirect takes effect when the branch resolves (the RIP
			// scoreboard entry carries the branch µop's completion cycle)
			// plus the fixed recovery penalty. Wrong-path fetch pollution:
			// fetch one wrong-path line into the L1I.
			resolve := c.scoreboard[isa.RIP]
			if resolve < c.issueClock {
				resolve = c.issueClock
			}
			c.pendingRedirect = resolve + c.cfg.MispredictCycles
			wrongPath := cache.LineAddr(d.Addr+d.Bytes) + 1
			c.access(c.ports.L1I, wrongPath, false, c.fetchClock)
			c.cnt.Fetches.Inc()
		}
	}
	c.cnt.Cycles.Set(c.retireClock)
}

// simulateUop runs one µop through dispatch, port scheduling, execution and
// retirement, and returns its completion cycle. The caller (SimulateBlock)
// has already resolved operand readiness and fence ordering into dispatch
// using the block's translation-time skeleton.
func (c *OOO) simulateUop(b *trace.DynBlock, u *isa.Uop, dispatch uint64) uint64 {
	// (3) Issue width and RRF bandwidth: at most IssueWidth µops enter the
	// window per cycle.
	if c.issueCycle != c.issueClock {
		c.issueCycle = c.issueClock
		c.issuedThisCycle = 0
	}
	c.issuedThisCycle++
	if c.issuedThisCycle >= c.cfg.IssueWidth {
		c.issueClock++
		c.issuedThisCycle = 0
	}
	if dispatch < c.issueClock {
		stall := c.issueClock - dispatch
		c.cnt.IssueStall.Add(stall)
		dispatch = c.issueClock
	}

	// ROB occupancy: reuse the oldest entry; if it retires in the future, the
	// issue stage stalls until then (the paper's head-of-line ROB stall).
	oldestRetire := c.rob[c.robHead]
	if oldestRetire > dispatch {
		c.cnt.IssueStall.Add(oldestRetire - dispatch)
		dispatch = oldestRetire
		if c.issueClock < dispatch {
			c.issueClock = dispatch
		}
	}

	// (4) Port scheduling: first cycle >= dispatch with a free compatible port.
	execCycle, port := c.schedulePort(u.Ports, dispatch)

	// (5) Memory µops access the hierarchy at their execution cycle.
	var doneCycle uint64
	switch u.Type {
	case isa.UopLoad:
		c.cnt.Loads.Inc()
		addr := addrFor(b, u.MemSlot)
		lineA := cache.LineAddr(addr)
		if fwd, ok := c.storeForward(lineA, execCycle); ok {
			// Store-to-load forwarding: data comes from the store queue.
			doneCycle = fwd
		} else {
			avail := c.access(c.ports.L1D, lineA, false, execCycle)
			doneCycle = avail
		}
		c.pushLoad(doneCycle)
	case isa.UopStAddr:
		// Store-address generation completes quickly; the store's data and
		// drain are tracked by the matching StData µop.
		doneCycle = execCycle + uint64(u.Lat)
	case isa.UopStData:
		c.cnt.Stores.Inc()
		addr := addrFor(b, u.MemSlot)
		lineA := cache.LineAddr(addr)
		// The store drains to the L1D after it commits; under TSO it does not
		// stall the core unless the store queue is full.
		drain := c.access(c.ports.L1D, lineA, true, execCycle)
		doneCycle = execCycle
		c.pushStore(lineA, execCycle, drain)
	case isa.UopFence:
		// Fences wait for the store queue to drain.
		doneCycle = execCycle + uint64(u.Lat)
		if d := c.storeQueueDrain(); d > doneCycle {
			doneCycle = d
		}
		c.fenceUntil = doneCycle
	default:
		doneCycle = execCycle + uint64(u.Lat)
	}

	// (6) The destination-register update happens in SimulateBlock: in-block
	// consumers read the done-cycle scratch, and the architectural scoreboard
	// is written once per block from the live-out list.

	// (7) Retire: in order, bounded by retire width.
	retire := doneCycle
	if retire < c.retireClock {
		retire = c.retireClock
	}
	if c.retireCycle != retire {
		c.retireCycle = retire
		c.retiredThisCycle = 0
	}
	c.retiredThisCycle++
	if c.retiredThisCycle >= c.cfg.RetireWidth {
		retire++
		c.retiredThisCycle = 0
	}
	c.retireClock = retire
	c.rob[c.robHead] = retire
	c.robHead = (c.robHead + 1) % len(c.rob)
	_ = port
	return doneCycle
}

// schedulePort finds the first cycle >= earliest with a free port compatible
// with the mask, marks it busy, and returns (cycle, port).
func (c *OOO) schedulePort(mask isa.PortMask, earliest uint64) (uint64, int) {
	w := uint64(len(c.portBusy))
	// Slide the window forward if earliest is beyond it; everything below the
	// new base is in the past and can be cleared lazily.
	if earliest < c.windowBase {
		earliest = c.windowBase
	}
	if earliest >= c.windowBase+w {
		// Clear the whole window; it has fully slid past.
		for i := range c.portBusy {
			c.portBusy[i] = [isa.NumPorts]bool{}
		}
		c.windowBase = earliest
	}
	for cyc := earliest; ; cyc++ {
		if cyc >= c.windowBase+w {
			// Slide the window by one cycle: the slot that wraps around
			// becomes the new frontier and must be cleared.
			c.portBusy[c.windowBase%w] = [isa.NumPorts]bool{}
			c.windowBase++
		}
		slot := &c.portBusy[cyc%w]
		for p := 0; p < isa.NumPorts; p++ {
			if mask.Has(p) && !slot[p] {
				slot[p] = true
				return cyc, p
			}
		}
	}
}

// pushStore records a committed store for forwarding and drain tracking.
func (c *OOO) pushStore(lineAddr, dataCycle, drainCycle uint64) {
	if len(c.storeQ) >= c.cfg.StoreQueueSize && c.cfg.StoreQueueSize > 0 {
		// Store queue full: the oldest store must drain before this one can
		// enter; this back-pressures the issue stage.
		oldest := c.storeQ[0]
		if oldest.commitDone > c.issueClock {
			c.cnt.IssueStall.Add(oldest.commitDone - c.issueClock)
			c.issueClock = oldest.commitDone
		}
		// Compact in place so the queue keeps its (arena-backed) capacity.
		copy(c.storeQ, c.storeQ[1:])
		c.storeQ = c.storeQ[:len(c.storeQ)-1]
	}
	c.storeQ = append(c.storeQ, storeEntry{lineAddr: lineAddr, dataCycle: dataCycle, commitDone: drainCycle})
}

// storeForward returns the forwarding completion cycle if a store to the same
// line is still in the store queue (newest match wins).
func (c *OOO) storeForward(lineAddr uint64, loadCycle uint64) (uint64, bool) {
	for i := len(c.storeQ) - 1; i >= 0; i-- {
		if c.storeQ[i].lineAddr == lineAddr {
			done := c.storeQ[i].dataCycle + 1 // 1-cycle forwarding latency
			if done < loadCycle {
				done = loadCycle + 1
			}
			return done, true
		}
	}
	return 0, false
}

// pushLoad tracks an in-flight load; a full load queue back-pressures issue.
func (c *OOO) pushLoad(doneCycle uint64) {
	if c.cfg.LoadQueueSize > 0 && len(c.loadQ) >= c.cfg.LoadQueueSize {
		oldest := c.loadQ[0]
		if oldest > c.issueClock {
			c.cnt.IssueStall.Add(oldest - c.issueClock)
			c.issueClock = oldest
		}
		// Compact in place so the queue keeps its (arena-backed) capacity.
		copy(c.loadQ, c.loadQ[1:])
		c.loadQ = c.loadQ[:len(c.loadQ)-1]
	}
	c.loadQ = append(c.loadQ, doneCycle)
}

// storeQueueDrain returns the cycle at which all stores currently in the
// queue have drained.
func (c *OOO) storeQueueDrain() uint64 {
	var max uint64
	for _, s := range c.storeQ {
		if s.commitDone > max {
			max = s.commitDone
		}
	}
	return max
}
