package isa

import (
	"sync"
	"sync/atomic"

	"zsim/internal/arena"
)

// MemOp is one memory access of a block's timing template, in µop program
// order: the memory-operand slot it reads its dynamic address from and
// whether it is a store (StData) rather than a load. The IPC1 model consumes
// a dynamic block by walking this list only, so its per-block work is
// O(memory accesses) instead of O(µops).
type MemOp struct {
	Slot  int8
	Store bool
}

// UopTmpl is the translation-time issue-schedule skeleton of one µop: the
// intra-block dependence edges (the index of the in-block producer of each
// source operand, or -1) and, for sources produced outside the block, the
// architectural register whose cross-block readiness must be consulted at
// simulation time. OrderedMem marks µops that participate in fence ordering.
// Everything here is knowable once per static block; the OOO model's dynamic
// loop only resolves cross-block register liveness (Ext1/Ext2) and memory
// response timestamps.
type UopTmpl struct {
	Dep1, Dep2 int16 // in-block producer µop index, -1 if none
	Ext1, Ext2 Reg   // cross-block source register (RegZero if none or in-block)
	OrderedMem bool  // Load/StAddr/StData/Fence: serialized behind fences
}

// RegWrite names a register the block writes and the µop index of its last
// in-block writer; the OOO model updates its cross-block scoreboard from this
// live-out list once per block instead of twice per µop.
type RegWrite struct {
	Reg Reg
	Uop int16
}

// DecodedBBL is the translation-time artifact the core timing models consume:
// the µop expansion of a static basic block, plus everything about the block
// that can be pre-computed once (frontend decode stalls, counts of loads,
// stores, and branches, total instruction bytes, and the timing template:
// per-µop dependence skeleton, memory-op list, live-out register set). It
// corresponds to the "Decoded BBL µops" table of Figure 1 in the paper.
//
// A DecodedBBL is immutable after creation and shared by every dynamic
// execution of its static block, by every core, without locking.
type DecodedBBL struct {
	ID     uint64
	Addr   uint64
	Bytes  uint64
	Instrs int   // number of x86 instructions (after macro-op fusion, FusedInstrs <= Instrs)
	Uops   []Uop // µops in program order

	// DecodeCycles is the number of frontend decode cycles the block needs on
	// the modeled 4-1-1-1 decoder with a 16-byte/cycle length predecoder.
	// It is pre-computed here so the OOO model's frontend only adds a constant.
	DecodeCycles uint32

	// Counts pre-computed for the timing models and statistics.
	Loads    int
	Stores   int
	Branches int
	// CondBranch is true if the block ends in a conditional branch (the only
	// kind that consults the branch predictor's direction prediction).
	CondBranch bool
	// Approx is true if any instruction in the block used the generic,
	// approximate decoding (OpComplex); the paper reports ~0.01% of dynamic
	// instructions take this path.
	Approx bool

	// Timing template (computed once at translation time by buildTemplate).
	MemOps  []MemOp    // loads and StData stores in µop program order
	Tmpl    []UopTmpl  // one skeleton entry per µop
	LiveOut []RegWrite // registers written by the block, with last writer
}

// decodeOne expands a single instruction into µops, appending to out. It
// returns the new slice. The expansions follow the µop fission rules of
// Westmere-class cores: load-op instructions split into a load µop and an
// exec µop; store instructions split into store-address and store-data µops;
// read-modify-write instructions produce load + exec + StAddr + StData.
func decodeOne(ins Instruction, memSlot *int8, out []Uop) []Uop {
	nextMem := func() int8 {
		s := *memSlot
		*memSlot++
		return s
	}
	switch ins.Op {
	case OpNop, OpMagic:
		// NOPs still occupy a decode and retire slot: a zero-latency exec µop
		// with no dependencies.
		out = append(out, Uop{Type: UopExec, Lat: 1, Ports: PortsALU, MemSlot: -1})
	case OpMovRR, OpMovRI, OpLea:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Dst1: ins.Dst, Lat: 1, Ports: PortsALU, MemSlot: -1})
	case OpLoad:
		out = append(out, Uop{Type: UopLoad, Src1: ins.Src1, Dst1: ins.Dst, Lat: 4, Ports: PortsLoad, MemSlot: nextMem()})
	case OpFLoad:
		out = append(out, Uop{Type: UopLoad, Src1: ins.Src1, Dst1: ins.Dst, Lat: 5, Ports: PortsLoad, MemSlot: nextMem()})
	case OpStore, OpFStore:
		slot := nextMem()
		out = append(out,
			Uop{Type: UopStAddr, Src1: ins.Src1, Lat: 1, Ports: PortsStAddr, MemSlot: slot},
			Uop{Type: UopStData, Src1: ins.Dst, Lat: 0, Ports: PortsStData, MemSlot: slot})
	case OpAdd:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Dst2: RFlags, Lat: 1, Ports: PortsALU, MemSlot: -1})
	case OpAddMem:
		slot := nextMem()
		out = append(out,
			Uop{Type: UopLoad, Src1: ins.Src2, Dst1: RegZero, Lat: 4, Ports: PortsLoad, MemSlot: slot},
			Uop{Type: UopExec, Src1: ins.Src1, Dst1: ins.Dst, Dst2: RFlags, Lat: 1, Ports: PortsALU, MemSlot: -1})
	case OpAddToMem:
		slot := nextMem()
		out = append(out,
			Uop{Type: UopLoad, Src1: ins.Src1, Dst1: RegZero, Lat: 4, Ports: PortsLoad, MemSlot: slot},
			Uop{Type: UopExec, Src1: ins.Src2, Dst1: RegZero, Dst2: RFlags, Lat: 1, Ports: PortsALU, MemSlot: -1},
			Uop{Type: UopStAddr, Src1: ins.Src1, Lat: 1, Ports: PortsStAddr, MemSlot: slot},
			Uop{Type: UopStData, Lat: 0, Ports: PortsStData, MemSlot: slot})
	case OpMul:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Dst2: RFlags, Lat: 3, Ports: PortsFPMul, MemSlot: -1})
	case OpDiv:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Dst2: RFlags, Lat: 21, Ports: PortsFPMul, MemSlot: -1})
	case OpCmp, OpTest:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: RFlags, Lat: 1, Ports: PortsALU, MemSlot: -1})
	case OpCmpMem:
		out = append(out,
			Uop{Type: UopLoad, Src1: ins.Src2, Dst1: RegZero, Lat: 4, Ports: PortsLoad, MemSlot: nextMem()},
			Uop{Type: UopExec, Src1: ins.Src1, Dst1: RFlags, Lat: 1, Ports: PortsALU, MemSlot: -1})
	case OpJcc:
		out = append(out, Uop{Type: UopBranch, Src1: RFlags, Dst1: RIP, Lat: 1, Ports: PortsBranch, MemSlot: -1})
	case OpJmp:
		out = append(out, Uop{Type: UopBranch, Dst1: RIP, Lat: 1, Ports: PortsBranch, MemSlot: -1})
	case OpCall:
		slot := nextMem()
		out = append(out,
			Uop{Type: UopExec, Src1: RSP, Dst1: RSP, Lat: 1, Ports: PortsALU, MemSlot: -1},
			Uop{Type: UopStAddr, Src1: RSP, Lat: 1, Ports: PortsStAddr, MemSlot: slot},
			Uop{Type: UopStData, Src1: RIP, Lat: 0, Ports: PortsStData, MemSlot: slot},
			Uop{Type: UopBranch, Dst1: RIP, Lat: 1, Ports: PortsBranch, MemSlot: -1})
	case OpRet:
		out = append(out,
			Uop{Type: UopLoad, Src1: RSP, Dst1: RIP, Lat: 4, Ports: PortsLoad, MemSlot: nextMem()},
			Uop{Type: UopExec, Src1: RSP, Dst1: RSP, Lat: 1, Ports: PortsALU, MemSlot: -1},
			Uop{Type: UopBranch, Src1: RIP, Dst1: RIP, Lat: 1, Ports: PortsBranch, MemSlot: -1})
	case OpPush:
		slot := nextMem()
		out = append(out,
			Uop{Type: UopExec, Src1: RSP, Dst1: RSP, Lat: 1, Ports: PortsALU, MemSlot: -1},
			Uop{Type: UopStAddr, Src1: RSP, Lat: 1, Ports: PortsStAddr, MemSlot: slot},
			Uop{Type: UopStData, Src1: ins.Src1, Lat: 0, Ports: PortsStData, MemSlot: slot})
	case OpPop:
		out = append(out,
			Uop{Type: UopLoad, Src1: RSP, Dst1: ins.Dst, Lat: 4, Ports: PortsLoad, MemSlot: nextMem()},
			Uop{Type: UopExec, Src1: RSP, Dst1: RSP, Lat: 1, Ports: PortsALU, MemSlot: -1})
	case OpFAdd:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Lat: 3, Ports: PortsFPAdd, MemSlot: -1})
	case OpFMul:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Lat: 5, Ports: PortsFPMul, MemSlot: -1})
	case OpFDiv:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Lat: 22, Ports: PortsFPMul, MemSlot: -1})
	case OpFMA:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Lat: 5, Ports: PortsFPMul, MemSlot: -1})
	case OpXchg:
		slot := nextMem()
		out = append(out,
			Uop{Type: UopLoad, Src1: ins.Src1, Dst1: ins.Dst, Lat: 4, Ports: PortsLoad, MemSlot: slot},
			Uop{Type: UopFence, Lat: 12, Ports: PortsALU, MemSlot: -1},
			Uop{Type: UopStAddr, Src1: ins.Src1, Lat: 1, Ports: PortsStAddr, MemSlot: slot},
			Uop{Type: UopStData, Src1: ins.Src2, Lat: 0, Ports: PortsStData, MemSlot: slot})
	case OpCmpXchg:
		slot := nextMem()
		out = append(out,
			Uop{Type: UopLoad, Src1: ins.Src1, Dst1: ins.Dst, Lat: 4, Ports: PortsLoad, MemSlot: slot},
			Uop{Type: UopExec, Src1: ins.Dst, Src2: ins.Src2, Dst1: RFlags, Lat: 1, Ports: PortsALU, MemSlot: -1},
			Uop{Type: UopFence, Lat: 12, Ports: PortsALU, MemSlot: -1},
			Uop{Type: UopStAddr, Src1: ins.Src1, Lat: 1, Ports: PortsStAddr, MemSlot: slot},
			Uop{Type: UopStData, Src1: ins.Src2, Lat: 0, Ports: PortsStData, MemSlot: slot})
	case OpFence:
		out = append(out, Uop{Type: UopFence, Lat: 20, Ports: PortsALU, MemSlot: -1})
	case OpRdtsc:
		out = append(out,
			Uop{Type: UopExec, Dst1: RAX, Lat: 24, Ports: PortsFPMul, MemSlot: -1},
			Uop{Type: UopExec, Dst1: RDX, Lat: 1, Ports: PortsALU, MemSlot: -1})
	case OpComplex:
		// Generic approximate decoding for rarely-used instructions: the
		// paper produces an approximate dataflow decoding for these (0.01% of
		// dynamic instructions). We model them as a medium-latency exec µop
		// pair touching the given registers.
		out = append(out,
			Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Lat: 7, Ports: PortsFPMul, MemSlot: -1},
			Uop{Type: UopExec, Src1: ins.Dst, Dst1: ins.Dst, Lat: 1, Ports: PortsALU, MemSlot: -1})
	default:
		out = append(out, Uop{Type: UopExec, Src1: ins.Src1, Src2: ins.Src2, Dst1: ins.Dst, Lat: 1, Ports: PortsALU, MemSlot: -1})
	}
	return out
}

// uopSlotTable holds, per opcode, the number of µops decodeOne emits for it.
// It is consulted by the 4-1-1-1 decode model (instructions that decode to
// one µop can go to any of the four decoders, multi-µop instructions only to
// the first) and to pre-size arena-backed µop slices — both per static
// block, so keeping it a table instead of a throwaway decodeOne call makes
// translation allocation-free. TestUopSlotsMatchDecode pins it to decodeOne.
var uopSlotTable = [NumOpcodes]int8{
	OpNop: 1, OpMagic: 1,
	OpMovRR: 1, OpMovRI: 1, OpLea: 1,
	OpLoad: 1, OpFLoad: 1,
	OpStore: 2, OpFStore: 2,
	OpAdd: 1, OpAddMem: 2, OpAddToMem: 4,
	OpMul: 1, OpDiv: 1,
	OpCmp: 1, OpTest: 1, OpCmpMem: 2,
	OpJcc: 1, OpJmp: 1,
	OpCall: 4, OpRet: 3, OpPush: 3, OpPop: 2,
	OpFAdd: 1, OpFMul: 1, OpFDiv: 1, OpFMA: 1,
	OpXchg: 4, OpCmpXchg: 5,
	OpFence: 1, OpRdtsc: 2, OpComplex: 2,
}

// uopSlots returns the number of decoder µop slots an instruction occupies.
func uopSlots(ins Instruction) int {
	if int(ins.Op) < len(uopSlotTable) {
		if n := uopSlotTable[ins.Op]; n > 0 {
			return int(n)
		}
	}
	return 1 // decodeOne's default arm emits one exec µop
}

// frontendCycles computes the decode cycles for a block on a Westmere-like
// frontend: a 16-byte-per-cycle instruction length predecoder feeding a
// 4-1-1-1 decoder (one complex decoder handling multi-µop instructions, three
// simple decoders handling single-µop instructions), macro-fused cmp+jcc
// pairs counting as one instruction.
func frontendCycles(instrs []Instruction, fused []bool) uint32 {
	// Predecoder: total bytes / 16 per cycle.
	var bytes uint64
	for _, ins := range instrs {
		bytes += uint64(ins.Bytes)
	}
	preCycles := (bytes + 15) / 16

	// Decoder: walk instructions, packing up to 4 per cycle with the 4-1-1-1
	// constraint.
	var decCycles uint32
	slotInCycle := 0
	for i, ins := range instrs {
		if fused[i] {
			continue // fused into the previous instruction, free
		}
		slots := uopSlots(ins)
		if slots > 1 {
			// Complex instruction: needs the first decoder; start a new cycle
			// unless we are already at the start of one.
			if slotInCycle != 0 {
				decCycles++
				slotInCycle = 0
			}
			slotInCycle = 1
		} else {
			if slotInCycle == 4 {
				decCycles++
				slotInCycle = 0
			}
			slotInCycle++
		}
	}
	if slotInCycle > 0 {
		decCycles++
	}
	if uint32(preCycles) > decCycles {
		return uint32(preCycles)
	}
	return decCycles
}

// Decode translates one static basic block into its DecodedBBL. Macro-op
// fusion merges a flag-setting compare/test with an immediately following
// conditional branch into a single µop, as Westmere does.
func Decode(b *BasicBlock) *DecodedBBL {
	return DecodeIn(nil, b)
}

// DecodeIn is Decode with the DecodedBBL and every slice it owns — µops,
// timing template, memory-op list, live-out set — carved from the given
// construction arena (nil falls back to the heap). Workload construction
// decodes thousands of blocks; with an arena this is the difference between
// ~4k small allocations per workload and a handful of chunk allocations.
func DecodeIn(a *arena.Arena, b *BasicBlock) *DecodedBBL {
	d := arena.One[DecodedBBL](a)
	d.ID = b.ID
	d.Addr = b.Addr
	d.Bytes = b.Bytes()
	// Exact µop capacity: macro-op fusion only ever shrinks the count.
	maxUops := 0
	for i := range b.Instrs {
		maxUops += uopSlots(b.Instrs[i])
	}
	d.Uops = arena.TakeCap[Uop](a, 0, maxUops)
	// fused is decode-time scratch; it must not come from the permanent
	// arena (which never frees), and a stack buffer keeps the common case
	// allocation-free.
	var fusedBuf [64]bool
	var fused []bool
	if len(b.Instrs) > len(fusedBuf) {
		fused = make([]bool, len(b.Instrs))
	} else {
		fused = fusedBuf[:len(b.Instrs)]
	}
	var memSlot int8
	instrCount := 0
	for i := 0; i < len(b.Instrs); i++ {
		ins := b.Instrs[i]
		instrCount++
		// Macro-op fusion: cmp/test followed by jcc.
		if (ins.Op == OpCmp || ins.Op == OpTest) && i+1 < len(b.Instrs) && b.Instrs[i+1].Op == OpJcc {
			d.Uops = append(d.Uops, Uop{
				Type: UopBranch, Src1: ins.Src1, Src2: ins.Src2, Dst1: RIP, Dst2: RFlags,
				Lat: 1, Ports: PortsBranch, MemSlot: -1,
			})
			fused[i+1] = true
			d.Branches++
			d.CondBranch = true
			instrCount++ // the fused jcc still counts as an instruction
			i++
			continue
		}
		start := len(d.Uops)
		d.Uops = decodeOne(ins, &memSlot, d.Uops)
		for _, u := range d.Uops[start:] {
			switch u.Type {
			case UopLoad:
				d.Loads++
			case UopStData:
				d.Stores++
			case UopBranch:
				d.Branches++
				if ins.Op.IsConditional() {
					d.CondBranch = true
				}
			}
		}
		if ins.Op == OpComplex {
			d.Approx = true
		}
	}
	d.Instrs = instrCount
	d.DecodeCycles = frontendCycles(b.Instrs, fused)
	d.buildTemplate(a)
	return d
}

// buildTemplate computes the block's timing template: the memory-op list, the
// per-µop dependence skeleton and the live-out register set. It runs once per
// static block, at translation time; the core models' per-dynamic-block loops
// consume the result without re-deriving any of it. Template storage is
// carved from the construction arena when one is supplied.
func (d *DecodedBBL) buildTemplate(a *arena.Arena) {
	var lastWriter [NumRegs]int16
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	d.Tmpl = arena.Take[UopTmpl](a, len(d.Uops))
	d.MemOps = arena.TakeCap[MemOp](a, 0, d.Loads+d.Stores)
	for i := range d.Uops {
		u := &d.Uops[i]
		t := &d.Tmpl[i]
		t.Dep1, t.Dep2 = -1, -1
		if u.Src1 != RegZero {
			if w := lastWriter[u.Src1]; w >= 0 {
				t.Dep1 = w
			} else {
				t.Ext1 = u.Src1
			}
		}
		if u.Src2 != RegZero {
			if w := lastWriter[u.Src2]; w >= 0 {
				t.Dep2 = w
			} else {
				t.Ext2 = u.Src2
			}
		}
		switch u.Type {
		case UopLoad:
			d.MemOps = append(d.MemOps, MemOp{Slot: u.MemSlot})
			t.OrderedMem = true
		case UopStData:
			d.MemOps = append(d.MemOps, MemOp{Slot: u.MemSlot, Store: true})
			t.OrderedMem = true
		case UopStAddr, UopFence:
			t.OrderedMem = true
		}
		if u.Dst1 != RegZero {
			lastWriter[u.Dst1] = int16(i)
		}
		if u.Dst2 != RegZero {
			lastWriter[u.Dst2] = int16(i)
		}
	}
	liveOut := 0
	for r := 1; r < int(NumRegs); r++ {
		if lastWriter[r] >= 0 {
			liveOut++
		}
	}
	d.LiveOut = arena.TakeCap[RegWrite](a, 0, liveOut)
	for r := 1; r < int(NumRegs); r++ {
		if w := lastWriter[r]; w >= 0 {
			d.LiveOut = append(d.LiveOut, RegWrite{Reg: Reg(r), Uop: w})
		}
	}
}

// Decoder memoizes DecodedBBLs by static block ID, exactly as zsim caches
// translated basic blocks in Pin's code cache. It is safe for concurrent use
// by all simulated cores: the common case (hit) takes only a read lock.
type Decoder struct {
	mu    sync.RWMutex
	cache map[uint64]*DecodedBBL
	// arena, when non-nil, backs every DecodedBBL this cache creates (and the
	// decoder object itself): workload construction then performs a handful
	// of chunk allocations instead of thousands of per-block ones.
	arena *arena.Arena

	// hits and misses count cache performance for the ablation benchmarks
	// that quantify the DBT-style speedup. They are updated atomically so the
	// hot path (a hit) only needs the read lock.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewDecoder returns an empty decoder cache.
func NewDecoder() *Decoder {
	return NewDecoderIn(nil)
}

// NewDecoderIn returns an empty decoder cache whose decoded blocks are
// carved from the given construction arena (nil falls back to the heap).
func NewDecoderIn(a *arena.Arena) *Decoder {
	d := arena.One[Decoder](a)
	d.cache = make(map[uint64]*DecodedBBL)
	d.arena = a
	return d
}

// Lookup returns the cached decoding for a block, decoding and caching it on
// first use.
func (d *Decoder) Lookup(b *BasicBlock) *DecodedBBL {
	d.mu.RLock()
	bbl, ok := d.cache[b.ID]
	d.mu.RUnlock()
	if ok {
		d.hits.Add(1)
		return bbl
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if bbl, ok := d.cache[b.ID]; ok {
		d.hits.Add(1)
		return bbl
	}
	bbl = DecodeIn(d.arena, b)
	d.cache[b.ID] = bbl
	d.misses.Add(1)
	return bbl
}

// Hits returns the number of decode-cache hits so far.
func (d *Decoder) HitCount() uint64 { return d.hits.Load() }

// Misses returns the number of decode-cache misses (actual decodes) so far.
func (d *Decoder) MissCount() uint64 { return d.misses.Load() }

// Invalidate removes a block from the cache, mirroring zsim freeing
// translated blocks when Pin invalidates a code trace (e.g., after JIT code
// is rewritten by a managed runtime).
func (d *Decoder) Invalidate(id uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.cache, id)
}

// Size returns the number of cached decoded blocks.
func (d *Decoder) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.cache)
}
