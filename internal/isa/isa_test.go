package isa

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"zsim/internal/arena"
)

func TestRegString(t *testing.T) {
	if RAX.String() != "rax" || RFlags.String() != "rflags" || XMM3.String() != "xmm3" {
		t.Fatalf("unexpected register names: %s %s %s", RAX, RFlags, XMM3)
	}
	if Reg(200).String() == "" {
		t.Fatalf("out-of-range register should still render")
	}
	if GPR(3) != RDX || GPR(19) != RDX {
		t.Fatalf("GPR indexing broken: %v %v", GPR(3), GPR(19))
	}
	if XMM(2) != XMM2 {
		t.Fatalf("XMM indexing broken: %v", XMM(2))
	}
}

func TestPortMask(t *testing.T) {
	m := PortsALU
	if !m.Has(0) || !m.Has(1) || !m.Has(5) || m.Has(2) {
		t.Fatalf("PortsALU mask wrong: %06b", m)
	}
	if m.Count() != 3 {
		t.Fatalf("PortsALU should have 3 ports, got %d", m.Count())
	}
	if PortsLoad.Count() != 1 || !PortsLoad.Has(2) {
		t.Fatalf("PortsLoad wrong: %06b", PortsLoad)
	}
}

func TestUopTypeString(t *testing.T) {
	for ut := UopType(0); ut < NumUopTypes; ut++ {
		if ut.String() == "" || strings.HasPrefix(ut.String(), "Uop(") {
			t.Fatalf("uop type %d has no name", ut)
		}
	}
	if UopType(99).String() != "Uop(99)" {
		t.Fatalf("unknown uop type should use fallback")
	}
}

func TestOpcodePredicates(t *testing.T) {
	cases := []struct {
		op                Opcode
		branch, cond      bool
		hasLoad, hasStore bool
	}{
		{OpAdd, false, false, false, false},
		{OpLoad, false, false, true, false},
		{OpStore, false, false, false, true},
		{OpAddToMem, false, false, true, true},
		{OpJcc, true, true, false, false},
		{OpJmp, true, false, false, false},
		{OpCall, true, false, false, true},
		{OpRet, true, false, true, false},
		{OpCmpXchg, false, false, true, true},
	}
	for _, c := range cases {
		if c.op.IsBranch() != c.branch {
			t.Errorf("%s IsBranch = %v, want %v", c.op, c.op.IsBranch(), c.branch)
		}
		if c.op.IsConditional() != c.cond {
			t.Errorf("%s IsConditional = %v, want %v", c.op, c.op.IsConditional(), c.cond)
		}
		if c.op.HasLoad() != c.hasLoad {
			t.Errorf("%s HasLoad = %v, want %v", c.op, c.op.HasLoad(), c.hasLoad)
		}
		if c.op.HasStore() != c.hasStore {
			t.Errorf("%s HasStore = %v, want %v", c.op, c.op.HasStore(), c.hasStore)
		}
	}
}

func TestOpcodeString(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		if op.String() == "" {
			t.Fatalf("opcode %d has no name", op)
		}
	}
	if Opcode(250).String() != "op250" {
		t.Fatalf("unknown opcode fallback broken")
	}
}

func TestBasicBlockHelpers(t *testing.T) {
	b := &BasicBlock{
		ID:   1,
		Addr: 0x4000,
		Instrs: []Instruction{
			{Op: OpLoad, Dst: RAX, Src1: RBP, Bytes: 4},
			{Op: OpAdd, Dst: RBX, Src1: RAX, Src2: RBX, Bytes: 3},
			{Op: OpJcc, Bytes: 2},
		},
	}
	if b.NumInstrs() != 3 {
		t.Fatalf("NumInstrs: %d", b.NumInstrs())
	}
	if b.Bytes() != 9 {
		t.Fatalf("Bytes: %d", b.Bytes())
	}
	if !b.EndsInBranch() {
		t.Fatalf("block should end in branch")
	}
	empty := &BasicBlock{}
	if empty.EndsInBranch() {
		t.Fatalf("empty block should not end in branch")
	}
}

func TestDecodeSimpleALU(t *testing.T) {
	b := &BasicBlock{ID: 1, Instrs: []Instruction{
		{Op: OpAdd, Dst: RAX, Src1: RAX, Src2: RBX, Bytes: 3},
	}}
	d := Decode(b)
	if len(d.Uops) != 1 {
		t.Fatalf("add should decode to 1 uop, got %d", len(d.Uops))
	}
	u := d.Uops[0]
	if u.Type != UopExec || u.Dst1 != RAX || u.Dst2 != RFlags || u.Lat != 1 {
		t.Fatalf("bad add decoding: %v", u)
	}
	if d.Instrs != 1 || d.Loads != 0 || d.Stores != 0 || d.Branches != 0 {
		t.Fatalf("bad counts: %+v", d)
	}
}

func TestDecodeStoreFission(t *testing.T) {
	b := &BasicBlock{ID: 2, Instrs: []Instruction{
		{Op: OpStore, Dst: RDX, Src1: RBP, Bytes: 4},
	}}
	d := Decode(b)
	if len(d.Uops) != 2 {
		t.Fatalf("store should decode to StAddr+StData, got %d uops", len(d.Uops))
	}
	if d.Uops[0].Type != UopStAddr || d.Uops[1].Type != UopStData {
		t.Fatalf("bad store fission: %v %v", d.Uops[0], d.Uops[1])
	}
	if d.Uops[0].MemSlot != d.Uops[1].MemSlot {
		t.Fatalf("StAddr and StData must share a memory slot")
	}
	if d.Stores != 1 {
		t.Fatalf("store count: %d", d.Stores)
	}
}

func TestDecodeLoadOpFission(t *testing.T) {
	b := &BasicBlock{ID: 3, Instrs: []Instruction{
		{Op: OpAddMem, Dst: RAX, Src1: RAX, Src2: RBP, Bytes: 4},
	}}
	d := Decode(b)
	if len(d.Uops) != 2 {
		t.Fatalf("load-op should decode to 2 uops, got %d", len(d.Uops))
	}
	if d.Uops[0].Type != UopLoad || d.Uops[1].Type != UopExec {
		t.Fatalf("bad load-op fission")
	}
	if d.Loads != 1 {
		t.Fatalf("load count: %d", d.Loads)
	}
}

func TestDecodeRMW(t *testing.T) {
	b := &BasicBlock{ID: 4, Instrs: []Instruction{
		{Op: OpAddToMem, Dst: RegZero, Src1: RBP, Src2: RAX, Bytes: 4},
	}}
	d := Decode(b)
	if len(d.Uops) != 4 {
		t.Fatalf("RMW should decode to 4 uops, got %d", len(d.Uops))
	}
	if d.Loads != 1 || d.Stores != 1 {
		t.Fatalf("RMW should have 1 load and 1 store: %+v", d)
	}
	// Load and store must target the same memory slot (same address).
	if d.Uops[0].MemSlot != d.Uops[2].MemSlot {
		t.Fatalf("RMW load and store should share a memory slot")
	}
}

func TestDecodeMacroFusion(t *testing.T) {
	b := &BasicBlock{ID: 5, Instrs: []Instruction{
		{Op: OpCmp, Src1: RAX, Src2: RBX, Bytes: 3},
		{Op: OpJcc, Bytes: 2},
	}}
	d := Decode(b)
	if len(d.Uops) != 1 {
		t.Fatalf("cmp+jcc should macro-fuse into 1 uop, got %d", len(d.Uops))
	}
	if d.Uops[0].Type != UopBranch {
		t.Fatalf("fused uop should be a branch")
	}
	if d.Instrs != 2 {
		t.Fatalf("fused pair still counts as 2 instructions, got %d", d.Instrs)
	}
	if !d.CondBranch || d.Branches != 1 {
		t.Fatalf("fusion should record a conditional branch: %+v", d)
	}
}

func TestDecodeNoFusionWithoutJcc(t *testing.T) {
	b := &BasicBlock{ID: 6, Instrs: []Instruction{
		{Op: OpCmp, Src1: RAX, Src2: RBX, Bytes: 3},
		{Op: OpAdd, Dst: RAX, Src1: RAX, Src2: RBX, Bytes: 3},
	}}
	d := Decode(b)
	if len(d.Uops) != 2 {
		t.Fatalf("cmp+add should not fuse, got %d uops", len(d.Uops))
	}
}

func TestDecodeCallRet(t *testing.T) {
	call := Decode(&BasicBlock{ID: 7, Instrs: []Instruction{{Op: OpCall, Bytes: 5}}})
	if call.Stores != 1 || call.Branches != 1 {
		t.Fatalf("call should store a return address and branch: %+v", call)
	}
	ret := Decode(&BasicBlock{ID: 8, Instrs: []Instruction{{Op: OpRet, Bytes: 1}}})
	if ret.Loads != 1 || ret.Branches != 1 {
		t.Fatalf("ret should load the return address and branch: %+v", ret)
	}
	if ret.CondBranch || call.CondBranch {
		t.Fatalf("call/ret are unconditional")
	}
}

func TestDecodeAtomics(t *testing.T) {
	d := Decode(&BasicBlock{ID: 9, Instrs: []Instruction{
		{Op: OpCmpXchg, Dst: RAX, Src1: RBP, Src2: RBX, Bytes: 5},
	}})
	if d.Loads != 1 || d.Stores != 1 {
		t.Fatalf("cmpxchg should load and store: %+v", d)
	}
	var hasFence bool
	for _, u := range d.Uops {
		if u.Type == UopFence {
			hasFence = true
		}
	}
	if !hasFence {
		t.Fatalf("locked RMW should include a fence uop")
	}
}

func TestDecodeComplexApprox(t *testing.T) {
	d := Decode(&BasicBlock{ID: 10, Instrs: []Instruction{
		{Op: OpComplex, Dst: RAX, Src1: RBX, Bytes: 6},
	}})
	if !d.Approx {
		t.Fatalf("complex instructions should be marked approximate")
	}
}

func TestDecodeCyclesPositive(t *testing.T) {
	var instrs []Instruction
	for i := 0; i < 12; i++ {
		instrs = append(instrs, Instruction{Op: OpAdd, Dst: RAX, Src1: RAX, Src2: RBX, Bytes: 3})
	}
	d := Decode(&BasicBlock{ID: 11, Instrs: instrs})
	// 12 single-uop instructions on a 4-wide decoder need at least 3 cycles.
	if d.DecodeCycles < 3 {
		t.Fatalf("decode cycles too low: %d", d.DecodeCycles)
	}
}

func TestDecodeCyclesPredecodeBound(t *testing.T) {
	// 4 instructions of 8 bytes = 32 bytes = 2 predecode cycles minimum,
	// but they fit in 1 decode cycle; the frontend takes the max.
	var instrs []Instruction
	for i := 0; i < 4; i++ {
		instrs = append(instrs, Instruction{Op: OpMovRR, Dst: RAX, Src1: RBX, Bytes: 8})
	}
	d := Decode(&BasicBlock{ID: 12, Instrs: instrs})
	if d.DecodeCycles != 2 {
		t.Fatalf("predecoder should bound decode cycles at 2, got %d", d.DecodeCycles)
	}
}

func TestDecoderMemoization(t *testing.T) {
	dec := NewDecoder()
	b := &BasicBlock{ID: 42, Instrs: []Instruction{{Op: OpAdd, Dst: RAX, Src1: RAX, Src2: RBX, Bytes: 3}}}
	d1 := dec.Lookup(b)
	d2 := dec.Lookup(b)
	if d1 != d2 {
		t.Fatalf("decoder should memoize by block ID")
	}
	if dec.MissCount() != 1 || dec.HitCount() != 1 {
		t.Fatalf("expected 1 miss and 1 hit, got %d/%d", dec.MissCount(), dec.HitCount())
	}
	if dec.Size() != 1 {
		t.Fatalf("cache size should be 1, got %d", dec.Size())
	}
	dec.Invalidate(42)
	if dec.Size() != 0 {
		t.Fatalf("invalidate should empty the cache")
	}
	d3 := dec.Lookup(b)
	if d3 == nil || dec.MissCount() != 2 {
		t.Fatalf("re-lookup after invalidate should re-decode")
	}
}

func TestDecoderConcurrent(t *testing.T) {
	dec := NewDecoder()
	blocks := make([]*BasicBlock, 64)
	for i := range blocks {
		blocks[i] = &BasicBlock{ID: uint64(i), Instrs: []Instruction{
			{Op: OpLoad, Dst: RAX, Src1: RBP, Bytes: 4},
			{Op: OpAdd, Dst: RAX, Src1: RAX, Src2: RBX, Bytes: 3},
		}}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				for _, b := range blocks {
					if d := dec.Lookup(b); d == nil || len(d.Uops) != 2 {
						t.Errorf("bad concurrent decode")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if dec.Size() != 64 {
		t.Fatalf("expected 64 cached blocks, got %d", dec.Size())
	}
}

func TestUopAndInstructionString(t *testing.T) {
	u := Uop{Type: UopLoad, Src1: RBP, Dst1: RCX, Lat: 4, Ports: PortsLoad}
	if !strings.Contains(u.String(), "Load") {
		t.Fatalf("uop string: %s", u.String())
	}
	ins := Instruction{Op: OpLoad, Dst: RCX, Src1: RBP, Bytes: 4}
	if !strings.Contains(ins.String(), "load") {
		t.Fatalf("instruction string: %s", ins.String())
	}
}

// Property: every decoded block has consistent counts — loads equal the
// number of Load µops, stores equal StData µops, every memory µop has a valid
// slot, and every non-memory µop has slot -1.
func TestDecodeInvariants(t *testing.T) {
	ops := []Opcode{
		OpNop, OpMovRR, OpLoad, OpStore, OpAdd, OpAddMem, OpAddToMem, OpLea,
		OpMul, OpDiv, OpCmp, OpCmpMem, OpTest, OpJcc, OpJmp, OpCall, OpRet,
		OpPush, OpPop, OpFAdd, OpFMul, OpFDiv, OpFMA, OpFLoad, OpFStore,
		OpXchg, OpCmpXchg, OpFence, OpRdtsc, OpComplex,
	}
	f := func(sel []uint8) bool {
		if len(sel) == 0 || len(sel) > 40 {
			return true
		}
		b := &BasicBlock{ID: 999}
		for _, s := range sel {
			op := ops[int(s)%len(ops)]
			b.Instrs = append(b.Instrs, Instruction{
				Op: op, Dst: GPR(int(s)), Src1: GPR(int(s) + 1), Src2: GPR(int(s) + 2), Bytes: 3,
			})
		}
		d := Decode(b)
		loads, stores, branches := 0, 0, 0
		maxSlot := int8(-1)
		for _, u := range d.Uops {
			switch u.Type {
			case UopLoad:
				loads++
			case UopStData:
				stores++
			case UopBranch:
				branches++
			}
			isMem := u.Type == UopLoad || u.Type == UopStAddr || u.Type == UopStData
			if isMem && u.MemSlot < 0 {
				return false
			}
			if !isMem && u.MemSlot != -1 {
				return false
			}
			if u.MemSlot > maxSlot {
				maxSlot = u.MemSlot
			}
			if u.Ports == 0 {
				return false // every uop must have at least one feasible port
			}
		}
		if loads != d.Loads || stores != d.Stores || branches != d.Branches {
			return false
		}
		if d.Instrs < len(b.Instrs) {
			return false
		}
		if len(b.Instrs) > 0 && d.DecodeCycles == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding is deterministic — the same block always yields the same
// µop sequence.
func TestDecodeDeterministic(t *testing.T) {
	f := func(sel []uint8) bool {
		if len(sel) == 0 || len(sel) > 20 {
			return true
		}
		b := &BasicBlock{ID: 1}
		for _, s := range sel {
			b.Instrs = append(b.Instrs, Instruction{
				Op: Opcode(s % uint8(NumOpcodes)), Dst: GPR(int(s)), Src1: GPR(int(s) + 3), Bytes: 1 + s%7,
			})
		}
		d1 := Decode(b)
		d2 := Decode(b)
		if len(d1.Uops) != len(d2.Uops) || d1.DecodeCycles != d2.DecodeCycles {
			return false
		}
		for i := range d1.Uops {
			if d1.Uops[i] != d2.Uops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestUopSlotsMatchDecode pins the static µop-slot table to decodeOne: every
// opcode's table entry must equal the number of µops decodeOne actually
// emits (the table exists so frontend modeling and arena sizing never call
// decodeOne with a throwaway slice).
func TestUopSlotsMatchDecode(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		ins := Instruction{Op: op, Dst: RAX, Src1: RBX, Src2: RCX, Bytes: 4}
		var memSlot int8
		want := len(decodeOne(ins, &memSlot, nil))
		if got := uopSlots(ins); got != want {
			t.Fatalf("uopSlots(%s) = %d, decodeOne emits %d", op, got, want)
		}
	}
}

// TestDecodeInMatchesDecode checks the arena path produces the same decoded
// block as the heap path.
func TestDecodeInMatchesDecode(t *testing.T) {
	b := &BasicBlock{ID: 7, Addr: 0x400000}
	for op := Opcode(0); op < NumOpcodes; op++ {
		b.Instrs = append(b.Instrs, Instruction{Op: op, Dst: RAX, Src1: RBX, Src2: RCX, Bytes: 3})
	}
	heap := Decode(b)
	ar := DecodeIn(arena.New(), b)
	if len(heap.Uops) != len(ar.Uops) || heap.Instrs != ar.Instrs ||
		heap.DecodeCycles != ar.DecodeCycles || heap.Loads != ar.Loads ||
		heap.Stores != ar.Stores || heap.Branches != ar.Branches {
		t.Fatalf("arena decode differs from heap decode:\nheap %+v\narena %+v", heap, ar)
	}
	for i := range heap.Tmpl {
		if heap.Tmpl[i] != ar.Tmpl[i] {
			t.Fatalf("template differs at µop %d: %+v vs %+v", i, heap.Tmpl[i], ar.Tmpl[i])
		}
	}
	if len(heap.MemOps) != len(ar.MemOps) || len(heap.LiveOut) != len(ar.LiveOut) {
		t.Fatalf("memops/liveout lengths differ")
	}
}
