package isa

import "fmt"

// Opcode identifies a simulated instruction. The set covers the instruction
// classes that dominate compiled x86-64 code (the paper notes that modern
// compilers emit only a fraction of the ISA, and that zsim decodes rarely
// used opcodes approximately): integer ALU, multiply/divide, loads, stores,
// read-modify-write ops, branches, calls/returns, FP/SIMD arithmetic, fences
// and atomics, plus a handful of "complex" micro-sequenced instructions that
// receive an approximate generic decoding.
type Opcode uint8

// Instruction opcodes.
const (
	OpNop      Opcode = iota
	OpMovRR           // reg <- reg
	OpMovRI           // reg <- immediate
	OpLoad            // reg <- [mem]
	OpStore           // [mem] <- reg
	OpAdd             // reg <- reg + reg
	OpAddMem          // reg <- reg + [mem]  (load-op µop fission)
	OpAddToMem        // [mem] <- [mem] + reg (load + exec + store fission)
	OpLea             // reg <- address computation
	OpMul             // integer multiply
	OpDiv             // integer divide
	OpCmp             // compare, sets flags
	OpCmpMem          // compare with memory operand
	OpTest            // test, sets flags
	OpJcc             // conditional branch (reads flags)
	OpJmp             // unconditional branch
	OpCall            // call (pushes return address: exec + store)
	OpRet             // return (pops return address: load + branch)
	OpPush            // push reg
	OpPop             // pop reg
	OpFAdd            // FP/SIMD add
	OpFMul            // FP/SIMD multiply
	OpFDiv            // FP/SIMD divide
	OpFMA             // fused multiply-add
	OpFLoad           // vector load
	OpFStore          // vector store
	OpXchg            // atomic exchange (locked RMW)
	OpCmpXchg         // atomic compare-and-swap (locked RMW)
	OpFence           // mfence / serializing op
	OpRdtsc           // read timestamp counter (virtualized by package virt)
	OpMagic           // magic NOP used for simulator control (Section 3.3)
	OpComplex         // rarely-used instruction with generic approximate decoding (e.g., x87)
	NumOpcodes
)

// String returns the instruction mnemonic.
func (o Opcode) String() string {
	names := [...]string{
		"nop", "mov", "movi", "load", "store", "add", "addm", "addtom", "lea",
		"mul", "div", "cmp", "cmpm", "test", "jcc", "jmp", "call", "ret",
		"push", "pop", "fadd", "fmul", "fdiv", "fma", "fload", "fstore",
		"xchg", "cmpxchg", "fence", "rdtsc", "magic", "complex",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsBranch reports whether the opcode is a control-flow instruction.
func (o Opcode) IsBranch() bool {
	return o == OpJcc || o == OpJmp || o == OpCall || o == OpRet
}

// IsConditional reports whether the opcode is a conditional branch.
func (o Opcode) IsConditional() bool { return o == OpJcc }

// HasLoad reports whether the opcode reads memory.
func (o Opcode) HasLoad() bool {
	switch o {
	case OpLoad, OpAddMem, OpAddToMem, OpCmpMem, OpRet, OpPop, OpFLoad, OpXchg, OpCmpXchg:
		return true
	}
	return false
}

// HasStore reports whether the opcode writes memory.
func (o Opcode) HasStore() bool {
	switch o {
	case OpStore, OpAddToMem, OpCall, OpPush, OpFStore, OpXchg, OpCmpXchg:
		return true
	}
	return false
}

// Instruction is a static instruction in a basic block. Registers are
// architectural; memory operands are abstract slots whose dynamic addresses
// are produced by the workload generator at simulation time.
type Instruction struct {
	Op   Opcode
	Dst  Reg
	Src1 Reg
	Src2 Reg
	// Bytes is the encoded length of the instruction, used by the frontend
	// model (instruction-length predecoder, fetch bandwidth). Typical x86-64
	// instructions are 2-8 bytes.
	Bytes uint8
}

// String renders the instruction for debugging.
func (i Instruction) String() string {
	return fmt.Sprintf("%s %s, %s, %s (%dB)", i.Op, i.Dst, i.Src1, i.Src2, i.Bytes)
}

// BasicBlock is a static basic block: a straight-line sequence of
// instructions ending (optionally) in a branch. Workload programs are built
// from basic blocks; the Decoder translates each one exactly once into a
// DecodedBBL.
type BasicBlock struct {
	// ID uniquely identifies the static block within a workload. It is the
	// memoization key for the decoder (the analogue of a Pin trace address).
	ID uint64
	// Addr is the simulated virtual address of the first instruction, used
	// for instruction-cache accesses.
	Addr uint64
	// Instrs are the instructions in program order.
	Instrs []Instruction
}

// NumInstrs returns the number of instructions in the block.
func (b *BasicBlock) NumInstrs() int { return len(b.Instrs) }

// Bytes returns the total encoded size of the block in bytes.
func (b *BasicBlock) Bytes() uint64 {
	var n uint64
	for _, ins := range b.Instrs {
		n += uint64(ins.Bytes)
	}
	return n
}

// EndsInBranch reports whether the last instruction is a control-flow
// instruction.
func (b *BasicBlock) EndsInBranch() bool {
	if len(b.Instrs) == 0 {
		return false
	}
	return b.Instrs[len(b.Instrs)-1].Op.IsBranch()
}
