// Package isa defines the simulated instruction set, its µop decomposition,
// and the decoded-basic-block representation that drives the instruction-
// driven core timing models.
//
// The original zsim uses Pin to dynamically translate native x86 binaries and
// XED2 to decode instructions into µops at instrumentation time, caching the
// result per static basic block. Go cannot host a dynamic binary
// instrumentation engine (the runtime and garbage collector clash with code
// injection), so this package substitutes a synthetic x86-like ISA: workload
// generators (package trace) emit static basic blocks of Instructions, and
// the Decoder translates each static block exactly once into a DecodedBBL —
// the same artifact zsim's instrumentation phase produces: µop types,
// feasible execution ports, register dependencies, latencies, frontend
// (predecoder/decoder) stall cycles, and memory-operand slots.
//
// The key property the paper relies on — decoding work is paid once per
// static block instead of once per dynamic instruction — is preserved: the
// Decoder memoizes DecodedBBLs by block ID, and the baseline "emulation"
// simulator in package baseline deliberately re-decodes every dynamic
// instruction to reproduce the speed gap.
package isa

import "fmt"

// Reg identifies an architectural register of the simulated ISA. The register
// file follows x86-64: 16 general-purpose registers, 16 vector registers, the
// flags register and the instruction pointer. Register 0 (RegZero) is a
// pseudo-register meaning "no operand".
type Reg uint8

// Architectural registers.
const (
	RegZero Reg = iota // no register / unused operand slot
	RAX
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	RFlags
	RIP
	XMM0
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
	NumRegs // total number of architectural registers
)

// String returns the register's assembly-style name.
func (r Reg) String() string {
	names := [...]string{
		"none", "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
		"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
		"rflags", "rip",
		"xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5", "xmm6", "xmm7",
		"xmm8", "xmm9", "xmm10", "xmm11", "xmm12", "xmm13", "xmm14", "xmm15",
	}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("reg%d", uint8(r))
}

// GPR returns the i-th general-purpose register (i in [0,16)).
func GPR(i int) Reg { return RAX + Reg(i%16) }

// XMM returns the i-th vector register (i in [0,16)).
func XMM(i int) Reg { return XMM0 + Reg(i%16) }

// UopType classifies a µop for the timing models. It matches the µop classes
// in Figure 1 of the paper (Load, Exec, StAddr, StData) plus fences and
// branches, which the OOO model treats specially.
type UopType uint8

const (
	UopExec   UopType = iota // ALU/FP/SIMD execution µop
	UopLoad                  // memory load
	UopStAddr                // store address generation
	UopStData                // store data
	UopBranch                // conditional or unconditional branch (executes on the branch port)
	UopFence                 // memory fence / serializing µop
	NumUopTypes
)

// String returns a short mnemonic for the µop type.
func (t UopType) String() string {
	switch t {
	case UopExec:
		return "Exec"
	case UopLoad:
		return "Load"
	case UopStAddr:
		return "StAddr"
	case UopStData:
		return "StData"
	case UopBranch:
		return "Branch"
	case UopFence:
		return "Fence"
	default:
		return fmt.Sprintf("Uop(%d)", uint8(t))
	}
}

// PortMask is a bitmask of the execution ports a µop may issue to. The
// modeled core has six execution ports, following Westmere:
//
//	port 0: ALU, FP multiply, divide, branch (shared)
//	port 1: ALU, FP add
//	port 2: load
//	port 3: store address
//	port 4: store data
//	port 5: ALU, branch
type PortMask uint8

// Execution port masks.
const (
	Port0 PortMask = 1 << iota
	Port1
	Port2
	Port3
	Port4
	Port5

	// NumPorts is the number of execution ports in the modeled core.
	NumPorts = 6

	// PortsALU are the ports that can execute simple integer µops.
	PortsALU = Port0 | Port1 | Port5
	// PortsFPAdd is the FP/SIMD add port.
	PortsFPAdd = Port1
	// PortsFPMul is the FP/SIMD multiply/divide port.
	PortsFPMul = Port0
	// PortsLoad is the load port.
	PortsLoad = Port2
	// PortsStAddr is the store-address port.
	PortsStAddr = Port3
	// PortsStData is the store-data port.
	PortsStData = Port4
	// PortsBranch are the ports that can execute branches.
	PortsBranch = Port5 | Port0
)

// Has reports whether the mask includes port p (0-based).
func (m PortMask) Has(p int) bool { return m&(1<<uint(p)) != 0 }

// Count returns the number of ports in the mask.
func (m PortMask) Count() int {
	n := 0
	for p := 0; p < NumPorts; p++ {
		if m.Has(p) {
			n++
		}
	}
	return n
}

// Uop is a single micro-operation in the format the timing models consume,
// mirroring the decoded-µop table in Figure 1 of the paper: type, up to two
// source registers, up to two destination registers, latency, and the set of
// feasible execution ports. Memory µops (Load/StAddr) reference a memory
// operand slot in the parent instruction; the dynamic address is supplied by
// the workload trace at simulation time.
type Uop struct {
	Type    UopType
	Src1    Reg
	Src2    Reg
	Dst1    Reg
	Dst2    Reg
	Lat     uint16   // execution latency in cycles (0 for StData)
	Ports   PortMask // feasible execution ports
	MemSlot int8     // index of the memory operand in the instruction, -1 if none
}

// String renders the µop in a table-like format for debugging.
func (u Uop) String() string {
	return fmt.Sprintf("%-6s src=%s,%s dst=%s,%s lat=%d ports=%06b",
		u.Type, u.Src1, u.Src2, u.Dst1, u.Dst2, u.Lat, u.Ports)
}
