package serve

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ResultRow is one finished job's row in the queryable result store: the
// compact, indexed slice of the job result that campaign queries and scaling
// analyses need, without the full metrics tree. Every row is also appended to
// the JSONL audit stream (event "result"), which is the store's durable
// archive — the in-memory table is a bounded ring over the most recent rows.
type ResultRow struct {
	Job      string `json:"job"`
	Campaign string `json:"campaign,omitempty"`
	// Point is the job's campaign point index (campaign jobs only).
	Point *int `json:"point,omitempty"`
	// Shape is the config's shape key in hex ("none" if no config ever built).
	Shape   string `json:"shape"`
	Outcome string `json:"outcome"`
	Reused  bool   `json:"reused,omitempty"`
	// Seconds is the job's service latency (start to finish).
	Seconds float64 `json:"seconds"`
	// Simulated metrics (zero for jobs that never ran).
	Cycles       uint64    `json:"cycles,omitempty"`
	Instructions uint64    `json:"instructions,omitempty"`
	IPC          float64   `json:"ipc,omitempty"`
	SimMIPS      float64   `json:"simMIPS,omitempty"`
	Finished     time.Time `json:"finished"`
}

// resultStore is a bounded ring of the most recent result rows, indexed for
// the GET /results query surface. Rows beyond the capacity evict oldest-first;
// the audit log keeps the full history.
type resultStore struct {
	mu        sync.Mutex
	capacity  int
	rows      []ResultRow // ring buffer, rows[next] is the oldest once full
	next      int
	full      bool
	evictions uint64
}

func newResultStore(capacity int) *resultStore {
	if capacity <= 0 {
		capacity = 4096
	}
	return &resultStore{capacity: capacity}
}

func (st *resultStore) insert(row ResultRow) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.rows) < st.capacity {
		st.rows = append(st.rows, row)
		return
	}
	st.rows[st.next] = row
	st.next = (st.next + 1) % st.capacity
	st.full = true
	st.evictions++
}

// resultFilter selects rows; zero fields match everything.
type resultFilter struct {
	campaign string
	shape    string
	outcome  string
	job      string
	limit    int
}

// query returns matching rows newest-first, up to the filter's limit.
func (st *resultStore) query(f resultFilter) []ResultRow {
	if f.limit <= 0 {
		f.limit = 100
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]ResultRow, 0, min(f.limit, len(st.rows)))
	// Walk newest to oldest: backwards from next-1 through the ring.
	n := len(st.rows)
	for i := 1; i <= n && len(out) < f.limit; i++ {
		idx := (st.next - i + n) % n
		// Before the ring wraps, rows is append-ordered and next stays 0, so
		// the newest row is the last element.
		if !st.full {
			idx = n - i
		}
		row := &st.rows[idx]
		if f.campaign != "" && row.Campaign != f.campaign {
			continue
		}
		if f.shape != "" && row.Shape != f.shape {
			continue
		}
		if f.outcome != "" && row.Outcome != f.outcome {
			continue
		}
		if f.job != "" && row.Job != f.job {
			continue
		}
		out = append(out, *row)
	}
	return out
}

// has reports whether any stored row belongs to the given job id.
func (st *resultStore) has(jobID string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range st.rows {
		if st.rows[i].Job == jobID {
			return true
		}
	}
	return false
}

func (st *resultStore) stats() (rows int, evictions uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.rows), st.evictions
}

// handleResults serves GET /results: the queryable view over recent finished
// jobs. Filters: ?campaign=, ?shape= (hex key), ?outcome=, ?job=, ?limit=.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := resultFilter{
		campaign: q.Get("campaign"),
		shape:    q.Get("shape"),
		outcome:  q.Get("outcome"),
		job:      q.Get("job"),
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad limit"})
			return
		}
		f.limit = n
	}
	writeJSON(w, http.StatusOK, s.store.query(f))
}
