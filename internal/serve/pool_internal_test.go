package serve

// Internal tests for the warm pool's prewarm and idle-expiry paths. The
// checkout/return cycle under real jobs is covered by the external server
// tests; these pin the counter invariant the /healthz surface promises:
// occupancy == returns + prewarmed − hits − expiries.

import (
	"testing"
	"time"

	"zsim"
	"zsim/internal/config"
)

func poolSim(t *testing.T) *zsim.Simulator {
	t.Helper()
	cfg := config.SmallTest()
	sim, err := zsim.New(cfg)
	if err != nil {
		t.Fatalf("zsim.New: %v", err)
	}
	sim.SetReusable(true)
	return sim
}

func checkPoolInvariant(t *testing.T, p *simPool) {
	t.Helper()
	st := p.stats()
	if got := st.Returns + st.Prewarmed - st.Hits - st.Expiries; uint64(st.Occupancy) != got {
		t.Fatalf("invariant broken: occupancy %d != returns %d + prewarmed %d - hits %d - expiries %d",
			st.Occupancy, st.Returns, st.Prewarmed, st.Hits, st.Expiries)
	}
}

func TestPoolPrewarmCounters(t *testing.T) {
	p := newSimPool(2, 2)
	defer p.close()
	key := config.SmallTest().ShapeKey()

	a, b := poolSim(t), poolSim(t)
	if !p.prewarm(key, a) || !p.prewarm(key, b) {
		t.Fatalf("prewarm refused below capacity")
	}
	st := p.stats()
	if st.Prewarmed != 2 || st.Returns != 0 || st.Occupancy != 2 {
		t.Fatalf("after prewarm: %+v", st)
	}
	checkPoolInvariant(t, p)

	// A third prewarm into a full pool is discarded, caller closes.
	c := poolSim(t)
	if p.prewarm(key, c) {
		t.Fatalf("prewarm accepted past capacity")
	}
	c.Close()
	if st := p.stats(); st.Discards != 1 {
		t.Fatalf("discards = %d, want 1", st.Discards)
	}

	// Prewarmed entries serve hits like returned ones.
	if sim := p.get(key); sim == nil {
		t.Fatalf("get missed a prewarmed shape")
	} else {
		if !p.put(key, sim) {
			t.Fatalf("put refused with free capacity")
		}
	}
	st = p.stats()
	if st.Hits != 1 || st.Returns != 1 || st.Prewarmed != 2 || st.Occupancy != 2 {
		t.Fatalf("after hit+return: %+v", st)
	}
	checkPoolInvariant(t, p)
}

func TestPoolExpireIdle(t *testing.T) {
	p := newSimPool(4, 4)
	defer p.close()
	key := config.SmallTest().ShapeKey()

	p.prewarm(key, poolSim(t))
	p.prewarm(key, poolSim(t))
	if p.arenaBytes() == 0 {
		t.Fatalf("parked simulators report zero arena bytes")
	}

	// A cutoff in the past expires nothing.
	if n := p.expireIdle(time.Now().Add(-time.Hour)); n != 0 {
		t.Fatalf("past cutoff expired %d entries", n)
	}
	checkPoolInvariant(t, p)

	// A future cutoff expires everything and releases the arena accounting.
	if n := p.expireIdle(time.Now().Add(time.Hour)); n != 2 {
		t.Fatalf("expired %d entries, want 2", n)
	}
	st := p.stats()
	if st.Occupancy != 0 || st.Shapes != 0 || st.Expiries != 2 {
		t.Fatalf("after expiry: %+v", st)
	}
	if p.arenaBytes() != 0 {
		t.Fatalf("expired pool still reports arena bytes")
	}
	checkPoolInvariant(t, p)

	// The shape misses afterwards — expiry really removed the entries.
	if sim := p.get(key); sim != nil {
		sim.Close()
		t.Fatalf("get hit an expired shape")
	}
}

func TestPoolExpirySparesRecent(t *testing.T) {
	p := newSimPool(4, 4)
	defer p.close()
	key := config.SmallTest().ShapeKey()

	p.prewarm(key, poolSim(t))
	cutoff := time.Now() // old entry is before this, new one after
	time.Sleep(2 * time.Millisecond)
	p.prewarm(key, poolSim(t))

	if n := p.expireIdle(cutoff); n != 1 {
		t.Fatalf("expired %d entries, want 1", n)
	}
	st := p.stats()
	if st.Occupancy != 1 || st.Shapes != 1 {
		t.Fatalf("after partial expiry: %+v", st)
	}
	checkPoolInvariant(t, p)
	if sim := p.get(key); sim == nil {
		t.Fatalf("surviving entry not servable")
	} else {
		sim.Close()
	}
}

func TestPoolNilSafety(t *testing.T) {
	var p *simPool // pooling disabled
	if p.get(1) != nil {
		t.Fatalf("nil pool returned a simulator")
	}
	if p.put(1, nil) || p.prewarm(1, nil) {
		t.Fatalf("nil pool retained a simulator")
	}
	if p.expireIdle(time.Now()) != 0 || p.arenaBytes() != 0 {
		t.Fatalf("nil pool reported occupancy")
	}
	if st := p.stats(); st.Enabled {
		t.Fatalf("nil pool reports enabled")
	}
	p.close()
}
