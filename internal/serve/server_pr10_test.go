package serve_test

// HTTP-level tests for the scheduling/retention surfaces: bounded job
// retention with 410 Gone for evicted IDs, the GET /results query view,
// priority-class admission with queue-derived Retry-After, startup prewarm,
// and pool idle-expiry through the server's janitor.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"zsim"
	"zsim/internal/serve"
)

// healthSnap decodes the /healthz fields these tests assert on.
type healthSnap struct {
	Status        string `json:"status"`
	QueueDepth    int    `json:"queueDepth"`
	QueueCapacity int    `json:"queueCapacity"`
	Pool          struct {
		Enabled   bool    `json:"enabled"`
		Occupancy int     `json:"occupancy"`
		Shapes    int     `json:"shapes"`
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		Returns   uint64  `json:"returns"`
		Discards  uint64  `json:"discards"`
		Prewarmed uint64  `json:"prewarmed"`
		Expiries  uint64  `json:"expiries"`
		HitRate   float64 `json:"hitRate"`
	} `json:"pool"`
	Campaigns    int    `json:"campaigns"`
	StoreRows    int    `json:"storeRows"`
	StoreEvicted uint64 `json:"storeEvicted"`
	JobsRetained int    `json:"jobsRetained"`
	JobsEvicted  uint64 `json:"jobsEvicted"`
}

func getHealth(t *testing.T, ts *httptest.Server) healthSnap {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthSnap
	decodeInto(t, resp, &h)
	if h.Status != "ok" {
		t.Fatalf("healthz status %q", h.Status)
	}
	return h
}

func getResults(t *testing.T, ts *httptest.Server, query string) []serve.ResultRow {
	t.Helper()
	resp, err := http.Get(ts.URL + "/results" + query)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET /results%s: HTTP %d", query, resp.StatusCode)
	}
	var rows []serve.ResultRow
	decodeInto(t, resp, &rows)
	return rows
}

// TestJobRetentionEviction: terminal jobs beyond RetainJobs are evicted from
// GET /jobs/{id} with 410 Gone pointing at /results; their compact rows stay
// queryable and /healthz accounts for the eviction.
func TestJobRetentionEviction(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, RetainJobs: 2})

	var ids []string
	for i := 0; i < 5; i++ {
		st := submit(t, ts, quickJob())
		if fin := waitState(t, ts, st.ID, terminal); fin.State != serve.StateSucceeded {
			t.Fatalf("job %s ended %q (%s)", st.ID, fin.State, fin.Error)
		}
		ids = append(ids, st.ID)
	}

	// The oldest three are evicted; status and result answer 410 Gone.
	for _, url := range []string{"/jobs/" + ids[0], "/jobs/" + ids[0] + "/result"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("GET %s: HTTP %d, want 410", url, resp.StatusCode)
		}
		if !strings.Contains(body.String(), "evicted") || !strings.Contains(body.String(), "/results") {
			t.Fatalf("410 body should point at the result store: %s", body)
		}
	}
	// Recent jobs stay fully addressable.
	if st := getStatus(t, ts, ids[4]); st.State != serve.StateSucceeded {
		t.Fatalf("retained job state %q", st.State)
	}
	// Never-admitted IDs are a plain 404, not 410.
	resp, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}

	// The evicted job's row survives in the result store.
	rows := getResults(t, ts, "?job="+ids[0])
	if len(rows) != 1 || rows[0].Job != ids[0] || rows[0].Outcome != serve.StateSucceeded {
		t.Fatalf("evicted job's result row: %+v", rows)
	}

	// Listings and health reflect the retention bound.
	listResp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []serve.JobStatus
	decodeInto(t, listResp, &list)
	if len(list) != 2 {
		t.Fatalf("GET /jobs lists %d jobs, want the 2 retained", len(list))
	}
	h := getHealth(t, ts)
	if h.JobsRetained != 2 || h.JobsEvicted != 3 || h.StoreRows != 5 {
		t.Fatalf("health retention counters: %+v", h)
	}
}

// TestResultsQuerySurface exercises GET /results filters over a mixed history.
func TestResultsQuerySurface(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})

	for i := 0; i < 2; i++ {
		st := submit(t, ts, quickJob())
		if fin := waitState(t, ts, st.ID, terminal); fin.State != serve.StateSucceeded {
			t.Fatalf("job ended %q (%s)", fin.State, fin.Error)
		}
	}
	// A deadline-exceeded job contributes a failed row of the same shape.
	doomed := endlessJob()
	doomed.TimeoutMillis = 100
	st := submit(t, ts, doomed)
	if fin := waitState(t, ts, st.ID, terminal); fin.State != serve.StateFailed {
		t.Fatalf("doomed job ended %q, want failed", fin.State)
	}

	all := getResults(t, ts, "")
	if len(all) != 3 {
		t.Fatalf("got %d rows, want 3", len(all))
	}
	// Newest first: the failed job finished last.
	if all[0].Job != st.ID || all[0].Outcome != serve.StateFailed {
		t.Fatalf("newest row: %+v", all[0])
	}
	if all[0].Seconds <= 0 || all[1].Cycles == 0 || all[1].Instructions == 0 {
		t.Fatalf("rows missing latency/metrics: %+v", all)
	}
	if got := getResults(t, ts, "?outcome=succeeded"); len(got) != 2 {
		t.Fatalf("succeeded filter: %d rows", len(got))
	}
	if got := getResults(t, ts, "?outcome=failed"); len(got) != 1 {
		t.Fatalf("failed filter: %d rows", len(got))
	}
	// All three jobs share the default small shape.
	if all[0].Shape == "" || all[0].Shape == "none" {
		t.Fatalf("failed row lost its shape: %+v", all[0])
	}
	if got := getResults(t, ts, "?shape="+all[0].Shape); len(got) != 3 {
		t.Fatalf("shape filter: %d rows, want 3", len(got))
	}
	if got := getResults(t, ts, "?limit=1"); len(got) != 1 || got[0].Job != st.ID {
		t.Fatalf("limit=1: %+v", got)
	}
	resp, err := http.Get(ts.URL + "/results?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestPriorityAdmission: with the queue full for normal jobs, a high-priority
// submission still lands in its reserved headroom, and sheds carry a
// Retry-After derived from queue state.
func TestPriorityAdmission(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 1})

	running := submit(t, ts, endlessJob())
	waitState(t, ts, running.ID, func(s string) bool { return s == serve.StateRunning })
	queued := submit(t, ts, quickJob()) // fills the queue
	if queued.Priority != "normal" {
		t.Fatalf("default priority %q, want normal", queued.Priority)
	}

	// Normal and low submissions shed with a queue-derived Retry-After.
	for _, pri := range []string{"", "low"} {
		req := quickJob()
		req.Priority = pri
		resp := postJSON(t, ts.URL+"/jobs", req)
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("priority %q: HTTP %d, want 503", pri, resp.StatusCode)
		}
		secs, err := strconv.Atoi(retry)
		if err != nil || secs < 1 || secs > 60 {
			t.Fatalf("Retry-After %q not a sane queue-derived hint", retry)
		}
	}

	// High priority gets the reserved slot...
	high := quickJob()
	high.Priority = "high"
	hst := submit(t, ts, high)
	if hst.Priority != "high" {
		t.Fatalf("high job reported priority %q", hst.Priority)
	}
	// ...exactly once: the headroom is bounded too.
	resp := postJSON(t, ts.URL+"/jobs", high)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second high job: HTTP %d, want 503", resp.StatusCode)
	}

	// Bad priority values are a 400, not a shed.
	bad := quickJob()
	bad.Priority = "urgent"
	resp = postJSON(t, ts.URL+"/jobs", bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority: HTTP %d, want 400", resp.StatusCode)
	}

	// Unblock the worker; the queued jobs drain and succeed.
	cancelJob(t, ts, running.ID).Body.Close()
	for _, id := range []string{queued.ID, hst.ID} {
		if fin := waitState(t, ts, id, terminal); fin.State != serve.StateSucceeded {
			t.Fatalf("job %s ended %q (%s)", id, fin.State, fin.Error)
		}
	}
}

// TestServerPrewarm: Prewarm parks warm simulators before any job arrives, so
// the first job of a prewarmed shape is already a pool hit.
func TestServerPrewarm(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 1, PoolSize: 2})

	n, err := s.Prewarm([]*zsim.Config{zsim.SmallConfig()})
	if err != nil || n != 1 {
		t.Fatalf("Prewarm = %d, %v", n, err)
	}
	h := getHealth(t, ts)
	if h.Pool.Occupancy != 1 || h.Pool.Prewarmed != 1 || h.Pool.Shapes != 1 {
		t.Fatalf("pool after prewarm: %+v", h.Pool)
	}

	res := runToSuccess(t, ts, detJob())
	if !res.Reused {
		t.Fatalf("first job of a prewarmed shape was not served warm")
	}
	h = getHealth(t, ts)
	if h.Pool.Hits != 1 || h.Pool.Misses != 0 {
		t.Fatalf("pool counters after warm first job: %+v", h.Pool)
	}

	// Invalid configs fail the prewarm instead of being silently skipped.
	bad := zsim.SmallConfig()
	bad.NumCores = -1
	if _, err := s.Prewarm([]*zsim.Config{bad}); err == nil {
		t.Fatalf("Prewarm accepted an invalid config")
	}
}

// TestPoolIdleExpiryServer: a pooled simulator whose shape stops arriving is
// expired by the janitor — occupancy returns to zero, the expiry is counted,
// and the next same-shape job constructs fresh.
func TestPoolIdleExpiryServer(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, PoolSize: 2, PoolIdleExpiry: 40 * time.Millisecond})

	first := runToSuccess(t, ts, detJob())
	if first.Reused {
		t.Fatalf("first job cannot be warm")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		h := getHealth(t, ts)
		if h.Pool.Occupancy == 0 && h.Pool.Expiries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor never expired the idle simulator: %+v", h.Pool)
		}
		time.Sleep(5 * time.Millisecond)
	}

	second := runToSuccess(t, ts, detJob())
	if second.Reused {
		t.Fatalf("job after expiry was served from a supposedly-expired pool")
	}
	if !sameMetrics(first.Metrics, second.Metrics) {
		t.Fatalf("post-expiry rerun diverged:\n a: %+v\n b: %+v", first.Metrics, second.Metrics)
	}
	if h := getHealth(t, ts); h.Pool.Misses != 2 {
		t.Fatalf("pool misses = %d, want 2 (both constructions cold)", h.Pool.Misses)
	}
}
