// Package serve implements zsimd's HTTP/JSON simulation service: a bounded
// job queue in front of a fixed worker pool, with per-job deadlines,
// cooperative cancellation, panic isolation and graceful drain on shutdown.
//
// The service is deliberately thin over the zsim facade: a job is one
// simulator configuration plus its workloads, executed via
// zsim.Simulator.RunContext so every robustness guarantee of the library
// (interval-boundary cancellation, wall-time watchdog, cycle limits, typed
// failure reasons, recovered panics with partial metrics) applies unchanged
// to service jobs.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"zsim"
	"zsim/internal/telemetry"
)

// WorkloadSpec names one workload of a job: a registered synthetic workload
// and its software thread count.
type WorkloadSpec struct {
	// Name is a registered workload name (zsim.NamedWorkloads).
	Name string `json:"name"`
	// Threads is the number of software threads (defaults to 1).
	Threads int `json:"threads,omitempty"`
	// Blocks overrides the workload's per-thread basic-block budget when > 0.
	Blocks int `json:"blocks,omitempty"`
}

// JobRequest describes one simulation job. Either Preset or Config selects
// the simulated system; Config wins when both are set.
type JobRequest struct {
	// Preset is a built-in system: "small" (default), "westmere", or "tiled".
	Preset string `json:"preset,omitempty"`
	// Tiles is the tile count for the "tiled" preset (default 4).
	Tiles int `json:"tiles,omitempty"`
	// CoreModel is the core model for the "tiled" preset ("ooo" or "ipc1").
	CoreModel string `json:"coreModel,omitempty"`
	// Config is a full system description; it overrides Preset.
	Config *zsim.Config `json:"config,omitempty"`

	// Workloads are the processes to simulate (at least one).
	Workloads []WorkloadSpec `json:"workloads"`

	// MaxInstructions stops the run cleanly after ~n instructions (0 = run
	// the workloads to completion).
	MaxInstructions uint64 `json:"maxInstructions,omitempty"`
	// HostThreads caps the bound-phase worker threads (0 = all host CPUs).
	HostThreads int `json:"hostThreads,omitempty"`
	// Seed seeds the interval barrier's wake-up shuffling (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// TimeoutMillis is the per-job wall-time budget in milliseconds. The
	// effective budget is the tighter of this and the server's -job-timeout;
	// an overrun fails the job with reason "deadline-exceeded" but keeps its
	// partial metrics.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// Priority selects the admission class: "high" (reserved queue headroom,
	// admitted even when normal admission is full), "normal" (default) or
	// "low" (refused first under load; the class campaign children run at).
	Priority string `json:"priority,omitempty"`
}

// buildConfig resolves the request's system description.
func (r *JobRequest) buildConfig() (*zsim.Config, error) {
	if r.Config != nil {
		cfg := *r.Config // copy: Validate mutates defaults in place
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("invalid config: %w", err)
		}
		return &cfg, nil
	}
	switch r.Preset {
	case "", "small":
		return zsim.SmallConfig(), nil
	case "westmere":
		return zsim.WestmereConfig(), nil
	case "tiled":
		tiles := r.Tiles
		if tiles == 0 {
			tiles = 4
		}
		model := r.CoreModel
		if model == "" {
			model = "ooo"
		}
		return zsim.TiledConfig(tiles, model), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", r.Preset)
	}
}

// validate rejects requests that can never run.
func (r *JobRequest) validate() error {
	if len(r.Workloads) == 0 {
		return fmt.Errorf("job needs at least one workload")
	}
	for _, w := range r.Workloads {
		if _, ok := zsim.LookupWorkload(w.Name); !ok {
			return fmt.Errorf("unknown workload %q", w.Name)
		}
		if w.Threads < 0 || w.Blocks < 0 {
			return fmt.Errorf("workload %q: negative threads/blocks", w.Name)
		}
	}
	if _, err := parsePriority(r.Priority); err != nil {
		return err
	}
	if _, err := r.buildConfig(); err != nil {
		return err
	}
	return nil
}

// Job states, in lifecycle order. A job is terminal in exactly one of
// StateSucceeded, StateFailed or StateCancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateSucceeded = "succeeded"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Failure mirrors zsim.RunError for the wire: the typed reason plus the stop
// point, and the recovered panic message when Reason is "panicked".
type Failure struct {
	Reason   string `json:"reason"`
	Phase    string `json:"phase,omitempty"`
	Interval uint64 `json:"interval,omitempty"`
	Cycle    uint64 `json:"cycle,omitempty"`
	Panic    string `json:"panic,omitempty"`
}

// JobResult is the outcome of a finished job. Failed and cancelled jobs still
// carry the metrics accumulated up to the stop point (Partial = true).
type JobResult struct {
	Summary     string        `json:"summary,omitempty"`
	Metrics     *zsim.Metrics `json:"metrics,omitempty"`
	Intervals   uint64        `json:"intervals"`
	WeaveEvents uint64        `json:"weaveEvents"`
	Stalled     bool          `json:"stalled,omitempty"`
	Partial     bool          `json:"partial,omitempty"`
	Failure     *Failure      `json:"failure,omitempty"`
	Error       string        `json:"error,omitempty"`
	// Reused marks jobs served by a warm simulator from the shape-keyed
	// pool (Reset + rerun) instead of a fresh construction.
	Reused bool `json:"reused,omitempty"`
	// ArenaChunks/ArenaBytes report the simulator's arena footprint; on a
	// warm simulator they stay flat across jobs once the working set is
	// established.
	ArenaChunks int    `json:"arenaChunks,omitempty"`
	ArenaBytes  uint64 `json:"arenaBytes,omitempty"`
}

// JobProgress is the live-progress block of a running job's status, fed from
// the simulator's telemetry probe (interval-boundary snapshots; reading it
// never touches the simulation).
type JobProgress struct {
	// Phase is the engine phase currently executing ("bound", "weave";
	// "idle" before the first interval, "done" after the run).
	Phase string `json:"phase"`
	// Intervals, Cycles and Instructions are the run's progress counters.
	Intervals    uint64 `json:"intervals"`
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	// SimMIPS is the run's simulation rate so far (simulated MIPS).
	SimMIPS float64 `json:"simMIPS"`
	// PctMaxCycles is simulated progress toward the run's MaxCycles budget in
	// percent (omitted when the run has no cycle budget).
	PctMaxCycles float64 `json:"pctMaxCycles,omitempty"`
	// LiveThreads / RunnableThreads are the scheduler's population gauges.
	LiveThreads     int `json:"liveThreads"`
	RunnableThreads int `json:"runnableThreads"`
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	Error     string    `json:"error,omitempty"`
	// Priority is the job's admission class.
	Priority string `json:"priority"`
	// Campaign and Point identify a campaign child's parent sweep and its
	// index in the expansion (absent on interactive jobs).
	Campaign string `json:"campaign,omitempty"`
	Point    *int   `json:"point,omitempty"`
	// Progress is present while the job is running.
	Progress *JobProgress `json:"progress,omitempty"`
}

// job is the server-side record of one submitted simulation.
type job struct {
	id  string
	req *JobRequest
	// class is the admission class (classHigh/Normal/Low); camp and point link
	// a campaign child to its parent sweep (camp == nil, point == -1 for
	// interactive jobs). All three are fixed at admission.
	class int
	camp  *campaignState
	point int

	mu        sync.Mutex
	state     string
	cancelled bool               // cancel requested while still queued
	cancel    context.CancelFunc // set while running
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time
	// probe is the running simulation's telemetry probe, set for the span of
	// the run (attached after the simulator is acquired, detached before it
	// can return to the warm pool).
	probe *telemetry.Probe
}

// setProbe publishes (or, with nil, withdraws) the job's telemetry probe.
func (j *job) setProbe(p *telemetry.Probe) {
	j.mu.Lock()
	j.probe = p
	j.mu.Unlock()
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Priority:  classNames[j.class],
	}
	if j.camp != nil {
		st.Campaign = j.camp.id
		point := j.point
		st.Point = &point
	}
	if j.result != nil {
		st.Error = j.result.Error
	}
	if j.state == StateRunning && j.probe != nil {
		snap := j.probe.Snapshot()
		st.Progress = &JobProgress{
			Phase:           snap.Phase,
			Intervals:       snap.Intervals,
			Cycles:          snap.Cycles,
			Instructions:    snap.Instrs,
			SimMIPS:         snap.SimMIPS(time.Now().UnixNano()),
			PctMaxCycles:    snap.PctMaxCycles(),
			LiveThreads:     snap.LiveThreads,
			RunnableThreads: snap.RunnableThreads,
		}
	}
	return st
}

// terminal reports whether the job has finished (in any terminal state).
func (j *job) terminal() bool {
	switch j.state {
	case StateSucceeded, StateFailed, StateCancelled:
		return true
	}
	return false
}

// requestCancel delivers a cancellation to the job wherever it is in its
// lifecycle. It reports whether the cancel was accepted (false once the job
// already finished).
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.cancelled = true
		return true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return true
	default:
		return false
	}
}
