package serve

// Internal tests for the class-aware admission queue: strict class ordering,
// per-class admission limits and close/drain semantics. The HTTP-level
// behavior (sheds, campaign fairness) is covered by the external e2e tests.

import (
	"testing"
	"time"
)

func testJob(id string) *job { return &job{id: id, point: -1} }

func TestSchedulerClassOrdering(t *testing.T) {
	q := newScheduler(16)
	if !q.enqueue(testJob("low-1"), classLow) ||
		!q.enqueue(testJob("norm-1"), classNormal) ||
		!q.enqueue(testJob("high-1"), classHigh) ||
		!q.enqueue(testJob("norm-2"), classNormal) {
		t.Fatalf("admission refused below limits")
	}
	want := []string{"high-1", "norm-1", "norm-2", "low-1"}
	for _, id := range want {
		j, ok := q.next()
		if !ok || j.id != id {
			t.Fatalf("next = %v/%v, want %s", j, ok, id)
		}
	}
}

func TestSchedulerClassLimits(t *testing.T) {
	q := newScheduler(8) // low limit 6, normal limit 8, high limit 9
	admitted := 0
	for i := 0; i < 10; i++ {
		if q.enqueue(testJob("low"), classLow) {
			admitted++
		}
	}
	if admitted != 6 {
		t.Fatalf("low admissions = %d, want 6 (capacity - capacity/4)", admitted)
	}
	// Normal fills to nominal capacity.
	for i := 0; i < 2; i++ {
		if !q.enqueue(testJob("norm"), classNormal) {
			t.Fatalf("normal refused with queue below capacity")
		}
	}
	if q.enqueue(testJob("norm"), classNormal) {
		t.Fatalf("normal admitted past capacity")
	}
	// High still gets in: reserved headroom above capacity.
	if !q.enqueue(testJob("high"), classHigh) {
		t.Fatalf("high refused at capacity — headroom missing")
	}
	if q.enqueue(testJob("high"), classHigh) {
		t.Fatalf("high admitted past its headroom")
	}
	if q.depth() != 9 {
		t.Fatalf("depth = %d, want 9", q.depth())
	}
	d := q.classDepths()
	if d[classHigh] != 1 || d[classNormal] != 2 || d[classLow] != 6 {
		t.Fatalf("class depths = %v", d)
	}
}

// TestSchedulerTinyQueue pins the capacity-1 behavior the load-shedding e2e
// test depends on: one normal job queues, the next sheds, high still fits.
func TestSchedulerTinyQueue(t *testing.T) {
	q := newScheduler(1)
	if !q.enqueue(testJob("a"), classNormal) {
		t.Fatalf("first normal refused")
	}
	if q.enqueue(testJob("b"), classNormal) {
		t.Fatalf("second normal admitted at capacity 1")
	}
	if q.enqueue(testJob("c"), classLow) {
		t.Fatalf("low admitted at capacity 1")
	}
	if !q.enqueue(testJob("d"), classHigh) {
		t.Fatalf("high refused its headroom slot")
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	q := newScheduler(4)
	q.enqueue(testJob("a"), classNormal)
	q.enqueue(testJob("b"), classLow)
	q.close()
	if q.enqueue(testJob("c"), classHigh) {
		t.Fatalf("enqueue accepted after close")
	}
	// Already-admitted jobs still drain, then next reports closed.
	if j, ok := q.next(); !ok || j.id != "a" {
		t.Fatalf("drain a: %v/%v", j, ok)
	}
	if j, ok := q.next(); !ok || j.id != "b" {
		t.Fatalf("drain b: %v/%v", j, ok)
	}
	if _, ok := q.next(); ok {
		t.Fatalf("next returned a job after drain")
	}
}

// TestSchedulerCloseWakesBlockedWorker: a worker parked in next() must be
// released by close.
func TestSchedulerCloseWakesBlockedWorker(t *testing.T) {
	q := newScheduler(4)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let the goroutine park
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatalf("blocked next returned a job from an empty closed queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("close did not wake blocked worker")
	}
}
