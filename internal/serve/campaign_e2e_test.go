package serve_test

// End-to-end campaign tests through the live HTTP API: deterministic sweep
// expansion into child jobs, bit-identity of child results against direct
// facade runs, live aggregates, quota-serialized release, cancellation, and
// drain-time persistence of campaign state to the audit log. The
// 1,000-point test at the bottom is the PR's acceptance gate: a same-shape
// seed sweep must sustain a warm-pool hit rate >= 90% while a concurrent
// high-priority job is admitted past the saturated queue.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"zsim"
	"zsim/internal/campaign"
	"zsim/internal/serve"
)

// campaignBase is the deterministic base job every sweep starts from (same
// envelope as detJob: single thread, no shared data).
func campaignBase() serve.JobRequest {
	return serve.JobRequest{
		Preset:      "small",
		Workloads:   []serve.WorkloadSpec{{Name: "fluidanimate", Threads: 1, Blocks: 300}},
		HostThreads: 2,
		Seed:        7,
	}
}

func submitCampaign(t *testing.T, ts *httptest.Server, req *serve.CampaignRequest) serve.CampaignStatus {
	t.Helper()
	resp := postJSON(t, ts.URL+"/campaigns", req)
	if resp.StatusCode != http.StatusAccepted {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit campaign: HTTP %d: %s", resp.StatusCode, body)
	}
	var st serve.CampaignStatus
	decodeInto(t, resp, &st)
	if st.ID == "" || st.State == "" {
		t.Fatalf("bad campaign admission: %+v", st)
	}
	return st
}

func getCampaign(t *testing.T, ts *httptest.Server, id string) serve.CampaignStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET /campaigns/%s: HTTP %d", id, resp.StatusCode)
	}
	var st serve.CampaignStatus
	decodeInto(t, resp, &st)
	return st
}

// waitCampaign polls until the campaign leaves "running".
func waitCampaign(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) serve.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getCampaign(t, ts, id)
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// facadeMetrics runs one campaign point's configuration directly through the
// zsim facade, mirroring exactly what the campaign layer does to the base
// config (core override re-derives the weave partitioning; the point label
// lives in Name, which is metrics-neutral).
func facadeMetrics(t *testing.T, cores int, seed uint64, blocks int) *zsim.Metrics {
	t.Helper()
	cfg := zsim.SmallConfig()
	if cores > 0 {
		cfg.NumCores = cores
		cfg.WeaveDomains = 0
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := zsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params, _ := zsim.LookupWorkload("fluidanimate")
	params.BlocksPerThread = blocks
	sim.AddWorkload("fluidanimate", params, 1)
	sim.SetHostThreads(2)
	sim.SetSeed(seed)
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("facade run (cores=%d seed=%d): %v", cores, seed, err)
	}
	return res.Metrics
}

// TestCampaignSweepMatchesFacade drives a cores × seeds sweep through the
// live API and checks the tentpole contract point by point: deterministic
// expansion into child jobs, child results bit-identical to direct facade
// runs of the same configuration, and live aggregates (outcomes, latency,
// scaling curves) matching what actually ran.
func TestCampaignSweepMatchesFacade(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, QueueDepth: 8, PoolSize: 2})

	st := submitCampaign(t, ts, &serve.CampaignRequest{
		Name: "cores-sweep",
		Base: campaignBase(),
		Axes: campaign.Axes{Cores: []int{2, 4}, Seeds: []uint64{3, 5}},
	})
	if st.Points != 4 || st.Shapes != 2 {
		t.Fatalf("expansion: %+v, want 4 points of 2 shapes", st)
	}

	fin := waitCampaign(t, ts, st.ID, 2*time.Minute)
	if fin.State != "done" || fin.Done != 4 || fin.Outstanding != 0 {
		t.Fatalf("campaign ended %+v", fin)
	}
	if fin.Finished.IsZero() {
		t.Fatalf("done campaign has no finish time")
	}

	detail := getCampaign(t, ts, st.ID)
	if len(detail.Children) != 4 {
		t.Fatalf("children: %v", detail.Children)
	}
	if detail.Summary == nil || detail.Summary.Outcomes["succeeded"] != 4 {
		t.Fatalf("summary: %+v", detail.Summary)
	}
	if detail.Summary.Latency == nil || detail.Summary.Latency.Count != 4 {
		t.Fatalf("latency: %+v", detail.Summary.Latency)
	}

	// Children carry their campaign identity and run at the sweep's class.
	first := getStatus(t, ts, detail.Children[0])
	if first.Campaign != st.ID || first.Point == nil || *first.Point != 0 || first.Priority != "low" {
		t.Fatalf("child status: %+v", first)
	}

	// Point order is the documented nesting (cores outer, seeds inner), and
	// every child's simulated metrics are bit-identical to a direct facade run
	// of the same point.
	wantPoints := []struct {
		cores int
		seed  uint64
	}{{2, 3}, {2, 5}, {4, 3}, {4, 5}}
	for i, wp := range wantPoints {
		got := getResult(t, ts, detail.Children[i])
		want := facadeMetrics(t, wp.cores, wp.seed, 300)
		if !sameMetrics(got.Metrics, want) {
			t.Fatalf("point %d (cores=%d seed=%d) diverged from facade:\n child:  %+v\n facade: %+v",
				i, wp.cores, wp.seed, got.Metrics, want)
		}
	}

	// The cores scaling curve reflects the two axis values in sweep order.
	var cores *campaign.Curve
	for i := range detail.Summary.Curves {
		if detail.Summary.Curves[i].Axis == "cores" {
			cores = &detail.Summary.Curves[i]
		}
	}
	if cores == nil || len(cores.Points) != 2 {
		t.Fatalf("cores curve: %+v", detail.Summary.Curves)
	}
	if cores.Points[0].Value != "2" || cores.Points[1].Value != "4" ||
		cores.Points[0].Done != 2 || cores.Points[1].Done != 2 {
		t.Fatalf("cores curve points: %+v", cores.Points)
	}
	if cores.Points[0].Speedup != 1.0 {
		t.Fatalf("curve base speedup = %v, want 1.0", cores.Points[0].Speedup)
	}

	// The result store indexes every child under the campaign.
	if rows := getResults(t, ts, "?campaign="+st.ID); len(rows) != 4 {
		t.Fatalf("campaign result rows: %d, want 4", len(rows))
	}

	// The campaign listing includes the sweep.
	resp, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []serve.CampaignStatus
	decodeInto(t, resp, &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("campaign listing: %+v", list)
	}
}

// TestCampaignQuotaSerializesChildren: quota 1 means at most one outstanding
// child — every next child is submitted only after the previous one finished,
// even with idle workers available.
func TestCampaignQuotaSerializesChildren(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, QueueDepth: 8})

	base := campaignBase()
	base.Workloads[0].Blocks = 80
	st := submitCampaign(t, ts, &serve.CampaignRequest{
		Base:  base,
		Axes:  campaign.Axes{Seeds: []uint64{1, 2, 3}},
		Quota: 1,
	})
	fin := waitCampaign(t, ts, st.ID, 2*time.Minute)
	if fin.State != "done" || fin.Done != 3 {
		t.Fatalf("campaign ended %+v", fin)
	}
	detail := getCampaign(t, ts, st.ID)
	if len(detail.Children) != 3 {
		t.Fatalf("children: %v", detail.Children)
	}
	for i := 0; i < len(detail.Children)-1; i++ {
		prev := getStatus(t, ts, detail.Children[i])
		next := getStatus(t, ts, detail.Children[i+1])
		if prev.Finished.IsZero() || next.Submitted.Before(prev.Finished) {
			t.Fatalf("quota 1 violated: child %d submitted %v before child %d finished %v",
				i+1, next.Submitted, i, prev.Finished)
		}
	}
}

// TestCampaignCancel: cancelling a sweep stops releasing points, cancels the
// outstanding children, and settles the campaign in state "cancelled".
func TestCampaignCancel(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, QueueDepth: 8})

	base := campaignBase()
	base.Workloads[0].Blocks = 1 << 30 // children never finish on their own
	st := submitCampaign(t, ts, &serve.CampaignRequest{
		Base:  base,
		Axes:  campaign.Axes{Seeds: []uint64{1, 2, 3, 4, 5, 6}},
		Quota: 2,
	})

	// Wait until the sweep has children in flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if cur := getCampaign(t, ts, st.ID); cur.Released >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never released children")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/campaigns/"+st.ID+"/cancel", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}

	fin := waitCampaign(t, ts, st.ID, time.Minute)
	if fin.State != "cancelled" || fin.Outstanding != 0 {
		t.Fatalf("cancelled campaign settled as %+v", fin)
	}
	if fin.Released >= 6 {
		t.Fatalf("cancel did not stop point release: %+v", fin)
	}
	if rows := getResults(t, ts, "?campaign="+st.ID+"&outcome=cancelled"); len(rows) == 0 {
		t.Fatalf("no cancelled child rows in the result store")
	}

	// A second cancel reports the campaign already finished.
	resp = postJSON(t, ts.URL+"/campaigns/"+st.ID+"/cancel", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: HTTP %d, want 409", resp.StatusCode)
	}

	// Unknown campaign IDs are 404 on both surfaces.
	for _, probe := range []func() *http.Response{
		func() *http.Response {
			r, err := http.Get(ts.URL + "/campaigns/campaign-999")
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		func() *http.Response { return postJSON(t, ts.URL+"/campaigns/campaign-999/cancel", nil) },
	} {
		r := probe()
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown campaign: HTTP %d, want 404", r.StatusCode)
		}
	}
}

// TestCampaignDrainPersistsState: SIGTERM-style shutdown mid-sweep writes a
// campaign-drain audit record carrying the campaign's full terminal snapshot,
// and the audit stream archives every filed result row.
func TestCampaignDrainPersistsState(t *testing.T) {
	var audit bytes.Buffer
	s, ts := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 4, Audit: &audit})

	base := campaignBase()
	base.Workloads[0].Blocks = 1 << 30
	st := submitCampaign(t, ts, &serve.CampaignRequest{
		Name:  "drained-sweep",
		Base:  base,
		Axes:  campaign.Axes{Seeds: []uint64{1, 2, 3, 4}},
		Quota: 1,
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if cur := getCampaign(t, ts, st.ID); cur.Released >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never released a child")
		}
		time.Sleep(2 * time.Millisecond)
	}

	s.Shutdown(50 * time.Millisecond) // grace expires; the child is cancelled

	var drained *serve.CampaignStatus
	results := 0
	sc := bufio.NewScanner(bytes.NewReader(audit.Bytes()))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var rec struct {
			Event  string           `json:"event"`
			Job    string           `json:"job"`
			Detail string           `json:"detail"`
			Result *serve.ResultRow `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad audit line %q: %v", sc.Text(), err)
		}
		switch rec.Event {
		case "campaign-drain":
			if rec.Job != st.ID {
				t.Fatalf("drain record for unknown campaign %q", rec.Job)
			}
			var cs serve.CampaignStatus
			if err := json.Unmarshal([]byte(rec.Detail), &cs); err != nil {
				t.Fatalf("drain detail not a campaign snapshot: %v\n%s", err, rec.Detail)
			}
			drained = &cs
		case "result":
			if rec.Result == nil {
				t.Fatalf("result event without embedded row")
			}
			if rec.Result.Campaign == st.ID {
				results++
			}
		}
	}
	if drained == nil {
		t.Fatalf("no campaign-drain record in audit log:\n%s", audit.String())
	}
	if drained.Name != "drained-sweep" || drained.Points != 4 || drained.Summary == nil {
		t.Fatalf("drained snapshot incomplete: %+v", drained)
	}
	if drained.Outstanding != 0 {
		t.Fatalf("drain left outstanding children unaccounted: %+v", drained)
	}
	if results == 0 {
		t.Fatalf("audit stream archived no result rows for the campaign")
	}
}

// TestCampaignThousandPointWarmSweep is the PR's acceptance test: a
// 1,000-point same-shape seed sweep through the live API must (1) sustain a
// warm-pool hit rate >= 90%, (2) produce child results bit-identical to
// direct facade runs of sampled points, and (3) leave room for a concurrent
// high-priority interactive job to be admitted — not shed — while the sweep
// saturates the queue (and low-priority traffic IS shed).
//
// Child jobs finish in microseconds here, so the contended phase is staged
// deterministically: two endless interactive jobs pin both workers, the sweep
// fills the low class to its limit behind them (campaign admission pumps
// synchronously), admission is probed against the provably saturated queue,
// and only then are the workers released. CI runs this test in a dedicated
// step; -short skips it.
func TestCampaignThousandPointWarmSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-point sweep is not a -short test")
	}

	_, ts := newTestServer(t, serve.Options{
		Workers:    2,
		QueueDepth: 4,
		PoolSize:   2,
		RetainJobs: 1200,
		StoreSize:  2048,
	})

	// Pin both workers so the queue state below is deterministic.
	blockers := []serve.JobStatus{submit(t, ts, endlessJob()), submit(t, ts, endlessJob())}
	for _, b := range blockers {
		waitState(t, ts, b.ID, func(s string) bool { return s == serve.StateRunning })
	}

	seeds := make([]uint64, 1000)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	base := campaignBase()
	base.Workloads[0].Blocks = 300
	st := submitCampaign(t, ts, &serve.CampaignRequest{
		Name:  "thousand",
		Base:  base,
		Axes:  campaign.Axes{Seeds: seeds},
		Quota: 32, // far beyond the queue: the sweep saturates admission
	})
	if st.Points != 1000 || st.Shapes != 1 {
		t.Fatalf("expansion: %+v, want 1000 points of 1 shape", st)
	}
	// Campaign admission pumps children synchronously: with both workers
	// pinned, the low class now sits at its limit (3 of the 4-deep queue).
	if h := getHealth(t, ts); h.QueueDepth != 3 {
		t.Fatalf("queue depth %d after campaign admission, want the low-class limit 3", h.QueueDepth)
	}

	// Low-priority interactive traffic is shed while the sweep holds the
	// queue...
	low := quickJob()
	low.Priority = "low"
	resp := postJSON(t, ts.URL+"/jobs", low)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("low job against the saturated queue: HTTP %d, want 503", resp.StatusCode)
	}

	// ...but a high-priority job lands in its reserved headroom — and the
	// headroom itself is bounded.
	high := &serve.JobRequest{
		Preset:      "westmere", // a different shape than the sweep's
		Workloads:   []serve.WorkloadSpec{{Name: "blackscholes", Threads: 1, Blocks: 40}},
		HostThreads: 2,
		Priority:    "high",
	}
	// With 3 low slots held and a high limit of capacity+1 = 5, exactly two
	// high jobs fit before the headroom is exhausted.
	hst := submit(t, ts, high)  // fails the test on anything but 202
	hst2 := submit(t, ts, high) // second one takes the last slot
	resp = postJSON(t, ts.URL+"/jobs", high)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third high job: HTTP %d, want 503 (headroom exhausted)", resp.StatusCode)
	}

	// Release the workers; the high-priority jobs outrank every queued child.
	for _, b := range blockers {
		cancelJob(t, ts, b.ID).Body.Close()
	}
	for _, id := range []string{hst.ID, hst2.ID} {
		if fin := waitState(t, ts, id, terminal); fin.State != serve.StateSucceeded {
			t.Fatalf("high-priority job %s ended %q (%s)", id, fin.State, fin.Error)
		}
	}

	fin := waitCampaign(t, ts, st.ID, 10*time.Minute)
	if fin.State != "done" || fin.Done != 1000 || fin.Outstanding != 0 {
		t.Fatalf("sweep ended %+v", fin)
	}

	detail := getCampaign(t, ts, st.ID)
	if detail.Summary == nil || detail.Summary.Outcomes["succeeded"] != 1000 {
		t.Fatalf("outcomes: %+v", detail.Summary)
	}
	if detail.Summary.Latency == nil || detail.Summary.Latency.Count != 1000 {
		t.Fatalf("latency: %+v", detail.Summary.Latency)
	}
	if detail.Summary.Latency.P50 > detail.Summary.Latency.P99 ||
		detail.Summary.Latency.P99 > detail.Summary.Latency.Max {
		t.Fatalf("latency percentiles out of order: %+v", detail.Summary.Latency)
	}
	var seedCurve *campaign.Curve
	for i := range detail.Summary.Curves {
		if detail.Summary.Curves[i].Axis == "seed" {
			seedCurve = &detail.Summary.Curves[i]
		}
	}
	if seedCurve == nil || len(seedCurve.Points) != 1000 {
		t.Fatalf("seed curve incomplete: %d points", len(seedCurve.Points))
	}
	if len(detail.Children) != 1000 {
		t.Fatalf("children: %d", len(detail.Children))
	}

	// Acceptance: warm-pool hit rate >= 90% across the sweep. With one shape
	// and two workers, only the first construction wave (and the westmere
	// interactive job) can miss.
	h := getHealth(t, ts)
	if h.Pool.HitRate < 0.9 {
		t.Fatalf("warm-pool hit rate %.3f < 0.90: %+v", h.Pool.HitRate, h.Pool)
	}

	// Acceptance: sampled child results are bit-identical to fresh facade
	// runs of the same point (seed = point index + 1).
	for _, seed := range []uint64{1, 137, 777, 1000} {
		child := detail.Children[seed-1]
		got := getResult(t, ts, child)
		if !got.Reused && seed > 4 {
			// Not fatal — but with hit rate >= 90% the sampled points should
			// overwhelmingly be warm servings; the identity check below is the
			// real assertion that warm == fresh.
			t.Logf("sampled seed %d served cold", seed)
		}
		want := facadeMetrics(t, 0, seed, 300)
		if !sameMetrics(got.Metrics, want) {
			t.Fatalf("seed %d diverged from facade:\n child:  %+v\n facade: %+v", seed, got.Metrics, want)
		}
	}

	// The result store's campaign view agrees with retention accounting.
	rows := getResults(t, ts, "?campaign="+st.ID+"&limit="+strconv.Itoa(2048))
	if len(rows) != 1000 {
		t.Fatalf("campaign result rows: %d, want 1000", len(rows))
	}
	reused := 0
	for _, r := range rows {
		if r.Reused {
			reused++
		}
	}
	if reused < 900 {
		t.Fatalf("only %d/1000 children served warm", reused)
	}
}
