package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"zsim"
	"zsim/internal/runctl"
	"zsim/internal/telemetry"
)

// Options configure a Server. Zero values get sensible defaults.
type Options struct {
	// Workers is the number of concurrent simulation workers (default 1).
	// Each worker runs one job at a time through the zsim facade.
	Workers int
	// QueueDepth bounds the admission queue (default 16). When the queue is
	// full, submissions are shed with 503 and a Retry-After hint instead of
	// blocking or growing without bound.
	QueueDepth int
	// JobTimeout is the default per-job wall-time budget (0 = unlimited).
	// Individual requests can only tighten it, never extend it.
	JobTimeout time.Duration
	// Audit receives the append-only JSONL audit log (nil = disabled).
	Audit io.Writer
	// PoolSize bounds the warm-simulator pool: finished simulators are
	// retained keyed by configuration shape and rewound (Reset) for the next
	// same-shape job instead of being reconstructed. 0 disables pooling.
	PoolSize int
	// PoolPerShape bounds retained simulators per shape key (default 2 when
	// pooling is enabled), so one hot shape cannot monopolize the pool.
	PoolPerShape int
	// Pprof mounts net/http/pprof under /debug/pprof/ (off by default: the
	// profiling surface stays dark unless explicitly requested with -pprof).
	Pprof bool
}

// Server is the zsimd job service: an http.Handler plus the worker pool
// behind it. Create with New, serve with net/http, stop with Shutdown.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	audit   *auditLog
	pool    *simPool // warm-simulator pool (nil when Options.PoolSize == 0)
	metrics *metrics // /metrics scrape registry

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for stable listings
	seq      int
	queue    chan *job
	draining bool

	workers sync.WaitGroup
}

// New builds a Server and starts its workers.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		mux:        http.NewServeMux(),
		audit:      newAuditLog(opts.Audit),
		pool:       newSimPool(opts.PoolSize, opts.PoolPerShape),
		metrics:    newMetrics(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, opts.QueueDepth),
	}
	s.routes()
	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	s.audit.record("serve", "", "", fmt.Sprintf("workers=%d queue=%d pool=%d", opts.Workers, opts.QueueDepth, opts.PoolSize))
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON is the single response serializer.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// handleSubmit admits a job or sheds it. Admission is all-or-nothing under
// the server lock: the job is registered and enqueued atomically, so a
// submitted job is always observable via GET /jobs/{id} and always reaches a
// worker (or a drain-time cancellation) exactly once.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return
	}
	if err := req.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "shutting down"})
		s.metrics.shed("draining")
		s.audit.record("shed", "", "", "draining")
		return
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		req:       &req,
		state:     StateQueued,
		submitted: time.Now().UTC(),
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	default:
		// The job was never admitted (not registered, not queued), but its ID
		// stays burned so the shed audit record is attributable and IDs never
		// repeat.
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "queue full"})
		s.metrics.shed("queue_full")
		s.audit.record("shed", j.id, "", "queue full")
		return
	}
	s.mu.Unlock()

	s.audit.record("submit", j.id, StateQueued, "")
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Submitted.Before(out[b].Submitted) })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	j.mu.Lock()
	done := j.terminal()
	res := j.result
	j.mu.Unlock()
	if !done || res == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not finished"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if !j.requestCancel() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job already finished"})
		return
	}
	s.metrics.cancelRequested()
	s.audit.record("cancel", j.id, "", "cancel requested")
	writeJSON(w, http.StatusAccepted, j.status())
}

// healthBody is the /healthz payload: liveness, uptime, queue and worker
// occupancy, plus the warm-pool occupancy and hit-rate counters (all zero
// with pooling disabled).
type healthBody struct {
	Status        string    `json:"status"`
	Uptime        string    `json:"uptime"`
	QueueDepth    int       `json:"queueDepth"`
	QueueCapacity int       `json:"queueCapacity"`
	InFlight      int       `json:"inFlight"`
	Workers       int       `json:"workers"`
	Pool          poolStats `json:"pool"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthBody{
		Status:        "ok",
		Uptime:        s.metrics.uptimeString(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		InFlight:      s.metrics.inflightCount(),
		Workers:       s.opts.Workers,
		Pool:          s.pool.stats(),
	})
}

// handleReady reports readiness for new work: a draining server is alive
// (healthz) but no longer ready, which lets a load balancer stop routing to
// it while in-flight jobs finish.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end: transition to running, execute under a
// cancellable per-job context, classify the outcome, and audit every step.
// A panic anywhere in setup or teardown is contained here — one bad job must
// never take a worker (or the daemon) down.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.cancelled {
		j.state = StateCancelled
		j.finished = time.Now().UTC()
		j.result = &JobResult{Error: "cancelled before start", Failure: &Failure{Reason: runctl.ReasonCancelled.String()}}
		j.mu.Unlock()
		s.audit.record("finish", j.id, StateCancelled, "cancelled while queued")
		s.audit.flush()
		return
	}
	j.state = StateRunning
	started := time.Now()
	j.started = started.UTC()
	j.cancel = cancel
	j.mu.Unlock()
	s.metrics.jobStarted()
	s.audit.record("start", j.id, StateRunning, "")

	res, reused, shape, err := s.execute(ctx, j)
	result, state := classify(res, err)
	result.Reused = reused

	j.mu.Lock()
	j.state = state
	j.finished = time.Now().UTC()
	j.cancel = nil
	j.result = result
	j.mu.Unlock()
	s.metrics.jobDone(state, shapeLabel(shape), time.Since(started), reused)
	detail := result.Error
	if reused {
		detail = "reused=true"
		if result.Error != "" {
			detail += " " + result.Error
		}
	}
	s.audit.record("finish", j.id, state, detail)
	s.audit.flush()
}

// execute builds (or checks out of the warm pool) and runs the simulation
// for one job, reporting whether a warm simulator served it and the config's
// shape key (0 when the config never built). The zsim facade already recovers
// panics raised inside the run; the deferred recover here is the service's
// outer ring, catching construction-time faults so the worker goroutine
// survives arbitrary job input — and discarding whatever simulator was in
// hand, since a panicked setup leaves it unrewindable.
//
// While the run executes, the simulator's telemetry probe is published in two
// places: on the job (GET /jobs/{id} progress) and in the metrics registry's
// live aggregate. Both are detached — and the final snapshot folded into the
// completed engine totals — before the simulator can reach the warm pool,
// where the next job would rewind the probe.
func (s *Server) execute(ctx context.Context, j *job) (res *zsim.Result, reused bool, shape uint64, err error) {
	req := j.req
	var sim *zsim.Simulator
	var probe *telemetry.Probe
	detached := false
	detach := func() {
		if probe == nil || detached {
			return
		}
		detached = true
		j.setProbe(nil)
		s.metrics.detachProbe(probe, probe.Snapshot())
	}
	defer func() {
		if r := recover(); r != nil {
			pe := runctl.NewPanicError(r, -1)
			err = fmt.Errorf("job setup panicked: %w", pe)
			if sim != nil {
				sim.Close()
			}
		}
		detach()
	}()

	cfg, err := req.buildConfig()
	if err != nil {
		return nil, false, 0, err
	}
	// The effective wall-time budget is the tighter of the request's and the
	// server's; the library watchdog enforces it and reports
	// deadline-exceeded with partial metrics.
	if t := time.Duration(req.TimeoutMillis) * time.Millisecond; t > 0 && (cfg.MaxWallTime == 0 || t < cfg.MaxWallTime) {
		cfg.MaxWallTime = t
	}
	if s.opts.JobTimeout > 0 && (cfg.MaxWallTime == 0 || s.opts.JobTimeout < cfg.MaxWallTime) {
		cfg.MaxWallTime = s.opts.JobTimeout
	}

	// Warm path: a pooled simulator of this shape rewinds to serve the job.
	// Reset validates the shape match itself; a refusal (which shouldn't
	// happen for a pool hit) falls back to fresh construction.
	key := cfg.ShapeKey()
	shape = key
	if pooled := s.pool.get(key); pooled != nil {
		if rerr := pooled.Reset(cfg); rerr != nil {
			pooled.Close()
		} else {
			sim, reused = pooled, true
		}
	}
	if sim == nil {
		sim, err = zsim.New(cfg)
		if err != nil {
			return nil, false, shape, err
		}
		if s.pool != nil {
			sim.SetReusable(true)
		}
	}
	probe = sim.Probe()
	j.setProbe(probe)
	s.metrics.attachProbe(probe)
	for _, w := range req.Workloads {
		params, ok := zsim.LookupWorkload(w.Name)
		if !ok {
			sim.Close()
			return nil, reused, shape, fmt.Errorf("unknown workload %q", w.Name)
		}
		if w.Blocks > 0 {
			params.BlocksPerThread = w.Blocks
		}
		threads := w.Threads
		if threads <= 0 {
			threads = 1
		}
		sim.AddWorkload(w.Name, params, threads)
	}
	sim.SetMaxInstructions(req.MaxInstructions)
	sim.SetHostThreads(req.HostThreads)
	if req.Seed != 0 {
		sim.SetSeed(req.Seed)
	}
	res, err = sim.RunContext(ctx)
	// Fold the final telemetry snapshot into the completed totals before the
	// simulator becomes poolable (see detach's contract above).
	detach()

	// Return the simulator to the pool unless the run panicked (an aborted
	// engine cannot be rewound; the facade already released its resources) or
	// the pool is full/closed. Cancelled and deadline-exceeded runs stop at
	// clean interval boundaries and rewind safely.
	discard := false
	if err != nil {
		var re *zsim.RunError
		if !errors.As(err, &re) || re.Reason == zsim.Panicked {
			discard = true
		}
	}
	if discard || !s.pool.put(key, sim) {
		sim.Close()
	}
	return res, reused, shape, err
}

// classify maps a run outcome to the job's terminal state and wire result.
func classify(res *zsim.Result, err error) (*JobResult, string) {
	out := &JobResult{}
	if res != nil {
		out.Summary = res.Summary()
		out.Metrics = res.Metrics
		out.Intervals = res.Intervals
		out.WeaveEvents = res.WeaveEvents
		out.Stalled = res.Stalled
		out.ArenaChunks = res.ArenaChunks
		out.ArenaBytes = res.ArenaBytes
	}
	if err == nil {
		return out, StateSucceeded
	}
	out.Error = err.Error()
	var re *zsim.RunError
	if errors.As(err, &re) {
		out.Partial = true
		out.Failure = &Failure{
			Reason:   re.Reason.String(),
			Phase:    re.Phase,
			Interval: re.Interval,
			Cycle:    re.Cycle,
			Panic:    re.Panic,
		}
		if re.Reason == zsim.Cancelled {
			return out, StateCancelled
		}
	}
	return out, StateFailed
}

// Shutdown gracefully drains the server: admission stops immediately
// (submissions get 503, readyz flips to draining), queued and in-flight jobs
// get the grace period to finish, and whatever is still running after the
// grace is cooperatively cancelled — those jobs end Cancelled with partial
// metrics rather than being lost. The audit log is flushed and synced before
// Shutdown returns. It is idempotent; the first call wins.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.waitWorkers()
		return
	}
	s.draining = true
	close(s.queue) // workers exit after draining what was admitted
	s.mu.Unlock()
	s.audit.record("shutdown", "", "", fmt.Sprintf("grace=%s", grace))

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		// Grace expired: cancel every in-flight (and still-queued) job. Runs
		// stop at the next interval boundary and report partial results, so
		// this wait is bounded by one simulation interval per job.
		s.audit.record("shutdown", "", "", "grace expired; cancelling in-flight jobs")
		s.cancelAll()
		<-done
	}
	s.baseCancel()
	s.pool.close()
	s.audit.record("drained", "", "", strconv.Itoa(s.jobCount()))
	s.audit.close()
}

// cancelAll delivers a cancel to every non-terminal job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if j.requestCancel() {
			s.audit.record("cancel", j.id, "", "shutdown: grace expired")
		}
	}
}

func (s *Server) jobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

func (s *Server) waitWorkers() {
	s.workers.Wait()
}
