package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"zsim"
	"zsim/internal/runctl"
	"zsim/internal/telemetry"
)

// Options configure a Server. Zero values get sensible defaults.
type Options struct {
	// Workers is the number of concurrent simulation workers (default 1).
	// Each worker runs one job at a time through the zsim facade.
	Workers int
	// QueueDepth bounds the admission queue (default 16). Admission is
	// class-aware: low-priority (campaign) jobs are refused once the queue is
	// 3/4 full, normal jobs at capacity, and high-priority jobs get reserved
	// headroom above capacity — so a saturating sweep cannot starve
	// interactive submissions. Refused jobs are shed with 503 and a
	// Retry-After derived from queue depth and observed job latency.
	QueueDepth int
	// JobTimeout is the default per-job wall-time budget (0 = unlimited).
	// Individual requests can only tighten it, never extend it.
	JobTimeout time.Duration
	// Audit receives the append-only JSONL audit log (nil = disabled).
	Audit io.Writer
	// PoolSize bounds the warm-simulator pool: finished simulators are
	// retained keyed by configuration shape and rewound (Reset) for the next
	// same-shape job instead of being reconstructed. 0 disables pooling.
	PoolSize int
	// PoolPerShape bounds retained simulators per shape key (default 2 when
	// pooling is enabled), so one hot shape cannot monopolize the pool.
	PoolPerShape int
	// PoolIdleExpiry releases pooled simulators whose shape stopped arriving:
	// a simulator idle in the pool longer than this is closed and its arena
	// memory freed. 0 disables expiry (long-lived daemons then pin memory for
	// every shape they ever pooled).
	PoolIdleExpiry time.Duration
	// RetainJobs bounds how many terminal jobs stay addressable via
	// GET /jobs/{id} (default 1024; negative = unlimited). Older terminal
	// jobs are evicted — their compact rows remain queryable in the result
	// store and the audit log keeps the full history.
	RetainJobs int
	// StoreSize bounds the in-memory result store ring (default 4096 rows).
	StoreSize int
	// MaxCampaignPoints bounds a single campaign expansion (default
	// campaign.DefaultMaxPoints).
	MaxCampaignPoints int
	// Pprof mounts net/http/pprof under /debug/pprof/ (off by default: the
	// profiling surface stays dark unless explicitly requested with -pprof).
	Pprof bool
}

// Server is the zsimd job service: an http.Handler plus the worker pool
// behind it. Create with New, serve with net/http, stop with Shutdown.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	audit   *auditLog
	pool    *simPool     // warm-simulator pool (nil when Options.PoolSize == 0)
	metrics *metrics     // /metrics scrape registry
	sched   *scheduler   // class-aware admission queue
	store   *resultStore // queryable ring of recent result rows

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for stable listings
	seq      int
	draining bool
	// finished lists terminal job IDs oldest-first; retention evicts from its
	// head once it outgrows Options.RetainJobs.
	finished []string
	evicted  uint64

	campaigns map[string]*campaignState
	campOrder []string
	campSeq   int
	// pumpMu serializes campaign child release (see pumpCampaigns).
	pumpMu sync.Mutex

	workers sync.WaitGroup
}

// New builds a Server and starts its workers.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.RetainJobs == 0 {
		opts.RetainJobs = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		mux:        http.NewServeMux(),
		audit:      newAuditLog(opts.Audit),
		pool:       newSimPool(opts.PoolSize, opts.PoolPerShape),
		metrics:    newMetrics(),
		sched:      newScheduler(opts.QueueDepth),
		store:      newResultStore(opts.StoreSize),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		campaigns:  make(map[string]*campaignState),
	}
	s.routes()
	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	if s.pool != nil && opts.PoolIdleExpiry > 0 {
		go s.poolJanitor(opts.PoolIdleExpiry)
	}
	s.audit.record("serve", "", "", fmt.Sprintf("workers=%d queue=%d pool=%d", opts.Workers, opts.QueueDepth, opts.PoolSize))
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /campaigns", s.handleCampaignSubmit)
	s.mux.HandleFunc("GET /campaigns", s.handleCampaignList)
	s.mux.HandleFunc("GET /campaigns/{id}", s.handleCampaignStatus)
	s.mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCampaignCancel)
	s.mux.HandleFunc("GET /results", s.handleResults)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON is the single response serializer.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// retryAfterSeconds derives the shed Retry-After hint from queue state: the
// expected time to drain the current backlog plus one job, using the EWMA of
// observed job latency (1s floor before any job has finished). Clamped to
// [1, 60] so clients neither hammer nor stall.
func (s *Server) retryAfterSeconds() int {
	avg := s.metrics.avgLatencySeconds()
	if avg <= 0 {
		avg = 1
	}
	backlog := s.sched.depth() + s.metrics.inflightCount()
	est := avg * float64(backlog+1) / float64(s.opts.Workers)
	secs := int(math.Ceil(est))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// shedResponse writes a 503 with the queue-state-derived Retry-After, and
// records the shed in metrics and the audit log.
func (s *Server) shedResponse(w http.ResponseWriter, reason, jobID, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: msg})
	s.metrics.shed(reason)
	s.audit.record("shed", jobID, "", msg)
}

// handleSubmit admits a job or sheds it. Admission is all-or-nothing under
// the server lock: the job is registered and enqueued atomically, so a
// submitted job is always observable via GET /jobs/{id} and always reaches a
// worker (or a drain-time cancellation) exactly once.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return
	}
	if err := req.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	class, _ := parsePriority(req.Priority) // validate() already vetted it

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.shedResponse(w, "draining", "", "shutting down")
		return
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		req:       &req,
		state:     StateQueued,
		submitted: time.Now().UTC(),
		class:     class,
		point:     -1,
	}
	if !s.sched.enqueue(j, class) {
		// The job was never admitted (not registered, not queued), but its ID
		// stays burned so the shed audit record is attributable and IDs never
		// repeat.
		s.mu.Unlock()
		s.shedResponse(w, "queue_full", j.id, "queue full")
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	s.audit.record("submit", j.id, StateQueued, "")
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

// missingJob answers a lookup miss: 410 for jobs evicted by retention (their
// row survives in /results and the audit log), 404 for IDs never admitted.
func (s *Server) missingJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.store.has(id) {
		writeJSON(w, http.StatusGone, errorBody{
			Error: fmt.Sprintf("job %s evicted from retention; see /results?job=%s or the audit log", id, id),
		})
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil { // evicted IDs stay in order until compaction
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Submitted.Before(out[b].Submitted) })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		s.missingJob(w, r)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		s.missingJob(w, r)
		return
	}
	j.mu.Lock()
	done := j.terminal()
	res := j.result
	j.mu.Unlock()
	if !done || res == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not finished"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		s.missingJob(w, r)
		return
	}
	if !j.requestCancel() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job already finished"})
		return
	}
	s.metrics.cancelRequested()
	s.audit.record("cancel", j.id, "", "cancel requested")
	writeJSON(w, http.StatusAccepted, j.status())
}

// healthBody is the /healthz payload: liveness, uptime, queue and worker
// occupancy, warm-pool counters, result-store occupancy and job retention.
type healthBody struct {
	Status        string    `json:"status"`
	Uptime        string    `json:"uptime"`
	QueueDepth    int       `json:"queueDepth"`
	QueueCapacity int       `json:"queueCapacity"`
	InFlight      int       `json:"inFlight"`
	Workers       int       `json:"workers"`
	Pool          poolStats `json:"pool"`
	Campaigns     int       `json:"campaigns"`
	StoreRows     int       `json:"storeRows"`
	StoreEvicted  uint64    `json:"storeEvicted"`
	JobsRetained  int       `json:"jobsRetained"`
	JobsEvicted   uint64    `json:"jobsEvicted"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	retained := len(s.jobs)
	evicted := s.evicted
	ncamp := len(s.campaigns)
	s.mu.Unlock()
	rows, storeEvicted := s.store.stats()
	writeJSON(w, http.StatusOK, healthBody{
		Status:        "ok",
		Uptime:        s.metrics.uptimeString(),
		QueueDepth:    s.sched.depth(),
		QueueCapacity: s.opts.QueueDepth,
		InFlight:      s.metrics.inflightCount(),
		Workers:       s.opts.Workers,
		Pool:          s.pool.stats(),
		Campaigns:     ncamp,
		StoreRows:     rows,
		StoreEvicted:  storeEvicted,
		JobsRetained:  retained,
		JobsEvicted:   evicted,
	})
}

// handleReady reports readiness for new work: a draining server is alive
// (healthz) but no longer ready, which lets a load balancer stop routing to
// it while in-flight jobs finish.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// worker drains the scheduler until Shutdown closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.sched.next()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// poolJanitor periodically expires pool entries idle longer than ttl, until
// shutdown cancels the base context.
func (s *Server) poolJanitor(ttl time.Duration) {
	tick := ttl / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.pool.expireIdle(time.Now().Add(-ttl))
		}
	}
}

// Prewarm constructs a warm simulator for each configuration and parks it in
// the pool, so a daemon starts with its expected shapes already hot. Configs
// that exceed pool capacity are built and immediately discarded; the count of
// actually pooled simulators is returned. No-op with pooling disabled.
func (s *Server) Prewarm(cfgs []*zsim.Config) (int, error) {
	if s.pool == nil {
		return 0, nil
	}
	pooled := 0
	for i, c := range cfgs {
		cfg := *c // copy: Validate mutates defaults in place
		if err := cfg.Validate(); err != nil {
			return pooled, fmt.Errorf("prewarm config %d: %w", i, err)
		}
		sim, err := zsim.New(&cfg)
		if err != nil {
			return pooled, fmt.Errorf("prewarm config %d: %w", i, err)
		}
		sim.SetReusable(true)
		if s.pool.prewarm(cfg.ShapeKey(), sim) {
			pooled++
		} else {
			sim.Close()
		}
	}
	s.audit.record("prewarm", "", "", fmt.Sprintf("configs=%d pooled=%d", len(cfgs), pooled))
	return pooled, nil
}

// runJob executes one job end to end: transition to running, execute under a
// cancellable per-job context, classify the outcome, and audit every step.
// A panic anywhere in setup or teardown is contained here — one bad job must
// never take a worker (or the daemon) down.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.cancelled {
		j.state = StateCancelled
		j.finished = time.Now().UTC()
		result := &JobResult{Error: "cancelled before start", Failure: &Failure{Reason: runctl.ReasonCancelled.String()}}
		j.result = result
		j.mu.Unlock()
		s.audit.record("finish", j.id, StateCancelled, "cancelled while queued")
		s.jobFinished(j, StateCancelled, result, 0, 0)
		s.audit.flush()
		return
	}
	j.state = StateRunning
	started := time.Now()
	j.started = started.UTC()
	j.cancel = cancel
	j.mu.Unlock()
	s.metrics.jobStarted()
	s.audit.record("start", j.id, StateRunning, "")

	res, reused, shape, err := s.execute(ctx, j)
	result, state := classify(res, err)
	result.Reused = reused

	j.mu.Lock()
	j.state = state
	j.finished = time.Now().UTC()
	j.cancel = nil
	j.result = result
	j.mu.Unlock()
	dur := time.Since(started)
	s.metrics.jobDone(state, shapeLabel(shape), dur, reused)
	detail := result.Error
	if reused {
		detail = "reused=true"
		if result.Error != "" {
			detail += " " + result.Error
		}
	}
	s.audit.record("finish", j.id, state, detail)
	s.jobFinished(j, state, result, shape, dur)
	s.audit.flush()
}

// jobFinished is the single post-terminal hook: it files the job's compact
// result row (store + audit archive), folds campaign children into their
// campaign, enforces job retention, and releases follow-on campaign work.
// Called from runJob with no locks held.
func (s *Server) jobFinished(j *job, state string, result *JobResult, shape uint64, dur time.Duration) {
	row := ResultRow{
		Job:      j.id,
		Shape:    shapeLabel(shape),
		Outcome:  state,
		Seconds:  dur.Seconds(),
		Finished: time.Now().UTC(),
	}
	if result != nil {
		row.Reused = result.Reused
		if m := result.Metrics; m != nil {
			row.Cycles = m.Cycles
			row.Instructions = m.Instrs
			row.IPC = m.IPC
			row.SimMIPS = m.SimMIPS
		}
	}
	if j.camp != nil {
		row.Campaign = j.camp.id
		point := j.point
		row.Point = &point
	}
	s.store.insert(row)
	s.audit.recordResult(&row)
	s.metrics.resultFiled()
	if j.camp != nil {
		s.campaignChildDone(j, state, result, dur)
	}
	s.evictOldJobs(j.id)
	s.pumpCampaigns()
}

// evictOldJobs appends the newly terminal job to the finish-order list and
// evicts the oldest terminal jobs beyond the retention bound. Eviction only
// drops the in-memory job record — the result store and audit log remain.
func (s *Server) evictOldJobs(id string) {
	retain := s.opts.RetainJobs
	s.mu.Lock()
	s.finished = append(s.finished, id)
	if retain >= 0 {
		for len(s.finished) > retain {
			victim := s.finished[0]
			s.finished = s.finished[1:]
			if _, ok := s.jobs[victim]; ok {
				delete(s.jobs, victim)
				s.evicted++
			}
		}
	}
	// Compact the submission-order list once evictions leave it mostly holes.
	if len(s.order) > 2*(len(s.jobs)+16) {
		kept := make([]string, 0, len(s.jobs))
		for _, jid := range s.order {
			if _, ok := s.jobs[jid]; ok {
				kept = append(kept, jid)
			}
		}
		s.order = kept
	}
	s.mu.Unlock()
}

// execute builds (or checks out of the warm pool) and runs the simulation
// for one job, reporting whether a warm simulator served it and the config's
// shape key (0 when the config never built). The zsim facade already recovers
// panics raised inside the run; the deferred recover here is the service's
// outer ring, catching construction-time faults so the worker goroutine
// survives arbitrary job input — and discarding whatever simulator was in
// hand, since a panicked setup leaves it unrewindable.
//
// While the run executes, the simulator's telemetry probe is published in two
// places: on the job (GET /jobs/{id} progress) and in the metrics registry's
// live aggregate. Both are detached — and the final snapshot folded into the
// completed engine totals — before the simulator can reach the warm pool,
// where the next job would rewind the probe.
func (s *Server) execute(ctx context.Context, j *job) (res *zsim.Result, reused bool, shape uint64, err error) {
	req := j.req
	var sim *zsim.Simulator
	var probe *telemetry.Probe
	detached := false
	detach := func() {
		if probe == nil || detached {
			return
		}
		detached = true
		j.setProbe(nil)
		s.metrics.detachProbe(probe, probe.Snapshot())
	}
	defer func() {
		if r := recover(); r != nil {
			pe := runctl.NewPanicError(r, -1)
			err = fmt.Errorf("job setup panicked: %w", pe)
			if sim != nil {
				sim.Close()
			}
		}
		detach()
	}()

	cfg, err := req.buildConfig()
	if err != nil {
		return nil, false, 0, err
	}
	// The effective wall-time budget is the tighter of the request's and the
	// server's; the library watchdog enforces it and reports
	// deadline-exceeded with partial metrics.
	if t := time.Duration(req.TimeoutMillis) * time.Millisecond; t > 0 && (cfg.MaxWallTime == 0 || t < cfg.MaxWallTime) {
		cfg.MaxWallTime = t
	}
	if s.opts.JobTimeout > 0 && (cfg.MaxWallTime == 0 || s.opts.JobTimeout < cfg.MaxWallTime) {
		cfg.MaxWallTime = s.opts.JobTimeout
	}

	// Warm path: a pooled simulator of this shape rewinds to serve the job.
	// Reset validates the shape match itself; a refusal (which shouldn't
	// happen for a pool hit) falls back to fresh construction.
	key := cfg.ShapeKey()
	shape = key
	if pooled := s.pool.get(key); pooled != nil {
		if rerr := pooled.Reset(cfg); rerr != nil {
			pooled.Close()
		} else {
			sim, reused = pooled, true
		}
	}
	if sim == nil {
		sim, err = zsim.New(cfg)
		if err != nil {
			return nil, false, shape, err
		}
		if s.pool != nil {
			sim.SetReusable(true)
		}
	}
	probe = sim.Probe()
	j.setProbe(probe)
	s.metrics.attachProbe(probe)
	for _, w := range req.Workloads {
		params, ok := zsim.LookupWorkload(w.Name)
		if !ok {
			sim.Close()
			return nil, reused, shape, fmt.Errorf("unknown workload %q", w.Name)
		}
		if w.Blocks > 0 {
			params.BlocksPerThread = w.Blocks
		}
		threads := w.Threads
		if threads <= 0 {
			threads = 1
		}
		sim.AddWorkload(w.Name, params, threads)
	}
	sim.SetMaxInstructions(req.MaxInstructions)
	sim.SetHostThreads(req.HostThreads)
	if req.Seed != 0 {
		sim.SetSeed(req.Seed)
	}
	res, err = sim.RunContext(ctx)
	// Fold the final telemetry snapshot into the completed totals before the
	// simulator becomes poolable (see detach's contract above).
	detach()

	// Return the simulator to the pool unless the run panicked (an aborted
	// engine cannot be rewound; the facade already released its resources) or
	// the pool is full/closed. Cancelled and deadline-exceeded runs stop at
	// clean interval boundaries and rewind safely.
	discard := false
	if err != nil {
		var re *zsim.RunError
		if !errors.As(err, &re) || re.Reason == zsim.Panicked {
			discard = true
		}
	}
	if discard || !s.pool.put(key, sim) {
		sim.Close()
	}
	return res, reused, shape, err
}

// classify maps a run outcome to the job's terminal state and wire result.
func classify(res *zsim.Result, err error) (*JobResult, string) {
	out := &JobResult{}
	if res != nil {
		out.Summary = res.Summary()
		out.Metrics = res.Metrics
		out.Intervals = res.Intervals
		out.WeaveEvents = res.WeaveEvents
		out.Stalled = res.Stalled
		out.ArenaChunks = res.ArenaChunks
		out.ArenaBytes = res.ArenaBytes
	}
	if err == nil {
		return out, StateSucceeded
	}
	out.Error = err.Error()
	var re *zsim.RunError
	if errors.As(err, &re) {
		out.Partial = true
		out.Failure = &Failure{
			Reason:   re.Reason.String(),
			Phase:    re.Phase,
			Interval: re.Interval,
			Cycle:    re.Cycle,
			Panic:    re.Panic,
		}
		if re.Reason == zsim.Cancelled {
			return out, StateCancelled
		}
	}
	return out, StateFailed
}

// Shutdown gracefully drains the server: admission stops immediately
// (submissions get 503, readyz flips to draining), queued and in-flight jobs
// get the grace period to finish, and whatever is still running after the
// grace is cooperatively cancelled — those jobs end Cancelled with partial
// metrics rather than being lost. Campaign progress is persisted to the audit
// log before it closes. The audit log is flushed and synced before Shutdown
// returns. It is idempotent; the first call wins.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.waitWorkers()
		return
	}
	s.draining = true
	s.mu.Unlock()
	s.sched.close() // workers exit after draining what was admitted
	s.audit.record("shutdown", "", "", fmt.Sprintf("grace=%s", grace))

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		// Grace expired: cancel every in-flight (and still-queued) job. Runs
		// stop at the next interval boundary and report partial results, so
		// this wait is bounded by one simulation interval per job.
		s.audit.record("shutdown", "", "", "grace expired; cancelling in-flight jobs")
		s.cancelAll()
		<-done
	}
	s.baseCancel()
	s.pool.close()
	s.drainCampaigns()
	s.audit.record("drained", "", "", strconv.Itoa(s.jobCount()))
	s.audit.close()
}

// cancelAll delivers a cancel to every non-terminal job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if j.requestCancel() {
			s.audit.record("cancel", j.id, "", "shutdown: grace expired")
		}
	}
}

func (s *Server) jobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

func (s *Server) waitWorkers() {
	s.workers.Wait()
}
