package serve_test

// Serve-level throughput benchmark for the warm-simulator pool: the same
// stream of identical-shape jobs through a zsimd server, with pooling off
// (every job constructs a 64-core chip) and on (jobs after the first are
// served by a Reset warm simulator). Gate on the fresh/warm jobs/sec ratio,
// not absolute ns/op (1-vCPU CI host).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zsim/internal/campaign"
	"zsim/internal/serve"
)

// benchJob is a small job on a construction-dominated 64-core tiled shape —
// the shape mix BenchmarkJobThroughput uses at the library layer.
func benchJob() *serve.JobRequest {
	return &serve.JobRequest{
		Preset:      "tiled",
		Tiles:       16,
		CoreModel:   "ipc1",
		Workloads:   []serve.WorkloadSpec{{Name: "fluidanimate", Threads: 2, Blocks: 25}},
		HostThreads: 2,
		Seed:        7,
	}
}

func benchSubmit(b *testing.B, ts *httptest.Server, req *serve.JobRequest) string {
	b.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", &buf)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	return st.ID
}

func benchWait(b *testing.B, ts *httptest.Server, id string) {
	b.Helper()
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			b.Fatal(err)
		}
		var st serve.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			resp.Body.Close()
			b.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case serve.StateSucceeded:
			return
		case serve.StateFailed, serve.StateCancelled:
			b.Fatalf("job %s ended %q (%s)", id, st.State, st.Error)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func BenchmarkServeJobThroughput(b *testing.B) {
	run := func(b *testing.B, poolSize int) {
		srv := serve.New(serve.Options{Workers: 1, QueueDepth: b.N + 1, PoolSize: poolSize})
		ts := httptest.NewServer(srv)
		defer func() {
			srv.Shutdown(time.Minute)
			ts.Close()
		}()
		// One job off the clock: HTTP warm-up, and with pooling on it
		// stocks the pool so the timed stream measures steady state.
		benchWait(b, ts, benchSubmit(b, ts, benchJob()))
		b.ResetTimer()
		ids := make([]string, b.N)
		for i := range ids {
			ids[i] = benchSubmit(b, ts, benchJob())
		}
		for _, id := range ids {
			benchWait(b, ts, id)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	}
	b.Run("fresh", func(b *testing.B) { run(b, 0) })
	b.Run("warm", func(b *testing.B) { run(b, 2) })
}

// BenchmarkCampaignThroughput measures the campaign path end to end: one
// seed-sweep campaign of b.N same-shape points through POST /campaigns, the
// quota-paced pump, the worker pool and the result store, until the campaign
// reports done. This is the design-space-exploration serving rate; "warm" is
// the deployment configuration (children after the first reuse a pooled
// simulator), "fresh" constructs the 64-core chip for every point. Gate on
// the fresh/warm points/sec ratio, not absolute numbers.
func BenchmarkCampaignThroughput(b *testing.B) {
	run := func(b *testing.B, poolSize int) {
		srv := serve.New(serve.Options{
			Workers:           1,
			QueueDepth:        64,
			PoolSize:          poolSize,
			MaxCampaignPoints: b.N + 1,
			StoreSize:         b.N + 1,
		})
		ts := httptest.NewServer(srv)
		defer func() {
			srv.Shutdown(time.Minute)
			ts.Close()
		}()
		// One plain job off the clock: HTTP warm-up, pool stocking.
		benchWait(b, ts, benchSubmit(b, ts, benchJob()))

		seeds := make([]uint64, b.N)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		b.ResetTimer()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(&serve.CampaignRequest{
			Name:  "bench-sweep",
			Base:  *benchJob(),
			Axes:  campaign.Axes{Seeds: seeds},
			Quota: 32,
		}); err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", &buf)
		if err != nil {
			b.Fatal(err)
		}
		var st serve.CampaignStatus
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			b.Fatalf("submit campaign: HTTP %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		for st.State == "running" {
			time.Sleep(500 * time.Microsecond)
			resp, err := http.Get(ts.URL + "/campaigns/" + st.ID)
			if err != nil {
				b.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
		if st.State != "done" || st.Done != b.N {
			b.Fatalf("campaign ended %q with %d/%d points done", st.State, st.Done, b.N)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/sec")
	}
	b.Run("fresh", func(b *testing.B) { run(b, 0) })
	b.Run("warm", func(b *testing.B) { run(b, 2) })
}
