package serve_test

// Integration tests for the zsimd service layer, driven entirely through the
// HTTP API against live servers on ephemeral ports: job lifecycle,
// determinism versus the library facade, load shedding, per-job watchdogs,
// cancellation in every lifecycle stage, graceful drain, and the audit log.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zsim"
	"zsim/internal/serve"
)

// newTestServer starts a serve.Server behind a real HTTP listener and
// registers cleanup that drains it.
func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Shutdown(100 * time.Millisecond)
		ts.Close()
	})
	return s, ts
}

// quickJob is a job that finishes on its own in well under a second.
func quickJob() *serve.JobRequest {
	return &serve.JobRequest{
		Workloads:   []serve.WorkloadSpec{{Name: "blackscholes", Threads: 2, Blocks: 50}},
		HostThreads: 2,
	}
}

// endlessJob is a job that never finishes on its own: only cancellation or a
// watchdog can stop it.
func endlessJob() *serve.JobRequest {
	return &serve.JobRequest{
		Workloads:   []serve.WorkloadSpec{{Name: "blackscholes", Threads: 2, Blocks: 1 << 30}},
		HostThreads: 2,
	}
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// submit posts a job and requires it to be admitted.
func submit(t *testing.T, ts *httptest.Server, req *serve.JobRequest) serve.JobStatus {
	t.Helper()
	resp := postJSON(t, ts.URL+"/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st serve.JobStatus
	decodeInto(t, resp, &st)
	// A worker may legitimately pick the job up (or even finish it) before
	// the admission response is serialized; only identity is guaranteed.
	if st.ID == "" || st.State == "" {
		t.Fatalf("bad admission status: %+v", st)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st serve.JobStatus
	decodeInto(t, resp, &st)
	return st
}

// waitState polls until the job reaches a state accepted by ok.
func waitState(t *testing.T, ts *httptest.Server, id string, ok func(string) bool) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if ok(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(state string) bool {
	switch state {
	case serve.StateSucceeded, serve.StateFailed, serve.StateCancelled:
		return true
	}
	return false
}

func getResult(t *testing.T, ts *httptest.Server, id string) *serve.JobResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("result %s: HTTP %d", id, resp.StatusCode)
	}
	var res serve.JobResult
	decodeInto(t, resp, &res)
	return &res
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	return postJSON(t, ts.URL+"/jobs/"+id+"/cancel", nil)
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})

	st := submit(t, ts, quickJob())

	// Result before completion may 409 (if we catch it in flight).
	st = waitState(t, ts, st.ID, terminal)
	if st.State != serve.StateSucceeded {
		t.Fatalf("quick job ended %q (error %q)", st.State, st.Error)
	}
	if st.Started.IsZero() || st.Finished.IsZero() {
		t.Fatalf("lifecycle timestamps missing: %+v", st)
	}
	res := getResult(t, ts, st.ID)
	if res.Metrics == nil || res.Metrics.Instrs == 0 || res.Summary == "" {
		t.Fatalf("result incomplete: %+v", res)
	}
	if res.Partial || res.Failure != nil {
		t.Fatalf("clean job should not be partial: %+v", res)
	}

	// Cancel after completion conflicts.
	if resp := cancelJob(t, ts, st.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of finished job: HTTP %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Unknown jobs 404 on every per-job route.
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}

	// Listing returns the job.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []serve.JobStatus
	decodeInto(t, resp, &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("listing wrong: %+v", list)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{not json`},
		{"unknown field", `{"bogus": 1}`},
		{"no workloads", `{"workloads": []}`},
		{"unknown workload", `{"workloads": [{"name": "no-such-benchmark"}]}`},
		{"unknown preset", `{"preset": "cray", "workloads": [{"name": "blackscholes"}]}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", c.name, resp.StatusCode)
		}
	}
}

// TestDeterminismMatchesFacade pins the service's execution path to the
// library's: the same job through zsimd must produce bit-identical simulated
// metrics to a direct facade run (host-time-derived fields excepted). The
// workload stays inside the documented determinism envelope (single thread,
// no shared data — see DESIGN.md "Determinism model"): multi-thread
// data-sharing workloads are path-altering by design and bit-identity is
// not claimed for them.
func TestDeterminismMatchesFacade(t *testing.T) {
	req := &serve.JobRequest{
		Preset:      "small",
		Workloads:   []serve.WorkloadSpec{{Name: "fluidanimate", Threads: 1, Blocks: 300}},
		HostThreads: 2,
		Seed:        7,
	}

	_, ts := newTestServer(t, serve.Options{Workers: 1})
	st := submit(t, ts, req)
	st = waitState(t, ts, st.ID, terminal)
	if st.State != serve.StateSucceeded {
		t.Fatalf("service run ended %q (%s)", st.State, st.Error)
	}
	got := getResult(t, ts, st.ID)

	sim, err := zsim.New(zsim.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	params, _ := zsim.LookupWorkload("fluidanimate")
	params.BlocksPerThread = 300
	sim.AddWorkload("fluidanimate", params, 1)
	sim.SetHostThreads(2)
	sim.SetSeed(7)
	want, err := sim.Run()
	if err != nil {
		t.Fatalf("facade run: %v", err)
	}

	// Host-time-dependent fields cannot match; everything simulated must.
	a, b := *got.Metrics, *want.Metrics
	a.HostNanos, b.HostNanos = 0, 0
	a.SimMIPS, b.SimMIPS = 0, 0
	if a != b {
		t.Fatalf("service metrics diverge from facade:\n service: %+v\n facade:  %+v", a, b)
	}
	if got.Intervals != want.Intervals || got.WeaveEvents != want.WeaveEvents {
		t.Fatalf("interval/event counts diverge: %d/%d vs %d/%d",
			got.Intervals, got.WeaveEvents, want.Intervals, want.WeaveEvents)
	}
}

func TestLoadSheddingQueueFull(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 1})

	// Occupy the single worker...
	running := submit(t, ts, endlessJob())
	waitState(t, ts, running.ID, func(s string) bool { return s == serve.StateRunning })
	// ...fill the queue...
	queued := submit(t, ts, endlessJob())
	// ...and the next submission must be shed, not blocked or dropped silently.
	resp := postJSON(t, ts.URL+"/jobs", quickJob())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload submission: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response missing Retry-After")
	}
	var eb struct {
		Error string `json:"error"`
	}
	decodeInto(t, resp, &eb)
	if eb.Error == "" {
		t.Fatalf("shed response should explain itself")
	}

	// The shed submission must not have registered a job.
	resp2, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []serve.JobStatus
	decodeInto(t, resp2, &list)
	if len(list) != 2 {
		t.Fatalf("shed job leaked into the registry: %+v", list)
	}

	// Clean up: cancel both (running first, so the worker frees up and
	// reaches the queued one), then wait them out.
	for _, id := range []string{running.ID, queued.ID} {
		if resp := cancelJob(t, ts, id); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %s: HTTP %d", id, resp.StatusCode)
		} else {
			resp.Body.Close()
		}
	}
	for _, id := range []string{running.ID, queued.ID} {
		waitState(t, ts, id, terminal)
	}
}

// TestJobWatchdogTimeout proves a runaway job is reaped by the per-job
// deadline with partial metrics, and the daemon keeps serving afterwards.
func TestJobWatchdogTimeout(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, JobTimeout: 50 * time.Millisecond})

	st := submit(t, ts, endlessJob())
	st = waitState(t, ts, st.ID, terminal)
	if st.State != serve.StateFailed {
		t.Fatalf("runaway job ended %q, want failed", st.State)
	}
	res := getResult(t, ts, st.ID)
	if res.Failure == nil || res.Failure.Reason != "deadline-exceeded" {
		t.Fatalf("failure not typed as deadline-exceeded: %+v", res.Failure)
	}
	if !res.Partial || res.Metrics == nil || res.Metrics.Instrs == 0 {
		t.Fatalf("watchdogged job should keep partial metrics: %+v", res)
	}

	// The worker survived; a normal job still succeeds (under the same
	// server-wide deadline, so keep it comfortably fast).
	st2 := submit(t, ts, &serve.JobRequest{
		Workloads:   []serve.WorkloadSpec{{Name: "blackscholes", Threads: 1, Blocks: 5}},
		HostThreads: 1,
	})
	st2 = waitState(t, ts, st2.ID, terminal)
	if st2.State != serve.StateSucceeded {
		t.Fatalf("daemon unhealthy after watchdog: follow-up ended %q (%s)", st2.State, st2.Error)
	}
}

// TestRequestTimeoutTightensDeadline: a request-level budget applies even
// when the server default is unlimited.
func TestRequestTimeoutTightensDeadline(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	req := endlessJob()
	req.TimeoutMillis = 40
	st := submit(t, ts, req)
	st = waitState(t, ts, st.ID, terminal)
	res := getResult(t, ts, st.ID)
	if st.State != serve.StateFailed || res.Failure == nil || res.Failure.Reason != "deadline-exceeded" {
		t.Fatalf("request deadline not honoured: state=%q failure=%+v", st.State, res.Failure)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	st := submit(t, ts, endlessJob())
	waitState(t, ts, st.ID, func(s string) bool { return s == serve.StateRunning })

	if resp := cancelJob(t, ts, st.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	st = waitState(t, ts, st.ID, terminal)
	if st.State != serve.StateCancelled {
		t.Fatalf("cancelled job ended %q", st.State)
	}
	res := getResult(t, ts, st.ID)
	if res.Failure == nil || res.Failure.Reason != "cancelled" {
		t.Fatalf("cancellation not typed: %+v", res.Failure)
	}
	// The cancel may land before the first interval completes, so the
	// partial may legitimately be empty — but it must always be present.
	if !res.Partial || res.Metrics == nil {
		t.Fatalf("cancelled job should keep partial metrics: %+v", res)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 2})
	blocker := submit(t, ts, endlessJob())
	waitState(t, ts, blocker.ID, func(s string) bool { return s == serve.StateRunning })
	victim := submit(t, ts, quickJob())

	if resp := cancelJob(t, ts, victim.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: HTTP %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// Unblock the worker so it reaches the victim.
	resp := cancelJob(t, ts, blocker.ID)
	resp.Body.Close()

	st := waitState(t, ts, victim.ID, terminal)
	if st.State != serve.StateCancelled {
		t.Fatalf("queued victim ended %q", st.State)
	}
	if !st.Started.IsZero() {
		t.Fatalf("cancelled-while-queued job should never start: %+v", st)
	}
	waitState(t, ts, blocker.ID, terminal)
}

// TestGracefulShutdownCancelsAfterGrace: Shutdown lets jobs drain for the
// grace period, then cooperatively cancels stragglers, which finish as
// cancelled with partial metrics — nothing is lost or leaked.
func TestGracefulShutdownCancelsAfterGrace(t *testing.T) {
	var audit bytes.Buffer
	s := serve.New(serve.Options{Workers: 1, Audit: &audit})
	ts := httptest.NewServer(s)
	defer ts.Close()

	st := submit(t, ts, endlessJob())
	waitState(t, ts, st.ID, func(state string) bool { return state == serve.StateRunning })

	done := make(chan struct{})
	go func() {
		s.Shutdown(30 * time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Shutdown hung")
	}

	// Post-drain: not ready, shedding, and the straggler ended cancelled.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: HTTP %d, want 503", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/jobs", quickJob())
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission after drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("drain shed missing Retry-After")
	}

	final := getStatus(t, ts, st.ID)
	if final.State != serve.StateCancelled {
		t.Fatalf("straggler ended %q, want cancelled", final.State)
	}
	res := getResult(t, ts, st.ID)
	if !res.Partial || res.Metrics == nil {
		t.Fatalf("straggler lost its partial metrics: %+v", res)
	}

	// The audit log tells the whole story, in order, flushed and complete.
	events := auditEvents(t, &audit)
	for _, want := range []string{"serve", "submit", "start", "cancel", "finish", "shutdown", "drained"} {
		if !events[want] {
			t.Fatalf("audit log missing %q event; got %v", want, events)
		}
	}
}

func TestHealthAndReady(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
	}
}

// TestConcurrentSubmitAndCancel hammers the API from many goroutines — the
// race detector (CI runs this package with -race) is the real assertion.
func TestConcurrentSubmitAndCancel(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, QueueDepth: 32})

	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := quickJob()
			req.Seed = uint64(i + 1)
			resp := postJSON(t, ts.URL+"/jobs", req)
			if resp.StatusCode == http.StatusAccepted {
				var st serve.JobStatus
				decodeInto(t, resp, &st)
				mu.Lock()
				ids = append(ids, st.ID)
				mu.Unlock()
				if i%2 == 0 { // cancel half of them, wherever they are
					c := postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", nil)
					c.Body.Close()
				}
			} else {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	for _, id := range ids {
		st := waitState(t, ts, id, terminal)
		if st.State == serve.StateFailed {
			t.Fatalf("job %s failed under concurrency: %s", id, st.Error)
		}
	}
}

// auditEvents parses a JSONL audit stream into the set of event names seen.
func auditEvents(t *testing.T, buf *bytes.Buffer) map[string]bool {
	t.Helper()
	events := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var rec struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad audit line %q: %v", sc.Text(), err)
		}
		if rec.Event == "" {
			t.Fatalf("audit line without event: %s", sc.Text())
		}
		events[rec.Event] = true
	}
	return events
}
