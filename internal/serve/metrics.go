package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"zsim/internal/telemetry"
)

// metrics is zsimd's scrape registry. Service-level counters (jobs, sheds,
// cancels, latency histograms) are updated at job-lifecycle edges under one
// mutex — never on the simulation hot path. Engine-level counters aggregate
// the per-job telemetry probes: each running job's probe is registered here,
// and when the job finishes its final snapshot is folded into the completed
// totals *before* the simulator (whose probe the next job will rewind) can
// return to the warm pool — under the same mutex a scrape sums them with, so
// the exported zsim_engine_* series are monotone for the daemon's lifetime.
type metrics struct {
	start time.Time

	mu         sync.Mutex
	sheds      map[string]uint64 // shed reason -> count
	cancels    uint64
	jobsTotal  map[string]uint64 // terminal state -> count
	reused     uint64
	results    uint64 // rows filed into the result store
	latency    map[latencyKey]*telemetry.Histogram
	running    map[*telemetry.Probe]struct{}
	completed  telemetry.Totals
	inflight   int
	maxVariant int // cap on distinct latency series, guarding label cardinality
	// ewmaLatency tracks recent job service latency (seconds; 0 until the
	// first job finishes) and feeds the queue-state-derived Retry-After.
	ewmaLatency float64
}

// latencyKey labels one job-latency histogram: terminal outcome plus the
// configuration shape (hex of zsim.Config.ShapeKey; "none" when the job never
// built a config).
type latencyKey struct {
	outcome string
	shape   string
}

func newMetrics() *metrics {
	return &metrics{
		start:      time.Now(),
		sheds:      make(map[string]uint64),
		jobsTotal:  make(map[string]uint64),
		latency:    make(map[latencyKey]*telemetry.Histogram),
		running:    make(map[*telemetry.Probe]struct{}),
		maxVariant: 64,
	}
}

// shapeLabel renders a shape key for the shape label (0 = no config built).
func shapeLabel(key uint64) string {
	if key == 0 {
		return "none"
	}
	return fmt.Sprintf("%016x", key)
}

func (m *metrics) shed(reason string) {
	m.mu.Lock()
	m.sheds[reason]++
	m.mu.Unlock()
}

func (m *metrics) cancelRequested() {
	m.mu.Lock()
	m.cancels++
	m.mu.Unlock()
}

// jobStarted bumps the in-flight gauge when a worker picks a job up.
func (m *metrics) jobStarted() {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
}

// attachProbe registers a running job's probe in the live engine aggregate.
func (m *metrics) attachProbe(p *telemetry.Probe) {
	if p == nil {
		return
	}
	m.mu.Lock()
	m.running[p] = struct{}{}
	m.mu.Unlock()
}

// detachProbe folds the job's final engine snapshot into the completed totals,
// removing its probe from the live set in the same critical section. The
// caller must invoke this BEFORE returning the simulator to the warm pool:
// once pooled, the next job rewinds the probe, and a scrape between pool-put
// and fold would see the engine counters dip below a previous scrape.
func (m *metrics) detachProbe(p *telemetry.Probe, final telemetry.Snapshot) {
	if p == nil {
		return
	}
	m.mu.Lock()
	delete(m.running, p)
	m.completed.Add(final)
	m.mu.Unlock()
}

// jobDone records a job's terminal state and latency and drops the in-flight
// gauge.
func (m *metrics) jobDone(state, shape string, dur time.Duration, wasReused bool) {
	key := latencyKey{outcome: state, shape: shape}
	m.mu.Lock()
	m.inflight--
	m.jobsTotal[state]++
	if wasReused {
		m.reused++
	}
	if sec := dur.Seconds(); m.ewmaLatency == 0 {
		m.ewmaLatency = sec
	} else {
		m.ewmaLatency = 0.8*m.ewmaLatency + 0.2*sec
	}
	h := m.latency[key]
	if h == nil {
		if len(m.latency) >= m.maxVariant {
			// Cardinality guard: overflow series collapse into one bucket set.
			key = latencyKey{outcome: state, shape: "other"}
			h = m.latency[key]
		}
		if h == nil {
			h = telemetry.NewHistogram(nil)
			m.latency[key] = h
		}
	}
	m.mu.Unlock()
	h.Observe(dur.Seconds())
}

// avgLatencySeconds reports the latency EWMA (0 until a job has finished).
func (m *metrics) avgLatencySeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewmaLatency
}

// resultFiled counts one row filed into the result store.
func (m *metrics) resultFiled() {
	m.mu.Lock()
	m.results++
	m.mu.Unlock()
}

// engineAggregate sums completed totals with every live probe's current
// snapshot. phaseCounts reports running jobs per published phase.
func (m *metrics) engineAggregate() (agg telemetry.Totals, phaseCounts map[string]int) {
	phaseCounts = map[string]int{"bound": 0, "weave": 0, "idle": 0, "done": 0}
	m.mu.Lock()
	defer m.mu.Unlock()
	agg = m.completed
	for p := range m.running {
		s := p.Snapshot()
		agg.Add(s)
		phaseCounts[s.Phase]++
	}
	return agg, phaseCounts
}

// handleMetrics serves GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics

	// Snapshot everything up front so the exposition is internally coherent.
	agg, phases := m.engineAggregate()
	m.mu.Lock()
	uptime := time.Since(m.start).Seconds()
	inflight := m.inflight
	cancels := m.cancels
	reused := m.reused
	results := m.results
	sheds := make(map[string]uint64, len(m.sheds))
	for k, v := range m.sheds {
		sheds[k] = v
	}
	jobs := make(map[string]uint64, len(m.jobsTotal))
	for k, v := range m.jobsTotal {
		jobs[k] = v
	}
	lat := make(map[latencyKey]*telemetry.Histogram, len(m.latency))
	for k, v := range m.latency {
		lat[k] = v
	}
	m.mu.Unlock()
	ps := s.pool.stats()
	arenaBytes := s.pool.arenaBytes()
	classDepths := s.sched.classDepths()
	storeRows, storeEvicted := s.store.stats()
	s.mu.Lock()
	jobsEvicted := s.evicted
	camps := make([]*campaignState, 0, len(s.campOrder))
	for _, id := range s.campOrder {
		camps = append(camps, s.campaigns[id])
	}
	s.mu.Unlock()
	campStates := map[string]int{"running": 0, "done": 0, "cancelled": 0}
	var campPointsDone uint64
	for _, c := range camps {
		c.mu.Lock()
		campStates[c.stateName()]++
		campPointsDone += uint64(c.done)
		c.mu.Unlock()
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := telemetry.NewPromWriter(w)

	// Service-level metrics.
	pw.Family("zsimd_uptime_seconds", "gauge", "Seconds since the server started.")
	pw.Sample("zsimd_uptime_seconds", nil, uptime)
	pw.Family("zsimd_queue_depth", "gauge", "Jobs waiting in the admission queue.")
	pw.UintSample("zsimd_queue_depth", nil, uint64(classDepths[classHigh]+classDepths[classNormal]+classDepths[classLow]))
	pw.Family("zsimd_queue_capacity", "gauge", "Admission queue capacity.")
	pw.UintSample("zsimd_queue_capacity", nil, uint64(s.opts.QueueDepth))
	pw.Family("zsimd_queue_class_depth", "gauge", "Jobs waiting in the admission queue, by priority class.")
	for class, name := range classNames {
		pw.UintSample("zsimd_queue_class_depth", []telemetry.Label{{Name: "class", Value: name}}, uint64(classDepths[class]))
	}
	pw.Family("zsimd_workers", "gauge", "Configured simulation workers.")
	pw.UintSample("zsimd_workers", nil, uint64(s.opts.Workers))
	pw.Family("zsimd_jobs_inflight", "gauge", "Jobs currently executing on workers.")
	pw.UintSample("zsimd_jobs_inflight", nil, uint64(inflight))
	pw.Family("zsimd_jobs_total", "counter", "Finished jobs by terminal state.")
	for _, st := range sortedKeys(jobs) {
		pw.UintSample("zsimd_jobs_total", []telemetry.Label{{Name: "outcome", Value: st}}, jobs[st])
	}
	pw.Family("zsimd_jobs_reused_total", "counter", "Finished jobs served by a warm pooled simulator.")
	pw.UintSample("zsimd_jobs_reused_total", nil, reused)
	pw.Family("zsimd_sheds_total", "counter", "Submissions shed, by reason.")
	for _, reason := range sortedKeys(sheds) {
		pw.UintSample("zsimd_sheds_total", []telemetry.Label{{Name: "reason", Value: reason}}, sheds[reason])
	}
	pw.Family("zsimd_cancels_total", "counter", "Accepted cancellation requests.")
	pw.UintSample("zsimd_cancels_total", nil, cancels)
	pw.Family("zsimd_jobs_evicted_total", "counter", "Terminal jobs evicted from retention (archived in store/audit).")
	pw.UintSample("zsimd_jobs_evicted_total", nil, jobsEvicted)

	// Campaign and result-store metrics.
	pw.Family("zsimd_campaigns", "gauge", "Campaigns by lifecycle state.")
	for _, st := range []string{"cancelled", "done", "running"} {
		pw.UintSample("zsimd_campaigns", []telemetry.Label{{Name: "state", Value: st}}, uint64(campStates[st]))
	}
	pw.Family("zsimd_campaign_points_done_total", "counter", "Campaign points finished across all campaigns.")
	pw.UintSample("zsimd_campaign_points_done_total", nil, campPointsDone)
	pw.Family("zsimd_results_total", "counter", "Result rows filed into the store.")
	pw.UintSample("zsimd_results_total", nil, results)
	pw.Family("zsimd_store_rows", "gauge", "Result rows currently retained in the store ring.")
	pw.UintSample("zsimd_store_rows", nil, uint64(storeRows))
	pw.Family("zsimd_store_evictions_total", "counter", "Result rows evicted from the store ring (audit log keeps them).")
	pw.UintSample("zsimd_store_evictions_total", nil, storeEvicted)

	pw.Family("zsimd_job_latency_seconds", "histogram", "Job wall time from start to finish, by outcome and config shape.")
	keys := make([]latencyKey, 0, len(lat))
	for k := range lat {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].outcome != keys[b].outcome {
			return keys[a].outcome < keys[b].outcome
		}
		return keys[a].shape < keys[b].shape
	})
	for _, k := range keys {
		lat[k].Write(pw, "zsimd_job_latency_seconds", []telemetry.Label{
			{Name: "outcome", Value: k.outcome}, {Name: "shape", Value: k.shape},
		})
	}

	// Warm-pool metrics.
	pw.Family("zsimd_pool_occupancy", "gauge", "Warm simulators currently retained in the pool.")
	pw.UintSample("zsimd_pool_occupancy", nil, uint64(ps.Occupancy))
	pw.Family("zsimd_pool_shapes", "gauge", "Distinct configuration shapes retained.")
	pw.UintSample("zsimd_pool_shapes", nil, uint64(ps.Shapes))
	pw.Family("zsimd_pool_hits_total", "counter", "Warm-pool checkout hits.")
	pw.UintSample("zsimd_pool_hits_total", nil, ps.Hits)
	pw.Family("zsimd_pool_misses_total", "counter", "Warm-pool checkout misses.")
	pw.UintSample("zsimd_pool_misses_total", nil, ps.Misses)
	pw.Family("zsimd_pool_returns_total", "counter", "Simulators returned to the pool.")
	pw.UintSample("zsimd_pool_returns_total", nil, ps.Returns)
	pw.Family("zsimd_pool_discards_total", "counter", "Simulators discarded instead of pooled.")
	pw.UintSample("zsimd_pool_discards_total", nil, ps.Discards)
	pw.Family("zsimd_pool_prewarmed_total", "counter", "Simulators parked by startup prewarming.")
	pw.UintSample("zsimd_pool_prewarmed_total", nil, ps.Prewarmed)
	pw.Family("zsimd_pool_expiries_total", "counter", "Pooled simulators released by idle expiry.")
	pw.UintSample("zsimd_pool_expiries_total", nil, ps.Expiries)
	pw.Family("zsimd_pool_hit_rate", "gauge", "Warm-pool hit rate over all checkouts.")
	pw.Sample("zsimd_pool_hit_rate", nil, ps.HitRate)
	pw.Family("zsimd_pool_arena_bytes", "gauge", "Arena bytes held by retained warm simulators.")
	pw.UintSample("zsimd_pool_arena_bytes", nil, arenaBytes)

	// Engine-phase metrics, aggregated over completed jobs plus live probes.
	pw.Family("zsim_engine_running_jobs", "gauge", "Running jobs by current engine phase.")
	for _, ph := range []string{"bound", "weave", "idle", "done"} {
		pw.UintSample("zsim_engine_running_jobs", []telemetry.Label{{Name: "phase", Value: ph}}, uint64(phases[ph]))
	}
	engCounter := func(name, help string, v uint64) {
		pw.Family(name, "counter", help)
		pw.UintSample(name, nil, v)
	}
	engCounter("zsim_engine_intervals_total", "Bound-weave intervals completed across all jobs.", agg.Intervals)
	engCounter("zsim_engine_bound_rounds_total", "Bound-phase rounds executed across all jobs.", agg.BoundRounds)
	engCounter("zsim_engine_cycles_total", "Simulated cycles advanced across all jobs.", agg.Cycles)
	engCounter("zsim_engine_instructions_total", "Simulated instructions across all jobs.", agg.Instrs)
	engCounter("zsim_engine_weave_events_total", "Weave events dispatched across all jobs.", agg.WeaveEvents)
	engCounter("zsim_engine_horizon_parks_total", "Weave domain-worker parks on committed horizons.", agg.HorizonParks)
	engCounter("zsim_engine_domain_wakes_total", "Wakeups delivered to parked weave domains.", agg.DomainWakes)
	engCounter("zsim_engine_cross_handoffs_total", "Inter-domain event handoffs in the weave phase.", agg.CrossHandoffs)
	engCounter("zsim_engine_pool_runs_total", "Worker-pool phase launches.", agg.PoolRuns)
	engCounter("zsim_engine_pool_wakes_total", "Worker wakeups delivered by pool launches.", agg.PoolWakes)
	engSeconds := func(name, help string, nanos int64) {
		pw.Family(name, "counter", help)
		pw.Sample(name, nil, float64(nanos)/1e9)
	}
	engSeconds("zsim_engine_bound_seconds_total", "Host wall time spent in the bound phase.", agg.BoundNanos)
	engSeconds("zsim_engine_weave_seconds_total", "Host wall time spent in the weave phase.", agg.WeaveNanos)
	engSeconds("zsim_engine_stall_seconds_total", "Host wall time weave domains spent parked on horizons.", agg.StallNanos)

	if err := pw.Err(); err != nil {
		// The response is already streaming; nothing to do but drop it.
		_ = err
	}
}

// sortedKeys returns the map's keys sorted, for deterministic exposition.
func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// uptimeString renders the server's uptime for /healthz.
func (m *metrics) uptimeString() string {
	return time.Since(m.start).Round(time.Millisecond).String()
}

// inflightCount returns the in-flight gauge.
func (m *metrics) inflightCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inflight
}
