package serve

import (
	"sync"
	"time"

	"zsim"
)

// simPool is the server's shape-keyed warm-simulator pool. Simulators whose
// configurations hash to the same shape key (zsim.Config.ShapeKey: identical
// construction shape, run-variable knobs free to differ) are interchangeable
// after a Reset, so a worker picking up a job first tries to check out a warm
// simulator of the job's shape and only constructs on a miss. Clean jobs
// return their simulator; panicked jobs discard it (a panicked simulator
// cannot be rewound).
//
// The pool bounds both the total number of retained simulators (size) and
// the number per shape (perShape), so a burst of one-off shapes cannot pin
// unbounded memory. get and put are O(1) under one mutex; the simulators
// themselves are only ever used by the single worker that checked them out.
//
// Entries remember when they were parked; the server's janitor calls
// expireIdle so shapes that stopped arriving release their arena memory
// instead of pinning it for the daemon's lifetime. Prewarming (parking
// freshly built simulators before any job arrives) uses the same slots but
// its own counter, so /healthz can account for every entry:
// occupancy == returns + prewarmed − hits − expiries.
type simPool struct {
	mu       sync.Mutex
	size     int // total retained simulators across shapes
	perShape int // retained simulators per shape key
	shapes   map[uint64][]poolEntry
	total    int
	closed   bool

	hits      uint64
	misses    uint64
	returns   uint64
	discards  uint64
	prewarmed uint64
	expiries  uint64
}

// poolEntry is one parked simulator and the time it was parked.
type poolEntry struct {
	sim  *zsim.Simulator
	last time.Time
}

// poolStats is the wire form of the pool's occupancy and effectiveness
// counters, reported by /healthz.
type poolStats struct {
	Enabled   bool    `json:"enabled"`
	Size      int     `json:"size"`
	PerShape  int     `json:"perShape"`
	Occupancy int     `json:"occupancy"`
	Shapes    int     `json:"shapes"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Returns   uint64  `json:"returns"`
	Discards  uint64  `json:"discards"`
	Prewarmed uint64  `json:"prewarmed"`
	Expiries  uint64  `json:"expiries"`
	HitRate   float64 `json:"hitRate"`
}

// newSimPool creates a pool retaining up to size simulators, at most perShape
// per shape key. size <= 0 disables pooling (newSimPool returns nil, and the
// nil receiver methods behave as a permanently empty pool).
func newSimPool(size, perShape int) *simPool {
	if size <= 0 {
		return nil
	}
	if perShape <= 0 {
		perShape = 2
	}
	if perShape > size {
		perShape = size
	}
	return &simPool{
		size:     size,
		perShape: perShape,
		shapes:   make(map[uint64][]poolEntry),
	}
}

// get checks out a warm simulator for the given shape key, or nil on a miss.
// The caller owns the returned simulator until it puts it back or Closes it.
func (p *simPool) get(key uint64) *zsim.Simulator {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	entries := p.shapes[key]
	if len(entries) == 0 {
		p.misses++
		return nil
	}
	sim := entries[len(entries)-1].sim
	entries[len(entries)-1] = poolEntry{}
	if len(entries) == 1 {
		delete(p.shapes, key)
	} else {
		p.shapes[key] = entries[:len(entries)-1]
	}
	p.total--
	p.hits++
	return sim
}

// put returns a simulator to the pool under its shape key. It reports whether
// the pool retained it; on false (pool full, per-shape cap reached, or pool
// closed) the caller must Close the simulator.
func (p *simPool) put(key uint64, sim *zsim.Simulator) bool {
	return p.park(key, sim, false)
}

// prewarm parks a freshly built simulator before any job ever requested its
// shape, counted separately from job returns.
func (p *simPool) prewarm(key uint64, sim *zsim.Simulator) bool {
	return p.park(key, sim, true)
}

func (p *simPool) park(key uint64, sim *zsim.Simulator, warmup bool) bool {
	if p == nil || sim == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.total >= p.size || len(p.shapes[key]) >= p.perShape {
		p.discards++
		return false
	}
	p.shapes[key] = append(p.shapes[key], poolEntry{sim: sim, last: time.Now()})
	p.total++
	if warmup {
		p.prewarmed++
	} else {
		p.returns++
	}
	return true
}

// expireIdle closes every entry parked before the cutoff and reports how many
// it released. Simulator Close (which tears down worker pools and arenas)
// runs outside the pool lock.
func (p *simPool) expireIdle(cutoff time.Time) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	var victims []*zsim.Simulator
	for key, entries := range p.shapes {
		kept := entries[:0]
		for _, e := range entries {
			if e.last.Before(cutoff) {
				victims = append(victims, e.sim)
			} else {
				kept = append(kept, e)
			}
		}
		for i := len(kept); i < len(entries); i++ {
			entries[i] = poolEntry{}
		}
		if len(kept) == 0 {
			delete(p.shapes, key)
		} else {
			p.shapes[key] = kept
		}
	}
	p.total -= len(victims)
	p.expiries += uint64(len(victims))
	p.mu.Unlock()
	for _, sim := range victims {
		sim.Close()
	}
	return len(victims)
}

// stats snapshots the pool counters. Safe on a nil (disabled) pool.
func (p *simPool) stats() poolStats {
	if p == nil {
		return poolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := poolStats{
		Enabled:   true,
		Size:      p.size,
		PerShape:  p.perShape,
		Occupancy: p.total,
		Shapes:    len(p.shapes),
		Hits:      p.hits,
		Misses:    p.misses,
		Returns:   p.returns,
		Discards:  p.discards,
		Prewarmed: p.prewarmed,
		Expiries:  p.expiries,
	}
	if lookups := p.hits + p.misses; lookups > 0 {
		st.HitRate = float64(p.hits) / float64(lookups)
	}
	return st
}

// arenaBytes sums the arena footprint of every retained simulator (retained
// means idle: no worker touches a pooled simulator, so reading its arena
// stats under the pool mutex is safe). Zero on a nil (disabled) pool.
func (p *simPool) arenaBytes() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, entries := range p.shapes {
		for _, e := range entries {
			_, b := e.sim.ArenaStats()
			total += b
		}
	}
	return total
}

// close releases every retained simulator's persistent resources (worker
// pools, weave engines) and marks the pool closed; later puts are refused so
// in-flight jobs finishing after shutdown close their simulators themselves.
func (p *simPool) close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	shapes := p.shapes
	p.shapes = make(map[uint64][]poolEntry)
	p.total = 0
	p.closed = true
	p.mu.Unlock()
	for _, entries := range shapes {
		for _, e := range entries {
			e.sim.Close()
		}
	}
}
