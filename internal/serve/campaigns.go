package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"zsim/internal/campaign"
)

// CampaignRequest is the POST /campaigns payload: a base job (system +
// workloads + run knobs) and the axes to sweep. The expansion (base × axes) is
// deterministic — see internal/campaign — and is accepted or rejected
// atomically before any child runs.
type CampaignRequest struct {
	// Name labels the campaign in listings and the audit log.
	Name string `json:"name,omitempty"`
	// Base is the job every point starts from; axis values override its
	// config (and, for the workloads/seed axes, its workloads and seed).
	Base JobRequest `json:"base"`
	// Axes select the sweep (cartesian axes or an explicit point list).
	Axes campaign.Axes `json:"axes"`
	// Priority is the admission class of the campaign's children: "low"
	// (default — sweeps yield to interactive jobs), "normal" or "high".
	Priority string `json:"priority,omitempty"`
	// Quota bounds the campaign's outstanding (queued + running) children.
	// Default 2×workers (min 2): enough to keep workers fed without letting
	// one sweep monopolize the queue.
	Quota int `json:"quota,omitempty"`
}

// CampaignStatus is the wire form of a campaign's progress. Summary and
// Children are populated only on GET /campaigns/{id}.
type CampaignStatus struct {
	ID          string    `json:"id"`
	Name        string    `json:"name,omitempty"`
	Priority    string    `json:"priority"`
	Quota       int       `json:"quota"`
	State       string    `json:"state"` // running | done | cancelled
	Points      int       `json:"points"`
	Shapes      int       `json:"shapes"` // distinct config shapes across points
	Released    int       `json:"released"`
	Outstanding int       `json:"outstanding"`
	Done        int       `json:"done"`
	Created     time.Time `json:"created"`
	Finished    time.Time `json:"finished,omitzero"`
	// Summary carries the live aggregates: outcome counts, latency
	// percentiles, per-axis scaling curves.
	Summary *campaign.Summary `json:"summary,omitempty"`
	// Children lists the child job IDs released so far, in point order.
	Children []string `json:"children,omitempty"`
}

// campaignState is the server-side record of one campaign. The points slice
// and expansion metadata are immutable after creation; progress fields are
// guarded by mu. Child release order is serialized by the server's pump lock,
// so next/outstanding advance without release/release races.
type campaignState struct {
	id         string
	name       string
	class      int
	quota      int
	base       *JobRequest
	points     []campaign.Point
	shapes     int
	valueOrder map[string][]string

	mu          sync.Mutex
	next        int // next point index to release
	outstanding int
	done        int
	cancelled   bool
	finished    time.Time
	created     time.Time
	agg         *campaign.Agg
	children    []string
}

// stateName derives the campaign's lifecycle state; callers hold c.mu.
func (c *campaignState) stateName() string {
	if c.cancelled {
		if c.outstanding == 0 {
			return "cancelled"
		}
		return "running"
	}
	if c.done == len(c.points) {
		return "done"
	}
	return "running"
}

// statusLocked snapshots the campaign; callers hold c.mu.
func (c *campaignState) statusLocked(detail bool) CampaignStatus {
	st := CampaignStatus{
		ID:          c.id,
		Name:        c.name,
		Priority:    classNames[c.class],
		Quota:       c.quota,
		State:       c.stateName(),
		Points:      len(c.points),
		Shapes:      c.shapes,
		Released:    c.next,
		Outstanding: c.outstanding,
		Done:        c.done,
		Created:     c.created,
		Finished:    c.finished,
	}
	if detail {
		summary := c.agg.Snapshot(c.valueOrder)
		st.Summary = &summary
		st.Children = append([]string(nil), c.children...)
	}
	return st
}

func (c *campaignState) status(detail bool) CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(detail)
}

// childRequest builds the point's job request from the campaign base.
func (c *campaignState) childRequest(p *campaign.Point) *JobRequest {
	req := *c.base
	req.Preset, req.Tiles, req.CoreModel = "", 0, ""
	req.Config = p.Config
	if p.Seed != 0 {
		req.Seed = p.Seed
	}
	if p.Workloads != nil {
		specs := make([]WorkloadSpec, len(p.Workloads))
		for i, w := range p.Workloads {
			specs[i] = WorkloadSpec{Name: w.Name, Threads: w.Threads, Blocks: w.Blocks}
		}
		req.Workloads = specs
	}
	req.Priority = classNames[c.class]
	return &req
}

// handleCampaignSubmit admits a campaign: the whole expansion is validated up
// front (every point's config), the campaign is registered, and its first
// children are released subject to quota and class limits. The campaign
// itself is never shed once its expansion is accepted — only its children
// wait; submission is refused only while draining or when the expansion is
// invalid or oversized.
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return
	}
	if err := req.Base.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "base: " + err.Error()})
		return
	}
	pri := req.Priority
	if pri == "" {
		pri = "low"
	}
	class, err := parsePriority(pri)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	baseCfg, err := req.Base.buildConfig()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "base: " + err.Error()})
		return
	}
	points, err := campaign.Expand(baseCfg, req.Axes, s.opts.MaxCampaignPoints)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if len(points) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "campaign expands to zero points"})
		return
	}
	quota := req.Quota
	if quota <= 0 {
		quota = max(2, 2*s.opts.Workers)
	}
	shapes := make(map[uint64]struct{}, 4)
	for i := range points {
		shapes[points[i].Shape] = struct{}{}
	}
	base := req.Base // copy; the campaign owns it beyond this request
	c := &campaignState{
		name:       req.Name,
		class:      class,
		quota:      quota,
		base:       &base,
		points:     points,
		shapes:     len(shapes),
		valueOrder: campaign.ValueOrder(points),
		agg:        campaign.NewAgg(),
		created:    time.Now().UTC(),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.shedResponse(w, "draining", "", "shutting down")
		return
	}
	s.campSeq++
	c.id = fmt.Sprintf("campaign-%d", s.campSeq)
	s.campaigns[c.id] = c
	s.campOrder = append(s.campOrder, c.id)
	s.mu.Unlock()

	s.audit.record("campaign", c.id, "running",
		fmt.Sprintf("name=%s points=%d shapes=%d priority=%s quota=%d", c.name, len(points), c.shapes, classNames[class], quota))
	s.pumpCampaigns()
	writeJSON(w, http.StatusAccepted, c.status(false))
}

func (s *Server) lookupCampaign(r *http.Request) (*campaignState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[r.PathValue("id")]
	return c, ok
}

func (s *Server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	camps := make([]*campaignState, 0, len(s.campOrder))
	for _, id := range s.campOrder {
		camps = append(camps, s.campaigns[id])
	}
	s.mu.Unlock()
	out := make([]CampaignStatus, 0, len(camps))
	for _, c := range camps {
		out = append(out, c.status(false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookupCampaign(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such campaign"})
		return
	}
	writeJSON(w, http.StatusOK, c.status(true))
}

// handleCampaignCancel stops releasing new children and cancels the
// outstanding ones; already-finished children keep their results.
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookupCampaign(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such campaign"})
		return
	}
	c.mu.Lock()
	already := c.cancelled || c.done == len(c.points)
	if !already {
		c.cancelled = true
		if c.outstanding == 0 && c.finished.IsZero() {
			c.finished = time.Now().UTC()
		}
	}
	children := append([]string(nil), c.children...)
	c.mu.Unlock()
	if already {
		writeJSON(w, http.StatusConflict, errorBody{Error: "campaign already finished"})
		return
	}
	// Cancel outstanding children; terminal ones refuse the cancel harmlessly.
	for _, id := range children {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j != nil && j.requestCancel() {
			s.metrics.cancelRequested()
			s.audit.record("cancel", j.id, "", "campaign cancelled")
		}
	}
	s.audit.record("campaign", c.id, "cancelled", "cancel requested")
	writeJSON(w, http.StatusAccepted, c.status(false))
}

// pumpCampaigns releases children for every campaign that has quota headroom,
// round-robin across campaigns until no campaign can make progress. pumpMu
// serializes pumps (submission, every job completion), so release order — and
// therefore child job numbering — is deterministic given a completion order.
// Lock order: pumpMu > s.mu > c.mu, never the reverse.
func (s *Server) pumpCampaigns() {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return
		}
		camps := make([]*campaignState, 0, len(s.campOrder))
		for _, id := range s.campOrder {
			camps = append(camps, s.campaigns[id])
		}
		s.mu.Unlock()
		progress := false
		for _, c := range camps {
			if s.releaseNextChild(c) {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// releaseNextChild admits the campaign's next point as a child job if quota
// and class limits allow. Only the pump calls this (under pumpMu).
func (s *Server) releaseNextChild(c *campaignState) bool {
	c.mu.Lock()
	if c.cancelled || c.next >= len(c.points) || c.outstanding >= c.quota {
		c.mu.Unlock()
		return false
	}
	p := &c.points[c.next]
	c.mu.Unlock()

	req := c.childRequest(p)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		req:       req,
		state:     StateQueued,
		submitted: time.Now().UTC(),
		class:     c.class,
		camp:      c,
		point:     p.Index,
	}
	if !s.sched.enqueue(j, c.class) {
		// Class limit reached: the point stays unreleased (and the burned job
		// ID keeps numbering attributable); the next completion re-pumps.
		s.mu.Unlock()
		return false
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	c.mu.Lock()
	c.next++
	c.outstanding++
	c.children = append(c.children, j.id)
	c.mu.Unlock()
	s.audit.record("submit", j.id, StateQueued, fmt.Sprintf("campaign=%s point=%d", c.id, p.Index))
	return true
}

// campaignChildDone folds a finished child into its campaign: aggregates,
// quota release, and the campaign-finish audit edge.
func (s *Server) campaignChildDone(j *job, state string, result *JobResult, dur time.Duration) {
	c := j.camp
	p := &c.points[j.point]
	pr := campaign.PointResult{Outcome: state, Seconds: dur.Seconds()}
	if result != nil && result.Metrics != nil && state == StateSucceeded {
		pr.Cycles = result.Metrics.Cycles
		pr.Instructions = result.Metrics.Instrs
		pr.SimMIPS = result.Metrics.SimMIPS
	}
	c.mu.Lock()
	c.outstanding--
	c.done++
	c.agg.Add(p, pr)
	finishedNow := c.finished.IsZero() &&
		((c.cancelled && c.outstanding == 0) || c.done == len(c.points))
	var finalState string
	if finishedNow {
		c.finished = time.Now().UTC()
		finalState = c.stateName()
	}
	doneCount := c.done
	c.mu.Unlock()
	if finishedNow {
		s.audit.record("campaign", c.id, finalState, fmt.Sprintf("done=%d points=%d", doneCount, len(c.points)))
	}
}

// drainCampaigns persists every campaign's terminal snapshot to the audit log
// during shutdown, so a drained daemon leaves a replayable account of sweep
// progress (done/outstanding/pending per campaign plus the aggregate summary).
func (s *Server) drainCampaigns() {
	s.mu.Lock()
	camps := make([]*campaignState, 0, len(s.campOrder))
	for _, id := range s.campOrder {
		camps = append(camps, s.campaigns[id])
	}
	s.mu.Unlock()
	for _, c := range camps {
		c.mu.Lock()
		st := c.statusLocked(true)
		c.mu.Unlock()
		detail, err := json.Marshal(st)
		if err != nil {
			detail = []byte(`{}`)
		}
		s.audit.record("campaign-drain", c.id, st.State, string(detail))
	}
}
