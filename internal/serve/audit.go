package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// auditRecord is one line of the append-only JSONL audit log. Every job
// transition and every shed/shutdown decision is recorded, so a crash or
// drain leaves a replayable account of what the daemon accepted and what
// happened to it.
type auditRecord struct {
	Time   time.Time `json:"time"`
	Event  string    `json:"event"`
	Job    string    `json:"job,omitempty"`
	State  string    `json:"state,omitempty"`
	Detail string    `json:"detail,omitempty"`
	// Result carries the compact result row on "result" events; the audit
	// stream is the result store's durable archive.
	Result *ResultRow `json:"result,omitempty"`
}

// auditLog serializes records to an underlying writer. A nil *auditLog (or
// one built over a nil writer) is a no-op, so call sites never need to guard.
type auditLog struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc *json.Encoder
	dst io.Writer
}

// syncer is the subset of *os.File the audit log uses to make records
// durable on Close.
type syncer interface{ Sync() error }

func newAuditLog(w io.Writer) *auditLog {
	if w == nil {
		return nil
	}
	buf := bufio.NewWriter(w)
	return &auditLog{buf: buf, enc: json.NewEncoder(buf), dst: w}
}

// record appends one event. Encoding errors are swallowed: the audit log is
// an observer and must never fail a job.
func (a *auditLog) record(event, jobID, state, detail string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	_ = a.enc.Encode(auditRecord{
		Time:   time.Now().UTC(),
		Event:  event,
		Job:    jobID,
		State:  state,
		Detail: detail,
	})
}

// recordResult archives one result-store row. Like record, it never fails.
func (a *auditLog) recordResult(row *ResultRow) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	_ = a.enc.Encode(auditRecord{
		Time:   time.Now().UTC(),
		Event:  "result",
		Job:    row.Job,
		State:  row.Outcome,
		Result: row,
	})
}

// flush pushes buffered records to the destination (called after each record
// batch boundary the server cares about, e.g. job completion).
func (a *auditLog) flush() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	_ = a.buf.Flush()
}

// close flushes and, when the destination supports it, syncs the log to
// stable storage. Part of the shutdown sequence.
func (a *auditLog) close() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	_ = a.buf.Flush()
	if s, ok := a.dst.(syncer); ok {
		_ = s.Sync()
	}
}
