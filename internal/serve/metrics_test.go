package serve_test

// Tests for zsimd's observability surface: the Prometheus /metrics endpoint
// (valid exposition, histogram counts that match the job count, counters that
// stay monotone across jobs and warm-pool reuse), the live progress block of
// GET /jobs/{id}, the extended /healthz payload, and scraping under load
// (the race detector is the assertion for that one).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"zsim/internal/serve"
)

// scrapeMetrics fetches /metrics and parses it as Prometheus text exposition,
// failing the test on any malformed line. Keys are the full sample name
// including labels, exactly as exposed.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// parseExposition validates the scrape line by line: every line is a HELP/TYPE
// comment or a `name{labels} value` sample with a parseable float value.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool) // families with a # TYPE line
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("malformed comment line: %q", line)
			}
			if fields[1] == "TYPE" {
				typed[fields[2]] = true
			}
			continue
		}
		// name{labels} value — the value is the last space-separated field,
		// and label values in this exposition never contain spaces.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "NaN" {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("duplicate sample %q", name)
		}
		samples[name] = val
		// Every sample belongs to a declared family (histogram samples carry
		// the _bucket/_sum/_count suffixes).
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		base := family
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suf)
		}
		if !typed[family] && !typed[base] {
			t.Fatalf("sample %q has no # TYPE declaration", name)
		}
	}
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	return samples
}

// sumBySuffix sums sample values whose name starts with prefix and, after the
// label block, ends the metric name with the given metric suffix.
func sumByPrefix(samples map[string]float64, prefix string) float64 {
	var sum float64
	for name, v := range samples {
		if strings.HasPrefix(name, prefix) {
			sum += v
		}
	}
	return sum
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, PoolSize: 4})

	const jobs = 3
	for i := 0; i < jobs; i++ {
		req := quickJob()
		req.Seed = uint64(i + 1)
		st := submit(t, ts, req)
		if st = waitState(t, ts, st.ID, terminal); st.State != serve.StateSucceeded {
			t.Fatalf("job %d ended %q (%s)", i, st.State, st.Error)
		}
	}

	samples := scrapeMetrics(t, ts)

	if got := samples[`zsimd_jobs_total{outcome="succeeded"}`]; got != jobs {
		t.Errorf("zsimd_jobs_total{succeeded} = %v, want %d", got, jobs)
	}
	// The histogram counts across all outcome/shape series must sum to the
	// total number of finished jobs.
	if got := sumByPrefix(samples, "zsimd_job_latency_seconds_count"); got != jobs {
		t.Errorf("sum of latency _count series = %v, want %d", got, jobs)
	}
	if got := sumByPrefix(samples, "zsimd_job_latency_seconds_sum"); got <= 0 {
		t.Errorf("latency _sum = %v, want > 0", got)
	}

	// Engine counters reflect the completed work.
	for _, name := range []string{
		"zsim_engine_intervals_total",
		"zsim_engine_cycles_total",
		"zsim_engine_instructions_total",
		"zsim_engine_pool_runs_total",
	} {
		if samples[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, samples[name])
		}
	}
	// Identical jobs reuse warm simulators: jobs 2 and 3 hit the pool.
	if got := samples["zsimd_pool_hits_total"]; got != jobs-1 {
		t.Errorf("zsimd_pool_hits_total = %v, want %d", got, jobs-1)
	}
	// Gauges the gates below rely on exist even when zero.
	for _, name := range []string{
		"zsimd_queue_depth", "zsimd_workers", "zsimd_jobs_inflight",
		`zsim_engine_running_jobs{phase="bound"}`,
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("missing sample %s", name)
		}
	}
}

// TestMetricsMonotonic: counters never dip across scrapes, including across
// warm-pool reuse (the final probe snapshot is folded into the completed
// totals before the simulator — whose probe the next job rewinds — can be
// checked out again).
func TestMetricsMonotonic(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, PoolSize: 4})

	counters := []string{
		"zsim_engine_intervals_total",
		"zsim_engine_cycles_total",
		"zsim_engine_instructions_total",
		"zsim_engine_weave_events_total",
		"zsim_engine_bound_seconds_total",
		"zsim_engine_pool_runs_total",
		`zsimd_jobs_total{outcome="succeeded"}`,
	}
	prev := make(map[string]float64)
	for round := 0; round < 3; round++ {
		st := submit(t, ts, quickJob())
		if st = waitState(t, ts, st.ID, terminal); st.State != serve.StateSucceeded {
			t.Fatalf("round %d job ended %q (%s)", round, st.State, st.Error)
		}
		samples := scrapeMetrics(t, ts)
		for _, name := range counters {
			if samples[name] < prev[name] {
				t.Errorf("round %d: %s dipped %v -> %v", round, name, prev[name], samples[name])
			}
			prev[name] = samples[name]
		}
	}
	// Three identical completed jobs: intervals must have actually advanced.
	if prev["zsim_engine_intervals_total"] <= 0 {
		t.Error("intervals_total never advanced")
	}
}

// TestJobProgressWhileRunning: a running job's status carries a live progress
// block fed by the telemetry probe; it disappears once the job is terminal.
func TestJobProgressWhileRunning(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	st := submit(t, ts, endlessJob())
	waitState(t, ts, st.ID, func(s string) bool { return s == serve.StateRunning })

	deadline := time.Now().Add(30 * time.Second)
	var got serve.JobStatus
	for {
		got = getStatus(t, ts, st.ID)
		if got.Progress != nil && got.Progress.Intervals > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live progress with intervals > 0; last status %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	p := got.Progress
	switch p.Phase {
	case "bound", "weave":
	default:
		t.Errorf("running phase = %q, want bound or weave", p.Phase)
	}
	if p.Cycles == 0 || p.Instructions == 0 {
		t.Errorf("progress counters empty: %+v", p)
	}
	if p.LiveThreads <= 0 {
		t.Errorf("liveThreads = %d, want > 0", p.LiveThreads)
	}

	resp := cancelJob(t, ts, st.ID)
	resp.Body.Close()
	final := waitState(t, ts, st.ID, terminal)
	if final.Progress != nil {
		t.Errorf("terminal status still carries progress: %+v", final.Progress)
	}
}

// TestHealthzBody: the liveness payload reports uptime, queue occupancy and
// worker configuration.
func TestHealthzBody(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 3, QueueDepth: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status        string `json:"status"`
		Uptime        string `json:"uptime"`
		QueueDepth    int    `json:"queueDepth"`
		QueueCapacity int    `json:"queueCapacity"`
		InFlight      int    `json:"inFlight"`
		Workers       int    `json:"workers"`
	}
	decodeInto(t, resp, &body)
	if body.Status != "ok" || body.Uptime == "" {
		t.Errorf("healthz body incomplete: %+v", body)
	}
	if body.Workers != 3 || body.QueueCapacity != 7 {
		t.Errorf("healthz config wrong: %+v", body)
	}
}

// TestShedAuditCarriesJobID: shed submissions are audited with the job id the
// client saw in the 503 body, so an operator can line up client retries with
// server-side shed records.
func TestShedAuditCarriesJobID(t *testing.T) {
	audit := new(lockedBuffer)
	s := serve.New(serve.Options{Workers: 1, QueueDepth: 1, Audit: audit})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Shutdown(100 * time.Millisecond)
		ts.Close()
	})

	running := submit(t, ts, endlessJob())
	waitState(t, ts, running.ID, func(st string) bool { return st == serve.StateRunning })
	queued := submit(t, ts, endlessJob())

	resp := postJSON(t, ts.URL+"/jobs", quickJob())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload submission: HTTP %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	samples := scrapeMetrics(t, ts)
	if got := samples[`zsimd_sheds_total{reason="queue_full"}`]; got != 1 {
		t.Errorf(`zsimd_sheds_total{reason="queue_full"} = %v, want 1`, got)
	}

	// Quiesce before reading the audit stream.
	for _, id := range []string{running.ID, queued.ID} {
		resp := cancelJob(t, ts, id)
		resp.Body.Close()
	}
	for _, id := range []string{running.ID, queued.ID} {
		waitState(t, ts, id, terminal)
	}

	// The shed submission must have been audited with the job id the client
	// saw in the 503 body.
	foundShed := false
	for _, line := range strings.Split(audit.String(), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Event string `json:"event"`
			Job   string `json:"job"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad audit line %q: %v", line, err)
		}
		if rec.Event == "shed" {
			foundShed = true
			if rec.Job == "" {
				t.Errorf("shed audit record has no job id: %s", line)
			}
		}
	}
	if !foundShed {
		t.Error("no shed event in the audit log")
	}
}

// lockedBuffer is an audit sink that tolerates the server's concurrent writes
// while the test reads it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMetricsScrapeUnderLoad hammers /metrics while jobs run, cancel and
// recycle through the warm pool. CI runs this package under -race; the
// detector is the real assertion, plus every scrape must stay well-formed.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2, QueueDepth: 16, PoolSize: 4})

	stopScrape := make(chan struct{})
	var scrapes sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				scrapeMetrics(t, ts)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := quickJob()
			req.Seed = uint64(i + 1)
			resp := postJSON(t, ts.URL+"/jobs", req)
			if resp.StatusCode != http.StatusAccepted {
				resp.Body.Close()
				return
			}
			var st serve.JobStatus
			decodeInto(t, resp, &st)
			mu.Lock()
			ids = append(ids, st.ID)
			mu.Unlock()
			if i%3 == 0 {
				c := postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", nil)
				c.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		waitState(t, ts, id, terminal)
	}
	close(stopScrape)
	scrapes.Wait()

	samples := scrapeMetrics(t, ts)
	if got := sumByPrefix(samples, "zsimd_job_latency_seconds_count"); got != float64(len(ids)) {
		t.Errorf("latency _count sum = %v, want %d", got, len(ids))
	}
}
