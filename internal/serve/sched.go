package serve

import (
	"fmt"
	"sync"
)

// Admission classes, highest priority first. Interactive jobs default to
// classNormal; campaign children default to classLow, so a 5,000-point sweep
// fills the queue's low-priority share and interactive work still gets in.
const (
	classHigh = iota
	classNormal
	classLow
	numClasses
)

var classNames = [numClasses]string{"high", "normal", "low"}

// parsePriority maps a wire priority to its class ("" = normal).
func parsePriority(s string) (int, error) {
	switch s {
	case "high":
		return classHigh, nil
	case "", "normal":
		return classNormal, nil
	case "low":
		return classLow, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want high, normal or low)", s)
}

// scheduler is the policy-driven admission queue that replaces the original
// FIFO channel: three class queues drained strictly highest-class-first, with
// per-class admission limits over the shared capacity. Lower classes are
// refused earlier (a saturating sweep cannot consume the whole queue), and
// the high class has reserved headroom above nominal capacity so an
// interactive job is admitted even while normal-priority load saturates the
// queue. Within a class, order is FIFO.
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   [numClasses][]*job
	size     int
	capacity int
	closed   bool
}

func newScheduler(capacity int) *scheduler {
	s := &scheduler{capacity: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// limit is the total queue size at or above which the given class is refused.
func (q *scheduler) limit(class int) int {
	switch class {
	case classHigh:
		// Reserved headroom: admitted even when the nominal queue is full.
		return q.capacity + max(1, q.capacity/8)
	case classLow:
		// Refused once the queue is 3/4 full, leaving room for better classes.
		return q.capacity - q.capacity/4
	default:
		return q.capacity
	}
}

// enqueue admits the job into its class queue, or refuses it (queue closed or
// the class's admission limit reached). Callers treat false as a shed.
func (q *scheduler) enqueue(j *job, class int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size >= q.limit(class) {
		return false
	}
	q.queues[class] = append(q.queues[class], j)
	q.size++
	q.cond.Signal()
	return true
}

// next blocks until a job is available (highest class first) or the queue is
// closed and drained, which it reports with ok == false.
func (q *scheduler) next() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for class := 0; class < numClasses; class++ {
			if queue := q.queues[class]; len(queue) > 0 {
				j := queue[0]
				queue[0] = nil
				q.queues[class] = queue[1:]
				q.size--
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close stops admission and wakes every worker; next drains what was already
// admitted and then reports closed.
func (q *scheduler) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth is the total number of queued jobs.
func (q *scheduler) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// classDepths snapshots the per-class queue lengths.
func (q *scheduler) classDepths() [numClasses]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var d [numClasses]int
	for c := range q.queues {
		d[c] = len(q.queues[c])
	}
	return d
}
