package serve_test

// Warm-pool tests: the shape-keyed simulator pool must be invisible in the
// results (warm runs bit-identical to fresh runs through the HTTP API),
// visible in the telemetry (reused flags, /healthz occupancy and hit-rate,
// audit detail), and safe under concurrent same-shape load.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zsim"
	"zsim/internal/serve"
)

// detJob is a deterministic job inside the documented determinism envelope
// (single thread, no shared data — see TestDeterminismMatchesFacade), so a
// warm-simulator rerun must reproduce a fresh run's metrics exactly.
func detJob() *serve.JobRequest {
	return &serve.JobRequest{
		Preset:      "small",
		Workloads:   []serve.WorkloadSpec{{Name: "fluidanimate", Threads: 1, Blocks: 300}},
		HostThreads: 2,
		Seed:        7,
	}
}

// healthPool decodes the /healthz pool block.
type healthPool struct {
	Enabled   bool    `json:"enabled"`
	Occupancy int     `json:"occupancy"`
	Shapes    int     `json:"shapes"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Returns   uint64  `json:"returns"`
	Discards  uint64  `json:"discards"`
	HitRate   float64 `json:"hitRate"`
}

func getHealthPool(t *testing.T, ts *httptest.Server) healthPool {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Status string     `json:"status"`
		Pool   healthPool `json:"pool"`
	}
	decodeInto(t, resp, &body)
	if body.Status != "ok" {
		t.Fatalf("healthz status %q", body.Status)
	}
	return body.Pool
}

// runToSuccess submits a job and returns its result once it succeeds.
func runToSuccess(t *testing.T, ts *httptest.Server, req *serve.JobRequest) *serve.JobResult {
	t.Helper()
	st := submit(t, ts, req)
	st = waitState(t, ts, st.ID, terminal)
	if st.State != serve.StateSucceeded {
		t.Fatalf("job ended %q (%s)", st.State, st.Error)
	}
	return getResult(t, ts, st.ID)
}

// sameMetrics compares two job results' simulated metrics, ignoring the
// host-time-derived fields that can never match.
func sameMetrics(a, b *zsim.Metrics) bool {
	if a == nil || b == nil {
		return a == b
	}
	x, y := *a, *b
	x.HostNanos, y.HostNanos = 0, 0
	x.SimMIPS, y.SimMIPS = 0, 0
	return x == y
}

// TestWarmPoolReuseIdentity drives the same job through one pooled worker
// three times: the first run constructs, the next two must come from the
// warm pool (Reused), and all three — plus a run on a pool-disabled server —
// must report identical simulated metrics. The pool telemetry (healthz
// counters, audit "reused=true" detail, flat arena footprint) must match.
func TestWarmPoolReuseIdentity(t *testing.T) {
	var audit bytes.Buffer
	s, ts := newTestServer(t, serve.Options{Workers: 1, PoolSize: 2, Audit: &audit})

	var results []*serve.JobResult
	for i := 0; i < 3; i++ {
		results = append(results, runToSuccess(t, ts, detJob()))
	}
	if results[0].Reused {
		t.Fatalf("first job cannot be served warm")
	}
	for i, res := range results[1:] {
		if !res.Reused {
			t.Fatalf("job %d not served from the warm pool: %+v", i+2, res)
		}
	}
	for i, res := range results[1:] {
		if !sameMetrics(results[0].Metrics, res.Metrics) {
			t.Fatalf("warm run %d diverged from fresh:\n fresh: %+v\n warm:  %+v",
				i+2, results[0].Metrics, res.Metrics)
		}
	}
	if results[0].ArenaChunks == 0 || results[0].ArenaBytes == 0 {
		t.Fatalf("arena stats missing from job result: %+v", results[0])
	}
	if results[1].ArenaChunks != results[2].ArenaChunks || results[1].ArenaBytes != results[2].ArenaBytes {
		t.Fatalf("warm arena footprint not flat: %d/%d then %d/%d",
			results[1].ArenaChunks, results[1].ArenaBytes,
			results[2].ArenaChunks, results[2].ArenaBytes)
	}

	pool := getHealthPool(t, ts)
	if !pool.Enabled {
		t.Fatalf("pool disabled in healthz: %+v", pool)
	}
	if pool.Hits != 2 || pool.Misses != 1 || pool.Returns != 3 {
		t.Fatalf("pool counters: %+v, want 2 hits / 1 miss / 3 returns", pool)
	}
	if pool.Occupancy != 1 || pool.Shapes != 1 {
		t.Fatalf("pool occupancy: %+v, want 1 simulator of 1 shape", pool)
	}
	if pool.HitRate < 0.6 || pool.HitRate > 0.7 {
		t.Fatalf("pool hit rate %v, want 2/3", pool.HitRate)
	}

	// Identity also holds against a server with pooling disabled entirely.
	_, plain := newTestServer(t, serve.Options{Workers: 1})
	fresh := runToSuccess(t, plain, detJob())
	if fresh.Reused {
		t.Fatalf("pool-disabled server reported a warm run")
	}
	if !sameMetrics(fresh.Metrics, results[2].Metrics) {
		t.Fatalf("pooled server diverged from pool-disabled server:\n off: %+v\n on:  %+v",
			fresh.Metrics, results[2].Metrics)
	}

	// The audit trail marks warm servings.
	s.Shutdown(time.Second)
	if !strings.Contains(audit.String(), "reused=true") {
		t.Fatalf("audit log never recorded a warm serving:\n%s", audit.String())
	}
}

// TestWarmPoolShapeSeparation interleaves two configuration shapes: a job of
// one shape must never be served by a simulator built for the other, and the
// pool retains both shapes side by side.
func TestWarmPoolShapeSeparation(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, PoolSize: 4, PoolPerShape: 2})

	westmere := &serve.JobRequest{
		Preset:      "westmere",
		Workloads:   []serve.WorkloadSpec{{Name: "fluidanimate", Threads: 1, Blocks: 40}},
		HostThreads: 2,
		Seed:        7,
	}
	small := runToSuccess(t, ts, detJob())
	other := runToSuccess(t, ts, westmere)
	if other.Reused {
		t.Fatalf("westmere job served by the small-shape simulator")
	}
	warm := runToSuccess(t, ts, detJob())
	if !warm.Reused {
		t.Fatalf("small-shape job missed despite a warm small simulator")
	}
	if !sameMetrics(small.Metrics, warm.Metrics) {
		t.Fatalf("warm small run diverged:\n fresh: %+v\n warm:  %+v", small.Metrics, warm.Metrics)
	}
	pool := getHealthPool(t, ts)
	if pool.Shapes != 2 || pool.Occupancy != 2 {
		t.Fatalf("pool should hold both shapes: %+v", pool)
	}
}

// TestWarmPoolConcurrentSameShape hammers one shape with concurrent jobs
// across several workers (this package's tests run under -race in CI): every
// job must succeed with identical metrics, and the pool must account for
// every lookup.
func TestWarmPoolConcurrentSameShape(t *testing.T) {
	const jobs = 12
	_, ts := newTestServer(t, serve.Options{
		Workers:      4,
		QueueDepth:   jobs,
		PoolSize:     4,
		PoolPerShape: 4,
	})

	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/jobs", detJob())
			var st serve.JobStatus
			if resp.StatusCode != http.StatusAccepted {
				resp.Body.Close()
				t.Errorf("submit %d: HTTP %d", i, resp.StatusCode)
				return
			}
			decodeInto(t, resp, &st)
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var baseline *zsim.Metrics
	reused := 0
	for _, id := range ids {
		st := waitState(t, ts, id, terminal)
		if st.State != serve.StateSucceeded {
			t.Fatalf("job %s ended %q (%s)", id, st.State, st.Error)
		}
		res := getResult(t, ts, id)
		if res.Reused {
			reused++
		}
		if baseline == nil {
			baseline = res.Metrics
			continue
		}
		if !sameMetrics(baseline, res.Metrics) {
			t.Fatalf("concurrent warm runs diverged:\n a: %+v\n b: %+v", baseline, res.Metrics)
		}
	}

	pool := getHealthPool(t, ts)
	if pool.Hits+pool.Misses != jobs {
		t.Fatalf("pool lookups %d+%d, want %d", pool.Hits, pool.Misses, jobs)
	}
	// Each of the 4 workers returns its simulator before taking its next
	// job, so at most the first wave (one per worker) can miss.
	if pool.Misses > 4 {
		t.Fatalf("too many pool misses under steady same-shape load: %+v", pool)
	}
	if reused != int(pool.Hits) {
		t.Fatalf("reused results (%d) disagree with pool hits (%d)", reused, pool.Hits)
	}
	if msg := fmt.Sprintf("%+v", pool); !pool.Enabled || pool.Occupancy == 0 {
		t.Fatalf("pool should retain warm simulators after the burst: %s", msg)
	}
}
