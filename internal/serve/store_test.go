package serve

// Internal tests for the bounded result store: ring eviction, newest-first
// queries, filters, and the has() probe backing 410 Gone responses.

import (
	"fmt"
	"testing"
	"time"
)

func row(i int, campaign, outcome string) ResultRow {
	return ResultRow{
		Job:      fmt.Sprintf("job-%d", i),
		Campaign: campaign,
		Shape:    fmt.Sprintf("%016x", i%2),
		Outcome:  outcome,
		Seconds:  float64(i),
		Finished: time.Unix(int64(i), 0),
	}
}

func TestStoreNewestFirst(t *testing.T) {
	st := newResultStore(10)
	for i := 0; i < 5; i++ {
		st.insert(row(i, "", "succeeded"))
	}
	got := st.query(resultFilter{})
	if len(got) != 5 {
		t.Fatalf("got %d rows", len(got))
	}
	for i, r := range got {
		want := fmt.Sprintf("job-%d", 4-i)
		if r.Job != want {
			t.Fatalf("row %d = %s, want %s", i, r.Job, want)
		}
	}
}

func TestStoreRingEviction(t *testing.T) {
	st := newResultStore(4)
	for i := 0; i < 10; i++ {
		st.insert(row(i, "", "succeeded"))
	}
	rows, evictions := st.stats()
	if rows != 4 || evictions != 6 {
		t.Fatalf("stats = %d rows / %d evictions, want 4 / 6", rows, evictions)
	}
	got := st.query(resultFilter{})
	if len(got) != 4 {
		t.Fatalf("got %d rows", len(got))
	}
	// Only the 4 newest survive, newest first.
	for i, r := range got {
		want := fmt.Sprintf("job-%d", 9-i)
		if r.Job != want {
			t.Fatalf("row %d = %s, want %s", i, r.Job, want)
		}
	}
	if st.has("job-3") {
		t.Fatalf("evicted job still reported present")
	}
	if !st.has("job-9") {
		t.Fatalf("retained job reported absent")
	}
}

func TestStoreFilters(t *testing.T) {
	st := newResultStore(100)
	for i := 0; i < 20; i++ {
		camp := ""
		if i%2 == 0 {
			camp = "campaign-1"
		}
		outcome := "succeeded"
		if i%5 == 0 {
			outcome = "failed"
		}
		st.insert(row(i, camp, outcome))
	}
	if got := st.query(resultFilter{campaign: "campaign-1"}); len(got) != 10 {
		t.Fatalf("campaign filter: %d rows, want 10", len(got))
	}
	if got := st.query(resultFilter{outcome: "failed"}); len(got) != 4 {
		t.Fatalf("outcome filter: %d rows, want 4", len(got))
	}
	if got := st.query(resultFilter{campaign: "campaign-1", outcome: "failed"}); len(got) != 2 {
		t.Fatalf("combined filter: %d rows, want 2 (i = 0 and 10)", len(got))
	}
	if got := st.query(resultFilter{job: "job-7"}); len(got) != 1 || got[0].Job != "job-7" {
		t.Fatalf("job filter: %+v", got)
	}
	if got := st.query(resultFilter{shape: fmt.Sprintf("%016x", 1)}); len(got) != 10 {
		t.Fatalf("shape filter: %d rows, want 10", len(got))
	}
	if got := st.query(resultFilter{limit: 3}); len(got) != 3 || got[0].Job != "job-19" {
		t.Fatalf("limit: %d rows, first %s", len(got), got[0].Job)
	}
	if got := st.query(resultFilter{campaign: "no-such"}); len(got) != 0 {
		t.Fatalf("miss filter returned rows: %v", got)
	}
}

// TestStoreQueryAfterWrap: newest-first ordering must hold when the ring has
// wrapped and next points mid-slice.
func TestStoreQueryAfterWrap(t *testing.T) {
	st := newResultStore(4)
	for i := 0; i < 6; i++ { // next == 2 after wrap
		st.insert(row(i, "", "succeeded"))
	}
	got := st.query(resultFilter{limit: 2})
	if len(got) != 2 || got[0].Job != "job-5" || got[1].Job != "job-4" {
		t.Fatalf("post-wrap order: %+v", got)
	}
}
