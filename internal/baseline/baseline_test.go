package baseline

import (
	"testing"

	"zsim/internal/config"
	"zsim/internal/core"
	"zsim/internal/isa"
	"zsim/internal/stats"
	"zsim/internal/trace"
)

func testCfg() *config.System {
	cfg := config.SmallTest()
	cfg.NumCores = 4
	return cfg
}

func testWorkload(threads, blocks int) *trace.Workload {
	p := trace.DefaultParams()
	p.BlocksPerThread = blocks
	p.ScaleWork = false
	return trace.New("baseline-test", p, threads)
}

func TestRunGoldenSingleThread(t *testing.T) {
	res, err := RunGolden(testCfg(), testWorkload(1, 500), 0)
	if err != nil {
		t.Fatalf("RunGolden: %v", err)
	}
	m := res.Metrics
	if m.Instrs == 0 || m.Cycles == 0 {
		t.Fatalf("golden run should execute work: %+v", m)
	}
	if m.IPC <= 0 || m.IPC > 4 {
		t.Fatalf("implausible golden IPC: %f", m.IPC)
	}
	if m.Model == "" || m.Workload == "" {
		t.Fatalf("metrics should be labelled")
	}
}

func TestRunGoldenMultithreadedWithSync(t *testing.T) {
	p := trace.DefaultParams()
	p.BlocksPerThread = 400
	p.LockEvery = 30
	p.LockHoldBlocks = 2
	p.BarrierEvery = 100
	p.SerialFraction = 0.1
	w := trace.New("sync-heavy", p, 4)
	res, err := RunGolden(testCfg(), w, 0)
	if err != nil {
		t.Fatalf("RunGolden: %v", err)
	}
	if res.Metrics.Instrs == 0 {
		t.Fatalf("multithreaded golden run should finish")
	}
	// All four cores should have executed something.
	if res.Metrics.Cores != 4 {
		t.Fatalf("expected 4 cores in metrics")
	}
}

func TestRunGoldenMaxInstrs(t *testing.T) {
	res, err := RunGolden(testCfg(), testWorkload(2, 100000), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Instrs < 20000 || res.Metrics.Instrs > 80000 {
		t.Fatalf("golden run should stop near the instruction bound, got %d", res.Metrics.Instrs)
	}
}

func TestGoldenParallelSpeedupShape(t *testing.T) {
	// The golden reference must also show parallel speedup for a scalable
	// workload (it is the "real machine" for the Figure 6 speedup curves).
	run := func(threads int) uint64 {
		p := trace.DefaultParams()
		p.BlocksPerThread = 2400
		p.ScaleWork = true
		p.SerialFraction = 0.05
		w := trace.New("scaling", p, threads)
		res, err := RunGolden(testCfg(), w, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Cycles
	}
	one := run(1)
	four := run(4)
	if float64(one)/float64(four) < 1.8 {
		t.Fatalf("golden model should show parallel speedup: 1t=%d 4t=%d", one, four)
	}
}

func TestRunLax(t *testing.T) {
	cfg := testCfg()
	cfg.MemModel = config.MemMD1
	m, err := RunLax(cfg, testWorkload(4, 400), 0)
	if err != nil {
		t.Fatalf("RunLax: %v", err)
	}
	if m.Instrs == 0 {
		t.Fatalf("lax run should execute work")
	}
	if m.Model != "lax-md1" {
		t.Fatalf("model label: %s", m.Model)
	}
	// Bounded run.
	m2, err := RunLax(cfg, testWorkload(4, 1000000), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Instrs == 0 {
		t.Fatalf("bounded lax run should do some work")
	}
}

func TestRunLockstep(t *testing.T) {
	m, err := RunLockstep(testCfg(), testWorkload(4, 300), 10, 0)
	if err != nil {
		t.Fatalf("RunLockstep: %v", err)
	}
	if m.Instrs == 0 || m.Model != "lockstep-pdes" {
		t.Fatalf("lockstep run broken: %+v", m)
	}
	// Default quantum.
	if _, err := RunLockstep(testCfg(), testWorkload(2, 100), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineRejectsBadConfig(t *testing.T) {
	bad := &config.System{}
	if _, err := RunGolden(bad, testWorkload(1, 10), 0); err == nil {
		t.Fatalf("golden should reject invalid configs")
	}
	if _, err := RunLax(bad, testWorkload(1, 10), 0); err == nil {
		t.Fatalf("lax should reject invalid configs")
	}
	if _, err := RunLockstep(bad, testWorkload(1, 10), 1, 0); err == nil {
		t.Fatalf("lockstep should reject invalid configs")
	}
}

func TestEmulationCoreRedecodes(t *testing.T) {
	reg := stats.NewRegistry("emu")
	inner := core.NewIPC1(0, core.MemPorts{}, reg)
	emu := &EmulationCore{Inner: inner}
	b := &isa.BasicBlock{ID: 1, Addr: 0x400000, Instrs: []isa.Instruction{
		{Op: isa.OpAdd, Dst: isa.RAX, Src1: isa.RAX, Src2: isa.RBX, Bytes: 3},
		{Op: isa.OpJcc, Bytes: 2},
	}}
	for i := 0; i < 10; i++ {
		emu.SimulateStaticBlock(b, nil, true)
	}
	if emu.Redecodes != 10 {
		t.Fatalf("emulation core should re-decode every dynamic block, got %d", emu.Redecodes)
	}
	if inner.Instrs() != 20 {
		t.Fatalf("inner core should have simulated the blocks")
	}
}
