// Package baseline implements the comparison points the paper's evaluation
// needs but that are not part of zsim itself:
//
//   - Golden: a sequential, fully ordered, contention-accurate simulator used
//     as the validation target (the stand-in for the real Westmere machine of
//     Section 4.1 — see DESIGN.md for the substitution argument). It executes
//     one basic block at a time, always advancing the thread with the
//     smallest simulated cycle, so memory accesses are interleaved in global
//     simulated-time order and contention is applied inline.
//   - Lax: a Graphite-style parallel simulator with unbounded skew: every
//     core runs in its own goroutine with no interval barrier, and contention
//     is approximated with the analytical M/D/1 model. Used for the accuracy
//     comparison of Figure 6 (right).
//   - Lockstep: a pessimistic-PDES-style simulator that synchronizes all
//     cores on a barrier every few cycles. Used for the speed comparisons
//     (conventional parallel simulation is orders of magnitude slower).
//   - EmulationCore: a core wrapper that re-decodes every dynamic basic block
//     instead of using the translation cache, quantifying the speedup of
//     doing timing-model work at instrumentation time (Section 3.1).
package baseline

import (
	"container/heap"
	"sync"

	"zsim/internal/boundweave"
	"zsim/internal/config"
	"zsim/internal/core"
	"zsim/internal/isa"
	"zsim/internal/stats"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// GoldenResult summarizes a golden-reference run.
type GoldenResult struct {
	Metrics *stats.Metrics
	System  *boundweave.System
}

// RunGolden executes the workload on a sequential, fully ordered,
// contention-accurate simulation of the configured system and returns its
// metrics. maxInstrs bounds the run (0 = until all threads finish).
func RunGolden(cfg *config.System, w *trace.Workload, maxInstrs uint64) (*GoldenResult, error) {
	// Memory contention in the golden model: the run is fully ordered, so a
	// load-dependent controller applied inline is accurate. Callers that want
	// contention (the validation harness does) set cfg.MemModel = MemMD1; the
	// M/D/1 model is exact here because accesses arrive in global order.
	goldenCfg := *cfg
	goldenCfg.Contention = false
	if goldenCfg.MemModel == "" || goldenCfg.MemModel == config.MemSimple {
		goldenCfg.MemModel = config.MemMD1
	}
	sys, err := boundweave.BuildSystem(&goldenCfg)
	if err != nil {
		return nil, err
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(w)

	runSequential(sys, sched, maxInstrs)

	m := sys.Metrics()
	m.Workload = w.Name
	m.Model = "golden-" + string(cfg.CoreModel)
	m.Finalize()
	return &GoldenResult{Metrics: m, System: sys}, nil
}

// seqItem orders threads by their simulated cycle.
type seqItem struct {
	threadID int
	cycle    uint64
}

type seqPQ []seqItem

func (q seqPQ) Len() int            { return len(q) }
func (q seqPQ) Less(i, j int) bool  { return q[i].cycle < q[j].cycle }
func (q seqPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *seqPQ) Push(x interface{}) { *q = append(*q, x.(seqItem)) }
func (q *seqPQ) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// runSequential drives all threads one basic block at a time in global
// simulated-cycle order (the defining property of the golden reference).
func runSequential(sys *boundweave.System, sched *virt.Scheduler, maxInstrs uint64) {
	cfg := sys.Cfg
	// Each software thread is pinned to core (threadID mod numCores); the
	// golden model is about ordering, not about scheduling policy.
	var pq seqPQ
	for i := 0; i < sched.NumThreads(); i++ {
		heap.Push(&pq, seqItem{threadID: i, cycle: 0})
	}
	var totalInstrs uint64
	for pq.Len() > 0 {
		if maxInstrs > 0 && totalInstrs >= maxInstrs {
			break
		}
		it := heap.Pop(&pq).(seqItem)
		th := sched.Thread(it.threadID)
		if th.State == virt.StateDone {
			continue
		}
		// Threads blocked on a lock or barrier wait for the scheduler to make
		// them runnable (which happens when another thread releases or
		// arrives); they are re-examined a little later in simulated time.
		if th.State == virt.StateBlockedLock || th.State == virt.StateBlockedBarrier {
			heap.Push(&pq, seqItem{threadID: it.threadID, cycle: it.cycle + 100})
			continue
		}
		if th.State == virt.StateBlockedSyscall {
			if it.cycle < th.WakeCycle {
				heap.Push(&pq, seqItem{threadID: it.threadID, cycle: th.WakeCycle})
				continue
			}
			th.State = virt.StateRunnable
			if th.Cycle < th.WakeCycle {
				th.Cycle = th.WakeCycle
			}
		}
		coreID := it.threadID % cfg.NumCores
		c := sys.Cores[coreID]
		start := maxU64(it.cycle, th.Cycle)
		if start > c.Cycle() {
			c.SetCycle(start)
		}
		before := c.Instrs()
		blk := th.Stream.NextBlock()
		requeueCycle := uint64(0)
		done := false
		switch blk.Sync {
		case trace.SyncDone:
			sched.OnDone(th, c.Cycle())
			done = true
		case trace.SyncBarrier:
			c.SimulateBlock(blk)
			sched.OnBarrier(th, blk.SyncID, c.Cycle())
			// Barrier release is detected when the thread becomes runnable
			// again; requeue at its (possibly advanced) cycle.
			requeueCycle = th.Cycle
		case trace.SyncBlocked:
			c.SimulateBlock(blk)
			sched.OnBlockedSyscall(th, c.Cycle(), blk.SyncArg)
			requeueCycle = th.WakeCycle
		case trace.SyncLockAcquire:
			c.SimulateBlock(blk)
			if !sched.OnLockAcquire(th, blk.SyncID, c.Cycle()) {
				requeueCycle = c.Cycle() // re-examined when the lock is released
			} else {
				requeueCycle = c.Cycle()
			}
		case trace.SyncLockRelease:
			c.SimulateBlock(blk)
			sched.OnLockRelease(th, blk.SyncID, c.Cycle())
			requeueCycle = c.Cycle()
		default:
			c.SimulateBlock(blk)
			requeueCycle = c.Cycle()
		}
		totalInstrs += c.Instrs() - before
		if !done {
			// Threads blocked on locks or barriers are requeued at a slightly
			// later cycle so the simulation makes progress while they wait;
			// they only execute again once the scheduler marks them runnable
			// or running.
			if th.State == virt.StateBlockedLock || th.State == virt.StateBlockedBarrier {
				requeueCycle = maxU64(requeueCycle, c.Cycle()) + 100
			}
			if th.State == virt.StateBlockedSyscall {
				requeueCycle = th.WakeCycle
			}
			heap.Push(&pq, seqItem{threadID: it.threadID, cycle: maxU64(requeueCycle, it.cycle+1)})
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// RunLax executes the workload Graphite-style: every core runs freely in its
// own goroutine with no skew bound, and memory contention uses the M/D/1
// queuing model (set cfg.MemModel = MemMD1 to enable it). Synchronization
// still goes through the scheduler, protected by a lock. Returns the system
// metrics.
func RunLax(cfg *config.System, w *trace.Workload, maxInstrsPerThread uint64) (*stats.Metrics, error) {
	laxCfg := *cfg
	laxCfg.Contention = false
	sys, err := boundweave.BuildSystem(&laxCfg)
	if err != nil {
		return nil, err
	}
	sched := virt.NewScheduler(laxCfg.NumCores)
	sched.AddWorkload(w)

	var mu sync.Mutex
	var wg sync.WaitGroup
	n := sched.NumThreads()
	if n > laxCfg.NumCores {
		n = laxCfg.NumCores
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := sched.Thread(tid)
			c := sys.Cores[tid%laxCfg.NumCores]
			var instrs uint64
			for {
				if maxInstrsPerThread > 0 && instrs >= maxInstrsPerThread {
					return
				}
				blk := th.Stream.NextBlock()
				before := c.Instrs()
				switch blk.Sync {
				case trace.SyncDone:
					mu.Lock()
					sched.OnDone(th, c.Cycle())
					mu.Unlock()
					return
				case trace.SyncBarrier:
					// Lax simulation has no global time to wait on; barriers
					// become local no-ops (a known source of inaccuracy for
					// this class of simulators).
					c.SimulateBlock(blk)
				case trace.SyncLockAcquire, trace.SyncLockRelease, trace.SyncBlocked:
					c.SimulateBlock(blk)
				default:
					c.SimulateBlock(blk)
				}
				instrs += c.Instrs() - before
			}
		}(i)
	}
	wg.Wait()
	m := sys.Metrics()
	m.Workload = w.Name
	m.Model = "lax-" + string(laxCfg.MemModel)
	m.Finalize()
	return m, nil
}

// RunLockstep executes the workload with pessimistic-PDES-style lockstep
// synchronization: all cores synchronize on a barrier every quantum cycles.
// It is functionally similar to the bound phase with a tiny interval and no
// weave phase, and exists to quantify the cost of frequent synchronization.
func RunLockstep(cfg *config.System, w *trace.Workload, quantum uint64, maxInstrs uint64) (*stats.Metrics, error) {
	lockstepCfg := *cfg
	lockstepCfg.Contention = false
	if quantum == 0 {
		quantum = 10
	}
	lockstepCfg.IntervalCycles = quantum
	sys, err := boundweave.BuildSystem(&lockstepCfg)
	if err != nil {
		return nil, err
	}
	sched := virt.NewScheduler(lockstepCfg.NumCores)
	sched.AddWorkload(w)
	sim := boundweave.NewSimulator(sys, sched, boundweave.Options{MaxInstrs: maxInstrs})
	sim.Run()
	m := sys.Metrics()
	m.Workload = w.Name
	m.Model = "lockstep-pdes"
	m.Finalize()
	return m, nil
}

// EmulationCore wraps a core model and re-decodes every dynamic basic block
// before simulating it, the way an emulation-based simulator decodes every
// dynamic instruction. Comparing it against the same core model using the
// decoder cache isolates the benefit of doing decode work at translation
// time.
type EmulationCore struct {
	Inner core.Core
	// Redecodes counts how many dynamic blocks were re-decoded.
	Redecodes uint64
}

// SimulateStaticBlock re-decodes the static block and simulates the result.
func (e *EmulationCore) SimulateStaticBlock(b *isa.BasicBlock, addrs []uint64, taken bool) {
	d := isa.Decode(b) // paid for every dynamic execution
	e.Redecodes++
	e.Inner.SimulateBlock(&trace.DynBlock{
		Decoded:  d,
		Addrs:    addrs,
		Taken:    taken,
		BranchPC: b.Addr + b.Bytes(),
	})
}
