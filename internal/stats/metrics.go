package stats

import (
	"math"
	"sort"
)

// Metrics holds the derived, per-run performance metrics that the paper's
// evaluation section reports: IPC, MPKI per cache level, MIPS of the
// simulator, and so on. The harness fills one Metrics per (workload, model)
// pair and the experiment tables are built from them.
type Metrics struct {
	Workload string
	Model    string

	Instrs     uint64  // simulated instructions (all cores)
	Uops       uint64  // simulated µops (all cores)
	Cycles     uint64  // simulated cycles (max across cores)
	CoreCycles uint64  // sum of per-core cycles (for utilization)
	Cores      int     // number of simulated cores that executed work
	HostNanos  int64   // wall-clock host time for the simulation, ns
	IPC        float64 // aggregate instructions per cycle
	UPC        float64 // aggregate µops per cycle

	L1IMPKI    float64
	L1DMPKI    float64
	L2MPKI     float64
	L3MPKI     float64
	BranchMPKI float64

	L1IMisses    uint64
	L1DMisses    uint64
	L2Misses     uint64
	L3Misses     uint64
	BranchMisses uint64

	MemReads  uint64
	MemWrites uint64

	SimMIPS float64 // simulated MIPS: Instrs / host seconds / 1e6
}

// Finalize computes the derived ratios from the raw counts. It must be called
// after the raw fields are filled in.
func (m *Metrics) Finalize() {
	if m.Cycles > 0 {
		m.IPC = float64(m.Instrs) / float64(m.Cycles)
		m.UPC = float64(m.Uops) / float64(m.Cycles)
	}
	ki := float64(m.Instrs) / 1000.0
	if ki > 0 {
		m.L1IMPKI = float64(m.L1IMisses) / ki
		m.L1DMPKI = float64(m.L1DMisses) / ki
		m.L2MPKI = float64(m.L2Misses) / ki
		m.L3MPKI = float64(m.L3Misses) / ki
		m.BranchMPKI = float64(m.BranchMisses) / ki
	}
	if m.HostNanos > 0 {
		m.SimMIPS = float64(m.Instrs) / (float64(m.HostNanos) / 1e9) / 1e6
	}
}

// PerfError returns the relative performance error of this run versus a
// reference run, (perf_this - perf_ref)/perf_ref, where perf = 1/time =
// IPC-rate for equal instruction counts. This is the paper's perf_error
// metric: positive means this model overestimates performance.
func (m *Metrics) PerfError(ref *Metrics) float64 {
	if ref.Cycles == 0 || m.Cycles == 0 {
		return 0
	}
	// For equal work, perf ∝ 1/cycles.
	perfThis := 1.0 / float64(m.Cycles)
	perfRef := 1.0 / float64(ref.Cycles)
	return (perfThis - perfRef) / perfRef
}

// MPKIError returns simulated - reference MPKI for the named cache level.
func (m *Metrics) MPKIError(ref *Metrics, level string) float64 {
	get := func(x *Metrics) float64 {
		switch level {
		case "l1i":
			return x.L1IMPKI
		case "l1d":
			return x.L1DMPKI
		case "l2":
			return x.L2MPKI
		case "l3":
			return x.L3MPKI
		case "branch":
			return x.BranchMPKI
		default:
			return 0
		}
	}
	return get(m) - get(ref)
}

// HMean returns the harmonic mean of the values; zero and negative values are
// skipped (they would otherwise make the mean undefined). The paper uses
// harmonic means of MIPS to aggregate simulator performance.
func HMean(vals []float64) float64 {
	var sum float64
	var n int
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		sum += 1 / v
		n++
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(n) / sum
}

// Mean returns the arithmetic mean of the values (0 for an empty slice).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// MeanAbs returns the mean of absolute values (0 for an empty slice).
func MeanAbs(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += math.Abs(v)
	}
	return sum / float64(len(vals))
}

// MaxAbs returns the maximum absolute value (0 for an empty slice).
func MaxAbs(vals []float64) float64 {
	var max float64
	for _, v := range vals {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(vals []float64) float64 {
	var sum float64
	var n int
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median returns the median of the values (0 for an empty slice).
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
