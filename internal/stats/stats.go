// Package stats provides the statistics infrastructure used by every timing
// model in the simulator: scalar counters, vector counters, histograms, and
// hierarchical registries that can be exported as text or CSV.
//
// The original zsim exports statistics through HDF5; this implementation is
// stdlib-only and exports through text and CSV writers, which is sufficient
// for the experiment harness to regenerate every table and figure in the
// paper.
//
// Counters are plain uint64 fields updated by a single goroutine (each core
// or cache model is driven by exactly one host thread during the bound
// phase), so they do not need atomic updates. Aggregation across components
// happens at interval or simulation boundaries.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing scalar statistic.
type Counter struct {
	Name string
	Desc string
	V    uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.V++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.V += n }

// Get returns the current value.
func (c *Counter) Get() uint64 { return c.V }

// Set overwrites the counter value. It is used when a model computes the
// value externally (e.g., cycle counters owned by a core model).
func (c *Counter) Set(v uint64) { c.V = v }

// AtomicCounter is a monotonically increasing scalar statistic updated by
// several host threads at once. Components whose hot path is sharded across
// threads (shared caches with striped locking, memory controllers) use it
// instead of Counter, trading a lock-free atomic add for the single-writer
// assumption.
type AtomicCounter struct {
	Name string
	Desc string
	v    atomic.Uint64
}

// Inc adds one to the counter.
func (c *AtomicCounter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *AtomicCounter) Add(n uint64) { c.v.Add(n) }

// Get returns the current value.
func (c *AtomicCounter) Get() uint64 { return c.v.Load() }

// Set overwrites the counter value.
func (c *AtomicCounter) Set(v uint64) { c.v.Store(v) }

// Gauge is a scalar statistic that may go up or down (e.g., occupancy).
type Gauge struct {
	Name string
	Desc string
	V    int64
}

// Add adds delta (possibly negative) to the gauge.
func (g *Gauge) Add(delta int64) { g.V += delta }

// Get returns the current value.
func (g *Gauge) Get() int64 { return g.V }

// VectorCounter is an indexed family of counters sharing one name, such as
// per-bank access counts or per-port issue counts.
type VectorCounter struct {
	Name string
	Desc string
	Vals []uint64
}

// NewVectorCounter creates a vector counter with n entries.
func NewVectorCounter(name, desc string, n int) *VectorCounter {
	return &VectorCounter{Name: name, Desc: desc, Vals: make([]uint64, n)}
}

// Inc increments entry i.
func (v *VectorCounter) Inc(i int) { v.Vals[i]++ }

// Add adds n to entry i.
func (v *VectorCounter) Add(i int, n uint64) { v.Vals[i] += n }

// Get returns entry i.
func (v *VectorCounter) Get(i int) uint64 { return v.Vals[i] }

// Total returns the sum of all entries.
func (v *VectorCounter) Total() uint64 {
	var t uint64
	for _, x := range v.Vals {
		t += x
	}
	return t
}

// Histogram is a fixed-bucket histogram of non-negative samples, used for
// latency distributions (e.g., memory access latency in the weave phase).
type Histogram struct {
	Name       string
	Desc       string
	BucketSize uint64
	Buckets    []uint64
	Overflow   uint64
	Count      uint64
	Sum        uint64
	MaxSample  uint64
}

// NewHistogram creates a histogram with nBuckets buckets of width bucketSize.
func NewHistogram(name, desc string, bucketSize uint64, nBuckets int) *Histogram {
	if bucketSize == 0 {
		bucketSize = 1
	}
	return &Histogram{
		Name:       name,
		Desc:       desc,
		BucketSize: bucketSize,
		Buckets:    make([]uint64, nBuckets),
	}
}

// Sample records one sample.
func (h *Histogram) Sample(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.MaxSample {
		h.MaxSample = v
	}
	idx := v / h.BucketSize
	if int(idx) >= len(h.Buckets) {
		h.Overflow++
		return
	}
	h.Buckets[idx]++
}

// Mean returns the mean of all samples, or 0 if there are none.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an approximate percentile (0-100) using bucket midpoints.
func (h *Histogram) Percentile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := p / 100 * float64(h.Count)
	var cum float64
	for i, b := range h.Buckets {
		cum += float64(b)
		if cum >= target {
			return (float64(i) + 0.5) * float64(h.BucketSize)
		}
	}
	return float64(h.MaxSample)
}

// Registry is a named collection of statistics belonging to one simulated
// component (a core, a cache, a memory controller). Registries nest to form
// the stats tree of the whole simulated system.
type Registry struct {
	Name     string
	counters []*Counter
	atomics  []*AtomicCounter
	gauges   []*Gauge
	vectors  []*VectorCounter
	hists    []*Histogram
	children []*Registry
}

// NewRegistry creates an empty registry with the given component name.
func NewRegistry(name string) *Registry {
	return &Registry{Name: name}
}

// Counter creates, registers and returns a new counter.
func (r *Registry) Counter(name, desc string) *Counter {
	c := &Counter{Name: name, Desc: desc}
	r.counters = append(r.counters, c)
	return c
}

// Atomic creates, registers and returns a new atomic counter.
func (r *Registry) Atomic(name, desc string) *AtomicCounter {
	c := &AtomicCounter{Name: name, Desc: desc}
	r.atomics = append(r.atomics, c)
	return c
}

// Gauge creates, registers and returns a new gauge.
func (r *Registry) Gauge(name, desc string) *Gauge {
	g := &Gauge{Name: name, Desc: desc}
	r.gauges = append(r.gauges, g)
	return g
}

// Vector creates, registers and returns a new vector counter with n entries.
func (r *Registry) Vector(name, desc string, n int) *VectorCounter {
	v := NewVectorCounter(name, desc, n)
	r.vectors = append(r.vectors, v)
	return v
}

// Histogram creates, registers and returns a new histogram.
func (r *Registry) Histogram(name, desc string, bucketSize uint64, nBuckets int) *Histogram {
	h := NewHistogram(name, desc, bucketSize, nBuckets)
	r.hists = append(r.hists, h)
	return h
}

// Child creates, registers and returns a nested registry.
func (r *Registry) Child(name string) *Registry {
	c := NewRegistry(name)
	r.children = append(r.children, c)
	return c
}

// AddChild attaches an existing registry as a child.
func (r *Registry) AddChild(c *Registry) {
	r.children = append(r.children, c)
}

// Lookup returns the value of a counter addressed by a dotted path such as
// "core-0.instrs". It returns false if the path does not resolve.
func (r *Registry) Lookup(path string) (uint64, bool) {
	parts := strings.Split(path, ".")
	return r.lookup(parts)
}

func (r *Registry) lookup(parts []string) (uint64, bool) {
	if len(parts) == 0 {
		return 0, false
	}
	if len(parts) == 1 {
		for _, c := range r.counters {
			if c.Name == parts[0] {
				return c.V, true
			}
		}
		for _, c := range r.atomics {
			if c.Name == parts[0] {
				return c.Get(), true
			}
		}
		return 0, false
	}
	for _, ch := range r.children {
		if ch.Name == parts[0] {
			return ch.lookup(parts[1:])
		}
	}
	return 0, false
}

// SumCounters returns the sum, over the whole subtree, of all counters with
// the given name. This is how aggregate statistics (total instructions, total
// L3 misses, ...) are derived.
func (r *Registry) SumCounters(name string) uint64 {
	var total uint64
	for _, c := range r.counters {
		if c.Name == name {
			total += c.V
		}
	}
	for _, c := range r.atomics {
		if c.Name == name {
			total += c.Get()
		}
	}
	for _, ch := range r.children {
		total += ch.SumCounters(name)
	}
	return total
}

// MaxCounter returns the maximum value, over the whole subtree, of all
// counters with the given name (e.g., the final cycle count across cores).
func (r *Registry) MaxCounter(name string) uint64 {
	var max uint64
	for _, c := range r.counters {
		if c.Name == name && c.V > max {
			max = c.V
		}
	}
	for _, c := range r.atomics {
		if c.Name == name && c.Get() > max {
			max = c.Get()
		}
	}
	for _, ch := range r.children {
		if m := ch.MaxCounter(name); m > max {
			max = m
		}
	}
	return max
}

// WriteText writes a human-readable dump of the registry tree.
func (r *Registry) WriteText(w io.Writer) error {
	return r.writeText(w, 0)
}

func (r *Registry) writeText(w io.Writer, depth int) error {
	indent := strings.Repeat("  ", depth)
	if _, err := fmt.Fprintf(w, "%s%s:\n", indent, r.Name); err != nil {
		return err
	}
	for _, c := range r.counters {
		if _, err := fmt.Fprintf(w, "%s  %s: %d # %s\n", indent, c.Name, c.V, c.Desc); err != nil {
			return err
		}
	}
	for _, c := range r.atomics {
		if _, err := fmt.Fprintf(w, "%s  %s: %d # %s\n", indent, c.Name, c.Get(), c.Desc); err != nil {
			return err
		}
	}
	for _, g := range r.gauges {
		if _, err := fmt.Fprintf(w, "%s  %s: %d # %s\n", indent, g.Name, g.V, g.Desc); err != nil {
			return err
		}
	}
	for _, v := range r.vectors {
		if _, err := fmt.Fprintf(w, "%s  %s: %v total=%d # %s\n", indent, v.Name, v.Vals, v.Total(), v.Desc); err != nil {
			return err
		}
	}
	for _, h := range r.hists {
		if _, err := fmt.Fprintf(w, "%s  %s: count=%d mean=%.2f max=%d # %s\n",
			indent, h.Name, h.Count, h.Mean(), h.MaxSample, h.Desc); err != nil {
			return err
		}
	}
	for _, ch := range r.children {
		if err := ch.writeText(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes all counters in the subtree as "path,name,value" rows,
// sorted by path, suitable for post-processing by the experiment harness.
func (r *Registry) WriteCSV(w io.Writer) error {
	rows := r.collectCSV("")
	sort.Strings(rows)
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) collectCSV(prefix string) []string {
	path := r.Name
	if prefix != "" {
		path = prefix + "." + r.Name
	}
	var rows []string
	for _, c := range r.counters {
		rows = append(rows, fmt.Sprintf("%s,%s,%d", path, c.Name, c.V))
	}
	for _, c := range r.atomics {
		rows = append(rows, fmt.Sprintf("%s,%s,%d", path, c.Name, c.Get()))
	}
	for _, ch := range r.children {
		rows = append(rows, ch.collectCSV(path)...)
	}
	return rows
}
