// Package stats provides the statistics infrastructure used by every timing
// model in the simulator: scalar counters, vector counters, histograms, and
// hierarchical registries that can be exported as text or CSV.
//
// The original zsim exports statistics through HDF5; this implementation is
// stdlib-only and exports through text and CSV writers, which is sufficient
// for the experiment harness to regenerate every table and figure in the
// paper.
//
// Counters are plain uint64 fields updated by a single goroutine (each core
// or cache model is driven by exactly one host thread during the bound
// phase), so they do not need atomic updates. Aggregation across components
// happens at interval or simulation boundaries.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"zsim/internal/arena"
)

// Counter is a monotonically increasing scalar statistic.
type Counter struct {
	Name string
	Desc string
	V    uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.V++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.V += n }

// Get returns the current value.
func (c *Counter) Get() uint64 { return c.V }

// Set overwrites the counter value. It is used when a model computes the
// value externally (e.g., cycle counters owned by a core model).
func (c *Counter) Set(v uint64) { c.V = v }

// AtomicCounter is a monotonically increasing scalar statistic updated by
// several host threads at once. Components whose hot path is sharded across
// threads (shared caches with striped locking, memory controllers) use it
// instead of Counter, trading a lock-free atomic add for the single-writer
// assumption.
type AtomicCounter struct {
	Name string
	Desc string
	v    atomic.Uint64
}

// Inc adds one to the counter.
func (c *AtomicCounter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *AtomicCounter) Add(n uint64) { c.v.Add(n) }

// Get returns the current value.
func (c *AtomicCounter) Get() uint64 { return c.v.Load() }

// Set overwrites the counter value.
func (c *AtomicCounter) Set(v uint64) { c.v.Store(v) }

// Gauge is a scalar statistic that may go up or down (e.g., occupancy).
type Gauge struct {
	Name string
	Desc string
	V    int64
}

// Add adds delta (possibly negative) to the gauge.
func (g *Gauge) Add(delta int64) { g.V += delta }

// Get returns the current value.
func (g *Gauge) Get() int64 { return g.V }

// VectorCounter is an indexed family of counters sharing one name, such as
// per-bank access counts or per-port issue counts.
type VectorCounter struct {
	Name string
	Desc string
	Vals []uint64
}

// NewVectorCounter creates a vector counter with n entries.
func NewVectorCounter(name, desc string, n int) *VectorCounter {
	v := &VectorCounter{}
	initVectorCounter(v, nil, name, desc, n)
	return v
}

// initVectorCounter is the single construction path for vector counters,
// shared by NewVectorCounter and the arena-backed Registry.Vector.
func initVectorCounter(v *VectorCounter, a *arena.Arena, name, desc string, n int) {
	v.Name, v.Desc = name, desc
	v.Vals = arena.Take[uint64](a, n)
}

// Inc increments entry i.
func (v *VectorCounter) Inc(i int) { v.Vals[i]++ }

// Add adds n to entry i.
func (v *VectorCounter) Add(i int, n uint64) { v.Vals[i] += n }

// Get returns entry i.
func (v *VectorCounter) Get(i int) uint64 { return v.Vals[i] }

// Total returns the sum of all entries.
func (v *VectorCounter) Total() uint64 {
	var t uint64
	for _, x := range v.Vals {
		t += x
	}
	return t
}

// Histogram is a fixed-bucket histogram of non-negative samples, used for
// latency distributions (e.g., memory access latency in the weave phase).
type Histogram struct {
	Name       string
	Desc       string
	BucketSize uint64
	Buckets    []uint64
	Overflow   uint64
	Count      uint64
	Sum        uint64
	MaxSample  uint64
}

// NewHistogram creates a histogram with nBuckets buckets of width bucketSize.
func NewHistogram(name, desc string, bucketSize uint64, nBuckets int) *Histogram {
	h := &Histogram{}
	initHistogram(h, nil, name, desc, bucketSize, nBuckets)
	return h
}

// initHistogram is the single construction path for histograms (validation
// included), shared by NewHistogram and the arena-backed Registry.Histogram.
func initHistogram(h *Histogram, a *arena.Arena, name, desc string, bucketSize uint64, nBuckets int) {
	if bucketSize == 0 {
		bucketSize = 1
	}
	h.Name, h.Desc = name, desc
	h.BucketSize = bucketSize
	h.Buckets = arena.Take[uint64](a, nBuckets)
}

// Sample records one sample.
func (h *Histogram) Sample(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.MaxSample {
		h.MaxSample = v
	}
	idx := v / h.BucketSize
	if int(idx) >= len(h.Buckets) {
		h.Overflow++
		return
	}
	h.Buckets[idx]++
}

// Mean returns the mean of all samples, or 0 if there are none.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an approximate percentile (0-100) using bucket midpoints.
func (h *Histogram) Percentile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := p / 100 * float64(h.Count)
	var cum float64
	for i, b := range h.Buckets {
		cum += float64(b)
		if cum >= target {
			return (float64(i) + 0.5) * float64(h.BucketSize)
		}
	}
	return float64(h.MaxSample)
}

// Registry is a named collection of statistics belonging to one simulated
// component (a core, a cache, a memory controller). Registries nest to form
// the stats tree of the whole simulated system.
//
// Registries and the statistics they register are flat, arena-backed objects
// when the root registry carries an arena (NewRegistryIn): every Counter,
// AtomicCounter, Gauge and child Registry is carved from large type-uniform
// chunks instead of being heap-allocated individually, and indexed children
// (ChildIdx) format their names lazily at export time. Building the stats
// tree of a 1,024-core chip is then a handful of chunk allocations.
type Registry struct {
	// name is the explicit component name; indexed registries (ChildIdx)
	// leave it empty and carry prefix + idx instead, formatting the name only
	// when exporting.
	name   string
	prefix string
	idx    int32

	arena    *arena.Arena
	counters []*Counter
	atomics  []*AtomicCounter
	gauges   []*Gauge
	vectors  []*VectorCounter
	hists    []*Histogram
	children []*Registry
}

// NewRegistry creates an empty registry with the given component name.
func NewRegistry(name string) *Registry {
	return &Registry{name: name}
}

// NewRegistryIn creates a root registry whose statistics tree (counters,
// children, ...) is allocated from the given arena. Children inherit the
// arena.
func NewRegistryIn(name string, a *arena.Arena) *Registry {
	r := arena.One[Registry](a)
	r.name = name
	r.arena = a
	return r
}

// Arena returns the arena backing this registry tree (nil for plain
// registries). Component constructors that receive a registry use it to
// allocate their own bulk state from the same slabs.
func (r *Registry) Arena() *arena.Arena { return r.arena }

// Name returns the component name, formatting indexed names lazily.
func (r *Registry) Name() string {
	if r.prefix == "" {
		return r.name
	}
	return fmt.Sprintf("%s-%d", r.prefix, r.idx)
}

// matchName reports whether the registry's name equals s, without formatting
// indexed names. It must accept exactly the strings Name() would produce:
// leading zeros and out-of-range suffixes are rejected, matching the strict
// string comparison this replaces.
func (r *Registry) matchName(s string) bool {
	if r.prefix == "" {
		return r.name == s
	}
	n := len(r.prefix)
	if len(s) < n+2 || s[:n] != r.prefix || s[n] != '-' {
		return false
	}
	digits := s[n+1:]
	if len(digits) > 1 && digits[0] == '0' {
		return false // Name() never formats leading zeros
	}
	idx := int64(0)
	for i := 0; i < len(digits); i++ {
		ch := digits[i]
		if ch < '0' || ch > '9' {
			return false
		}
		idx = idx*10 + int64(ch-'0')
		if idx > math.MaxInt32 {
			return false
		}
	}
	return int32(idx) == r.idx
}

// Counter creates, registers and returns a new counter.
func (r *Registry) Counter(name, desc string) *Counter {
	c := arena.One[Counter](r.arena)
	c.Name, c.Desc = name, desc
	if r.counters == nil {
		r.counters = arena.TakeCap[*Counter](r.arena, 0, 10)
	}
	r.counters = append(r.counters, c)
	return c
}

// Atomic creates, registers and returns a new atomic counter.
func (r *Registry) Atomic(name, desc string) *AtomicCounter {
	c := arena.One[AtomicCounter](r.arena)
	c.Name, c.Desc = name, desc
	if r.atomics == nil {
		r.atomics = arena.TakeCap[*AtomicCounter](r.arena, 0, 6)
	}
	r.atomics = append(r.atomics, c)
	return c
}

// Gauge creates, registers and returns a new gauge.
func (r *Registry) Gauge(name, desc string) *Gauge {
	g := arena.One[Gauge](r.arena)
	g.Name, g.Desc = name, desc
	r.gauges = append(r.gauges, g)
	return g
}

// Vector creates, registers and returns a new vector counter with n entries.
func (r *Registry) Vector(name, desc string, n int) *VectorCounter {
	v := arena.One[VectorCounter](r.arena)
	initVectorCounter(v, r.arena, name, desc, n)
	r.vectors = append(r.vectors, v)
	return v
}

// Histogram creates, registers and returns a new histogram.
func (r *Registry) Histogram(name, desc string, bucketSize uint64, nBuckets int) *Histogram {
	h := arena.One[Histogram](r.arena)
	initHistogram(h, r.arena, name, desc, bucketSize, nBuckets)
	r.hists = append(r.hists, h)
	return h
}

// Child creates, registers and returns a nested registry (inheriting the
// arena, if any).
func (r *Registry) Child(name string) *Registry {
	c := arena.One[Registry](r.arena)
	c.name = name
	c.arena = r.arena
	r.children = append(r.children, c)
	return c
}

// ChildIdx creates, registers and returns a nested registry whose name is
// "<prefix>-<idx>", formatted lazily at export time so that building
// thousands of per-component registries performs no string allocation.
func (r *Registry) ChildIdx(prefix string, idx int) *Registry {
	c := arena.One[Registry](r.arena)
	c.prefix = prefix
	c.idx = int32(idx)
	c.arena = r.arena
	r.children = append(r.children, c)
	return c
}

// AddChild attaches an existing registry as a child.
func (r *Registry) AddChild(c *Registry) {
	r.children = append(r.children, c)
}

// Reset zeroes every statistic in the subtree (counters, atomics, gauges,
// vectors, histograms) without disturbing the tree structure or names. It is
// the statistics half of warm-simulator reuse: a reused system starts from
// the exact zero state a freshly built stats tree has.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.V = 0
	}
	for _, c := range r.atomics {
		c.Set(0)
	}
	for _, g := range r.gauges {
		g.V = 0
	}
	for _, v := range r.vectors {
		clear(v.Vals)
	}
	for _, h := range r.hists {
		clear(h.Buckets)
		h.Overflow, h.Count, h.Sum, h.MaxSample = 0, 0, 0, 0
	}
	for _, ch := range r.children {
		ch.Reset()
	}
}

// Lookup returns the value of a counter addressed by a dotted path such as
// "core-0.instrs". It returns false if the path does not resolve.
func (r *Registry) Lookup(path string) (uint64, bool) {
	parts := strings.Split(path, ".")
	return r.lookup(parts)
}

func (r *Registry) lookup(parts []string) (uint64, bool) {
	if len(parts) == 0 {
		return 0, false
	}
	if len(parts) == 1 {
		for _, c := range r.counters {
			if c.Name == parts[0] {
				return c.V, true
			}
		}
		for _, c := range r.atomics {
			if c.Name == parts[0] {
				return c.Get(), true
			}
		}
		return 0, false
	}
	for _, ch := range r.children {
		if ch.matchName(parts[0]) {
			return ch.lookup(parts[1:])
		}
	}
	return 0, false
}

// SumCounters returns the sum, over the whole subtree, of all counters with
// the given name. This is how aggregate statistics (total instructions, total
// L3 misses, ...) are derived.
func (r *Registry) SumCounters(name string) uint64 {
	var total uint64
	for _, c := range r.counters {
		if c.Name == name {
			total += c.V
		}
	}
	for _, c := range r.atomics {
		if c.Name == name {
			total += c.Get()
		}
	}
	for _, ch := range r.children {
		total += ch.SumCounters(name)
	}
	return total
}

// MaxCounter returns the maximum value, over the whole subtree, of all
// counters with the given name (e.g., the final cycle count across cores).
func (r *Registry) MaxCounter(name string) uint64 {
	var max uint64
	for _, c := range r.counters {
		if c.Name == name && c.V > max {
			max = c.V
		}
	}
	for _, c := range r.atomics {
		if c.Name == name && c.Get() > max {
			max = c.Get()
		}
	}
	for _, ch := range r.children {
		if m := ch.MaxCounter(name); m > max {
			max = m
		}
	}
	return max
}

// WriteText writes a human-readable dump of the registry tree.
func (r *Registry) WriteText(w io.Writer) error {
	return r.writeText(w, 0)
}

func (r *Registry) writeText(w io.Writer, depth int) error {
	indent := strings.Repeat("  ", depth)
	if _, err := fmt.Fprintf(w, "%s%s:\n", indent, r.Name()); err != nil {
		return err
	}
	for _, c := range r.counters {
		if _, err := fmt.Fprintf(w, "%s  %s: %d # %s\n", indent, c.Name, c.V, c.Desc); err != nil {
			return err
		}
	}
	for _, c := range r.atomics {
		if _, err := fmt.Fprintf(w, "%s  %s: %d # %s\n", indent, c.Name, c.Get(), c.Desc); err != nil {
			return err
		}
	}
	for _, g := range r.gauges {
		if _, err := fmt.Fprintf(w, "%s  %s: %d # %s\n", indent, g.Name, g.V, g.Desc); err != nil {
			return err
		}
	}
	for _, v := range r.vectors {
		if _, err := fmt.Fprintf(w, "%s  %s: %v total=%d # %s\n", indent, v.Name, v.Vals, v.Total(), v.Desc); err != nil {
			return err
		}
	}
	for _, h := range r.hists {
		if _, err := fmt.Fprintf(w, "%s  %s: count=%d mean=%.2f max=%d # %s\n",
			indent, h.Name, h.Count, h.Mean(), h.MaxSample, h.Desc); err != nil {
			return err
		}
	}
	for _, ch := range r.children {
		if err := ch.writeText(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes all counters in the subtree as "path,name,value" rows,
// sorted by path, suitable for post-processing by the experiment harness.
func (r *Registry) WriteCSV(w io.Writer) error {
	rows := r.collectCSV("")
	sort.Strings(rows)
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) collectCSV(prefix string) []string {
	path := r.Name()
	if prefix != "" {
		path = prefix + "." + r.Name()
	}
	var rows []string
	for _, c := range r.counters {
		rows = append(rows, fmt.Sprintf("%s,%s,%d", path, c.Name, c.V))
	}
	for _, c := range r.atomics {
		rows = append(rows, fmt.Sprintf("%s,%s,%d", path, c.Name, c.Get()))
	}
	for _, ch := range r.children {
		rows = append(rows, ch.collectCSV(path)...)
	}
	return rows
}
