package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry("core-0")
	c := r.Counter("instrs", "instructions executed")
	if c.Get() != 0 {
		t.Fatalf("new counter should be zero, got %d", c.Get())
	}
	c.Inc()
	c.Add(9)
	if c.Get() != 10 {
		t.Fatalf("expected 10, got %d", c.Get())
	}
	c.Set(5)
	if c.Get() != 5 {
		t.Fatalf("expected 5 after Set, got %d", c.Get())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry("q")
	g := r.Gauge("occupancy", "queue occupancy")
	g.Add(3)
	g.Add(-1)
	if g.Get() != 2 {
		t.Fatalf("expected 2, got %d", g.Get())
	}
}

func TestVectorCounter(t *testing.T) {
	v := NewVectorCounter("ports", "per-port issues", 6)
	v.Inc(0)
	v.Add(5, 3)
	v.Inc(5)
	if v.Get(0) != 1 || v.Get(5) != 4 {
		t.Fatalf("unexpected vector values: %v", v.Vals)
	}
	if v.Total() != 5 {
		t.Fatalf("expected total 5, got %d", v.Total())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat", "latency", 10, 10)
	for i := uint64(0); i < 100; i++ {
		h.Sample(i)
	}
	if h.Count != 100 {
		t.Fatalf("expected 100 samples, got %d", h.Count)
	}
	if h.Overflow != 0 {
		t.Fatalf("no sample should overflow, got %d", h.Overflow)
	}
	if got := h.Mean(); math.Abs(got-49.5) > 1e-9 {
		t.Fatalf("expected mean 49.5, got %f", got)
	}
	h.Sample(1000)
	if h.Overflow != 1 {
		t.Fatalf("expected 1 overflow, got %d", h.Overflow)
	}
	if h.MaxSample != 1000 {
		t.Fatalf("expected max 1000, got %d", h.MaxSample)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram("lat", "latency", 1, 100)
	for i := uint64(0); i < 100; i++ {
		h.Sample(i)
	}
	p50 := h.Percentile(50)
	if p50 < 45 || p50 > 55 {
		t.Fatalf("p50 should be near 50, got %f", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 95 {
		t.Fatalf("p99 should be >= 95, got %f", p99)
	}
}

func TestHistogramZeroBucketSize(t *testing.T) {
	h := NewHistogram("x", "", 0, 4)
	if h.BucketSize != 1 {
		t.Fatalf("bucket size 0 should be promoted to 1, got %d", h.BucketSize)
	}
	h.Sample(2)
	if h.Buckets[2] != 1 {
		t.Fatalf("sample should land in bucket 2")
	}
}

func TestRegistryLookupAndSum(t *testing.T) {
	root := NewRegistry("sim")
	c0 := root.Child("core-0")
	c1 := root.Child("core-1")
	c0.Counter("instrs", "").Add(100)
	c1.Counter("instrs", "").Add(250)
	c0.Counter("cycles", "").Add(400)
	c1.Counter("cycles", "").Add(500)

	if v, ok := root.Lookup("core-1.instrs"); !ok || v != 250 {
		t.Fatalf("lookup core-1.instrs: got %d, %v", v, ok)
	}
	if _, ok := root.Lookup("core-7.instrs"); ok {
		t.Fatalf("lookup of missing child should fail")
	}
	if _, ok := root.Lookup("core-0.bogus"); ok {
		t.Fatalf("lookup of missing counter should fail")
	}
	if _, ok := root.Lookup(""); ok {
		t.Fatalf("lookup of empty path should fail")
	}
	if got := root.SumCounters("instrs"); got != 350 {
		t.Fatalf("SumCounters: expected 350, got %d", got)
	}
	if got := root.MaxCounter("cycles"); got != 500 {
		t.Fatalf("MaxCounter: expected 500, got %d", got)
	}
}

func TestRegistryWriteText(t *testing.T) {
	root := NewRegistry("sim")
	c := root.Child("core-0")
	c.Counter("instrs", "instructions").Add(42)
	c.Vector("ports", "per port", 2).Inc(1)
	c.Histogram("lat", "latency", 1, 4).Sample(3)
	c.Gauge("occ", "occupancy").Add(7)
	var buf bytes.Buffer
	if err := root.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"sim:", "core-0:", "instrs: 42", "ports:", "lat:", "occ: 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryWriteCSV(t *testing.T) {
	root := NewRegistry("sim")
	root.Child("b").Counter("x", "").Add(2)
	root.Child("a").Counter("x", "").Add(1)
	var buf bytes.Buffer
	if err := root.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 rows, got %d: %v", len(lines), lines)
	}
	// Rows are sorted by path.
	if !strings.HasPrefix(lines[0], "sim.a,") || !strings.HasPrefix(lines[1], "sim.b,") {
		t.Fatalf("rows not sorted: %v", lines)
	}
}

func TestMetricsFinalize(t *testing.T) {
	m := &Metrics{
		Workload:  "w",
		Model:     "ooo",
		Instrs:    2000,
		Uops:      2400,
		Cycles:    1000,
		L1DMisses: 20,
		L3Misses:  2,
		HostNanos: 1e9,
	}
	m.Finalize()
	if math.Abs(m.IPC-2.0) > 1e-9 {
		t.Fatalf("IPC: expected 2.0, got %f", m.IPC)
	}
	if math.Abs(m.UPC-2.4) > 1e-9 {
		t.Fatalf("UPC: expected 2.4, got %f", m.UPC)
	}
	if math.Abs(m.L1DMPKI-10.0) > 1e-9 {
		t.Fatalf("L1D MPKI: expected 10, got %f", m.L1DMPKI)
	}
	if math.Abs(m.L3MPKI-1.0) > 1e-9 {
		t.Fatalf("L3 MPKI: expected 1, got %f", m.L3MPKI)
	}
	if math.Abs(m.SimMIPS-0.002) > 1e-9 {
		t.Fatalf("SimMIPS: expected 0.002, got %f", m.SimMIPS)
	}
}

func TestMetricsFinalizeZeroSafe(t *testing.T) {
	m := &Metrics{}
	m.Finalize()
	if m.IPC != 0 || m.L1DMPKI != 0 || m.SimMIPS != 0 {
		t.Fatalf("zero metrics should remain zero: %+v", m)
	}
}

func TestPerfError(t *testing.T) {
	ref := &Metrics{Cycles: 1000}
	fast := &Metrics{Cycles: 800} // finishes sooner -> higher perf
	slow := &Metrics{Cycles: 1250}
	if e := fast.PerfError(ref); math.Abs(e-0.25) > 1e-9 {
		t.Fatalf("expected +0.25, got %f", e)
	}
	if e := slow.PerfError(ref); math.Abs(e-(-0.2)) > 1e-9 {
		t.Fatalf("expected -0.2, got %f", e)
	}
	zero := &Metrics{}
	if e := zero.PerfError(ref); e != 0 {
		t.Fatalf("zero-cycle metrics should yield 0 error, got %f", e)
	}
}

func TestMPKIError(t *testing.T) {
	a := &Metrics{L1IMPKI: 1, L1DMPKI: 5, L2MPKI: 2, L3MPKI: 0.5, BranchMPKI: 3}
	b := &Metrics{L1IMPKI: 2, L1DMPKI: 4, L2MPKI: 2, L3MPKI: 1.0, BranchMPKI: 1}
	if e := a.MPKIError(b, "l1i"); math.Abs(e+1) > 1e-9 {
		t.Fatalf("l1i error: expected -1, got %f", e)
	}
	if e := a.MPKIError(b, "l1d"); math.Abs(e-1) > 1e-9 {
		t.Fatalf("l1d error: expected 1, got %f", e)
	}
	if e := a.MPKIError(b, "branch"); math.Abs(e-2) > 1e-9 {
		t.Fatalf("branch error: expected 2, got %f", e)
	}
	if e := a.MPKIError(b, "bogus"); e != 0 {
		t.Fatalf("unknown level should give 0, got %f", e)
	}
}

func TestHMean(t *testing.T) {
	if got := HMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("hmean of equal values should equal them, got %f", got)
	}
	got := HMean([]float64{1, 4})
	if math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("hmean(1,4) should be 1.6, got %f", got)
	}
	if got := HMean(nil); got != 0 {
		t.Fatalf("hmean of empty should be 0, got %f", got)
	}
	if got := HMean([]float64{0, -1}); got != 0 {
		t.Fatalf("hmean of non-positive values should be 0, got %f", got)
	}
}

func TestMeanMedianGeoMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mean: %f", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("mean of empty: %f", got)
	}
	if got := MeanAbs([]float64{-1, 1, -4}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("meanabs: %f", got)
	}
	if got := MaxAbs([]float64{-3, 2}); math.Abs(got-3) > 1e-9 {
		t.Fatalf("maxabs: %f", got)
	}
	if got := Median([]float64{5, 1, 3}); math.Abs(got-3) > 1e-9 {
		t.Fatalf("median odd: %f", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("median even: %f", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("median empty: %f", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean: %f", got)
	}
	if got := GeoMean([]float64{-1}); got != 0 {
		t.Fatalf("geomean of non-positive: %f", got)
	}
}

// Property: the harmonic mean is never larger than the arithmetic mean for
// positive inputs, and both lie within [min, max].
func TestHMeanPropertyAMGMHM(t *testing.T) {
	f := func(raw []uint16) bool {
		var vals []float64
		for _, r := range raw {
			vals = append(vals, float64(r%1000)+1) // positive, bounded
		}
		if len(vals) == 0 {
			return true
		}
		am := Mean(vals)
		hm := HMean(vals)
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return hm <= am+1e-9 && hm >= min-1e-9 && am <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram Count always equals the number of samples, and the sum
// of buckets plus overflow equals Count.
func TestHistogramCountInvariant(t *testing.T) {
	f := func(samples []uint16) bool {
		h := NewHistogram("x", "", 7, 16)
		for _, s := range samples {
			h.Sample(uint64(s))
		}
		var inBuckets uint64
		for _, b := range h.Buckets {
			inBuckets += b
		}
		return h.Count == uint64(len(samples)) && inBuckets+h.Overflow == h.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedChildLookup(t *testing.T) {
	root := NewRegistryIn("sys", nil)
	c7 := root.ChildIdx("l2", 7).Counter("hits", "h")
	c0 := root.ChildIdx("l2", 0).Counter("hits", "h")
	c7.Add(70)
	c0.Add(5)
	if got, ok := root.Lookup("l2-7.hits"); !ok || got != 70 {
		t.Fatalf("l2-7 lookup: %d %v", got, ok)
	}
	if got, ok := root.Lookup("l2-0.hits"); !ok || got != 5 {
		t.Fatalf("l2-0 lookup: %d %v", got, ok)
	}
	// Strings Name() would never produce must not match.
	for _, bad := range []string{"l2-007.hits", "l2-4294967296.hits", "l2-.hits", "l2-7x.hits", "l2.hits", "l2-99999999999999999999.hits"} {
		if _, ok := root.Lookup(bad); ok {
			t.Fatalf("lookup %q should not resolve", bad)
		}
	}
	if root.ChildIdx("l2", 7).Name() != "l2-7" {
		t.Fatalf("lazy name formatting broken")
	}
}
