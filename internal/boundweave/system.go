// Package boundweave implements the bound-weave two-phase parallel simulation
// algorithm that is the paper's second contribution (Section 3.2), together
// with the system builder that assembles cores, cache hierarchies, networks
// and memory controllers from a configuration.
//
// Simulation proceeds in small intervals (1,000-10,000 cycles). In the bound
// phase, every scheduled core is simulated in parallel assuming zero-load
// latencies, bounded in skew by the interval barrier, while recording the
// hierarchy hops of every access that misses beyond the private cache levels.
// In the weave phase, those hops become events that are replayed in full
// order per component across parallel domains, applying detailed contention
// models (pipelined L3 banks with limited MSHRs, DDR3 memory controllers).
// The extra latency observed for each core's accesses is then fed back into
// the core's clocks before the next interval.
package boundweave

import (
	"fmt"

	"zsim/internal/arena"
	"zsim/internal/cache"
	"zsim/internal/config"
	"zsim/internal/core"
	"zsim/internal/memctrl"
	"zsim/internal/network"
	"zsim/internal/noc"
	"zsim/internal/stats"
)

// System is the fully built simulated chip: cores, hierarchy, network and
// memory, plus the component-ID and domain maps the weave phase needs.
type System struct {
	Cfg  *config.System
	Root *stats.Registry

	Cores []core.Core
	L1I   []*cache.Cache
	L1D   []*cache.Cache
	L2    []*cache.Cache // one per tile (or per core when CoresPerTile == 1)
	Banks []*cache.Cache // L3 banks
	L3    *cache.Banked
	Mems  []memctrl.Controller
	Net   network.Model

	// Fabric is the weave-phase NoC contention subsystem (nil unless the
	// configuration enables both Contention and NOCContention): one router
	// per topology node, each a weave component of its own.
	Fabric *noc.Fabric
	// RouterComp maps topology node -> the node's router component ID (only
	// when Fabric is non-nil).
	RouterComp []int

	// Component IDs.
	CoreComp []int
	BankComp []int
	MemComp  []int
	// SharedComp marks component IDs whose accesses are retimed in the weave
	// phase (L3 banks and memory controllers). Router components are not in
	// it: a traversal only matters when the bank or controller behind it is
	// already weave-retimed.
	SharedComp map[int]bool
	// CompDomain maps every weave-relevant component to its domain.
	CompDomain map[int]int
	NumDomains int
}

// BuildSystem constructs the simulated chip described by the configuration.
// One construction arena, hung off the root stats registry, feeds every
// component's bulk state (stats counters, cache sets and stripes, predictor
// tables), so building a 1,024-core chip performs a handful of large chunk
// allocations instead of millions of small ones.
func BuildSystem(cfg *config.System) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRegistryIn(cfg.Name, arena.New())
	sys := &System{
		Cfg:        cfg,
		Root:       root,
		SharedComp: make(map[int]bool),
		CompDomain: make(map[int]int),
	}

	nextComp := 0
	alloc := func() int { v := nextComp; nextComp++; return v }

	// Network model (zero-load).
	tiles := cfg.NumTiles()
	switch cfg.Network {
	case config.NetRing:
		sys.Net = network.NewRing(tiles, cfg.NetHopCycles, cfg.NetInjection)
	case config.NetMesh:
		sys.Net = network.NewMeshForTiles(tiles, cfg.NetHopCycles, cfg.NetRouterStage, cfg.NetInjection)
	default:
		sys.Net = &network.Flat{Cycles: cfg.NetInjection + cfg.NetHopCycles}
	}

	// Memory controllers.
	memReg := root.Child("mem")
	var memLevels []cache.Level
	for m := 0; m < cfg.MemControllers; m++ {
		comp := alloc()
		name := fmt.Sprintf("mem-%d", m)
		var ctrl memctrl.Controller
		switch cfg.MemModel {
		case config.MemMD1:
			ctrl = memctrl.NewMD1(name, comp, cfg.MemLatency, cfg.MemServiceCycles, memReg.Child(name))
		default:
			ctrl = memctrl.NewSimple(name, comp, cfg.MemLatency, memReg.Child(name))
		}
		sys.Mems = append(sys.Mems, ctrl)
		sys.MemComp = append(sys.MemComp, comp)
		sys.SharedComp[comp] = true
		memLevels = append(memLevels, ctrl)
	}
	memRouter := cache.NewMemRouter("mem-router", memLevels, cfg.NetHopCycles)

	// L3 banks (fully shared, inclusive, one directory over all L2s).
	l3Reg := root.Child("l3")
	bankSizeKB := cfg.L3.SizeKB / cfg.L3.Banks
	if bankSizeKB < 1 {
		bankSizeKB = 1
	}
	for b := 0; b < cfg.L3.Banks; b++ {
		comp := alloc()
		bank := cache.New(cache.Config{
			NamePrefix: "l3b",
			NameIdx:    b,
			SizeKB:     bankSizeKB,
			Ways:       cfg.L3.Ways,
			Latency:    cfg.L3.Latency,
			MSHRs:      cfg.L3.MSHRs,
			RandomRepl: cfg.L3.RandomRepl,
		}, comp, l3Reg.ChildIdx("l3b", b))
		bank.SetParent(memRouter)
		sys.Banks = append(sys.Banks, bank)
		sys.BankComp = append(sys.BankComp, comp)
		sys.SharedComp[comp] = true
	}
	sys.L3 = cache.NewBanked("l3", sys.Banks, cfg.NetInjection+cfg.NetHopCycles)
	// Distance-dependent latency: from the requesting core's tile to the
	// bank's tile, using the configured topology.
	coresPerTile := cfg.CoresPerTile
	net := sys.Net
	banksPerTile := maxInt(cfg.L3.Banks/tiles, 1)
	sys.L3.SetDistanceFunc(func(coreID, bank int) uint32 {
		srcTile := coreID / coresPerTile
		dstTile := bank / banksPerTile
		return net.Latency(srcTile, dstTile)
	})

	// L2 caches: one per tile (shared within the tile) or one per core.
	l2Reg := root.Child("l2")
	numL2 := tiles
	for i := 0; i < numL2; i++ {
		comp := alloc()
		l2 := cache.New(cache.Config{
			NamePrefix: "l2",
			NameIdx:    i,
			SizeKB:     cfg.L2.SizeKB,
			Ways:       cfg.L2.Ways,
			Latency:    cfg.L2.Latency,
			MSHRs:      cfg.L2.MSHRs,
		}, comp, l2Reg.ChildIdx("l2", i))
		l2.SetParent(sys.L3)
		sys.L2 = append(sys.L2, l2)
	}
	// Register every L2 as a child of every L3 bank, in the same order, so
	// directory indices agree across banks.
	for _, bank := range sys.Banks {
		for _, l2 := range sys.L2 {
			bank.AddChild(l2)
		}
	}

	// Per-core L1s and cores.
	coreReg := root.Child("cores")
	for cID := 0; cID < cfg.NumCores; cID++ {
		tile := cID / coresPerTile
		l1iComp := alloc()
		l1dComp := alloc()
		l1i := cache.New(cache.Config{
			NamePrefix: "l1i", NameIdx: cID, SizeKB: cfg.L1I.SizeKB, Ways: cfg.L1I.Ways, Latency: cfg.L1I.Latency,
		}, l1iComp, coreReg.ChildIdx("l1i", cID))
		l1d := cache.New(cache.Config{
			NamePrefix: "l1d", NameIdx: cID, SizeKB: cfg.L1D.SizeKB, Ways: cfg.L1D.Ways, Latency: cfg.L1D.Latency,
		}, l1dComp, coreReg.ChildIdx("l1d", cID))
		l2 := sys.L2[tile]
		l1i.SetParent(l2)
		l1d.SetParent(l2)
		l2.AddChild(l1i)
		l2.AddChild(l1d)
		sys.L1I = append(sys.L1I, l1i)
		sys.L1D = append(sys.L1D, l1d)

		coreComp := alloc()
		sys.CoreComp = append(sys.CoreComp, coreComp)
		ports := core.MemPorts{L1I: l1i, L1D: l1d}
		reg := coreReg.ChildIdx("core", cID)
		var c core.Core
		switch cfg.CoreModel {
		case config.CoreIPC1:
			c = core.NewIPC1(cID, ports, reg)
		default:
			c = core.NewOOO(cID, oooConfigFrom(cfg.OOO), ports, reg)
		}
		sys.Cores = append(sys.Cores, c)
	}

	// Weave-phase NoC contention: one router component per topology node,
	// allocated after every pre-existing component so that enabling the
	// subsystem never renumbers cores, banks or controllers (and disabling it
	// leaves the component table bit-identical to a build without it).
	if cfg.Contention && cfg.NOCContention {
		topo, ok := sys.Net.(network.Topology)
		if !ok {
			return nil, fmt.Errorf("boundweave: nocContention requires a routed topology, %s is not one", sys.Net.Name())
		}
		nodes := topo.Nodes()
		// A 64 B line plus an 8 B header, split into link-width flits.
		packetFlits := (cache.LineSize + 8 + cfg.NOCLinkBytes - 1) / cfg.NOCLinkBytes
		queueDepth := cfg.NOCQueueDepth
		if queueDepth < 0 {
			queueDepth = 0 // negative config value = unbounded
		}
		sys.Fabric = noc.NewFabric(topo, noc.Config{
			PacketFlits:   packetFlits,
			CyclesPerFlit: 1,
			QueueDepth:    queueDepth,
			MemHopLatency: cfg.NetHopCycles,
		}, root.Child("noc"))
		sys.RouterComp = arena.Take[int](root.Arena(), nodes)
		for n := range sys.RouterComp {
			sys.RouterComp[n] = alloc()
		}
		// Traversal -> topology-node resolvers. They use the same tile
		// placement as the zero-load distance function, normalized into the
		// node range so the weave translation can index router tables
		// directly.
		sys.L3.SetNetNodeFunc(func(coreID, bank int) (src, dst int) {
			return (coreID / coresPerTile) % nodes, (bank / banksPerTile) % nodes
		})
		numCtrls := len(sys.Mems)
		l3 := sys.L3
		memRouter.SetNetNodeFunc(func(lineAddr uint64, ctrl int) (src, dst int) {
			// src is the tile of the bank that owns (and is forwarding) the
			// line: the router whose memory-egress port the weave phase
			// occupies — the single hop the bound phase charges, so the
			// traversal is NOT routed across the mesh. dst records the
			// controller's home node in the hop for trace consumers only.
			return (l3.BankOf(lineAddr) / banksPerTile) % nodes, ctrl * nodes / numCtrls
		})
	}

	// Domain assignment. Cores keep contiguous vertical slices (Figure 3):
	// a core's chain events mostly stay within its own slice. The hot shared
	// components — cache banks, memory controllers, NoC routers — are dealt
	// round-robin instead, so the handful of contended components in a
	// hotspot workload lands on *different* domains and the parallel weave
	// has independent work to run concurrently (a contiguous split of, say,
	// 4 banks over 4 domains is identical to round-robin, but contiguous
	// placement of 64 routers would pin each mesh quadrant — and thus a
	// hotspot's whole neighborhood — on one domain). Results are unaffected
	// by the partition: the weave order at every component is a pure
	// function of the bound phase (TestDeterministicAcrossDomainCount).
	sys.NumDomains = cfg.WeaveDomains
	if sys.NumDomains < 1 {
		sys.NumDomains = 1
	}
	for cID, comp := range sys.CoreComp {
		sys.CompDomain[comp] = cID * sys.NumDomains / cfg.NumCores
	}
	for b, comp := range sys.BankComp {
		sys.CompDomain[comp] = b % sys.NumDomains
	}
	for m, comp := range sys.MemComp {
		sys.CompDomain[comp] = m % sys.NumDomains
	}
	for n, comp := range sys.RouterComp {
		sys.CompDomain[comp] = n % sys.NumDomains
	}
	return sys, nil
}

// Reset rewinds the built system to its just-constructed state for warm
// reuse: every counter in the stats registry tree is zeroed and every
// stateful component (cores, caches, memory controllers, NoC routers)
// restores its architectural and timing state. The construction arena is
// deliberately NOT reset — it owns the components' live backing storage.
// Core recorders and observers are detached by the core resets; the caller
// (Simulator.Reset) re-installs them.
func (s *System) Reset() {
	s.Root.Reset()
	for _, c := range s.Cores {
		c.Reset()
	}
	for _, c := range s.L1I {
		c.Reset()
	}
	for _, c := range s.L1D {
		c.Reset()
	}
	for _, c := range s.L2 {
		c.Reset()
	}
	for _, b := range s.Banks {
		b.Reset()
	}
	for _, m := range s.Mems {
		if r, ok := m.(interface{ Reset() }); ok {
			r.Reset()
		}
	}
	if s.Fabric != nil {
		s.Fabric.Reset()
	}
}

func oooConfigFrom(p config.OOOParams) core.OOOConfig {
	cfg := core.OOOWestmere()
	if p.IssueWidth > 0 {
		cfg.IssueWidth = p.IssueWidth
	}
	if p.RetireWidth > 0 {
		cfg.RetireWidth = p.RetireWidth
	}
	if p.ROBSize > 0 {
		cfg.ROBSize = p.ROBSize
	}
	if p.LoadQueueSize > 0 {
		cfg.LoadQueueSize = p.LoadQueueSize
	}
	if p.StoreQueueSize > 0 {
		cfg.StoreQueueSize = p.StoreQueueSize
	}
	if p.FetchBytesPerCyc > 0 {
		cfg.FetchBytesPerCyc = p.FetchBytesPerCyc
	}
	if p.MispredictCycles > 0 {
		cfg.MispredictCycles = p.MispredictCycles
	}
	return cfg
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Metrics aggregates the system's counters into the harness's Metrics form.
func (s *System) Metrics() *stats.Metrics {
	m := &stats.Metrics{
		Workload: "",
		Model:    string(s.Cfg.CoreModel),
		Cores:    len(s.Cores),
	}
	for _, c := range s.Cores {
		m.Instrs += c.Instrs()
		m.Uops += c.Uops()
		m.CoreCycles += c.Cycle()
		if c.Cycle() > m.Cycles {
			m.Cycles = c.Cycle()
		}
		_, miss := c.BranchStats()
		m.BranchMisses += miss
	}
	for _, l1 := range s.L1I {
		m.L1IMisses += l1.Misses.Get()
	}
	for _, l1 := range s.L1D {
		m.L1DMisses += l1.Misses.Get()
	}
	for _, l2 := range s.L2 {
		m.L2Misses += l2.Misses.Get()
	}
	for _, b := range s.Banks {
		m.L3Misses += b.Misses.Get()
	}
	for _, mc := range s.Mems {
		m.MemReads += mc.Reads()
		m.MemWrites += mc.Writes()
	}
	m.Finalize()
	return m
}
