package boundweave

// The failure matrix of the robustness layer: every abnormal-stop path —
// caller cancellation, wall-time watchdog, cycle limit, deadlock, worker
// panic — must stop the run at a clean boundary, report the right typed
// reason, keep partial statistics valid, and leave the process fully
// reusable for the next simulation.

import (
	"runtime"
	"testing"
	"time"

	"zsim/internal/config"
	"zsim/internal/runctl"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// endlessSim builds a small simulator whose workload never finishes on its
// own, so only the robustness layer can stop it.
func endlessSim(t *testing.T, opts Options) *Simulator {
	t.Helper()
	cfg := config.SmallTest()
	cfg.NumCores = 2
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	p := trace.DefaultParams()
	p.BlocksPerThread = 1 << 30
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(trace.New("endless", p, cfg.NumCores))
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.HostThreads == 0 {
		opts.HostThreads = 1
	}
	return NewSimulator(sys, sched, opts)
}

// runAnother proves the process is reusable after a failure: a fresh
// simulation must still run to completion cleanly.
func runAnother(t *testing.T) {
	t.Helper()
	cfg := config.SmallTest()
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem after failure: %v", err)
	}
	p := trace.DefaultParams()
	p.BlocksPerThread = 50
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(trace.New("after", p, cfg.NumCores))
	sim := NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 2})
	if n := sim.Run(); n == 0 {
		t.Fatalf("follow-up run after a failure did no work")
	}
	if sim.Reason != runctl.ReasonNone {
		t.Fatalf("follow-up run should be clean, got %v", sim.Reason)
	}
}

func TestRunCancelledMidRun(t *testing.T) {
	ctl := new(runctl.Token)
	sim := endlessSim(t, Options{Ctl: ctl, MaxIntervals: 1 << 30})
	go func() {
		for sim.instrsTotal.Load() == 0 { // let it make some progress first
			time.Sleep(100 * time.Microsecond)
		}
		ctl.Cancel(runctl.ReasonCancelled)
	}()
	done := make(chan uint64, 1)
	go func() { done <- sim.Run() }()
	select {
	case n := <-done:
		if n == 0 {
			t.Fatalf("cancelled run should report partial instructions")
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("cancellation did not stop the run")
	}
	if sim.Reason != runctl.ReasonCancelled {
		t.Fatalf("reason = %v, want cancelled", sim.Reason)
	}
	if sim.Intervals == 0 || sim.Sys.Metrics().Instrs == 0 {
		t.Fatalf("partial metrics should survive cancellation")
	}
	runAnother(t)
}

func TestRunWallTimeWatchdog(t *testing.T) {
	sim := endlessSim(t, Options{MaxWallTime: 20 * time.Millisecond})
	start := time.Now()
	sim.Run()
	elapsed := time.Since(start)
	if sim.Reason != runctl.ReasonDeadline {
		t.Fatalf("reason = %v, want deadline-exceeded", sim.Reason)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("watchdog stop took %v", elapsed)
	}
	if sim.Sys.Metrics().Instrs == 0 {
		t.Fatalf("overrun run should keep partial metrics")
	}
	runAnother(t)
}

func TestRunCycleLimit(t *testing.T) {
	sim := endlessSim(t, Options{MaxCycles: 10_000})
	sim.Run()
	if sim.Reason != runctl.ReasonCycleLimit {
		t.Fatalf("reason = %v, want cycle-limit", sim.Reason)
	}
	// The limit is enforced at the interval boundary, so the overshoot is at
	// most one interval plus one syscall fast-forward.
	if sim.GlobalCycle() < 10_000 {
		t.Fatalf("run stopped before the cycle limit: %d", sim.GlobalCycle())
	}
	runAnother(t)
}

func TestRunDeadlockedReason(t *testing.T) {
	// Same construction as TestStalledWorkloadTerminates: a barrier waiter
	// holds the lock a second thread needs.
	cfg := config.SmallTest()
	cfg.NumCores = 2
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(smallWorkload("deadlock-reason", 2, 100))
	t0, t1 := sched.Thread(0), sched.Thread(1)
	sched.ScheduleInterval(0)
	if !sched.OnLockAcquire(t0, 1, 0) {
		t.Fatal("free lock should be granted")
	}
	sched.OnBarrier(t0, 1, 0)
	if sched.OnLockAcquire(t1, 1, 0) {
		t.Fatal("held lock should block")
	}
	sim := NewSimulator(sys, sched, Options{Seed: 1})
	sim.Run()
	if !sim.Stalled || sim.Reason != runctl.ReasonDeadlocked {
		t.Fatalf("stalled=%v reason=%v, want deadlocked", sim.Stalled, sim.Reason)
	}
	runAnother(t)
}

// panicObserver trips a panic on the Nth observed access, from inside a
// bound-phase pool worker's core simulation.
type panicObserver struct{ countdown int }

func (p *panicObserver) ObserveAccess(lineAddr uint64, write bool, coreID int, cycle uint64) {
	p.countdown--
	if p.countdown <= 0 {
		panic("injected model fault")
	}
}

func TestRunWorkerPanicRecovered(t *testing.T) {
	sim := endlessSim(t, Options{HostThreads: 2, MaxWallTime: time.Minute})
	sim.Sys.Cores[0].SetObserver(&panicObserver{countdown: 500})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sim.Run() // must return, not crash the process
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("panicking worker hung the run")
	}
	if sim.Reason != runctl.ReasonPanicked {
		t.Fatalf("reason = %v, want panicked", sim.Reason)
	}
	if sim.PanicErr == nil || sim.PanicErr.Value != "injected model fault" {
		t.Fatalf("panic capture missing or wrong: %+v", sim.PanicErr)
	}
	if len(sim.PanicErr.Stack) == 0 {
		t.Fatalf("panic capture should carry a stack")
	}
	if sim.FailPhase != "bound" {
		t.Fatalf("fault phase = %q, want bound", sim.FailPhase)
	}
	runAnother(t)
}

// panicMemModel is a memctrl.ContentionModel that trips a panic on the Nth
// request, from inside a weave domain worker's event execution.
type panicMemModel struct{ countdown int }

func (p *panicMemModel) RequestLatency(lineAddr, cycle uint64, write bool) uint64 {
	p.countdown--
	if p.countdown <= 0 {
		panic("injected weave model fault")
	}
	return 100
}
func (p *panicMemModel) Reset()       {}
func (p *panicMemModel) Name() string { return "panic-mem" }

// TestRunWeavePanicRecoveredParallel extends the failure matrix to the
// deterministic PARALLEL weave: a panic inside one domain's event execution
// (a poisoned memory-controller contention model) must not deadlock the
// sibling domains parked on that domain's committed horizon. The engine's
// abort protocol wakes every parked worker, the panic is re-raised on the
// caller, and the simulator attributes it to the weave phase and stays
// reusable.
func TestRunWeavePanicRecoveredParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	cfg := config.SmallTest()
	cfg.NumCores = 4
	cfg.Contention = true
	cfg.WeaveDomains = 2 // >=2 domains: horizon waiters exist to strand
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	p := trace.DefaultParams()
	p.BlocksPerThread = 1 << 30 // endless: only the fault can stop it
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(trace.New("weave-fault", p, cfg.NumCores))
	sim := NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 3, MaxWallTime: time.Minute})
	// Poison the memory controller's contention model: after a few hundred
	// weave requests it panics inside whichever domain owns the component.
	sim.models.mems[sys.MemComp[0]] = &panicMemModel{countdown: 300}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sim.Run() // must return, not crash or hang the process
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("panicking weave domain hung the run (parked siblings not woken?)")
	}
	if sim.Reason != runctl.ReasonPanicked {
		t.Fatalf("reason = %v, want panicked", sim.Reason)
	}
	if sim.PanicErr == nil || len(sim.PanicErr.Stack) == 0 {
		t.Fatalf("panic capture missing: %+v", sim.PanicErr)
	}
	if sim.FailPhase != "weave" {
		t.Fatalf("fault phase = %q, want weave", sim.FailPhase)
	}
	runAnother(t)
}
