package boundweave

import (
	"zsim/internal/cache"
	"zsim/internal/event"
	"zsim/internal/memctrl"
)

// accessRecord is one bound-phase memory access that left the private cache
// levels: its zero-load issue cycle and the hops it performed.
type accessRecord struct {
	issueCycle uint64
	hops       []cache.Hop
}

// Recorder is the per-core bound-phase trace: it receives every recorded
// access from its core (via the core.AccessRecorder interface) and keeps the
// ones that touch shared components (L3 banks, memory controllers), which are
// the accesses the weave phase retimes. Each core has its own recorder and is
// driven by one host thread, so no locking is needed.
type Recorder struct {
	coreID int
	shared map[int]bool
	recs   []accessRecord
	// Dropped counts accesses that stayed within the private levels and were
	// therefore not recorded (contention there is dominated by the core
	// itself and is modeled in the bound phase).
	Dropped uint64
}

// NewRecorder creates a recorder for one core. shared is the set of component
// IDs whose events are weave-simulated.
func NewRecorder(coreID int, shared map[int]bool) *Recorder {
	return &Recorder{coreID: coreID, shared: shared}
}

// RecordAccess implements core.AccessRecorder.
func (r *Recorder) RecordAccess(coreID int, issueCycle uint64, hops []cache.Hop) {
	touchesShared := false
	for _, h := range hops {
		if r.shared[h.Comp] {
			touchesShared = true
			break
		}
	}
	if !touchesShared {
		r.Dropped++
		return
	}
	// The hop slice is owned by the request that produced it and is not
	// reused afterwards, so it can be retained without copying.
	r.recs = append(r.recs, accessRecord{issueCycle: issueCycle, hops: hops})
}

// Len returns the number of recorded accesses in the current interval.
func (r *Recorder) Len() int { return len(r.recs) }

// Reset clears the interval's records (called after the weave phase).
func (r *Recorder) Reset() { r.recs = r.recs[:0] }

// BankModel is the weave-phase contention model for a pipelined L3 bank: a
// single address port accepts one access per cycle, and a limited number of
// MSHRs bounds outstanding misses (each miss holds an MSHR for roughly the
// memory round trip). It is driven from exactly one weave domain, so it needs
// no locking.
type BankModel struct {
	// Latency is the bank's zero-load access latency.
	Latency uint32
	// MSHRs bounds outstanding misses (0 = unlimited).
	MSHRs int
	// MissHoldCycles approximates how long a miss occupies an MSHR.
	MissHoldCycles uint64

	portFree uint64
	mshrFree []uint64 // completion cycles of in-flight misses

	// Stats.
	Accesses      uint64
	PortConflicts uint64
	MSHRStalls    uint64
}

// NewBankModel creates a bank contention model.
func NewBankModel(latency uint32, mshrs int, missHold uint64) *BankModel {
	if missHold == 0 {
		missHold = 120
	}
	return &BankModel{Latency: latency, MSHRs: mshrs, MissHoldCycles: missHold}
}

// Schedule returns the finish cycle of an access dispatched to the bank at
// the given cycle. isMiss marks accesses that continue to memory and hold an
// MSHR.
func (b *BankModel) Schedule(dispatch uint64, isMiss bool) uint64 {
	b.Accesses++
	start := dispatch
	if b.portFree > start {
		b.PortConflicts++
		start = b.portFree
	}
	// MSHR occupancy for misses.
	if isMiss && b.MSHRs > 0 {
		// Retire completed MSHRs.
		live := b.mshrFree[:0]
		for _, f := range b.mshrFree {
			if f > start {
				live = append(live, f)
			}
		}
		b.mshrFree = live
		if len(b.mshrFree) >= b.MSHRs {
			// All MSHRs busy: wait for the earliest to free.
			earliest := b.mshrFree[0]
			for _, f := range b.mshrFree {
				if f < earliest {
					earliest = f
				}
			}
			if earliest > start {
				b.MSHRStalls++
				start = earliest
			}
		}
		b.mshrFree = append(b.mshrFree, start+b.MissHoldCycles)
	}
	b.portFree = start + 1 // pipelined: one new access per cycle
	return start + uint64(b.Latency)
}

// Reset clears the model between runs.
func (b *BankModel) Reset() {
	b.portFree = 0
	b.mshrFree = b.mshrFree[:0]
}

// weaveModels bundles the per-component contention models used by the weave
// phase of one Simulator.
type weaveModels struct {
	banks map[int]*BankModel              // by component ID
	mems  map[int]memctrl.ContentionModel // by component ID
}

// buildChain converts one recorded access into a weave event chain and
// returns the chain's response event (at the core), whose finish-vs-bound
// difference is the access's contention delay. Events are allocated from the
// given slab.
func buildChain(slab *event.Slab, rec accessRecord, coreComp int, models *weaveModels) *event.Event {
	// Root: the core issues the request at its bound-phase cycle.
	root := slab.Alloc()
	root.Comp = coreComp
	root.MinCycle = rec.issueCycle

	prev := root
	var lastZeroLoadDone uint64 = rec.issueCycle
	for _, h := range rec.hops {
		if bank, ok := models.banks[h.Comp]; ok {
			ev := slab.Alloc()
			ev.Comp = h.Comp
			ev.MinCycle = h.Cycle
			isMiss := h.Kind == cache.HopMiss
			ev.Exec = func(dispatch uint64) uint64 { return bank.Schedule(dispatch, isMiss) }
			prev.AddChild(ev)
			prev = ev
			lastZeroLoadDone = h.Cycle + uint64(h.Latency)
			continue
		}
		if mem, ok := models.mems[h.Comp]; ok {
			ev := slab.Alloc()
			ev.Comp = h.Comp
			ev.MinCycle = h.Cycle
			line := h.Line
			write := h.Kind == cache.HopWB
			ev.Exec = func(dispatch uint64) uint64 { return dispatch + mem.RequestLatency(line, dispatch, write) }
			prev.AddChild(ev)
			prev = ev
			lastZeroLoadDone = h.Cycle + uint64(h.Latency)
			continue
		}
		// Private-level hops contribute only their zero-load time.
		lastZeroLoadDone = h.Cycle + uint64(h.Latency)
	}

	// Response event back at the core: its lower bound is the access's
	// zero-load completion; its actual finish reflects contention upstream.
	resp := slab.Alloc()
	resp.Comp = coreComp
	resp.MinCycle = lastZeroLoadDone
	prev.AddChild(resp)
	return resp
}
