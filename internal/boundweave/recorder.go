package boundweave

import (
	"zsim/internal/arena"
	"zsim/internal/cache"
	"zsim/internal/event"
	"zsim/internal/memctrl"
	"zsim/internal/noc"
)

// accessRecord is one bound-phase memory access that left the private cache
// levels: its zero-load issue cycle, whether it was a store, and the hops it
// performed.
type accessRecord struct {
	issueCycle uint64
	write      bool
	hops       []cache.Hop
}

// Recorder is the per-core bound-phase trace: it receives every recorded
// access from its core (via the core.AccessRecorder interface) and keeps the
// ones that touch shared components (L3 banks, memory controllers), which are
// the accesses the weave phase retimes. Each core has its own recorder and is
// driven by one host thread, so no locking is needed.
//
// The recorder owns a freelist of hop buffers: RecordAccess takes ownership
// of the consumed trace's buffer and hands a recycled one back to the core,
// and Reset (called after each weave phase) returns every retained buffer to
// the freelist. After the first few intervals the record path therefore
// performs no heap allocation.
type Recorder struct {
	coreID int
	shared []bool // dense component-ID -> weave-retimed table
	recs   []accessRecord
	free   [][]cache.Hop
	// Dropped counts accesses that stayed within the private levels and were
	// therefore not recorded (contention there is dominated by the core
	// itself and is modeled in the bound phase).
	Dropped uint64
}

// NewRecorder creates a recorder for one core. shared is the set of component
// IDs whose events are weave-simulated.
func NewRecorder(coreID int, shared map[int]bool) *Recorder {
	return NewRecorderIn(nil, coreID, shared)
}

// NewRecorderIn is NewRecorder with the recorder and its dense shared-
// component table carved from the given construction arena (nil falls back
// to the heap).
func NewRecorderIn(a *arena.Arena, coreID int, shared map[int]bool) *Recorder {
	return newRecorderDense(a, coreID, denseShared(a, shared))
}

// denseShared densifies a shared-component set into a component-ID-indexed
// table. It is the single densification rule for recorders; the simulator
// builds one table and shares it across every core's recorder.
func denseShared(a *arena.Arena, shared map[int]bool) []bool {
	maxComp := -1
	for comp := range shared {
		if comp > maxComp {
			maxComp = comp
		}
	}
	arr := arena.Take[bool](a, maxComp+1)
	for comp, v := range shared {
		if comp >= 0 {
			arr[comp] = v
		}
	}
	return arr
}

// newRecorderDense creates a recorder over an already-densified shared table.
// The simulator builds the table once and hands the same slice to every
// core's recorder (it is read-only), so a 1,024-core chip keeps one copy.
func newRecorderDense(a *arena.Arena, coreID int, shared []bool) *Recorder {
	r := arena.One[Recorder](a)
	r.coreID = coreID
	r.shared = shared
	return r
}

// RecordAccess implements core.AccessRecorder. It keeps traces that touch a
// shared component and returns a recycled hop buffer for the core's next
// access.
func (r *Recorder) RecordAccess(coreID int, issueCycle uint64, write bool, hops []cache.Hop) []cache.Hop {
	touchesShared := false
	for i := range hops {
		if c := hops[i].Comp; c >= 0 && c < len(r.shared) && r.shared[c] {
			touchesShared = true
			break
		}
	}
	if !touchesShared {
		r.Dropped++
		return hops[:0] // the caller keeps reusing its own buffer
	}
	r.recs = append(r.recs, accessRecord{issueCycle: issueCycle, write: write, hops: hops})
	if n := len(r.free); n > 0 {
		buf := r.free[n-1]
		r.free = r.free[:n-1]
		return buf
	}
	return nil
}

// Len returns the number of recorded accesses in the current interval.
func (r *Recorder) Len() int { return len(r.recs) }

// Reset clears the interval's records (called after the weave phase),
// returning their hop buffers to the freelist for the next interval.
func (r *Recorder) Reset() {
	for i := range r.recs {
		r.free = append(r.free, r.recs[i].hops[:0])
		r.recs[i].hops = nil
	}
	r.recs = r.recs[:0]
}

// BankModel is the weave-phase contention model for a pipelined L3 bank: a
// single address port accepts one access per cycle, and a limited number of
// MSHRs bounds outstanding misses (each miss holds an MSHR for roughly the
// memory round trip). It is driven from exactly one weave domain, so it needs
// no locking.
type BankModel struct {
	// Latency is the bank's zero-load access latency.
	Latency uint32
	// MSHRs bounds outstanding misses (0 = unlimited).
	MSHRs int
	// MissHoldCycles approximates how long a miss occupies an MSHR.
	MissHoldCycles uint64

	portFree uint64
	mshrFree []uint64 // completion cycles of in-flight misses

	// Stats.
	Accesses      uint64
	PortConflicts uint64
	MSHRStalls    uint64
}

// NewBankModel creates a bank contention model.
func NewBankModel(latency uint32, mshrs int, missHold uint64) *BankModel {
	if missHold == 0 {
		missHold = 120
	}
	return &BankModel{Latency: latency, MSHRs: mshrs, MissHoldCycles: missHold}
}

// Schedule returns the finish cycle of an access dispatched to the bank at
// the given cycle. isMiss marks accesses that continue to memory and hold an
// MSHR.
func (b *BankModel) Schedule(dispatch uint64, isMiss bool) uint64 {
	b.Accesses++
	start := dispatch
	if b.portFree > start {
		b.PortConflicts++
		start = b.portFree
	}
	// MSHR occupancy for misses.
	if isMiss && b.MSHRs > 0 {
		// Retire completed MSHRs.
		live := b.mshrFree[:0]
		for _, f := range b.mshrFree {
			if f > start {
				live = append(live, f)
			}
		}
		b.mshrFree = live
		if len(b.mshrFree) >= b.MSHRs {
			// All MSHRs busy: wait for the earliest to free.
			earliest := b.mshrFree[0]
			for _, f := range b.mshrFree {
				if f < earliest {
					earliest = f
				}
			}
			if earliest > start {
				b.MSHRStalls++
				start = earliest
			}
		}
		b.mshrFree = append(b.mshrFree, start+b.MissHoldCycles)
	}
	b.portFree = start + 1 // pipelined: one new access per cycle
	return start + uint64(b.Latency)
}

// Reset clears the model between runs.
func (b *BankModel) Reset() {
	b.portFree = 0
	b.mshrFree = b.mshrFree[:0]
}

// weaveModels bundles the per-component contention models used by the weave
// phase of one Simulator, as dense component-ID-indexed tables. fabric and
// routerComp (node-indexed) are non-nil only when NoC contention is enabled.
type weaveModels struct {
	banks      []*BankModel
	mems       []memctrl.ContentionModel
	fabric     *noc.Fabric
	routerComp []int
}

func (m *weaveModels) bank(comp int) *BankModel {
	if comp >= 0 && comp < len(m.banks) {
		return m.banks[comp]
	}
	return nil
}

func (m *weaveModels) mem(comp int) memctrl.ContentionModel {
	if comp >= 0 && comp < len(m.mems) {
		return m.mems[comp]
	}
	return nil
}

// bankExec, memExec and routerExec are the shared weave-event executors. The
// per-event context lives in the event's Ctx/Arg/Flag fields, so building a
// chain never allocates a closure.
func bankExec(ev *event.Event, dispatch uint64) uint64 {
	return ev.Ctx.(*BankModel).Schedule(dispatch, ev.Flag)
}

func memExec(ev *event.Event, dispatch uint64) uint64 {
	return dispatch + ev.Ctx.(memctrl.ContentionModel).RequestLatency(ev.Arg, dispatch, ev.Flag)
}

// routerExec dispatches a packet through one router's output port; Arg
// carries the port index.
func routerExec(ev *event.Event, dispatch uint64) uint64 {
	return ev.Ctx.(*noc.Router).Schedule(int(ev.Arg), dispatch)
}

// buildChain converts one recorded access into a weave event chain and
// returns the chain's response event (at the core), whose finish-vs-bound
// difference is the access's contention delay. Events are allocated from the
// given slab.
//
// prevResp, when non-nil, is the response event of the same core's most
// recent recorded *load*: it becomes a parent of this chain's root,
// serializing the core's later shared-level accesses behind the load the
// core stalled on. A load delayed by contention therefore delays the core's
// subsequent misses, cascading the contention delay through the access
// stream exactly as the stalled bound-phase core would have experienced it.
// Stores do not gate later accesses (the core does not stall on them).
func buildChain(slab *event.Slab, rec *accessRecord, coreComp int, models *weaveModels, prevResp *event.Event) *event.Event {
	// Root: the core issues the request at its bound-phase cycle.
	root := slab.Alloc()
	root.Comp = coreComp
	root.MinCycle = rec.issueCycle
	if prevResp != nil {
		prevResp.AddChild(root)
	}

	prev := root
	lastZeroLoadDone := rec.issueCycle
	for i := range rec.hops {
		h := &rec.hops[i]
		switch h.Kind {
		case cache.HopNet:
			// A routed NoC traversal: one event per router along the
			// topology's deterministic route, each occupying its output port.
			// The first router dispatches after the zero-load injection
			// latency; each event's lower bound is its zero-load arrival, so
			// an uncontended route finishes exactly at the bound-phase cycle.
			if fab := models.fabric; fab != nil {
				cur, dst := int(h.Src), int(h.Dst)
				minCycle := h.Cycle + fab.Injection()
				perHop := fab.PerHop()
				for cur != dst {
					next, port := fab.NextHop(cur, dst)
					ev := slab.Alloc()
					ev.Comp = models.routerComp[cur]
					ev.MinCycle = minCycle
					ev.Ctx = fab.Router(cur)
					ev.Arg = uint64(port)
					ev.Exec = routerExec
					prev.AddChild(ev)
					prev = ev
					minCycle += perHop
					cur = next
				}
			}
			lastZeroLoadDone = h.Cycle + uint64(h.Latency)
			continue
		case cache.HopNetMem:
			// The LLC-to-controller link: a single traversal of the owning
			// bank's memory-egress port (the one hop the bound phase charges).
			if fab := models.fabric; fab != nil {
				src := int(h.Src)
				ev := slab.Alloc()
				ev.Comp = models.routerComp[src]
				ev.MinCycle = h.Cycle
				ev.Ctx = fab.Router(src)
				ev.Arg = uint64(fab.MemPort())
				ev.Exec = routerExec
				prev.AddChild(ev)
				prev = ev
			}
			lastZeroLoadDone = h.Cycle + uint64(h.Latency)
			continue
		}
		if bank := models.bank(h.Comp); bank != nil {
			ev := slab.Alloc()
			ev.Comp = h.Comp
			ev.MinCycle = h.Cycle
			ev.Ctx = bank
			ev.Flag = h.Kind == cache.HopMiss
			ev.Exec = bankExec
			prev.AddChild(ev)
			prev = ev
			lastZeroLoadDone = h.Cycle + uint64(h.Latency)
			continue
		}
		if mem := models.mem(h.Comp); mem != nil {
			ev := slab.Alloc()
			ev.Comp = h.Comp
			ev.MinCycle = h.Cycle
			ev.Ctx = mem
			ev.Arg = h.Line
			ev.Flag = h.Kind == cache.HopWB
			ev.Exec = memExec
			prev.AddChild(ev)
			prev = ev
			lastZeroLoadDone = h.Cycle + uint64(h.Latency)
			continue
		}
		// Private-level hops contribute only their zero-load time.
		lastZeroLoadDone = h.Cycle + uint64(h.Latency)
	}

	// Response event back at the core: its lower bound is the access's
	// zero-load completion; its actual finish reflects contention upstream.
	resp := slab.Alloc()
	resp.Comp = coreComp
	resp.MinCycle = lastZeroLoadDone
	prev.AddChild(resp)
	return resp
}
