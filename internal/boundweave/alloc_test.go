package boundweave

// Allocation-regression tests for the weave hot path. The tentpole property
// of the pooled pipeline is that a steady-state interval — recording access
// traces, building the event graph, running the engine, and recycling the
// buffers — performs O(1) heap allocations once the slabs, queues and
// freelists have warmed up.

import (
	"testing"

	"zsim/internal/cache"
	"zsim/internal/config"
	"zsim/internal/telemetry"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// telemetryOpts attaches a live probe and a deliberately tiny trace sink to
// the alloc-gate simulators: publishing samples is atomic stores only, and a
// sink past capacity exercises the drop path — so the steady-state allocation
// contract must hold with full telemetry enabled, not just without it.
func telemetryOpts(o Options) Options {
	o.Probe = new(telemetry.Probe)
	o.Trace = telemetry.NewTraceSink(256)
	return o
}

// newContentionSim builds a small contended system whose weave path can be
// driven directly.
func newContentionSim(t *testing.T) *Simulator {
	t.Helper()
	cfg := config.SmallTest()
	cfg.NumCores = 4
	cfg.Contention = true
	cfg.WeaveDomains = 2
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	p := trace.DefaultParams()
	p.BlocksPerThread = 10
	sched.AddWorkload(trace.New("alloc", p, cfg.NumCores))
	return NewSimulator(sys, sched, telemetryOpts(Options{HostThreads: 1, Seed: 1}))
}

// fillRecorders injects one synthetic shared-touching trace per core, using
// the given recycled buffers, and returns the replacement buffers.
func fillRecorders(sim *Simulator, bufs [][]cache.Hop) {
	bankComp := sim.Sys.BankComp[0]
	memComp := sim.Sys.MemComp[0]
	for coreID, rec := range sim.recorders {
		buf := append(bufs[coreID][:0],
			cache.Hop{Comp: bankComp, Kind: cache.HopMiss, Line: uint64(64 + coreID), Cycle: 100, Latency: 10},
			cache.Hop{Comp: memComp, Kind: cache.HopMem, Line: uint64(64 + coreID), Cycle: 120, Latency: 120},
		)
		bufs[coreID] = rec.RecordAccess(coreID, 100, coreID%2 == 0, buf)
	}
}

func TestRunWeaveSteadyStateAllocs(t *testing.T) {
	sim := newContentionSim(t)
	defer sim.engine.Close()
	bufs := make([][]cache.Hop, len(sim.recorders))
	iteration := func() {
		fillRecorders(sim, bufs)
		sim.runWeave()
	}
	// Warm up slabs, heaps, freelists and the engine's scratch buffers.
	for i := 0; i < 3; i++ {
		iteration()
	}
	allocs := testing.AllocsPerRun(20, iteration)
	if allocs > 2 {
		t.Fatalf("steady-state runWeave should be allocation-free, got %v allocs/run", allocs)
	}
}

func TestRecorderSteadyStateAllocs(t *testing.T) {
	shared := map[int]bool{7: true}
	rec := NewRecorder(0, shared)
	var buf []cache.Hop
	iteration := func() {
		for i := 0; i < 8; i++ {
			b := append(buf[:0],
				cache.Hop{Comp: 1, Kind: cache.HopMiss, Cycle: 10, Latency: 4},
				cache.Hop{Comp: 7, Kind: cache.HopHit, Cycle: 20, Latency: 14},
			)
			buf = rec.RecordAccess(0, 10, false, b)
		}
		rec.Reset()
	}
	for i := 0; i < 3; i++ {
		iteration()
	}
	allocs := testing.AllocsPerRun(50, iteration)
	if allocs != 0 {
		t.Fatalf("steady-state record/reset cycle should not allocate, got %v allocs/run", allocs)
	}
}

// TestRecorderRecyclesBuffers checks the ownership contract: buffers handed
// to RecordAccess come back through the freelist after Reset, so a core and
// its recorder cycle a bounded set of buffers forever.
func TestRecorderRecyclesBuffers(t *testing.T) {
	shared := map[int]bool{3: true}
	rec := NewRecorder(0, shared)
	first := make([]cache.Hop, 0, 8)
	first = append(first, cache.Hop{Comp: 3})
	if got := rec.RecordAccess(0, 1, false, first); got != nil {
		t.Fatalf("empty freelist should hand back nil, got %v", got)
	}
	rec.Reset()
	second := append(make([]cache.Hop, 0, 8), cache.Hop{Comp: 3})
	got := rec.RecordAccess(0, 2, false, second)
	if got == nil || cap(got) != 8 || len(got) != 0 {
		t.Fatalf("recorder should recycle the first buffer (cap 8, len 0), got len=%d cap=%d", len(got), cap(got))
	}
	// A private-only trace bounces straight back to the caller.
	privBuf := append(got, cache.Hop{Comp: 1})
	back := rec.RecordAccess(0, 3, false, privBuf)
	if len(back) != 0 || cap(back) != cap(privBuf) {
		t.Fatalf("dropped trace should return the caller's own buffer truncated")
	}
}

// TestRunWeaveSteadyStateAllocsNOC is TestRunWeaveSteadyStateAllocs with the
// NoC contention subsystem enabled: traces now carry network hops that the
// translation loop expands into per-router events along the mesh route, and
// the whole pipeline — route walk, router events, port scheduling — must
// still be allocation-free once slabs and queues have warmed up.
func TestRunWeaveSteadyStateAllocsNOC(t *testing.T) {
	cfg := config.SmallTest()
	cfg.NumCores = 4
	cfg.Contention = true
	cfg.WeaveDomains = 2
	cfg.Network = config.NetMesh // 2x2 mesh
	cfg.NOCContention = true
	cfg.NOCLinkBytes = 4
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	p := trace.DefaultParams()
	p.BlocksPerThread = 10
	sched.AddWorkload(trace.New("alloc-noc", p, cfg.NumCores))
	sim := NewSimulator(sys, sched, telemetryOpts(Options{HostThreads: 1, Seed: 1}))
	defer sim.engine.Close()

	bankComp := sim.Sys.BankComp[0]
	memComp := sim.Sys.MemComp[0]
	bufs := make([][]cache.Hop, len(sim.recorders))
	iteration := func() {
		for coreID, rec := range sim.recorders {
			// A full path: corner-to-corner mesh route, bank access, the
			// bank's memory-egress link, then DRAM.
			buf := append(bufs[coreID][:0],
				cache.Hop{Comp: -1, Kind: cache.HopNet, Src: 0, Dst: 3, Line: uint64(64 + coreID), Cycle: 100, Latency: 5},
				cache.Hop{Comp: bankComp, Kind: cache.HopMiss, Line: uint64(64 + coreID), Cycle: 105, Latency: 10},
				cache.Hop{Comp: -1, Kind: cache.HopNetMem, Src: 3, Dst: 0, Line: uint64(64 + coreID), Cycle: 115, Latency: 1},
				cache.Hop{Comp: memComp, Kind: cache.HopMem, Line: uint64(64 + coreID), Cycle: 116, Latency: 120},
			)
			bufs[coreID] = rec.RecordAccess(coreID, 100, coreID%2 == 0, buf)
		}
		sim.runWeave()
	}
	for i := 0; i < 3; i++ {
		iteration()
	}
	allocs := testing.AllocsPerRun(20, iteration)
	if allocs > 2 {
		t.Fatalf("steady-state runWeave with NoC contention should be allocation-free, got %v allocs/run", allocs)
	}
	if sys.Fabric.TotalStats().Traversals == 0 {
		t.Fatalf("NoC alloc test did not schedule any router traversals")
	}
}

// TestBoundPhaseSteadyStateAllocs covers the bound phase's half of the
// allocation contract: a steady-state interval — scheduling, round
// execution on the persistent pool, mid-interval arbitration and time
// multiplexing — must not allocate once queues, pending-op buffers and
// assignment slices have warmed up. (Goroutine spawns would show up here
// too: `go` allocates.)
func TestBoundPhaseSteadyStateAllocs(t *testing.T) {
	cfg := config.SmallTest()
	cfg.NumCores = 4
	cfg.Contention = false
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	p := trace.DefaultParams()
	p.BlocksPerThread = 1 << 30 // effectively endless: intervals keep running
	p.WorkingSet = 16 << 10
	p.LockEvery = 24 // lock arbitration rounds
	p.NumLocks = 2
	p.LockHoldBlocks = 2
	p.BlockedSyscallEvery = 40 // syscall leave/join rounds
	p.BlockedSyscallCycles = 1500
	sched.AddWorkload(trace.New("alloc-bound", p, 6)) // oversubscribed: 6 threads, 4 cores
	sim := NewSimulator(sys, sched, telemetryOpts(Options{HostThreads: 2, Seed: 3}))
	iteration := func() { sim.runInterval() }
	// Long warmup: beyond queues and slabs, the lazily allocated cache set
	// arrays must all have been touched before measuring.
	for i := 0; i < 400; i++ {
		iteration()
	}
	allocs := testing.AllocsPerRun(50, iteration)
	if allocs > 2 {
		t.Fatalf("steady-state bound interval should be allocation-free, got %v allocs/run", allocs)
	}
}
