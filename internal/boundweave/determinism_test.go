package boundweave

// Determinism tests for the sharded mid-interval scheduler: because every
// scheduling decision (lock arbitration, barrier release, syscall join/leave,
// mid-interval core refill) is resolved in simulated-time order at round
// boundaries, a fixed seed must produce identical results no matter how the
// Go runtime schedules the host workers (GOMAXPROCS=1, 2, 8).
//
// The workload is built so the timing itself is host-order independent:
// every process lives in a disjoint simulated address-space slice
// (trace.Params.AddrSpace) with no shared data, and every process is pinned
// to one core, so concurrent bound workers never interleave on the same
// cache lines. Pinning matters: a *migrating* thread leaves line copies in
// its old core's private hierarchy, and the directory's cross-core
// downgrades then race with that core's local evictions (an order-coupled
// interaction of the same kind as data sharing). For data-sharing or
// migrating workloads the bound phase's intra-interval reordering is
// path-altering by design — Figure 2 of the paper — and bit-identical
// results across hosts are neither possible nor claimed; the *schedule* is
// still deterministic.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"zsim/internal/config"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// deterministicRun executes a fixed oversubscribed multiprocess workload
// (8 single-thread processes on 4 cores, with locks, barriers and blocking
// syscalls) at the given GOMAXPROCS and returns a signature of everything
// that must be reproducible.
func deterministicRun(t *testing.T, gomaxprocs, hostThreads int, contention bool, domains int) string {
	return deterministicRunNOC(t, gomaxprocs, hostThreads, contention, domains, false)
}

// deterministicRunNOC is deterministicRun with the weave-phase NoC
// contention subsystem optionally enabled (on a 2x2 mesh with narrow links,
// so router ports actually back up and the router event path is exercised).
func deterministicRunNOC(t *testing.T, gomaxprocs, hostThreads int, contention bool, domains int, nocOn bool) string {
	return deterministicRunMode(t, gomaxprocs, hostThreads, contention, domains, nocOn, config.WeaveParallelDet)
}

// deterministicRunMode additionally pins the weave execution mode, so the
// parallel bounded-skew path can be compared bit-for-bit against the serial
// reference executor.
func deterministicRunMode(t *testing.T, gomaxprocs, hostThreads int, contention bool, domains int, nocOn bool, mode config.WeaveMode) string {
	t.Helper()
	old := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(old)

	cfg := config.SmallTest()
	cfg.NumCores = 4
	cfg.CoreModel = config.CoreIPC1
	cfg.Contention = contention
	// Multi-domain weave runs are deterministic too: the engine's default
	// deterministic mode executes events in the global (cycle, component,
	// sequence) order regardless of the domain partition, and the bound
	// phase still runs on 4 host workers.
	cfg.WeaveDomains = domains
	cfg.WeaveModeKind = mode
	// Generous associativity so the disjoint footprints never force an
	// eviction whose victim choice could depend on arrival order.
	cfg.L3.SizeKB = 4096
	cfg.L3.Ways = 32
	if nocOn {
		cfg.Network = config.NetMesh // 4 single-core tiles -> a 2x2 mesh
		cfg.NetRouterStage = 1
		cfg.NOCContention = true
		cfg.NOCLinkBytes = 4 // 18-flit packets: ports back up under load
	}
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}

	sched := virt.NewScheduler(cfg.NumCores)
	for i := 0; i < 8; i++ {
		p := trace.DefaultParams()
		p.Seed = uint64(1000 + 17*i)
		p.AddrSpace = uint64(i + 1) // disjoint address-space slices
		p.SharedFraction = 0
		p.WorkingSet = 8 << 10
		p.StaticBlocks = 16
		p.BlocksPerThread = 300
		p.LockEvery = 16
		p.NumLocks = 2
		p.LockHoldBlocks = 3
		p.BlockedSyscallEvery = 48
		p.BlockedSyscallCycles = 2500
		w := trace.New(fmt.Sprintf("proc-%d", i), p, 1)
		proc := &virt.Process{ID: i, Name: w.Name}
		// Pin two processes per core: oversubscription and mid-interval
		// joins still happen (on the pinned core), but threads never
		// migrate, so no line ever lives in two private hierarchies.
		proc.Affinity = []int{i % cfg.NumCores}
		proc.Threads = append(proc.Threads, &virt.Thread{Stream: w.NewThread(0)})
		sched.AddProcess(proc)
	}

	sim := NewSimulator(sys, sched, Options{HostThreads: hostThreads, Seed: 99})
	sim.Run()

	var sb strings.Builder
	for _, c := range sys.Cores {
		fmt.Fprintf(&sb, "core(cyc=%d instr=%d) ", c.Cycle(), c.Instrs())
	}
	m := sys.Metrics()
	fmt.Fprintf(&sb,
		"| cycles=%d instrs=%d l1d=%d l2=%d l3=%d memrd=%d | intervals=%d rounds=%d weave=%d feedback=%d"+
			" | cs=%d joins=%d lockblk=%d sysblk=%d barrier=%d",
		m.Cycles, m.Instrs, m.L1DMisses, m.L2Misses, m.L3Misses, m.MemReads,
		sim.Intervals, sim.BoundRounds, sim.WeaveEvents, sim.TotalFeedback,
		sched.ContextSwitches.Load(), sched.MidIntervalJoins.Load(),
		sched.LockBlocks.Load(), sched.SyscallBlocks.Load(), sched.BarrierWaits.Load())
	if sys.Fabric != nil {
		fs := sys.Fabric.TotalStats()
		fmt.Fprintf(&sb, " | noc(trav=%d conflicts=%d stalls=%d delay=%d)",
			fs.Traversals, fs.PortConflicts, fs.QueueStalls, fs.QueueDelay)
	}
	return sb.String()
}

func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	type cse struct {
		name       string
		contention bool
		domains    int
	}
	for _, c := range []cse{
		{"bound-only", false, 1},
		{"bound-weave-1dom", true, 1},
		// ≥2 weave domains: cross-domain chains (core → L3 bank → memory)
		// exercise the engine's deterministic multi-domain order and the
		// (cycle, component, sequence) heap tie-break.
		{"bound-weave-2dom", true, 2},
	} {
		t.Run(c.name, func(t *testing.T) {
			base := deterministicRun(t, 1, 4, c.contention, c.domains)
			for _, gm := range []int{2, 8} {
				if got := deterministicRun(t, gm, 4, c.contention, c.domains); got != base {
					t.Fatalf("results differ between GOMAXPROCS=1 and %d:\n  1: %s\n  %d: %s",
						gm, base, gm, got)
				}
			}
		})
	}
}

// TestDeterministicNOCContention extends the GOMAXPROCS determinism matrix
// to the NoC contention subsystem: a mesh-contended run — router events
// interleaved with bank and memory events across 2 weave domains — must be
// bit-identical across GOMAXPROCS and across the domain partition, because
// router events carry the same (cycle, component, sequence) order as every
// other weave event.
func TestDeterministicNOCContention(t *testing.T) {
	base := deterministicRunNOC(t, 1, 4, true, 2, true)
	for _, gm := range []int{2, 8} {
		if got := deterministicRunNOC(t, gm, 4, true, 2, true); got != base {
			t.Fatalf("NoC results differ between GOMAXPROCS=1 and %d:\n  1: %s\n  %d: %s",
				gm, base, gm, got)
		}
	}
	for _, domains := range []int{1, 4} {
		if got := deterministicRunNOC(t, 4, 4, true, domains, true); got != base {
			t.Fatalf("NoC results differ between 2 and %d weave domains:\n  2: %s\n  %d: %s",
				domains, base, domains, got)
		}
	}
	// The run must actually exercise the subsystem: the signature carries the
	// router counters, so determinism is claimed over them too.
	if !strings.Contains(base, "noc(trav=") || strings.Contains(base, "noc(trav=0 ") {
		t.Fatalf("NoC determinism run recorded no router traversals: %s", base)
	}
}

// TestDeterministicAcrossDomainCount checks the stronger property the
// deterministic engine mode provides: for a fixed seed, the domain PARTITION
// itself does not change results — 1, 2 and 4 domains produce identical
// simulations, because the engine always executes the reference (cycle,
// component, sequence) order.
func TestDeterministicAcrossDomainCount(t *testing.T) {
	base := deterministicRun(t, 4, 4, true, 1)
	for _, domains := range []int{2, 4} {
		if got := deterministicRun(t, 4, 4, true, domains); got != base {
			t.Fatalf("results differ between 1 and %d weave domains:\n  1: %s\n  %d: %s",
				domains, base, domains, got)
		}
	}
}

// TestDeterministicParallelWeaveMatrix is the PR 7 acceptance gate: the
// parallel bounded-skew weave executor must be BIT-IDENTICAL to the serial
// reference executor (the old single-heap (cycle, component, sequence)
// order) across the full matrix of GOMAXPROCS {1,2,4} x weave domains
// {1,2,4}, with the NoC contention subsystem both off and on. The serial
// run is the reference; every parallel cell must reproduce its signature
// exactly — core cycles, miss counters, router queue delays, everything the
// signature string carries.
func TestDeterministicParallelWeaveMatrix(t *testing.T) {
	for _, nocOn := range []bool{false, true} {
		name := "noc-off"
		if nocOn {
			name = "noc-on"
		}
		t.Run(name, func(t *testing.T) {
			ref := deterministicRunMode(t, 1, 4, true, 1, nocOn, config.WeaveSerial)
			for _, gm := range []int{1, 2, 4} {
				for _, domains := range []int{1, 2, 4} {
					got := deterministicRunMode(t, gm, 4, true, domains, nocOn, config.WeaveParallelDet)
					if got != ref {
						t.Fatalf("parallel weave (GOMAXPROCS=%d, domains=%d) diverged from serial reference:\n  serial:   %s\n  parallel: %s",
							gm, domains, ref, got)
					}
				}
			}
			if nocOn && (!strings.Contains(ref, "noc(trav=") || strings.Contains(ref, "noc(trav=0 ")) {
				t.Fatalf("reference run recorded no router traversals: %s", ref)
			}
		})
	}
}

// sharedTrafficRun runs a heavily write-shared hotspot workload (the
// mesh-hotspot traffic shape at small scale) with a single bound worker, so
// the bound phase is deterministic and every difference in the signature
// comes from the weave phase. Shared traffic matters: it floods the routers
// and banks with same-cycle events from different cores, exercising the
// weave order's tie-breaks — which the disjoint pinned workload above never
// stresses. (A plain push-when-ready heap breaks ties by arrival order,
// which is unparallelizable and was the source of a real serial-vs-parallel
// divergence; the engine's (cycle, sequence) total order is tie-exact.)
func sharedTrafficRun(t *testing.T, gomaxprocs, domains int, mode config.WeaveMode) string {
	t.Helper()
	old := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(old)

	cfg := config.TiledChip(4, config.CoreIPC1) // 64 cores on a 2x2 mesh
	cfg.Contention = true
	cfg.NOCContention = true
	cfg.NOCLinkBytes = 4
	cfg.WeaveDomains = domains
	cfg.WeaveModeKind = mode
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	p := trace.DefaultParams()
	p.BlocksPerThread = 120
	p.ScaleWork = false
	p.MemFraction = 0.4
	p.StoreFraction = 0.5
	p.SharedWorkingSet = 4 << 10
	p.SharedFraction = 0.7
	p.WorkingSet = 128 << 10
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(trace.New("shared-hotspot", p, 32))
	sim := NewSimulator(sys, sched, Options{HostThreads: 1, Seed: 7})
	sim.Run()

	var sb strings.Builder
	m := sys.Metrics()
	fmt.Fprintf(&sb, "cycles=%d instrs=%d l3=%d weave=%d feedback=%d",
		m.Cycles, m.Instrs, m.L3Misses, sim.WeaveEvents, sim.TotalFeedback)
	if sys.Fabric != nil {
		fs := sys.Fabric.TotalStats()
		fmt.Fprintf(&sb, " noc(trav=%d conflicts=%d stalls=%d delay=%d)",
			fs.Traversals, fs.PortConflicts, fs.QueueStalls, fs.QueueDelay)
	}
	return sb.String()
}

// TestParallelWeaveSharedTrafficMatchesSerial is the tie-break half of the
// PR 7 bit-identity gate: under contended shared traffic, the parallel
// bounded-skew weave (inline fallback at GOMAXPROCS=1 and the concurrent
// worker path at GOMAXPROCS=4) must reproduce the serial reference exactly,
// router queue delays included.
func TestParallelWeaveSharedTrafficMatchesSerial(t *testing.T) {
	ref := sharedTrafficRun(t, 1, 4, config.WeaveSerial)
	for _, gm := range []int{1, 4} {
		for _, domains := range []int{2, 4} {
			got := sharedTrafficRun(t, gm, domains, config.WeaveParallelDet)
			if got != ref {
				t.Fatalf("shared-traffic parallel weave (GOMAXPROCS=%d, domains=%d) diverged:\n  serial:   %s\n  parallel: %s",
					gm, domains, ref, got)
			}
		}
	}
	if !strings.Contains(ref, "noc(trav=") || strings.Contains(ref, "noc(trav=0 ") {
		t.Fatalf("shared-traffic run recorded no router traversals: %s", ref)
	}
}

// TestDeterministicAcrossHostThreads pins GOMAXPROCS and varies the bound
// worker count instead: the host parallelism knob must not change results
// either.
func TestDeterministicAcrossHostThreads(t *testing.T) {
	base := deterministicRun(t, 8, 1, false, 1)
	for _, host := range []int{2, 4, 16} {
		if got := deterministicRun(t, 8, host, false, 1); got != base {
			t.Fatalf("results differ between HostThreads=1 and %d:\n  1: %s\n  %d: %s",
				host, base, host, got)
		}
	}
}
