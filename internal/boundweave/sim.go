package boundweave

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zsim/internal/config"
	"zsim/internal/event"
	"zsim/internal/memctrl"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// Options control a simulation run.
type Options struct {
	// MaxInstrs stops the simulation once the total simulated instruction
	// count reaches this value (0 = run until every thread finishes).
	MaxInstrs uint64
	// MaxIntervals bounds the number of bound-weave intervals (0 = no bound).
	MaxIntervals uint64
	// HostThreads caps bound-phase parallelism (0 = cfg.HostThreads, which
	// itself defaults to the number of host CPUs).
	HostThreads int
	// Profiler, when non-nil, observes every access for the path-altering
	// interference characterization (Figure 2).
	Profiler *InterferenceProfiler
	// Seed randomizes the interval barrier's thread wake-up order.
	Seed uint64
}

// Simulator drives the bound-weave loop over a built System and a scheduler
// full of workload threads.
type Simulator struct {
	Sys   *System
	Sched *virt.Scheduler
	opts  Options

	intervalLen uint64
	hostThreads int
	contention  bool

	recorders []*Recorder
	slabs     []*event.Slab
	models    *weaveModels
	// engine is the persistent weave engine: built once here, reused every
	// interval, closed when Run finishes.
	engine *event.Engine
	// last is the per-core scratch used by runWeave to track each core's
	// latest response event.
	last []lastResp

	schedMu     sync.Mutex
	globalCycle uint64
	rngState    uint64

	// instrsTotal is the running total of simulated instructions, maintained
	// by the bound-phase workers so the interval loop never rescans all
	// cores.
	instrsTotal atomic.Uint64

	// Run statistics.
	Intervals     uint64
	WeaveEvents   uint64
	TotalFeedback uint64
	BoundNanos    int64
	WeaveNanos    int64
}

// lastResp remembers a core's latest weave response event and its zero-load
// lower bound.
type lastResp struct {
	ev       *event.Event
	minCycle uint64
}

// NewSimulator wires a built system, a populated scheduler and run options
// into a runnable simulation.
func NewSimulator(sys *System, sched *virt.Scheduler, opts Options) *Simulator {
	cfg := sys.Cfg
	host := opts.HostThreads
	if host <= 0 {
		host = cfg.HostThreads
	}
	if host <= 0 {
		host = runtime.NumCPU()
	}
	s := &Simulator{
		Sys:         sys,
		Sched:       sched,
		opts:        opts,
		intervalLen: cfg.IntervalCycles,
		hostThreads: host,
		contention:  cfg.Contention,
		rngState:    opts.Seed*6364136223846793005 + 1442695040888963407,
	}

	if s.contention {
		maxComp := -1
		for _, comp := range sys.BankComp {
			if comp > maxComp {
				maxComp = comp
			}
		}
		for _, comp := range sys.MemComp {
			if comp > maxComp {
				maxComp = comp
			}
		}
		s.models = &weaveModels{
			banks: make([]*BankModel, maxComp+1),
			mems:  make([]memctrl.ContentionModel, maxComp+1),
		}
		for i, comp := range sys.BankComp {
			s.models.banks[comp] = NewBankModel(sys.Banks[i].Latency(), sys.Banks[i].MSHRs(), uint64(cfg.MemLatency))
		}
		for _, comp := range sys.MemComp {
			var m memctrl.ContentionModel
			switch cfg.WeaveMem {
			case config.WeaveMemCycleDriven:
				m = memctrl.NewCycleDriven("weave-mem", memctrl.DefaultDDR3Timing())
			case config.WeaveMemNone:
				m = &memctrl.NoContention{Latency: uint64(cfg.MemLatency)}
			default:
				m = memctrl.NewDDR3("weave-mem", memctrl.DefaultDDR3Timing())
			}
			s.models.mems[comp] = m
		}
		for coreID, c := range sys.Cores {
			rec := NewRecorder(coreID, sys.SharedComp)
			s.recorders = append(s.recorders, rec)
			c.SetRecorder(rec)
			s.slabs = append(s.slabs, event.NewSlab(1024))
		}
		// The weave engine is persistent: its domains, queues and workers are
		// built once and reused by every interval.
		s.engine = event.NewEngine(sys.NumDomains)
		for comp, dom := range sys.CompDomain {
			s.engine.AssignComponent(comp, dom)
		}
		s.last = make([]lastResp, len(sys.Cores))
	}
	s.instrsTotal.Store(s.totalInstrs())
	if opts.Profiler != nil {
		for _, c := range sys.Cores {
			c.SetObserver(opts.Profiler)
		}
	}
	return s
}

// GlobalCycle returns the current interval-aligned global cycle.
func (s *Simulator) GlobalCycle() uint64 { return s.globalCycle }

// nextRand is a small xorshift for shuffling assignment order.
func (s *Simulator) nextRand() uint64 {
	x := s.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rngState = x
	return x
}

// totalInstrs sums the simulated instructions over all cores (slow path,
// used to seed the running counter and by tests; the interval loop reads the
// atomically maintained instrsTotal instead).
func (s *Simulator) totalInstrs() uint64 {
	var n uint64
	for _, c := range s.Sys.Cores {
		n += c.Instrs()
	}
	return n
}

// Run executes the bound-weave loop until every thread finishes or a
// configured bound (instructions or intervals) is reached. It returns the
// total number of simulated instructions.
func (s *Simulator) Run() uint64 {
	if s.engine != nil {
		defer s.engine.Close()
	}
	for {
		if s.Sched.LiveThreads() == 0 {
			break
		}
		if s.opts.MaxInstrs > 0 && s.instrsTotal.Load() >= s.opts.MaxInstrs {
			break
		}
		if s.opts.MaxIntervals > 0 && s.Intervals >= s.opts.MaxIntervals {
			break
		}
		s.runInterval()
	}
	return s.instrsTotal.Load()
}

// runInterval executes one bound phase and (optionally) one weave phase.
func (s *Simulator) runInterval() {
	s.Intervals++
	assignments := s.Sched.ScheduleInterval(s.globalCycle)
	intervalEnd := s.globalCycle + s.intervalLen
	if len(assignments) == 0 {
		// Everything is blocked (barriers resolve instantly, so this means
		// syscalls): let simulated time advance so wake-ups can fire.
		s.globalCycle = intervalEnd
		return
	}

	// Shuffle the wake-up order to avoid systematic bias (the interval
	// barrier's third role in Section 3.2.1).
	for i := len(assignments) - 1; i > 0; i-- {
		j := int(s.nextRand() % uint64(i+1))
		assignments[i], assignments[j] = assignments[j], assignments[i]
	}

	// Bound phase: a pool of hostThreads workers draws assignments; at most
	// hostThreads simulated cores run concurrently, and when one finishes its
	// interval the next waiting core is woken — the barrier's "moderate
	// parallelism" role.
	boundStart := time.Now()
	var next atomic.Int64
	workers := s.hostThreads
	if workers > len(assignments) {
		workers = len(assignments)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(assignments) {
					return
				}
				s.runCoreInterval(assignments[idx], intervalEnd)
			}
		}()
	}
	wg.Wait()
	s.BoundNanos += time.Since(boundStart).Nanoseconds()

	// Weave phase: retime the recorded accesses with contention models.
	if s.contention {
		weaveStart := time.Now()
		s.runWeave()
		s.WeaveNanos += time.Since(weaveStart).Nanoseconds()
	}

	s.globalCycle = intervalEnd
}

// runCoreInterval simulates one core until it reaches the interval end or its
// thread blocks/finishes.
func (s *Simulator) runCoreInterval(a virt.Assignment, intervalEnd uint64) {
	c := s.Sys.Cores[a.Core]
	th := a.Thread
	instrsBefore := c.Instrs()
	defer func() { s.instrsTotal.Add(c.Instrs() - instrsBefore) }()

	start := c.Cycle()
	if s.globalCycle > start {
		start = s.globalCycle
	}
	if th.Cycle > start {
		start = th.Cycle
	}
	c.SetCycle(start)

	for c.Cycle() < intervalEnd {
		blk := th.Stream.NextBlock()
		switch blk.Sync {
		case trace.SyncDone:
			s.schedMu.Lock()
			s.Sched.OnDone(th, c.Cycle())
			s.schedMu.Unlock()
			return
		case trace.SyncBarrier:
			c.SimulateBlock(blk)
			th.Cycle = c.Cycle()
			s.schedMu.Lock()
			s.Sched.OnBarrier(th, blk.SyncID, c.Cycle())
			s.schedMu.Unlock()
			return
		case trace.SyncBlocked:
			c.SimulateBlock(blk)
			th.Cycle = c.Cycle()
			s.schedMu.Lock()
			s.Sched.OnBlockedSyscall(th, c.Cycle(), blk.SyncArg)
			s.schedMu.Unlock()
			return
		case trace.SyncLockAcquire:
			c.SimulateBlock(blk)
			th.Cycle = c.Cycle()
			s.schedMu.Lock()
			acquired := s.Sched.OnLockAcquire(th, blk.SyncID, c.Cycle())
			s.schedMu.Unlock()
			if !acquired {
				return
			}
		case trace.SyncLockRelease:
			c.SimulateBlock(blk)
			s.schedMu.Lock()
			s.Sched.OnLockRelease(th, blk.SyncID, c.Cycle())
			s.schedMu.Unlock()
		default:
			c.SimulateBlock(blk)
		}
	}
	th.Cycle = c.Cycle()

	// Oversubscription: when there are more runnable software threads than
	// cores, the round-robin scheduler time-multiplexes them interval by
	// interval.
	s.schedMu.Lock()
	if s.Sched.LiveThreads() > s.Sched.NumCores() {
		s.Sched.Deschedule(th, c.Cycle())
	}
	s.schedMu.Unlock()
}

// runWeave builds the interval's event graph from the per-core recorders,
// executes it on the persistent engine across parallel domains, and feeds
// the contention delays back into the core clocks. Once the slabs, queues
// and hop freelists have warmed up, a steady-state weave interval performs
// no heap allocation.
func (s *Simulator) runWeave() {
	engine := s.engine

	// Build chains per core and remember each core's latest response event.
	last := s.last
	for i := range last {
		last[i] = lastResp{}
	}
	totalEvents := uint64(0)
	for coreID, rec := range s.recorders {
		slab := s.slabs[coreID]
		slab.Reset()
		coreComp := s.Sys.CoreComp[coreID]
		var prevLoadResp *event.Event
		for i := range rec.recs {
			r := &rec.recs[i]
			resp := buildChain(slab, r, coreComp, s.models, prevLoadResp)
			if !r.write {
				prevLoadResp = resp
			}
			totalEvents += uint64(len(r.hops)) + 2
			if resp.MinCycle >= last[coreID].minCycle {
				last[coreID] = lastResp{ev: resp, minCycle: resp.MinCycle}
			}
		}
	}
	// Enqueue the chain roots: every parentless event in the slabs is the
	// core-side start of one access chain.
	for coreID := range s.recorders {
		slab := s.slabs[coreID]
		for i := 0; i < slab.InUse(); i++ {
			ev := slab.At(i)
			if ev.Parentless() {
				engine.Enqueue(ev)
			}
		}
	}
	s.WeaveEvents += totalEvents

	engine.Run()

	// Feedback: each core's clock advances by the contention delay of its
	// last access (actual finish minus zero-load bound).
	for coreID, lr := range last {
		if lr.ev == nil || !lr.ev.Finished() {
			continue
		}
		if lr.ev.FinishCycle() > lr.minCycle {
			delay := lr.ev.FinishCycle() - lr.minCycle
			s.Sys.Cores[coreID].AddDelay(delay)
			s.TotalFeedback += delay
		}
	}

	// Recycle the interval's traces. The contention models keep their clocks
	// across intervals (they are absolute-cycle based), so they need no reset.
	for _, rec := range s.recorders {
		rec.Reset()
	}
}
