package boundweave

import (
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"zsim/internal/arena"
	"zsim/internal/config"
	"zsim/internal/engine"
	"zsim/internal/event"
	"zsim/internal/memctrl"
	"zsim/internal/runctl"
	"zsim/internal/telemetry"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// Options control a simulation run.
type Options struct {
	// MaxInstrs stops the simulation once the total simulated instruction
	// count reaches this value (0 = run until every thread finishes).
	MaxInstrs uint64
	// MaxIntervals bounds the number of bound-weave intervals (0 = no bound).
	MaxIntervals uint64
	// HostThreads caps bound-phase parallelism (0 = cfg.HostThreads, which
	// itself defaults to the number of host CPUs).
	HostThreads int
	// Profiler, when non-nil, observes every access for the path-altering
	// interference characterization (Figure 2).
	Profiler *InterferenceProfiler
	// Seed randomizes the interval barrier's thread wake-up order.
	Seed uint64

	// Ctl is the cooperative cancellation token the run polls at interval
	// boundaries in both phases (and between bound rounds). Cancelling it
	// stops the run at the next boundary with partial state intact; nil
	// gives the run a private, never-cancelled token. Reaching MaxInstrs or
	// MaxIntervals is a normal completion, not a cancellation.
	Ctl *runctl.Token
	// MaxWallTime arms a wall-clock watchdog that cancels Ctl with
	// ReasonDeadline when the run exceeds it (0 = no limit). Enforcement is
	// cooperative: the run stops at the first boundary after the watchdog
	// fires, so overshoot is bounded by one interval's host time.
	MaxWallTime time.Duration
	// MaxCycles stops the run with ReasonCycleLimit once the global cycle
	// reaches it (0 = no limit) — the guard against runaway workloads whose
	// simulated time advances but whose threads never finish.
	MaxCycles uint64
	// Reusable keeps the simulator's persistent resources (worker pool,
	// weave engine, slabs, recorders) alive after Run returns so the
	// instance can be rewound with Reset and run again. The owner must call
	// Close when done with the simulator. When false (the default), Run
	// closes the simulator itself on return.
	Reusable bool

	// Probe, when non-nil, receives a telemetry sample (atomic stores only)
	// at every interval boundary, plus phase-transition gauges. Observation
	// only: results are bit-identical with or without a probe.
	Probe *telemetry.Probe
	// Trace, when non-nil, receives bounded Chrome-trace slices: one
	// bound/weave slice per interval on the phases track and per-domain
	// execution/stall slices from the weave workers.
	Trace *telemetry.TraceSink
}

// Simulator drives the bound-weave loop over a built System and a scheduler
// full of workload threads. Both phases execute on one persistent worker
// pool: bound workers draw core assignments from a shared atomic counter,
// and the weave engine drives its event domains with the same parked
// goroutines, so steady-state intervals spawn no goroutines at all.
type Simulator struct {
	Sys   *System
	Sched *virt.Scheduler
	opts  Options

	intervalLen uint64
	hostThreads int
	contention  bool

	recorders []*Recorder
	slabs     []*event.Slab
	models    *weaveModels
	// pool is the unified persistent worker pool shared by the bound phase
	// and the weave engine; it is sized max(hostThreads, weave domains).
	pool *engine.Pool
	// engine is the persistent weave engine: built once here on the shared
	// pool, reused every interval, closed when Run finishes.
	engine *event.Engine
	// last is the per-core scratch used by runWeave to track each core's
	// latest response event.
	last []lastResp

	globalCycle uint64
	rngState    uint64

	// Bound-round execution state: curAsg is the round's assignment list and
	// nextAsg the shared draw counter; boundTask is the pre-bound worker
	// body (no per-interval closures). asgA/asgB are the reusable
	// double-buffered assignment slices and coreCycles the per-round core
	// clock snapshot handed to the scheduler.
	curAsg      []virt.Assignment
	nextAsg     atomic.Int64
	intervalEnd uint64
	boundTask   func(int)
	asgA, asgB  []virt.Assignment
	coreCycles  []uint64
	// lastTid tracks the last software thread each core ran, to charge
	// context-switch micro-state invalidation on thread changes.
	lastTid []int32

	// instrsTotal is the running total of simulated instructions, maintained
	// by the bound-phase workers so the interval loop never rescans all
	// cores.
	instrsTotal atomic.Uint64

	// ctl is the cooperative cancellation token (never nil; a private token
	// when Options.Ctl was nil), and phase names the phase currently
	// executing ("bound" or "weave") for fault attribution.
	ctl   *runctl.Token
	phase string

	// probe and traceSink are the run's telemetry taps (both optional, both
	// nil-safe at every call site). lastWorkers is the worker count of the
	// most recent bound round (the pool-occupancy gauge).
	probe       *telemetry.Probe
	traceSink   *telemetry.TraceSink
	lastWorkers int

	// Run statistics.
	Intervals     uint64
	BoundRounds   uint64
	WeaveEvents   uint64
	TotalFeedback uint64
	BoundNanos    int64
	WeaveNanos    int64
	// Stalled reports that the run ended because no thread was runnable and
	// no blocked thread could ever be woken by the passage of simulated time
	// (a deadlocked workload); previously this spun forever.
	Stalled bool

	// Failure report: Reason is ReasonNone after a clean run (completion,
	// MaxInstrs or MaxIntervals reached) and the typed failure otherwise.
	// On ReasonPanicked, PanicErr carries the recovered capture and
	// FailPhase the phase that was executing. Partial statistics and the
	// system's metrics remain valid after any failure.
	Reason    runctl.Reason
	PanicErr  *runctl.PanicError
	FailPhase string
}

// lastResp remembers a core's latest weave response event and its zero-load
// lower bound.
type lastResp struct {
	ev       *event.Event
	minCycle uint64
}

// NewSimulator wires a built system, a populated scheduler and run options
// into a runnable simulation.
func NewSimulator(sys *System, sched *virt.Scheduler, opts Options) *Simulator {
	cfg := sys.Cfg
	host := opts.HostThreads
	if host <= 0 {
		host = cfg.HostThreads
	}
	if host <= 0 {
		host = runtime.NumCPU()
	}
	s := &Simulator{
		Sys:         sys,
		Sched:       sched,
		opts:        opts,
		intervalLen: cfg.IntervalCycles,
		hostThreads: host,
		contention:  cfg.Contention,
		rngState:    opts.Seed*6364136223846793005 + 1442695040888963407,
	}
	s.ctl = opts.Ctl
	if s.ctl == nil {
		s.ctl = new(runctl.Token)
	}
	a := sys.Root.Arena()
	s.boundTask = s.boundWorker
	s.coreCycles = arena.Take[uint64](a, len(sys.Cores))
	s.lastTid = arena.Take[int32](a, len(sys.Cores))
	for i := range s.lastTid {
		s.lastTid[i] = -1
	}

	// One persistent pool serves both phases: the bound phase wakes up to
	// hostThreads workers, and the (default) parallel weave needs one worker
	// per domain — domains park mid-interval waiting on horizons, so they
	// cannot share workers. Only the serial escape hatch runs weave inline.
	poolSize := host
	if s.contention && cfg.WeaveModeKind != config.WeaveSerial && sys.NumDomains > poolSize {
		poolSize = sys.NumDomains
	}
	s.pool = engine.NewPool(poolSize)

	if s.contention {
		maxComp := -1
		for _, comp := range sys.BankComp {
			if comp > maxComp {
				maxComp = comp
			}
		}
		for _, comp := range sys.MemComp {
			if comp > maxComp {
				maxComp = comp
			}
		}
		s.models = &weaveModels{
			banks: arena.Take[*BankModel](a, maxComp+1),
			mems:  arena.Take[memctrl.ContentionModel](a, maxComp+1),
		}
		if sys.Fabric != nil {
			// NoC contention: the fabric's routers live in the System (their
			// stats registry is built once); a fresh simulator starts them
			// from idle port clocks.
			sys.Fabric.Reset()
			s.models.fabric = sys.Fabric
			s.models.routerComp = sys.RouterComp
		}
		for i, comp := range sys.BankComp {
			s.models.banks[comp] = NewBankModel(sys.Banks[i].Latency(), sys.Banks[i].MSHRs(), uint64(cfg.MemLatency))
		}
		for _, comp := range sys.MemComp {
			var m memctrl.ContentionModel
			switch cfg.WeaveMem {
			case config.WeaveMemCycleDriven:
				m = memctrl.NewCycleDriven("weave-mem", memctrl.DefaultDDR3Timing())
			case config.WeaveMemNone:
				m = &memctrl.NoContention{Latency: uint64(cfg.MemLatency)}
			default:
				m = memctrl.NewDDR3("weave-mem", memctrl.DefaultDDR3Timing())
			}
			s.models.mems[comp] = m
		}
		// One dense shared-component table serves every recorder; recorders,
		// slabs and the bookkeeping slices all come from the construction
		// arena, so this loop performs O(1) chunk allocations for the whole
		// chip. Event-slab chunks are allocated lazily on first use.
		sharedArr := denseShared(a, sys.SharedComp)
		s.recorders = arena.TakeCap[*Recorder](a, 0, len(sys.Cores))
		s.slabs = arena.TakeCap[*event.Slab](a, 0, len(sys.Cores))
		for coreID, c := range sys.Cores {
			rec := newRecorderDense(a, coreID, sharedArr)
			s.recorders = append(s.recorders, rec)
			c.SetRecorder(rec)
			slab := event.NewSlabIn(a, 512)
			// Disjoint per-core sequence bases give every interval event a
			// globally unique, bound-phase-deterministic sequence number for
			// the weave heaps' (cycle, component, sequence) tie-break.
			slab.SetSeqBase(uint64(coreID) << 32)
			s.slabs = append(s.slabs, slab)
		}
		// The weave engine is persistent and shares the bound phase's worker
		// pool: its domains, queues and workers are built once and reused by
		// every interval.
		s.engine = event.NewEngineOnPool(sys.NumDomains, s.pool)
		if cfg.WeaveModeKind == config.WeaveSerial {
			s.engine.SetMode(event.ModeSerial)
		}
		for comp, dom := range sys.CompDomain {
			s.engine.AssignComponent(comp, dom)
		}
		s.last = arena.Take[lastResp](a, len(sys.Cores))
	}
	s.instrsTotal.Store(s.totalInstrs())
	s.probe = opts.Probe
	s.traceSink = opts.Trace
	if s.engine != nil {
		s.engine.SetTrace(opts.Trace)
	}
	if opts.Profiler != nil {
		for _, c := range sys.Cores {
			c.SetObserver(opts.Profiler)
		}
	}
	return s
}

// GlobalCycle returns the current interval-aligned global cycle.
func (s *Simulator) GlobalCycle() uint64 { return s.globalCycle }

// nextRand is a small xorshift for shuffling assignment order.
func (s *Simulator) nextRand() uint64 {
	x := s.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rngState = x
	return x
}

// totalInstrs sums the simulated instructions over all cores (slow path,
// used to seed the running counter and by tests; the interval loop reads the
// atomically maintained instrsTotal instead).
func (s *Simulator) totalInstrs() uint64 {
	var n uint64
	for _, c := range s.Sys.Cores {
		n += c.Instrs()
	}
	return n
}

// Close releases the simulator's persistent resources (the weave engine and
// the shared worker pool). It is idempotent; Run closes the simulator itself
// when it returns, so Close only needs to be called for simulators that are
// built but never run (e.g. construction benchmarks).
func (s *Simulator) Close() {
	if s.engine != nil {
		s.engine.Close()
	}
	s.pool.Close()
}

// Reset rewinds a reusable simulator — and the System underneath it — to the
// state a freshly built pair would have, so the same instance can serve
// another run without reconstruction. Everything expensive stays warm: the
// construction arena's chunks, the worker pool, the weave engine with its
// domains and queues, the per-core recorders, event slabs and contention
// models. Only their mutable state rewinds, so a Reset simulator produces
// bit-identical results to a fresh build for the same options and workloads.
//
// opts may vary the run-variable knobs (seed, limits, cancellation token,
// profiler); shape-defining state (interval length, contention models,
// domain count, pool size) comes from the System and is retained. The
// scheduler is not touched — the caller clears and repopulates it with
// workloads before the next Run.
//
// Reset requires a quiescent simulator whose last Run did not panic: an
// aborted engine may hold parked workers in an undefined state and must be
// Closed instead (Reset returns an error and leaves the simulator untouched).
func (s *Simulator) Reset(opts Options) error {
	if s.Reason == runctl.ReasonPanicked {
		return errors.New("boundweave: cannot Reset a simulator after a panicked run; Close it and build a fresh one")
	}
	opts.Reusable = true
	s.Sys.Reset()

	// Core resets detach recorders and observers; re-install them.
	if s.contention {
		for coreID, c := range s.Sys.Cores {
			rec := s.recorders[coreID]
			rec.Reset()
			rec.Dropped = 0
			c.SetRecorder(rec)
		}
		for _, slab := range s.slabs {
			slab.Reset()
		}
		for _, b := range s.models.banks {
			if b != nil {
				b.Reset()
				b.Accesses, b.PortConflicts, b.MSHRStalls = 0, 0, 0
			}
		}
		for _, m := range s.models.mems {
			if m != nil {
				m.Reset()
			}
		}
		s.engine.Reset()
		for i := range s.last {
			s.last[i] = lastResp{}
		}
	}
	if opts.Profiler != nil {
		for _, c := range s.Sys.Cores {
			c.SetObserver(opts.Profiler)
		}
	}

	host := opts.HostThreads
	if host <= 0 {
		host = s.Sys.Cfg.HostThreads
	}
	if host <= 0 {
		host = runtime.NumCPU()
	}
	s.opts = opts
	s.hostThreads = host // Pool.Run clamps to the pool's built size
	s.rngState = opts.Seed*6364136223846793005 + 1442695040888963407
	s.ctl = opts.Ctl
	if s.ctl == nil {
		s.ctl = new(runctl.Token)
	}

	s.globalCycle = 0
	s.curAsg = nil
	s.nextAsg.Store(0)
	s.intervalEnd = 0
	s.asgA = s.asgA[:0]
	s.asgB = s.asgB[:0]
	clear(s.coreCycles)
	for i := range s.lastTid {
		s.lastTid[i] = -1
	}
	s.instrsTotal.Store(0)
	s.phase = ""
	s.probe = opts.Probe
	s.traceSink = opts.Trace
	if s.engine != nil {
		s.engine.SetTrace(opts.Trace)
	}
	s.lastWorkers = 0

	s.Intervals = 0
	s.BoundRounds = 0
	s.WeaveEvents = 0
	s.TotalFeedback = 0
	s.BoundNanos = 0
	s.WeaveNanos = 0
	s.Stalled = false
	s.Reason = runctl.ReasonNone
	s.PanicErr = nil
	s.FailPhase = ""
	return nil
}

// Run executes the bound-weave loop until every thread finishes, a
// configured bound (instructions or intervals) is reached, the cancellation
// token trips (caller cancel, wall-time watchdog, cycle limit), the workload
// deadlocks, or a worker panics. It returns the total number of simulated
// instructions; after an abnormal stop, Reason (and for panics PanicErr /
// FailPhase) describes the failure and all statistics reflect the partial
// run. Run never lets a panic escape. Unless Options.Reusable is set it
// releases the simulator's persistent resources on return; a reusable
// simulator keeps them warm for Reset and relies on its owner to Close.
func (s *Simulator) Run() uint64 {
	if !s.opts.Reusable {
		defer s.Close()
	}
	defer func() {
		if r := recover(); r != nil {
			// Fault containment: a panic in a pool worker arrives here as a
			// *runctl.PanicError re-raised by the pool/engine; anything else
			// (a fault on the driver goroutine itself) is captured now.
			s.PanicErr = runctl.NewPanicError(r, -1)
			s.Reason = runctl.ReasonPanicked
			s.FailPhase = s.phase
		}
	}()
	// The wall-clock watchdog is armed for exactly the duration of Run: it
	// can only trip the token, which the loop below polls, so enforcement
	// stays cooperative and the overshoot is bounded by one interval.
	if w := runctl.Watch(s.ctl, s.opts.MaxWallTime); w != nil {
		defer w.Stop()
	}
	s.probe.BeginRun(s.opts.MaxCycles)
	defer func() {
		// Final publication (runs first on the defer stack, so it also fires
		// while a panic is unwinding toward the containment recover above;
		// the pool is quiescent by then). Everything it reads is valid after
		// any termination.
		s.publishTelemetry()
		s.probe.SetPhase(telemetry.PhaseDone)
	}()
	for {
		// Interval-boundary cancellation point (one atomic load).
		if r := s.ctl.Reason(); r != runctl.ReasonNone {
			s.Reason = r
			break
		}
		if s.opts.MaxCycles > 0 && s.globalCycle >= s.opts.MaxCycles {
			s.Reason = runctl.ReasonCycleLimit
			break
		}
		if s.Sched.LiveThreads() == 0 {
			break
		}
		if s.opts.MaxInstrs > 0 && s.instrsTotal.Load() >= s.opts.MaxInstrs {
			break
		}
		if s.opts.MaxIntervals > 0 && s.Intervals >= s.opts.MaxIntervals {
			break
		}
		if !s.runInterval() {
			break
		}
	}
	return s.instrsTotal.Load()
}

// runInterval executes one bound phase (as a sequence of mid-interval
// rounds) and (optionally) one weave phase. It returns false when the
// simulation can make no further progress.
func (s *Simulator) runInterval() bool {
	s.Intervals++
	asg := s.Sched.ScheduleIntervalInto(s.globalCycle, s.asgA[:0])
	intervalEnd := s.globalCycle + s.intervalLen
	if len(asg) == 0 {
		s.asgA = asg
		// Everything is blocked. Only syscall completions are driven by the
		// passage of simulated time, so fast-forward the clock straight to
		// the earliest wake instead of stepping empty intervals one by one.
		wake, ok := s.Sched.NextSyscallWake()
		if !ok {
			// Nothing runnable and nothing time can wake: the workload is
			// deadlocked (e.g. a barrier no one else will reach). Stop
			// instead of spinning forever.
			s.Stalled = true
			s.Reason = runctl.ReasonDeadlocked
			return false
		}
		if wake > intervalEnd {
			s.globalCycle = wake
		} else {
			s.globalCycle = intervalEnd
		}
		s.publishTelemetry()
		return true
	}

	// Shuffle the wake-up order to avoid systematic bias (the interval
	// barrier's third role in Section 3.2.1). The shuffle is seeded, so it
	// does not perturb determinism.
	for i := len(asg) - 1; i > 0; i-- {
		j := int(s.nextRand() % uint64(i+1))
		asg[i], asg[j] = asg[j], asg[i]
	}

	// Bound phase: each round, up to hostThreads pool workers draw
	// assignments from a shared counter; at most hostThreads simulated cores
	// run concurrently, and when one finishes its slice the next waiting
	// core is taken up — the barrier's "moderate parallelism" role. Between
	// rounds the scheduler arbitrates the recorded synchronization
	// operations in deterministic simulated-time order and immediately
	// refills cores freed by blocking threads (mid-interval join/leave).
	boundStart := time.Now()
	s.phase = "bound"
	s.probe.SetPhase(telemetry.PhaseBound)
	s.intervalEnd = intervalEnd
	cur, spare := asg, s.asgB
	for len(cur) > 0 && !s.ctl.Cancelled() {
		s.BoundRounds++
		s.curAsg = cur
		s.nextAsg.Store(0)
		workers := s.hostThreads
		if workers > len(cur) {
			workers = len(cur)
		}
		s.lastWorkers = workers
		s.pool.Run(workers, s.boundTask)
		for i, c := range s.Sys.Cores {
			s.coreCycles[i] = c.Cycle()
		}
		next := s.Sched.ResolveRound(cur, s.globalCycle, intervalEnd, s.coreCycles, spare[:0])
		cur, spare = next, cur
	}
	s.asgA, s.asgB = cur, spare
	s.curAsg = nil
	s.Sched.EndInterval(intervalEnd)
	boundDur := time.Since(boundStart)
	s.BoundNanos += boundDur.Nanoseconds()
	s.traceSink.Add(telemetry.TrackPhases, "bound", boundStart, boundDur, s.Intervals)

	// Weave phase: retime the recorded accesses with contention models. The
	// phase boundary is the second cancellation point of the interval: a run
	// cancelled during the bound phase skips the weave entirely (its partial
	// interval is being discarded anyway).
	if s.contention && !s.ctl.Cancelled() {
		weaveStart := time.Now()
		s.phase = "weave"
		s.probe.SetPhase(telemetry.PhaseWeave)
		s.runWeave()
		s.phase = "bound"
		s.probe.SetPhase(telemetry.PhaseBound)
		weaveDur := time.Since(weaveStart)
		s.WeaveNanos += weaveDur.Nanoseconds()
		s.traceSink.Add(telemetry.TrackPhases, "weave", weaveStart, weaveDur, s.Intervals)
	}

	s.globalCycle = intervalEnd
	s.publishTelemetry()
	return true
}

// publishTelemetry stores the run's current counters into the probe: one
// Sample built on the stack and written with atomic stores, so it adds no
// allocation to the interval loop. All sources are quiescent at interval
// boundaries (the pool's workers are parked between phases).
func (s *Simulator) publishTelemetry() {
	if s.probe == nil {
		return
	}
	sc := s.Sched.Counts()
	smp := telemetry.Sample{
		Intervals:       s.Intervals,
		BoundRounds:     s.BoundRounds,
		Cycles:          s.globalCycle,
		Instrs:          s.instrsTotal.Load(),
		WeaveEvents:     s.WeaveEvents,
		BoundNanos:      s.BoundNanos,
		WeaveNanos:      s.WeaveNanos,
		PoolWorkers:     s.lastWorkers,
		LiveThreads:     sc.Live,
		RunnableThreads: sc.Runnable,
	}
	smp.PoolRuns, smp.PoolWakes = s.pool.Stats()
	if s.engine != nil {
		smp.HorizonParks, smp.DomainWakes, smp.CrossHandoffs, smp.StallNanos = s.engine.Telemetry()
	}
	s.probe.Publish(smp)
}

// boundWorker is the persistent bound-phase worker body: it draws core
// assignments from the shared counter until the round's list is drained.
func (s *Simulator) boundWorker(_ int) {
	for {
		idx := int(s.nextAsg.Add(1)) - 1
		if idx >= len(s.curAsg) {
			return
		}
		s.runCoreRound(s.curAsg[idx])
	}
}

// runCoreRound simulates one core until it reaches the interval end, its
// thread blocks or finishes, or the thread pauses for lock arbitration.
// Synchronization operations are recorded thread-locally and resolved by the
// scheduler at the round boundary — the per-block hot path takes no locks.
func (s *Simulator) runCoreRound(a virt.Assignment) {
	c := s.Sys.Cores[a.Core]
	th := a.Thread
	instrsBefore := c.Instrs()

	if s.lastTid[a.Core] != int32(th.ID) {
		s.lastTid[a.Core] = int32(th.ID)
		c.ContextSwitch()
	}

	start := c.Cycle()
	if s.globalCycle > start {
		start = s.globalCycle
	}
	if th.Cycle > start {
		start = th.Cycle
	}
	c.SetCycle(start)

	intervalEnd := s.intervalEnd
loop:
	for c.Cycle() < intervalEnd {
		blk := th.Stream.NextBlock()
		switch blk.Sync {
		case trace.SyncDone:
			th.Record(virt.OpDone, 0, c.Cycle(), 0)
			break loop
		case trace.SyncBarrier:
			c.SimulateBlock(blk)
			th.Cycle = c.Cycle()
			th.Record(virt.OpBarrier, blk.SyncID, c.Cycle(), 0)
			break loop
		case trace.SyncBlocked:
			c.SimulateBlock(blk)
			th.Cycle = c.Cycle()
			th.Record(virt.OpSyscall, 0, c.Cycle(), blk.SyncArg)
			break loop
		case trace.SyncLockAcquire:
			c.SimulateBlock(blk)
			th.Cycle = c.Cycle()
			// Pause for deterministic arbitration: granted acquires resume
			// on this core next round at this same cycle, contended ones
			// free the core for another thread.
			th.Record(virt.OpLockAcquire, blk.SyncID, c.Cycle(), 0)
			break loop
		case trace.SyncLockRelease:
			c.SimulateBlock(blk)
			th.Cycle = c.Cycle()
			th.Record(virt.OpLockRelease, blk.SyncID, c.Cycle(), 0)
		default:
			c.SimulateBlock(blk)
		}
	}
	if c.Cycle() > th.Cycle {
		th.Cycle = c.Cycle()
	}
	s.instrsTotal.Add(c.Instrs() - instrsBefore)
}

// runWeave builds the interval's event graph from the per-core recorders,
// executes it on the persistent engine across parallel domains, and feeds
// the contention delays back into the core clocks. Once the slabs, queues
// and hop freelists have warmed up, a steady-state weave interval performs
// no heap allocation.
func (s *Simulator) runWeave() {
	engine := s.engine

	// Build chains per core and remember each core's latest response event.
	last := s.last
	for i := range last {
		last[i] = lastResp{}
	}
	totalEvents := uint64(0)
	for coreID, rec := range s.recorders {
		slab := s.slabs[coreID]
		slab.Reset()
		coreComp := s.Sys.CoreComp[coreID]
		var prevLoadResp *event.Event
		for i := range rec.recs {
			r := &rec.recs[i]
			resp := buildChain(slab, r, coreComp, s.models, prevLoadResp)
			if !r.write {
				prevLoadResp = resp
			}
			totalEvents += uint64(len(r.hops)) + 2
			if resp.MinCycle >= last[coreID].minCycle {
				last[coreID] = lastResp{ev: resp, minCycle: resp.MinCycle}
			}
		}
	}
	// Enqueue the chain roots: every parentless event in the slabs is the
	// core-side start of one access chain.
	for coreID := range s.recorders {
		slab := s.slabs[coreID]
		for i := 0; i < slab.InUse(); i++ {
			ev := slab.At(i)
			if ev.Parentless() {
				engine.Enqueue(ev)
			}
		}
	}
	s.WeaveEvents += totalEvents

	engine.Run()

	// Feedback: each core's clock advances by the contention delay of its
	// last access (actual finish minus zero-load bound).
	for coreID, lr := range last {
		if lr.ev == nil || !lr.ev.Finished() {
			continue
		}
		if lr.ev.FinishCycle() > lr.minCycle {
			delay := lr.ev.FinishCycle() - lr.minCycle
			s.Sys.Cores[coreID].AddDelay(delay)
			s.TotalFeedback += delay
		}
	}

	// Recycle the interval's traces. The contention models keep their clocks
	// across intervals (they are absolute-cycle based), so they need no reset.
	for _, rec := range s.recorders {
		rec.Reset()
	}
}
