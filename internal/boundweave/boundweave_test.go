package boundweave

import (
	"testing"

	"zsim/internal/cache"
	"zsim/internal/config"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

func smallWorkload(name string, threads, blocks int) *trace.Workload {
	p := trace.DefaultParams()
	p.BlocksPerThread = blocks
	p.WorkingSet = 1 << 18
	return trace.New(name, p, threads)
}

func TestBuildSystemWestmere(t *testing.T) {
	sys, err := BuildSystem(config.WestmereValidation())
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	if len(sys.Cores) != 6 || len(sys.L1I) != 6 || len(sys.L1D) != 6 {
		t.Fatalf("expected 6 cores with private L1s")
	}
	if len(sys.L2) != 6 {
		t.Fatalf("Westmere has private L2s (one per core), got %d", len(sys.L2))
	}
	if len(sys.Banks) != 6 || sys.L3.NumBanks() != 6 {
		t.Fatalf("expected a 6-bank L3")
	}
	if len(sys.Mems) != 1 {
		t.Fatalf("expected 1 memory controller")
	}
	// Shared components are exactly the banks + controllers.
	if len(sys.SharedComp) != 7 {
		t.Fatalf("expected 7 shared components, got %d", len(sys.SharedComp))
	}
	// Every core, bank and controller has a domain below NumDomains.
	for _, comp := range append(append(append([]int{}, sys.CoreComp...), sys.BankComp...), sys.MemComp...) {
		d, ok := sys.CompDomain[comp]
		if !ok || d < 0 || d >= sys.NumDomains {
			t.Fatalf("component %d has no valid domain", comp)
		}
	}
	if sys.Cores[0].Name() != "ooo" {
		t.Fatalf("Westmere preset uses OOO cores")
	}
}

func TestBuildSystemTiled(t *testing.T) {
	sys, err := BuildSystem(config.TiledChip(4, config.CoreIPC1))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	if len(sys.Cores) != 64 {
		t.Fatalf("4 tiles should have 64 cores")
	}
	if len(sys.L2) != 4 {
		t.Fatalf("one shared L2 per tile expected, got %d", len(sys.L2))
	}
	if len(sys.Banks) != 4 {
		t.Fatalf("one L3 bank per tile expected")
	}
	if sys.Cores[0].Name() != "ipc1" {
		t.Fatalf("requested IPC1 cores")
	}
	if len(sys.Mems) != 2 {
		t.Fatalf("one controller per tile pair expected, got %d", len(sys.Mems))
	}
}

func TestBuildSystemRejectsInvalid(t *testing.T) {
	if _, err := BuildSystem(&config.System{}); err == nil {
		t.Fatalf("invalid config should be rejected")
	}
}

func runSmall(t *testing.T, cfg *config.System, threads, blocks int, opts Options) (*System, *Simulator) {
	t.Helper()
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(smallWorkload("test", threads, blocks))
	sim := NewSimulator(sys, sched, opts)
	sim.Run()
	return sys, sim
}

func TestSimulatorRunsToCompletion(t *testing.T) {
	cfg := config.SmallTest()
	sys, sim := runSmall(t, cfg, 4, 400, Options{HostThreads: 2, Seed: 1})
	m := sys.Metrics()
	if m.Instrs == 0 || m.Cycles == 0 {
		t.Fatalf("simulation should execute work: %+v", m)
	}
	if m.IPC <= 0 || m.IPC > 4*4 {
		t.Fatalf("implausible aggregate IPC: %f", m.IPC)
	}
	if sim.Intervals == 0 {
		t.Fatalf("intervals should be counted")
	}
	if sim.Sched.LiveThreads() != 0 {
		t.Fatalf("all threads should finish")
	}
	// Caches saw traffic.
	if m.L1DMisses == 0 || m.MemReads == 0 {
		t.Fatalf("memory hierarchy should see traffic: %+v", m)
	}
}

func TestSimulatorMaxInstrs(t *testing.T) {
	cfg := config.SmallTest()
	_, sim := runSmall(t, cfg, 4, 100000, Options{MaxInstrs: 50000, HostThreads: 2})
	total := sim.totalInstrs()
	if total < 50000 {
		t.Fatalf("should simulate at least MaxInstrs, got %d", total)
	}
	if total > 50000*4 {
		t.Fatalf("should stop soon after MaxInstrs, got %d", total)
	}
}

func TestSimulatorMaxIntervals(t *testing.T) {
	cfg := config.SmallTest()
	_, sim := runSmall(t, cfg, 2, 1000000, Options{MaxIntervals: 5, HostThreads: 2})
	if sim.Intervals != 5 {
		t.Fatalf("should stop after 5 intervals, got %d", sim.Intervals)
	}
}

func TestContentionSlowsMemoryBoundWorkload(t *testing.T) {
	// A bandwidth-heavy workload on many cores: with the weave phase enabled
	// the simulated execution must take more cycles than with zero-load
	// latencies only.
	mk := func(contention bool) uint64 {
		cfg := config.SmallTest()
		cfg.NumCores = 8
		cfg.CoreModel = config.CoreIPC1
		cfg.Contention = contention
		cfg.WeaveDomains = 4
		p := trace.MustLookup("stream")
		p.BlocksPerThread = 300
		p.WorkingSet = 8 << 20
		w := trace.New("stream", p, 8)
		sys, err := BuildSystem(cfg)
		if err != nil {
			t.Fatalf("BuildSystem: %v", err)
		}
		sched := virt.NewScheduler(cfg.NumCores)
		sched.AddWorkload(w)
		sim := NewSimulator(sys, sched, Options{HostThreads: 4, Seed: 7})
		sim.Run()
		if contention && sim.TotalFeedback == 0 {
			t.Fatalf("contention run should feed delays back into the cores")
		}
		return sys.Metrics().Cycles
	}
	nc := mk(false)
	c := mk(true)
	if c <= nc {
		t.Fatalf("contention should increase simulated time: %d (C) vs %d (NC)", c, nc)
	}
}

func TestRecorderFiltersPrivateAccesses(t *testing.T) {
	shared := map[int]bool{100: true}
	r := NewRecorder(0, shared)
	r.RecordAccess(0, 10, false, []cache.Hop{{Comp: 1, Kind: cache.HopMiss, Cycle: 10, Latency: 4}}) // private only
	if r.Len() != 0 || r.Dropped != 1 {
		t.Fatalf("private-only access should be dropped")
	}
	r.RecordAccess(0, 20, false, []cache.Hop{
		{Comp: 1, Kind: cache.HopMiss, Cycle: 20, Latency: 4},
		{Comp: 100, Kind: cache.HopHit, Cycle: 30, Latency: 14},
	})
	if r.Len() != 1 {
		t.Fatalf("shared access should be recorded")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("reset should clear records")
	}
}

func TestBankModelContention(t *testing.T) {
	b := NewBankModel(10, 2, 100)
	// Two accesses at the same cycle: the port serializes them.
	f1 := b.Schedule(50, false)
	f2 := b.Schedule(50, false)
	if f1 != 60 || f2 != 61 {
		t.Fatalf("port contention wrong: %d %d", f1, f2)
	}
	if b.PortConflicts != 1 {
		t.Fatalf("port conflict should be counted")
	}
	// MSHR limit: the third concurrent miss waits for an MSHR.
	b.Reset()
	b.Schedule(0, true)
	b.Schedule(0, true)
	f3 := b.Schedule(0, true)
	if f3 < 100 {
		t.Fatalf("MSHR-limited miss should wait for a free MSHR, finished at %d", f3)
	}
	if b.MSHRStalls == 0 {
		t.Fatalf("MSHR stall should be counted")
	}
	// Zero missHold defaults.
	if NewBankModel(1, 1, 0).MissHoldCycles == 0 {
		t.Fatalf("missHold should default")
	}
}

func TestInterferenceProfilerRules(t *testing.T) {
	p := NewInterferenceProfiler(1000)
	// Same line, same interval, different cores, both reads: NOT interfering.
	p.ObserveAccess(10, false, 0, 100)
	p.ObserveAccess(10, false, 1, 200)
	if p.Interfering != 0 {
		t.Fatalf("read-read sharing is not path-altering")
	}
	// A write from another core to the same line in the same interval IS.
	p.ObserveAccess(10, true, 2, 300)
	if p.Interfering != 1 {
		t.Fatalf("write to a read-shared line should interfere, got %d", p.Interfering)
	}
	// Subsequent read from yet another core also interferes (the line has
	// been written this interval).
	p.ObserveAccess(10, false, 3, 400)
	if p.Interfering != 2 {
		t.Fatalf("read after write should interfere, got %d", p.Interfering)
	}
	// Same core repeatedly writing its own line: not interfering.
	p.ObserveAccess(99, true, 5, 100)
	p.ObserveAccess(99, true, 5, 200)
	if p.Interfering != 2 {
		t.Fatalf("single-core accesses must not interfere")
	}
	// A new interval resets the line's history.
	p.ObserveAccess(10, true, 7, 5100)
	if p.Interfering != 2 {
		t.Fatalf("first access of a new interval must not interfere")
	}
	if p.Total != 7 {
		t.Fatalf("total accesses should be counted, got %d", p.Total)
	}
	if p.Fraction() <= 0 || p.Fraction() >= 1 {
		t.Fatalf("fraction out of range: %f", p.Fraction())
	}
	p.Reset()
	if p.Total != 0 || p.Fraction() != 0 {
		t.Fatalf("reset should clear the profiler")
	}
	// Zero interval length defaults to 1000.
	if NewInterferenceProfiler(0).intervalLen != 1000 {
		t.Fatalf("interval length should default")
	}
}

func TestInterferenceGrowsWithIntervalLength(t *testing.T) {
	// With a longer reordering window, more same-line cross-core accesses
	// fall into the same interval, so the interfering fraction cannot be
	// smaller (this is the key trend of Figure 2).
	run := func(intervalLen uint64) float64 {
		cfg := config.SmallTest()
		cfg.NumCores = 4
		cfg.Contention = false
		prof := NewInterferenceProfiler(intervalLen)
		p := trace.DefaultParams()
		p.BlocksPerThread = 400
		p.SharedFraction = 0.4
		p.SharedWorkingSet = 1 << 16
		p.StoreFraction = 0.4
		w := trace.New("sharing", p, 4)
		sys, err := BuildSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched := virt.NewScheduler(cfg.NumCores)
		sched.AddWorkload(w)
		sim := NewSimulator(sys, sched, Options{Profiler: prof, HostThreads: 2, Seed: 3})
		sim.Run()
		if prof.Total == 0 {
			t.Fatalf("profiler should observe accesses")
		}
		return prof.Fraction()
	}
	f1k := run(1000)
	f100k := run(100000)
	if f100k < f1k {
		t.Fatalf("interference fraction should not shrink with longer intervals: 1K=%g 100K=%g", f1k, f100k)
	}
}

func TestMultithreadedSpeedup(t *testing.T) {
	// A fixed-size parallel workload should finish in fewer simulated cycles
	// with more cores (this is the mechanism behind the Figure 6 speedup
	// curves).
	run := func(threads int) uint64 {
		cfg := config.SmallTest()
		cfg.NumCores = 8
		cfg.CoreModel = config.CoreIPC1
		cfg.Contention = false
		p := trace.DefaultParams()
		p.BlocksPerThread = 3200
		p.ScaleWork = true
		p.SerialFraction = 0.05
		w := trace.New("scaling", p, threads)
		sys, err := BuildSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched := virt.NewScheduler(cfg.NumCores)
		sched.AddWorkload(w)
		NewSimulator(sys, sched, Options{HostThreads: 4, Seed: 9}).Run()
		return sys.Metrics().Cycles
	}
	one := run(1)
	four := run(4)
	speedup := float64(one) / float64(four)
	if speedup < 2.0 {
		t.Fatalf("4 threads should be at least 2x faster than 1 on a scalable workload, got %.2fx", speedup)
	}
	if speedup > 4.5 {
		t.Fatalf("speedup cannot meaningfully exceed the thread count, got %.2fx", speedup)
	}
}

func TestLockContentionLimitsSpeedup(t *testing.T) {
	// With a single heavily-contended lock, parallel efficiency should be
	// clearly worse than in the lock-free case.
	run := func(lockEvery int) float64 {
		cycles := func(threads int) uint64 {
			cfg := config.SmallTest()
			cfg.NumCores = 4
			cfg.CoreModel = config.CoreIPC1
			cfg.Contention = false
			p := trace.DefaultParams()
			p.BlocksPerThread = 2000
			p.ScaleWork = true
			p.LockEvery = lockEvery
			p.LockHoldBlocks = 6
			p.NumLocks = 1
			w := trace.New("locky", p, threads)
			sys, err := BuildSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sched := virt.NewScheduler(cfg.NumCores)
			sched.AddWorkload(w)
			NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 11}).Run()
			return sys.Metrics().Cycles
		}
		return float64(cycles(1)) / float64(cycles(4))
	}
	free := run(0)
	locky := run(8)
	if locky >= free {
		t.Fatalf("lock contention should reduce speedup: free=%.2fx locky=%.2fx", free, locky)
	}
}

func TestOversubscription(t *testing.T) {
	// 12 software threads on a 4-core chip must still run to completion via
	// the round-robin scheduler.
	cfg := config.SmallTest()
	cfg.NumCores = 4
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(smallWorkload("many-threads", 12, 200))
	sim := NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 5})
	sim.Run()
	if sched.LiveThreads() != 0 {
		t.Fatalf("all oversubscribed threads should finish, %d left", sched.LiveThreads())
	}
	if sched.ContextSwitches.Load() < 12 {
		t.Fatalf("round-robin scheduling should context switch, got %d", sched.ContextSwitches.Load())
	}
	if sys.Metrics().Instrs == 0 {
		t.Fatalf("work should have been executed")
	}
}

func TestBlockedSyscallsDoNotDeadlock(t *testing.T) {
	cfg := config.SmallTest()
	cfg.NumCores = 2
	p := trace.DefaultParams()
	p.BlocksPerThread = 300
	p.BlockedSyscallEvery = 40
	p.BlockedSyscallCycles = 20000 // several intervals long
	w := trace.New("syscalls", p, 2)
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(w)
	sim := NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 2})
	sim.Run()
	if sched.LiveThreads() != 0 {
		t.Fatalf("syscall-heavy workload should finish")
	}
	if sched.SyscallBlocks.Load() == 0 {
		t.Fatalf("blocking syscalls should have been taken")
	}
	// Blocked time is reflected in simulated time: the run must span more
	// cycles than a version without syscalls.
	if sys.Metrics().Cycles < 20000 {
		t.Fatalf("blocked time should advance simulated time, got %d cycles", sys.Metrics().Cycles)
	}
}

func TestWeaveEventsGeneratedUnderContention(t *testing.T) {
	cfg := config.SmallTest()
	cfg.NumCores = 4
	cfg.Contention = true
	cfg.WeaveDomains = 2
	p := trace.MustLookup("mcf")
	p.BlocksPerThread = 300
	w := trace.New("mcf", p, 4)
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(w)
	sim := NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 4})
	sim.Run()
	if sim.WeaveEvents == 0 {
		t.Fatalf("memory-bound workload should generate weave events")
	}
	if sim.BoundNanos == 0 || sim.WeaveNanos == 0 {
		t.Fatalf("phase timing should be measured")
	}
}

func TestMidIntervalReschedulingKeepsCoresBusy(t *testing.T) {
	// Oversubscribed, blocking-heavy workload: when a thread blocks on a
	// lock or syscall mid-interval, the freed core must immediately pull the
	// next runnable thread instead of idling until the interval barrier.
	cfg := config.SmallTest()
	cfg.NumCores = 4
	p := trace.DefaultParams()
	p.BlocksPerThread = 400
	p.LockEvery = 20
	p.NumLocks = 2
	p.LockHoldBlocks = 4
	p.BlockedSyscallEvery = 50
	p.BlockedSyscallCycles = 2500
	w := trace.New("busy", p, 10) // 10 software threads on 4 cores
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(w)
	sim := NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 6})
	sim.Run()
	if sched.LiveThreads() != 0 {
		t.Fatalf("all threads should finish, %d left", sched.LiveThreads())
	}
	if sched.MidIntervalJoins.Load() == 0 {
		t.Fatalf("blocking threads should trigger mid-interval joins")
	}
	if sim.BoundRounds <= sim.Intervals {
		t.Fatalf("mid-interval rescheduling should add rounds: %d rounds over %d intervals",
			sim.BoundRounds, sim.Intervals)
	}
}

func TestIdleIntervalFastForward(t *testing.T) {
	// When every thread is blocked in long syscalls, the driver must jump
	// simulated time straight to the next wake instead of stepping empty
	// intervals one by one.
	cfg := config.SmallTest()
	cfg.NumCores = 2
	p := trace.DefaultParams()
	p.BlocksPerThread = 30
	p.BlockedSyscallEvery = 10
	p.BlockedSyscallCycles = 200000 // 200 interval lengths
	w := trace.New("sleepy", p, 2)
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(w)
	sim := NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 8})
	sim.Run()
	if sched.LiveThreads() != 0 {
		t.Fatalf("workload should finish")
	}
	cycles := sys.Metrics().Cycles
	if cycles < 400000 {
		t.Fatalf("blocked time should advance simulated time, got %d cycles", cycles)
	}
	naiveIntervals := cycles / cfg.IntervalCycles
	if sim.Intervals*5 > naiveIntervals {
		t.Fatalf("idle intervals should be fast-forwarded: %d intervals for %d cycles (naive: %d)",
			sim.Intervals, cycles, naiveIntervals)
	}
}

func TestStalledWorkloadTerminates(t *testing.T) {
	// A genuinely deadlocked workload (a barrier waiter holding the lock a
	// second thread needs) must stop the run with Stalled=true instead of
	// advancing simulated time forever.
	cfg := config.SmallTest()
	cfg.NumCores = 2
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(smallWorkload("deadlock", 2, 100))
	t0, t1 := sched.Thread(0), sched.Thread(1)
	sched.ScheduleInterval(0)
	if !sched.OnLockAcquire(t0, 1, 0) {
		t.Fatal("free lock should be granted")
	}
	sched.OnBarrier(t0, 1, 0)          // t0 waits for t1, holding lock 1
	if sched.OnLockAcquire(t1, 1, 0) { // t1 blocks on t0's lock
		t.Fatal("held lock should block")
	}
	sim := NewSimulator(sys, sched, Options{Seed: 1})
	sim.Run()
	if !sim.Stalled {
		t.Fatalf("deadlocked workload should be reported as stalled")
	}
}
