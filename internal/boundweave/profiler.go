package boundweave

import "sync"

// InterferenceProfiler measures the fraction of memory accesses that suffer
// path-altering interference for a given reordering window (interval length),
// reproducing the characterization of Figure 2. Two accesses interfere in a
// path-altering way when they touch the same cache line within the same
// interval, come from different cores, and at least one of them is a write
// (two read hits to the same line are explicitly excluded by the paper's
// definition). Eviction-induced interference is not counted here; the paper
// reports it is negligible for realistic associativities.
//
// The profiler is installed as a cache.AccessObserver on every core, so it
// sees the access stream before the hierarchy reorders anything. It is safe
// for concurrent use by all bound-phase worker threads.
type InterferenceProfiler struct {
	intervalLen uint64

	mu sync.Mutex
	// lines maps line -> per-interval access summary. Entries are reset
	// lazily whenever an access from a newer interval arrives.
	lines map[uint64]*lineInfo

	Total       uint64
	Interfering uint64
	// WriteShared counts interfering accesses that involved a write to a
	// shared line (the dominant class in the paper's characterization).
	WriteShared uint64
}

type lineInfo struct {
	interval  uint64
	firstCore int
	multiCore bool
	anyWrite  bool
}

// NewInterferenceProfiler creates a profiler for the given interval length in
// cycles (the paper sweeps 1K, 10K and 100K).
func NewInterferenceProfiler(intervalLen uint64) *InterferenceProfiler {
	if intervalLen == 0 {
		intervalLen = 1000
	}
	return &InterferenceProfiler{
		intervalLen: intervalLen,
		lines:       make(map[uint64]*lineInfo),
	}
}

// ObserveAccess implements cache.AccessObserver.
func (p *InterferenceProfiler) ObserveAccess(lineAddr uint64, write bool, coreID int, cycle uint64) {
	interval := cycle / p.intervalLen
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Total++
	li, ok := p.lines[lineAddr]
	if !ok || li.interval != interval {
		if !ok {
			li = &lineInfo{}
			p.lines[lineAddr] = li
		}
		li.interval = interval
		li.firstCore = coreID
		li.multiCore = false
		li.anyWrite = write
		return
	}
	// Same line, same interval.
	sameCore := li.firstCore == coreID && !li.multiCore
	if !sameCore {
		li.multiCore = true
	}
	interferes := !sameCore && (write || li.anyWrite)
	if write {
		li.anyWrite = true
	}
	if interferes {
		p.Interfering++
		if write {
			p.WriteShared++
		}
	}
}

// Fraction returns interfering accesses / total accesses.
func (p *InterferenceProfiler) Fraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.Total == 0 {
		return 0
	}
	return float64(p.Interfering) / float64(p.Total)
}

// Reset clears all counts and line state.
func (p *InterferenceProfiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lines = make(map[uint64]*lineInfo)
	p.Total = 0
	p.Interfering = 0
	p.WriteShared = 0
}
