package boundweave

// Construction-cost regression tests: building a chip must stay a handful of
// large (arena-chunk) allocations per component, not a storm of small ones.
// BenchmarkConstruct1024 at the repo root tracks absolute cost; these bounds
// catch silent regressions in go test.

import (
	"testing"

	"zsim/internal/config"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// TestConstructionAllocsBounded builds the 1,024-core contended tiled chip —
// system, scheduler, workload and bound-weave simulator — and bounds the
// heap allocations per simulated core. Before arena-backed construction this
// path performed ~72 allocations per core (counters, predictor tables, cache
// set tables, registry nodes, name strings, event slabs); the arena brought
// it under 10, and arena-backing the workload decode (trace.NewIn +
// isa.DecodeIn: blocks, µops, timing templates, decoder cache) removed most
// of what was left — the remainder is per-thread stream objects and
// scheduler state.
func TestConstructionAllocsBounded(t *testing.T) {
	cfg := config.TiledChip(64, config.CoreIPC1) // 1,024 cores, contention on
	allocs := testing.AllocsPerRun(3, func() {
		sys, err := BuildSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched := virt.NewScheduler(cfg.NumCores)
		p := trace.DefaultParams()
		sched.AddWorkload(trace.NewIn(sys.Root.Arena(), "construct", p, cfg.NumCores))
		NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 1}).Close()
	})
	perCore := allocs / float64(cfg.NumCores)
	if perCore > 12 {
		t.Fatalf("construction allocates %.0f times (%.1f/core); budget is 12/core", allocs, perCore)
	}
}

// TestWorkloadDecodeAllocsBounded isolates the decoder-cache arena hook:
// generating and decoding a workload's whole static code footprint into an
// arena must cost a bounded number of heap allocations (chunks, the decoder
// map's buckets and per-thread bookkeeping), not the ~4k per-block
// allocations the heap path performs.
func TestWorkloadDecodeAllocsBounded(t *testing.T) {
	cfg := config.SmallTest()
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := trace.DefaultParams()
	p.StaticBlocks = 512
	allocs := testing.AllocsPerRun(3, func() {
		trace.NewIn(sys.Root.Arena(), "decode", p, 1)
	})
	// Heap path: ~8 allocations per static block (block, instrs growth,
	// decoded BBL, µops, template, mem-ops, live-out, map insert). Arena
	// path: map buckets plus amortized chunk allocations.
	if allocs > float64(p.StaticBlocks) {
		t.Fatalf("arena-backed workload decode allocates %.0f times for %d blocks; want < 1/block",
			allocs, p.StaticBlocks)
	}
}

// TestNewSimulatorAllocsBounded isolates NewSimulator itself (recorders,
// event slabs, weave engine, pool, scratch): on an already-built system it
// must stay O(1) — everything bulk comes from the system's arena.
func TestNewSimulatorAllocsBounded(t *testing.T) {
	cfg := config.TiledChip(4, config.CoreIPC1)
	sys, err := BuildSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := virt.NewScheduler(cfg.NumCores)
	p := trace.DefaultParams()
	p.BlocksPerThread = 1
	sched.AddWorkload(trace.New("construct", p, cfg.NumCores))
	allocs := testing.AllocsPerRun(5, func() {
		NewSimulator(sys, sched, Options{HostThreads: 2, Seed: 1}).Close()
	})
	// Budget: simulator + pool + engine/domains + contention models + a few
	// amortized arena chunks — independent of the core count.
	if allocs > 128 {
		t.Fatalf("NewSimulator allocates %.0f times; budget is 128 (O(1), not O(cores))", allocs)
	}
}
