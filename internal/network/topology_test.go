package network

import "testing"

// topologies under test: every routed topology must keep its route
// enumeration consistent with its zero-load latency model.
func testTopologies() []Topology {
	return []Topology{
		NewRing(1, 1, 5),
		NewRing(2, 1, 5),
		NewRing(6, 1, 5), // validated Westmere uncore
		NewRing(7, 2, 3), // odd size: shorter-direction ties cannot happen
		NewRing(8, 3, 0), // even size: antipodal ties
		NewMesh(1, 1, 1, 2, 1),
		NewMesh(2, 2, 1, 2, 1),
		NewMesh(8, 8, 1, 2, 1), // Table 3's 64-tile chip
		NewMesh(5, 3, 2, 1, 4), // non-square, asymmetric latencies
	}
}

// TestRouteLatencyConsistency checks, for every (src, dst) pair of every
// topology, that the enumerated route is a well-formed path from src to dst
// whose hop count matches the zero-load latency decomposition:
// Latency == InjectionLatency + len(route)*PerHopLatency.
func TestRouteLatencyConsistency(t *testing.T) {
	for _, topo := range testTopologies() {
		n := topo.Nodes()
		var buf []Link
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				buf = RouteAppend(topo, src, dst, buf[:0])
				// Path well-formedness: starts at src, ends at dst, links
				// connect, ports in range, no node repeats (minimal routes
				// cannot revisit).
				cur := src
				seen := map[int]bool{src: true}
				for _, l := range buf {
					if l.From != cur {
						t.Fatalf("%s %d->%d: link %+v does not start at %d", topo.Name(), src, dst, l, cur)
					}
					if l.Port < 0 || l.Port >= topo.NumPorts() {
						t.Fatalf("%s %d->%d: port %d out of range [0,%d)", topo.Name(), src, dst, l.Port, topo.NumPorts())
					}
					if seen[l.To] {
						t.Fatalf("%s %d->%d: route revisits node %d", topo.Name(), src, dst, l.To)
					}
					seen[l.To] = true
					cur = l.To
				}
				if cur != dst {
					t.Fatalf("%s: route %d->%d ends at %d", topo.Name(), src, dst, cur)
				}
				want := topo.InjectionLatency() + uint32(len(buf))*topo.PerHopLatency()
				if src == dst && len(buf) != 0 {
					t.Fatalf("%s: self-route %d->%d has %d links", topo.Name(), src, dst, len(buf))
				}
				if got := topo.Latency(src, dst); got != want {
					t.Fatalf("%s %d->%d: Latency=%d but injection+%d hops*perHop=%d",
						topo.Name(), src, dst, got, len(buf), want)
				}
			}
		}
	}
}

// TestRouteHopCountSymmetry checks that routes are hop-count symmetric:
// the path back takes as many hops as the path there (dimension-ordered
// mesh routes differ in shape, minimal distance does not).
func TestRouteHopCountSymmetry(t *testing.T) {
	for _, topo := range testTopologies() {
		n := topo.Nodes()
		var fwd, back []Link
		for src := 0; src < n; src++ {
			for dst := src + 1; dst < n; dst++ {
				fwd = RouteAppend(topo, src, dst, fwd[:0])
				back = RouteAppend(topo, dst, src, back[:0])
				if len(fwd) != len(back) {
					t.Fatalf("%s: |route(%d,%d)|=%d but |route(%d,%d)|=%d",
						topo.Name(), src, dst, len(fwd), dst, src, len(back))
				}
			}
		}
	}
}

// TestRouteNormalization checks that out-of-range node indices reduce the
// way Latency's arguments do.
func TestRouteNormalization(t *testing.T) {
	topo := NewMesh(4, 4, 1, 2, 1)
	n := topo.Nodes()
	a := RouteAppend(topo, 1, 14, nil)
	b := RouteAppend(topo, 1+n, 14-2*n, nil)
	if len(a) != len(b) {
		t.Fatalf("normalized route lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("normalized routes differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestMeshDimensionOrder pins the routing discipline: X fully resolves
// before Y (the discipline the contention model's port occupancy assumes).
func TestMeshDimensionOrder(t *testing.T) {
	topo := NewMesh(4, 4, 1, 2, 1)
	route := RouteAppend(topo, 0, 15, nil) // (0,0) -> (3,3)
	sawY := false
	for _, l := range route {
		isY := l.Port == MeshPortSouth || l.Port == MeshPortNorth
		if sawY && !isY {
			t.Fatalf("route %v uses an X port after a Y port", route)
		}
		sawY = sawY || isY
	}
	if len(route) != 6 {
		t.Fatalf("(0,0)->(3,3) should take 6 hops, got %d", len(route))
	}
}

// TestRingShorterDirection pins ring routing to the shorter direction (the
// direction Latency charges for).
func TestRingShorterDirection(t *testing.T) {
	topo := NewRing(6, 1, 5)
	if route := RouteAppend(topo, 0, 5, nil); len(route) != 1 || route[0].Port != RingPortCCW {
		t.Fatalf("0->5 on a 6-ring should be one counter-clockwise hop, got %+v", route)
	}
	if route := RouteAppend(topo, 0, 2, nil); len(route) != 2 || route[0].Port != RingPortCW {
		t.Fatalf("0->2 on a 6-ring should be two clockwise hops, got %+v", route)
	}
}
