// Package network provides the zero-load network-on-chip latency models used
// by the bound phase: a ring (the validated 6-core Westmere uncore) and a 2D
// mesh (the tiled thousand-core chip of Table 3). The paper argues that for
// well-provisioned NoCs, zero-load latencies capture most of the performance
// impact, and leaves weave-phase NoC contention models to future work; this
// package therefore only models hop counts, per-hop latency and injection
// latency.
package network

// Model returns the zero-load latency, in cycles, for a message from a source
// core (or tile) to a destination node (an L3 bank, memory controller or
// another tile).
type Model interface {
	// Latency returns the one-way zero-load latency in cycles from src to dst
	// node indices.
	Latency(src, dst int) uint32
	// Name identifies the topology.
	Name() string
}

// Ring models a unidirectional-traversal bidirectional ring: messages take
// the shorter direction. The validated Westmere configuration uses a ring
// with a 1-cycle hop latency and a 5-cycle injection latency.
type Ring struct {
	nodes     int
	hopCycles uint32
	injection uint32
}

// NewRing creates a ring with the given number of nodes, per-hop latency and
// injection latency.
func NewRing(nodes int, hopCycles, injection uint32) *Ring {
	if nodes < 1 {
		nodes = 1
	}
	return &Ring{nodes: nodes, hopCycles: hopCycles, injection: injection}
}

// Name returns "ring".
func (r *Ring) Name() string { return "ring" }

// Nodes returns the number of ring stops.
func (r *Ring) Nodes() int { return r.nodes }

// Latency returns injection + hops * hopCycles, taking the shorter direction
// around the ring.
func (r *Ring) Latency(src, dst int) uint32 {
	src %= r.nodes
	dst %= r.nodes
	if src < 0 {
		src += r.nodes
	}
	if dst < 0 {
		dst += r.nodes
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	if other := r.nodes - d; other < d {
		d = other
	}
	return r.injection + uint32(d)*r.hopCycles
}

// Mesh models a 2D mesh with dimension-ordered routing and multi-stage
// routers: latency = injection + hops * (hopCycles + routerStages). Table 3's
// tiled chip uses a mesh with one router per tile, 1-cycle hops and 2-stage
// routers.
type Mesh struct {
	width        int
	height       int
	hopCycles    uint32
	routerStages uint32
	injection    uint32
}

// NewMesh creates a width x height mesh.
func NewMesh(width, height int, hopCycles, routerStages, injection uint32) *Mesh {
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	return &Mesh{width: width, height: height, hopCycles: hopCycles, routerStages: routerStages, injection: injection}
}

// NewMeshForTiles creates a near-square mesh with at least n nodes, the shape
// used for the tiled chips of Table 3 (4, 16 and 64 tiles give 2x2, 4x4 and
// 8x8 meshes).
func NewMeshForTiles(n int, hopCycles, routerStages, injection uint32) *Mesh {
	w := 1
	for w*w < n {
		w++
	}
	h := (n + w - 1) / w
	return NewMesh(w, h, hopCycles, routerStages, injection)
}

// Name returns "mesh".
func (m *Mesh) Name() string { return "mesh" }

// Nodes returns the number of mesh nodes.
func (m *Mesh) Nodes() int { return m.width * m.height }

// Width returns the mesh width.
func (m *Mesh) Width() int { return m.width }

// Latency returns the dimension-ordered-routing zero-load latency.
func (m *Mesh) Latency(src, dst int) uint32 {
	n := m.Nodes()
	src %= n
	dst %= n
	if src < 0 {
		src += n
	}
	if dst < 0 {
		dst += n
	}
	sx, sy := src%m.width, src/m.width
	dx, dy := dst%m.width, dst/m.width
	hops := absInt(sx-dx) + absInt(sy-dy)
	return m.injection + uint32(hops)*(m.hopCycles+m.routerStages)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Flat is a topology-free model with a constant latency between any pair of
// nodes, used by small configurations and unit tests.
type Flat struct {
	// Cycles is the constant one-way latency.
	Cycles uint32
}

// Name returns "flat".
func (f *Flat) Name() string { return "flat" }

// Latency returns the constant latency.
func (f *Flat) Latency(src, dst int) uint32 { return f.Cycles }
