// Package network provides the network-on-chip models used by the bound
// phase: a ring (the validated 6-core Westmere uncore) and a 2D mesh (the
// tiled thousand-core chip of Table 3). The paper argues that for
// well-provisioned NoCs, zero-load latencies capture most of the performance
// impact; the bound phase therefore only uses hop counts, per-hop latency and
// injection latency (Model). For under-provisioned NoCs, the Topology
// interface additionally enumerates the routes messages take — node by node,
// output port by output port — which is what package noc uses to turn each
// traversal into per-router weave-phase contention events.
package network

// Model returns the zero-load latency, in cycles, for a message from a source
// core (or tile) to a destination node (an L3 bank, memory controller or
// another tile).
type Model interface {
	// Latency returns the one-way zero-load latency in cycles from src to dst
	// node indices.
	Latency(src, dst int) uint32
	// Name identifies the topology.
	Name() string
}

// Link is one directed router-to-router link of a route: the link from node
// From's output port Port to node To.
type Link struct {
	From, To int
	// Port is the output-port index at From that drives the link
	// (0 <= Port < NumPorts of the topology).
	Port int
}

// Topology extends Model with the structural view the weave-phase NoC
// contention subsystem needs: the node count, the number of network output
// ports per router, deterministic next-hop routing, and the zero-load latency
// decomposition (injection + hops x per-hop) that Latency is built from, so a
// contention model layered on the route stays zero-load-consistent with the
// bound phase.
type Topology interface {
	Model
	// Nodes returns the number of router nodes.
	Nodes() int
	// NextHop returns the next node on the deterministic route from cur to
	// dst, and the output port at cur that carries the link. cur and dst are
	// normalized like Latency's arguments; cur must differ from dst after
	// normalization.
	NextHop(cur, dst int) (next, port int)
	// NumPorts returns the number of network output ports per router (2 for a
	// ring, 4 for a mesh). Port indices returned by NextHop are below this.
	NumPorts() int
	// InjectionLatency returns the zero-load cycles to inject a message into
	// the network at its source node.
	InjectionLatency() uint32
	// PerHopLatency returns the zero-load cycles per hop (link traversal plus
	// router pipeline), so that for every src, dst:
	// Latency(src, dst) == InjectionLatency() + hops(src, dst)*PerHopLatency().
	PerHopLatency() uint32
}

// RouteAppend appends the links of the deterministic route from src to dst to
// buf and returns it. It is a convenience over NextHop for tests and tools;
// the simulator's translation loop walks NextHop directly so it never
// materializes a route.
func RouteAppend(t Topology, src, dst int, buf []Link) []Link {
	n := t.Nodes()
	cur, end := normNode(src, n), normNode(dst, n)
	for cur != end {
		next, port := t.NextHop(cur, end)
		buf = append(buf, Link{From: cur, To: next, Port: port})
		cur = next
	}
	return buf
}

// normNode reduces a node index into [0, nodes), the same normalization the
// Latency methods apply.
func normNode(v, nodes int) int {
	v %= nodes
	if v < 0 {
		v += nodes
	}
	return v
}

// Ring models a unidirectional-traversal bidirectional ring: messages take
// the shorter direction. The validated Westmere configuration uses a ring
// with a 1-cycle hop latency and a 5-cycle injection latency.
type Ring struct {
	nodes     int
	hopCycles uint32
	injection uint32
}

// NewRing creates a ring with the given number of nodes, per-hop latency and
// injection latency.
func NewRing(nodes int, hopCycles, injection uint32) *Ring {
	if nodes < 1 {
		nodes = 1
	}
	return &Ring{nodes: nodes, hopCycles: hopCycles, injection: injection}
}

// Name returns "ring".
func (r *Ring) Name() string { return "ring" }

// Nodes returns the number of ring stops.
func (r *Ring) Nodes() int { return r.nodes }

// Latency returns injection + hops * hopCycles, taking the shorter direction
// around the ring.
func (r *Ring) Latency(src, dst int) uint32 {
	src %= r.nodes
	dst %= r.nodes
	if src < 0 {
		src += r.nodes
	}
	if dst < 0 {
		dst += r.nodes
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	if other := r.nodes - d; other < d {
		d = other
	}
	return r.injection + uint32(d)*r.hopCycles
}

// Ring output ports.
const (
	// RingPortCW drives the clockwise (increasing node index) link.
	RingPortCW = 0
	// RingPortCCW drives the counter-clockwise link.
	RingPortCCW = 1
)

// NextHop routes along the shorter direction around the ring (clockwise on a
// tie, so routes are deterministic and their hop count always matches
// Latency's min-distance).
func (r *Ring) NextHop(cur, dst int) (next, port int) {
	cur, dst = normNode(cur, r.nodes), normNode(dst, r.nodes)
	fwd := normNode(dst-cur, r.nodes) // clockwise distance
	if fwd != 0 && fwd <= r.nodes-fwd {
		return (cur + 1) % r.nodes, RingPortCW
	}
	return normNode(cur-1, r.nodes), RingPortCCW
}

// NumPorts returns 2 (clockwise and counter-clockwise).
func (r *Ring) NumPorts() int { return 2 }

// InjectionLatency returns the configured injection latency.
func (r *Ring) InjectionLatency() uint32 { return r.injection }

// PerHopLatency returns the per-hop link latency.
func (r *Ring) PerHopLatency() uint32 { return r.hopCycles }

// Mesh models a 2D mesh with dimension-ordered routing and multi-stage
// routers: latency = injection + hops * (hopCycles + routerStages). Table 3's
// tiled chip uses a mesh with one router per tile, 1-cycle hops and 2-stage
// routers.
type Mesh struct {
	width        int
	height       int
	hopCycles    uint32
	routerStages uint32
	injection    uint32
}

// NewMesh creates a width x height mesh.
func NewMesh(width, height int, hopCycles, routerStages, injection uint32) *Mesh {
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	return &Mesh{width: width, height: height, hopCycles: hopCycles, routerStages: routerStages, injection: injection}
}

// NewMeshForTiles creates a near-square mesh with at least n nodes, the shape
// used for the tiled chips of Table 3 (4, 16 and 64 tiles give 2x2, 4x4 and
// 8x8 meshes).
func NewMeshForTiles(n int, hopCycles, routerStages, injection uint32) *Mesh {
	w := 1
	for w*w < n {
		w++
	}
	h := (n + w - 1) / w
	return NewMesh(w, h, hopCycles, routerStages, injection)
}

// Name returns "mesh".
func (m *Mesh) Name() string { return "mesh" }

// Nodes returns the number of mesh nodes.
func (m *Mesh) Nodes() int { return m.width * m.height }

// Width returns the mesh width.
func (m *Mesh) Width() int { return m.width }

// Latency returns the dimension-ordered-routing zero-load latency.
func (m *Mesh) Latency(src, dst int) uint32 {
	n := m.Nodes()
	src %= n
	dst %= n
	if src < 0 {
		src += n
	}
	if dst < 0 {
		dst += n
	}
	sx, sy := src%m.width, src/m.width
	dx, dy := dst%m.width, dst/m.width
	hops := absInt(sx-dx) + absInt(sy-dy)
	return m.injection + uint32(hops)*(m.hopCycles+m.routerStages)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Mesh output ports (dimension-ordered routing uses X ports before Y ports).
const (
	MeshPortEast  = 0 // +x
	MeshPortWest  = 1 // -x
	MeshPortSouth = 2 // +y
	MeshPortNorth = 3 // -y
)

// NextHop implements dimension-ordered (X then Y) routing, the same routing
// discipline Latency's hop count assumes.
func (m *Mesh) NextHop(cur, dst int) (next, port int) {
	n := m.Nodes()
	cur, dst = normNode(cur, n), normNode(dst, n)
	cx, cy := cur%m.width, cur/m.width
	dx, dy := dst%m.width, dst/m.width
	switch {
	case cx < dx:
		return cur + 1, MeshPortEast
	case cx > dx:
		return cur - 1, MeshPortWest
	case cy < dy:
		return cur + m.width, MeshPortSouth
	default:
		return cur - m.width, MeshPortNorth
	}
}

// NumPorts returns 4 (the mesh directions).
func (m *Mesh) NumPorts() int { return 4 }

// InjectionLatency returns the configured injection latency.
func (m *Mesh) InjectionLatency() uint32 { return m.injection }

// PerHopLatency returns the per-hop latency: link traversal plus the router
// pipeline stages.
func (m *Mesh) PerHopLatency() uint32 { return m.hopCycles + m.routerStages }

// Flat is a topology-free model with a constant latency between any pair of
// nodes, used by small configurations and unit tests.
type Flat struct {
	// Cycles is the constant one-way latency.
	Cycles uint32
}

// Name returns "flat".
func (f *Flat) Name() string { return "flat" }

// Latency returns the constant latency.
func (f *Flat) Latency(src, dst int) uint32 { return f.Cycles }
