package network

import (
	"testing"
	"testing/quick"
)

func TestRingLatency(t *testing.T) {
	r := NewRing(6, 1, 5)
	if r.Name() != "ring" || r.Nodes() != 6 {
		t.Fatalf("ring metadata wrong")
	}
	if got := r.Latency(0, 0); got != 5 {
		t.Fatalf("self latency should be injection only, got %d", got)
	}
	if got := r.Latency(0, 1); got != 6 {
		t.Fatalf("adjacent latency: %d", got)
	}
	// 0 -> 5 is one hop the short way around.
	if got := r.Latency(0, 5); got != 6 {
		t.Fatalf("wraparound should take the short path, got %d", got)
	}
	if got := r.Latency(0, 3); got != 8 {
		t.Fatalf("diameter latency: %d", got)
	}
	// Symmetry.
	if r.Latency(2, 5) != r.Latency(5, 2) {
		t.Fatalf("ring latency should be symmetric")
	}
	// Out-of-range nodes are wrapped, including negatives.
	if r.Latency(6, 12) != 5 {
		t.Fatalf("wrapped self latency wrong")
	}
	if r.Latency(-1, 5) != 5 {
		t.Fatalf("negative indices should wrap")
	}
	// Degenerate ring.
	one := NewRing(0, 1, 2)
	if one.Nodes() != 1 || one.Latency(0, 0) != 2 {
		t.Fatalf("degenerate ring should clamp to one node")
	}
}

func TestMeshLatency(t *testing.T) {
	m := NewMesh(4, 4, 1, 2, 3)
	if m.Name() != "mesh" || m.Nodes() != 16 || m.Width() != 4 {
		t.Fatalf("mesh metadata wrong")
	}
	if got := m.Latency(0, 0); got != 3 {
		t.Fatalf("self latency: %d", got)
	}
	// 0 -> 15 is 3+3 = 6 hops of cost 3 each plus injection 3 = 21.
	if got := m.Latency(0, 15); got != 21 {
		t.Fatalf("corner-to-corner latency: %d", got)
	}
	if m.Latency(5, 10) != m.Latency(10, 5) {
		t.Fatalf("mesh latency should be symmetric")
	}
	deg := NewMesh(0, 0, 1, 1, 1)
	if deg.Nodes() != 1 {
		t.Fatalf("degenerate mesh should clamp")
	}
}

func TestMeshForTiles(t *testing.T) {
	cases := []struct{ tiles, nodes int }{{4, 4}, {16, 16}, {64, 64}, {5, 6}}
	for _, c := range cases {
		m := NewMeshForTiles(c.tiles, 1, 2, 1)
		if m.Nodes() < c.tiles {
			t.Fatalf("mesh for %d tiles has only %d nodes", c.tiles, m.Nodes())
		}
		if m.Nodes() != c.nodes {
			t.Fatalf("mesh for %d tiles should have %d nodes, got %d", c.tiles, c.nodes, m.Nodes())
		}
	}
}

func TestFlat(t *testing.T) {
	f := &Flat{Cycles: 7}
	if f.Latency(0, 99) != 7 || f.Name() != "flat" {
		t.Fatalf("flat model broken")
	}
}

// Property: latencies are symmetric, at least the injection latency, and
// bounded by injection + diameter cost for both topologies.
func TestTopologyProperties(t *testing.T) {
	f := func(srcRaw, dstRaw uint8) bool {
		ring := NewRing(16, 2, 4)
		mesh := NewMesh(8, 8, 1, 2, 3)
		src, dst := int(srcRaw), int(dstRaw)
		rl := ring.Latency(src, dst)
		ml := mesh.Latency(src, dst)
		if rl != ring.Latency(dst, src) || ml != mesh.Latency(dst, src) {
			return false
		}
		if rl < 4 || ml < 3 {
			return false
		}
		ringMax := uint32(4 + 8*2)
		meshMax := uint32(3 + 14*3)
		return rl <= ringMax && ml <= meshMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
