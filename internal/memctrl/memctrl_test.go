package memctrl

import (
	"testing"
	"testing/quick"

	"zsim/internal/cache"
	"zsim/internal/stats"
)

func TestSimpleController(t *testing.T) {
	s := NewSimple("mem0", 100, 120, stats.NewRegistry("mem0"))
	if s.Name() != "mem0" || s.CompID() != 100 || s.Latency() != 120 {
		t.Fatalf("simple controller metadata wrong")
	}
	done := s.Access(&cache.Request{LineAddr: 1, Cycle: 50})
	if done != 170 {
		t.Fatalf("fixed latency wrong: %d", done)
	}
	s.Access(&cache.Request{LineAddr: 2, Cycle: 60, Write: true})
	if s.Reads() != 1 || s.Writes() != 1 {
		t.Fatalf("counters wrong: %d/%d", s.Reads(), s.Writes())
	}
	// Hop recording.
	req := &cache.Request{LineAddr: 3, Cycle: 10, RecordHops: true}
	s.Access(req)
	if len(req.Hops) != 1 || req.Hops[0].Kind != cache.HopMem || req.Hops[0].Comp != 100 {
		t.Fatalf("hop recording wrong: %+v", req.Hops)
	}
	// Nil registry is allowed.
	s2 := NewSimple("mem1", 1, 10, nil)
	if s2.Access(&cache.Request{Cycle: 0}) != 10 {
		t.Fatalf("nil-registry controller broken")
	}
}

func TestMD1LowLoadNearZeroLoad(t *testing.T) {
	m := NewMD1("mem", 1, 100, 8, nil)
	// Sparse accesses: utilization ~0, latency ~zero-load.
	var cycle uint64
	var last uint64
	for i := 0; i < 200; i++ {
		last = m.Access(&cache.Request{LineAddr: uint64(i), Cycle: cycle}) - cycle
		cycle += 10000
	}
	if last > 105 {
		t.Fatalf("low-load M/D/1 latency should be near zero-load, got %d", last)
	}
	if m.Utilization() > 0.01 {
		t.Fatalf("low-load utilization should be ~0, got %f", m.Utilization())
	}
}

func TestMD1HighLoadAddsQueueing(t *testing.T) {
	m := NewMD1("mem", 1, 100, 8, nil)
	// Dense accesses: inter-arrival close to the service time -> queuing.
	var cycle uint64
	var lat uint64
	for i := 0; i < 500; i++ {
		lat = m.Access(&cache.Request{LineAddr: uint64(i), Cycle: cycle}) - cycle
		cycle += 9 // just above service time of 8 => rho ~0.89
	}
	if lat <= 110 {
		t.Fatalf("high-load M/D/1 latency should include queueing, got %d", lat)
	}
	if m.Utilization() < 0.5 {
		t.Fatalf("utilization should be high, got %f", m.Utilization())
	}
	// Saturation clamp: arrivals faster than the service rate.
	m2 := NewMD1("mem2", 2, 100, 8, nil)
	cycle = 0
	for i := 0; i < 500; i++ {
		m2.Access(&cache.Request{LineAddr: uint64(i), Cycle: cycle})
		cycle += 2
	}
	if m2.satEvent.Get() == 0 {
		t.Fatalf("over-saturated controller should clamp utilization")
	}
	m2.Reset()
	if m2.Utilization() != 0 {
		t.Fatalf("reset should clear the arrival window")
	}
	if m2.Reads() == 0 {
		t.Fatalf("reads counter should persist across Reset")
	}
	_ = m2.Writes()
	if m2.CompID() != 2 || m2.Name() != "mem2" {
		t.Fatalf("metadata wrong")
	}
}

func TestDDR3UncontendedLatency(t *testing.T) {
	d := NewDDR3("mem", DefaultDDR3Timing())
	if d.Name() != "ddr3" {
		t.Fatalf("name wrong")
	}
	lat := d.RequestLatency(1, 0, false)
	// Zero-load latency = (tRCD + tCAS + tBurst) * ratio = (9+9+4)*3 = 66.
	if lat != 66 {
		t.Fatalf("uncontended DDR3 latency should be 66 CPU cycles, got %d", lat)
	}
	// A request to a different bank far in the future is also uncontended.
	lat = d.RequestLatency(2, 100000, false)
	if lat < 66 || lat > 66+3*DefaultDDR3Timing().TXP {
		t.Fatalf("far-future request should be near zero-load (powerdown exit allowed), got %d", lat)
	}
}

func TestDDR3BankConflictSerializes(t *testing.T) {
	d := NewDDR3("mem", DefaultDDR3Timing())
	// Two back-to-back requests to the same line hit the same bank: the
	// second must wait for the first's precharge.
	l1 := d.RequestLatency(42, 0, false)
	l2 := d.RequestLatency(42, 0, false)
	if l2 <= l1 {
		t.Fatalf("same-bank conflict should increase latency: %d then %d", l1, l2)
	}
	if d.RowConflicts == 0 {
		t.Fatalf("row conflict should be counted")
	}
}

func TestDDR3SaturationUnderLoad(t *testing.T) {
	// Issue a dense burst of requests; average latency must grow well beyond
	// zero-load (queueing), and the controller should eventually throttle to
	// its bandwidth.
	d := NewDDR3("mem", DefaultDDR3Timing())
	var total uint64
	n := 500
	for i := 0; i < n; i++ {
		total += d.RequestLatency(uint64(i*64), uint64(i), false)
	}
	avg := total / uint64(n)
	if avg < 150 {
		t.Fatalf("saturated DDR3 average latency should far exceed zero-load, got %d", avg)
	}
	if d.AverageWaitCPU() <= 0 {
		t.Fatalf("queueing wait should be positive under saturation")
	}
	d.Reset()
	if d.TotalRequests != 0 || d.AverageWaitCPU() != 0 {
		t.Fatalf("reset should clear stats")
	}
}

func TestDDR3WritesOccupyLonger(t *testing.T) {
	dr := NewDDR3("r", DefaultDDR3Timing())
	dw := NewDDR3("w", DefaultDDR3Timing())
	// Same-bank back-to-back: the second access pays for the first's
	// occupancy, which is longer for writes (tWR).
	dr.RequestLatency(1, 0, false)
	secondAfterRead := dr.RequestLatency(1, 0, false)
	dw.RequestLatency(1, 0, true)
	secondAfterWrite := dw.RequestLatency(1, 0, false)
	if secondAfterWrite <= secondAfterRead {
		t.Fatalf("write recovery should delay the next same-bank access: %d vs %d", secondAfterWrite, secondAfterRead)
	}
}

func TestCycleDrivenMatchesEventDrivenShape(t *testing.T) {
	timing := DefaultDDR3Timing()
	ev := NewDDR3("ev", timing)
	cd := NewCycleDriven("cd", timing)
	if cd.Name() != "cycle-driven" {
		t.Fatalf("name wrong")
	}
	// Uncontended latency matches exactly.
	le := ev.RequestLatency(7, 0, false)
	lc := cd.RequestLatency(7, 0, false)
	if le != lc {
		t.Fatalf("uncontended latencies should match: %d vs %d", le, lc)
	}
	// Under load, both should show large queueing latencies of similar
	// magnitude (within 2x of each other).
	ev.Reset()
	cd.Reset()
	var se, sc uint64
	for i := 0; i < 300; i++ {
		se += ev.RequestLatency(uint64(i*64), uint64(i*2), false)
		sc += cd.RequestLatency(uint64(i*64), uint64(i*2), false)
	}
	ratio := float64(se) / float64(sc)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("event-driven and cycle-driven models diverge too much: %d vs %d", se, sc)
	}
	if cd.Ticks == 0 {
		t.Fatalf("cycle-driven model should have stepped cycles")
	}
	cd.Reset()
	if cd.Ticks != 0 || cd.TotalReqs != 0 {
		t.Fatalf("reset should clear cycle-driven state")
	}
}

func TestNoContentionModel(t *testing.T) {
	n := &NoContention{Latency: 42}
	if n.RequestLatency(1, 2, true) != 42 || n.Name() != "none" {
		t.Fatalf("NoContention model broken")
	}
	n.Reset()
}

// Property: DDR3 latency is always at least the zero-load latency, and
// requests presented in order complete with monotonically non-decreasing
// data-bus occupancy.
func TestDDR3LatencyLowerBound(t *testing.T) {
	timing := DefaultDDR3Timing()
	zeroLoad := (timing.TRCD + timing.TCAS + timing.TBurst) * timing.CPUCyclesPerMemCycle
	f := func(addrs []uint16, gaps []uint8) bool {
		d := NewDDR3("mem", timing)
		var cycle uint64
		n := len(addrs)
		if len(gaps) < n {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			lat := d.RequestLatency(uint64(addrs[i])*64, cycle, i%4 == 0)
			if lat < zeroLoad {
				return false
			}
			cycle += uint64(gaps[i])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the M/D/1 latency is always >= the zero-load latency and is a
// non-decreasing function of utilization (checked at the two extremes).
func TestMD1Bounds(t *testing.T) {
	f := func(gapsRaw []uint8) bool {
		m := NewMD1("mem", 1, 100, 8, nil)
		var cycle uint64
		for _, g := range gapsRaw {
			lat := m.Access(&cache.Request{LineAddr: 1, Cycle: cycle}) - cycle
			if lat < 100 {
				return false
			}
			cycle += uint64(g) + 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
