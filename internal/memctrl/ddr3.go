package memctrl

// DDR3Timing holds the DRAM timing parameters, expressed in memory (bus)
// cycles, of the detailed weave-phase controller model. Defaults follow
// DDR3-1333 with a closed-page policy, matching the validated configuration
// in Table 2 of the paper.
type DDR3Timing struct {
	// CPUCyclesPerMemCycle converts memory cycles to CPU cycles (a 2.27 GHz
	// core with a 666 MHz DDR3-1333 bus gives ~3.4; we use an integer 3 to
	// keep the model in integer arithmetic).
	CPUCyclesPerMemCycle uint64
	// Banks is the number of banks per rank, Ranks the ranks per channel.
	Banks int
	Ranks int
	// tRCD is the row-to-column (activate) delay, tCAS the column access
	// latency, tRP the precharge time, tBurst the data-burst occupancy of the
	// channel, all in memory cycles.
	TRCD   uint64
	TCAS   uint64
	TRP    uint64
	TBurst uint64
	// TWR is the write-recovery time added to write completions.
	TWR uint64
	// PowerdownThreshold is the idle time (memory cycles) after which a bank
	// enters fast powerdown; TXP is the exit latency paid by the next access.
	// Table 2: "fast powerdown with threshold timer = 15 mem cycles".
	PowerdownThreshold uint64
	TXP                uint64
	// QueueDepth caps the number of requests the controller tracks for
	// head-of-line (FCFS) ordering.
	QueueDepth int
}

// DefaultDDR3Timing returns DDR3-1333 closed-page timings.
func DefaultDDR3Timing() DDR3Timing {
	return DDR3Timing{
		CPUCyclesPerMemCycle: 3,
		Banks:                8,
		Ranks:                2,
		TRCD:                 9,
		TCAS:                 9,
		TRP:                  9,
		TBurst:               4,
		TWR:                  10,
		PowerdownThreshold:   15,
		TXP:                  6,
		QueueDepth:           32,
	}
}

// DDR3 is the detailed event-driven memory controller used in the weave
// phase: it models per-bank occupancy (activate + column access + precharge
// under a closed-page policy), contention on the shared data bus, FCFS
// command ordering, and fast powerdown exit latency. It is not safe for
// concurrent use; each controller belongs to exactly one weave domain.
type DDR3 struct {
	name string
	t    DDR3Timing

	// bankFree[i] is the memory cycle at which bank i can accept a new
	// activate; bankIdleSince[i] tracks powerdown eligibility.
	bankFree      []uint64
	bankIdleSince []uint64
	// busFree is the memory cycle at which the data bus is next free.
	busFree uint64
	// lastStart enforces FCFS: a request cannot start before the previous
	// request started.
	lastStart uint64

	// Stats.
	TotalRequests  uint64
	RowConflicts   uint64
	PowerdownExits uint64
	TotalWaitMem   uint64 // total queueing wait in memory cycles
}

// NewDDR3 creates a detailed DDR3 controller model.
func NewDDR3(name string, t DDR3Timing) *DDR3 {
	nb := t.Banks * t.Ranks
	if nb < 1 {
		nb = 1
	}
	return &DDR3{
		name:          name,
		t:             t,
		bankFree:      make([]uint64, nb),
		bankIdleSince: make([]uint64, nb),
	}
}

// Name returns the model's name.
func (d *DDR3) Name() string { return "ddr3" }

// Reset clears all bank and bus state.
func (d *DDR3) Reset() {
	for i := range d.bankFree {
		d.bankFree[i] = 0
		d.bankIdleSince[i] = 0
	}
	d.busFree = 0
	d.lastStart = 0
	d.TotalRequests = 0
	d.RowConflicts = 0
	d.PowerdownExits = 0
	d.TotalWaitMem = 0
}

func (d *DDR3) bankOf(lineAddr uint64) int {
	h := lineAddr * 0x9e3779b97f4a7c15
	h ^= h >> 31
	return int(h % uint64(len(d.bankFree)))
}

// RequestLatency schedules one request arriving (in CPU cycles) at cycle and
// returns its total latency in CPU cycles, including queuing, bank occupancy,
// bus contention and powerdown exit.
func (d *DDR3) RequestLatency(lineAddr uint64, cycle uint64, write bool) uint64 {
	t := &d.t
	arrivalMem := cycle / t.CPUCyclesPerMemCycle
	bank := d.bankOf(lineAddr)

	start := arrivalMem
	if d.lastStart > start {
		start = d.lastStart // FCFS: do not start before the previous request
	}
	if d.bankFree[bank] > start {
		d.RowConflicts++
		start = d.bankFree[bank]
	}

	// Powerdown exit: the bank was idle long enough to power down.
	if d.bankIdleSince[bank]+t.PowerdownThreshold < start && start > t.PowerdownThreshold {
		d.PowerdownExits++
		start += t.TXP
	}

	// Closed-page access: activate (tRCD) then column access (tCAS), then the
	// burst on the shared data bus, then precharge (tRP) to close the row.
	dataStart := start + t.TRCD + t.TCAS
	if d.busFree > dataStart {
		dataStart = d.busFree
	}
	dataDone := dataStart + t.TBurst
	d.busFree = dataDone

	bankBusyUntil := dataDone + t.TRP
	if write {
		bankBusyUntil += t.TWR
	}
	d.bankFree[bank] = bankBusyUntil
	d.bankIdleSince[bank] = bankBusyUntil
	d.lastStart = start
	d.TotalRequests++
	if start > arrivalMem {
		d.TotalWaitMem += start - arrivalMem
	}

	latMem := dataDone - arrivalMem
	return latMem * t.CPUCyclesPerMemCycle
}

// AverageWaitCPU returns the average queuing wait per request in CPU cycles.
func (d *DDR3) AverageWaitCPU() float64 {
	if d.TotalRequests == 0 {
		return 0
	}
	return float64(d.TotalWaitMem*d.t.CPUCyclesPerMemCycle) / float64(d.TotalRequests)
}

// CycleDriven is a DRAMSim2-style cycle-driven DRAM model: it exposes the
// same weave-phase interface as DDR3 but advances an internal clock one
// memory cycle at a time, re-evaluating its bank state machines every tick.
// Its results track the event-driven model closely; its cost is the per-cycle
// stepping, which reproduces the paper's observation that a cycle-driven DRAM
// model caps overall simulation speed (~3 MIPS in the paper).
type CycleDriven struct {
	name string
	t    DDR3Timing

	clock     uint64 // current memory cycle
	bankBusy  []uint64
	busBusy   uint64
	TotalReqs uint64
	// Ticks counts how many cycles were stepped; the benchmark harness uses
	// it to show the cost of cycle-driven integration.
	Ticks uint64
}

// NewCycleDriven creates a cycle-driven DRAM model.
func NewCycleDriven(name string, t DDR3Timing) *CycleDriven {
	nb := t.Banks * t.Ranks
	if nb < 1 {
		nb = 1
	}
	return &CycleDriven{name: name, t: t, bankBusy: make([]uint64, nb)}
}

// Name returns the model's name.
func (c *CycleDriven) Name() string { return "cycle-driven" }

// Reset clears the model state.
func (c *CycleDriven) Reset() {
	c.clock = 0
	c.busBusy = 0
	c.TotalReqs = 0
	c.Ticks = 0
	for i := range c.bankBusy {
		c.bankBusy[i] = 0
	}
}

func (c *CycleDriven) bankOf(lineAddr uint64) int {
	h := lineAddr * 0x9e3779b97f4a7c15
	h ^= h >> 31
	return int(h % uint64(len(c.bankBusy)))
}

// tick advances the internal clock by one memory cycle.
func (c *CycleDriven) tick() {
	c.clock++
	c.Ticks++
}

// RequestLatency steps the model cycle by cycle until the request completes
// and returns the latency in CPU cycles.
func (c *CycleDriven) RequestLatency(lineAddr uint64, cycle uint64, write bool) uint64 {
	t := &c.t
	arrivalMem := cycle / t.CPUCyclesPerMemCycle
	// Advance the clock to the arrival cycle (the weave phase presents
	// requests in non-decreasing order).
	for c.clock < arrivalMem {
		c.tick()
	}
	bank := c.bankOf(lineAddr)
	// Wait until the bank and bus allow the access to start.
	for c.clock < c.bankBusy[bank] {
		c.tick()
	}
	start := c.clock
	dataStart := start + t.TRCD + t.TCAS
	for dataStart < c.busBusy {
		c.tick()
		dataStart++
	}
	dataDone := dataStart + t.TBurst
	c.busBusy = dataDone
	busy := dataDone + t.TRP
	if write {
		busy += t.TWR
	}
	c.bankBusy[bank] = busy
	c.TotalReqs++
	return (dataDone - arrivalMem) * t.CPUCyclesPerMemCycle
}

// NoContention is a trivial ContentionModel that returns a fixed latency,
// used to express "no contention model" runs (-NC configurations) through
// the same interface.
type NoContention struct {
	// Latency is the fixed latency in CPU cycles.
	Latency uint64
}

// RequestLatency returns the fixed latency.
func (n *NoContention) RequestLatency(uint64, uint64, bool) uint64 { return n.Latency }

// Reset does nothing.
func (n *NoContention) Reset() {}

// Name returns "none".
func (n *NoContention) Name() string { return "none" }
