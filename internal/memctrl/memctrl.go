// Package memctrl implements the memory-controller models:
//
//   - Simple: a fixed, zero-load-latency controller used as the terminal
//     level of the bound phase (contention, if modeled at all, is added in
//     the weave phase).
//   - MD1: a Graphite-style analytical M/D/1 queuing model that computes a
//     load-dependent latency directly in the bound phase. The paper (and
//     prior work it cites) shows this model is inaccurate for bandwidth-bound
//     workloads; it is included as the comparison point for Figure 6.
//   - DDR3: a detailed event-driven weave-phase model with DDR3 timing
//     (closed-page policy, per-bank occupancy, shared data bus, FCFS
//     scheduling, fast powerdown), the model the paper validates against
//     STREAM.
//   - CycleDriven: a DRAMSim2-style cycle-driven model exposing the same
//     weave-phase interface but advancing its state cycle by cycle, used to
//     reproduce the paper's observation that integrating a cycle-driven DRAM
//     model is easy but caps simulation speed.
package memctrl

import (
	"sync"

	"zsim/internal/cache"
	"zsim/internal/stats"
)

// Controller is the bound-phase view of a memory controller: a terminal
// cache.Level that also exposes its access counters.
type Controller interface {
	cache.Level
	// CompID returns the controller's global component ID.
	CompID() int
	// Reads returns the number of read accesses served.
	Reads() uint64
	// Writes returns the number of write (writeback) accesses served.
	Writes() uint64
}

// ContentionModel is the weave-phase view of a memory controller: given a
// request's zero-load arrival cycle it returns the request's latency
// including contention. Weave-phase callers present requests in
// non-decreasing arrival order per controller.
type ContentionModel interface {
	// RequestLatency returns the total latency (in CPU cycles) of a request
	// arriving at the controller at the given cycle.
	RequestLatency(lineAddr uint64, cycle uint64, write bool) uint64
	// Reset clears the model's state (used between intervals or runs).
	Reset()
	// Name identifies the model in stats and experiment tables.
	Name() string
}

// Simple is a fixed-latency memory controller: every access takes the
// zero-load latency. It is the terminal level used by the bound phase. Its
// counters are atomic, so concurrent accesses from many bound-phase host
// threads never serialize on a lock.
type Simple struct {
	name   string
	compID int
	// Latency is the zero-load latency in CPU cycles (row access + channel
	// transfer, no queuing).
	latency uint32

	reads  *stats.AtomicCounter
	writes *stats.AtomicCounter
}

// NewSimple creates a fixed-latency controller.
func NewSimple(name string, compID int, latency uint32, reg *stats.Registry) *Simple {
	if reg == nil {
		reg = stats.NewRegistry(name)
	}
	return &Simple{
		name:    name,
		compID:  compID,
		latency: latency,
		reads:   reg.Atomic("reads", "read requests served"),
		writes:  reg.Atomic("writes", "write requests served"),
	}
}

// Name returns the controller's name.
func (s *Simple) Name() string { return s.name }

// CompID returns the controller's component ID.
func (s *Simple) CompID() int { return s.compID }

// Latency returns the configured zero-load latency.
func (s *Simple) Latency() uint32 { return s.latency }

// Reads returns the number of reads served.
func (s *Simple) Reads() uint64 { return s.reads.Get() }

// Writes returns the number of writes served.
func (s *Simple) Writes() uint64 { return s.writes.Get() }

// Access serves a request with the fixed zero-load latency.
func (s *Simple) Access(req *cache.Request) uint64 {
	if req.Write {
		s.writes.Inc()
	} else {
		s.reads.Inc()
	}
	if req.RecordHops {
		req.Hops = append(req.Hops, cache.Hop{Comp: s.compID, Kind: cache.HopMem, Line: req.LineAddr, Cycle: req.Cycle, Latency: s.latency})
	}
	return req.Cycle + uint64(s.latency)
}

// MD1 is an analytical M/D/1 queuing model applied in the bound phase: the
// latency of each access is the zero-load latency plus the M/D/1 waiting time
// at the controller's current utilization, estimated from a sliding window of
// recent arrivals. This is the Graphite-style contention model the paper
// compares against (and finds inaccurate for saturating workloads, because
// reordered accesses and open-loop utilization estimates misestimate queuing
// delay).
type MD1 struct {
	name    string
	compID  int
	latency uint32 // zero-load latency, CPU cycles
	// serviceCycles is the deterministic service time per request (the
	// channel occupancy), which bounds throughput.
	serviceCycles float64

	mu       sync.Mutex
	window   []uint64 // arrival cycles of recent requests (ring buffer)
	widx     int
	wcount   int
	reads    *stats.Counter
	writes   *stats.Counter
	satEvent *stats.Counter
}

// NewMD1 creates an M/D/1 controller. serviceCycles is the per-request
// service (channel occupancy) time in CPU cycles; it determines the
// saturation bandwidth.
func NewMD1(name string, compID int, latency uint32, serviceCycles float64, reg *stats.Registry) *MD1 {
	if reg == nil {
		reg = stats.NewRegistry(name)
	}
	return &MD1{
		name:          name,
		compID:        compID,
		latency:       latency,
		serviceCycles: serviceCycles,
		window:        make([]uint64, 64),
		reads:         reg.Counter("reads", "read requests served"),
		writes:        reg.Counter("writes", "write requests served"),
		satEvent:      reg.Counter("saturated", "requests served at clamped utilization"),
	}
}

// Name returns the controller's name.
func (m *MD1) Name() string { return m.name }

// CompID returns the controller's component ID.
func (m *MD1) CompID() int { return m.compID }

// Reads returns the number of reads served.
func (m *MD1) Reads() uint64 { m.mu.Lock(); defer m.mu.Unlock(); return m.reads.Get() }

// Writes returns the number of writes served.
func (m *MD1) Writes() uint64 { m.mu.Lock(); defer m.mu.Unlock(); return m.writes.Get() }

// Utilization estimates the controller's current utilization from the arrival
// window (0 if too few samples).
func (m *MD1) Utilization() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.utilizationLocked()
}

func (m *MD1) utilizationLocked() float64 {
	if m.wcount < len(m.window) {
		return 0
	}
	newest := m.window[(m.widx+len(m.window)-1)%len(m.window)]
	oldest := m.window[m.widx]
	if newest <= oldest {
		return 0
	}
	rate := float64(len(m.window)-1) / float64(newest-oldest)
	return rate * m.serviceCycles
}

// Access serves a request with latency = zero-load + M/D/1 waiting time.
func (m *MD1) Access(req *cache.Request) uint64 {
	m.mu.Lock()
	if req.Write {
		m.writes.Inc()
	} else {
		m.reads.Inc()
	}
	// Record the arrival.
	m.window[m.widx] = req.Cycle
	m.widx = (m.widx + 1) % len(m.window)
	if m.wcount < len(m.window) {
		m.wcount++
	}
	rho := m.utilizationLocked()
	if rho > 0.95 {
		rho = 0.95
		m.satEvent.Inc()
	}
	m.mu.Unlock()

	// M/D/1 mean waiting time: Wq = rho * S / (2 * (1 - rho)).
	wait := rho * m.serviceCycles / (2 * (1 - rho))
	lat := uint64(m.latency) + uint64(wait)
	if req.RecordHops {
		req.Hops = append(req.Hops, cache.Hop{Comp: m.compID, Kind: cache.HopMem, Line: req.LineAddr, Cycle: req.Cycle, Latency: uint32(lat)})
	}
	return req.Cycle + lat
}

// Reset clears the arrival window.
func (m *MD1) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.widx = 0
	m.wcount = 0
}
