// Package engine provides the persistent execution engine that underpins
// both phases of the bound-weave loop (Section 3.2 of the paper): a fixed set
// of worker goroutines, spawned at most once per simulation, that park on
// per-worker channels between phases and are handed work by the orchestrating
// goroutine.
//
// The bound phase uses the pool to drive per-core simulation (workers draw
// core assignments from a shared atomic counter), and the weave phase uses
// the same workers to drive its event domains. Steady-state intervals
// therefore spawn zero goroutines and churn no WaitGroups: the only
// per-phase cost is one channel send per woken worker and one Wait on the
// pool's reusable WaitGroup.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"zsim/internal/runctl"
)

// Pool is a fixed-size set of persistent, parked worker goroutines. A Pool is
// driven by a single orchestrating goroutine: Run hands every woken worker
// the same task function and blocks until all invocations return. Run must
// not be called concurrently with itself or with Close.
type Pool struct {
	size int

	// fn is the task of the in-flight Run. Workers read it after receiving a
	// start token, so the channel send establishes the happens-before edge.
	fn func(worker int)
	wg sync.WaitGroup

	// start carries per-worker wakeups; the channels are unbuffered so a
	// completed Run leaves no stale tokens behind.
	start []chan struct{}

	// panicked holds the first panic recovered in a worker during the
	// in-flight Run. Workers never die from a task panic: the fault is
	// captured (with the panicking goroutine's stack), the worker parks
	// again, and Run re-raises the capture on the orchestrating goroutine
	// once every worker has finished — so a panicking task can neither kill
	// the process outright nor leak a waiting WaitGroup.
	panicked atomic.Pointer[runctl.PanicError]

	quit      chan struct{}
	spawned   bool
	closeOnce sync.Once

	// Telemetry: total Run invocations and total worker wakeups delivered
	// (channel sends on the parallel path; serial fallbacks wake no one).
	// Atomic so telemetry snapshots can read them while a Run is in flight.
	runs  atomic.Uint64
	wakes atomic.Uint64
}

// NewPool creates a pool of n workers (n < 1 is clamped to 1). The worker
// goroutines are spawned lazily on the first parallel Run, so a pool that
// only ever runs serially (GOMAXPROCS=1, single-task phases) costs nothing.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{size: n, quit: make(chan struct{})}
	p.start = make([]chan struct{}, n)
	for i := range p.start {
		p.start[i] = make(chan struct{})
	}
	return p
}

// Size returns the number of workers in the pool.
func (p *Pool) Size() int { return p.size }

// Stats returns the pool's lifetime telemetry counters: total Run calls and
// total worker wakeups delivered (parallel-path channel sends). Safe to call
// concurrently with Run.
func (p *Pool) Stats() (runs, wakes uint64) {
	return p.runs.Load(), p.wakes.Load()
}

// Run invokes fn(w) for every worker index w in [0, n) and returns once all
// invocations have finished. n is clamped to the pool size. When effective
// host parallelism is one (n == 1 or GOMAXPROCS == 1) or the pool is closed,
// the invocations run serially on the caller; tasks must therefore not
// depend on running concurrently with each other. Callers that need true
// concurrency (e.g. tasks that block on each other) must check those
// conditions themselves and fall back to a serial algorithm.
//
// A panic inside fn does not kill the pool: the first recovered panic is
// re-raised on the caller as a *runctl.PanicError carrying the panicking
// worker's stack, after all other workers have finished their invocations.
// Tasks whose sibling invocations park waiting on each other (rather than
// returning) must contain panics themselves — Run can only re-raise once
// every invocation has returned.
func (p *Pool) Run(n int, fn func(worker int)) {
	if n > p.size {
		n = p.size
	}
	if n <= 0 {
		return
	}
	p.runs.Add(1)
	if n == 1 || p.Closed() || runtime.GOMAXPROCS(0) == 1 {
		// Same containment contract as the parallel path: every invocation
		// runs, and the first capture is re-raised once all have finished.
		var first *runctl.PanicError
		for w := 0; w < n; w++ {
			if pe := p.invoke(w, fn); pe != nil && first == nil {
				first = pe
			}
		}
		if first != nil {
			panic(first)
		}
		return
	}
	p.ensureWorkers()
	p.fn = fn
	p.wg.Add(n)
	p.wakes.Add(uint64(n))
	for w := 0; w < n; w++ {
		p.start[w] <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
	if pe := p.panicked.Swap(nil); pe != nil {
		panic(pe)
	}
}

// invoke runs one task invocation with panic containment, returning the
// capture (nil on clean return). The deferred recover is open-coded by the
// compiler, so the steady-state cost on the hot phase path is nil.
func (p *Pool) invoke(worker int, fn func(worker int)) (pe *runctl.PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = runctl.NewPanicError(r, worker)
		}
	}()
	fn(worker)
	return nil
}

// Closed reports whether Close has been called.
func (p *Pool) Closed() bool {
	select {
	case <-p.quit:
		return true
	default:
		return false
	}
}

// Close shuts down the pool's worker goroutines. Close is idempotent and must
// not overlap a Run; a closed pool still accepts Run calls and executes them
// serially on the caller.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.quit) })
}

// ensureWorkers spawns the persistent workers on first parallel use.
func (p *Pool) ensureWorkers() {
	if p.spawned {
		return
	}
	p.spawned = true
	for i := 0; i < p.size; i++ {
		go p.worker(i)
	}
}

// worker is the persistent goroutine body: park on the start channel, run the
// current task (containing any panic), repeat.
func (p *Pool) worker(id int) {
	for {
		select {
		case <-p.start[id]:
		case <-p.quit:
			return
		}
		if pe := p.invoke(id, p.fn); pe != nil {
			p.panicked.CompareAndSwap(nil, pe)
		}
		p.wg.Done()
	}
}
