package engine

import (
	"runtime"
	"sync/atomic"
	"testing"

	"zsim/internal/runctl"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var seen [4]atomic.Bool
	var calls atomic.Int64
	p.Run(4, func(w int) {
		seen[w].Store(true)
		calls.Add(1)
	})
	if calls.Load() != 4 {
		t.Fatalf("expected 4 invocations, got %d", calls.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("worker %d never ran", i)
		}
	}
}

func TestPoolReusableAcrossRuns(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	for iter := 0; iter < 50; iter++ {
		p.Run(3, func(w int) { total.Add(1) })
	}
	if total.Load() != 150 {
		t.Fatalf("expected 150 invocations, got %d", total.Load())
	}
}

func TestPoolClampsToSize(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var calls atomic.Int64
	p.Run(10, func(w int) {
		if w >= 2 {
			t.Errorf("worker index %d out of range", w)
		}
		calls.Add(1)
	})
	if calls.Load() != 2 {
		t.Fatalf("expected 2 invocations, got %d", calls.Load())
	}
	p.Run(0, func(w int) { t.Error("n=0 must not run") })
}

func TestPoolClosedRunsSerially(t *testing.T) {
	p := NewPool(4)
	p.Close()
	if !p.Closed() {
		t.Fatalf("pool should report closed")
	}
	order := make([]int, 0, 4)
	p.Run(4, func(w int) { order = append(order, w) })
	if len(order) != 4 {
		t.Fatalf("closed pool should still run tasks, got %v", order)
	}
	for i, w := range order {
		if w != i {
			t.Fatalf("closed pool should run in order, got %v", order)
		}
	}
	p.Close() // idempotent
}

func TestPoolSerialWhenSingleTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ran := false
	// n == 1 runs inline on the caller: mutating local state without
	// synchronization is safe.
	p.Run(1, func(w int) { ran = w == 0 })
	if !ran {
		t.Fatalf("single-task run should execute inline as worker 0")
	}
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("parallel path needs GOMAXPROCS > 1")
	}
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	task := func(w int) { sink.Add(int64(w)) }
	p.Run(4, task) // spawn workers
	allocs := testing.AllocsPerRun(50, func() { p.Run(4, task) })
	if allocs != 0 {
		t.Fatalf("steady-state Run should not allocate, got %v allocs/run", allocs)
	}
}

// TestPoolWorkerPanicContained checks the fault-containment contract: a
// panicking task neither kills the worker goroutines nor deadlocks Run. The
// capture is re-raised on the orchestrator as a *runctl.PanicError with the
// worker's stack, and the pool stays fully usable afterwards.
func TestPoolWorkerPanicContained(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var survivors atomic.Int64

	recovered := func(n int, fn func(w int)) (pe *runctl.PanicError) {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if pe, ok = r.(*runctl.PanicError); !ok {
					t.Fatalf("re-raised value should be *runctl.PanicError, got %T", r)
				}
			}
		}()
		p.Run(n, fn)
		return nil
	}

	pe := recovered(4, func(w int) {
		if w == 2 {
			panic("task fault")
		}
		survivors.Add(1)
	})
	if pe == nil {
		t.Fatalf("panic should be re-raised to the Run caller")
	}
	if pe.Value != "task fault" {
		t.Fatalf("capture lost the panic value: %+v", pe.Value)
	}
	if survivors.Load() != 3 {
		t.Fatalf("non-panicking invocations should all finish, got %d", survivors.Load())
	}
	if len(pe.Stack) == 0 {
		t.Fatalf("capture should carry the panicking goroutine's stack")
	}

	// The pool must be reusable: every worker survived the fault.
	survivors.Store(0)
	p.Run(4, func(w int) { survivors.Add(1) })
	if survivors.Load() != 4 {
		t.Fatalf("pool should stay fully usable after a contained panic, got %d workers", survivors.Load())
	}

	// Serial path (n == 1) contains panics the same way.
	pe = recovered(1, func(w int) { panic("serial fault") })
	if pe == nil || pe.Value != "serial fault" || pe.Worker != 0 {
		t.Fatalf("serial Run should wrap panics identically, got %+v", pe)
	}
}
