// Package trace generates the dynamic instruction streams that drive the
// simulator. It is the substitute for Pin-based dynamic binary translation of
// native benchmark binaries: each Workload is a deterministic, seeded program
// model that produces per-thread streams of dynamic basic blocks (static
// blocks from package isa plus resolved memory addresses, branch outcomes,
// and synchronization actions).
//
// Workloads are parameterized along the behavioural axes that determine the
// paper's results: memory intensity and working-set size (cache MPKIs),
// instruction-level parallelism and operation mix (IPC), branch
// predictability (frontend stalls), data sharing and critical sections
// (coherence traffic, path-altering interference, multithreaded speedup), and
// serial fractions (Amdahl limits). The registry in workloads.go maps the
// benchmark names used in the paper's figures (SPEC CPU2006, PARSEC,
// SPLASH-2, SPEC OMP2001, STREAM) to parameter sets that reproduce each
// benchmark's published behavioural envelope.
package trace

import (
	"fmt"

	"zsim/internal/arena"
	"zsim/internal/isa"
)

// SyncKind describes a synchronization action attached to a dynamic block.
// The execution driver (package boundweave / virt) resolves these against
// simulated time, which is what makes lock contention, barriers, and blocking
// system calls affect the simulated schedule exactly as they would in an
// execution-driven simulation of a real binary.
type SyncKind uint8

const (
	// SyncNone means the block is ordinary computation.
	SyncNone SyncKind = iota
	// SyncLockAcquire means the thread attempts to acquire lock SyncID before
	// the block's work proceeds; if the lock is held the thread spins in
	// simulated time (the generator keeps issuing spin blocks).
	SyncLockAcquire
	// SyncLockRelease releases lock SyncID after the block executes.
	SyncLockRelease
	// SyncBarrier makes the thread wait at workload barrier SyncID until all
	// live threads of the workload arrive.
	SyncBarrier
	// SyncBlocked indicates a blocking system call (futex wait, sleep,
	// network receive): the thread leaves the interval barrier for SyncArg
	// simulated cycles (Section 3.3 of the paper).
	SyncBlocked
	// SyncDone means the thread has finished its work.
	SyncDone
)

// String returns a short name for the sync kind.
func (k SyncKind) String() string {
	switch k {
	case SyncNone:
		return "none"
	case SyncLockAcquire:
		return "lock-acquire"
	case SyncLockRelease:
		return "lock-release"
	case SyncBarrier:
		return "barrier"
	case SyncBlocked:
		return "blocked"
	case SyncDone:
		return "done"
	default:
		return fmt.Sprintf("sync(%d)", uint8(k))
	}
}

// DynBlock is one dynamic execution of a static basic block: the decoded
// block, the memory address for each memory-operand slot, the outcome of the
// terminating conditional branch (if any), and an optional synchronization
// action. DynBlocks are produced by Thread.NextBlock and consumed by the core
// timing models.
type DynBlock struct {
	Decoded *isa.DecodedBBL
	// Addrs holds the effective (byte) address for each memory-operand slot
	// of the decoded block, indexed by Uop.MemSlot.
	Addrs []uint64
	// Taken is the outcome of the block-ending conditional branch; it is only
	// meaningful if Decoded.CondBranch is true.
	Taken bool
	// BranchPC is the address of the block-ending branch (used to index the
	// branch predictor).
	BranchPC uint64
	// Sync describes the synchronization action attached to this block.
	Sync SyncKind
	// SyncID identifies the lock or barrier for lock/barrier actions.
	SyncID int
	// SyncArg carries extra data for SyncBlocked (cycles to remain blocked).
	SyncArg uint64
}

// Params are the behavioural parameters of a workload. The zero value is not
// useful; use the registry in workloads.go or DefaultParams as a starting
// point.
type Params struct {
	// Seed makes the workload deterministic. Different threads derive
	// per-thread seeds from it.
	Seed uint64
	// AddrSpace places the workload in a disjoint simulated address-space
	// slice: code, lock words, shared data and per-thread private data are
	// all offset by AddrSpace * 2^44 bytes. Multiprocess runs give each
	// process a distinct value so processes do not alias each other's cache
	// lines (the zsim facade assigns process indices automatically); 0 keeps
	// the legacy shared layout.
	AddrSpace uint64

	// BlocksPerThread is how many dynamic basic blocks each worker thread
	// executes before finishing (the harness may also cut simulation earlier
	// by instruction count). If ScaleWork is true the per-thread count is
	// divided by the number of threads, modelling a fixed total problem size
	// (the speedup experiments need this).
	BlocksPerThread int
	// ScaleWork divides the work among threads (strong scaling) when true;
	// when false each thread does BlocksPerThread blocks (rate-style work).
	ScaleWork bool

	// AvgBlockLen is the average number of instructions per basic block.
	AvgBlockLen int
	// StaticBlocks is the number of distinct static basic blocks (the code
	// footprint); it determines L1I behaviour and decoder-cache size.
	StaticBlocks int

	// MemFraction is the fraction of instructions that access memory.
	MemFraction float64
	// StoreFraction is the fraction of memory instructions that are stores.
	StoreFraction float64
	// WorkingSet is the per-thread private data footprint in bytes.
	WorkingSet uint64
	// SharedWorkingSet is the footprint of data shared by all threads.
	SharedWorkingSet uint64
	// SharedFraction is the fraction of memory accesses that go to the shared
	// region (0 for single-threaded workloads).
	SharedFraction float64
	// StridedFraction is the fraction of accesses that follow a streaming
	// (unit-stride) pattern; the remainder are uniformly random within the
	// working set (pointer-chase-like behaviour).
	StridedFraction float64
	// DependentLoads, when true, makes consecutive loads dependent through a
	// register (pointer chasing), serializing them in the OOO model.
	DependentLoads bool

	// FPFraction is the fraction of ALU operations that are floating-point.
	FPFraction float64
	// LongOpFraction is the fraction of ALU operations that are long-latency
	// (multiply/divide).
	LongOpFraction float64
	// ILP is the number of independent dependency chains interleaved in
	// generated blocks (1 = fully serial chain, 4+ = high ILP).
	ILP int

	// BranchEvery is the number of instructions between conditional branches
	// (approximately one branch per basic block end).
	BranchEvery int
	// BranchRandomFrac is the fraction of conditional branches whose outcome
	// is random (hard to predict); the rest follow a strongly biased pattern.
	BranchRandomFrac float64

	// SerialFraction is the fraction of total work executed only by thread 0
	// while other threads wait at a barrier (Amdahl's-law limiter).
	SerialFraction float64
	// LockEvery is the number of blocks between critical sections (0 = no
	// locking).
	LockEvery int
	// LockHoldBlocks is the number of blocks executed inside a critical
	// section.
	LockHoldBlocks int
	// NumLocks is the number of distinct locks (1 = a single global lock,
	// giving heavy contention).
	NumLocks int
	// BarrierEvery is the number of blocks between global barriers (0 = no
	// barriers).
	BarrierEvery int
	// BlockedSyscallEvery is the number of blocks between blocking system
	// calls (0 = none); used by client-server style workloads.
	BlockedSyscallEvery int
	// BlockedSyscallCycles is how long each blocking syscall keeps the thread
	// off the cores.
	BlockedSyscallCycles uint64
}

// DefaultParams returns a moderate, compute-leaning parameter set used as the
// base for the registry entries and for tests.
func DefaultParams() Params {
	return Params{
		Seed:             1,
		BlocksPerThread:  10000,
		AvgBlockLen:      8,
		StaticBlocks:     256,
		MemFraction:      0.3,
		StoreFraction:    0.3,
		WorkingSet:       1 << 20, // 1 MB
		StridedFraction:  0.7,
		FPFraction:       0.2,
		LongOpFraction:   0.05,
		ILP:              3,
		BranchEvery:      8,
		BranchRandomFrac: 0.05,
		NumLocks:         8,
	}
}

// Workload is a named, parameterized program model. Use New to build the
// static code (basic blocks) and then Thread to obtain per-thread dynamic
// streams.
type Workload struct {
	Name    string
	Params  Params
	Threads int

	arena   *arena.Arena
	decoder *isa.Decoder
	blocks  []*isa.BasicBlock
	decoded []*isa.DecodedBBL

	// spinBlock is the small cmpxchg loop body threads execute while waiting
	// for a contended lock; it generates coherence traffic on the lock's
	// cache line exactly as a spinlock would.
	spinBlock   *isa.BasicBlock
	spinDecoded *isa.DecodedBBL

	// sharedBase is the base simulated address of the shared data region;
	// lock words live right below it.
	sharedBase uint64
}

// New constructs a workload with the given name, parameters and thread count.
// The static code footprint is generated deterministically from the seed and
// decoded once (the decoder plays the role of Pin's translation cache).
func New(name string, p Params, threads int) *Workload {
	return NewIn(nil, name, p, threads)
}

// NewIn is New with the workload's static code — basic blocks, their decoded
// translations and the decoder cache — carved from the given construction
// arena (nil falls back to the heap). The zsim facade passes the simulated
// system's arena, turning the largest remaining fixed construction cost
// (workload decode, ~4k allocations per workload) into a few chunk
// allocations.
func NewIn(a *arena.Arena, name string, p Params, threads int) *Workload {
	if threads < 1 {
		threads = 1
	}
	if p.AvgBlockLen < 2 {
		p.AvgBlockLen = 2
	}
	if p.StaticBlocks < 1 {
		p.StaticBlocks = 1
	}
	if p.ILP < 1 {
		p.ILP = 1
	}
	if p.NumLocks < 1 {
		p.NumLocks = 1
	}
	w := arena.One[Workload](a)
	w.Name = name
	w.Params = p
	w.Threads = threads
	w.arena = a
	w.decoder = isa.NewDecoderIn(a)
	w.sharedBase = 0x7f00_0000_0000 + p.AddrSpace<<44
	w.generateCode()
	return w
}

// Decoder exposes the workload's decode cache (for DBT-ablation benchmarks).
func (w *Workload) Decoder() *isa.Decoder { return w.decoder }

// NumStaticBlocks returns the number of distinct static blocks generated.
func (w *Workload) NumStaticBlocks() int { return len(w.blocks) }

// generateCode builds the static basic blocks from the workload parameters.
// Block structures and instruction slices come from the workload's arena
// when it has one.
func (w *Workload) generateCode() {
	rng := newRand(w.Params.Seed ^ 0x9e3779b97f4a7c15)
	p := w.Params
	codeAddr := 0x400000 + p.AddrSpace<<44
	w.blocks = arena.TakeCap[*isa.BasicBlock](w.arena, 0, p.StaticBlocks)
	w.decoded = arena.TakeCap[*isa.DecodedBBL](w.arena, 0, p.StaticBlocks)
	for i := 0; i < p.StaticBlocks; i++ {
		n := p.AvgBlockLen/2 + int(rng.next()%uint64(p.AvgBlockLen))
		if n < 2 {
			n = 2
		}
		b := arena.One[isa.BasicBlock](w.arena)
		b.ID = uint64(i + 1)
		b.Addr = codeAddr
		// A block emits at most n+2 instructions (body ops plus a
		// two-instruction cmp+jcc terminator).
		b.Instrs = arena.TakeCap[isa.Instruction](w.arena, 0, n+2)
		memOps := int(float64(n)*p.MemFraction + 0.5)
		aluOps := n - memOps - 1 // one slot reserved for the ending branch
		if aluOps < 0 {
			aluOps = 0
		}
		// Interleave memory and ALU ops; build ILP chains by rotating the
		// destination register across chains.
		chain := 0
		loadReg := isa.GPR(10) // register carrying the last loaded value (for pointer chasing)
		for j := 0; j < memOps+aluOps; j++ {
			dst := isa.GPR(chain)
			src := isa.GPR((chain + 1) % p.ILP)
			chain = (chain + 1) % p.ILP
			isMem := false
			if memOps > 0 && (j%((memOps+aluOps)/maxInt(memOps, 1)+1) == 0 || aluOps == 0) {
				isMem = true
				memOps--
			} else if aluOps > 0 {
				aluOps--
			} else {
				isMem = true
				memOps--
			}
			if isMem {
				if rng.float() < p.StoreFraction {
					b.Instrs = append(b.Instrs, isa.Instruction{Op: isa.OpStore, Dst: dst, Src1: isa.RBP, Bytes: 4})
				} else {
					base := isa.RBP
					ldst := dst
					if p.DependentLoads {
						base = loadReg
						ldst = loadReg
					}
					b.Instrs = append(b.Instrs, isa.Instruction{Op: isa.OpLoad, Dst: ldst, Src1: base, Bytes: 4})
				}
			} else {
				r := rng.float()
				switch {
				case r < p.FPFraction*p.LongOpFraction*4:
					b.Instrs = append(b.Instrs, isa.Instruction{Op: isa.OpFDiv, Dst: isa.XMM(chain), Src1: isa.XMM(chain), Src2: isa.XMM((chain + 1) % 16), Bytes: 4})
				case r < p.FPFraction:
					op := isa.OpFAdd
					if rng.float() < 0.4 {
						op = isa.OpFMul
					}
					b.Instrs = append(b.Instrs, isa.Instruction{Op: op, Dst: isa.XMM(chain), Src1: isa.XMM(chain), Src2: isa.XMM((chain + 1) % 16), Bytes: 4})
				case r < p.FPFraction+p.LongOpFraction:
					op := isa.OpMul
					if rng.float() < 0.2 {
						op = isa.OpDiv
					}
					b.Instrs = append(b.Instrs, isa.Instruction{Op: op, Dst: dst, Src1: dst, Src2: src, Bytes: 3})
				default:
					b.Instrs = append(b.Instrs, isa.Instruction{Op: isa.OpAdd, Dst: dst, Src1: dst, Src2: src, Bytes: 3})
				}
			}
		}
		// Terminate with a compare + conditional branch (most blocks) or an
		// unconditional jump (some blocks), giving realistic branch density.
		if rng.float() < 0.85 {
			b.Instrs = append(b.Instrs,
				isa.Instruction{Op: isa.OpCmp, Src1: isa.GPR(0), Src2: isa.GPR(1), Bytes: 3},
				isa.Instruction{Op: isa.OpJcc, Bytes: 2})
		} else {
			b.Instrs = append(b.Instrs, isa.Instruction{Op: isa.OpJmp, Bytes: 2})
		}
		w.blocks = append(w.blocks, b)
		w.decoded = append(w.decoded, w.decoder.Lookup(b))
		codeAddr += b.Bytes()
	}

	// The spin block: load the lock word, compare, attempt cmpxchg, branch.
	w.spinBlock = arena.One[isa.BasicBlock](w.arena)
	w.spinBlock.ID = uint64(p.StaticBlocks + 1)
	w.spinBlock.Addr = codeAddr
	w.spinBlock.Instrs = append(arena.TakeCap[isa.Instruction](w.arena, 0, 4),
		isa.Instruction{Op: isa.OpLoad, Dst: isa.RAX, Src1: isa.RBX, Bytes: 4},
		isa.Instruction{Op: isa.OpCmp, Src1: isa.RAX, Src2: isa.RCX, Bytes: 3},
		isa.Instruction{Op: isa.OpCmpXchg, Dst: isa.RAX, Src1: isa.RBX, Src2: isa.RDX, Bytes: 5},
		isa.Instruction{Op: isa.OpJcc, Bytes: 2},
	)
	w.spinDecoded = w.decoder.Lookup(w.spinBlock)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LockAddr returns the simulated address of lock word id. Lock words are
// spaced a cache line apart just below the shared region.
func (w *Workload) LockAddr(id int) uint64 {
	return w.sharedBase - uint64((id+1))*64
}

// SharedBase returns the base address of the shared data region.
func (w *Workload) SharedBase() uint64 { return w.sharedBase }
