package trace

import "zsim/internal/isa"

// Thread is the per-simulated-thread dynamic block generator. It is the
// analogue of an instrumented native thread: the core timing model repeatedly
// calls NextBlock and simulates the returned block.
//
// The DynBlock returned by NextBlock (and SpinBlock) is owned by the Thread
// and reused on the next call; callers must finish consuming it (including
// its Addrs slice) before asking for another block. This mirrors how zsim's
// instrumentation callbacks pass transient per-block state to the timing
// models and keeps block generation allocation-free on the hot path.
type Thread struct {
	w   *Workload
	tid int
	rng *rand64

	// Work accounting.
	blocksLeft int // blocks remaining in the current phase
	serialLeft int // serial-phase blocks remaining (thread 0 only)
	phase      threadPhase

	// Synchronization pacing.
	sinceLock    int
	csLeft       int // blocks left inside the current critical section
	heldLock     int
	sinceBarrier int
	barrierSeq   int
	sinceSyscall int

	// Address generation.
	privBase  uint64
	stridePtr uint64
	sharedPtr uint64

	// Reused output block.
	out   DynBlock
	addrs [64]uint64

	done bool
}

type threadPhase uint8

const (
	phaseSerial  threadPhase = iota // thread 0 runs the serial portion
	phaseWaitSer                    // other threads wait for the serial portion
	phaseParallel
	phaseDone
)

// NewThread returns the dynamic stream for simulated thread tid of the
// workload. tid must be in [0, w.Threads).
func (w *Workload) NewThread(tid int) *Thread {
	p := w.Params
	perThread := p.BlocksPerThread
	if p.ScaleWork && w.Threads > 0 {
		perThread = p.BlocksPerThread / w.Threads
	}
	if perThread < 1 {
		perThread = 1
	}
	totalWork := perThread * w.Threads
	serialBlocks := int(p.SerialFraction * float64(totalWork))
	parallelPerThread := (totalWork - serialBlocks) / w.Threads
	if parallelPerThread < 1 {
		parallelPerThread = 1
	}

	t := &Thread{
		w:        w,
		tid:      tid,
		rng:      newRand(p.Seed*2654435761 + uint64(tid)*0x9e3779b97f4a7c15 + 1),
		privBase: 0x10_0000_0000 + p.AddrSpace<<44 + uint64(tid)*alignUp(p.WorkingSet+4096, 1<<20),
	}
	t.blocksLeft = parallelPerThread
	if serialBlocks > 0 {
		if tid == 0 {
			t.phase = phaseSerial
			t.serialLeft = serialBlocks
		} else {
			t.phase = phaseWaitSer
		}
	} else {
		t.phase = phaseParallel
	}
	return t
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) / a * a }

// TID returns the thread's index within its workload.
func (t *Thread) TID() int { return t.tid }

// Done reports whether the thread has emitted its SyncDone block.
func (t *Thread) Done() bool { return t.done }

// NextBlock returns the next dynamic block for the thread. After the thread's
// work is exhausted it returns a block with Sync == SyncDone (and keeps
// returning it if called again).
func (t *Thread) NextBlock() *DynBlock {
	p := &t.w.Params
	switch t.phase {
	case phaseDone:
		return t.doneBlock()
	case phaseWaitSer:
		// Wait for the serial phase to finish at barrier 0, then start
		// parallel work.
		t.phase = phaseParallel
		return t.syncOnly(SyncBarrier, 0)
	case phaseSerial:
		if t.serialLeft == 0 {
			t.phase = phaseParallel
			return t.syncOnly(SyncBarrier, 0)
		}
		t.serialLeft--
		return t.computeBlock(SyncNone, 0)
	}

	// Critical-section bookkeeping: if inside one, count it down and release.
	// This takes priority over finishing so a thread never terminates while
	// holding a lock.
	if t.csLeft > 0 {
		t.csLeft--
		t.blocksLeft--
		if t.csLeft == 0 {
			return t.computeBlock(SyncLockRelease, t.heldLock)
		}
		return t.computeBlock(SyncNone, 0)
	}

	// Parallel phase.
	if t.blocksLeft <= 0 {
		// Final barrier so all threads end together, then done.
		t.phase = phaseDone
		return t.syncOnly(SyncBarrier, 1)
	}

	// Periodic global barrier.
	if p.BarrierEvery > 0 && t.sinceBarrier >= p.BarrierEvery {
		t.sinceBarrier = 0
		t.barrierSeq++
		return t.syncOnly(SyncBarrier, 1+t.barrierSeq)
	}

	// Periodic blocking syscall.
	if p.BlockedSyscallEvery > 0 && t.sinceSyscall >= p.BlockedSyscallEvery {
		t.sinceSyscall = 0
		b := t.syncOnly(SyncBlocked, 0)
		b.SyncArg = p.BlockedSyscallCycles
		return b
	}

	// Periodic critical section: emit the acquire; the held-section blocks
	// follow on subsequent calls.
	if p.LockEvery > 0 && t.sinceLock >= p.LockEvery {
		t.sinceLock = 0
		t.heldLock = t.rng.intn(p.NumLocks)
		t.csLeft = maxInt(p.LockHoldBlocks, 1)
		return t.lockBlock(SyncLockAcquire, t.heldLock)
	}

	t.sinceLock++
	t.sinceBarrier++
	t.sinceSyscall++
	t.blocksLeft--
	return t.computeBlock(SyncNone, 0)
}

// SpinBlock returns a dynamic execution of the spin-wait loop on the given
// lock. The execution driver issues these while the thread waits for a
// contended lock, producing the coherence traffic (and simulated cycles) a
// real spinlock produces.
func (t *Thread) SpinBlock(lockID int) *DynBlock {
	return t.fillLockDyn(t.w.spinDecoded, lockID, SyncNone, 0)
}

// doneBlock returns the terminal block.
func (t *Thread) doneBlock() *DynBlock {
	t.done = true
	t.out = DynBlock{Sync: SyncDone}
	return &t.out
}

// syncOnly returns a block that carries only a synchronization action (it
// still contains a tiny amount of work: the sync entry sequence).
func (t *Thread) syncOnly(kind SyncKind, id int) *DynBlock {
	// Reuse the spin block's code as the sync entry sequence: a load of the
	// sync variable plus a compare and branch.
	return t.fillLockDyn(t.w.spinDecoded, id%t.w.Params.NumLocks, kind, id)
}

// lockBlock returns the acquire block for lock id.
func (t *Thread) lockBlock(kind SyncKind, lockID int) *DynBlock {
	return t.fillLockDyn(t.w.spinDecoded, lockID, kind, lockID)
}

func (t *Thread) fillLockDyn(d *isa.DecodedBBL, lockID int, kind SyncKind, syncID int) *DynBlock {
	addr := t.w.LockAddr(lockID)
	n := 0
	for _, u := range d.Uops {
		if u.MemSlot >= 0 && int(u.MemSlot) >= n {
			n = int(u.MemSlot) + 1
		}
	}
	for i := 0; i < n; i++ {
		t.addrs[i] = addr
	}
	t.out = DynBlock{
		Decoded:  d,
		Addrs:    t.addrs[:n],
		Taken:    true,
		BranchPC: d.Addr + d.Bytes - 2,
		Sync:     kind,
		SyncID:   syncID,
	}
	return &t.out
}

// computeBlock returns an ordinary computation block, optionally tagged with
// a trailing synchronization action (lock release).
func (t *Thread) computeBlock(kind SyncKind, syncID int) *DynBlock {
	p := &t.w.Params
	// Pick a static block with a hot/cold distribution: 80% of executions
	// come from the first eighth of the code footprint, concentrating the
	// instruction working set as real programs do.
	var idx int
	nb := len(t.w.blocks)
	hot := maxInt(nb/8, 1)
	if t.rng.float() < 0.8 {
		idx = t.rng.intn(hot)
	} else {
		idx = t.rng.intn(nb)
	}
	d := t.w.decoded[idx]

	// Generate one address per memory slot.
	nSlots := 0
	for _, u := range d.Uops {
		if u.MemSlot >= 0 && int(u.MemSlot) >= nSlots {
			nSlots = int(u.MemSlot) + 1
		}
	}
	if nSlots > len(t.addrs) {
		nSlots = len(t.addrs)
	}
	for i := 0; i < nSlots; i++ {
		t.addrs[i] = t.genAddr()
	}

	// Branch outcome: per-static-block predictability. Blocks whose ID hashes
	// below BranchRandomFrac have data-dependent (random) branches; the rest
	// are strongly biased (taken except once every 16 executions).
	taken := true
	if d.CondBranch {
		if blockIsRandomBranch(d.ID, p.BranchRandomFrac) {
			taken = t.rng.next()&1 == 0
		} else {
			taken = t.rng.intn(16) != 0
		}
	}

	t.out = DynBlock{
		Decoded:  d,
		Addrs:    t.addrs[:nSlots],
		Taken:    taken,
		BranchPC: d.Addr + d.Bytes - 2,
		Sync:     kind,
		SyncID:   syncID,
	}
	return &t.out
}

// blockIsRandomBranch deterministically classifies a static block's branch as
// hard to predict with probability frac.
func blockIsRandomBranch(id uint64, frac float64) bool {
	if frac <= 0 {
		return false
	}
	h := id * 0x9e3779b97f4a7c15
	return float64(h>>40)/float64(1<<24) < frac
}

// genAddr produces one data address according to the workload's locality and
// sharing parameters.
func (t *Thread) genAddr() uint64 {
	p := &t.w.Params
	shared := p.SharedFraction > 0 && t.rng.float() < p.SharedFraction && p.SharedWorkingSet > 0
	if shared {
		if p.StridedFraction > 0 && t.rng.float() < p.StridedFraction {
			t.sharedPtr += 64
			if t.sharedPtr >= p.SharedWorkingSet {
				t.sharedPtr = 0
			}
			return t.w.sharedBase + t.sharedPtr
		}
		return t.w.sharedBase + (t.rng.next() % maxU64(p.SharedWorkingSet, 64) &^ 7)
	}
	ws := maxU64(p.WorkingSet, 4096)
	if t.rng.float() < p.StridedFraction {
		t.stridePtr += 8
		if t.stridePtr >= ws {
			t.stridePtr = 0
		}
		return t.privBase + t.stridePtr
	}
	// Irregular accesses have temporal locality: most touch a hot subset of
	// the working set (real pointer-chasing codes re-touch recently used
	// nodes far more often than a uniform draw over the footprint would).
	region := ws
	if t.rng.float() < 0.85 {
		region = maxU64(ws/16, 4096)
	}
	return t.privBase + (t.rng.next()%region)&^7
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
