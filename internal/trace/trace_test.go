package trace

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := newRand(42)
	b := newRand(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatalf("same seed should give same stream")
		}
	}
	z := newRand(0)
	if z.state == 0 {
		t.Fatalf("zero seed must be remapped")
	}
	v := z.float()
	if v < 0 || v >= 1 {
		t.Fatalf("float out of range: %f", v)
	}
	if n := z.intn(10); n < 0 || n >= 10 {
		t.Fatalf("intn out of range: %d", n)
	}
}

func TestSyncKindString(t *testing.T) {
	kinds := []SyncKind{SyncNone, SyncLockAcquire, SyncLockRelease, SyncBarrier, SyncBlocked, SyncDone}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("sync kind %d has empty name", k)
		}
	}
	if SyncKind(99).String() != "sync(99)" {
		t.Fatalf("unknown kind fallback broken")
	}
}

func TestWorkloadConstruction(t *testing.T) {
	p := DefaultParams()
	p.StaticBlocks = 64
	w := New("test", p, 4)
	if w.NumStaticBlocks() != 64 {
		t.Fatalf("expected 64 static blocks, got %d", w.NumStaticBlocks())
	}
	if w.Decoder().Size() != 65 { // 64 + spin block
		t.Fatalf("decoder should hold 65 blocks, got %d", w.Decoder().Size())
	}
	// Defensive clamps.
	w2 := New("clamped", Params{Seed: 1, BlocksPerThread: 10}, 0)
	if w2.Threads != 1 {
		t.Fatalf("threads should clamp to 1, got %d", w2.Threads)
	}
	if w2.Params.AvgBlockLen < 2 || w2.Params.StaticBlocks < 1 || w2.Params.ILP < 1 || w2.Params.NumLocks < 1 {
		t.Fatalf("parameter clamps not applied: %+v", w2.Params)
	}
}

func TestThreadProducesWorkAndTerminates(t *testing.T) {
	p := DefaultParams()
	p.BlocksPerThread = 200
	p.StaticBlocks = 32
	w := New("test", p, 2)
	th := w.NewThread(0)
	var blocks, instrs int
	for i := 0; i < 10000; i++ {
		b := th.NextBlock()
		if b.Sync == SyncDone {
			break
		}
		if b.Decoded == nil {
			t.Fatalf("non-done block must have a decoded BBL")
		}
		blocks++
		instrs += b.Decoded.Instrs
	}
	if !th.Done() {
		t.Fatalf("thread should terminate within the block budget")
	}
	if blocks < 150 || instrs == 0 {
		t.Fatalf("thread produced too little work: %d blocks, %d instrs", blocks, instrs)
	}
	// After done, it keeps returning done.
	if b := th.NextBlock(); b.Sync != SyncDone {
		t.Fatalf("done thread should keep reporting done")
	}
}

func TestThreadAddressesWithinRegions(t *testing.T) {
	p := DefaultParams()
	p.BlocksPerThread = 500
	p.WorkingSet = 1 << 16
	p.SharedWorkingSet = 1 << 16
	p.SharedFraction = 0.5
	w := New("test", p, 2)
	th0 := w.NewThread(0)
	th1 := w.NewThread(1)
	sharedLo := w.SharedBase()
	sharedHi := sharedLo + p.SharedWorkingSet
	lockLo := w.LockAddr(p.NumLocks - 1)
	checkThread := func(th *Thread) (priv, shared int) {
		for i := 0; i < 2000; i++ {
			b := th.NextBlock()
			if b.Sync == SyncDone {
				break
			}
			for _, a := range b.Addrs {
				switch {
				case a >= sharedLo && a < sharedHi:
					shared++
				case a >= lockLo && a < sharedLo:
					// lock word
				case a >= 0x10_0000_0000 && a < 0x7f00_0000_0000:
					priv++
				default:
					t.Fatalf("address %#x outside every known region", a)
				}
			}
		}
		return
	}
	p0, s0 := checkThread(th0)
	p1, _ := checkThread(th1)
	if p0 == 0 || s0 == 0 || p1 == 0 {
		t.Fatalf("expected both private and shared accesses: %d/%d", p0, s0)
	}
}

func TestThreadPrivateRegionsDisjoint(t *testing.T) {
	p := DefaultParams()
	p.SharedFraction = 0
	p.WorkingSet = 1 << 20
	w := New("test", p, 4)
	t0 := w.NewThread(0)
	t3 := w.NewThread(3)
	if t0.privBase == t3.privBase {
		t.Fatalf("threads must have distinct private regions")
	}
	if t3.privBase < t0.privBase+p.WorkingSet {
		t.Fatalf("private regions overlap: %#x vs %#x", t0.privBase, t3.privBase)
	}
}

func TestSerialFractionPhases(t *testing.T) {
	p := DefaultParams()
	p.BlocksPerThread = 100
	p.SerialFraction = 0.3
	w := New("test", p, 4)

	// A non-zero serial fraction means thread 1 starts by waiting at a
	// barrier while thread 0 computes.
	th1 := w.NewThread(1)
	b := th1.NextBlock()
	if b.Sync != SyncBarrier {
		t.Fatalf("worker thread should first wait at the serial barrier, got %v", b.Sync)
	}
	th0 := w.NewThread(0)
	b = th0.NextBlock()
	if b.Sync != SyncNone {
		t.Fatalf("thread 0 should start with serial work, got %v", b.Sync)
	}
	// Thread 0 eventually reaches the same barrier.
	sawBarrier := false
	for i := 0; i < 10000; i++ {
		b = th0.NextBlock()
		if b.Sync == SyncBarrier {
			sawBarrier = true
			break
		}
	}
	if !sawBarrier {
		t.Fatalf("thread 0 never reached the post-serial barrier")
	}
}

func TestLockAcquireReleasePairing(t *testing.T) {
	p := DefaultParams()
	p.BlocksPerThread = 2000
	p.LockEvery = 10
	p.LockHoldBlocks = 3
	p.NumLocks = 4
	w := New("test", p, 2)
	th := w.NewThread(0)
	depth := 0
	acquires, releases := 0, 0
	for i := 0; i < 20000; i++ {
		b := th.NextBlock()
		if b.Sync == SyncDone {
			break
		}
		switch b.Sync {
		case SyncLockAcquire:
			acquires++
			depth++
			if depth > 1 {
				t.Fatalf("nested lock acquire at block %d", i)
			}
			if b.SyncID < 0 || b.SyncID >= p.NumLocks {
				t.Fatalf("lock id out of range: %d", b.SyncID)
			}
		case SyncLockRelease:
			releases++
			depth--
			if depth < 0 {
				t.Fatalf("release without acquire at block %d", i)
			}
		}
	}
	if acquires == 0 {
		t.Fatalf("expected critical sections to be generated")
	}
	if acquires != releases {
		t.Fatalf("unbalanced lock operations: %d acquires, %d releases", acquires, releases)
	}
}

func TestBarrierAndSyscallGeneration(t *testing.T) {
	p := DefaultParams()
	p.BlocksPerThread = 3000
	p.BarrierEvery = 50
	p.BlockedSyscallEvery = 400
	p.BlockedSyscallCycles = 5000
	w := New("test", p, 2)
	th := w.NewThread(1)
	barriers, syscalls := 0, 0
	for i := 0; i < 30000; i++ {
		b := th.NextBlock()
		if b.Sync == SyncDone {
			break
		}
		switch b.Sync {
		case SyncBarrier:
			barriers++
		case SyncBlocked:
			syscalls++
			if b.SyncArg != 5000 {
				t.Fatalf("blocked syscall should carry its duration, got %d", b.SyncArg)
			}
		}
	}
	if barriers < 10 {
		t.Fatalf("expected many barriers, got %d", barriers)
	}
	if syscalls < 2 {
		t.Fatalf("expected blocking syscalls, got %d", syscalls)
	}
}

func TestSpinBlockTargetsLockWord(t *testing.T) {
	w := New("test", DefaultParams(), 2)
	th := w.NewThread(0)
	b := th.SpinBlock(3)
	if len(b.Addrs) == 0 {
		t.Fatalf("spin block must access the lock word")
	}
	for _, a := range b.Addrs {
		if a != w.LockAddr(3) {
			t.Fatalf("spin block address %#x != lock addr %#x", a, w.LockAddr(3))
		}
	}
	if b.Decoded.Loads == 0 || b.Decoded.Stores == 0 {
		t.Fatalf("spin block should both read and write the lock word (cmpxchg)")
	}
}

func TestScaleWorkDividesBlocks(t *testing.T) {
	p := DefaultParams()
	p.BlocksPerThread = 1000
	p.ScaleWork = true
	count := func(threads int) int {
		w := New("test", p, threads)
		th := w.NewThread(0)
		n := 0
		for i := 0; i < 100000; i++ {
			b := th.NextBlock()
			if b.Sync == SyncDone {
				break
			}
			if b.Sync == SyncNone || b.Sync == SyncLockRelease {
				n++
			}
		}
		return n
	}
	one := count(1)
	four := count(4)
	if four >= one {
		t.Fatalf("scaled work should shrink per-thread blocks: 1t=%d 4t=%d", one, four)
	}
	if four < one/8 {
		t.Fatalf("per-thread work shrank too much: 1t=%d 4t=%d", one, four)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	spec := SPECCPU2006()
	if len(spec) != 29 {
		t.Fatalf("SPEC CPU2006 should have 29 workloads, got %d", len(spec))
	}
	mt := Multithreaded()
	if len(mt) != 23 {
		t.Fatalf("multithreaded suite should have 23 workloads, got %d", len(mt))
	}
	if len(PARSECNames()) != 6 {
		t.Fatalf("PARSEC suite should have 6 workloads")
	}
	if len(Figure2Names()) != 10 {
		t.Fatalf("Figure 2 should have 10 workloads")
	}
	if len(Table4Names()) != 13 {
		t.Fatalf("Table 4 should have 13 workloads")
	}
	for _, n := range AllNames() {
		p, ok := Lookup(n)
		if !ok {
			t.Fatalf("registered workload %q not found by Lookup", n)
		}
		if p.WorkingSet == 0 || p.MemFraction <= 0 {
			t.Fatalf("workload %q has degenerate parameters: %+v", n, p)
		}
	}
	if _, ok := Lookup("no-such-workload"); ok {
		t.Fatalf("unknown workload should not resolve")
	}
	// Every name referenced by the figure lists must be registered.
	for _, group := range [][]string{PARSECNames(), Figure2Names(), Table4Names()} {
		for _, n := range group {
			if _, ok := Lookup(n); !ok {
				t.Fatalf("figure workload %q not registered", n)
			}
		}
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustLookup of unknown workload should panic")
		}
	}()
	MustLookup("definitely-not-a-workload")
}

func TestWorkloadDeterminism(t *testing.T) {
	p := MustLookup("mcf")
	p.BlocksPerThread = 300
	run := func() []uint64 {
		w := New("mcf", p, 1)
		th := w.NewThread(0)
		var sig []uint64
		for i := 0; i < 2000; i++ {
			b := th.NextBlock()
			if b.Sync == SyncDone {
				break
			}
			sig = append(sig, b.Decoded.ID)
			for _, a := range b.Addrs {
				sig = append(sig, a)
			}
		}
		return sig
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic workload length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic workload at element %d", i)
		}
	}
}

func TestMemoryIntensityOrdering(t *testing.T) {
	// Sanity check on the registry: mcf (memory-bound) must be configured
	// with a much larger working set and lower stride-friendliness than
	// namd (compute-bound).
	mcf := MustLookup("mcf")
	namd := MustLookup("namd")
	if mcf.WorkingSet <= namd.WorkingSet {
		t.Fatalf("mcf should have a larger working set than namd")
	}
	if mcf.StridedFraction >= namd.StridedFraction {
		t.Fatalf("mcf should be less stride-friendly than namd")
	}
	stream := MustLookup("stream")
	if stream.MemFraction < 0.5 || stream.StridedFraction < 0.99 {
		t.Fatalf("stream should be a pure streaming workload: %+v", stream)
	}
}

// Property: every block produced by any thread has one address per memory
// slot of its decoded BBL, and sync metadata is internally consistent.
func TestThreadBlockInvariants(t *testing.T) {
	f := func(seed uint64, threadsRaw uint8) bool {
		p := DefaultParams()
		p.Seed = seed
		p.BlocksPerThread = 100
		p.LockEvery = 17
		p.LockHoldBlocks = 2
		p.BarrierEvery = 43
		p.SharedFraction = 0.2
		p.SharedWorkingSet = 1 << 16
		threads := int(threadsRaw%8) + 1
		w := New("prop", p, threads)
		th := w.NewThread(int(seed) % threads)
		for i := 0; i < 1500; i++ {
			b := th.NextBlock()
			if b.Sync == SyncDone {
				return true
			}
			if b.Decoded == nil {
				return false
			}
			slots := 0
			for _, u := range b.Decoded.Uops {
				if u.MemSlot >= 0 && int(u.MemSlot)+1 > slots {
					slots = int(u.MemSlot) + 1
				}
			}
			if len(b.Addrs) < slots {
				return false
			}
			if (b.Sync == SyncLockAcquire || b.Sync == SyncLockRelease) &&
				(b.SyncID < 0 || b.SyncID >= p.NumLocks) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
