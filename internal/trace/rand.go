package trace

// rand64 is a small, fast, deterministic PRNG (xorshift64*) used by workload
// generators. It sits on the simulator's hottest path (one or two draws per
// simulated basic block), so it avoids math/rand's locking and interface
// overhead. It is not safe for concurrent use; each thread generator owns its
// own instance.
type rand64 struct {
	state uint64
}

// newRand seeds a generator; a zero seed is remapped to a fixed constant
// because xorshift cannot leave the zero state.
func newRand(seed uint64) *rand64 {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &rand64{state: seed}
}

// next returns the next 64-bit pseudo-random value.
func (r *rand64) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n). n must be positive.
func (r *rand64) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float returns a value in [0, 1).
func (r *rand64) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
