package trace

import (
	"fmt"
	"sort"
)

// This file is the workload registry: it maps the benchmark names used in the
// paper's evaluation (SPEC CPU2006, PARSEC, SPLASH-2, SPEC OMP2001, STREAM)
// to behavioural parameter sets. The parameters are chosen to place each
// synthetic workload in the same behavioural regime as the real benchmark
// (compute-bound vs memory-bound, streaming vs pointer-chasing, branchy vs
// regular, lock-limited vs barrier-limited), which is what determines the
// shape of every figure and table in the evaluation. Absolute IPC/MPKI values
// are not expected to match the real binaries; relative behaviour is.

// specCPUParams returns the parameter sets for the 29 SPEC CPU2006-like
// single-threaded workloads used for Figure 5 and Figure 7.
func specCPUParams() map[string]Params {
	base := DefaultParams()
	base.BlocksPerThread = 20000
	base.StaticBlocks = 512

	mk := func(mod func(*Params)) Params {
		p := base
		mod(&p)
		return p
	}
	kb := func(k int) uint64 { return uint64(k) * 1024 }
	mb := func(m int) uint64 { return uint64(m) * 1024 * 1024 }

	return map[string]Params{
		// Integer, compute-bound, branchy.
		"perlbench": mk(func(p *Params) {
			p.WorkingSet = kb(700)
			p.MemFraction = 0.35
			p.BranchRandomFrac = 0.08
			p.StaticBlocks = 2048
		}),
		"bzip2": mk(func(p *Params) {
			p.WorkingSet = mb(8)
			p.MemFraction = 0.32
			p.BranchRandomFrac = 0.12
			p.StridedFraction = 0.5
		}),
		"gcc": mk(func(p *Params) {
			p.WorkingSet = mb(16)
			p.MemFraction = 0.38
			p.BranchRandomFrac = 0.1
			p.StaticBlocks = 4096
		}),
		"mcf": mk(func(p *Params) {
			p.WorkingSet = mb(256)
			p.MemFraction = 0.38
			p.StridedFraction = 0.1
			p.DependentLoads = true
			p.BranchRandomFrac = 0.12
			p.ILP = 2
		}),
		"gobmk": mk(func(p *Params) {
			p.WorkingSet = kb(256)
			p.MemFraction = 0.3
			p.BranchRandomFrac = 0.15
			p.StaticBlocks = 2048
		}),
		"hmmer": mk(func(p *Params) {
			p.WorkingSet = kb(128)
			p.MemFraction = 0.45
			p.StridedFraction = 0.95
			p.ILP = 4
			p.BranchRandomFrac = 0.02
		}),
		"sjeng": mk(func(p *Params) {
			p.WorkingSet = mb(170)
			p.MemFraction = 0.25
			p.BranchRandomFrac = 0.14
			p.StridedFraction = 0.2
		}),
		"libquantum": mk(func(p *Params) {
			p.WorkingSet = mb(64)
			p.MemFraction = 0.3
			p.StridedFraction = 0.99
			p.ILP = 4
			p.BranchRandomFrac = 0.01
		}),
		"h264ref": mk(func(p *Params) { p.WorkingSet = kb(600); p.MemFraction = 0.4; p.StridedFraction = 0.85; p.ILP = 4 }),
		"omnetpp": mk(func(p *Params) {
			p.WorkingSet = mb(128)
			p.MemFraction = 0.35
			p.StridedFraction = 0.15
			p.DependentLoads = true
			p.BranchRandomFrac = 0.1
		}),
		"astar": mk(func(p *Params) {
			p.WorkingSet = mb(24)
			p.MemFraction = 0.33
			p.StridedFraction = 0.2
			p.DependentLoads = true
			p.BranchRandomFrac = 0.12
		}),
		"xalancbmk": mk(func(p *Params) {
			p.WorkingSet = mb(64)
			p.MemFraction = 0.36
			p.StridedFraction = 0.25
			p.DependentLoads = true
			p.BranchRandomFrac = 0.09
			p.StaticBlocks = 4096
		}),
		// Floating point.
		"bwaves": mk(func(p *Params) {
			p.WorkingSet = mb(400)
			p.MemFraction = 0.42
			p.StridedFraction = 0.97
			p.FPFraction = 0.7
			p.ILP = 4
			p.BranchRandomFrac = 0.01
		}),
		"gamess": mk(func(p *Params) {
			p.WorkingSet = kb(300)
			p.MemFraction = 0.3
			p.FPFraction = 0.6
			p.ILP = 4
			p.BranchRandomFrac = 0.03
		}),
		"milc": mk(func(p *Params) {
			p.WorkingSet = mb(380)
			p.MemFraction = 0.4
			p.StridedFraction = 0.9
			p.FPFraction = 0.65
			p.ILP = 3
		}),
		"zeusmp": mk(func(p *Params) {
			p.WorkingSet = mb(128)
			p.MemFraction = 0.35
			p.StridedFraction = 0.9
			p.FPFraction = 0.6
			p.ILP = 4
		}),
		"gromacs": mk(func(p *Params) {
			p.WorkingSet = mb(4)
			p.MemFraction = 0.32
			p.FPFraction = 0.6
			p.ILP = 4
			p.StridedFraction = 0.8
		}),
		"cactusADM": mk(func(p *Params) {
			p.WorkingSet = mb(160)
			p.MemFraction = 0.45
			p.StridedFraction = 0.9
			p.FPFraction = 0.7
			p.ILP = 3
		}),
		"leslie3d": mk(func(p *Params) {
			p.WorkingSet = mb(120)
			p.MemFraction = 0.45
			p.StridedFraction = 0.92
			p.FPFraction = 0.7
			p.ILP = 3
		}),
		"namd": mk(func(p *Params) {
			p.WorkingSet = kb(700)
			p.MemFraction = 0.3
			p.FPFraction = 0.7
			p.ILP = 5
			p.BranchRandomFrac = 0.01
		}),
		"dealII": mk(func(p *Params) {
			p.WorkingSet = mb(12)
			p.MemFraction = 0.35
			p.FPFraction = 0.55
			p.StridedFraction = 0.6
			p.BranchRandomFrac = 0.04
		}),
		"soplex": mk(func(p *Params) {
			p.WorkingSet = mb(250)
			p.MemFraction = 0.4
			p.StridedFraction = 0.4
			p.FPFraction = 0.5
			p.BranchRandomFrac = 0.06
		}),
		"povray": mk(func(p *Params) {
			p.WorkingSet = kb(200)
			p.MemFraction = 0.3
			p.FPFraction = 0.6
			p.ILP = 4
			p.BranchRandomFrac = 0.06
		}),
		"calculix": mk(func(p *Params) {
			p.WorkingSet = mb(20)
			p.MemFraction = 0.33
			p.FPFraction = 0.65
			p.StridedFraction = 0.85
			p.ILP = 4
		}),
		"GemsFDTD": mk(func(p *Params) {
			p.WorkingSet = mb(700)
			p.MemFraction = 0.45
			p.StridedFraction = 0.9
			p.FPFraction = 0.7
		}),
		"tonto": mk(func(p *Params) { p.WorkingSet = mb(2); p.MemFraction = 0.32; p.FPFraction = 0.6; p.ILP = 4 }),
		"lbm": mk(func(p *Params) {
			p.WorkingSet = mb(400)
			p.MemFraction = 0.48
			p.StridedFraction = 0.98
			p.FPFraction = 0.6
			p.ILP = 4
			p.BranchRandomFrac = 0.005
		}),
		"wrf": mk(func(p *Params) {
			p.WorkingSet = mb(110)
			p.MemFraction = 0.38
			p.StridedFraction = 0.85
			p.FPFraction = 0.6
		}),
		"sphinx3": mk(func(p *Params) {
			p.WorkingSet = mb(40)
			p.MemFraction = 0.4
			p.StridedFraction = 0.7
			p.FPFraction = 0.5
			p.BranchRandomFrac = 0.05
		}),
	}
}

// multiThreadedParams returns the parameter sets for the multithreaded
// workloads used in Figures 2, 6 and Table 4: PARSEC, SPLASH-2, SPEC OMP2001
// and STREAM.
func multiThreadedParams() map[string]Params {
	base := DefaultParams()
	base.BlocksPerThread = 12000
	base.ScaleWork = false
	base.SharedWorkingSet = 8 << 20
	base.SharedFraction = 0.1

	mk := func(mod func(*Params)) Params {
		p := base
		mod(&p)
		return p
	}
	mb := func(m int) uint64 { return uint64(m) * 1024 * 1024 }
	kb := func(k int) uint64 { return uint64(k) * 1024 }

	return map[string]Params{
		// PARSEC
		"blackscholes": mk(func(p *Params) {
			p.WorkingSet = kb(512)
			p.MemFraction = 0.25
			p.FPFraction = 0.6
			p.ILP = 4
			p.SharedFraction = 0.02
			p.SerialFraction = 0.02
			p.BranchRandomFrac = 0.01
		}),
		"swaptions": mk(func(p *Params) {
			p.WorkingSet = kb(256)
			p.MemFraction = 0.28
			p.FPFraction = 0.6
			p.ILP = 4
			p.SharedFraction = 0.01
			p.LockEvery = 400
			p.LockHoldBlocks = 2
			p.NumLocks = 1
			p.SerialFraction = 0.03
		}),
		"canneal": mk(func(p *Params) {
			p.WorkingSet = mb(96)
			p.SharedWorkingSet = mb(256)
			p.SharedFraction = 0.5
			p.MemFraction = 0.4
			p.StridedFraction = 0.1
			p.DependentLoads = true
			p.ILP = 2
			p.BranchRandomFrac = 0.08
			p.SerialFraction = 0.02
		}),
		"fluidanimate": mk(func(p *Params) {
			p.WorkingSet = mb(16)
			p.SharedWorkingSet = mb(32)
			p.SharedFraction = 0.15
			p.MemFraction = 0.35
			p.FPFraction = 0.5
			p.LockEvery = 60
			p.LockHoldBlocks = 2
			p.NumLocks = 64
			p.BarrierEvery = 2000
			p.SerialFraction = 0.03
		}),
		"streamcluster": mk(func(p *Params) {
			p.WorkingSet = mb(32)
			p.SharedWorkingSet = mb(64)
			p.SharedFraction = 0.3
			p.MemFraction = 0.42
			p.StridedFraction = 0.9
			p.FPFraction = 0.5
			p.BarrierEvery = 800
			p.SerialFraction = 0.05
		}),
		"freqmine": mk(func(p *Params) {
			p.WorkingSet = mb(64)
			p.SharedWorkingSet = mb(128)
			p.SharedFraction = 0.2
			p.MemFraction = 0.38
			p.StridedFraction = 0.3
			p.DependentLoads = true
			p.SerialFraction = 0.12
			p.BranchRandomFrac = 0.07
		}),
		// SPLASH-2
		"barnes": mk(func(p *Params) {
			p.WorkingSet = mb(8)
			p.SharedWorkingSet = mb(32)
			p.SharedFraction = 0.35
			p.MemFraction = 0.35
			p.FPFraction = 0.5
			p.DependentLoads = true
			p.StridedFraction = 0.3
			p.LockEvery = 120
			p.LockHoldBlocks = 2
			p.NumLocks = 128
			p.SerialFraction = 0.03
		}),
		"fft": mk(func(p *Params) {
			p.WorkingSet = mb(48)
			p.SharedWorkingSet = mb(64)
			p.SharedFraction = 0.25
			p.MemFraction = 0.4
			p.StridedFraction = 0.6
			p.FPFraction = 0.6
			p.BarrierEvery = 1500
			p.SerialFraction = 0.04
		}),
		"lu": mk(func(p *Params) {
			p.WorkingSet = mb(16)
			p.SharedWorkingSet = mb(32)
			p.SharedFraction = 0.2
			p.MemFraction = 0.38
			p.StridedFraction = 0.85
			p.FPFraction = 0.65
			p.BarrierEvery = 1000
			p.SerialFraction = 0.02
		}),
		"ocean": mk(func(p *Params) {
			p.WorkingSet = mb(220)
			p.SharedWorkingSet = mb(64)
			p.SharedFraction = 0.2
			p.MemFraction = 0.45
			p.StridedFraction = 0.92
			p.FPFraction = 0.6
			p.BarrierEvery = 700
			p.SerialFraction = 0.03
		}),
		"radix": mk(func(p *Params) {
			p.WorkingSet = mb(128)
			p.SharedWorkingSet = mb(128)
			p.SharedFraction = 0.3
			p.MemFraction = 0.45
			p.StridedFraction = 0.75
			p.BarrierEvery = 1200
			p.SerialFraction = 0.02
		}),
		"water": mk(func(p *Params) {
			p.WorkingSet = mb(2)
			p.SharedWorkingSet = mb(8)
			p.SharedFraction = 0.2
			p.MemFraction = 0.3
			p.FPFraction = 0.65
			p.ILP = 4
			p.LockEvery = 200
			p.LockHoldBlocks = 1
			p.NumLocks = 64
			p.BarrierEvery = 2500
			p.SerialFraction = 0.02
		}),
		"fmm": mk(func(p *Params) {
			p.WorkingSet = mb(12)
			p.SharedWorkingSet = mb(32)
			p.SharedFraction = 0.3
			p.MemFraction = 0.33
			p.FPFraction = 0.55
			p.DependentLoads = true
			p.LockEvery = 150
			p.LockHoldBlocks = 2
			p.NumLocks = 64
			p.SerialFraction = 0.04
		}),
		// SPEC OMP2001 (suffix _m as in the paper's figures)
		"wupwise_m": mk(func(p *Params) {
			p.WorkingSet = mb(180)
			p.MemFraction = 0.38
			p.StridedFraction = 0.9
			p.FPFraction = 0.65
			p.BarrierEvery = 1500
			p.SerialFraction = 0.02
		}),
		"swim_m": mk(func(p *Params) {
			p.WorkingSet = mb(480)
			p.MemFraction = 0.5
			p.StridedFraction = 0.97
			p.FPFraction = 0.6
			p.ILP = 4
			p.BarrierEvery = 900
			p.SerialFraction = 0.01
		}),
		"mgrid_m": mk(func(p *Params) {
			p.WorkingSet = mb(450)
			p.MemFraction = 0.46
			p.StridedFraction = 0.95
			p.FPFraction = 0.65
			p.BarrierEvery = 1000
			p.SerialFraction = 0.02
		}),
		"applu_m": mk(func(p *Params) {
			p.WorkingSet = mb(180)
			p.MemFraction = 0.42
			p.StridedFraction = 0.9
			p.FPFraction = 0.65
			p.BarrierEvery = 1200
			p.SerialFraction = 0.03
		}),
		"equake_m": mk(func(p *Params) {
			p.WorkingSet = mb(45)
			p.MemFraction = 0.42
			p.StridedFraction = 0.5
			p.DependentLoads = true
			p.FPFraction = 0.55
			p.BarrierEvery = 1000
			p.SerialFraction = 0.05
		}),
		"apsi_m": mk(func(p *Params) {
			p.WorkingSet = mb(110)
			p.MemFraction = 0.38
			p.StridedFraction = 0.85
			p.FPFraction = 0.6
			p.BarrierEvery = 1500
			p.SerialFraction = 0.06
		}),
		"fma3d_m": mk(func(p *Params) {
			p.WorkingSet = mb(100)
			p.MemFraction = 0.36
			p.StridedFraction = 0.7
			p.FPFraction = 0.6
			p.BarrierEvery = 1200
			p.SerialFraction = 0.05
		}),
		"art_m": mk(func(p *Params) {
			p.WorkingSet = mb(4)
			p.MemFraction = 0.42
			p.StridedFraction = 0.85
			p.FPFraction = 0.5
			p.BarrierEvery = 2000
			p.SerialFraction = 0.02
		}),
		"ammp_m": mk(func(p *Params) {
			p.WorkingSet = mb(26)
			p.MemFraction = 0.38
			p.StridedFraction = 0.3
			p.DependentLoads = true
			p.FPFraction = 0.55
			p.LockEvery = 80
			p.LockHoldBlocks = 3
			p.NumLocks = 16
			p.SerialFraction = 0.08
		}),
		// STREAM: pure bandwidth saturation.
		"stream": mk(func(p *Params) {
			p.WorkingSet = mb(700)
			p.MemFraction = 0.55
			p.StoreFraction = 0.4
			p.StridedFraction = 1.0
			p.FPFraction = 0.5
			p.ILP = 4
			p.SharedFraction = 0
			p.BranchRandomFrac = 0.0
			p.BarrierEvery = 2500
			p.SerialFraction = 0.0
		}),
	}
}

// SPECCPU2006 returns the 29 single-threaded workload names used for the
// Figure 5 validation and Figure 7 performance distribution, in a stable
// order.
func SPECCPU2006() []string {
	names := make([]string, 0, 29)
	for n := range specCPUParams() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Multithreaded returns the 23 multithreaded workload names used in Figure 6
// (PARSEC + SPLASH-2 + SPEC OMP + STREAM), in a stable order.
func Multithreaded() []string {
	names := make([]string, 0, 23)
	for n := range multiThreadedParams() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PARSECNames returns the PARSEC workloads used in the Figure 6 speedup plot.
func PARSECNames() []string {
	return []string{"blackscholes", "canneal", "fluidanimate", "freqmine", "streamcluster", "swaptions"}
}

// Figure2Names returns the ten PARSEC/SPLASH-2 workloads profiled for
// path-altering interference in Figure 2.
func Figure2Names() []string {
	return []string{"barnes", "blackscholes", "canneal", "fft", "fluidanimate", "lu", "ocean", "radix", "swaptions", "water"}
}

// Table4Names returns the thirteen parallel workloads reported in Table 4 and
// reused for Figures 8 and 9.
func Table4Names() []string {
	return []string{"blackscholes", "water", "fluidanimate", "canneal", "wupwise_m", "swim_m", "stream",
		"applu_m", "barnes", "ocean", "fft", "radix", "mgrid_m"}
}

// Lookup returns the parameter set registered under name. The second return
// value reports whether the name is known.
func Lookup(name string) (Params, bool) {
	if p, ok := specCPUParams()[name]; ok {
		return p, true
	}
	if p, ok := multiThreadedParams()[name]; ok {
		return p, true
	}
	return Params{}, false
}

// MustLookup returns the parameter set registered under name and panics with
// a descriptive error for unknown names. It is used by the experiment harness
// where an unknown workload name is a programming error.
func MustLookup(name string) Params {
	p, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("trace: unknown workload %q", name))
	}
	return p
}

// AllNames returns every registered workload name, sorted.
func AllNames() []string {
	names := append(SPECCPU2006(), Multithreaded()...)
	sort.Strings(names)
	return names
}
