// Package campaign implements design-space sweeps over simulator
// configurations: a base config.System plus axis specifications (core counts,
// topologies, link widths, seeds, workload sets — cartesian, or an explicit
// point list) expands deterministically into an ordered sequence of
// simulation points, and an incremental aggregator folds finished points into
// live campaign reports (completion counts, latency percentiles, per-axis
// scaling curves over the simulated metrics).
//
// The package is pure policy: it never runs anything. internal/serve turns
// points into child jobs and feeds outcomes back into the aggregator; the
// paper's "thousand-config" studies ride on top of it via POST /campaigns.
package campaign

import (
	"fmt"
	"strings"

	"zsim/internal/config"
)

// Workload names one synthetic workload of a point (mirrors the serve layer's
// workload spec without importing it).
type Workload struct {
	// Name is a registered workload name.
	Name string `json:"name"`
	// Threads is the number of software threads (defaults to 1 at run time).
	Threads int `json:"threads,omitempty"`
	// Blocks overrides the workload's per-thread basic-block budget when > 0.
	Blocks int `json:"blocks,omitempty"`
}

// WorkloadSet is one value of the workloads axis: a label (used in coords and
// aggregation) and the workloads that replace the base job's workload list.
type WorkloadSet struct {
	// Label names the set in axis coordinates; when empty, the workload names
	// are joined with "+".
	Label string `json:"label,omitempty"`
	// Specs are the workloads of every point taking this axis value.
	Specs []Workload `json:"specs"`
}

func (ws *WorkloadSet) label() string {
	if ws.Label != "" {
		return ws.Label
	}
	names := make([]string, 0, len(ws.Specs))
	for _, w := range ws.Specs {
		names = append(names, w.Name)
	}
	return strings.Join(names, "+")
}

// PointSpec is one entry of an explicit point list. Zero-valued fields
// inherit the campaign base.
type PointSpec struct {
	Cores     int        `json:"cores,omitempty"`
	Topology  string     `json:"topology,omitempty"`
	LinkBytes int        `json:"linkBytes,omitempty"`
	Seed      uint64     `json:"seed,omitempty"`
	Workloads []Workload `json:"workloads,omitempty"`
}

// Axes describes how a campaign expands. Either the cartesian axes (Cores ×
// Topologies × LinkBytes × Seeds × Workloads, in that fixed nesting order,
// empty axes pinned to the base value) or an explicit Points list — never
// both.
type Axes struct {
	// Cores sweeps config.System.NumCores (each value must keep the base's
	// coresPerTile divisibility).
	Cores []int `json:"cores,omitempty"`
	// Topologies sweeps the network kind ("ring", "mesh", "flat").
	Topologies []string `json:"topologies,omitempty"`
	// LinkBytes sweeps the NoC link width (nocLinkBytes).
	LinkBytes []int `json:"linkBytes,omitempty"`
	// Seeds sweeps the run seed — the same-shape axis: every seed point shares
	// one configuration shape, so a seed sweep is the warm-pool ideal customer.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Workloads sweeps the workload set.
	Workloads []WorkloadSet `json:"workloads,omitempty"`
	// Points is the explicit alternative to the cartesian axes.
	Points []PointSpec `json:"points,omitempty"`
}

// cartesian reports whether any cartesian axis is set.
func (a *Axes) cartesian() bool {
	return len(a.Cores) > 0 || len(a.Topologies) > 0 || len(a.LinkBytes) > 0 ||
		len(a.Seeds) > 0 || len(a.Workloads) > 0
}

// Coord locates a point on one axis ("cores" = "64", "linkBytes" = "8", ...).
type Coord struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// Point is one expanded configuration point of a campaign, in campaign order.
type Point struct {
	// Index is the point's position in the deterministic expansion order.
	Index int
	// Config is the point's validated system description.
	Config *config.System
	// Seed is the run seed (0 = inherit the campaign base's).
	Seed uint64
	// Workloads replaces the base workload list when non-nil.
	Workloads []Workload
	// Coords are the point's axis coordinates, one per swept axis, in axis
	// order. Aggregation groups completed points by them.
	Coords []Coord
	// Shape is the config's shape key (config.System.ShapeKey), the warm-pool
	// and result-store grouping key.
	Shape uint64
}

// The axis names, in their fixed nesting order (outermost first).
const (
	AxisCores     = "cores"
	AxisTopology  = "topology"
	AxisLinkBytes = "linkBytes"
	AxisSeed      = "seed"
	AxisWorkloads = "workloads"
	AxisExplicit  = "point" // explicit point lists
)

// Expand expands a validated base configuration and axis spec into the
// campaign's ordered point list. Expansion is deterministic: the same base and
// axes always produce the same points in the same order (nested loops over the
// axes in their fixed order, outermost to innermost; explicit lists in list
// order). Every point's configuration is validated; an invalid point fails the
// whole expansion with an error naming it, so a campaign is accepted or
// rejected atomically. maxPoints bounds the expansion size (<= 0 selects
// DefaultMaxPoints).
func Expand(base *config.System, axes Axes, maxPoints int) ([]Point, error) {
	if base == nil {
		return nil, fmt.Errorf("campaign: nil base config")
	}
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	if len(axes.Points) > 0 {
		if axes.cartesian() {
			return nil, fmt.Errorf("campaign: explicit points and cartesian axes are mutually exclusive")
		}
		return expandExplicit(base, axes.Points, maxPoints)
	}
	return expandCartesian(base, axes, maxPoints)
}

// DefaultMaxPoints bounds a campaign expansion when the caller sets no limit.
const DefaultMaxPoints = 10000

func expandCartesian(base *config.System, axes Axes, maxPoints int) ([]Point, error) {
	// Pin every empty axis to a single sentinel so one nested loop covers all
	// arities; sentinel axes contribute no coordinate.
	cores := axes.Cores
	if len(cores) == 0 {
		cores = []int{0}
	}
	topos := axes.Topologies
	if len(topos) == 0 {
		topos = []string{""}
	}
	links := axes.LinkBytes
	if len(links) == 0 {
		links = []int{0}
	}
	seeds := axes.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	wsets := axes.Workloads
	if len(wsets) == 0 {
		wsets = []WorkloadSet{{}}
	}

	total := len(cores) * len(topos) * len(links) * len(seeds) * len(wsets)
	if total > maxPoints {
		return nil, fmt.Errorf("campaign: expansion has %d points, limit is %d", total, maxPoints)
	}
	points := make([]Point, 0, total)
	for _, nc := range cores {
		for _, topo := range topos {
			for _, lb := range links {
				for _, seed := range seeds {
					for wi := range wsets {
						ws := &wsets[wi]
						spec := PointSpec{Cores: nc, Topology: topo, LinkBytes: lb, Seed: seed, Workloads: ws.Specs}
						var coords []Coord
						if len(axes.Cores) > 0 {
							coords = append(coords, Coord{AxisCores, fmt.Sprintf("%d", nc)})
						}
						if len(axes.Topologies) > 0 {
							coords = append(coords, Coord{AxisTopology, topo})
						}
						if len(axes.LinkBytes) > 0 {
							coords = append(coords, Coord{AxisLinkBytes, fmt.Sprintf("%d", lb)})
						}
						if len(axes.Seeds) > 0 {
							coords = append(coords, Coord{AxisSeed, fmt.Sprintf("%d", seed)})
						}
						if len(axes.Workloads) > 0 {
							coords = append(coords, Coord{AxisWorkloads, ws.label()})
						}
						p, err := makePoint(base, spec, len(points), coords)
						if err != nil {
							return nil, err
						}
						points = append(points, p)
					}
				}
			}
		}
	}
	return points, nil
}

func expandExplicit(base *config.System, specs []PointSpec, maxPoints int) ([]Point, error) {
	if len(specs) > maxPoints {
		return nil, fmt.Errorf("campaign: expansion has %d points, limit is %d", len(specs), maxPoints)
	}
	points := make([]Point, 0, len(specs))
	for i, spec := range specs {
		coords := []Coord{{AxisExplicit, fmt.Sprintf("%d", i)}}
		p, err := makePoint(base, spec, i, coords)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// makePoint applies one point spec to a copy of the base configuration and
// validates the result.
func makePoint(base *config.System, spec PointSpec, index int, coords []Coord) (Point, error) {
	cfg := *base // value copy: config.System holds no reference types
	if spec.Cores > 0 {
		cfg.NumCores = spec.Cores
		// Swept core counts re-derive the weave partitioning the same way
		// Validate would for an unset config, instead of inheriting the base
		// count (which may exceed the smaller chip).
		cfg.WeaveDomains = 0
	}
	if spec.Topology != "" {
		switch kind := config.NetworkKind(spec.Topology); kind {
		case config.NetRing, config.NetMesh, config.NetFlat:
			cfg.Network = kind
		default:
			// config.Validate lets unknown kinds fall through to the flat
			// default; a sweep axis must fail loudly instead.
			return Point{}, fmt.Errorf("campaign: point %d (%s): unknown topology %q", index, coordString(coords), spec.Topology)
		}
	}
	if spec.LinkBytes > 0 {
		cfg.NOCLinkBytes = spec.LinkBytes
	}
	if cfg.Name == "" {
		cfg.Name = "campaign"
	}
	// The point index lands in Name — a run-variable field outside the shape
	// key, so labelling points never fragments the warm pool.
	cfg.Name = fmt.Sprintf("%s/p%d", cfg.Name, index)
	if err := cfg.Validate(); err != nil {
		return Point{}, fmt.Errorf("campaign: point %d (%s): %w", index, coordString(coords), err)
	}
	return Point{
		Index:     index,
		Config:    &cfg,
		Seed:      spec.Seed,
		Workloads: spec.Workloads,
		Coords:    coords,
		Shape:     cfg.ShapeKey(),
	}, nil
}

func coordString(coords []Coord) string {
	if len(coords) == 0 {
		return "base"
	}
	parts := make([]string, 0, len(coords))
	for _, c := range coords {
		parts = append(parts, c.Axis+"="+c.Value)
	}
	return strings.Join(parts, " ")
}
