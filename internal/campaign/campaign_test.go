package campaign

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"zsim/internal/config"
)

func base(t *testing.T) *config.System {
	t.Helper()
	return config.SmallTest()
}

// TestExpandCartesianOrder pins the deterministic nesting order:
// cores (outermost) → topologies → linkBytes → seeds → workloads (innermost).
func TestExpandCartesianOrder(t *testing.T) {
	axes := Axes{
		Cores: []int{2, 4},
		Seeds: []uint64{7, 9},
		Workloads: []WorkloadSet{
			{Specs: []Workload{{Name: "blackscholes", Threads: 1}}},
			{Label: "mix", Specs: []Workload{{Name: "fluidanimate", Threads: 2}}},
		},
	}
	points, err := Expand(base(t), axes, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(points) != 8 {
		t.Fatalf("got %d points, want 8", len(points))
	}
	var got []string
	for _, p := range points {
		got = append(got, coordString(p.Coords))
	}
	want := []string{
		"cores=2 seed=7 workloads=blackscholes",
		"cores=2 seed=7 workloads=mix",
		"cores=2 seed=9 workloads=blackscholes",
		"cores=2 seed=9 workloads=mix",
		"cores=4 seed=7 workloads=blackscholes",
		"cores=4 seed=7 workloads=mix",
		"cores=4 seed=9 workloads=blackscholes",
		"cores=4 seed=9 workloads=mix",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order:\n got %v\nwant %v", got, want)
	}
	for i, p := range points {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
	}
	// Axis values are applied to the configs.
	if points[0].Config.NumCores != 2 || points[4].Config.NumCores != 4 {
		t.Fatalf("cores axis not applied: %d / %d", points[0].Config.NumCores, points[4].Config.NumCores)
	}
	if points[0].Seed != 7 || points[2].Seed != 9 {
		t.Fatalf("seed axis not applied")
	}
	if points[1].Workloads[0].Name != "fluidanimate" {
		t.Fatalf("workload axis not applied")
	}
}

// TestExpandDeterministic: the same base and axes expand identically, shapes
// included.
func TestExpandDeterministic(t *testing.T) {
	axes := Axes{Cores: []int{2, 4}, Topologies: []string{"ring", "mesh"}, LinkBytes: []int{8, 16}}
	a, err := Expand(base(t), axes, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	b, err := Expand(base(t), axes, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("want 8 points, got %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Shape != b[i].Shape {
			t.Fatalf("point %d shape differs across expansions", i)
		}
		if !reflect.DeepEqual(a[i].Coords, b[i].Coords) {
			t.Fatalf("point %d coords differ", i)
		}
		if *a[i].Config != *b[i].Config {
			t.Fatalf("point %d config differs", i)
		}
	}
}

// TestExpandSeedSweepSharesShape: a pure seed sweep is one shape — the
// warm-pool ideal — while a core sweep fragments into one shape per value.
func TestExpandSeedSweepSharesShape(t *testing.T) {
	seeds := make([]uint64, 50)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	points, err := Expand(base(t), Axes{Seeds: seeds}, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	shapes := map[uint64]bool{}
	for _, p := range points {
		shapes[p.Shape] = true
	}
	if len(shapes) != 1 {
		t.Fatalf("seed sweep produced %d shapes, want 1", len(shapes))
	}

	points, err = Expand(base(t), Axes{Cores: []int{1, 2, 4}}, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	shapes = map[uint64]bool{}
	for _, p := range points {
		shapes[p.Shape] = true
	}
	if len(shapes) != 3 {
		t.Fatalf("3-value core sweep produced %d shapes, want 3", len(shapes))
	}
}

func TestExpandExplicitPoints(t *testing.T) {
	axes := Axes{Points: []PointSpec{
		{Cores: 2, Seed: 3},
		{Topology: "mesh", LinkBytes: 32},
	}}
	points, err := Expand(base(t), axes, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	if points[0].Config.NumCores != 2 || points[0].Seed != 3 {
		t.Fatalf("point 0 spec not applied: %+v", points[0])
	}
	if points[1].Config.Network != config.NetMesh || points[1].Config.NOCLinkBytes != 32 {
		t.Fatalf("point 1 spec not applied: %+v", points[1].Config)
	}
	if points[0].Coords[0].Axis != AxisExplicit {
		t.Fatalf("explicit points want %q coords, got %q", AxisExplicit, points[0].Coords[0].Axis)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		axes Axes
		max  int
		want string
	}{
		{"mixed modes", Axes{Cores: []int{2}, Points: []PointSpec{{Cores: 2}}}, 0, "mutually exclusive"},
		{"too many points", Axes{Seeds: []uint64{1, 2, 3, 4}}, 3, "limit is 3"},
		{"invalid point", Axes{Topologies: []string{"torus"}}, 0, "point 0 (topology=torus)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Expand(base(t), tc.axes, tc.max)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	if _, err := Expand(nil, Axes{}, 0); err == nil {
		t.Fatalf("nil base must error")
	}
}

// TestExpandPointNameIsRunVariable: point labels land in Name, which is
// outside the shape key, so labelling never fragments the warm pool.
func TestExpandPointNameIsRunVariable(t *testing.T) {
	points, err := Expand(base(t), Axes{Seeds: []uint64{1, 2}}, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if points[0].Config.Name == points[1].Config.Name {
		t.Fatalf("point names must be distinct")
	}
	if points[0].Shape != base(t).ShapeKey() {
		t.Fatalf("renamed point shape diverged from base shape")
	}
}

func TestAggregateCurvesAndLatency(t *testing.T) {
	points, err := Expand(base(t), Axes{Cores: []int{2, 4}, Seeds: []uint64{1, 2}}, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	agg := NewAgg()
	// cores=2 points: 1000 cycles; cores=4 points: 500 cycles (ideal 2×).
	for i := range points {
		p := &points[i]
		cycles := uint64(1000)
		if p.Config.NumCores == 4 {
			cycles = 500
		}
		agg.Add(p, PointResult{
			Outcome:      OutcomeSucceeded,
			Seconds:      0.1 * float64(i+1),
			Cycles:       cycles,
			Instructions: 2000,
			SimMIPS:      10,
		})
	}
	// One failed straggler only counts in outcomes and latency.
	agg.Add(&points[0], PointResult{Outcome: OutcomeFailed, Seconds: 9})

	s := agg.Snapshot(ValueOrder(points))
	if s.Outcomes[OutcomeSucceeded] != 4 || s.Outcomes[OutcomeFailed] != 1 {
		t.Fatalf("outcomes: %v", s.Outcomes)
	}
	if s.Latency == nil || s.Latency.Count != 5 {
		t.Fatalf("latency: %+v", s.Latency)
	}
	if s.Latency.Max != 9 {
		t.Fatalf("latency max = %v, want 9", s.Latency.Max)
	}
	if s.Latency.P50 <= 0 || s.Latency.P50 > s.Latency.P99 || s.Latency.P99 > s.Latency.Max {
		t.Fatalf("percentiles out of order: %+v", s.Latency)
	}

	var coresCurve *Curve
	for i := range s.Curves {
		if s.Curves[i].Axis == AxisCores {
			coresCurve = &s.Curves[i]
		}
	}
	if coresCurve == nil {
		t.Fatalf("no cores curve in %+v", s.Curves)
	}
	if len(coresCurve.Points) != 2 || coresCurve.Points[0].Value != "2" || coresCurve.Points[1].Value != "4" {
		t.Fatalf("cores curve order: %+v", coresCurve.Points)
	}
	p2, p4 := coresCurve.Points[0], coresCurve.Points[1]
	if p2.MeanCycles != 1000 || p4.MeanCycles != 500 {
		t.Fatalf("mean cycles: %v / %v", p2.MeanCycles, p4.MeanCycles)
	}
	if p2.Speedup != 1.0 || p4.Speedup != 2.0 {
		t.Fatalf("speedup: %v / %v (want 1, 2)", p2.Speedup, p4.Speedup)
	}
	if p2.MeanIPC != 2.0 { // 2000 instrs / 1000 cycles
		t.Fatalf("IPC: %v", p2.MeanIPC)
	}
	if p2.Done != 2 || p4.Done != 2 {
		t.Fatalf("done counts: %d / %d", p2.Done, p4.Done)
	}
}

// TestAggregateIncremental: snapshots taken mid-campaign only cover what
// finished, and later snapshots extend them monotonically.
func TestAggregateIncremental(t *testing.T) {
	points, err := Expand(base(t), Axes{Seeds: []uint64{1, 2, 3}}, 0)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	agg := NewAgg()
	order := ValueOrder(points)
	for i := range points {
		agg.Add(&points[i], PointResult{Outcome: OutcomeSucceeded, Seconds: 1, Cycles: 100, Instructions: 100})
		s := agg.Snapshot(order)
		if s.Latency.Count != i+1 {
			t.Fatalf("after %d adds latency count = %d", i+1, s.Latency.Count)
		}
		if got := s.Outcomes[OutcomeSucceeded]; got != i+1 {
			t.Fatalf("after %d adds outcomes = %d", i+1, got)
		}
	}
}

func TestWorkloadSetLabel(t *testing.T) {
	ws := WorkloadSet{Specs: []Workload{{Name: "a"}, {Name: "b"}}}
	if got := ws.label(); got != "a+b" {
		t.Fatalf("label = %q", got)
	}
	ws.Label = "named"
	if got := ws.label(); got != "named" {
		t.Fatalf("label = %q", got)
	}
}

// TestExpandScale sanity-checks a paper-scale expansion (1000 points) stays
// cheap and deterministic end to end.
func TestExpandScale(t *testing.T) {
	seeds := make([]uint64, 250)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	axes := Axes{Cores: []int{1, 2}, Topologies: []string{"ring", "flat"}, Seeds: seeds}
	points, err := Expand(base(t), axes, 1000)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(points) != 1000 {
		t.Fatalf("got %d points", len(points))
	}
	// Coordinates must uniquely identify every point.
	seen := map[string]bool{}
	for _, p := range points {
		k := coordString(p.Coords)
		if seen[k] {
			t.Fatalf("duplicate coords %s", k)
		}
		seen[k] = true
	}
	if _, err := Expand(base(t), axes, 999); err == nil {
		t.Fatalf("1000 points must exceed a 999 limit")
	}
}

func ExampleExpand() {
	points, _ := Expand(config.SmallTest(), Axes{Cores: []int{2, 4}}, 0)
	for _, p := range points {
		fmt.Printf("%d: cores=%d shape=%016x\n", p.Index, p.Config.NumCores, p.Shape)
	}
}
