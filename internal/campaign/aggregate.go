package campaign

import (
	"sort"

	"zsim/internal/telemetry"
)

// Outcome classifies a finished point for aggregation. Values mirror the
// serve layer's terminal job states.
const (
	OutcomeSucceeded = "succeeded"
	OutcomeFailed    = "failed"
	OutcomeCancelled = "cancelled"
)

// PointResult is the slice of a child job's result that aggregation consumes.
type PointResult struct {
	// Outcome is one of the Outcome* values.
	Outcome string
	// Seconds is the job's wall-clock service latency.
	Seconds float64
	// Simulated metrics; folded into curves only for succeeded points.
	Cycles       uint64
	Instructions uint64
	SimMIPS      float64
}

// Agg incrementally folds finished points into per-axis aggregates. It is not
// goroutine-safe; the owner (the serve layer's campaign state) locks around
// Add and Snapshot.
type Agg struct {
	outcomes map[string]int
	latency  []float64 // seconds per terminal point, in completion order
	// cells groups succeeded points by axis coordinate. Axis iteration order
	// is recorded in axisOrder (first-seen, which matches the fixed axis
	// nesting order because every point carries the same axis list).
	cells     map[Coord]*cell
	axisOrder []string
}

type cell struct {
	n       int
	cycles  float64
	instrs  float64
	simMIPS float64
	seconds float64
}

// NewAgg returns an empty aggregator.
func NewAgg() *Agg {
	return &Agg{
		outcomes: make(map[string]int),
		cells:    make(map[Coord]*cell),
	}
}

// Add folds one finished point into the aggregates.
func (a *Agg) Add(p *Point, r PointResult) {
	a.outcomes[r.Outcome]++
	a.latency = append(a.latency, r.Seconds)
	if r.Outcome != OutcomeSucceeded {
		return
	}
	for _, coord := range p.Coords {
		c := a.cells[coord]
		if c == nil {
			c = &cell{}
			a.cells[coord] = c
			if !contains(a.axisOrder, coord.Axis) {
				a.axisOrder = append(a.axisOrder, coord.Axis)
			}
		}
		c.n++
		c.cycles += float64(r.Cycles)
		c.instrs += float64(r.Instructions)
		c.simMIPS += r.SimMIPS
		c.seconds += r.Seconds
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Latency summarizes terminal-point service latency in seconds.
type Latency struct {
	Count int     `json:"count"`
	Mean  float64 `json:"meanSeconds"`
	P50   float64 `json:"p50Seconds"`
	P90   float64 `json:"p90Seconds"`
	P99   float64 `json:"p99Seconds"`
	Max   float64 `json:"maxSeconds"`
}

// AxisPoint is one value of one axis in a scaling curve, averaging the
// simulated metrics of every succeeded point at that coordinate.
type AxisPoint struct {
	Value       string  `json:"value"`
	Done        int     `json:"done"`
	MeanCycles  float64 `json:"meanCycles"`
	MeanInstrs  float64 `json:"meanInstrs"`
	MeanIPC     float64 `json:"meanIPC"`
	MeanSimMIPS float64 `json:"meanSimMIPS"`
	// Speedup is the axis's first value's mean cycles divided by this value's
	// (simulated-time speedup relative to the curve's first point; 1.0 there).
	Speedup float64 `json:"speedup,omitempty"`
}

// Curve is the per-axis scaling view over succeeded points.
type Curve struct {
	Axis   string      `json:"axis"`
	Points []AxisPoint `json:"points"`
}

// Summary is a point-in-time aggregate view of a campaign.
type Summary struct {
	Outcomes map[string]int `json:"outcomes,omitempty"`
	Latency  *Latency       `json:"latency,omitempty"`
	Curves   []Curve        `json:"curves,omitempty"`
}

// Snapshot computes the current summary. valueOrder lists each axis's values
// in campaign axis order (from the expansion), keeping curve points in sweep
// order rather than map order; axes absent from valueOrder fall back to
// lexicographic value order.
func (a *Agg) Snapshot(valueOrder map[string][]string) Summary {
	s := Summary{}
	if len(a.outcomes) > 0 {
		s.Outcomes = make(map[string]int, len(a.outcomes))
		for k, v := range a.outcomes {
			s.Outcomes[k] = v
		}
	}
	if n := len(a.latency); n > 0 {
		sorted := make([]float64, n)
		copy(sorted, a.latency)
		sort.Float64s(sorted)
		sum := 0.0
		for _, v := range sorted {
			sum += v
		}
		s.Latency = &Latency{
			Count: n,
			Mean:  sum / float64(n),
			P50:   telemetry.QuantileSorted(sorted, 0.50),
			P90:   telemetry.QuantileSorted(sorted, 0.90),
			P99:   telemetry.QuantileSorted(sorted, 0.99),
			Max:   sorted[n-1],
		}
	}
	for _, axis := range a.axisOrder {
		values := valueOrder[axis]
		if values == nil {
			for coord := range a.cells {
				if coord.Axis == axis {
					values = append(values, coord.Value)
				}
			}
			sort.Strings(values)
		}
		curve := Curve{Axis: axis}
		var base float64 // first value's mean cycles, for speedup
		for _, v := range values {
			c := a.cells[Coord{axis, v}]
			if c == nil || c.n == 0 {
				continue
			}
			ap := AxisPoint{
				Value:       v,
				Done:        c.n,
				MeanCycles:  c.cycles / float64(c.n),
				MeanInstrs:  c.instrs / float64(c.n),
				MeanSimMIPS: c.simMIPS / float64(c.n),
			}
			if ap.MeanCycles > 0 {
				ap.MeanIPC = ap.MeanInstrs / ap.MeanCycles
			}
			if base == 0 {
				base = ap.MeanCycles
			}
			if ap.MeanCycles > 0 {
				ap.Speedup = base / ap.MeanCycles
			}
			curve.Points = append(curve.Points, ap)
		}
		if len(curve.Points) > 0 {
			s.Curves = append(s.Curves, curve)
		}
	}
	return s
}

// ValueOrder derives the per-axis value order from an expanded point list, for
// Snapshot.
func ValueOrder(points []Point) map[string][]string {
	order := make(map[string][]string)
	seen := make(map[Coord]bool)
	for i := range points {
		for _, c := range points[i].Coords {
			if !seen[c] {
				seen[c] = true
				order[c.Axis] = append(order[c.Axis], c.Value)
			}
		}
	}
	return order
}
