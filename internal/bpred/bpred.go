// Package bpred implements the branch predictors used by the core timing
// models. The OOO core model uses a two-level (GShare-style) predictor with a
// global history register and a table of 2-bit saturating counters, which is
// the organization the paper models for its Westmere-class core ("a modeled
// 2-level branch predictor with an idealized BTB"). Simpler predictors
// (always-taken, bimodal) are provided as baselines and for ablation studies.
//
// Predictors are purely behavioural: they receive the branch PC and the
// actual outcome (supplied by the workload trace) and report whether the
// prediction would have been correct. The timing models translate a
// misprediction into a fixed pipeline-flush penalty, as Westmere recovers
// from mispredictions in a roughly constant number of cycles.
package bpred

import "zsim/internal/arena"

// Predictor is a branch direction predictor. Predict returns the predicted
// direction for the branch at pc; Update trains the predictor with the actual
// outcome. Implementations are not safe for concurrent use: each simulated
// core owns its own predictor.
type Predictor interface {
	// Predict returns the predicted direction (true = taken) for the branch
	// at the given program counter.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved outcome of the branch at
	// pc.
	Update(pc uint64, taken bool)
	// Reset restores the predictor to its just-constructed state (tables
	// cleared, history zeroed) for warm-simulator reuse.
	Reset()
	// Name returns a short identifier for stats and configs.
	Name() string
}

// PredictAndUpdate is the common pattern used by the core models: predict,
// train, and report whether the prediction was correct.
func PredictAndUpdate(p Predictor, pc uint64, taken bool) bool {
	pred := p.Predict(pc)
	p.Update(pc, taken)
	return pred == taken
}

// AlwaysTaken is the trivial static predictor.
type AlwaysTaken struct{}

// NewAlwaysTaken returns a predictor that always predicts taken.
func NewAlwaysTaken() *AlwaysTaken { return &AlwaysTaken{} }

// Predict always returns true.
func (*AlwaysTaken) Predict(uint64) bool { return true }

// Update is a no-op.
func (*AlwaysTaken) Update(uint64, bool) {}

// Reset is a no-op (the predictor is stateless).
func (*AlwaysTaken) Reset() {}

// Name returns "always-taken".
func (*AlwaysTaken) Name() string { return "always-taken" }

// counter2 is a 2-bit saturating counter stored in a biased encoding
// (stored = actual ^ 2), chosen so the zero value decodes to "weakly taken"
// — the usual initialization. Tables therefore need no init loop: a zeroed
// allocation is already correctly initialized, which makes building
// thousand-core chips (two predictors per core) measurably cheaper.
type counter2 uint8

func (c counter2) actual() uint8 { return uint8(c) ^ 2 }

func (c counter2) taken() bool { return c.actual() >= 2 }

func (c counter2) update(taken bool) counter2 {
	a := c.actual()
	if taken {
		if a < 3 {
			a++
		}
	} else if a > 0 {
		a--
	}
	return counter2(a ^ 2)
}

// Bimodal is a PC-indexed table of 2-bit saturating counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal creates a bimodal predictor with the given table size (rounded
// up to a power of two, minimum 16 entries).
func NewBimodal(entries int) *Bimodal { return NewBimodalIn(nil, entries) }

// NewBimodalIn is NewBimodal with the table and predictor carved from the
// given construction arena (nil falls back to the heap).
func NewBimodalIn(a *arena.Arena, entries int) *Bimodal {
	n := 16
	for n < entries {
		n <<= 1
	}
	// The biased counter2 encoding makes the zero value "weakly taken", so
	// the freshly allocated (always-zeroed) table needs no initialization
	// pass, whether it comes from the heap or from an arena chunk.
	b := arena.One[Bimodal](a)
	b.table = arena.Take[counter2](a, n)
	b.mask = uint64(n - 1)
	return b
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict returns the table's current prediction for pc.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update trains the counter for pc.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Reset clears the counter table (the biased encoding's zero value is the
// fresh "weakly taken" state).
func (b *Bimodal) Reset() { clear(b.table) }

// Name returns "bimodal".
func (b *Bimodal) Name() string { return "bimodal" }

// TwoLevel is a GShare-style two-level predictor: a global history register
// XORed with the branch PC indexes a table of 2-bit counters. This is the
// predictor the OOO core model uses by default (the paper models a 2-level
// predictor; the exact Westmere organization is undisclosed).
type TwoLevel struct {
	table    []counter2
	mask     uint64
	history  uint64
	histBits uint
}

// NewTwoLevel creates a GShare predictor with the given table size (rounded
// up to a power of two, minimum 64) and history length in bits.
func NewTwoLevel(entries int, histBits uint) *TwoLevel {
	return NewTwoLevelIn(nil, entries, histBits)
}

// NewTwoLevelIn is NewTwoLevel with the table and predictor carved from the
// given construction arena (nil falls back to the heap).
func NewTwoLevelIn(a *arena.Arena, entries int, histBits uint) *TwoLevel {
	n := 64
	for n < entries {
		n <<= 1
	}
	if histBits == 0 {
		histBits = 12
	}
	if histBits > 32 {
		histBits = 32
	}
	g := arena.One[TwoLevel](a)
	g.table = arena.Take[counter2](a, n)
	g.mask = uint64(n - 1)
	g.histBits = histBits
	return g
}

// NewDefault returns the predictor configuration used by the validated OOO
// core model: a 16K-entry GShare with 12 bits of global history.
func NewDefault() *TwoLevel { return NewTwoLevel(16384, 12) }

// NewDefaultIn is NewDefault allocating from the given construction arena.
func NewDefaultIn(a *arena.Arena) *TwoLevel { return NewTwoLevelIn(a, 16384, 12) }

func (g *TwoLevel) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict returns the current prediction for pc under the current global
// history.
func (g *TwoLevel) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update trains the indexed counter and shifts the outcome into the global
// history register.
func (g *TwoLevel) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histBits) - 1
}

// Reset clears the counter table and the global history register, restoring
// the just-constructed state (zeroed biased counters decode to weakly taken).
func (g *TwoLevel) Reset() {
	clear(g.table)
	g.history = 0
}

// Name returns "two-level".
func (g *TwoLevel) Name() string { return "two-level" }

// Stats wraps a predictor and counts predictions and mispredictions, which
// the harness converts into branch MPKI for the Figure 5 scatter plot.
type Stats struct {
	P           Predictor
	Predictions uint64
	Mispredicts uint64
}

// NewStats wraps p with statistics counting.
func NewStats(p Predictor) *Stats { return &Stats{P: p} }

// NewStatsIn is NewStats allocating the wrapper from the given arena.
func NewStatsIn(a *arena.Arena, p Predictor) *Stats {
	s := arena.One[Stats](a)
	s.P = p
	return s
}

// PredictAndUpdate predicts, trains, counts, and reports correctness.
func (s *Stats) PredictAndUpdate(pc uint64, taken bool) bool {
	s.Predictions++
	correct := PredictAndUpdate(s.P, pc, taken)
	if !correct {
		s.Mispredicts++
	}
	return correct
}

// Reset zeroes the counts and resets the wrapped predictor.
func (s *Stats) Reset() {
	s.Predictions, s.Mispredicts = 0, 0
	s.P.Reset()
}

// MispredictRate returns mispredictions / predictions (0 if no predictions).
func (s *Stats) MispredictRate() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Predictions)
}
