package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAlwaysTaken(t *testing.T) {
	p := NewAlwaysTaken()
	if !p.Predict(0x400) {
		t.Fatalf("always-taken must predict taken")
	}
	p.Update(0x400, false) // must not panic or change behaviour
	if !p.Predict(0x400) {
		t.Fatalf("always-taken must still predict taken")
	}
	if p.Name() != "always-taken" {
		t.Fatalf("name: %s", p.Name())
	}
}

func TestCounter2Saturation(t *testing.T) {
	// The zero value decodes to weakly taken (the usual initialization).
	c := counter2(0)
	if c.actual() != 2 || !c.taken() {
		t.Fatalf("zero value should decode to weakly taken, got %d", c.actual())
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c.actual() != 0 || c.taken() {
		t.Fatalf("counter should saturate at strongly not-taken, got %d", c.actual())
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c.actual() != 3 || !c.taken() {
		t.Fatalf("counter should saturate at strongly taken, got %d", c.actual())
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p := NewBimodal(1024)
	pc := uint64(0x1234)
	// Train strongly not-taken.
	for i := 0; i < 8; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Fatalf("bimodal should learn a not-taken bias")
	}
	// Retrain taken.
	for i := 0; i < 8; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatalf("bimodal should relearn a taken bias")
	}
	if p.Name() != "bimodal" {
		t.Fatalf("name: %s", p.Name())
	}
}

func TestBimodalSizeRounding(t *testing.T) {
	p := NewBimodal(1000)
	if len(p.table) != 1024 {
		t.Fatalf("table should round up to 1024, got %d", len(p.table))
	}
	p = NewBimodal(0)
	if len(p.table) != 16 {
		t.Fatalf("minimum table size should be 16, got %d", len(p.table))
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	// A branch alternating T,N,T,N is mispredicted ~50% by a bimodal
	// predictor but learned almost perfectly by a history-based one.
	pc := uint64(0x4000)
	g := NewStats(NewDefault())
	b := NewStats(NewBimodal(16384))
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		g.PredictAndUpdate(pc, taken)
		b.PredictAndUpdate(pc, taken)
	}
	if g.MispredictRate() > 0.05 {
		t.Fatalf("two-level should learn an alternating pattern, rate=%f", g.MispredictRate())
	}
	if b.MispredictRate() < 0.3 {
		t.Fatalf("bimodal should struggle with an alternating pattern, rate=%f", b.MispredictRate())
	}
}

func TestTwoLevelBiasedBranches(t *testing.T) {
	// 95%-taken branches should be predicted well.
	g := NewStats(NewDefault())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		pc := uint64(0x1000 + (i%16)*4)
		taken := rng.Float64() < 0.95
		g.PredictAndUpdate(pc, taken)
	}
	if g.MispredictRate() > 0.15 {
		t.Fatalf("biased branches should have low mispredict rate, got %f", g.MispredictRate())
	}
}

func TestTwoLevelConfigBounds(t *testing.T) {
	p := NewTwoLevel(0, 0)
	if len(p.table) != 64 {
		t.Fatalf("minimum table is 64 entries, got %d", len(p.table))
	}
	if p.histBits != 12 {
		t.Fatalf("default history is 12 bits, got %d", p.histBits)
	}
	p = NewTwoLevel(100, 64)
	if p.histBits != 32 {
		t.Fatalf("history should clamp to 32 bits, got %d", p.histBits)
	}
	if p.Name() != "two-level" {
		t.Fatalf("name: %s", p.Name())
	}
}

func TestStatsCounts(t *testing.T) {
	s := NewStats(NewAlwaysTaken())
	s.PredictAndUpdate(0x10, true)  // correct
	s.PredictAndUpdate(0x10, false) // wrong
	s.PredictAndUpdate(0x10, false) // wrong
	if s.Predictions != 3 || s.Mispredicts != 2 {
		t.Fatalf("counts: %d/%d", s.Mispredicts, s.Predictions)
	}
	if got := s.MispredictRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("rate: %f", got)
	}
	empty := NewStats(NewAlwaysTaken())
	if empty.MispredictRate() != 0 {
		t.Fatalf("empty stats should have rate 0")
	}
}

// Property: the history register never exceeds histBits bits, and predictions
// are always a deterministic function of (table, history, pc).
func TestTwoLevelHistoryBounded(t *testing.T) {
	f := func(pcs []uint32, outcomes []bool) bool {
		g := NewTwoLevel(256, 8)
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			g.Update(uint64(pcs[i]), outcomes[i])
			if g.history >= 1<<g.histBits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for a perfectly biased branch stream (always taken), any of the
// dynamic predictors converges to at most a handful of mispredictions.
func TestAlwaysTakenStreamConverges(t *testing.T) {
	predictors := []Predictor{NewBimodal(256), NewDefault()}
	for _, p := range predictors {
		s := NewStats(p)
		for i := 0; i < 1000; i++ {
			s.PredictAndUpdate(0xabcd, true)
		}
		if s.Mispredicts > 5 {
			t.Fatalf("%s: too many mispredictions on a constant stream: %d", p.Name(), s.Mispredicts)
		}
	}
}
