package noc

import (
	"testing"

	"zsim/internal/network"
	"zsim/internal/stats"
)

func testFabric(queueDepth int) *Fabric {
	topo := network.NewMesh(2, 2, 1, 2, 1) // perHop = 3
	return NewFabric(topo, Config{
		PacketFlits:   5,
		CyclesPerFlit: 1,
		QueueDepth:    queueDepth,
		MemHopLatency: 1,
	}, stats.NewRegistry("noc"))
}

// TestZeroLoadPassThrough: an uncontended traversal finishes exactly at
// dispatch + the zero-load per-hop latency — the property that makes
// enabling the subsystem a no-op until ports back up.
func TestZeroLoadPassThrough(t *testing.T) {
	f := testFabric(8)
	r := f.Router(0)
	if got := r.Schedule(network.MeshPortEast, 100); got != 103 {
		t.Fatalf("zero-load hop should finish at 103 (dispatch+perHop), got %d", got)
	}
	// A different port is an independent resource.
	if got := r.Schedule(network.MeshPortSouth, 100); got != 103 {
		t.Fatalf("other port should be idle, got %d", got)
	}
	// The memory-egress port uses the memory-link latency.
	if got := r.Schedule(f.MemPort(), 200); got != 201 {
		t.Fatalf("mem-egress hop should finish at 201 (dispatch+memHop), got %d", got)
	}
	if r.PortConflicts.Get() != 0 || r.QueueDelay.Get() != 0 {
		t.Fatalf("zero-load traversals must not record contention")
	}
}

// TestPortOccupancy: a packet's flit train occupies the port for
// packetFlits cycles; a second packet arriving inside that window is pushed
// back and the delay is accounted.
func TestPortOccupancy(t *testing.T) {
	f := testFabric(8)
	r := f.Router(1)
	if got := r.Schedule(network.MeshPortWest, 100); got != 103 {
		t.Fatalf("first packet: got %d", got)
	}
	// Port is busy until 105 (start 100 + 5 flit cycles).
	if got := r.Schedule(network.MeshPortWest, 102); got != 108 {
		t.Fatalf("second packet should start at 105 and finish at 108, got %d", got)
	}
	if r.PortConflicts.Get() != 1 {
		t.Fatalf("one port conflict expected, got %d", r.PortConflicts.Get())
	}
	if r.QueueDelay.Get() != 3 {
		t.Fatalf("queue delay should be 3 cycles (105-102), got %d", r.QueueDelay.Get())
	}
}

// TestBoundedQueueStall: with a queue depth of 2, a third packet arriving
// while two flit trains are still in flight blocks the upstream link until
// the oldest train drains; the blocking time is charged to the port as
// backpressure occupancy, so the port loses bandwidth and the *following*
// packet starts later than pure serialization would allow.
func TestBoundedQueueStall(t *testing.T) {
	f := testFabric(2)
	r := f.Router(2)
	r.Schedule(network.MeshPortEast, 100) // starts 100, train drains at 105
	r.Schedule(network.MeshPortEast, 100) // queued; starts 105, drains at 110
	if r.QueueStalls.Get() != 0 {
		t.Fatalf("a non-full queue must not stall, got %d stalls", r.QueueStalls.Get())
	}
	got := r.Schedule(network.MeshPortEast, 101) // queue full until 105: blocks 4 cycles
	if got != 113 {
		t.Fatalf("third packet should serialize to start 110 and finish at 113; got %d", got)
	}
	if r.QueueStalls.Get() != 1 {
		t.Fatalf("full-queue arrival should count one stall, got %d", r.QueueStalls.Get())
	}
	if r.QueueDelay.Get() == 0 {
		t.Fatalf("stalled packets must account queue delay")
	}
	// Backpressure: the port is now occupied until 110+5+4 = 119 (flit
	// train plus the 4 cycles the stalled packet blocked the upstream
	// link), not 115 — the next packet pays for the full queue.
	if got := r.Schedule(network.MeshPortEast, 112); got != 122 {
		t.Fatalf("post-stall packet should start at 119 (backpressured port) and finish at 122; got %d", got)
	}
}

// TestUnboundedQueueNoBackpressure: queue depth 0 disables admission
// bookkeeping entirely — packets only serialize.
func TestUnboundedQueueNoBackpressure(t *testing.T) {
	f := testFabric(0)
	r := f.Router(2)
	r.Schedule(network.MeshPortEast, 100)
	r.Schedule(network.MeshPortEast, 100)
	r.Schedule(network.MeshPortEast, 101)
	if got := r.Schedule(network.MeshPortEast, 112); got != 118 {
		t.Fatalf("unbounded queue should purely serialize (start 115, finish 118); got %d", got)
	}
	if r.QueueStalls.Get() != 0 {
		t.Fatalf("unbounded queue must never stall")
	}
}

// TestReset clears port clocks and queues but keeps statistics.
func TestReset(t *testing.T) {
	f := testFabric(1)
	r := f.Router(3)
	r.Schedule(network.MeshPortEast, 100) // in flight until 105
	r.Reset()
	if got := r.Schedule(network.MeshPortEast, 101); got != 104 {
		t.Fatalf("after Reset the port should be idle, got %d", got)
	}
	if r.Traversals.Get() != 2 {
		t.Fatalf("Reset must keep statistics, got %d traversals", r.Traversals.Get())
	}
}

// TestFabricShape checks construction: one router per node, each with the
// topology's ports plus a memory-egress port.
func TestFabricShape(t *testing.T) {
	f := testFabric(8)
	if f.NumRouters() != 4 {
		t.Fatalf("2x2 mesh should have 4 routers, got %d", f.NumRouters())
	}
	if f.MemPort() != 4 {
		t.Fatalf("mesh mem port should be index 4, got %d", f.MemPort())
	}
	if f.Router(-1) == nil || f.Router(7) == nil {
		t.Fatalf("Router must normalize out-of-range nodes")
	}
	s := f.TotalStats()
	if s.Traversals != 0 {
		t.Fatalf("fresh fabric should have zero traversals")
	}
}

// TestScheduleDeterminism: the same dispatch sequence produces the same
// finish cycles (routers are pure functions of their event stream).
func TestScheduleDeterminism(t *testing.T) {
	run := func() []uint64 {
		f := testFabric(4)
		r := f.Router(0)
		var out []uint64
		for i := 0; i < 50; i++ {
			out = append(out, r.Schedule(i%5, uint64(100+i*2)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
