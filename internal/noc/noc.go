// Package noc is the weave-phase network-on-chip contention subsystem. The
// paper's contention modeling (Section 3.2.2) covers pipelined cache banks
// with MSHRs and DDR3 controllers but leaves the NoC uncontended, arguing
// zero-load latencies capture most of the impact for well-provisioned
// networks (Section 4.3). This package models the networks that assumption
// does not cover: routers and links become weave components, exactly the way
// cache banks model MSHR and port occupancy.
//
// Each router output port is a pipelined resource with a service interval —
// a packet's flit train occupies the port (and so the link it drives) for
// packetFlits x cycles/flit — and an optionally bounded queue of in-flight
// packets. The bound phase records each traversal's (srcNode, dstNode) as a
// network hop (cache.HopNet / cache.HopNetMem); package boundweave expands
// the hop along the topology's deterministic route into one weave event per
// router, each dispatched on that router's port model. Under zero load every
// event finishes exactly at its bound-phase cycle, so enabling the subsystem
// changes nothing until ports actually back up; the response path inherits
// the request path's accumulated queueing through the event chain.
//
// Routers are ordinary weave components: each belongs to exactly one domain
// and its state is only touched by that domain's (deterministically ordered)
// event stream, so no locking is needed and results remain reproducible
// across GOMAXPROCS, host threads and domain counts.
package noc

import (
	"zsim/internal/arena"
	"zsim/internal/network"
	"zsim/internal/stats"
)

// Config sizes the contention model of every router in a fabric.
type Config struct {
	// PacketFlits is the number of flits in a line-carrying packet; a packet
	// occupies each output port it crosses for PacketFlits x CyclesPerFlit
	// cycles (the flit train's link occupancy).
	PacketFlits int
	// CyclesPerFlit is the link's inverse bandwidth (1 = one flit per cycle).
	CyclesPerFlit int
	// QueueDepth bounds the number of packets queued at one output port
	// (0 = unbounded). A packet arriving at a full queue sits in the
	// upstream buffers until the oldest in-flight flit train drains; the
	// blocking time is charged as extra occupancy on the port, so a
	// backed-up port loses effective bandwidth (with serial service, the
	// slot wait alone would be subsumed by port serialization).
	QueueDepth int
	// MemHopLatency is the zero-load latency of the memory-egress link that
	// connects a router to its memory controller (the single hop the bound
	// phase charges for LLC-to-controller traffic).
	MemHopLatency uint32
}

// portState is one output port of a router: the cycle its link is busy
// until, and (when the queue is bounded) the drain cycles of queued packets.
type portState struct {
	free     uint64
	inflight []uint64
}

// Router is the weave-phase contention model for one node's router. It is
// driven from exactly one weave domain, so it needs no locking.
type Router struct {
	node       int
	perHop     uint64 // zero-load network per-hop latency (link + pipeline)
	memHop     uint64 // zero-load memory-egress link latency
	flitCycles uint64 // port occupancy per packet
	queueDepth int
	ports      []portState // network ports, then one memory-egress port

	// Statistics, registered in the system's registry under noc/router-<n>.
	// A queue-stalled packet always also conflicts on its (necessarily
	// busy) port, so QueueStalls counts a subset of PortConflicts — the
	// packets that additionally cost the port backpressure occupancy.
	Traversals    *stats.Counter // packets scheduled through this router
	BusyCycles    *stats.Counter // total port occupancy charged (incl. backpressure)
	PortConflicts *stats.Counter // packets that found their port busy
	QueueStalls   *stats.Counter // packets that found their port's queue full on arrival
	QueueDelay    *stats.Counter // total cycles packets waited for ports
}

// Node returns the topology node this router serves.
func (r *Router) Node() int { return r.node }

// Schedule dispatches one packet through the router's output port at the
// given cycle and returns the cycle at which the packet's head reaches the
// next node. Contention shows up two ways: the port's link is occupied for
// the flit train's duration, serializing packets (start-cycle pushback);
// and a packet arriving at a full bounded queue sits in the upstream
// buffers until the oldest in-flight train drains, blocking the link behind
// it — charged as extra occupancy on this port, so a backed-up port loses
// effective bandwidth instead of merely serializing.
func (r *Router) Schedule(port int, dispatch uint64) uint64 {
	p := &r.ports[port]
	r.Traversals.Inc()
	start := dispatch
	var backpressure uint64
	if r.queueDepth > 0 {
		// Admission: retire flit trains that drained before this packet
		// arrived. If the queue is still full, the packet is stuck in the
		// upstream link until the oldest train frees a slot; that blocking
		// time is bandwidth nothing else can use, so it extends the port's
		// occupancy below. (Serial service means the slot wait itself is
		// always subsumed by the port wait — the bandwidth loss is the
		// queue bound's real cost.)
		live := p.inflight[:0]
		for _, f := range p.inflight {
			if f > dispatch {
				live = append(live, f)
			}
		}
		p.inflight = live
		if len(p.inflight) >= r.queueDepth {
			earliest := p.inflight[0]
			for _, f := range p.inflight {
				if f < earliest {
					earliest = f
				}
			}
			if earliest > dispatch {
				r.QueueStalls.Inc()
				// The wasted link time is capped at one train length per
				// admitted packet: trains are admitted serially, so a
				// blocked train can idle the wire for at most its own
				// transmission time (an uncapped charge would compound
				// across packets whose slot waits overlap, and a saturated
				// port would collapse quadratically instead of degrading
				// to its backpressured service rate).
				backpressure = earliest - dispatch
				if backpressure > r.flitCycles {
					backpressure = r.flitCycles
				}
			}
		}
	}
	if p.free > start {
		r.PortConflicts.Inc()
		start = p.free
	}
	if r.queueDepth > 0 {
		p.inflight = append(p.inflight, start+r.flitCycles)
	}
	if start > dispatch {
		r.QueueDelay.Add(start - dispatch)
	}
	p.free = start + r.flitCycles + backpressure
	r.BusyCycles.Add(r.flitCycles + backpressure)
	lat := r.perHop
	if port == len(r.ports)-1 {
		lat = r.memHop
	}
	return start + lat
}

// Reset clears the router's port clocks and queues (statistics are kept).
func (r *Router) Reset() {
	for i := range r.ports {
		r.ports[i].free = 0
		r.ports[i].inflight = r.ports[i].inflight[:0]
	}
}

// Fabric bundles the topology and the per-node routers of one simulated
// chip's NoC. It is built by the system builder when NoC contention is
// enabled and consulted by the weave phase's translation loop.
type Fabric struct {
	topo    network.Topology
	routers []*Router
	memPort int
}

// NewFabric creates one router per topology node, registering each router's
// statistics under reg (router-<node>). Every router gets the topology's
// network ports plus one memory-egress port.
func NewFabric(topo network.Topology, cfg Config, reg *stats.Registry) *Fabric {
	if cfg.PacketFlits < 1 {
		cfg.PacketFlits = 1
	}
	if cfg.CyclesPerFlit < 1 {
		cfg.CyclesPerFlit = 1
	}
	a := reg.Arena()
	f := arena.One[Fabric](a)
	f.topo = topo
	f.memPort = topo.NumPorts()
	f.routers = arena.Take[*Router](a, topo.Nodes())
	for n := range f.routers {
		rr := reg.ChildIdx("router", n)
		r := arena.One[Router](a)
		r.node = n
		r.perHop = uint64(topo.PerHopLatency())
		r.memHop = uint64(cfg.MemHopLatency)
		r.flitCycles = uint64(cfg.PacketFlits) * uint64(cfg.CyclesPerFlit)
		r.queueDepth = cfg.QueueDepth
		r.ports = arena.Take[portState](a, topo.NumPorts()+1)

		r.Traversals = rr.Counter("traversals", "packets scheduled through this router")
		r.BusyCycles = rr.Counter("busyCycles", "total output-port occupancy in cycles (incl. backpressure)")
		r.PortConflicts = rr.Counter("portConflicts", "packets that found their output port busy")
		r.QueueStalls = rr.Counter("queueStalls", "packets that arrived to a full port queue (subset of portConflicts)")
		r.QueueDelay = rr.Counter("queueDelay", "total cycles packets waited for output ports")
		f.routers[n] = r
	}
	return f
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() network.Topology { return f.topo }

// Router returns node n's router (node indices are normalized like the
// topology's Latency arguments).
func (f *Fabric) Router(n int) *Router {
	if n < 0 || n >= len(f.routers) {
		n = ((n % len(f.routers)) + len(f.routers)) % len(f.routers)
	}
	return f.routers[n]
}

// NumRouters returns the number of routers (= topology nodes).
func (f *Fabric) NumRouters() int { return len(f.routers) }

// MemPort returns the index of the memory-egress port on every router.
func (f *Fabric) MemPort() int { return f.memPort }

// Injection returns the topology's zero-load injection latency.
func (f *Fabric) Injection() uint64 { return uint64(f.topo.InjectionLatency()) }

// PerHop returns the topology's zero-load per-hop latency.
func (f *Fabric) PerHop() uint64 { return uint64(f.topo.PerHopLatency()) }

// NextHop delegates to the topology's deterministic routing.
func (f *Fabric) NextHop(cur, dst int) (next, port int) { return f.topo.NextHop(cur, dst) }

// Reset clears every router's port clocks (used when a fresh simulator is
// attached to an already-built system).
func (f *Fabric) Reset() {
	for _, r := range f.routers {
		r.Reset()
	}
}

// Stats aggregates the fabric's counters.
type Stats struct {
	Traversals    uint64
	BusyCycles    uint64
	PortConflicts uint64
	QueueStalls   uint64
	QueueDelay    uint64
	// MaxRouterDelay is the largest per-router queueing delay, a hotspot
	// indicator.
	MaxRouterDelay uint64
}

// TotalStats sums the per-router counters.
func (f *Fabric) TotalStats() Stats {
	var s Stats
	for _, r := range f.routers {
		s.Traversals += r.Traversals.Get()
		s.BusyCycles += r.BusyCycles.Get()
		s.PortConflicts += r.PortConflicts.Get()
		s.QueueStalls += r.QueueStalls.Get()
		s.QueueDelay += r.QueueDelay.Get()
		if d := r.QueueDelay.Get(); d > s.MaxRouterDelay {
			s.MaxRouterDelay = d
		}
	}
	return s
}
