// Package runctl provides the run-control primitives shared by the simulator
// core and the zsimd service: a lock-free cooperative cancellation token that
// the bound-weave loop checks at interval boundaries, a wall-clock watchdog
// that trips the token when a run exceeds its time budget, and structured
// panic capture so a fault in one pooled worker is contained as data instead
// of killing the host process.
//
// The token is a single atomic word. Checking it costs one atomic load and
// performs no allocation, so the simulator can poll it on every interval (and
// every bound round) without perturbing the steady-state allocation
// guarantees the engine is built around.
package runctl

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Reason classifies why a run stopped before completing its workload.
// ReasonNone means the run is still in progress or completed normally.
type Reason uint32

// The failure reasons a run can stop with. First-cancel-wins: once a token
// carries one of these, later cancellations do not overwrite it.
const (
	// ReasonNone: no failure; the run completed (or has not stopped yet).
	ReasonNone Reason = iota
	// ReasonCancelled: the caller cancelled the run (context cancellation,
	// job cancel request, service drain).
	ReasonCancelled
	// ReasonDeadline: the wall-clock watchdog fired (MaxWallTime exceeded).
	ReasonDeadline
	// ReasonCycleLimit: the simulated-cycle limit was reached (MaxCycles).
	ReasonCycleLimit
	// ReasonDeadlocked: the workload deadlocked — no thread runnable and none
	// wakeable by the passage of simulated time.
	ReasonDeadlocked
	// ReasonPanicked: a panic in a worker or the simulation driver was
	// recovered and the run was aborted.
	ReasonPanicked
)

// String names the reason for diagnostics and audit records.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonCancelled:
		return "cancelled"
	case ReasonDeadline:
		return "deadline-exceeded"
	case ReasonCycleLimit:
		return "cycle-limit"
	case ReasonDeadlocked:
		return "deadlocked"
	case ReasonPanicked:
		return "panicked"
	default:
		return fmt.Sprintf("reason(%d)", uint32(r))
	}
}

// Failure reports whether the reason describes an abnormal stop.
func (r Reason) Failure() bool { return r != ReasonNone }

// Token is a cooperative cancellation token: one atomic word holding the
// first failure reason raised against the run. The zero value is ready to
// use. All methods are safe for concurrent use and safe on a nil receiver
// (a nil token is never cancelled), so hot paths can poll unconditionally.
type Token struct {
	state atomic.Uint32
}

// Cancel raises reason r against the run. The first cancellation wins;
// Cancel reports whether this call was the one that tripped the token.
// Cancelling with ReasonNone is a no-op.
func (t *Token) Cancel(r Reason) bool {
	if t == nil || r == ReasonNone {
		return false
	}
	return t.state.CompareAndSwap(uint32(ReasonNone), uint32(r))
}

// Reason returns the reason the token was cancelled with (ReasonNone if it
// has not been cancelled).
func (t *Token) Reason() Reason {
	if t == nil {
		return ReasonNone
	}
	return Reason(t.state.Load())
}

// Cancelled reports whether the token has been cancelled. One atomic load,
// no allocation.
func (t *Token) Cancelled() bool { return t.Reason() != ReasonNone }

// Reset rearms a token for reuse (e.g. a pooled service worker running its
// next job). It must not race Cancel from a watchdog still armed against the
// previous run; stop the watchdog first.
func (t *Token) Reset() {
	if t != nil {
		t.state.Store(uint32(ReasonNone))
	}
}

// Watchdog is an armed wall-clock limit: when the limit expires before Stop
// is called, it cancels the watched token with ReasonDeadline. The zero/nil
// Watchdog is inert, so callers can unconditionally defer Stop.
type Watchdog struct {
	timer *time.Timer
}

// Watch arms a watchdog that cancels t with ReasonDeadline after limit. A
// non-positive limit returns a nil (inert) watchdog.
func Watch(t *Token, limit time.Duration) *Watchdog {
	if limit <= 0 {
		return nil
	}
	return &Watchdog{timer: time.AfterFunc(limit, func() { t.Cancel(ReasonDeadline) })}
}

// Stop disarms the watchdog. Idempotent and nil-safe. Stop does not undo a
// cancellation that already fired.
func (w *Watchdog) Stop() {
	if w != nil && w.timer != nil {
		w.timer.Stop()
	}
}

// PanicError is a recovered panic, captured with the stack of the panicking
// goroutine so the fault site survives the hand-off across goroutines and
// process layers (pool worker -> weave engine -> simulator -> facade ->
// service audit log).
type PanicError struct {
	// Value is the value passed to panic().
	Value interface{}
	// Stack is the panicking goroutine's stack, captured inside the deferred
	// recover (so it includes the panic site, not the recovery site).
	Stack []byte
	// Worker is the pool worker index the panic was recovered on, or -1 when
	// it was recovered outside a pool worker.
	Worker int
}

// NewPanicError wraps a recovered value. If the value is already a
// *PanicError (a lower layer captured it first), it is returned unchanged so
// the original stack is preserved.
func NewPanicError(v interface{}, worker int) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack(), Worker: worker}
}

// Error implements error.
func (e *PanicError) Error() string {
	if e.Worker >= 0 {
		return fmt.Sprintf("panic in worker %d: %v", e.Worker, e.Value)
	}
	return fmt.Sprintf("panic: %v", e.Value)
}
