package runctl

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTokenFirstCancelWins(t *testing.T) {
	var tok Token
	if tok.Cancelled() || tok.Reason() != ReasonNone {
		t.Fatalf("zero token should not be cancelled")
	}
	if !tok.Cancel(ReasonCancelled) {
		t.Fatalf("first Cancel should win")
	}
	if tok.Cancel(ReasonDeadline) {
		t.Fatalf("second Cancel should lose")
	}
	if got := tok.Reason(); got != ReasonCancelled {
		t.Fatalf("reason = %v, want cancelled", got)
	}
	tok.Reset()
	if tok.Cancelled() {
		t.Fatalf("Reset should rearm the token")
	}
}

func TestTokenNilSafe(t *testing.T) {
	var tok *Token
	if tok.Cancel(ReasonCancelled) || tok.Cancelled() || tok.Reason() != ReasonNone {
		t.Fatalf("nil token must be inert")
	}
	tok.Reset() // must not panic
	var w *Watchdog
	w.Stop() // must not panic
}

func TestTokenConcurrentCancel(t *testing.T) {
	var tok Token
	var wg sync.WaitGroup
	wins := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if tok.Cancel(Reason(1 + i%5)) {
				wins[i] = 1
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != 1 {
		t.Fatalf("exactly one concurrent Cancel should win, got %d", total)
	}
	if !tok.Cancelled() {
		t.Fatalf("token should be cancelled")
	}
}

func TestWatchdogFires(t *testing.T) {
	var tok Token
	w := Watch(&tok, time.Millisecond)
	defer w.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for !tok.Cancelled() {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog did not fire")
		}
		time.Sleep(time.Millisecond)
	}
	if got := tok.Reason(); got != ReasonDeadline {
		t.Fatalf("reason = %v, want deadline-exceeded", got)
	}
}

func TestWatchdogStop(t *testing.T) {
	var tok Token
	w := Watch(&tok, 50*time.Millisecond)
	w.Stop()
	time.Sleep(80 * time.Millisecond)
	if tok.Cancelled() {
		t.Fatalf("stopped watchdog must not cancel")
	}
	if Watch(&tok, 0) != nil {
		t.Fatalf("non-positive limit should return an inert watchdog")
	}
}

func TestPanicErrorCapture(t *testing.T) {
	var pe *PanicError
	func() {
		defer func() {
			if r := recover(); r != nil {
				pe = NewPanicError(r, 3)
			}
		}()
		panic("boom")
	}()
	if pe == nil || pe.Value != "boom" || pe.Worker != 3 {
		t.Fatalf("bad capture: %+v", pe)
	}
	if !strings.Contains(string(pe.Stack), "TestPanicErrorCapture") {
		t.Fatalf("stack should include the panic site")
	}
	if !strings.Contains(pe.Error(), "worker 3") {
		t.Fatalf("Error() should name the worker: %s", pe.Error())
	}
	// Re-wrapping keeps the original.
	if NewPanicError(pe, 9) != pe {
		t.Fatalf("NewPanicError must not double-wrap")
	}
}

func TestReasonStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonNone: "none", ReasonCancelled: "cancelled",
		ReasonDeadline: "deadline-exceeded", ReasonCycleLimit: "cycle-limit",
		ReasonDeadlocked: "deadlocked", ReasonPanicked: "panicked",
	} {
		if r.String() != want {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
	if ReasonNone.Failure() || !ReasonDeadlocked.Failure() {
		t.Fatalf("Failure() misclassifies")
	}
}
