package config

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

var osWriteFile = os.WriteFile

func TestWestmerePreset(t *testing.T) {
	s := WestmereValidation()
	if s.NumCores != 6 || s.CoreModel != CoreOOO {
		t.Fatalf("Westmere preset should be a 6-core OOO system: %+v", s)
	}
	if s.L3.Banks != 6 || s.L3.SizeKB != 12*1024 || s.L3.Ways != 16 {
		t.Fatalf("Westmere L3 should be a 12MB 16-way 6-bank cache")
	}
	if s.L1D.Latency != 4 || s.L1I.Latency != 3 || s.L2.Latency != 7 {
		t.Fatalf("Westmere cache latencies wrong")
	}
	if s.IntervalCycles != 1000 || s.WeaveDomains != 6 {
		t.Fatalf("Westmere bound-weave settings wrong")
	}
	if s.Network != NetRing {
		t.Fatalf("Westmere uncore uses a ring")
	}
	if s.NumTiles() != 6 {
		t.Fatalf("one core per tile expected")
	}
}

func TestTiledChipPresets(t *testing.T) {
	for _, tc := range []struct {
		tiles, cores int
	}{{4, 64}, {16, 256}, {64, 1024}} {
		s := TiledChip(tc.tiles, CoreIPC1)
		if s.NumCores != tc.cores {
			t.Fatalf("%d tiles should give %d cores, got %d", tc.tiles, tc.cores, s.NumCores)
		}
		if s.CoresPerTile != 16 || s.NumTiles() != tc.tiles {
			t.Fatalf("tiling wrong for %d tiles", tc.tiles)
		}
		if s.L3.Banks != tc.tiles {
			t.Fatalf("one L3 bank per tile expected")
		}
		if s.L3.SizeKB != 8*1024*tc.tiles {
			t.Fatalf("8MB of L3 per tile expected")
		}
		if s.Network != NetMesh {
			t.Fatalf("tiled chip uses a mesh")
		}
	}
	// Degenerate tile count clamps.
	if TiledChip(0, CoreOOO).NumCores != 16 {
		t.Fatalf("zero tiles should clamp to one")
	}
}

func TestSmallTestPreset(t *testing.T) {
	s := SmallTest()
	if s.NumCores != 4 || s.CoreModel != CoreIPC1 {
		t.Fatalf("small preset wrong")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*System)
	}{
		{"no cores", func(s *System) { s.NumCores = 0 }},
		{"bad core model", func(s *System) { s.CoreModel = "vliw" }},
		{"tile mismatch", func(s *System) { s.CoresPerTile = 5 }},
		{"zero l1d", func(s *System) { s.L1D.SizeKB = 0 }},
		{"zero l3", func(s *System) { s.L3.SizeKB = 0 }},
	}
	for _, c := range cases {
		s := WestmereValidation()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("%s: expected a validation error", c.name)
		}
	}
}

func TestValidateDefaults(t *testing.T) {
	s := &System{
		NumCores: 2,
		L1I:      CacheConfig{SizeKB: 32},
		L1D:      CacheConfig{SizeKB: 32},
		L2:       CacheConfig{SizeKB: 256},
		L3:       CacheConfig{SizeKB: 1024},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal config should validate: %v", err)
	}
	if s.CoreModel != CoreOOO || s.MemModel != MemSimple || s.Network != NetFlat {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.IntervalCycles != 1000 || s.WeaveDomains != 2 || s.MemControllers != 1 {
		t.Fatalf("bound-weave defaults wrong: %+v", s)
	}
	if s.L1I.Ways != 1 || s.L3.Banks != 1 {
		t.Fatalf("cache defaults wrong")
	}
	if s.OOO.IssueWidth != 4 {
		t.Fatalf("OOO defaults not applied")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := TiledChip(4, CoreOOO)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumCores != s.NumCores || loaded.L3.Banks != s.L3.Banks ||
		loaded.CoreModel != s.CoreModel || loaded.IntervalCycles != s.IntervalCycles {
		t.Fatalf("round trip mismatch: %+v vs %+v", loaded, s)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"numCores": 4, "bogusField": 1}`))
	if err == nil {
		t.Fatalf("unknown fields should be rejected")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	_, err := Load(strings.NewReader(`{"numCores": 0}`))
	if err == nil {
		t.Fatalf("invalid config should be rejected")
	}
	_, err = Load(strings.NewReader(`not json`))
	if err == nil {
		t.Fatalf("malformed JSON should be rejected")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/zsim.json"); err == nil {
		t.Fatalf("missing file should error")
	}
}

func TestLoadFile(t *testing.T) {
	path := t.TempDir() + "/cfg.json"
	s := SmallTest()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Name != s.Name {
		t.Fatalf("loaded config mismatch")
	}
}

// writeFile is a tiny helper to avoid importing os in most tests.
func writeFile(path string, data []byte) error {
	return osWriteFile(path, data, 0o644)
}

func TestRunLimitsRoundTripAndDefaults(t *testing.T) {
	s := SmallTest()
	s.MaxWallTime = 1500 * time.Millisecond
	s.MaxCycles = 123456
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.MaxWallTime != 1500*time.Millisecond || got.MaxCycles != 123456 {
		t.Fatalf("run limits lost in round trip: %v / %d", got.MaxWallTime, got.MaxCycles)
	}
	// Unset limits stay zero (= unlimited) and negative wall time is
	// normalized to unlimited.
	d := SmallTest()
	if d.MaxWallTime != 0 || d.MaxCycles != 0 {
		t.Fatalf("presets must not impose run limits")
	}
	d.MaxWallTime = -time.Second
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.MaxWallTime != 0 {
		t.Fatalf("negative MaxWallTime should normalize to unlimited")
	}
}

func TestWeaveModeRoundTripAndDefaults(t *testing.T) {
	// Default: unset normalizes to the parallel-deterministic mode.
	s := SmallTest()
	if s.WeaveModeKind != WeaveParallelDet {
		t.Fatalf("default weave mode should be %q, got %q", WeaveParallelDet, s.WeaveModeKind)
	}
	// The serial escape hatch survives a JSON round trip.
	s.WeaveModeKind = WeaveSerial
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.WeaveModeKind != WeaveSerial {
		t.Fatalf("weave mode lost in round trip: %q", got.WeaveModeKind)
	}
	// Unknown modes are rejected.
	bad := SmallTest()
	bad.WeaveModeKind = "fast-and-loose"
	if err := bad.Validate(); err == nil {
		t.Fatalf("unknown weave mode should be rejected")
	}
	// The deprecated weaveParallel flag still loads (ignored) so existing
	// configs keep working under DisallowUnknownFields.
	legacy, err := Load(strings.NewReader(`{"numCores":2,"weaveParallel":true,
		"l1i":{"sizeKB":16},"l1d":{"sizeKB":16},"l2":{"sizeKB":64},"l3":{"sizeKB":256}}`))
	if err != nil {
		t.Fatalf("legacy weaveParallel config should load: %v", err)
	}
	if legacy.WeaveModeKind != WeaveParallelDet {
		t.Fatalf("legacy flag must not change the mode: %q", legacy.WeaveModeKind)
	}
}
