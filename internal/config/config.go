// Package config defines the system descriptions the simulator is built
// from: cores, cache hierarchy, network, memory controllers and bound-weave
// parameters. Configurations can be loaded from JSON (the stdlib replacement
// for zsim's libconfig files) and two presets reproduce the paper's
// configurations: Table 2's 6-core Westmere used for validation and Table 3's
// tiled 64/256/1024-core chips used for the performance evaluation.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"time"
)

// CoreModel selects a core timing model.
type CoreModel string

// Supported core models.
const (
	CoreIPC1 CoreModel = "ipc1"
	CoreOOO  CoreModel = "ooo"
)

// MemModel selects the bound-phase memory-controller model.
type MemModel string

// Supported memory-controller models.
const (
	MemSimple MemModel = "simple" // fixed zero-load latency (contention in weave phase, if enabled)
	MemMD1    MemModel = "md1"    // analytical M/D/1 queuing model applied in the bound phase
)

// WeaveMemModel selects the weave-phase DRAM contention model.
type WeaveMemModel string

// Supported weave-phase DRAM models.
const (
	WeaveMemDDR3        WeaveMemModel = "ddr3"         // detailed event-driven DDR3 model
	WeaveMemCycleDriven WeaveMemModel = "cycle-driven" // DRAMSim2-style cycle-driven model
	WeaveMemNone        WeaveMemModel = "none"         // no DRAM contention
)

// WeaveMode selects the weave-phase execution discipline.
type WeaveMode string

// Supported weave modes.
const (
	// WeaveParallelDet (the default) runs the weave domains concurrently:
	// every event is pre-created in its domain's queue at its bound-phase
	// lower bound and per-domain committed horizons bound the skew between
	// domains, so results are bit-identical to WeaveSerial for a fixed seed,
	// regardless of GOMAXPROCS, host threads or the domain count.
	WeaveParallelDet WeaveMode = "parallel"
	// WeaveSerial is the serial-fallback escape hatch: the weave phase runs
	// inline on one host core in the global (cycle, component, sequence)
	// reference order. Same results, no host parallelism.
	WeaveSerial WeaveMode = "serial"
)

// NetworkKind selects the NoC topology.
type NetworkKind string

// Supported topologies.
const (
	NetRing NetworkKind = "ring"
	NetMesh NetworkKind = "mesh"
	NetFlat NetworkKind = "flat"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeKB  int    `json:"sizeKB"`
	Ways    int    `json:"ways"`
	Latency uint32 `json:"latency"`
	MSHRs   int    `json:"mshrs"`
	// Banks applies only to the shared LLC.
	Banks int `json:"banks,omitempty"`
	// RandomRepl selects random replacement instead of LRU.
	RandomRepl bool `json:"randomRepl,omitempty"`
}

// OOOParams exposes the OOO core's microarchitectural knobs in configs.
type OOOParams struct {
	IssueWidth       int    `json:"issueWidth"`
	RetireWidth      int    `json:"retireWidth"`
	ROBSize          int    `json:"robSize"`
	LoadQueueSize    int    `json:"loadQueueSize"`
	StoreQueueSize   int    `json:"storeQueueSize"`
	FetchBytesPerCyc int    `json:"fetchBytesPerCycle"`
	MispredictCycles uint64 `json:"mispredictCycles"`
}

// DefaultOOOParams returns the validated Westmere-class parameters.
func DefaultOOOParams() OOOParams {
	return OOOParams{
		IssueWidth:       4,
		RetireWidth:      4,
		ROBSize:          128,
		LoadQueueSize:    48,
		StoreQueueSize:   32,
		FetchBytesPerCyc: 16,
		MispredictCycles: 17,
	}
}

// System is the full simulated-system description.
type System struct {
	Name string `json:"name"`

	// Cores.
	NumCores  int       `json:"numCores"`
	CoreModel CoreModel `json:"coreModel"`
	OOO       OOOParams `json:"ooo"`
	// CoresPerTile groups cores into tiles that share an L2 (Table 3). A
	// value of 0 or 1 gives private L2s (Table 2).
	CoresPerTile int     `json:"coresPerTile"`
	FreqGHz      float64 `json:"freqGHz"`

	// Cache hierarchy.
	L1I CacheConfig `json:"l1i"`
	L1D CacheConfig `json:"l1d"`
	L2  CacheConfig `json:"l2"`
	L3  CacheConfig `json:"l3"`

	// Network.
	Network        NetworkKind `json:"network"`
	NetHopCycles   uint32      `json:"netHopCycles"`
	NetRouterStage uint32      `json:"netRouterStages"`
	NetInjection   uint32      `json:"netInjectionCycles"`

	// Weave-phase NoC contention (package noc). The bound phase always uses
	// zero-load network latencies; enabling NOCContention additionally records
	// every interconnect traversal's route and retimes it through per-router
	// port/link occupancy models in the weave phase. Off by default: with it
	// off, simulated results are bit-identical to a build without the
	// subsystem. Requires a routed topology (ring or mesh); it only takes
	// effect when Contention enables the weave phase.
	NOCContention bool `json:"nocContention"`
	// NOCLinkBytes is the link width in bytes; a 64 B line packet (plus an
	// 8 B header) is ceil(72/NOCLinkBytes) flits, and its flit train occupies
	// each link it crosses for that many cycles (default 16 B -> 5 flits).
	// Narrower links saturate earlier: this is the knob link-bandwidth
	// sensitivity sweeps turn.
	NOCLinkBytes int `json:"nocLinkBytes"`
	// NOCQueueDepth bounds each router output port's packet queue (default 8;
	// negative = unbounded). A packet arriving at a full queue blocks the
	// upstream link until the oldest in-flight flit train drains, costing
	// the port that much effective bandwidth — shallow queues make
	// congested ports collapse harder.
	NOCQueueDepth int `json:"nocQueueDepth"`
	// The router pipeline depth of the contention model is NetRouterStage,
	// the same value the zero-load mesh latency uses, so an uncontended
	// weave-phase traversal finishes exactly at its bound-phase cycle.

	// Memory.
	MemControllers int      `json:"memControllers"`
	MemModel       MemModel `json:"memModel"`
	MemLatency     uint32   `json:"memLatency"`
	// MemServiceCycles is the per-request channel occupancy used by the M/D/1
	// model and to size the DDR3 model's bandwidth.
	MemServiceCycles float64 `json:"memServiceCycles"`

	// Bound-weave parameters.
	IntervalCycles uint64 `json:"intervalCycles"`
	// Contention enables the weave phase; without it only the bound phase
	// runs (the paper's -NC configurations).
	Contention   bool          `json:"contention"`
	WeaveMem     WeaveMemModel `json:"weaveMem"`
	WeaveDomains int           `json:"weaveDomains"`
	// WeaveModeKind selects the weave execution discipline. The default
	// ("" = "parallel") runs the domains concurrently on the host with
	// results bit-identical to the serial reference order; "serial" is the
	// escape hatch that keeps the whole weave phase inline on one host core.
	WeaveModeKind WeaveMode `json:"weaveMode,omitempty"`
	// HostThreads caps the number of host worker threads used by the bound
	// phase barrier (0 = number of host CPUs).
	HostThreads int `json:"hostThreads"`

	// Run limits (the robustness layer). Both default to 0 = unlimited.
	//
	// MaxWallTime bounds the host wall-clock time of a run: a watchdog trips
	// cooperative cancellation when it expires, and the run stops at the next
	// interval boundary with partial metrics and a DeadlineExceeded reason.
	// JSON carries it in nanoseconds (Go time.Duration encoding).
	MaxWallTime time.Duration `json:"maxWallTimeNs,omitempty"`
	// MaxCycles bounds simulated time: the run stops at the interval
	// boundary where the global cycle reaches it, with a CycleLimit reason.
	MaxCycles uint64 `json:"maxCycles,omitempty"`
}

// Validate checks the configuration for inconsistencies and fills defaults
// for unset fields.
func (s *System) Validate() error {
	if s.NumCores <= 0 {
		return fmt.Errorf("config: numCores must be positive, got %d", s.NumCores)
	}
	if s.CoreModel == "" {
		s.CoreModel = CoreOOO
	}
	if s.CoreModel != CoreIPC1 && s.CoreModel != CoreOOO {
		return fmt.Errorf("config: unknown core model %q", s.CoreModel)
	}
	if s.CoresPerTile <= 0 {
		s.CoresPerTile = 1
	}
	if s.NumCores%s.CoresPerTile != 0 {
		return fmt.Errorf("config: numCores (%d) must be a multiple of coresPerTile (%d)", s.NumCores, s.CoresPerTile)
	}
	if s.FreqGHz <= 0 {
		s.FreqGHz = 2.27
	}
	for _, c := range []struct {
		name string
		cfg  *CacheConfig
	}{{"l1i", &s.L1I}, {"l1d", &s.L1D}, {"l2", &s.L2}, {"l3", &s.L3}} {
		if c.cfg.SizeKB <= 0 {
			return fmt.Errorf("config: %s size must be positive", c.name)
		}
		if c.cfg.Ways <= 0 {
			c.cfg.Ways = 1
		}
	}
	if s.L3.Banks <= 0 {
		s.L3.Banks = 1
	}
	if s.Network == "" {
		s.Network = NetFlat
	}
	if s.NOCContention && s.Network == NetFlat {
		return fmt.Errorf("config: nocContention requires a routed topology (ring or mesh), not %q", s.Network)
	}
	if s.NOCLinkBytes <= 0 {
		s.NOCLinkBytes = 16
	}
	if s.NOCQueueDepth == 0 {
		// Unset defaults to 8; negative values are kept as-is and mean
		// "unbounded" at the use site, so revalidating a config (Load, then
		// BuildSystem) cannot turn an explicitly-unbounded queue into a
		// bounded one.
		s.NOCQueueDepth = 8
	}
	if s.MemControllers <= 0 {
		s.MemControllers = 1
	}
	if s.MemModel == "" {
		s.MemModel = MemSimple
	}
	if s.MemLatency == 0 {
		s.MemLatency = 120
	}
	if s.MemServiceCycles <= 0 {
		s.MemServiceCycles = 8
	}
	if s.IntervalCycles == 0 {
		s.IntervalCycles = 1000
	}
	if s.WeaveMem == "" {
		s.WeaveMem = WeaveMemDDR3
	}
	if s.WeaveDomains <= 0 {
		s.WeaveDomains = minInt(s.NumCores, 16)
	}
	if s.WeaveModeKind == "" {
		s.WeaveModeKind = WeaveParallelDet
	}
	if s.WeaveModeKind != WeaveParallelDet && s.WeaveModeKind != WeaveSerial {
		return fmt.Errorf("config: unknown weave mode %q (want %q or %q)",
			s.WeaveModeKind, WeaveParallelDet, WeaveSerial)
	}
	if s.OOO.IssueWidth == 0 {
		s.OOO = DefaultOOOParams()
	}
	if s.MaxWallTime < 0 {
		s.MaxWallTime = 0 // negative = unlimited, same as unset
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// UnmarshalJSON decodes a System, rejecting unknown fields itself (a custom
// unmarshaler never inherits the outer decoder's DisallowUnknownFields). The
// retired weaveParallel flag — removed from the struct; the deterministic
// parallel weave made it meaningless — is still accepted with a warning for
// one release so pre-existing JSON configs keep loading.
func (s *System) UnmarshalJSON(data []byte) error {
	type bare System // method-free alias: plain field decoding, no recursion
	shadow := struct {
		*bare
		WeaveParallel *bool `json:"weaveParallel"`
	}{bare: (*bare)(s)}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&shadow); err != nil {
		return err
	}
	if shadow.WeaveParallel != nil {
		fmt.Fprintln(os.Stderr, "config: warning: weaveParallel is deprecated and ignored (the parallel weave is deterministic and on by default; use weaveMode \"serial\" for the inline fallback) — it will be rejected in a future release")
	}
	return nil
}

// ShapeKey hashes every construction-shape field of the configuration: the
// fields that determine what BuildSystem and NewSimulator allocate and wire
// (core counts and models, hierarchy geometry, network, controllers, weave
// mode and domains, host threads). Run-variable fields — the name and the
// run limits, which Options carry per run — are excluded, so two configs
// with equal shape keys can share one warm simulator via Reset. Validate
// both configs first: validation fills defaults, and an unvalidated config
// hashes differently from its validated self.
func (s *System) ShapeKey() uint64 {
	shape := *s
	shape.Name = ""
	shape.MaxWallTime = 0
	shape.MaxCycles = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", shape)
	return h.Sum64()
}

// NumTiles returns the number of tiles in the configuration.
func (s *System) NumTiles() int {
	if s.CoresPerTile <= 1 {
		return s.NumCores
	}
	return s.NumCores / s.CoresPerTile
}

// WriteJSON serializes the configuration.
func (s *System) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Load reads a configuration from JSON and validates it.
func Load(r io.Reader) (*System, error) {
	var s System
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads a configuration from a JSON file.
func LoadFile(path string) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// WestmereValidation returns the Table 2 configuration: the 6-core Westmere
// (Xeon L5640) system zsim is validated against, with its corresponding
// simulator settings (1000-cycle intervals, 6 weave threads).
func WestmereValidation() *System {
	s := &System{
		Name:         "westmere-6c",
		NumCores:     6,
		CoreModel:    CoreOOO,
		OOO:          DefaultOOOParams(),
		CoresPerTile: 1,
		FreqGHz:      2.27,
		L1I:          CacheConfig{SizeKB: 32, Ways: 4, Latency: 3},
		L1D:          CacheConfig{SizeKB: 32, Ways: 8, Latency: 4},
		L2:           CacheConfig{SizeKB: 256, Ways: 8, Latency: 7},
		L3:           CacheConfig{SizeKB: 12 * 1024, Ways: 16, Latency: 14, Banks: 6, MSHRs: 16},
		Network:      NetRing,
		NetHopCycles: 1, NetInjection: 5,
		MemControllers:   1,
		MemModel:         MemSimple,
		MemLatency:       120,
		MemServiceCycles: 4,
		IntervalCycles:   1000,
		Contention:       true,
		WeaveMem:         WeaveMemDDR3,
		WeaveDomains:     6,
	}
	if err := s.Validate(); err != nil {
		panic("config: invalid Westmere preset: " + err.Error())
	}
	return s
}

// TiledChip returns the Table 3 configuration for the given number of tiles
// (4, 16 or 64 tiles = 64, 256 or 1024 cores): 16 cores per tile, a 4 MB
// shared L2 per tile, an 8 MB L3 bank per tile, a mesh NoC and one memory
// controller per tile pair.
func TiledChip(tiles int, model CoreModel) *System {
	if tiles < 1 {
		tiles = 1
	}
	s := &System{
		Name:         fmt.Sprintf("tiled-%dc", tiles*16),
		NumCores:     tiles * 16,
		CoreModel:    model,
		OOO:          DefaultOOOParams(),
		CoresPerTile: 16,
		FreqGHz:      2.0,
		L1I:          CacheConfig{SizeKB: 32, Ways: 4, Latency: 3},
		L1D:          CacheConfig{SizeKB: 32, Ways: 8, Latency: 4},
		L2:           CacheConfig{SizeKB: 4 * 1024, Ways: 8, Latency: 8},
		L3:           CacheConfig{SizeKB: 8 * 1024 * tiles, Ways: 16, Latency: 12, Banks: tiles, MSHRs: 16},
		Network:      NetMesh,
		NetHopCycles: 1, NetRouterStage: 2, NetInjection: 1,
		MemControllers:   maxInt(tiles/2, 1),
		MemModel:         MemSimple,
		MemLatency:       120,
		MemServiceCycles: 4,
		IntervalCycles:   1000,
		Contention:       true,
		WeaveMem:         WeaveMemDDR3,
		WeaveDomains:     minInt(tiles, 16),
	}
	if err := s.Validate(); err != nil {
		panic("config: invalid tiled preset: " + err.Error())
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SmallTest returns a small 4-core configuration used by unit tests and the
// quickstart example; it keeps cache sizes tiny so tests exercise evictions.
func SmallTest() *System {
	s := &System{
		Name:         "small-4c",
		NumCores:     4,
		CoreModel:    CoreIPC1,
		CoresPerTile: 1,
		FreqGHz:      2.0,
		L1I:          CacheConfig{SizeKB: 16, Ways: 4, Latency: 3},
		L1D:          CacheConfig{SizeKB: 16, Ways: 4, Latency: 4},
		L2:           CacheConfig{SizeKB: 128, Ways: 8, Latency: 7},
		L3:           CacheConfig{SizeKB: 1024, Ways: 16, Latency: 14, Banks: 2, MSHRs: 16},
		Network:      NetRing,
		NetHopCycles: 1, NetInjection: 3,
		MemControllers:   1,
		MemModel:         MemSimple,
		MemLatency:       100,
		MemServiceCycles: 6,
		IntervalCycles:   1000,
		Contention:       false,
		WeaveMem:         WeaveMemDDR3,
		WeaveDomains:     2,
	}
	if err := s.Validate(); err != nil {
		panic("config: invalid small preset: " + err.Error())
	}
	return s
}
