package config

// Fuzz targets for the JSON configuration surface. Two invariants the serve
// layer leans on:
//
//   - Load → WriteJSON → Load is a fixed point: a validated configuration
//     re-serializes to something that loads back byte-for-byte equivalent
//     (Validate must be idempotent for this to hold), and its ShapeKey is
//     stable across the round trip. The warm-simulator pool keys on it.
//   - ShapeKey ignores exactly the run-variable fields (Name, MaxWallTime,
//     MaxCycles) and nothing else: mutating those never moves a config to a
//     different pool bucket, while construction-shape fields do.
//
// Seeded with the shipped presets so the corpus starts from every
// configuration family the paper uses.

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// presetSeeds serializes each preset (validated first — Load validates too,
// and an unvalidated config hashes differently from its validated self).
func presetSeeds(f *testing.F) [][]byte {
	f.Helper()
	presets := []*System{
		SmallTest(),
		WestmereValidation(),
		TiledChip(16, CoreOOO),
		TiledChip(64, CoreIPC1),
	}
	var seeds [][]byte
	for _, s := range presets {
		if err := s.Validate(); err != nil {
			f.Fatalf("preset %q fails validation: %v", s.Name, err)
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			f.Fatalf("preset %q fails to serialize: %v", s.Name, err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

func FuzzSystemJSONRoundTrip(f *testing.F) {
	for _, seed := range presetSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte(`{"numCores":1,"l1i":{"sizeKB":1},"l1d":{"sizeKB":1},"l2":{"sizeKB":1},"l3":{"sizeKB":1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return // invalid input is fine; we only care about accepted configs
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("loaded config fails to serialize: %v", err)
		}
		s2, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized config fails to load: %v\njson: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip not a fixed point:\n first: %+v\nsecond: %+v", s, s2)
		}
		if k1, k2 := s.ShapeKey(), s2.ShapeKey(); k1 != k2 {
			t.Fatalf("shape key unstable across round trip: %016x != %016x", k1, k2)
		}
	})
}

func FuzzShapeKeyStability(f *testing.F) {
	for _, seed := range presetSeeds(f) {
		f.Add(seed, "renamed", int64(time.Minute), uint64(1<<40))
	}
	f.Fuzz(func(t *testing.T, data []byte, name string, wallNs int64, maxCycles uint64) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		key := s.ShapeKey()

		// Run-variable fields are outside the shape: the pool must keep
		// serving a renamed or re-limited run from the same warm simulator.
		s.Name = name
		s.MaxWallTime = time.Duration(wallNs)
		s.MaxCycles = maxCycles
		if got := s.ShapeKey(); got != key {
			t.Fatalf("run-variable mutation moved the shape key: %016x != %016x (name=%q wallNs=%d maxCycles=%d)",
				got, key, name, wallNs, maxCycles)
		}

		// A construction-shape field is inside it: growing the core count by
		// one tile keeps the config valid but must change the key.
		s.NumCores += s.CoresPerTile
		if got := s.ShapeKey(); got == key {
			t.Fatalf("numCores %d -> %d left the shape key unchanged: %016x",
				s.NumCores-s.CoresPerTile, s.NumCores, key)
		}
	})
}
