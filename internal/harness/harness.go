// Package harness builds and runs the experiments of the paper's evaluation
// section (Section 4): every figure and table has a function here that
// produces its rows or series, and a formatter that prints them in the same
// layout the paper uses. The cmd/zsimexp binary and the repository's
// benchmark suite are thin wrappers over this package.
//
// Experiments accept an Options value whose Scale field shrinks instruction
// budgets and core counts so the full suite can also run in seconds for tests
// and continuous integration; the default Scale of 1.0 corresponds to the
// sizes used for the numbers reported in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"zsim/internal/boundweave"
	"zsim/internal/config"
	"zsim/internal/noc"
	"zsim/internal/runctl"
	"zsim/internal/stats"
	"zsim/internal/telemetry"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// Options control experiment sizing.
type Options struct {
	// Scale multiplies every workload's instruction budget (1.0 = the sizes
	// used for EXPERIMENTS.md, ~2M instructions per workload; tests use
	// 0.02-0.05).
	Scale float64
	// HostThreads caps bound-phase parallelism (0 = all host CPUs).
	HostThreads int
	// MaxCores caps the number of simulated cores in the large-chip
	// experiments (0 = the paper's 1024). Tests use 64.
	MaxCores int
	// Timeout is a per-run wall-clock budget (0 = unlimited). A run that
	// exceeds it is stopped by the watchdog and reported as an error rather
	// than hanging the whole experiment suite.
	Timeout time.Duration
	// WeaveDomains, when > 0, overrides every experiment configuration's
	// weave domain count (the -domains flag of cmd/zsimexp).
	WeaveDomains int
	// WeaveMode, when non-empty, overrides the weave execution mode:
	// config.WeaveParallelDet (the default) or config.WeaveSerial (the
	// -weave-mode flag of cmd/zsimexp).
	WeaveMode config.WeaveMode
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Progress, when non-nil, receives a live heartbeat line for every
	// simulation run (phase, intervals, cycles, sim-MIPS), fed from the
	// simulator's telemetry probe. The -progress flag of cmd/zsimexp.
	Progress io.Writer
	// ProgressPeriod is the heartbeat period (0 = 2s). Every run also emits
	// one final line regardless of period, so short runs are still visible.
	ProgressPeriod time.Duration
}

// DefaultOptions returns full-scale experiment options.
func DefaultOptions() Options { return Options{Scale: 1.0} }

// TestOptions returns options small enough for unit tests.
func TestOptions() Options { return Options{Scale: 0.02, HostThreads: 2, MaxCores: 64} }

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

func (o Options) hostThreads() int {
	if o.HostThreads > 0 {
		return o.HostThreads
	}
	return runtime.NumCPU()
}

// budgetBlocks converts a baseline block budget through the scale factor.
func (o Options) budgetBlocks(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 50 {
		n = 50
	}
	return n
}

// bigChipCores returns the simulated core count for the thousand-core
// experiments, honouring MaxCores.
func (o Options) bigChipCores(want int) int {
	if o.MaxCores > 0 && want > o.MaxCores {
		return o.MaxCores
	}
	return want
}

// ModelKind names the four simulation-model combinations of the evaluation:
// simple or OOO cores, with or without contention (the weave phase).
type ModelKind string

// The four model combinations used throughout Section 4.2.
const (
	ModelIPC1NC ModelKind = "IPC1-NC"
	ModelIPC1C  ModelKind = "IPC1-C"
	ModelOOONC  ModelKind = "OOO-NC"
	ModelOOOC   ModelKind = "OOO-C"
)

// AllModels lists the four model combinations in the paper's order.
func AllModels() []ModelKind { return []ModelKind{ModelIPC1NC, ModelIPC1C, ModelOOONC, ModelOOOC} }

func (m ModelKind) coreModel() config.CoreModel {
	if m == ModelIPC1NC || m == ModelIPC1C {
		return config.CoreIPC1
	}
	return config.CoreOOO
}

func (m ModelKind) contention() bool { return m == ModelIPC1C || m == ModelOOOC }

// RunResult is the outcome of one simulation run.
type RunResult struct {
	Metrics   *stats.Metrics
	HostNanos int64
	Intervals uint64
	// NOC aggregates the NoC contention subsystem's counters (zero when the
	// configuration leaves it disabled).
	NOC noc.Stats
}

// runZSim builds the system for cfg, runs the named workload with the given
// thread count through the bound-weave simulator, and returns metrics plus
// host time.
func runZSim(cfg *config.System, workload string, params trace.Params, threads int, opts Options) (*RunResult, error) {
	if opts.WeaveDomains > 0 {
		cfg.WeaveDomains = opts.WeaveDomains
	}
	if opts.WeaveMode != "" {
		cfg.WeaveModeKind = opts.WeaveMode
	}
	sys, err := boundweave.BuildSystem(cfg)
	if err != nil {
		return nil, err
	}
	w := trace.NewIn(sys.Root.Arena(), workload, params, threads)
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(w)
	bwOpts := boundweave.Options{
		HostThreads: opts.hostThreads(),
		Seed:        1,
		MaxWallTime: opts.Timeout,
	}
	stopHeartbeat := func() {}
	if opts.Progress != nil {
		period := opts.ProgressPeriod
		if period <= 0 {
			period = 2 * time.Second
		}
		probe := new(telemetry.Probe)
		bwOpts.Probe = probe
		prefix := fmt.Sprintf("%s/%s: ", cfg.Name, workload)
		stopHeartbeat = telemetry.StartHeartbeat(opts.Progress, probe, prefix, period)
	}
	sim := boundweave.NewSimulator(sys, sched, bwOpts)
	start := time.Now()
	sim.Run()
	elapsed := time.Since(start).Nanoseconds()
	stopHeartbeat()
	if r := sim.Reason; r != runctl.ReasonNone {
		// An experiment run that deadlocks, overruns its budget or panics
		// must surface as a loud failure, not as silently-wrong table rows.
		return nil, fmt.Errorf("%s on %s: run %s at interval %d (cycle %d)",
			workload, cfg.Name, r, sim.Intervals, sim.GlobalCycle())
	}
	m := sys.Metrics()
	m.Workload = workload
	m.Model = string(cfg.CoreModel)
	m.HostNanos = elapsed
	m.Finalize()
	res := &RunResult{Metrics: m, HostNanos: elapsed, Intervals: sim.Intervals}
	if sys.Fabric != nil {
		res.NOC = sys.Fabric.TotalStats()
	}
	return res, nil
}

// nativeRate measures how fast the host can execute the workload's dynamic
// block stream with no timing models attached — the stand-in for native
// execution of the benchmark binary, used to report slowdowns in Table 4.
func nativeRate(params trace.Params, threads int) float64 {
	w := trace.New("native", params, threads)
	start := time.Now()
	var instrs uint64
	for t := 0; t < threads; t++ {
		th := w.NewThread(t)
		for {
			b := th.NextBlock()
			if b.Sync == trace.SyncDone {
				break
			}
			instrs += uint64(b.Decoded.Instrs)
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(instrs) / elapsed / 1e6 // MIPS
}

// table renders rows of columns with aligned widths.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%+.1f%%", v*100)
}

// sortedKeys returns the map's keys in sorted order (for deterministic
// tables).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
