package harness

import (
	"strings"
	"testing"
	"time"

	"zsim/internal/config"
	"zsim/internal/trace"
)

// tiny returns options small enough that every experiment finishes quickly in
// unit tests while still exercising its full code path.
func tiny() Options {
	return Options{Scale: 0.01, HostThreads: 2, MaxCores: 32}
}

func TestModelKinds(t *testing.T) {
	if len(AllModels()) != 4 {
		t.Fatalf("expected 4 model combinations")
	}
	if ModelIPC1NC.coreModel() != config.CoreIPC1 || ModelOOOC.coreModel() != config.CoreOOO {
		t.Fatalf("core-model mapping wrong")
	}
	if ModelIPC1NC.contention() || !ModelOOOC.contention() {
		t.Fatalf("contention mapping wrong")
	}
}

func TestOptionsHelpers(t *testing.T) {
	o := Options{}
	if o.hostThreads() < 1 {
		t.Fatalf("default host threads should be positive")
	}
	o = Options{Scale: 0.001}
	if o.budgetBlocks(1000) < 50 {
		t.Fatalf("budget should clamp to a minimum")
	}
	o = Options{MaxCores: 64}
	if o.bigChipCores(1024) != 64 {
		t.Fatalf("MaxCores should cap the chip size")
	}
	if o.bigChipCores(16) != 16 {
		t.Fatalf("small requests pass through")
	}
	if DefaultOptions().Scale != 1.0 || TestOptions().Scale >= 1.0 {
		t.Fatalf("canned options wrong")
	}
}

func TestRunZSimAndNativeRate(t *testing.T) {
	cfg := config.SmallTest()
	params := trace.DefaultParams()
	params.BlocksPerThread = 200
	res, err := runZSim(cfg, "unit", params, 2, tiny())
	if err != nil {
		t.Fatalf("runZSim: %v", err)
	}
	if res.Metrics.Instrs == 0 || res.Metrics.SimMIPS <= 0 || res.HostNanos <= 0 {
		t.Fatalf("runZSim should produce timing data: %+v", res.Metrics)
	}
	if rate := nativeRate(params, 2); rate <= 0 {
		t.Fatalf("native rate should be positive, got %f", rate)
	}
}

func TestTableFormatter(t *testing.T) {
	out := table([]string{"a", "bee"}, [][]string{{"1", "2"}, {"longer", "x"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "longer") {
		t.Fatalf("table output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header, separator and 2 rows, got %d lines", len(lines))
	}
}

func TestTable2And3(t *testing.T) {
	if !strings.Contains(Table2(), "westmere-6c") {
		t.Fatalf("Table 2 should describe the Westmere config")
	}
	if !strings.Contains(Table3(4), "64 cores") {
		t.Fatalf("Table 3 should describe the tiled chip")
	}
}

func TestFigure2Small(t *testing.T) {
	opts := tiny()
	opts.MaxCores = 16
	res, err := Figure2(opts)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(res.Workloads) != 10 || len(res.Intervals) != 3 {
		t.Fatalf("Figure 2 shape wrong")
	}
	for _, w := range res.Workloads {
		fr := res.Fractions[w]
		if len(fr) != 3 {
			t.Fatalf("missing fractions for %s", w)
		}
		for _, f := range fr {
			if f < 0 || f > 1 {
				t.Fatalf("fraction out of range for %s: %v", w, fr)
			}
		}
		// The key claim: interference does not shrink as the interval grows.
		if fr[2] < fr[0] {
			t.Fatalf("interference should not shrink with longer intervals for %s: %v", w, fr)
		}
	}
	if !strings.Contains(res.Format(), "Figure 2") {
		t.Fatalf("formatter broken")
	}
}

func TestValidationSmall(t *testing.T) {
	// Run the validation machinery on a 3-workload subset to keep the test
	// fast while covering the full code path (golden + zsim + error math).
	opts := tiny()
	res, err := validateWorkloads(opts, []string{"namd", "mcf", "povray"}, 1, opts.budgetBlocks(300))
	if err != nil {
		t.Fatalf("validateWorkloads: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 rows")
	}
	for _, row := range res.Rows {
		if row.RealIPC <= 0 || row.ZsimIPC <= 0 {
			t.Fatalf("IPCs should be positive: %+v", row)
		}
		if abs(row.PerfError) > 1.0 {
			t.Fatalf("perf error implausibly large for %s: %f", row.Workload, row.PerfError)
		}
	}
	// mcf (memory bound) must have a lower reference IPC than namd
	// (compute bound) — the behavioural envelope the registry encodes.
	var namdIPC, mcfIPC float64
	for _, row := range res.Rows {
		switch row.Workload {
		case "namd":
			namdIPC = row.RealIPC
		case "mcf":
			mcfIPC = row.RealIPC
		}
	}
	if mcfIPC >= namdIPC {
		t.Fatalf("mcf should be slower than namd: %f vs %f", mcfIPC, namdIPC)
	}
	out := res.Format()
	if !strings.Contains(out, "avg |perf error|") {
		t.Fatalf("formatter broken")
	}
}

func TestFigure6StreamSmall(t *testing.T) {
	opts := tiny()
	// The contention-vs-no-contention gap needs enough accesses per thread
	// for queueing to build up at the memory controller; at the default tiny
	// scale the honest (arrival-ordered) DDR3 model sees almost no backlog.
	opts.Scale = 0.1
	res, err := Figure6Stream(opts)
	if err != nil {
		t.Fatalf("Figure6Stream: %v", err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("expected 5 contention series, got %d", len(res.Series))
	}
	nc := res.Series["No contention"]
	ev := res.Series["Ev-driven cont"]
	if len(nc) != 6 || len(ev) != 6 {
		t.Fatalf("series should cover 1-6 threads")
	}
	// The headline claim of Figure 6 (right): ignoring contention makes
	// STREAM scale much better than the detailed contention model allows.
	if nc[5] <= ev[5] {
		t.Fatalf("no-contention STREAM should scale better than event-driven contention: %.2f vs %.2f", nc[5], ev[5])
	}
	if !strings.Contains(res.Format(), "STREAM") {
		t.Fatalf("formatter broken")
	}
}

func TestTable4Small(t *testing.T) {
	opts := tiny()
	opts.MaxCores = 32
	res, err := tableForCores(opts, 32, []string{"blackscholes", "stream"})
	if err != nil {
		t.Fatalf("tableForCores: %v", err)
	}
	if res.Cores != 32 || len(res.Rows) != 2 {
		t.Fatalf("table shape wrong: %+v", res)
	}
	for _, row := range res.Rows {
		for _, m := range AllModels() {
			if row.MIPS[m] <= 0 {
				t.Fatalf("%s/%s should have positive MIPS", row.Workload, m)
			}
		}
		// Detailed contention models must not be faster than the simplest
		// model for the same workload.
		if row.MIPS[ModelOOOC] > row.MIPS[ModelIPC1NC]*1.5 {
			t.Fatalf("OOO-C should not be much faster than IPC1-NC: %+v", row.MIPS)
		}
	}
	for _, m := range AllModels() {
		if res.HMeanMIPS[m] <= 0 {
			t.Fatalf("hmean MIPS missing for %s", m)
		}
	}
	if !strings.Contains(res.Format(), "Table 4") {
		t.Fatalf("formatter broken")
	}
}

func TestFigure9Small(t *testing.T) {
	opts := tiny()
	opts.MaxCores = 32
	res, err := Figure9(opts)
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	if len(res.Cores) == 0 {
		t.Fatalf("Figure 9 should report at least one chip size")
	}
	for _, m := range AllModels() {
		if len(res.HMeanMIPS[m]) != len(res.Cores) {
			t.Fatalf("missing series for %s", m)
		}
	}
	if !strings.Contains(res.Format(), "Figure 9") {
		t.Fatalf("formatter broken")
	}
}

func TestIntervalSensitivitySmall(t *testing.T) {
	opts := tiny()
	opts.MaxCores = 32
	res, err := IntervalSensitivity(opts, "")
	if err != nil {
		t.Fatalf("IntervalSensitivity: %v", err)
	}
	if len(res.PerfError) != 3 || len(res.HostSpeedup) != 3 {
		t.Fatalf("sweep shape wrong: %+v", res)
	}
	if res.PerfError[0] != 0 || res.HostSpeedup[0] != 1 {
		t.Fatalf("baseline point should be exactly 1K-relative: %+v", res)
	}
	if !strings.Contains(res.Format(), "Interval-length") {
		t.Fatalf("formatter broken")
	}
}

func TestFigure8Small(t *testing.T) {
	opts := tiny()
	opts.MaxCores = 32
	opts.HostThreads = 2
	res, err := Figure8(opts, "blackscholes")
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if len(res.HostThreads) == 0 {
		t.Fatalf("host-thread sweep missing")
	}
	for _, m := range []ModelKind{ModelIPC1NC, ModelOOOC} {
		sp := res.Speedup[m]
		if len(sp) != len(res.HostThreads) {
			t.Fatalf("missing speedup series for %s", m)
		}
		if sp[0] != 1 {
			t.Fatalf("speedup should be normalized to 1 host thread")
		}
	}
	if !strings.Contains(res.Format(), "Figure 8") {
		t.Fatalf("formatter broken")
	}
}

func TestOversubscribedClientServer(t *testing.T) {
	res, err := OversubscribedClientServer(TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads <= res.Cores {
		t.Fatalf("experiment must be oversubscribed: %d threads on %d cores", res.Threads, res.Cores)
	}
	if res.Metrics.Instrs == 0 || res.Metrics.Cycles == 0 {
		t.Fatalf("no work simulated: %+v", res.Metrics)
	}
	if res.SyscallBlocks == 0 || res.LockBlocks == 0 {
		t.Fatalf("workload should block on syscalls and locks: %+v", res)
	}
	if res.MidIntervalJoins == 0 {
		t.Fatalf("blocking threads should trigger mid-interval joins")
	}
	if s := res.Format(); !strings.Contains(s, "mid-interval joins") {
		t.Fatalf("formatter output incomplete: %s", s)
	}
}

// TestMeshHotspotSmall exercises the NoC contention experiment end to end:
// both series run, the contended series observes non-zero router queueing,
// and the formatter renders every row.
func TestMeshHotspotSmall(t *testing.T) {
	opts := tiny()
	opts.Scale = 0.1 // enough traffic that router ports actually back up
	res, err := MeshHotspot(opts)
	if err != nil {
		t.Fatalf("MeshHotspot: %v", err)
	}
	if len(res.Threads) == 0 || len(res.ThroughputNoC) != len(res.Threads) ||
		len(res.ThroughputZeroLoad) != len(res.Threads) {
		t.Fatalf("series/threads mismatch: %+v", res)
	}
	totalDelay := uint64(0)
	for _, d := range res.QueueDelay {
		totalDelay += d
	}
	if totalDelay == 0 {
		t.Fatalf("hotspot run should observe non-zero router queueing delay")
	}
	out := res.Format()
	for _, want := range []string{"zero-load IPC", "NoC scaling", "router queue delay"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestTimeoutFailsLoudly: a run that blows its wall-clock budget must turn
// into an explicit error (typed by the watchdog reason), never into
// silently-truncated table rows or a hung suite.
func TestTimeoutFailsLoudly(t *testing.T) {
	opts := tiny()
	opts.Timeout = 1 * time.Nanosecond // every run overruns immediately
	p := trace.DefaultParams()
	p.BlocksPerThread = 100000
	if _, err := runZSim(config.SmallTest(), "timeout-probe", p, 2, opts); err == nil {
		t.Fatalf("overrunning run should report an error")
	} else if !strings.Contains(err.Error(), "deadline-exceeded") {
		t.Fatalf("error should carry the typed reason, got: %v", err)
	}
}
