package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"zsim/internal/baseline"
	"zsim/internal/boundweave"
	"zsim/internal/config"
	"zsim/internal/stats"
	"zsim/internal/trace"
	"zsim/internal/virt"
)

// ---------------------------------------------------------------------------
// Figure 2: path-altering interference vs interval length
// ---------------------------------------------------------------------------

// Fig2Result holds, for each workload, the fraction of accesses with
// path-altering interference under each reordering interval length.
type Fig2Result struct {
	Workloads []string
	Intervals []uint64
	// Fractions[workload][i] corresponds to Intervals[i].
	Fractions map[string][]float64
}

// multiObserver fans one access stream out to several profilers (one per
// interval length), so a single simulation measures all three points.
type multiObserver struct {
	profs []*boundweave.InterferenceProfiler
}

func (m *multiObserver) ObserveAccess(line uint64, write bool, core int, cycle uint64) {
	for _, p := range m.profs {
		p.ObserveAccess(line, write, core, cycle)
	}
}

// Figure2 reproduces the interference characterization: a 64-core chip with
// private L1/L2 and a 16-bank shared L3 running PARSEC and SPLASH-2 style
// workloads, profiled with 1K, 10K and 100K-cycle reordering windows.
func Figure2(opts Options) (*Fig2Result, error) {
	res := &Fig2Result{
		Workloads: trace.Figure2Names(),
		Intervals: []uint64{1000, 10000, 100000},
		Fractions: make(map[string][]float64),
	}
	cores := opts.bigChipCores(64)
	for _, name := range res.Workloads {
		opts.logf("fig2: %s", name)
		cfg := config.TiledChip(maxInt(cores/16, 1), config.CoreIPC1)
		cfg.Contention = false
		params := trace.MustLookup(name)
		params.BlocksPerThread = opts.budgetBlocks(400)

		profs := make([]*boundweave.InterferenceProfiler, len(res.Intervals))
		for i, iv := range res.Intervals {
			profs[i] = boundweave.NewInterferenceProfiler(iv)
		}
		sys, err := boundweave.BuildSystem(cfg)
		if err != nil {
			return nil, err
		}
		w := trace.New(name, params, cfg.NumCores)
		sched := virt.NewScheduler(cfg.NumCores)
		sched.AddWorkload(w)
		sim := boundweave.NewSimulator(sys, sched, boundweave.Options{HostThreads: opts.hostThreads(), Seed: 1})
		// Install the fan-out observer on every core.
		mo := &multiObserver{profs: profs}
		for _, c := range sys.Cores {
			c.SetObserver(mo)
		}
		sim.Run()

		fr := make([]float64, len(profs))
		for i, p := range profs {
			fr[i] = p.Fraction()
		}
		res.Fractions[name] = fr
	}
	return res, nil
}

// Format renders the Figure 2 data as a table.
func (r *Fig2Result) Format() string {
	header := []string{"workload"}
	for _, iv := range r.Intervals {
		header = append(header, fmt.Sprintf("%dK cycles", iv/1000))
	}
	var rows [][]string
	for _, w := range r.Workloads {
		row := []string{w}
		for _, f := range r.Fractions[w] {
			row = append(row, fmt.Sprintf("%.2e", f))
		}
		rows = append(rows, row)
	}
	return "Figure 2: fraction of accesses with path-altering interference\n" + table(header, rows)
}

// ---------------------------------------------------------------------------
// Tables 2 and 3: configurations
// ---------------------------------------------------------------------------

// Table2 returns the validated-system configuration (formatted).
func Table2() string {
	cfg := config.WestmereValidation()
	var b strings.Builder
	b.WriteString("Table 2: validation configuration (Westmere-class)\n")
	cfg.WriteJSON(&b)
	return b.String()
}

// Table3 returns the tiled-chip configuration for the given tile count.
func Table3(tiles int) string {
	cfg := config.TiledChip(tiles, config.CoreOOO)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: tiled chip configuration (%d tiles, %d cores)\n", tiles, cfg.NumCores)
	cfg.WriteJSON(&b)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 5: single-threaded validation against the golden reference
// ---------------------------------------------------------------------------

// Fig5Row is one SPEC-like workload's validation outcome.
type Fig5Row struct {
	Workload  string
	RealIPC   float64
	ZsimIPC   float64
	PerfError float64 // (perf_zsim - perf_real) / perf_real

	RealL1I, RealL1D, RealL2, RealL3, RealBranch float64 // reference MPKIs
	ErrL1I, ErrL1D, ErrL2, ErrL3, ErrBranch      float64 // zsim - reference
}

// Fig5Result aggregates the validation rows.
type Fig5Result struct {
	Rows            []Fig5Row
	AvgAbsPerfError float64
	Within10Pct     int
	AvgAbsMPKIErr   map[string]float64
}

// Figure5 validates the OOO core model: every SPEC CPU2006-like workload runs
// on the 6-core Westmere configuration under both the golden fully-ordered
// reference (the "real machine" substitute) and the bound-weave simulator,
// and the per-workload IPC and MPKI deviations are reported.
func Figure5(opts Options) (*Fig5Result, error) {
	return validateWorkloads(opts, trace.SPECCPU2006(), 1, opts.budgetBlocks(600))
}

// Figure6Perf validates the multithreaded workloads (perf error per workload,
// Figure 6 left).
func Figure6Perf(opts Options) (*Fig5Result, error) {
	return validateWorkloads(opts, trace.Multithreaded(), 4, opts.budgetBlocks(300))
}

func validateWorkloads(opts Options, names []string, threads, blocks int) (*Fig5Result, error) {
	res := &Fig5Result{AvgAbsMPKIErr: make(map[string]float64)}
	var perfErrs, l1i, l1d, l2, l3, br []float64
	for _, name := range names {
		opts.logf("validate: %s", name)
		cfg := config.WestmereValidation()
		cfg.HostThreads = opts.hostThreads()
		params := trace.MustLookup(name)
		params.BlocksPerThread = blocks
		params.ScaleWork = false

		golden, err := baseline.RunGolden(cfg, trace.New(name, params, threads), 0)
		if err != nil {
			return nil, err
		}
		zres, err := runZSim(cfg, name, params, threads, opts)
		if err != nil {
			return nil, err
		}
		zm, gm := zres.Metrics, golden.Metrics
		row := Fig5Row{
			Workload:   name,
			RealIPC:    gm.IPC,
			ZsimIPC:    zm.IPC,
			PerfError:  zm.PerfError(gm),
			RealL1I:    gm.L1IMPKI,
			RealL1D:    gm.L1DMPKI,
			RealL2:     gm.L2MPKI,
			RealL3:     gm.L3MPKI,
			RealBranch: gm.BranchMPKI,
			ErrL1I:     zm.MPKIError(gm, "l1i"),
			ErrL1D:     zm.MPKIError(gm, "l1d"),
			ErrL2:      zm.MPKIError(gm, "l2"),
			ErrL3:      zm.MPKIError(gm, "l3"),
			ErrBranch:  zm.MPKIError(gm, "branch"),
		}
		res.Rows = append(res.Rows, row)
		perfErrs = append(perfErrs, row.PerfError)
		l1i = append(l1i, row.ErrL1I)
		l1d = append(l1d, row.ErrL1D)
		l2 = append(l2, row.ErrL2)
		l3 = append(l3, row.ErrL3)
		br = append(br, row.ErrBranch)
		if abs(row.PerfError) <= 0.10 {
			res.Within10Pct++
		}
	}
	res.AvgAbsPerfError = stats.MeanAbs(perfErrs)
	res.AvgAbsMPKIErr["l1i"] = stats.MeanAbs(l1i)
	res.AvgAbsMPKIErr["l1d"] = stats.MeanAbs(l1d)
	res.AvgAbsMPKIErr["l2"] = stats.MeanAbs(l2)
	res.AvgAbsMPKIErr["l3"] = stats.MeanAbs(l3)
	res.AvgAbsMPKIErr["branch"] = stats.MeanAbs(br)
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Format renders the validation results.
func (r *Fig5Result) Format() string {
	header := []string{"workload", "ref IPC", "zsim IPC", "perf err",
		"L1I err", "L1D err", "L2 err", "L3 err", "Br err"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, f2(row.RealIPC), f2(row.ZsimIPC), pct(row.PerfError),
			f2(row.ErrL1I), f2(row.ErrL1D), f2(row.ErrL2), f2(row.ErrL3), f2(row.ErrBranch),
		})
	}
	out := "Validation vs golden reference (Figure 5 / Figure 6 left)\n" + table(header, rows)
	out += fmt.Sprintf("\navg |perf error| = %.1f%%, workloads within 10%%: %d/%d\n",
		r.AvgAbsPerfError*100, r.Within10Pct, len(r.Rows))
	for _, k := range sortedKeys(r.AvgAbsMPKIErr) {
		out += fmt.Sprintf("avg |%s MPKI error| = %.2f\n", k, r.AvgAbsMPKIErr[k])
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 6 (middle): PARSEC speedups, real (golden) vs zsim
// ---------------------------------------------------------------------------

// Fig6SpeedupResult holds per-workload speedup curves.
type Fig6SpeedupResult struct {
	Threads []int
	// Real[workload][i] and Zsim[workload][i] are the speedups at Threads[i],
	// both normalized to their own single-thread run.
	Real map[string][]float64
	Zsim map[string][]float64
}

// Figure6Speedup reproduces the PARSEC speedup validation: each workload runs
// with 1-6 threads under the golden reference and under zsim, and the two
// speedup curves are compared.
func Figure6Speedup(opts Options) (*Fig6SpeedupResult, error) {
	res := &Fig6SpeedupResult{
		Threads: []int{1, 2, 3, 4, 5, 6},
		Real:    make(map[string][]float64),
		Zsim:    make(map[string][]float64),
	}
	for _, name := range trace.PARSECNames() {
		opts.logf("fig6 speedup: %s", name)
		params := trace.MustLookup(name)
		params.BlocksPerThread = opts.budgetBlocks(1200)
		params.ScaleWork = true
		var realCycles, zsimCycles []float64
		for _, th := range res.Threads {
			cfg := config.WestmereValidation()
			cfg.HostThreads = opts.hostThreads()
			golden, err := baseline.RunGolden(cfg, trace.New(name, params, th), 0)
			if err != nil {
				return nil, err
			}
			zres, err := runZSim(cfg, name, params, th, opts)
			if err != nil {
				return nil, err
			}
			realCycles = append(realCycles, float64(golden.Metrics.Cycles))
			zsimCycles = append(zsimCycles, float64(zres.Metrics.Cycles))
		}
		res.Real[name] = speedups(realCycles)
		res.Zsim[name] = speedups(zsimCycles)
	}
	return res, nil
}

func speedups(cycles []float64) []float64 {
	out := make([]float64, len(cycles))
	if len(cycles) == 0 || cycles[0] == 0 {
		return out
	}
	for i, c := range cycles {
		if c > 0 {
			out[i] = cycles[0] / c
		}
	}
	return out
}

// Format renders the speedup curves.
func (r *Fig6SpeedupResult) Format() string {
	header := []string{"workload", "model"}
	for _, t := range r.Threads {
		header = append(header, fmt.Sprintf("%dt", t))
	}
	var rows [][]string
	for _, w := range trace.PARSECNames() {
		real, zs := r.Real[w], r.Zsim[w]
		if real == nil {
			continue
		}
		rr := []string{w, "real"}
		zr := []string{"", "zsim"}
		for i := range r.Threads {
			rr = append(rr, f2(real[i]))
			zr = append(zr, f2(zs[i]))
		}
		rows = append(rows, rr, zr)
	}
	return "Figure 6 (middle): PARSEC speedups, golden reference vs zsim\n" + table(header, rows)
}

// ---------------------------------------------------------------------------
// Figure 6 (right): STREAM scalability under different contention models
// ---------------------------------------------------------------------------

// Fig6StreamResult holds STREAM's speedup under each contention model.
type Fig6StreamResult struct {
	Threads []int
	// Series maps model name -> speedup per thread count.
	Series map[string][]float64
	// Order lists series in presentation order.
	Order []string
}

// Figure6Stream reproduces the STREAM contention-model comparison: no
// contention, the analytical M/D/1 model, the event-driven DDR3 weave model,
// the cycle-driven (DRAMSim2-style) weave model, and the golden reference
// standing in for the real machine.
func Figure6Stream(opts Options) (*Fig6StreamResult, error) {
	res := &Fig6StreamResult{
		Threads: []int{1, 2, 3, 4, 5, 6},
		Series:  make(map[string][]float64),
		Order:   []string{"No contention", "Anl cont (MD1)", "Ev-driven cont", "Cycle-driven cont", "Real (golden)"},
	}
	params := trace.MustLookup("stream")
	params.BlocksPerThread = opts.budgetBlocks(900)
	params.ScaleWork = true

	type variant struct {
		name string
		mut  func(*config.System)
		gold bool
	}
	variants := []variant{
		{"No contention", func(c *config.System) { c.Contention = false; c.MemModel = config.MemSimple }, false},
		{"Anl cont (MD1)", func(c *config.System) { c.Contention = false; c.MemModel = config.MemMD1 }, false},
		{"Ev-driven cont", func(c *config.System) { c.Contention = true; c.WeaveMem = config.WeaveMemDDR3 }, false},
		{"Cycle-driven cont", func(c *config.System) { c.Contention = true; c.WeaveMem = config.WeaveMemCycleDriven }, false},
		{"Real (golden)", nil, true},
	}
	for _, v := range variants {
		opts.logf("fig6 stream: %s", v.name)
		var cycles []float64
		for _, th := range res.Threads {
			cfg := config.WestmereValidation()
			cfg.HostThreads = opts.hostThreads()
			// STREAM saturates one memory controller; keep the validated
			// single-controller configuration.
			if v.gold {
				golden, err := baseline.RunGolden(cfg, trace.New("stream", params, th), 0)
				if err != nil {
					return nil, err
				}
				cycles = append(cycles, float64(golden.Metrics.Cycles))
				continue
			}
			v.mut(cfg)
			zres, err := runZSim(cfg, "stream", params, th, opts)
			if err != nil {
				return nil, err
			}
			cycles = append(cycles, float64(zres.Metrics.Cycles))
		}
		res.Series[v.name] = speedups(cycles)
	}
	return res, nil
}

// Format renders the STREAM scalability series.
func (r *Fig6StreamResult) Format() string {
	header := []string{"model"}
	for _, t := range r.Threads {
		header = append(header, fmt.Sprintf("%dt", t))
	}
	var rows [][]string
	for _, name := range r.Order {
		row := []string{name}
		for _, v := range r.Series[name] {
			row = append(row, f2(v))
		}
		rows = append(rows, row)
	}
	return "Figure 6 (right): STREAM speedup under different contention models\n" + table(header, rows)
}

// ---------------------------------------------------------------------------
// Table 4: thousand-core simulation performance
// ---------------------------------------------------------------------------

// Table4Row is one workload's simulator performance under the four models.
type Table4Row struct {
	Workload string
	MIPS     map[ModelKind]float64
	Slowdown map[ModelKind]float64
}

// Table4Result aggregates the thousand-core performance table.
type Table4Result struct {
	Cores int
	Rows  []Table4Row
	// HMeanMIPS is the harmonic mean of simulation MIPS per model.
	HMeanMIPS map[ModelKind]float64
}

// Table4 measures simulation performance (MIPS and slowdown vs native-rate
// execution of the same workload) on the tiled large chip for the four model
// combinations.
func Table4(opts Options) (*Table4Result, error) {
	return tableForCores(opts, opts.bigChipCores(1024), trace.Table4Names())
}

func tableForCores(opts Options, cores int, names []string) (*Table4Result, error) {
	tiles := maxInt(cores/16, 1)
	res := &Table4Result{Cores: tiles * 16, HMeanMIPS: make(map[ModelKind]float64)}
	perModel := make(map[ModelKind][]float64)
	for _, name := range names {
		params := trace.MustLookup(name)
		params.BlocksPerThread = opts.budgetBlocks(80)
		params.ScaleWork = false
		native := nativeRate(params, minInt(res.Cores, opts.hostThreads()))
		row := Table4Row{Workload: name, MIPS: make(map[ModelKind]float64), Slowdown: make(map[ModelKind]float64)}
		for _, model := range AllModels() {
			opts.logf("table4: %s %s", name, model)
			cfg := config.TiledChip(tiles, model.coreModel())
			cfg.Contention = model.contention()
			cfg.HostThreads = opts.hostThreads()
			zres, err := runZSim(cfg, name, params, res.Cores, opts)
			if err != nil {
				return nil, err
			}
			row.MIPS[model] = zres.Metrics.SimMIPS
			if zres.Metrics.SimMIPS > 0 && native > 0 {
				row.Slowdown[model] = native / zres.Metrics.SimMIPS
			}
			perModel[model] = append(perModel[model], zres.Metrics.SimMIPS)
		}
		res.Rows = append(res.Rows, row)
	}
	for model, vals := range perModel {
		res.HMeanMIPS[model] = stats.HMean(vals)
	}
	return res, nil
}

// Format renders the performance table.
func (r *Table4Result) Format() string {
	header := []string{"workload"}
	for _, m := range AllModels() {
		header = append(header, string(m)+" MIPS", string(m)+" slow")
	}
	var rows [][]string
	for _, row := range r.Rows {
		cols := []string{row.Workload}
		for _, m := range AllModels() {
			cols = append(cols, f1(row.MIPS[m]), f1(row.Slowdown[m])+"x")
		}
		rows = append(rows, cols)
	}
	out := fmt.Sprintf("Table 4: simulation performance, %d-core chip\n", r.Cores) + table(header, rows)
	out += "\nharmonic-mean MIPS:"
	for _, m := range AllModels() {
		out += fmt.Sprintf("  %s=%.1f", m, r.HMeanMIPS[m])
	}
	return out + "\n"
}

// ---------------------------------------------------------------------------
// Figure 7: single-thread simulator performance distribution
// ---------------------------------------------------------------------------

// Fig7Result holds, per model, the sorted per-workload simulation MIPS.
type Fig7Result struct {
	// MIPS[model] is sorted ascending (the paper plots the distribution).
	MIPS  map[ModelKind][]float64
	HMean map[ModelKind]float64
}

// Figure7 measures single-thread simulation speed over the SPEC-like suite
// for the four model combinations.
func Figure7(opts Options) (*Fig7Result, error) {
	res := &Fig7Result{MIPS: make(map[ModelKind][]float64), HMean: make(map[ModelKind]float64)}
	names := trace.SPECCPU2006()
	for _, model := range AllModels() {
		var vals []float64
		for _, name := range names {
			opts.logf("fig7: %s %s", name, model)
			cfg := config.WestmereValidation()
			cfg.CoreModel = model.coreModel()
			cfg.Contention = model.contention()
			cfg.HostThreads = 1 // single-thread simulator performance
			params := trace.MustLookup(name)
			params.BlocksPerThread = opts.budgetBlocks(500)
			zres, err := runZSim(cfg, name, params, 1, Options{Scale: opts.Scale, HostThreads: 1, Log: opts.Log})
			if err != nil {
				return nil, err
			}
			vals = append(vals, zres.Metrics.SimMIPS)
		}
		sortFloats(vals)
		res.MIPS[model] = vals
		res.HMean[model] = stats.HMean(vals)
	}
	return res, nil
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Format renders the distribution summary.
func (r *Fig7Result) Format() string {
	header := []string{"model", "min MIPS", "median MIPS", "max MIPS", "hmean MIPS"}
	var rows [][]string
	for _, m := range AllModels() {
		v := r.MIPS[m]
		if len(v) == 0 {
			continue
		}
		rows = append(rows, []string{string(m), f1(v[0]), f1(stats.Median(v)), f1(v[len(v)-1]), f1(r.HMean[m])})
	}
	return "Figure 7: single-thread simulation performance distribution (SPEC suite)\n" + table(header, rows)
}

// ---------------------------------------------------------------------------
// Figure 8: host scalability
// ---------------------------------------------------------------------------

// Fig8Result holds simulator speedup as host threads increase.
type Fig8Result struct {
	HostThreads []int
	// Speedup[model][i] is relative to 1 host thread.
	Speedup map[ModelKind][]float64
}

// Figure8 sweeps the number of host worker threads for the large-chip
// simulation and reports the simulator's self-relative speedup.
func Figure8(opts Options, workload string) (*Fig8Result, error) {
	if workload == "" {
		workload = "fluidanimate"
	}
	cores := opts.bigChipCores(1024)
	tiles := maxInt(cores/16, 1)
	maxHost := opts.hostThreads()
	var hostCounts []int
	for h := 1; h <= maxHost; h *= 2 {
		hostCounts = append(hostCounts, h)
	}
	if hostCounts[len(hostCounts)-1] != maxHost {
		hostCounts = append(hostCounts, maxHost)
	}
	res := &Fig8Result{HostThreads: hostCounts, Speedup: make(map[ModelKind][]float64)}
	params := trace.MustLookup(workload)
	params.BlocksPerThread = opts.budgetBlocks(60)

	for _, model := range []ModelKind{ModelIPC1NC, ModelOOOC} {
		var times []float64
		for _, h := range hostCounts {
			opts.logf("fig8: %s host=%d", model, h)
			cfg := config.TiledChip(tiles, model.coreModel())
			cfg.Contention = model.contention()
			zres, err := runZSim(cfg, workload, params, cores, Options{Scale: opts.Scale, HostThreads: h, Log: opts.Log})
			if err != nil {
				return nil, err
			}
			times = append(times, float64(zres.HostNanos))
		}
		sp := make([]float64, len(times))
		for i, t := range times {
			if t > 0 {
				sp[i] = times[0] / t
			}
		}
		res.Speedup[model] = sp
	}
	return res, nil
}

// Format renders the host-scalability curves.
func (r *Fig8Result) Format() string {
	header := []string{"model"}
	for _, h := range r.HostThreads {
		header = append(header, fmt.Sprintf("%d host", h))
	}
	var rows [][]string
	for _, m := range []ModelKind{ModelIPC1NC, ModelOOOC} {
		if r.Speedup[m] == nil {
			continue
		}
		row := []string{string(m)}
		for _, v := range r.Speedup[m] {
			row = append(row, f2(v)+"x")
		}
		rows = append(rows, row)
	}
	return "Figure 8: simulator speedup vs host threads (1024-core target)\n" + table(header, rows)
}

// ---------------------------------------------------------------------------
// Figure 9: target scalability
// ---------------------------------------------------------------------------

// Fig9Result holds hmean simulation MIPS for each simulated chip size.
type Fig9Result struct {
	Cores []int
	// HMeanMIPS[model][i] corresponds to Cores[i].
	HMeanMIPS map[ModelKind][]float64
}

// Figure9 measures aggregate simulation performance as the simulated chip
// grows (64, 256, 1024 cores in the paper; scaled by MaxCores here), using a
// subset of the Table 4 workloads.
func Figure9(opts Options) (*Fig9Result, error) {
	full := opts.bigChipCores(1024)
	sizes := []int{maxInt(full/16, 16), maxInt(full/4, 16), full}
	// Deduplicate in case MaxCores squeezed them together.
	sizes = dedupInts(sizes)
	names := []string{"blackscholes", "fluidanimate", "ocean", "fft"}
	res := &Fig9Result{Cores: nil, HMeanMIPS: make(map[ModelKind]([]float64))}
	for _, cores := range sizes {
		tres, err := tableForCores(opts, cores, names)
		if err != nil {
			return nil, err
		}
		res.Cores = append(res.Cores, tres.Cores)
		for _, m := range AllModels() {
			res.HMeanMIPS[m] = append(res.HMeanMIPS[m], tres.HMeanMIPS[m])
		}
	}
	return res, nil
}

func dedupInts(xs []int) []int {
	var out []int
	seen := map[int]bool{}
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Format renders the target-scalability table.
func (r *Fig9Result) Format() string {
	header := []string{"model"}
	for _, c := range r.Cores {
		header = append(header, fmt.Sprintf("%dc", c))
	}
	var rows [][]string
	for _, m := range AllModels() {
		row := []string{string(m)}
		for _, v := range r.HMeanMIPS[m] {
			row = append(row, f1(v))
		}
		rows = append(rows, row)
	}
	return "Figure 9: hmean simulation MIPS vs simulated chip size\n" + table(header, rows)
}

// ---------------------------------------------------------------------------
// Interval-length sensitivity (Section 4.2)
// ---------------------------------------------------------------------------

// IntervalResult holds the interval-length sensitivity sweep.
type IntervalResult struct {
	Intervals []uint64
	// PerfError[i] is the relative simulated-performance deviation vs the
	// 1Kcycle run; HostSpeedup[i] is host-time speedup vs the 1Kcycle run.
	PerfError   []float64
	HostSpeedup []float64
	Workload    string
}

// IntervalSensitivity sweeps the bound-weave interval length (1K, 10K, 100K
// cycles) and reports the accuracy/performance trade-off.
func IntervalSensitivity(opts Options, workload string) (*IntervalResult, error) {
	if workload == "" {
		workload = "fluidanimate"
	}
	cores := opts.bigChipCores(256)
	tiles := maxInt(cores/16, 1)
	params := trace.MustLookup(workload)
	params.BlocksPerThread = opts.budgetBlocks(80)
	res := &IntervalResult{Intervals: []uint64{1000, 10000, 100000}, Workload: workload}
	var baseCycles, baseTime float64
	for i, iv := range res.Intervals {
		opts.logf("intervals: %d", iv)
		cfg := config.TiledChip(tiles, config.CoreOOO)
		cfg.Contention = true
		cfg.IntervalCycles = iv
		zres, err := runZSim(cfg, workload, params, cores, opts)
		if err != nil {
			return nil, err
		}
		cycles := float64(zres.Metrics.Cycles)
		t := float64(zres.HostNanos)
		if i == 0 {
			baseCycles, baseTime = cycles, t
		}
		var perfErr, speedup float64
		if baseCycles > 0 {
			perfErr = (baseCycles/cycles - 1) // perf ∝ 1/cycles
		}
		if t > 0 {
			speedup = baseTime / t
		}
		res.PerfError = append(res.PerfError, perfErr)
		res.HostSpeedup = append(res.HostSpeedup, speedup)
	}
	return res, nil
}

// Format renders the sensitivity sweep.
func (r *IntervalResult) Format() string {
	header := []string{"interval", "perf error vs 1K", "host speedup vs 1K"}
	var rows [][]string
	for i, iv := range r.Intervals {
		rows = append(rows, []string{fmt.Sprintf("%dK cycles", iv/1000), pct(r.PerfError[i]), f2(r.HostSpeedup[i]) + "x"})
	}
	return fmt.Sprintf("Interval-length sensitivity (%s)\n", r.Workload) + table(header, rows)
}

// ---------------------------------------------------------------------------
// Mesh hotspot: NoC contention vs the zero-load network model
// ---------------------------------------------------------------------------

// MeshHotspotResult compares a tiled mesh chip under the zero-load network
// model (the paper's Section 4.3 assumption) and under the weave-phase NoC
// contention subsystem, on a hotspot workload whose write-shared lines
// funnel coherence traffic into a few L3 banks over an under-provisioned
// (narrow-link) mesh.
type MeshHotspotResult struct {
	Cores     int
	LinkBytes int
	Threads   []int
	// ThroughputZeroLoad and ThroughputNoC are aggregate instructions per
	// cycle at each thread count; ScalingZeroLoad/ScalingNoC normalize each
	// series to its own first point (the scaling-collapse view).
	ThroughputZeroLoad []float64
	ThroughputNoC      []float64
	ScalingZeroLoad    []float64
	ScalingNoC         []float64
	// QueueDelay, QueueStalls and MaxRouterDelay come from the contended
	// series' router counters at each thread count.
	QueueDelay     []uint64
	QueueStalls    []uint64
	MaxRouterDelay []uint64
}

// meshHotspotLinkBytes is the experiment's under-provisioned link width:
// 4-byte links make a line packet an 18-flit train, so the NoC saturates
// well before the banks do.
const meshHotspotLinkBytes = 4

// meshHotspotConfig builds the under-provisioned mesh chip the hotspot
// experiment and its benchmark share: IPC1 cores, weave contention on,
// narrow links.
func meshHotspotConfig(tiles int, nocContention bool) *config.System {
	cfg := config.TiledChip(tiles, config.CoreIPC1)
	cfg.Contention = true
	cfg.NOCContention = nocContention
	cfg.NOCLinkBytes = meshHotspotLinkBytes
	return cfg
}

// meshHotspotParams returns the hotspot traffic generator: heavily
// write-shared lines in a small shared region, so upgrade misses and
// invalidations keep forcing trips through the mesh to the same few L3
// banks.
func meshHotspotParams(opts Options) trace.Params {
	p := trace.DefaultParams()
	p.BlocksPerThread = opts.budgetBlocks(200)
	p.ScaleWork = false
	p.MemFraction = 0.4
	p.StoreFraction = 0.5
	p.SharedWorkingSet = 4 << 10
	p.SharedFraction = 0.7
	// Keep private data L2-resident so coherence traffic to the shared lines
	// — not DRAM — dominates, and the mesh is the bottleneck under test.
	p.WorkingSet = 128 << 10
	return p
}

// MeshHotspot runs the hotspot workload at increasing thread counts under
// both network models and reports the throughput-scaling collapse the
// zero-load model cannot see.
func MeshHotspot(opts Options) (*MeshHotspotResult, error) {
	cores := opts.bigChipCores(64)
	tiles := maxInt(cores/16, 1)
	cores = tiles * 16
	res := &MeshHotspotResult{Cores: cores, LinkBytes: meshHotspotLinkBytes}
	res.Threads = dedupInts([]int{maxInt(cores/4, 1), maxInt(cores/2, 1), cores})
	params := meshHotspotParams(opts)

	for _, nocOn := range []bool{false, true} {
		for _, th := range res.Threads {
			opts.logf("mesh-hotspot: noc=%v threads=%d", nocOn, th)
			cfg := meshHotspotConfig(tiles, nocOn)
			cfg.HostThreads = opts.hostThreads()
			zres, err := runZSim(cfg, "mesh-hotspot", params, th, opts)
			if err != nil {
				return nil, err
			}
			tput := 0.0
			if zres.Metrics.Cycles > 0 {
				tput = float64(zres.Metrics.Instrs) / float64(zres.Metrics.Cycles)
			}
			if nocOn {
				res.ThroughputNoC = append(res.ThroughputNoC, tput)
				res.QueueDelay = append(res.QueueDelay, zres.NOC.QueueDelay)
				res.QueueStalls = append(res.QueueStalls, zres.NOC.QueueStalls)
				res.MaxRouterDelay = append(res.MaxRouterDelay, zres.NOC.MaxRouterDelay)
			} else {
				res.ThroughputZeroLoad = append(res.ThroughputZeroLoad, tput)
			}
		}
	}
	res.ScalingZeroLoad = normalizeFirst(res.ThroughputZeroLoad)
	res.ScalingNoC = normalizeFirst(res.ThroughputNoC)
	return res, nil
}

// ---------------------------------------------------------------------------
// Deterministic parallel weave: scaling benchmark runs
// ---------------------------------------------------------------------------

// WeaveScalingResult holds one cell of the weave-scaling benchmark: the
// NoC-on mesh-hotspot workload run under the deterministic parallel weave
// at a given host parallelism.
type WeaveScalingResult struct {
	Cores      int
	Domains    int
	GoMaxProcs int
	SimMIPS    float64
	WallNanos  int64
}

// WeaveScaling runs the NoC-on mesh-hotspot workload once with the
// deterministic parallel weave at the given GOMAXPROCS (bound workers are
// pinned to the same count) and weave domain count. The parallel weave is
// bit-identical to the serial reference order by construction — the
// determinism tests gate that — so cells differ only in wall-clock and
// simulated MIPS, and comparing them measures weave-phase scaling.
func WeaveScaling(opts Options, gomaxprocs, domains int) (*WeaveScalingResult, error) {
	old := runtime.GOMAXPROCS(gomaxprocs)
	defer runtime.GOMAXPROCS(old)
	cores := opts.bigChipCores(64)
	tiles := maxInt(cores/16, 1)
	cores = tiles * 16
	cfg := meshHotspotConfig(tiles, true)
	cfg.WeaveDomains = domains
	cfg.HostThreads = gomaxprocs
	opts.HostThreads = gomaxprocs
	zres, err := runZSim(cfg, "weave-scaling", meshHotspotParams(opts), cores, opts)
	if err != nil {
		return nil, err
	}
	return &WeaveScalingResult{
		Cores:      cores,
		Domains:    domains,
		GoMaxProcs: gomaxprocs,
		SimMIPS:    zres.Metrics.SimMIPS,
		WallNanos:  zres.HostNanos,
	}, nil
}

// normalizeFirst divides each entry by the series' first entry.
func normalizeFirst(v []float64) []float64 {
	out := make([]float64, len(v))
	if len(v) == 0 || v[0] == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / v[0]
	}
	return out
}

// Format renders the hotspot comparison.
func (r *MeshHotspotResult) Format() string {
	header := []string{"series"}
	for _, t := range r.Threads {
		header = append(header, fmt.Sprintf("%dt", t))
	}
	row := func(name string, vals []float64, suffix string) []string {
		cols := []string{name}
		for _, v := range vals {
			cols = append(cols, f2(v)+suffix)
		}
		return cols
	}
	urow := func(name string, vals []uint64) []string {
		cols := []string{name}
		for _, v := range vals {
			cols = append(cols, fmt.Sprintf("%d", v))
		}
		return cols
	}
	rows := [][]string{
		row("zero-load IPC", r.ThroughputZeroLoad, ""),
		row("NoC-contended IPC", r.ThroughputNoC, ""),
		row("zero-load scaling", r.ScalingZeroLoad, "x"),
		row("NoC scaling", r.ScalingNoC, "x"),
		urow("router queue delay", r.QueueDelay),
		urow("router queue stalls", r.QueueStalls),
		urow("hottest router delay", r.MaxRouterDelay),
	}
	return fmt.Sprintf("Mesh hotspot: zero-load vs contended NoC (%d cores, %dB links)\n",
		r.Cores, r.LinkBytes) + table(header, rows)
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Oversubscribed client-server (Section 3.3 usage model)
// ---------------------------------------------------------------------------

// OversubResult holds the oversubscribed client-server experiment: a server
// process with more threads than cores that blocks on request waits and
// contends on a request-queue lock, plus a client process generating bursts
// — the h-store/memcached-style workload the virtualization layer exists
// for. The mid-interval scheduler's job is to keep simulated cores busy
// while threads block, so the experiment reports scheduling activity next
// to simulator throughput.
type OversubResult struct {
	Metrics *stats.Metrics
	// HostTime is the wall-clock duration of the run.
	HostTime time.Duration
	// Threads and Cores describe the oversubscription (Threads > Cores).
	Threads, Cores int
	Intervals      uint64
	BoundRounds    uint64
	// MidIntervalJoins counts threads pulled onto a freed core inside an
	// interval; ContextSwitches counts all placements.
	MidIntervalJoins uint64
	ContextSwitches  uint64
	LockBlocks       uint64
	SyscallBlocks    uint64
}

// OversubscribedClientServer runs the oversubscribed client-server workload
// on an 8-core chip with contention modeling enabled: 16 server threads that
// block in request waits and contend on request-queue locks, plus 4 client
// threads, all time-multiplexed by the scheduler.
func OversubscribedClientServer(opts Options) (*OversubResult, error) {
	cfg := config.SmallTest()
	cfg.NumCores = 8
	cfg.CoreModel = config.CoreIPC1
	cfg.Contention = true
	cfg.WeaveDomains = 4

	server := trace.DefaultParams()
	server.AddrSpace = 1
	server.BlocksPerThread = opts.budgetBlocks(2500)
	server.MemFraction = 0.35
	server.SharedWorkingSet = 4 << 20
	server.SharedFraction = 0.3
	// Pacing is derived from the block budget so the workload keeps its
	// blocking-heavy shape at test scales too (full scale: every ~40 blocks
	// a lock, every ~125 a blocking wait).
	server.LockEvery = maxInt(server.BlocksPerThread/60, 5) // shared request queue locks
	server.LockHoldBlocks = 2
	server.NumLocks = 4
	server.BlockedSyscallEvery = maxInt(server.BlocksPerThread/20, 10) // epoll/recv-style waits
	server.BlockedSyscallCycles = 8000

	client := trace.DefaultParams()
	client.AddrSpace = 2
	client.BlocksPerThread = opts.budgetBlocks(2000)
	client.MemFraction = 0.2
	client.BlockedSyscallEvery = maxInt(client.BlocksPerThread/10, 20)
	client.BlockedSyscallCycles = 4000

	serverThreads := 2 * cfg.NumCores
	clientThreads := cfg.NumCores / 2

	sys, err := boundweave.BuildSystem(cfg)
	if err != nil {
		return nil, err
	}
	sched := virt.NewScheduler(cfg.NumCores)
	sched.AddWorkload(trace.New("server", server, serverThreads))
	sched.AddWorkload(trace.New("client", client, clientThreads))
	sim := boundweave.NewSimulator(sys, sched, boundweave.Options{HostThreads: opts.hostThreads(), Seed: 11})

	start := time.Now()
	sim.Run()
	elapsed := time.Since(start)

	m := sys.Metrics()
	m.Workload = "client-server"
	m.HostNanos = elapsed.Nanoseconds()
	m.Finalize()
	return &OversubResult{
		Metrics:          m,
		HostTime:         elapsed,
		Threads:          serverThreads + clientThreads,
		Cores:            cfg.NumCores,
		Intervals:        sim.Intervals,
		BoundRounds:      sim.BoundRounds,
		MidIntervalJoins: sched.MidIntervalJoins.Load(),
		ContextSwitches:  sched.ContextSwitches.Load(),
		LockBlocks:       sched.LockBlocks.Load(),
		SyscallBlocks:    sched.SyscallBlocks.Load(),
	}, nil
}

// Format renders the experiment summary.
func (r *OversubResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Oversubscribed client-server: %d software threads on %d cores\n", r.Threads, r.Cores)
	fmt.Fprintf(&sb, "  %d instrs in %d cycles (%.1f sim-MIPS, host %v)\n",
		r.Metrics.Instrs, r.Metrics.Cycles, r.Metrics.SimMIPS, r.HostTime.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  %d intervals, %d bound rounds, %d mid-interval joins, %d context switches\n",
		r.Intervals, r.BoundRounds, r.MidIntervalJoins, r.ContextSwitches)
	fmt.Fprintf(&sb, "  %d lock blocks, %d blocking syscalls\n", r.LockBlocks, r.SyscallBlocks)
	return sb.String()
}
