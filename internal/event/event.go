// Package event implements the weave-phase parallel event-driven simulation
// framework described in Section 3.2.2 of the paper.
//
// The bound phase records, per core, a trace of the microarchitectural events
// each memory access generates beyond the private cache levels (L3 bank
// accesses, memory controller reads, writebacks). The weave phase replays
// those events in full order to model contention. Every event carries a lower
// bound on its execution cycle (established by the zero-load bound phase),
// its parents (events that must finish first) and its children.
//
// Components (cache banks, memory controllers, cores) are statically
// partitioned into domains. Each domain owns a priority queue of events and
// is driven by its own worker goroutine.
//
// # Deterministic parallel weave
//
// The engine's default mode (ModeParallel) runs the domains concurrently and
// still produces results bit-identical to the serial reference order. Three
// mechanisms make that possible:
//
//   - Crossing-event pre-creation: when an interval starts, every event of
//     the interval — not just the roots — is already sitting in its domain's
//     priority queue, keyed at its bound-phase lower bound (MinCycle). A
//     domain-crossing dependency therefore never inserts into a foreign
//     queue mid-run; the receiving domain already holds a lower-bounded
//     placeholder, exactly the scheme of the paper's Figure 4. Because
//     contention can only delay events, keys are only ever raised, so each
//     domain pops its events in their final (cycle, sequence) order.
//
//   - Per-domain committed horizons: each domain publishes, in an atomic
//     clock, the key of the event at the head of its queue — a lower bound
//     on every cycle at which the domain can still dispatch or hand off
//     work. A domain whose head event still has unfinished parents may
//     execute it at cycle C only once every parent's domain has advanced
//     past C; until then the head's key is re-raised to the tightest bound
//     its parents admit (their current queue keys, read atomically), which
//     is the bounded-skew rule applied per event rather than per domain.
//
//   - Bounded-skew parking: when a head's bound cannot be raised (a sending
//     domain's committed horizon has not yet passed the head's key), the
//     domain's worker parks on its wake channel. Horizon advances, head
//     re-keys and parent completions all deliver wakeups, so a lagging
//     domain stalls exactly the receivers that depend on it and nothing
//     else.
//
// Execution order at every component is therefore the pure (final dispatch
// cycle, sequence) function of the bound phase — independent of GOMAXPROCS,
// host threads and domain count — and because contention models are strictly
// per-component, simulated results are bit-identical to the serial reference
// order. (An arrival-order tie-break — executing whichever same-cycle event
// became ready first, as a plain push-when-ready heap does — is inherently
// serial: it depends on the global pop sequence. The (cycle, sequence) total
// order is what makes a parallel realisation possible at all.)
//
// ModeSerial is the escape hatch: it executes every interval inline on the
// caller, realising the same (cycle, sequence) order with no worker
// goroutines.
//
// ModeParallel requires parents to be created before their children (a
// parent's sequence number must be smaller than its child's), which the
// bound phase guarantees by construction: chains are recorded in program
// order on per-core slabs.
//
// The engine is persistent and rides on the shared worker pool of package
// internal/engine: the pool's workers are spawned once per simulation and
// parked between phases, so the steady-state interval loop performs no
// goroutine spawning and no heap allocation.
package event

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zsim/internal/arena"
	"zsim/internal/engine"
	"zsim/internal/runctl"
	"zsim/internal/telemetry"
)

// maxCycle is the horizon value published by a domain that has drained its
// queue: it can never send work again.
const maxCycle = ^uint64(0)

// Executor is the contention-model callback attached to an event: it receives
// the event itself (whose Ctx/Arg/Flag fields carry the model context) and
// the cycle at which the event is dispatched, and returns the cycle at which
// the event finishes (>= the dispatch cycle). Executors are typically shared
// package-level functions rather than per-event closures, so that building an
// interval's event graph allocates nothing.
type Executor func(ev *Event, dispatchCycle uint64) (finishCycle uint64)

// Event is one weave-phase event: an access hitting a component, a memory
// read, a writeback, or a core-side marker. Events are created during the
// bound phase (through a Slab) with their dependencies fully specified.
type Event struct {
	// Comp is the global component ID the event operates on; it determines
	// the event's domain.
	Comp int
	// MinCycle is the lower bound on the event's execution cycle, established
	// by the zero-load bound phase.
	MinCycle uint64
	// Exec computes the event's finish cycle given its dispatch cycle. A nil
	// Exec means the event finishes instantly at its dispatch cycle.
	Exec Executor
	// Ctx carries the executor's context (e.g. a *BankModel or a memory
	// contention model). Storing a pointer in an interface does not allocate,
	// so a shared Executor plus Ctx/Arg/Flag replaces a per-event closure.
	Ctx any
	// Arg is an executor-defined scalar (e.g. the access's line address).
	Arg uint64
	// Flag is an executor-defined boolean (e.g. miss-vs-hit or write-vs-read).
	Flag bool

	// Delay is the fixed parent-to-child delay: the event cannot be
	// dispatched before parentFinish + Delay (for each parent).
	Delay uint64

	children []*Event
	parents  []*Event

	// Mutable simulation state.
	pendingParents int32
	readyCycle     uint64 // max over parents of (finish + Delay), and MinCycle
	finishCycle    uint64
	done           atomic.Bool
	enqueued       bool

	// curKey is the cycle the event is currently keyed at in its domain's
	// queue (parallel mode only). It is monotone non-decreasing and always a
	// lower bound on the event's final dispatch cycle, so other domains read
	// it (atomically) to bound their own blocked heads; once the event is
	// popped for execution it freezes at the final key.
	curKey atomic.Uint64

	// seq is the event's deterministic creation sequence number (assigned by
	// its Slab from the slab's base + allocation index). It breaks
	// dispatch-cycle ties in the domain heaps, so same-cycle events at a
	// component execute in a reproducible order instead of heap-arrival
	// order.
	seq uint64
}

// Seq returns the event's deterministic creation sequence number.
func (e *Event) Seq() uint64 { return e.seq }

// AddChild declares that child depends on e (child cannot dispatch before e
// finishes plus child.Delay). In ModeParallel the parent must have been
// allocated before the child (e.seq < child.seq); per-core slabs recording
// chains in program order satisfy this by construction.
func (e *Event) AddChild(child *Event) {
	e.children = append(e.children, child)
	child.parents = append(child.parents, e)
	child.pendingParents++
}

// Parentless reports whether the event has no parents (it is a chain root
// that must be enqueued explicitly). Only meaningful before the engine runs.
func (e *Event) Parentless() bool { return e.pendingParents == 0 }

// Finished reports whether the event has executed.
func (e *Event) Finished() bool { return e.done.Load() }

// FinishCycle returns the cycle at which the event finished (valid only after
// Finished() is true).
func (e *Event) FinishCycle() uint64 { return e.finishCycle }

// NumChildren returns the number of declared children (used by tests).
func (e *Event) NumChildren() int { return len(e.children) }

// Slab is a per-core slab allocator for events. The bound phase allocates
// events from its core's slab; after the interval's weave phase completes the
// slab is recycled wholesale, avoiding generic heap allocation on the
// simulator's hot path (Section 3.2.1, "Tracing"). Events are allocated in
// fixed-size chunks so previously returned pointers remain valid as the slab
// grows. Chunks are allocated lazily, on the first Alloc that needs them, so
// building a 1,024-core simulator does not pay for event storage that cores
// with no shared-level accesses never use; when the slab is created with a
// construction arena (NewSlabIn), chunks are carved from it.
type Slab struct {
	chunks    [][]Event
	chunkSize int
	cur       int // index of the chunk being filled
	next      int // next free slot within the current chunk
	inUse     int
	arena     *arena.Arena
	seqBase   uint64
}

// SetSeqBase sets the base of the sequence numbers this slab assigns.
// Per-core slabs get disjoint bases (coreID << 32) so every event in an
// interval has a globally unique, bound-phase-deterministic sequence number.
func (s *Slab) SetSeqBase(base uint64) { s.seqBase = base }

// NewSlab creates a slab whose chunks hold n events each.
func NewSlab(n int) *Slab { return NewSlabIn(nil, n) }

// NewSlabIn creates a slab whose (lazily allocated) chunks of n events each
// are carved from the given construction arena (nil falls back to the heap).
func NewSlabIn(a *arena.Arena, n int) *Slab {
	if n < 16 {
		n = 16
	}
	s := arena.One[Slab](a)
	s.chunkSize = n
	s.arena = a
	return s
}

// Alloc returns a cleared event from the slab, growing it by whole chunks as
// needed. The recycled event's children and parents slices keep their
// capacity, so graphs rebuilt interval after interval stop allocating once
// the slab has warmed up.
func (s *Slab) Alloc() *Event {
	if len(s.chunks) == 0 {
		s.chunks = append(s.chunks, arena.Take[Event](s.arena, s.chunkSize))
	} else if s.next == s.chunkSize {
		s.cur++
		s.next = 0
		if s.cur == len(s.chunks) {
			s.chunks = append(s.chunks, arena.Take[Event](s.arena, s.chunkSize))
		}
	}
	e := &s.chunks[s.cur][s.next]
	s.next++
	children, parents := e.children[:0], e.parents[:0]
	*e = Event{children: children, parents: parents, seq: s.seqBase + uint64(s.inUse)}
	s.inUse++
	return e
}

// Reset recycles every event in the slab (whole-interval recycling).
func (s *Slab) Reset() {
	s.cur = 0
	s.next = 0
	s.inUse = 0
}

// InUse returns the number of live events.
func (s *Slab) InUse() int { return s.inUse }

// At returns the i-th live event (0 <= i < InUse()), in allocation order.
func (s *Slab) At(i int) *Event {
	return &s.chunks[i/s.chunkSize][i%s.chunkSize]
}

// queueItem orders events by (dispatch cycle, sequence). The seq field is
// copied out of the event at push time so heap comparisons stay
// pointer-chase-free. Component is deliberately NOT part of the key: every
// parent→child edge runs from a lower to a higher sequence number, which
// makes a blocked head's unfinished same-domain parents strictly
// later-keyed — the invariant that guarantees a blocked head can always be
// re-keyed strictly upward. (Per-component order is unaffected: events of
// one component are seq-ordered either way.)
type queueItem struct {
	ev    *Event
	cycle uint64
	seq   uint64
}

// itemForDet builds the deterministic (cycle, sequence) heap item for an
// event keyed at the given cycle.
func itemForDet(ev *Event, cycle uint64) queueItem {
	return queueItem{ev: ev, cycle: cycle, seq: ev.seq}
}

// itemLess is the deterministic (cycle, sequence) heap order.
func itemLess(a, b *queueItem) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

// eventPQ is a typed binary min-heap over queueItems. It replaces
// container/heap so pushes and pops move concrete queueItems instead of
// boxing them through interface{}.
type eventPQ []queueItem

func (q *eventPQ) push(it queueItem) {
	*q = append(*q, it)
	s := *q
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(&s[i], &s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (q *eventPQ) pop() (queueItem, bool) {
	s := *q
	n := len(s)
	if n == 0 {
		return queueItem{}, false
	}
	top := s[0]
	n--
	s[0] = s[n]
	*q = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && itemLess(&s[r], &s[l]) {
			m = r
		}
		if !itemLess(&s[m], &s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top, true
}

// fixHead raises the head's cycle key to newCycle (>= its current key) and
// restores the heap property by sifting it down. Used by the parallel path,
// where keys start at lower bounds and are only ever raised.
func (q *eventPQ) fixHead(newCycle uint64) {
	s := *q
	s[0].cycle = newCycle
	n := len(s)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && itemLess(&s[r], &s[l]) {
			m = r
		}
		if !itemLess(&s[m], &s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// Domain is one weave-phase domain: a set of components and a priority queue
// of their events. Domains are driven concurrently by the Engine's persistent
// workers.
type Domain struct {
	id int

	mu sync.Mutex
	pq eventPQ

	// horizon is the domain's committed-horizon clock: a lower bound on
	// every cycle at which the domain can still dispatch an event or raise a
	// child's ready cycle. It is published by the domain's own worker (the
	// single writer) from the head key of its queue before each step, and
	// jumps to maxCycle when the queue drains. Other domains read it to
	// bound their blocked heads (bounded skew).
	horizon atomic.Uint64

	// parked is set while the domain's worker is blocked on wakeCh; producers
	// (parent completions, horizon advances, head re-keys) check it to
	// deliver a wakeup.
	parked atomic.Bool
	// wakeCh carries wakeups to a parked worker (capacity 1: a buffered token
	// can never be lost, and spurious tokens just cause a re-check).
	wakeCh chan struct{}

	// Executed counts events executed in this domain (stats / load balance).
	// It is a pure function of the bound phase (the domain's event set).
	Executed uint64
	// CrossRetries counts inter-domain handoffs (synchronization overhead
	// indicator). With multiple cross-domain parents finishing concurrently
	// its attribution to a domain is host-timing-dependent; the total is not.
	CrossRetries uint64
	// HorizonParks counts how often the domain's worker parked waiting for a
	// sending domain's horizon (host-timing-dependent; stats only, never part
	// of simulated results).
	HorizonParks uint64
	// Wakes counts wakeup tokens delivered to this domain's worker (atomic:
	// producers in other domains deliver them; host-timing-dependent, stats
	// only).
	Wakes atomic.Uint64
	// StallNanos accumulates host wall time the domain's worker spent parked
	// waiting on horizons. Single writer (the domain's own worker); read at
	// interval boundaries, between Runs. Stats only.
	StallNanos int64
}

// ID returns the domain's index.
func (d *Domain) ID() int { return d.id }

// wake delivers a non-blocking wakeup token to the domain's worker.
func (d *Domain) wake() {
	select {
	case d.wakeCh <- struct{}{}:
		d.Wakes.Add(1)
	default:
	}
}

// Mode selects the weave execution discipline.
type Mode int

const (
	// ModeParallel (the default) runs domains concurrently on the worker
	// pool with pre-created lower-bounded events and committed horizons;
	// results are bit-identical to ModeSerial for a fixed seed, regardless
	// of GOMAXPROCS, host threads or domain count. See the package comment.
	ModeParallel Mode = iota
	// ModeSerial executes every interval inline on the caller, in the same
	// deterministic (cycle, sequence) order the parallel workers realise.
	// It is the escape hatch (no worker goroutines touched) and the
	// reference the parallel path is tested against.
	ModeSerial
)

func (m Mode) String() string {
	if m == ModeSerial {
		return "serial"
	}
	return "parallel"
}

// Engine coordinates the weave phase: it owns the domains, maps components to
// domains, accepts the root events of each interval, and runs all domains in
// parallel until every event has executed. Engines are persistent: one engine
// serves every interval of a simulation, reusing the worker pool, queues and
// scratch buffers.
type Engine struct {
	domains []*Domain
	// compDomain is a dense component-to-domain table (-1 = unassigned, fall
	// back to comp mod nDomains). Component IDs are small sequential integers
	// assigned by the system builder, so a slice beats a map on the hot path.
	compDomain []int32
	// remaining counts events enqueued but not yet finished across all
	// domains.
	remaining atomic.Int64
	maxFinish atomic.Uint64

	// parkedCount counts domains currently parked, so horizon advances can
	// skip the wake sweep entirely on the (common) no-waiter path.
	parkedCount atomic.Int32

	// roots collects the events enqueued since the last Run, so Run can
	// register their descendants without scanning (and copying) the domain
	// queues.
	roots []*Event
	// stack is the reusable scratch stack for iterative descendant
	// registration.
	stack []*Event

	// pool is the persistent worker pool that drives the domains; when the
	// engine shares a pool with the bound phase (the unified execution
	// engine), ownsPool is false and Close leaves the pool to its owner.
	pool       *engine.Pool
	ownsPool   bool
	domainTask func(int)
	closed     atomic.Bool

	// aborted flags a fault in one of the parallel domain workers. Domain
	// workers cannot rely on the pool's generic panic re-raise: sibling
	// domains park waiting for horizons that a dying domain would never
	// advance, leaving them parked forever and the pool's WaitGroup waiting.
	// The panicking worker instead records the capture in domPanic, raises
	// aborted, wakes every parked domain, and returns normally; the others
	// observe aborted on their loop and park paths and bail out, and Run
	// re-raises the capture on the orchestrating goroutine.
	aborted  atomic.Bool
	domPanic atomic.Pointer[runctl.PanicError]

	// trace, when set, receives per-domain execution and stall slices
	// (Chrome-trace export). Written between Runs, read by domain workers.
	trace *telemetry.TraceSink

	mode Mode
}

// NewEngine creates an engine with n domains on a private worker pool. The
// pool's workers are spawned lazily on the first parallel Run, so an engine
// that is built but never run costs nothing.
func NewEngine(nDomains int) *Engine {
	return NewEngineOnPool(nDomains, nil)
}

// NewEngineOnPool creates an engine with n domains driven by the given
// persistent worker pool; the bound-weave simulator passes the same pool it
// uses for the bound phase, so one set of parked workers serves both phases.
// The pool must have at least n workers for the parallel path to be used
// (fewer workers force the inline path). A nil pool gives the engine a
// private pool that Close shuts down.
func NewEngineOnPool(nDomains int, pool *engine.Pool) *Engine {
	if nDomains < 1 {
		nDomains = 1
	}
	e := &Engine{}
	if pool == nil {
		pool = engine.NewPool(nDomains)
		e.ownsPool = true
	}
	e.pool = pool
	for i := 0; i < nDomains; i++ {
		e.domains = append(e.domains, &Domain{
			id:     i,
			wakeCh: make(chan struct{}, 1),
		})
	}
	e.domainTask = e.runDomainByIndex
	return e
}

// SetMode selects the execution discipline (ModeParallel is the default).
// It must not be called while events are enqueued or the engine is mid-Run:
// the mode governs how Enqueue keys the domain queues.
func (e *Engine) SetMode(m Mode) { e.mode = m }

// GetMode returns the engine's execution discipline.
func (e *Engine) GetMode() Mode { return e.mode }

// SetTrace attaches (or, with nil, detaches) a trace sink that receives one
// "weave" slice per domain per parallel Run plus a "stall" slice for every
// horizon park. Must be called between Runs.
func (e *Engine) SetTrace(t *telemetry.TraceSink) { e.trace = t }

// Telemetry sums the per-domain skew diagnostics: horizon parks, delivered
// wakeups, inter-domain handoffs and parked wall time. Call between Runs (the
// counters are written by domain workers while a Run is in flight).
func (e *Engine) Telemetry() (parks, wakes, handoffs uint64, stallNanos int64) {
	for _, d := range e.domains {
		parks += d.HorizonParks
		wakes += d.Wakes.Load()
		handoffs += d.CrossRetries
		stallNanos += d.StallNanos
	}
	return
}

// NumDomains returns the number of domains.
func (e *Engine) NumDomains() int { return len(e.domains) }

// Domain returns domain i.
func (e *Engine) Domain(i int) *Domain { return e.domains[i] }

// AssignComponent maps a component ID to a domain. Components not assigned
// explicitly default to domain (comp mod nDomains).
func (e *Engine) AssignComponent(comp, domain int) {
	if comp < 0 {
		return
	}
	for comp >= len(e.compDomain) {
		e.compDomain = append(e.compDomain, -1)
	}
	e.compDomain[comp] = int32(domain % len(e.domains))
}

// DomainOf returns the domain index owning the component.
func (e *Engine) DomainOf(comp int) int {
	if comp >= 0 && comp < len(e.compDomain) {
		if d := e.compDomain[comp]; d >= 0 {
			return int(d)
		}
	}
	d := comp % len(e.domains)
	if d < 0 {
		d += len(e.domains)
	}
	return d
}

// Enqueue submits a root event (one with no parents) for execution in its
// component's domain. Events with parents are pre-created in their domains'
// queues when Run starts (parallel mode) or enqueued when their last parent
// finishes (serial mode); only roots need explicit enqueueing.
func (e *Engine) Enqueue(ev *Event) {
	ev.readyCycle = ev.MinCycle
	ev.enqueued = true
	e.remaining.Add(1)
	d := e.domains[e.DomainOf(ev.Comp)]
	ev.curKey.Store(ev.MinCycle)
	d.mu.Lock()
	d.pq.push(itemForDet(ev, ev.MinCycle))
	d.mu.Unlock()
	e.roots = append(e.roots, ev)
}

// registerDescendants walks the dependency graph from the roots enqueued
// since the last Run, adds every not-yet-enqueued descendant to the
// remaining counter (so Run knows when the graph is fully executed), and
// pre-creates each descendant in its domain's queue at its lower bound — the
// crossing-event pre-creation that lets domains run concurrently without
// mid-run insertions into foreign queues. The walk is iterative over a
// reusable stack: no recursion, no per-Run allocation (queue capacity is
// retained across intervals).
func (e *Engine) registerDescendants() {
	stack := append(e.stack[:0], e.roots...)
	for len(stack) > 0 {
		ev := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range ev.children {
			if !ch.enqueued {
				ch.enqueued = true
				e.remaining.Add(1)
				if ch.readyCycle < ch.MinCycle {
					ch.readyCycle = ch.MinCycle
				}
				ch.curKey.Store(ch.MinCycle)
				// No lock: workers have not started yet.
				e.domains[e.DomainOf(ch.Comp)].pq.push(itemForDet(ch, ch.MinCycle))
				stack = append(stack, ch)
			}
		}
	}
	e.stack = stack[:0]
	e.roots = e.roots[:0]
}

// Reset zeroes the per-domain statistics for warm-simulator reuse. The
// engine must be quiescent (between Runs) and must not have aborted: an
// aborted engine's queues may still hold unexecuted events and must be
// Closed, not reused. Component-to-domain assignments, queue capacities and
// the worker pool all persist — they are pure functions of the system shape.
func (e *Engine) Reset() {
	for _, d := range e.domains {
		d.Executed = 0
		d.CrossRetries = 0
		d.HorizonParks = 0
		d.Wakes.Store(0)
		d.StallNanos = 0
	}
}

// Close marks the engine closed (subsequent Runs use the inline path) and
// shuts down its worker pool if the engine owns one. Close is idempotent and
// safe to call on an engine that never ran; it must not be called on a
// shared pool's engine while that pool is mid-Run.
func (e *Engine) Close() {
	e.closed.Store(true)
	if e.ownsPool {
		e.pool.Close()
	}
}

// isClosed reports whether Close has been called (or the shared pool has
// been shut down).
func (e *Engine) isClosed() bool {
	return e.closed.Load() || e.pool.Closed()
}

// runDomainByIndex adapts runDomain to the pool's worker-index task shape.
// It is bound once at construction so Run never allocates a closure. It also
// owns the domain-abort protocol: a panic in this domain is captured here,
// every parked sibling is woken so it can observe the abort, and the worker
// returns normally (see the aborted field).
func (e *Engine) runDomainByIndex(i int) {
	dom := e.domains[i]
	defer func() {
		if r := recover(); r != nil {
			e.domPanic.CompareAndSwap(nil, runctl.NewPanicError(r, i))
			e.aborted.Store(true)
			for _, od := range e.domains {
				if od != dom && od.parked.Load() {
					od.wake()
				}
			}
		}
	}()
	if e.trace != nil {
		t0 := time.Now()
		before := dom.Executed
		e.runDomain(dom)
		e.trace.Add(telemetry.TrackDomain(dom.id), "weave", t0, time.Since(t0), dom.Executed-before)
		return
	}
	e.runDomain(dom)
}

// Run executes all enqueued events (and their descendants) to completion.
// It returns the largest finish cycle observed (the interval's actual end).
func (e *Engine) Run() uint64 {
	// Register all descendants so the termination condition is exact and
	// pre-create them in their domain queues at their lower bounds.
	e.registerDescendants()
	e.maxFinish.Store(0)
	if e.remaining.Load() == 0 {
		return 0
	}

	if e.mode == ModeSerial || len(e.domains) == 1 || runtime.GOMAXPROCS(0) == 1 ||
		e.isClosed() || e.pool.Size() < len(e.domains) {
		// Serial mode, or effective host parallelism is one (or the workers
		// are gone, or the pool is too small to give every domain its own
		// worker — domains park mid-run, so they cannot share workers): drain
		// the pre-created queues on the caller, globally earliest-first. Same
		// discipline, same results, no goroutines.
		e.runInlinePreloaded()
		return e.maxFinish.Load()
	}
	for _, d := range e.domains {
		d.horizon.Store(0)
		// Drain any stale wakeup left over from the previous interval's
		// termination (or abort) broadcast.
		select {
		case <-d.wakeCh:
		default:
		}
	}
	e.parkedCount.Store(0)
	e.pool.Run(len(e.domains), e.domainTask)
	if pe := e.domPanic.Swap(nil); pe != nil {
		// A domain worker panicked: its unexecuted events are abandoned
		// (the run is being torn down), so re-raise on the orchestrator
		// after clearing the abort flag. The engine must be Closed, not
		// reused, after an aborted run.
		e.aborted.Store(false)
		panic(pe)
	}
	return e.maxFinish.Load()
}

// runInlinePreloaded is the single-threaded executor: ModeSerial always uses
// it, and ModeParallel falls back to it when effective host parallelism is
// one. It drains the pre-created domain queues on the caller, taking the
// globally smallest (cycle, sequence) head each step and applying the same
// key-raising discipline as the concurrent workers. Because keys are lower
// bounds raised toward their final values, this executes every component's
// events in exactly the order the concurrent path does — and never parks:
// a blocked global minimum always has a strictly later-keyed unfinished
// parent, so its key strictly rises.
func (e *Engine) runInlinePreloaded() {
	var localMax uint64
	for {
		var best *Domain
		for _, d := range e.domains {
			if len(d.pq) > 0 && (best == nil || itemLess(&d.pq[0], &best.pq[0])) {
				best = d
			}
		}
		if best == nil {
			break
		}
		head := &best.pq[0]
		ev := head.ev
		if ev.pendingParents == 0 {
			if ev.readyCycle > head.cycle {
				// The key was a lower bound; the final ready cycle is known
				// now that every parent has finished. Raise and re-place.
				best.pq.fixHead(ev.readyCycle)
				ev.curKey.Store(ev.readyCycle)
				continue
			}
			it := *head
			best.pq.pop()
			if f := e.execute(best, it); f > localMax {
				localMax = f
			}
			continue
		}
		// Blocked global minimum: every unfinished parent is keyed strictly
		// above it (a parent keyed at the same cycle would sort before its
		// child and be the global minimum itself), so the bound strictly
		// raises the key — guaranteed progress without parking.
		lb := e.blockedBoundInline(ev, head.cycle)
		best.pq.fixHead(lb)
		ev.curKey.Store(lb)
	}
	e.mergeMaxFinish(localMax)
}

// blockedBoundInline returns the tightest known lower bound on the final key
// of a blocked head in the single-threaded preloaded path, where every
// parent's current key can be read directly.
func (e *Engine) blockedBoundInline(ev *Event, headCycle uint64) uint64 {
	lb := ev.readyCycle
	if lb < ev.MinCycle {
		lb = ev.MinCycle
	}
	for _, p := range ev.parents {
		if p.done.Load() {
			continue
		}
		c := p.curKey.Load() + ev.Delay
		if c < p.curKey.Load() {
			c = maxCycle // overflow guard
		}
		if c > lb {
			lb = c
		}
	}
	if lb <= headCycle {
		panic("event: dependency graph violates creation order (a parent was allocated after its child); ModeParallel requires parent.Seq() < child.Seq()")
	}
	return lb
}

// blockedBound returns a lower bound on the final key of dom's blocked head,
// using only information that is safe to read concurrently: the head's own
// ready cycle (guarded by dom.mu, which the caller holds), each unfinished
// parent's current queue key (atomic, monotone, always a lower bound on its
// dispatch) and — for cross-domain parents — the sending domain's committed
// horizon. A bound above the head's current key means the head can be
// re-keyed and the domain keeps running; a bound at the key means a sending
// domain has not yet advanced past it and the caller must wait (bounded
// skew).
func (e *Engine) blockedBound(dom *Domain, ev *Event, headCycle uint64) uint64 {
	lb := ev.readyCycle
	if lb < ev.MinCycle {
		lb = ev.MinCycle
	}
	for _, p := range ev.parents {
		if p.done.Load() {
			// The parent finished; its contribution lands in ev.readyCycle
			// via childReady (if it has not yet, the pending update will
			// deliver a wakeup — the bound stays conservative either way).
			continue
		}
		b := p.curKey.Load()
		pd := e.DomainOf(p.Comp)
		if pd != dom.id {
			// The sending domain's horizon can be ahead of a stale curKey
			// read, but never ahead of an *unexecuted* parent's key: re-check
			// done after loading the horizon so the bound stays valid.
			h := e.domains[pd].horizon.Load()
			if p.done.Load() {
				continue
			}
			if h > b {
				b = h
			}
			if p.MinCycle > b {
				b = p.MinCycle
			}
		} else if b <= headCycle {
			// A same-domain unfinished parent sits in the same queue, so its
			// key is at least the head's; equality means the parent sorts
			// after its child — a graph built out of creation order.
			panic("event: dependency graph violates creation order (a parent was allocated after its child); ModeParallel requires parent.Seq() < child.Seq()")
		}
		c := b + ev.Delay
		if c < b {
			c = maxCycle // overflow guard
		}
		if c > lb {
			lb = c
		}
	}
	return lb
}

// rekeyHead raises dom's head key to lb (caller holds dom.mu) and wakes any
// parked domain holding one of the head's children: their blocked heads may
// bound against this event's key, and the sending domain's horizon alone
// does not advertise the raise.
func (e *Engine) rekeyHead(dom *Domain, ev *Event, lb uint64) {
	dom.pq.fixHead(lb)
	ev.curKey.Store(lb)
	if e.parkedCount.Load() > 0 {
		for _, ch := range ev.children {
			if chd := e.domains[e.DomainOf(ch.Comp)]; chd != dom && chd.parked.Load() {
				chd.wake()
			}
		}
	}
}

// advanceHorizon publishes c as dom's committed horizon (single writer: the
// domain's own worker) and wakes parked domains, whose blocked heads may
// bound against it. The no-waiter fast path is one atomic load.
func (e *Engine) advanceHorizon(dom *Domain, c uint64) {
	if dom.horizon.Load() >= c {
		return
	}
	dom.horizon.Store(c)
	if e.parkedCount.Load() > 0 {
		for _, od := range e.domains {
			if od != dom && od.parked.Load() {
				od.wake()
			}
		}
	}
}

// runDomain drains one domain's pre-created queue, keeping the domain's
// committed horizon published and executing events as their keys become
// final. A head whose bound cannot rise parks on the wake channel until a
// sending domain advances (bounded skew).
func (e *Engine) runDomain(dom *Domain) {
	var localMax uint64
	idleSpins := 0
	for {
		if e.aborted.Load() {
			break
		}
		dom.mu.Lock()
		if len(dom.pq) == 0 {
			dom.mu.Unlock()
			break
		}
		head := &dom.pq[0]
		ev := head.ev
		headCycle := head.cycle
		// Publish the committed horizon before acting on the head: nothing
		// in this domain — including the event about to execute — can
		// dispatch or finish below the head's key.
		e.advanceHorizon(dom, headCycle)
		if ev.pendingParents == 0 {
			if ev.readyCycle > headCycle {
				e.rekeyHead(dom, ev, ev.readyCycle)
				dom.mu.Unlock()
				idleSpins = 0
				continue
			}
			it := *head
			dom.pq.pop()
			dom.mu.Unlock()
			if f := e.execute(dom, it); f > localMax {
				localMax = f
			}
			idleSpins = 0
			continue
		}
		lb := e.blockedBound(dom, ev, headCycle)
		if lb > headCycle {
			e.rekeyHead(dom, ev, lb)
			dom.mu.Unlock()
			idleSpins = 0
			continue
		}
		dom.mu.Unlock()
		// The head is pinned at its key behind a sending domain that has not
		// committed past it. Spin briefly — horizons advance at event
		// granularity — then park.
		idleSpins++
		if idleSpins <= 8 {
			runtime.Gosched()
			continue
		}
		// Bounded parking: publish that we are parked, re-check the bound
		// under the lock (every producer — parent completion, horizon
		// advance, head re-key, abort — updates state before checking
		// parked, so a wakeup cannot be lost), then block.
		dom.parked.Store(true)
		e.parkedCount.Add(1)
		canProgress := true
		dom.mu.Lock()
		if len(dom.pq) > 0 {
			h := &dom.pq[0]
			canProgress = h.ev.pendingParents == 0 ||
				e.blockedBound(dom, h.ev, h.cycle) > h.cycle
		}
		dom.mu.Unlock()
		if !canProgress && !e.aborted.Load() {
			dom.HorizonParks++
			t0 := time.Now()
			<-dom.wakeCh
			stall := time.Since(t0)
			dom.StallNanos += int64(stall)
			e.trace.Add(telemetry.TrackDomain(dom.id), "stall", t0, stall, dom.HorizonParks)
		}
		dom.parked.Store(false)
		e.parkedCount.Add(-1)
		idleSpins = 0
	}
	// Drained (or aborting): this domain can never send work again.
	e.advanceHorizon(dom, maxCycle)
	e.mergeMaxFinish(localMax)
}

// execute dispatches one event, releases its children and returns its finish
// cycle.
func (e *Engine) execute(dom *Domain, item queueItem) uint64 {
	ev := item.ev
	dispatch := item.cycle
	if dispatch < ev.readyCycle {
		dispatch = ev.readyCycle
	}

	finish := dispatch
	if ev.Exec != nil {
		if f := ev.Exec(ev, dispatch); f > finish {
			finish = f
		}
	}
	ev.finishCycle = finish
	ev.done.Store(true)
	dom.Executed++

	// Release children before the final decrement so the termination
	// broadcast can only fire once every event is queued or done.
	for _, ch := range ev.children {
		e.childReady(dom, ch, finish)
	}
	if e.remaining.Add(-1) == 0 {
		for _, od := range e.domains {
			if od != dom && od.parked.Load() {
				od.wake()
			}
		}
	}
	return finish
}

func (e *Engine) mergeMaxFinish(v uint64) {
	for {
		cur := e.maxFinish.Load()
		if v <= cur || e.maxFinish.CompareAndSwap(cur, v) {
			return
		}
	}
}

// childReady records that one parent of ch finished at parentFinish. The
// child is already sitting in its domain's queue (pre-created at bound
// time); only its ready cycle and pending count are updated — under the
// child domain's lock, because two parents in different domains may finish
// concurrently — and the owning domain is woken if it parked on the bound.
func (e *Engine) childReady(parentDom *Domain, ch *Event, parentFinish uint64) {
	ready := parentFinish + ch.Delay
	chDom := e.domains[e.DomainOf(ch.Comp)]
	chDom.mu.Lock()
	if ch.readyCycle < ready {
		ch.readyCycle = ready
	}
	if ch.readyCycle < ch.MinCycle {
		ch.readyCycle = ch.MinCycle
	}
	ch.pendingParents--
	last := ch.pendingParents == 0
	chDom.mu.Unlock()
	if chDom != parentDom {
		if last {
			parentDom.CrossRetries++ // count inter-domain handoffs
		}
		if chDom.parked.Load() {
			chDom.wake()
		}
	}
}
