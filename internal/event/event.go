// Package event implements the weave-phase parallel event-driven simulation
// framework described in Section 3.2.2 of the paper.
//
// The bound phase records, per core, a trace of the microarchitectural events
// each memory access generates beyond the private cache levels (L3 bank
// accesses, memory controller reads, writebacks). The weave phase replays
// those events in full order to model contention. Every event carries a lower
// bound on its execution cycle (established by the zero-load bound phase),
// its parents (events that must finish first) and its children.
//
// Components (cache banks, memory controllers, cores) are statically
// partitioned into domains. Each domain owns a priority queue of events and
// is driven by its own worker goroutine. When a parent and child live in
// different domains, the child is handed to its domain when its last parent
// finishes; because every event has a lower bound, the handoff can enqueue
// the child directly at its final ready cycle — exactly the scheme of
// Figure 4 — which is what makes this accurate without conventional PDES
// synchronization.
//
// The engine is persistent and rides on the shared worker pool of package
// internal/engine: the pool's workers are spawned once per simulation and
// parked between phases, so the steady-state interval loop performs no
// goroutine spawning and no heap allocation.
//
// Ordering and determinism: every heap orders events by the deterministic
// (dispatch cycle, component, sequence) triple, where the sequence number is
// assigned at event-creation time by the per-core slabs and is therefore a
// pure function of the bound phase's (deterministic) trace. By default the
// engine executes every interval in the global reference order — the
// lexicographically smallest pending triple each step, inline on the caller
// — so weave results are reproducible for a fixed seed regardless of
// GOMAXPROCS, host threads or domain count. SetDeterministic(false) opts
// into the parallel path: each domain is driven by one pool worker (idle
// domains spin briefly, then park until a cross-domain handoff or the
// interval's completion wakes them). The parallel path keeps per-heap order
// deterministic but admits one reordering the reference order does not:
// a wall-clock-lagging domain can hand a child event to a domain that
// already popped a later-cycle event, so its results are reproducible only
// for a fixed host configuration.
package event

import (
	"runtime"
	"sync"
	"sync/atomic"

	"zsim/internal/arena"
	"zsim/internal/engine"
	"zsim/internal/runctl"
)

// Executor is the contention-model callback attached to an event: it receives
// the event itself (whose Ctx/Arg/Flag fields carry the model context) and
// the cycle at which the event is dispatched, and returns the cycle at which
// the event finishes (>= the dispatch cycle). Executors are typically shared
// package-level functions rather than per-event closures, so that building an
// interval's event graph allocates nothing.
type Executor func(ev *Event, dispatchCycle uint64) (finishCycle uint64)

// Event is one weave-phase event: an access hitting a component, a memory
// read, a writeback, or a core-side marker. Events are created during the
// bound phase (through a Slab) with their dependencies fully specified.
type Event struct {
	// Comp is the global component ID the event operates on; it determines
	// the event's domain.
	Comp int
	// MinCycle is the lower bound on the event's execution cycle, established
	// by the zero-load bound phase.
	MinCycle uint64
	// Exec computes the event's finish cycle given its dispatch cycle. A nil
	// Exec means the event finishes instantly at its dispatch cycle.
	Exec Executor
	// Ctx carries the executor's context (e.g. a *BankModel or a memory
	// contention model). Storing a pointer in an interface does not allocate,
	// so a shared Executor plus Ctx/Arg/Flag replaces a per-event closure.
	Ctx any
	// Arg is an executor-defined scalar (e.g. the access's line address).
	Arg uint64
	// Flag is an executor-defined boolean (e.g. miss-vs-hit or write-vs-read).
	Flag bool

	// Delay is the fixed parent-to-child delay: the event cannot be
	// dispatched before parentFinish + Delay (for each parent).
	Delay uint64

	children []*Event

	// Mutable simulation state.
	pendingParents int32
	readyCycle     uint64 // max over parents of (finish + Delay), and MinCycle
	finishCycle    uint64
	done           atomic.Bool
	enqueued       bool

	// seq is the event's deterministic creation sequence number (assigned by
	// its Slab from the slab's base + allocation index). Together with the
	// component ID it breaks dispatch-cycle ties in the domain heaps, so
	// same-cycle events at a component execute in a reproducible order
	// instead of heap-arrival order.
	seq uint64
}

// Seq returns the event's deterministic creation sequence number.
func (e *Event) Seq() uint64 { return e.seq }

// AddChild declares that child depends on e (child cannot dispatch before e
// finishes plus child.Delay).
func (e *Event) AddChild(child *Event) {
	e.children = append(e.children, child)
	child.pendingParents++
}

// Parentless reports whether the event has no parents (it is a chain root
// that must be enqueued explicitly). Only meaningful before the engine runs.
func (e *Event) Parentless() bool { return e.pendingParents == 0 }

// Finished reports whether the event has executed.
func (e *Event) Finished() bool { return e.done.Load() }

// FinishCycle returns the cycle at which the event finished (valid only after
// Finished() is true).
func (e *Event) FinishCycle() uint64 { return e.finishCycle }

// NumChildren returns the number of declared children (used by tests).
func (e *Event) NumChildren() int { return len(e.children) }

// Slab is a per-core slab allocator for events. The bound phase allocates
// events from its core's slab; after the interval's weave phase completes the
// slab is recycled wholesale, avoiding generic heap allocation on the
// simulator's hot path (Section 3.2.1, "Tracing"). Events are allocated in
// fixed-size chunks so previously returned pointers remain valid as the slab
// grows. Chunks are allocated lazily, on the first Alloc that needs them, so
// building a 1,024-core simulator does not pay for event storage that cores
// with no shared-level accesses never use; when the slab is created with a
// construction arena (NewSlabIn), chunks are carved from it.
type Slab struct {
	chunks    [][]Event
	chunkSize int
	cur       int // index of the chunk being filled
	next      int // next free slot within the current chunk
	inUse     int
	arena     *arena.Arena
	seqBase   uint64
}

// SetSeqBase sets the base of the sequence numbers this slab assigns.
// Per-core slabs get disjoint bases (coreID << 32) so every event in an
// interval has a globally unique, bound-phase-deterministic sequence number.
func (s *Slab) SetSeqBase(base uint64) { s.seqBase = base }

// NewSlab creates a slab whose chunks hold n events each.
func NewSlab(n int) *Slab { return NewSlabIn(nil, n) }

// NewSlabIn creates a slab whose (lazily allocated) chunks of n events each
// are carved from the given construction arena (nil falls back to the heap).
func NewSlabIn(a *arena.Arena, n int) *Slab {
	if n < 16 {
		n = 16
	}
	s := arena.One[Slab](a)
	s.chunkSize = n
	s.arena = a
	return s
}

// Alloc returns a cleared event from the slab, growing it by whole chunks as
// needed. The recycled event's children slice keeps its capacity, so graphs
// rebuilt interval after interval stop allocating once the slab has warmed
// up.
func (s *Slab) Alloc() *Event {
	if len(s.chunks) == 0 {
		s.chunks = append(s.chunks, arena.Take[Event](s.arena, s.chunkSize))
	} else if s.next == s.chunkSize {
		s.cur++
		s.next = 0
		if s.cur == len(s.chunks) {
			s.chunks = append(s.chunks, arena.Take[Event](s.arena, s.chunkSize))
		}
	}
	e := &s.chunks[s.cur][s.next]
	s.next++
	*e = Event{children: e.children[:0], seq: s.seqBase + uint64(s.inUse)}
	s.inUse++
	return e
}

// Reset recycles every event in the slab (whole-interval recycling).
func (s *Slab) Reset() {
	s.cur = 0
	s.next = 0
	s.inUse = 0
}

// InUse returns the number of live events.
func (s *Slab) InUse() int { return s.inUse }

// At returns the i-th live event (0 <= i < InUse()), in allocation order.
func (s *Slab) At(i int) *Event {
	return &s.chunks[i/s.chunkSize][i%s.chunkSize]
}

// queueItem orders events by (dispatch cycle, component, sequence): the
// deterministic total order of the weave heaps. The comp and seq fields are
// copied out of the event at push time so heap comparisons stay pointer-
// chase-free.
type queueItem struct {
	ev    *Event
	cycle uint64
	seq   uint64
	comp  int32
}

// itemFor builds the heap item for an event at the given dispatch cycle.
func itemFor(ev *Event, cycle uint64) queueItem {
	return queueItem{ev: ev, cycle: cycle, seq: ev.seq, comp: int32(ev.Comp)}
}

// itemLess is the deterministic (cycle, component, sequence) heap order.
func itemLess(a, b *queueItem) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	if a.comp != b.comp {
		return a.comp < b.comp
	}
	return a.seq < b.seq
}

// eventPQ is a typed binary min-heap over (cycle, component, sequence). It
// replaces container/heap so pushes and pops move concrete queueItems
// instead of boxing them through interface{}.
type eventPQ []queueItem

func (q *eventPQ) push(it queueItem) {
	*q = append(*q, it)
	s := *q
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(&s[i], &s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (q *eventPQ) pop() (queueItem, bool) {
	s := *q
	n := len(s)
	if n == 0 {
		return queueItem{}, false
	}
	top := s[0]
	n--
	s[0] = s[n]
	*q = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && itemLess(&s[r], &s[l]) {
			m = r
		}
		if !itemLess(&s[m], &s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top, true
}

// Domain is one weave-phase domain: a set of components and a priority queue
// of their events. Domains are driven concurrently by the Engine's persistent
// workers. (With lower-bounded events, handoffs enqueue children directly at
// their final ready cycle, so domains no longer expose a clock for crossings
// to poll.)
type Domain struct {
	id int

	mu sync.Mutex
	pq eventPQ

	// parked is set while the domain's worker is blocked on wakeCh; producers
	// pushing into an empty domain check it to deliver a wakeup.
	parked atomic.Bool
	// wakeCh carries wakeups to a parked worker (capacity 1: a buffered token
	// can never be lost, and spurious tokens just cause a re-check).
	wakeCh chan struct{}

	// Executed counts events executed in this domain (stats / load balance).
	Executed uint64
	// CrossRetries counts inter-domain handoffs (synchronization overhead
	// indicator).
	CrossRetries uint64
}

// ID returns the domain's index.
func (d *Domain) ID() int { return d.id }

func (d *Domain) push(ev *Event, cycle uint64) {
	d.mu.Lock()
	d.pq.push(itemFor(ev, cycle))
	d.mu.Unlock()
}

func (d *Domain) pop() (queueItem, bool) {
	d.mu.Lock()
	it, ok := d.pq.pop()
	d.mu.Unlock()
	return it, ok
}

// wake delivers a non-blocking wakeup token to the domain's worker.
func (d *Domain) wake() {
	select {
	case d.wakeCh <- struct{}{}:
	default:
	}
}

// Engine coordinates the weave phase: it owns the domains, maps components to
// domains, accepts the root events of each interval, and runs all domains in
// parallel until every event has executed. Engines are persistent: one engine
// serves every interval of a simulation, reusing the worker pool, queues and
// scratch buffers.
type Engine struct {
	domains []*Domain
	// compDomain is a dense component-to-domain table (-1 = unassigned, fall
	// back to comp mod nDomains). Component IDs are small sequential integers
	// assigned by the system builder, so a slice beats a map on the hot path.
	compDomain []int32
	// remaining counts events enqueued but not yet finished across all
	// domains.
	remaining atomic.Int64
	maxFinish atomic.Uint64

	// roots collects the events enqueued since the last Run, so Run can
	// register their descendants without scanning (and copying) the domain
	// queues.
	roots []*Event
	// stack is the reusable scratch stack for iterative descendant
	// registration.
	stack []*Event

	// pool is the persistent worker pool that drives the domains; when the
	// engine shares a pool with the bound phase (the unified execution
	// engine), ownsPool is false and Close leaves the pool to its owner.
	pool       *engine.Pool
	ownsPool   bool
	domainTask func(int)
	closed     atomic.Bool

	// aborted flags a fault in one of the parallel domain workers. Domain
	// workers cannot rely on the pool's generic panic re-raise: sibling
	// domains park waiting for cross-domain handoffs, so a dying domain
	// would leave them parked forever and the pool's WaitGroup waiting. The
	// panicking worker instead records the capture in domPanic, raises
	// aborted, wakes every parked domain, and returns normally; the others
	// observe aborted on their idle path and bail out, and Run re-raises the
	// capture on the orchestrating goroutine.
	aborted  atomic.Bool
	domPanic atomic.Pointer[runctl.PanicError]

	// deterministic (the default) executes multi-domain intervals inline in
	// the global (cycle, component, sequence) order, which makes weave
	// results reproducible for a fixed seed regardless of GOMAXPROCS, host
	// threads or the domain count. SetDeterministic(false) opts into the
	// parallel per-domain path: one pool worker per domain, maximum host
	// parallelism, but cross-domain handoff *arrival* order may then deviate
	// from the reference order when a lagging domain delivers a child whose
	// ready cycle undercuts events its target already popped, so results are
	// only reproducible on a fixed host configuration.
	deterministic bool
}

// NewEngine creates an engine with n domains on a private worker pool. The
// pool's workers are spawned lazily on the first parallel Run, so an engine
// that is built but never run costs nothing.
func NewEngine(nDomains int) *Engine {
	return NewEngineOnPool(nDomains, nil)
}

// NewEngineOnPool creates an engine with n domains driven by the given
// persistent worker pool; the bound-weave simulator passes the same pool it
// uses for the bound phase, so one set of parked workers serves both phases.
// The pool must have at least n workers for the parallel path to be used
// (fewer workers force the inline path). A nil pool gives the engine a
// private pool that Close shuts down.
func NewEngineOnPool(nDomains int, pool *engine.Pool) *Engine {
	if nDomains < 1 {
		nDomains = 1
	}
	e := &Engine{deterministic: true}
	if pool == nil {
		pool = engine.NewPool(nDomains)
		e.ownsPool = true
	}
	e.pool = pool
	for i := 0; i < nDomains; i++ {
		e.domains = append(e.domains, &Domain{
			id:     i,
			wakeCh: make(chan struct{}, 1),
		})
	}
	e.domainTask = e.runDomainByIndex
	return e
}

// SetDeterministic selects between the deterministic inline execution order
// (true, the default) and the parallel per-domain worker path (false). See
// the deterministic field for the tradeoff. It must not be called while the
// engine is mid-Run.
func (e *Engine) SetDeterministic(det bool) { e.deterministic = det }

// NumDomains returns the number of domains.
func (e *Engine) NumDomains() int { return len(e.domains) }

// Domain returns domain i.
func (e *Engine) Domain(i int) *Domain { return e.domains[i] }

// AssignComponent maps a component ID to a domain. Components not assigned
// explicitly default to domain (comp mod nDomains).
func (e *Engine) AssignComponent(comp, domain int) {
	if comp < 0 {
		return
	}
	for comp >= len(e.compDomain) {
		e.compDomain = append(e.compDomain, -1)
	}
	e.compDomain[comp] = int32(domain % len(e.domains))
}

// DomainOf returns the domain index owning the component.
func (e *Engine) DomainOf(comp int) int {
	if comp >= 0 && comp < len(e.compDomain) {
		if d := e.compDomain[comp]; d >= 0 {
			return int(d)
		}
	}
	d := comp % len(e.domains)
	if d < 0 {
		d += len(e.domains)
	}
	return d
}

// Enqueue submits a root event (one with no parents) for execution in its
// component's domain. Events with parents are enqueued automatically when
// their parents finish; only roots need explicit enqueueing.
func (e *Engine) Enqueue(ev *Event) {
	ev.readyCycle = ev.MinCycle
	ev.enqueued = true
	e.remaining.Add(1)
	d := e.domains[e.DomainOf(ev.Comp)]
	d.push(ev, ev.MinCycle)
	e.roots = append(e.roots, ev)
}

// registerDescendants walks the dependency graph from the roots enqueued
// since the last Run and adds every not-yet-enqueued descendant to the
// remaining counter, so Run knows when the graph is fully executed. The walk
// is iterative over a reusable stack: no recursion, no per-Run allocation.
func (e *Engine) registerDescendants() {
	stack := append(e.stack[:0], e.roots...)
	for len(stack) > 0 {
		ev := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range ev.children {
			if !ch.enqueued {
				ch.enqueued = true
				e.remaining.Add(1)
				stack = append(stack, ch)
			}
		}
	}
	e.stack = stack[:0]
	e.roots = e.roots[:0]
}

// Close marks the engine closed (subsequent Runs use the inline path) and
// shuts down its worker pool if the engine owns one. Close is idempotent and
// safe to call on an engine that never ran; it must not be called on a
// shared pool's engine while that pool is mid-Run.
func (e *Engine) Close() {
	e.closed.Store(true)
	if e.ownsPool {
		e.pool.Close()
	}
}

// isClosed reports whether Close has been called (or the shared pool has
// been shut down).
func (e *Engine) isClosed() bool {
	return e.closed.Load() || e.pool.Closed()
}

// runDomainByIndex adapts runDomain to the pool's worker-index task shape.
// It is bound once at construction so Run never allocates a closure. It also
// owns the domain-abort protocol: a panic in this domain is captured here,
// every parked sibling is woken so it can observe the abort, and the worker
// returns normally (see the aborted field).
func (e *Engine) runDomainByIndex(i int) {
	dom := e.domains[i]
	defer func() {
		if r := recover(); r != nil {
			e.domPanic.CompareAndSwap(nil, runctl.NewPanicError(r, i))
			e.aborted.Store(true)
			for _, od := range e.domains {
				if od != dom && od.parked.Load() {
					od.wake()
				}
			}
		}
	}()
	e.runDomain(dom)
}

// Run executes all enqueued events (and their descendants) to completion.
// It returns the largest finish cycle observed (the interval's actual end).
func (e *Engine) Run() uint64 {
	// Register all descendants so the termination condition is exact.
	e.registerDescendants()
	e.maxFinish.Store(0)
	if e.remaining.Load() == 0 {
		return 0
	}

	if e.deterministic || len(e.domains) == 1 || runtime.GOMAXPROCS(0) == 1 || e.isClosed() ||
		e.pool.Size() < len(e.domains) {
		// Deterministic mode, or effective host parallelism is one (or the
		// workers are gone, or the pool is too small to give every domain its
		// own worker — domains park mid-run, so they cannot share workers):
		// execute inline, globally earliest-first in (cycle, comp, seq) order.
		e.runInline()
	} else {
		for _, d := range e.domains {
			// Drain any stale wakeup left over from the previous interval's
			// termination (or abort) broadcast.
			select {
			case <-d.wakeCh:
			default:
			}
		}
		e.pool.Run(len(e.domains), e.domainTask)
		if pe := e.domPanic.Swap(nil); pe != nil {
			// A domain worker panicked: its unexecuted events are abandoned
			// (the run is being torn down), so re-raise on the orchestrator
			// after clearing the abort flag. The engine must be Closed, not
			// reused, after an aborted run.
			e.aborted.Store(false)
			panic(pe)
		}
	}
	return e.maxFinish.Load()
}

// runInline drains all domains on the caller's goroutine, executing the
// globally earliest pending event each step, with ties broken by the
// deterministic (cycle, component, sequence) order. This is the reference
// execution order: a fixed seed produces the same weave schedule no matter
// how many domains the components are partitioned into.
func (e *Engine) runInline() {
	var localMax uint64
	for e.remaining.Load() > 0 {
		var best *Domain
		var bestItem queueItem
		for _, d := range e.domains {
			if len(d.pq) > 0 && (best == nil || itemLess(&d.pq[0], &bestItem)) {
				best, bestItem = d, d.pq[0]
			}
		}
		if best == nil {
			break // unreachable: remaining > 0 implies a non-empty queue
		}
		it, _ := best.pop()
		if f := e.execute(best, it); f > localMax {
			localMax = f
		}
	}
	e.mergeMaxFinish(localMax)
}

// runDomain drains one domain's queue, executing events in dispatch-cycle
// order and handing finished events' children to their domains. An idle
// domain spins briefly (other domains may hand it events at any moment) and
// then parks on its wake channel.
func (e *Engine) runDomain(dom *Domain) {
	var localMax uint64
	idleSpins := 0
	for {
		item, ok := dom.pop()
		if !ok {
			if e.remaining.Load() == 0 || e.aborted.Load() {
				break
			}
			// The domain is idle but other domains still have work that may
			// hand events to us at any moment.
			idleSpins++
			if idleSpins <= 8 {
				runtime.Gosched()
				continue
			}
			// Bounded parking: publish that we are parked, re-check for work,
			// for termination and for a sibling's abort (all three producers
			// observe parked after their push / final decrement / abort
			// store, so a wakeup cannot be lost), then block.
			dom.parked.Store(true)
			if item, ok = dom.pop(); ok {
				dom.parked.Store(false)
			} else if e.remaining.Load() == 0 || e.aborted.Load() {
				dom.parked.Store(false)
				break
			} else {
				<-dom.wakeCh
				dom.parked.Store(false)
				idleSpins = 0
				continue
			}
		}
		idleSpins = 0
		if f := e.execute(dom, item); f > localMax {
			localMax = f
		}
	}
	e.mergeMaxFinish(localMax)
}

// execute dispatches one event, releases its children and returns its finish
// cycle.
func (e *Engine) execute(dom *Domain, item queueItem) uint64 {
	ev := item.ev
	dispatch := item.cycle
	if dispatch < ev.readyCycle {
		dispatch = ev.readyCycle
	}

	finish := dispatch
	if ev.Exec != nil {
		if f := ev.Exec(ev, dispatch); f > finish {
			finish = f
		}
	}
	ev.finishCycle = finish
	ev.done.Store(true)
	dom.Executed++

	// Release children before the final decrement so the termination
	// broadcast can only fire once every event is queued or done.
	for _, ch := range ev.children {
		e.childReady(dom, ch, finish)
	}
	if e.remaining.Add(-1) == 0 {
		for _, od := range e.domains {
			if od != dom && od.parked.Load() {
				od.wake()
			}
		}
	}
	return finish
}

func (e *Engine) mergeMaxFinish(v uint64) {
	for {
		cur := e.maxFinish.Load()
		if v <= cur || e.maxFinish.CompareAndSwap(cur, v) {
			return
		}
	}
}

// childReady records that one parent of ch finished at parentFinish; when the
// last parent finishes, the child is enqueued in its own domain (directly if
// same-domain, via an implicit crossing otherwise — with lower-bounded events
// the crossing reduces to enqueueing at the correct ready cycle, since the
// child's dispatch can never precede it).
func (e *Engine) childReady(parentDom *Domain, ch *Event, parentFinish uint64) {
	ready := parentFinish + ch.Delay
	// The child's ready cycle and pending-parent count are protected by the
	// child domain's lock: two parents in different domains may finish
	// concurrently.
	chDom := e.domains[e.DomainOf(ch.Comp)]
	chDom.mu.Lock()
	if ch.readyCycle < ready {
		ch.readyCycle = ready
	}
	if ch.readyCycle < ch.MinCycle {
		ch.readyCycle = ch.MinCycle
	}
	ch.pendingParents--
	last := ch.pendingParents == 0
	if last {
		chDom.pq.push(itemFor(ch, ch.readyCycle))
		if chDom != parentDom {
			parentDom.CrossRetries++ // count inter-domain handoffs
		}
	}
	chDom.mu.Unlock()
	if last && chDom != parentDom && chDom.parked.Load() {
		chDom.wake()
	}
}
