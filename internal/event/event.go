// Package event implements the weave-phase parallel event-driven simulation
// framework described in Section 3.2.2 of the paper.
//
// The bound phase records, per core, a trace of the microarchitectural events
// each memory access generates beyond the private cache levels (L3 bank
// accesses, memory controller reads, writebacks). The weave phase replays
// those events in full order to model contention. Every event carries a lower
// bound on its execution cycle (established by the zero-load bound phase),
// its parents (events that must finish first) and its children.
//
// Components (cache banks, memory controllers, cores) are statically
// partitioned into domains. Each domain owns a priority queue of events and
// is driven by its own goroutine. When a parent and child live in different
// domains, a domain-crossing event is enqueued in the child's domain; it polls
// the parent's completion, re-enqueueing itself at the parent domain's
// current cycle plus the parent-to-child delay until the parent has finished
// — exactly the scheme of Figure 4. Because every event has a lower bound,
// crossings never have to wait for a cycle that could precede their final
// execution cycle, which is what makes this accurate without conventional
// PDES synchronization.
package event

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor is the contention-model callback attached to an event: it receives
// the cycle at which the event is dispatched and returns the cycle at which
// the event finishes (>= the dispatch cycle).
type Executor func(dispatchCycle uint64) (finishCycle uint64)

// Event is one weave-phase event: an access hitting a component, a memory
// read, a writeback, or a core-side marker. Events are created during the
// bound phase (through a Slab) with their dependencies fully specified.
type Event struct {
	// Comp is the global component ID the event operates on; it determines
	// the event's domain.
	Comp int
	// MinCycle is the lower bound on the event's execution cycle, established
	// by the zero-load bound phase.
	MinCycle uint64
	// Exec computes the event's finish cycle given its dispatch cycle. A nil
	// Exec means the event finishes instantly at its dispatch cycle.
	Exec Executor

	// Delay is the fixed parent-to-child delay: the event cannot be
	// dispatched before parentFinish + Delay (for each parent).
	Delay uint64

	children []*Event

	// Mutable simulation state.
	pendingParents int32
	readyCycle     uint64 // max over parents of (finish + Delay), and MinCycle
	finishCycle    uint64
	done           atomic.Bool
	enqueued       bool
}

// AddChild declares that child depends on e (child cannot dispatch before e
// finishes plus child.Delay).
func (e *Event) AddChild(child *Event) {
	e.children = append(e.children, child)
	child.pendingParents++
}

// Parentless reports whether the event has no parents (it is a chain root
// that must be enqueued explicitly). Only meaningful before the engine runs.
func (e *Event) Parentless() bool { return e.pendingParents == 0 }

// Finished reports whether the event has executed.
func (e *Event) Finished() bool { return e.done.Load() }

// FinishCycle returns the cycle at which the event finished (valid only after
// Finished() is true).
func (e *Event) FinishCycle() uint64 { return e.finishCycle }

// NumChildren returns the number of declared children (used by tests).
func (e *Event) NumChildren() int { return len(e.children) }

// Slab is a per-core slab allocator for events. The bound phase allocates
// events from its core's slab; after the interval's weave phase completes the
// slab is recycled wholesale, avoiding generic heap allocation on the
// simulator's hot path (Section 3.2.1, "Tracing"). Events are allocated in
// fixed-size chunks so previously returned pointers remain valid as the slab
// grows.
type Slab struct {
	chunks    [][]Event
	chunkSize int
	cur       int // index of the chunk being filled
	next      int // next free slot within the current chunk
	inUse     int
}

// NewSlab creates a slab whose chunks hold n events each.
func NewSlab(n int) *Slab {
	if n < 16 {
		n = 16
	}
	return &Slab{chunks: [][]Event{make([]Event, n)}, chunkSize: n}
}

// Alloc returns a zeroed event from the slab, growing it by whole chunks as
// needed.
func (s *Slab) Alloc() *Event {
	if s.next == s.chunkSize {
		s.cur++
		s.next = 0
		if s.cur == len(s.chunks) {
			s.chunks = append(s.chunks, make([]Event, s.chunkSize))
		}
	}
	e := &s.chunks[s.cur][s.next]
	s.next++
	s.inUse++
	*e = Event{}
	return e
}

// Reset recycles every event in the slab (whole-interval recycling).
func (s *Slab) Reset() {
	s.cur = 0
	s.next = 0
	s.inUse = 0
}

// InUse returns the number of live events.
func (s *Slab) InUse() int { return s.inUse }

// At returns the i-th live event (0 <= i < InUse()), in allocation order.
func (s *Slab) At(i int) *Event {
	return &s.chunks[i/s.chunkSize][i%s.chunkSize]
}

// queueItem orders events by dispatch cycle.
type queueItem struct {
	ev    *Event
	cycle uint64
}

type eventPQ []queueItem

func (q eventPQ) Len() int            { return len(q) }
func (q eventPQ) Less(i, j int) bool  { return q[i].cycle < q[j].cycle }
func (q eventPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x interface{}) { *q = append(*q, x.(queueItem)) }
func (q *eventPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Domain is one weave-phase domain: a set of components, a priority queue of
// their events, and a logical clock. Domains are driven concurrently by the
// Engine.
type Domain struct {
	id int

	mu sync.Mutex
	pq eventPQ

	// cycle is the domain's current cycle, read by crossings from other
	// domains (updated atomically).
	cycle atomic.Uint64

	// Executed counts events executed in this domain (stats / load balance).
	Executed uint64
	// CrossRetries counts crossing re-enqueues (synchronization overhead
	// indicator).
	CrossRetries uint64
}

// ID returns the domain's index.
func (d *Domain) ID() int { return d.id }

// Cycle returns the domain's current cycle.
func (d *Domain) Cycle() uint64 { return d.cycle.Load() }

func (d *Domain) push(ev *Event, cycle uint64) {
	d.mu.Lock()
	heap.Push(&d.pq, queueItem{ev: ev, cycle: cycle})
	d.mu.Unlock()
}

func (d *Domain) pop() (queueItem, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.pq) == 0 {
		return queueItem{}, false
	}
	return heap.Pop(&d.pq).(queueItem), true
}

// Engine coordinates the weave phase: it owns the domains, maps components to
// domains, accepts the root events of each interval, and runs all domains in
// parallel until every event has executed.
type Engine struct {
	domains    []*Domain
	compDomain map[int]int
	// remaining counts events enqueued but not yet finished across all
	// domains (crossings excluded: they are bookkeeping, not real events).
	remaining atomic.Int64
}

// NewEngine creates an engine with n domains.
func NewEngine(nDomains int) *Engine {
	if nDomains < 1 {
		nDomains = 1
	}
	e := &Engine{compDomain: make(map[int]int)}
	for i := 0; i < nDomains; i++ {
		e.domains = append(e.domains, &Domain{id: i})
	}
	return e
}

// NumDomains returns the number of domains.
func (e *Engine) NumDomains() int { return len(e.domains) }

// Domain returns domain i.
func (e *Engine) Domain(i int) *Domain { return e.domains[i] }

// AssignComponent maps a component ID to a domain. Components not assigned
// explicitly default to domain (comp mod nDomains).
func (e *Engine) AssignComponent(comp, domain int) {
	e.compDomain[comp] = domain % len(e.domains)
}

// DomainOf returns the domain index owning the component.
func (e *Engine) DomainOf(comp int) int {
	if d, ok := e.compDomain[comp]; ok {
		return d
	}
	d := comp % len(e.domains)
	if d < 0 {
		d += len(e.domains)
	}
	return d
}

// Enqueue submits a root event (one with no parents) for execution in its
// component's domain. Events with parents are enqueued automatically when
// their parents finish; only roots need explicit enqueueing.
func (e *Engine) Enqueue(ev *Event) {
	ev.readyCycle = ev.MinCycle
	ev.enqueued = true
	e.remaining.Add(1)
	d := e.domains[e.DomainOf(ev.Comp)]
	d.push(ev, ev.MinCycle)
}

// countEvents walks the dependency graph from the roots and adds every
// not-yet-enqueued descendant to the remaining counter, so Run knows when the
// graph is fully executed.
func (e *Engine) registerDescendants(ev *Event) {
	for _, ch := range ev.children {
		if !ch.enqueued {
			ch.enqueued = true
			e.remaining.Add(1)
			e.registerDescendants(ch)
		}
	}
}

// Run executes all enqueued events (and their descendants) to completion,
// driving each domain with its own goroutine. It returns the largest finish
// cycle observed (the interval's actual end).
func (e *Engine) Run() uint64 {
	// Register all descendants so the termination condition is exact.
	for _, d := range e.domains {
		d.mu.Lock()
		items := append([]queueItem(nil), d.pq...)
		d.mu.Unlock()
		for _, it := range items {
			e.registerDescendants(it.ev)
		}
	}

	var wg sync.WaitGroup
	var maxFinish atomic.Uint64
	for _, d := range e.domains {
		wg.Add(1)
		go func(dom *Domain) {
			defer wg.Done()
			e.runDomain(dom, &maxFinish)
		}(d)
	}
	wg.Wait()
	// Reset domain clocks for the next interval.
	for _, d := range e.domains {
		d.cycle.Store(0)
	}
	return maxFinish.Load()
}

// runDomain drains one domain's queue, executing events in dispatch-cycle
// order and handing finished events' children to their domains.
func (e *Engine) runDomain(dom *Domain, maxFinish *atomic.Uint64) {
	idleSpins := 0
	for {
		item, ok := dom.pop()
		if !ok {
			if e.remaining.Load() == 0 {
				return
			}
			// The domain is idle but other domains still have work that may
			// hand events to us; advance our clock to infinity so crossings
			// waiting on us don't throttle, then yield.
			dom.cycle.Store(math.MaxUint64)
			idleSpins++
			if idleSpins > 64 {
				runtime.Gosched()
			}
			continue
		}
		idleSpins = 0
		ev := item.ev
		dispatch := item.cycle
		if dispatch < ev.readyCycle {
			dispatch = ev.readyCycle
		}
		dom.cycle.Store(dispatch)

		finish := dispatch
		if ev.Exec != nil {
			finish = ev.Exec(dispatch)
			if finish < dispatch {
				finish = dispatch
			}
		}
		ev.finishCycle = finish
		ev.done.Store(true)
		dom.Executed++
		e.remaining.Add(-1)

		for {
			cur := maxFinish.Load()
			if finish <= cur || maxFinish.CompareAndSwap(cur, finish) {
				break
			}
		}

		// Release children.
		for _, ch := range ev.children {
			e.childReady(dom, ch, finish)
		}
	}
}

// childReady records that one parent of ch finished at parentFinish; when the
// last parent finishes, the child is enqueued in its own domain (directly if
// same-domain, via an implicit crossing otherwise — with lower-bounded events
// the crossing reduces to enqueueing at the correct ready cycle, since the
// child's dispatch can never precede it).
func (e *Engine) childReady(parentDom *Domain, ch *Event, parentFinish uint64) {
	ready := parentFinish + ch.Delay
	// The child's ready cycle and pending-parent count are protected by the
	// child domain's lock: two parents in different domains may finish
	// concurrently.
	chDom := e.domains[e.DomainOf(ch.Comp)]
	chDom.mu.Lock()
	if ch.readyCycle < ready {
		ch.readyCycle = ready
	}
	if ch.readyCycle < ch.MinCycle {
		ch.readyCycle = ch.MinCycle
	}
	ch.pendingParents--
	if ch.pendingParents == 0 {
		heap.Push(&chDom.pq, queueItem{ev: ch, cycle: ch.readyCycle})
		if chDom != parentDom {
			parentDom.CrossRetries++ // count inter-domain handoffs
		}
	}
	chDom.mu.Unlock()
}
