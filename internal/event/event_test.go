package event

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"zsim/internal/runctl"
)

func TestSlabAllocAndReset(t *testing.T) {
	s := NewSlab(4)
	var evs []*Event
	for i := 0; i < 10; i++ { // forces growth past the first chunk
		e := s.Alloc()
		e.Comp = i
		evs = append(evs, e)
	}
	if s.InUse() != 10 {
		t.Fatalf("in-use count: %d", s.InUse())
	}
	// Growth must not invalidate earlier pointers.
	for i, e := range evs {
		if e.Comp != i {
			t.Fatalf("event %d corrupted after slab growth: comp=%d", i, e.Comp)
		}
	}
	s.Reset()
	if s.InUse() != 0 {
		t.Fatalf("reset should clear in-use count")
	}
	e := s.Alloc()
	if e.Comp != 0 || e.MinCycle != 0 || e.Exec != nil {
		t.Fatalf("recycled event should be zeroed")
	}
	// Minimum chunk size.
	tiny := NewSlab(1)
	if tiny.chunkSize != 16 {
		t.Fatalf("chunk size should clamp to 16, got %d", tiny.chunkSize)
	}
}

func TestSlabRecyclesChildCapacity(t *testing.T) {
	s := NewSlab(16)
	parent := s.Alloc()
	child := s.Alloc()
	parent.AddChild(child)
	if parent.NumChildren() != 1 {
		t.Fatalf("child not registered")
	}
	s.Reset()
	p2 := s.Alloc()
	if p2 != parent {
		t.Fatalf("reset should recycle the same slots in order")
	}
	if p2.NumChildren() != 0 {
		t.Fatalf("recycled event must not keep stale children")
	}
	// Appending a child to the recycled event must not allocate: the children
	// and parents slices keep their capacity across Reset.
	c2 := s.Alloc()
	allocs := testing.AllocsPerRun(1, func() {
		p2.children = p2.children[:0]
		c2.parents = c2.parents[:0]
		p2.AddChild(c2)
	})
	if allocs != 0 {
		t.Fatalf("AddChild on a recycled event should not allocate, got %v allocs", allocs)
	}
}

func TestEventPQOrdering(t *testing.T) {
	var q eventPQ
	cycles := []uint64{9, 3, 7, 1, 8, 2, 6, 0, 5, 4}
	evs := make([]Event, len(cycles))
	for i, c := range cycles {
		q.push(queueItem{ev: &evs[i], cycle: c})
	}
	var got []uint64
	for {
		it, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, it.cycle)
	}
	if len(got) != len(cycles) {
		t.Fatalf("expected %d pops, got %d", len(cycles), len(got))
	}
	for i, c := range got {
		if uint64(i) != c {
			t.Fatalf("pops out of order: %v", got)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatalf("empty queue should report !ok")
	}
}

func TestSingleEventExecution(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	if eng.NumDomains() != 2 {
		t.Fatalf("domains: %d", eng.NumDomains())
	}
	s := NewSlab(16)
	ev := s.Alloc()
	ev.Comp = 0
	ev.MinCycle = 100
	var got uint64
	ev.Exec = func(_ *Event, c uint64) uint64 { got = c; return c + 25 }
	eng.Enqueue(ev)
	end := eng.Run()
	if !ev.Finished() {
		t.Fatalf("event should have executed")
	}
	if got != 100 {
		t.Fatalf("event should dispatch at its lower bound, got %d", got)
	}
	if ev.FinishCycle() != 125 || end != 125 {
		t.Fatalf("finish cycle wrong: %d / %d", ev.FinishCycle(), end)
	}
}

func TestParentChildDelayPropagation(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Close()
	s := NewSlab(16)
	parent := s.Alloc()
	parent.Comp = 0
	parent.MinCycle = 10
	parent.Exec = func(_ *Event, c uint64) uint64 { return c + 40 } // finishes at 50

	child := s.Alloc()
	child.Comp = 0
	child.MinCycle = 20 // lower bound is far below the real dispatch
	child.Delay = 5
	var childDispatch uint64
	child.Exec = func(_ *Event, c uint64) uint64 { childDispatch = c; return c }
	parent.AddChild(child)
	if parent.NumChildren() != 1 {
		t.Fatalf("child not registered")
	}

	eng.Enqueue(parent)
	eng.Run()
	if !child.Finished() {
		t.Fatalf("child should run after parent")
	}
	if childDispatch != 55 {
		t.Fatalf("child should dispatch at parentFinish+delay = 55, got %d", childDispatch)
	}
}

func TestMultipleParentsWaitForAll(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	s := NewSlab(16)
	p1 := s.Alloc()
	p1.Comp = 0
	p1.MinCycle = 0
	p1.Exec = func(_ *Event, c uint64) uint64 { return c + 10 }
	p2 := s.Alloc()
	p2.Comp = 1 // different domain
	p2.MinCycle = 0
	p2.Exec = func(_ *Event, c uint64) uint64 { return c + 90 }

	child := s.Alloc()
	child.Comp = 0
	var dispatch uint64
	child.Exec = func(_ *Event, c uint64) uint64 { dispatch = c; return c }
	p1.AddChild(child)
	p2.AddChild(child)

	eng.Enqueue(p1)
	eng.Enqueue(p2)
	eng.Run()
	if !child.Finished() {
		t.Fatalf("child should execute after both parents")
	}
	if dispatch != 90 {
		t.Fatalf("child should wait for the slower parent (90), got %d", dispatch)
	}
}

func TestCrossDomainChain(t *testing.T) {
	// A chain alternating between domains: core -> L3 bank -> memory ->
	// core, like Figure 4's request-response traffic.
	eng := NewEngine(4)
	defer eng.Close()
	eng.AssignComponent(100, 0) // core
	eng.AssignComponent(200, 1) // L3 bank
	eng.AssignComponent(300, 3) // memory controller
	s := NewSlab(16)

	mk := func(comp int, min uint64, lat uint64) *Event {
		e := s.Alloc()
		e.Comp = comp
		e.MinCycle = min
		e.Arg = lat
		e.Exec = func(ev *Event, c uint64) uint64 { return c + ev.Arg }
		return e
	}
	core := mk(100, 30, 0)
	l3 := mk(200, 80, 20) // contention model adds 20 cycles
	mem := mk(300, 110, 66)
	resp := mk(100, 250, 0)
	core.AddChild(l3)
	l3.AddChild(mem)
	mem.AddChild(resp)

	eng.Enqueue(core)
	end := eng.Run()
	for i, ev := range []*Event{core, l3, mem, resp} {
		if !ev.Finished() {
			t.Fatalf("event %d did not finish", i)
		}
	}
	// Finish cycles must be monotone along the chain.
	if !(core.FinishCycle() <= l3.FinishCycle() && l3.FinishCycle() <= mem.FinishCycle() && mem.FinishCycle() <= resp.FinishCycle()) {
		t.Fatalf("chain finish cycles not monotone: %d %d %d %d",
			core.FinishCycle(), l3.FinishCycle(), mem.FinishCycle(), resp.FinishCycle())
	}
	// The response cannot finish before its lower bound.
	if resp.FinishCycle() < 250 {
		t.Fatalf("lower bound violated: %d", resp.FinishCycle())
	}
	if end < resp.FinishCycle() {
		t.Fatalf("engine end cycle should cover the last event")
	}
}

func TestLowerBoundRespected(t *testing.T) {
	// A child whose MinCycle exceeds parentFinish+Delay dispatches at its
	// MinCycle (bound phase already guarantees it cannot be earlier).
	eng := NewEngine(1)
	defer eng.Close()
	s := NewSlab(4)
	p := s.Alloc()
	p.Comp = 0
	p.Exec = func(_ *Event, c uint64) uint64 { return c + 1 }
	ch := s.Alloc()
	ch.Comp = 0
	ch.MinCycle = 500
	var dispatch uint64
	ch.Exec = func(_ *Event, c uint64) uint64 { dispatch = c; return c }
	p.AddChild(ch)
	eng.Enqueue(p)
	eng.Run()
	if dispatch != 500 {
		t.Fatalf("child should dispatch at its lower bound 500, got %d", dispatch)
	}
}

// TestDeterministicTieBreak checks the deterministic (cycle, sequence)
// reference order: same-cycle events execute in slab allocation order,
// regardless of the order they were enqueued in and regardless of which
// domain their component maps to. Component is deliberately not part of the
// tie-break — a pure (cycle, sequence) total order is what both the serial
// and the parallel executors realise (see the package comment).
func TestDeterministicTieBreak(t *testing.T) {
	eng := NewEngine(2)
	eng.SetMode(ModeSerial)
	defer eng.Close()
	s := NewSlab(16)
	s.SetSeqBase(100)
	var order []uint64
	record := func(e *Event, c uint64) uint64 {
		order = append(order, e.Seq())
		return c
	}
	// Allocation order: seq 100..103. Enqueue deliberately scrambled, with
	// equal MinCycles and components spread over both domains.
	evs := make([]*Event, 4)
	comps := []int{3, 0, 1, 0} // seq 100→comp 3, 101→comp 0, 102→comp 1, 103→comp 0
	for i := range evs {
		ev := s.Alloc()
		ev.Comp = comps[i]
		ev.MinCycle = 50
		ev.Exec = record
		evs[i] = ev
	}
	for _, i := range []int{2, 0, 3, 1} {
		eng.Enqueue(evs[i])
	}
	eng.Run()
	want := []uint64{100, 101, 102, 103} // pure allocation order at the tied cycle
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tie-break order wrong: got %v, want %v", order, want)
		}
	}
}

func TestEngineOrderWithinDomain(t *testing.T) {
	// Events in one domain must execute in dispatch-cycle order (full order
	// within a domain is what gives the weave phase its accuracy).
	eng := NewEngine(1)
	defer eng.Close()
	s := NewSlab(64)
	var order []uint64
	for i := 10; i > 0; i-- {
		ev := s.Alloc()
		ev.Comp = 0
		ev.MinCycle = uint64(i * 10)
		ev.Arg = uint64(i * 10)
		ev.Exec = func(e *Event, c uint64) uint64 {
			order = append(order, e.Arg)
			return c
		}
		eng.Enqueue(ev)
	}
	eng.Run()
	if len(order) != 10 {
		t.Fatalf("expected 10 executions, got %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("events executed out of order: %v", order)
		}
	}
}

func TestManyEventsAcrossDomainsParallel(t *testing.T) {
	// A larger stress test: per-core chains touching shared components,
	// executed across 4 domains on the default parallel worker path. Every
	// event must execute exactly once.
	eng := NewEngine(4)
	defer eng.Close()
	s := NewSlab(1024)
	var executed atomic.Int64
	const cores = 16
	const perCore = 50
	for c := 0; c < cores; c++ {
		var prev *Event
		for i := 0; i < perCore; i++ {
			ev := s.Alloc()
			ev.Comp = (c + i) % 8 // spread over 8 components -> 4 domains
			ev.MinCycle = uint64(i * 10)
			ev.Exec = func(_ *Event, cy uint64) uint64 {
				executed.Add(1)
				return cy + 3
			}
			if prev == nil {
				eng.Enqueue(ev)
			} else {
				prev.AddChild(ev)
			}
			prev = ev
		}
	}
	eng.Run()
	if executed.Load() != cores*perCore {
		t.Fatalf("expected %d executions, got %d", cores*perCore, executed.Load())
	}
	// Work should be spread across domains.
	total := uint64(0)
	for i := 0; i < eng.NumDomains(); i++ {
		total += eng.Domain(i).Executed
	}
	if total != cores*perCore {
		t.Fatalf("domain execution counts should sum to the total: %d", total)
	}
}

func TestEnginePersistentAcrossIntervals(t *testing.T) {
	// One engine must serve many intervals back to back, exactly like the
	// bound-weave loop uses it: build graph, Run, reset slab, repeat.
	eng := NewEngine(3)
	defer eng.Close()
	s := NewSlab(64)
	var executed atomic.Int64
	for interval := 0; interval < 50; interval++ {
		s.Reset()
		var prev *Event
		for i := 0; i < 12; i++ {
			ev := s.Alloc()
			ev.Comp = i % 5
			ev.MinCycle = uint64(interval*1000 + i*10)
			ev.Exec = func(_ *Event, c uint64) uint64 {
				executed.Add(1)
				return c + 2
			}
			if prev == nil {
				eng.Enqueue(ev)
			} else {
				prev.AddChild(ev)
			}
			prev = ev
		}
		end := eng.Run()
		if end < uint64(interval*1000) {
			t.Fatalf("interval %d: end cycle %d below interval base", interval, end)
		}
	}
	if executed.Load() != 50*12 {
		t.Fatalf("every interval's events must run: got %d", executed.Load())
	}
}

// TestRunAfterClose guards against a deadlock: once Close has torn down the
// workers, Run must fall back to the inline path instead of signalling
// goroutines that no longer exist (the worker path is only taken at
// GOMAXPROCS>1, so this hang would be invisible on single-CPU hosts).
func TestRunAfterClose(t *testing.T) {
	eng := NewEngine(4)
	s := NewSlab(16)
	ev := s.Alloc()
	ev.Comp = 0
	ev.MinCycle = 7
	eng.Enqueue(ev)
	if end := eng.Run(); end != 7 {
		t.Fatalf("first run: %d", end)
	}
	eng.Close()
	eng.Close() // idempotent
	s.Reset()
	ev = s.Alloc()
	ev.Comp = 1
	ev.MinCycle = 11
	eng.Enqueue(ev)
	done := make(chan uint64, 1)
	go func() { done <- eng.Run() }()
	select {
	case end := <-done:
		if end != 11 || !ev.Finished() {
			t.Fatalf("run after close should still execute events, got %d", end)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Run after Close deadlocked")
	}
}

func TestRunWithNoEvents(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	if end := eng.Run(); end != 0 {
		t.Fatalf("empty run should return 0, got %d", end)
	}
}

// TestEngineRunSteadyStateAllocs is the allocation-regression guard for the
// weave hot path: once the slab and the engine's internal buffers have warmed
// up, building and running an interval's event graph must not allocate.
func TestEngineRunSteadyStateAllocs(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	s := NewSlab(256)
	buildAndRun := func() {
		s.Reset()
		for c := 0; c < 4; c++ {
			var prev *Event
			for i := 0; i < 16; i++ {
				ev := s.Alloc()
				ev.Comp = (c + i) % 4
				ev.MinCycle = uint64(i * 10)
				ev.Arg = 3
				ev.Exec = sharedExec
				if prev == nil {
					eng.Enqueue(ev)
				} else {
					prev.AddChild(ev)
				}
				prev = ev
			}
		}
		eng.Run()
	}
	// Warm up the slab, queues and scratch buffers.
	for i := 0; i < 3; i++ {
		buildAndRun()
	}
	allocs := testing.AllocsPerRun(20, buildAndRun)
	// The interval loop must be O(1) allocations; in practice it is zero once
	// warm, but allow a little headroom for runtime-internal noise.
	if allocs > 2 {
		t.Fatalf("steady-state interval should be allocation-free, got %v allocs/run", allocs)
	}
}

func sharedExec(ev *Event, c uint64) uint64 { return c + ev.Arg }

func TestDomainOfDefaultMapping(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	if eng.DomainOf(7) != 3 || eng.DomainOf(8) != 0 {
		t.Fatalf("default component-to-domain mapping should be modulo")
	}
	eng.AssignComponent(7, 1)
	if eng.DomainOf(7) != 1 {
		t.Fatalf("explicit assignment should win")
	}
	// Sparse assignment leaves the gap components on the default mapping.
	eng.AssignComponent(3, 2)
	if eng.DomainOf(3) != 2 || eng.DomainOf(5) != 1 || eng.DomainOf(6) != 2 {
		t.Fatalf("unassigned components should keep the modulo mapping")
	}
	if eng.DomainOf(-3) < 0 || eng.DomainOf(-3) >= 4 {
		t.Fatalf("negative component IDs must still map to a valid domain")
	}
	// Engine with zero requested domains clamps to one.
	one := NewEngine(0)
	defer one.Close()
	if one.NumDomains() != 1 {
		t.Fatalf("engine should have at least one domain")
	}
}

func TestNilExecFinishesInstantly(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Close()
	s := NewSlab(4)
	ev := s.Alloc()
	ev.Comp = 0
	ev.MinCycle = 42
	eng.Enqueue(ev)
	end := eng.Run()
	if !ev.Finished() || ev.FinishCycle() != 42 || end != 42 {
		t.Fatalf("nil-exec event should finish at its dispatch cycle: %d", ev.FinishCycle())
	}
}

// Property: for random chains with random latencies and lower bounds, every
// event executes exactly once, finish cycles are monotone along each chain,
// and no event finishes before its lower bound.
func TestEventChainProperties(t *testing.T) {
	f := func(latsRaw []uint8, domainsRaw uint8) bool {
		if len(latsRaw) == 0 {
			return true
		}
		if len(latsRaw) > 64 {
			latsRaw = latsRaw[:64]
		}
		nd := int(domainsRaw%6) + 1
		eng := NewEngine(nd)
		if latsRaw[0]&1 == 0 { // exercise both modes
			eng.SetMode(ModeSerial)
		}
		defer eng.Close()
		s := NewSlab(128)
		var chain []*Event
		var prev *Event
		for i, l := range latsRaw {
			ev := s.Alloc()
			ev.Comp = i % (nd * 2)
			ev.MinCycle = uint64(i)
			ev.Arg = uint64(l % 50)
			ev.Exec = sharedExec
			if prev == nil {
				eng.Enqueue(ev)
			} else {
				prev.AddChild(ev)
			}
			chain = append(chain, ev)
			prev = ev
		}
		eng.Run()
		var last uint64
		for _, ev := range chain {
			if !ev.Finished() {
				return false
			}
			if ev.FinishCycle() < ev.MinCycle {
				return false
			}
			if ev.FinishCycle() < last {
				return false
			}
			last = ev.FinishCycle()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDomainPanicContained pins down the domain-abort protocol: when
// a domain worker's executor panics in the parallel weave path, sibling
// domains parked on a horizon that will now never advance must be woken and
// released (not left parked forever, which would also hang the pool's
// WaitGroup), and the capture must be re-raised on the orchestrating
// goroutine.
func TestParallelDomainPanicContained(t *testing.T) {
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("parallel domain workers need GOMAXPROCS > 1")
	}
	eng := NewEngine(2)
	defer eng.Close()
	s := NewSlab(16)

	// The parent lives in domain 0 and panics; its child lives in domain 1,
	// whose worker therefore parks waiting for a handoff that never comes.
	parent := s.Alloc()
	parent.Comp = 0
	parent.MinCycle = 10
	parent.Exec = func(_ *Event, c uint64) uint64 { panic("weave fault") }
	child := s.Alloc()
	child.Comp = 1
	parent.AddChild(child)
	eng.Enqueue(parent)

	done := make(chan interface{}, 1)
	go func() {
		defer func() { done <- recover() }()
		eng.Run()
		done <- nil
	}()
	select {
	case r := <-done:
		pe, ok := r.(*runctl.PanicError)
		if !ok {
			t.Fatalf("Run should re-raise a *runctl.PanicError, got %T (%v)", r, r)
		}
		if pe.Value != "weave fault" {
			t.Fatalf("capture lost the panic value: %v", pe.Value)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("panicking domain worker left the engine hung")
	}
}

// buildContendedGraph builds a reproducible multi-chain graph whose executors
// model per-component contention (each component is a serially reusable port:
// an access occupies it for Arg cycles, so finish cycles depend on the exact
// per-component execution order). It returns the chains so callers can
// compare finish cycles across engines.
func buildContendedGraph(eng *Engine, s *Slab, busy []uint64) [][]*Event {
	const cores = 8
	const perCore = 24
	chains := make([][]*Event, cores)
	rng := uint64(0x9e3779b97f4a7c15)
	for c := 0; c < cores; c++ {
		s.SetSeqBase(uint64(c) << 32)
		var prev *Event
		for i := 0; i < perCore; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			ev := s.Alloc()
			ev.Comp = int(rng>>33) % 8
			ev.MinCycle = uint64(c*3 + i*11)
			ev.Arg = uint64(ev.Comp)
			ev.Ctx = busy
			ev.Exec = portExec
			if prev == nil {
				eng.Enqueue(ev)
			} else {
				prev.AddChild(ev)
			}
			chains[c] = append(chains[c], ev)
			prev = ev
		}
	}
	return chains
}

// portExec models a pipelined single-port component: the access waits for the
// port to free, then occupies it for 4 cycles. Stateful per component, so
// results depend on per-component execution order.
func portExec(ev *Event, c uint64) uint64 {
	busy := ev.Ctx.([]uint64)
	start := c
	if busy[ev.Arg] > start {
		start = busy[ev.Arg]
	}
	fin := start + 4
	busy[ev.Arg] = fin
	return fin
}

// TestParallelMatchesSerialReference is the engine-level bit-identity gate:
// the default parallel mode (pre-created events, committed horizons) must
// produce exactly the serial reference's finish cycle for every event of a
// contended multi-chain graph, across domain counts and with real concurrent
// workers.
func TestParallelMatchesSerialReference(t *testing.T) {
	ref := func() [][]*Event {
		eng := NewEngine(1)
		eng.SetMode(ModeSerial)
		defer eng.Close()
		s := NewSlab(256)
		busy := make([]uint64, 8)
		chains := buildContendedGraph(eng, s, busy)
		eng.Run()
		return chains
	}()

	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, nd := range []int{1, 2, 4} {
		eng := NewEngine(nd)
		s := NewSlab(256)
		busy := make([]uint64, 8)
		chains := buildContendedGraph(eng, s, busy)
		eng.Run()
		for c := range chains {
			for i, ev := range chains[c] {
				want := ref[c][i]
				if !ev.Finished() {
					t.Fatalf("domains=%d: chain %d event %d did not finish", nd, c, i)
				}
				if ev.FinishCycle() != want.FinishCycle() {
					t.Fatalf("domains=%d: chain %d event %d finish=%d, serial reference=%d",
						nd, c, i, ev.FinishCycle(), want.FinishCycle())
				}
			}
		}
		eng.Close()
	}
}

// TestParallelPerComponentOrder pins the parallel mode's ordering contract:
// each component sees its events in (final dispatch cycle, sequence) order —
// the pure function of the bound phase that makes parallel results
// bit-identical to the serial reference.
func TestParallelPerComponentOrder(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	eng := NewEngine(4)
	defer eng.Close()
	s := NewSlab(256)
	const comps = 8
	type rec struct {
		cycle uint64
		seq   uint64
	}
	var mu [comps]sync.Mutex
	orders := make([][]rec, comps)
	record := func(ev *Event, c uint64) uint64 {
		mu[ev.Comp].Lock()
		orders[ev.Comp] = append(orders[ev.Comp], rec{c, ev.Seq()})
		mu[ev.Comp].Unlock()
		return c + ev.Arg
	}
	for core := 0; core < 8; core++ {
		s.SetSeqBase(uint64(core) << 32)
		var prevEv *Event
		for i := 0; i < 20; i++ {
			ev := s.Alloc()
			ev.Comp = (core + i) % comps
			ev.MinCycle = uint64(i * 5)
			ev.Arg = uint64(core%3) + 1
			ev.Exec = record
			if prevEv == nil {
				eng.Enqueue(ev)
			} else {
				prevEv.AddChild(ev)
			}
			prevEv = ev
		}
	}
	eng.Run()
	total := 0
	for comp, seen := range orders {
		total += len(seen)
		for i := 1; i < len(seen); i++ {
			a, b := seen[i-1], seen[i]
			if a.cycle > b.cycle || (a.cycle == b.cycle && a.seq > b.seq) {
				t.Fatalf("comp %d executed out of (cycle, seq) order: (%d,%d) before (%d,%d)",
					comp, a.cycle, a.seq, b.cycle, b.seq)
			}
		}
	}
	if total != 8*20 {
		t.Fatalf("expected %d executions, got %d", 8*20, total)
	}
}
