package event

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSlabAllocAndReset(t *testing.T) {
	s := NewSlab(4)
	var evs []*Event
	for i := 0; i < 10; i++ { // forces growth past the first chunk
		e := s.Alloc()
		e.Comp = i
		evs = append(evs, e)
	}
	if s.InUse() != 10 {
		t.Fatalf("in-use count: %d", s.InUse())
	}
	// Growth must not invalidate earlier pointers.
	for i, e := range evs {
		if e.Comp != i {
			t.Fatalf("event %d corrupted after slab growth: comp=%d", i, e.Comp)
		}
	}
	s.Reset()
	if s.InUse() != 0 {
		t.Fatalf("reset should clear in-use count")
	}
	e := s.Alloc()
	if e.Comp != 0 || e.MinCycle != 0 || e.Exec != nil {
		t.Fatalf("recycled event should be zeroed")
	}
	// Minimum chunk size.
	tiny := NewSlab(1)
	if tiny.chunkSize != 16 {
		t.Fatalf("chunk size should clamp to 16, got %d", tiny.chunkSize)
	}
}

func TestSingleEventExecution(t *testing.T) {
	eng := NewEngine(2)
	if eng.NumDomains() != 2 {
		t.Fatalf("domains: %d", eng.NumDomains())
	}
	s := NewSlab(16)
	ev := s.Alloc()
	ev.Comp = 0
	ev.MinCycle = 100
	var got uint64
	ev.Exec = func(c uint64) uint64 { got = c; return c + 25 }
	eng.Enqueue(ev)
	end := eng.Run()
	if !ev.Finished() {
		t.Fatalf("event should have executed")
	}
	if got != 100 {
		t.Fatalf("event should dispatch at its lower bound, got %d", got)
	}
	if ev.FinishCycle() != 125 || end != 125 {
		t.Fatalf("finish cycle wrong: %d / %d", ev.FinishCycle(), end)
	}
}

func TestParentChildDelayPropagation(t *testing.T) {
	eng := NewEngine(1)
	s := NewSlab(16)
	parent := s.Alloc()
	parent.Comp = 0
	parent.MinCycle = 10
	parent.Exec = func(c uint64) uint64 { return c + 40 } // finishes at 50

	child := s.Alloc()
	child.Comp = 0
	child.MinCycle = 20 // lower bound is far below the real dispatch
	child.Delay = 5
	var childDispatch uint64
	child.Exec = func(c uint64) uint64 { childDispatch = c; return c }
	parent.AddChild(child)
	if parent.NumChildren() != 1 {
		t.Fatalf("child not registered")
	}

	eng.Enqueue(parent)
	eng.Run()
	if !child.Finished() {
		t.Fatalf("child should run after parent")
	}
	if childDispatch != 55 {
		t.Fatalf("child should dispatch at parentFinish+delay = 55, got %d", childDispatch)
	}
}

func TestMultipleParentsWaitForAll(t *testing.T) {
	eng := NewEngine(2)
	s := NewSlab(16)
	p1 := s.Alloc()
	p1.Comp = 0
	p1.MinCycle = 0
	p1.Exec = func(c uint64) uint64 { return c + 10 }
	p2 := s.Alloc()
	p2.Comp = 1 // different domain
	p2.MinCycle = 0
	p2.Exec = func(c uint64) uint64 { return c + 90 }

	child := s.Alloc()
	child.Comp = 0
	var dispatch uint64
	child.Exec = func(c uint64) uint64 { dispatch = c; return c }
	p1.AddChild(child)
	p2.AddChild(child)

	eng.Enqueue(p1)
	eng.Enqueue(p2)
	eng.Run()
	if !child.Finished() {
		t.Fatalf("child should execute after both parents")
	}
	if dispatch != 90 {
		t.Fatalf("child should wait for the slower parent (90), got %d", dispatch)
	}
}

func TestCrossDomainChain(t *testing.T) {
	// A chain alternating between domains: core -> L3 bank -> memory ->
	// core, like Figure 4's request-response traffic.
	eng := NewEngine(4)
	eng.AssignComponent(100, 0) // core
	eng.AssignComponent(200, 1) // L3 bank
	eng.AssignComponent(300, 3) // memory controller
	s := NewSlab(16)

	mk := func(comp int, min uint64, lat uint64) *Event {
		e := s.Alloc()
		e.Comp = comp
		e.MinCycle = min
		e.Exec = func(c uint64) uint64 { return c + lat }
		return e
	}
	core := mk(100, 30, 0)
	l3 := mk(200, 80, 20) // contention model adds 20 cycles
	mem := mk(300, 110, 66)
	resp := mk(100, 250, 0)
	core.AddChild(l3)
	l3.AddChild(mem)
	mem.AddChild(resp)

	eng.Enqueue(core)
	end := eng.Run()
	for i, ev := range []*Event{core, l3, mem, resp} {
		if !ev.Finished() {
			t.Fatalf("event %d did not finish", i)
		}
	}
	// Finish cycles must be monotone along the chain.
	if !(core.FinishCycle() <= l3.FinishCycle() && l3.FinishCycle() <= mem.FinishCycle() && mem.FinishCycle() <= resp.FinishCycle()) {
		t.Fatalf("chain finish cycles not monotone: %d %d %d %d",
			core.FinishCycle(), l3.FinishCycle(), mem.FinishCycle(), resp.FinishCycle())
	}
	// The response cannot finish before its lower bound.
	if resp.FinishCycle() < 250 {
		t.Fatalf("lower bound violated: %d", resp.FinishCycle())
	}
	if end < resp.FinishCycle() {
		t.Fatalf("engine end cycle should cover the last event")
	}
}

func TestLowerBoundRespected(t *testing.T) {
	// A child whose MinCycle exceeds parentFinish+Delay dispatches at its
	// MinCycle (bound phase already guarantees it cannot be earlier).
	eng := NewEngine(1)
	s := NewSlab(4)
	p := s.Alloc()
	p.Comp = 0
	p.Exec = func(c uint64) uint64 { return c + 1 }
	ch := s.Alloc()
	ch.Comp = 0
	ch.MinCycle = 500
	var dispatch uint64
	ch.Exec = func(c uint64) uint64 { dispatch = c; return c }
	p.AddChild(ch)
	eng.Enqueue(p)
	eng.Run()
	if dispatch != 500 {
		t.Fatalf("child should dispatch at its lower bound 500, got %d", dispatch)
	}
}

func TestEngineOrderWithinDomain(t *testing.T) {
	// Events in one domain must execute in dispatch-cycle order (full order
	// within a domain is what gives the weave phase its accuracy).
	eng := NewEngine(1)
	s := NewSlab(64)
	var order []uint64
	for i := 10; i > 0; i-- {
		ev := s.Alloc()
		ev.Comp = 0
		ev.MinCycle = uint64(i * 10)
		cyc := uint64(i * 10)
		ev.Exec = func(c uint64) uint64 {
			order = append(order, cyc)
			return c
		}
		eng.Enqueue(ev)
	}
	eng.Run()
	if len(order) != 10 {
		t.Fatalf("expected 10 executions, got %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("events executed out of order: %v", order)
		}
	}
}

func TestManyEventsAcrossDomainsParallel(t *testing.T) {
	// A larger stress test: per-core chains touching shared components,
	// executed across 4 domains. Every event must execute exactly once.
	eng := NewEngine(4)
	s := NewSlab(1024)
	var executed atomic.Int64
	const cores = 16
	const perCore = 50
	for c := 0; c < cores; c++ {
		var prev *Event
		for i := 0; i < perCore; i++ {
			ev := s.Alloc()
			ev.Comp = (c + i) % 8 // spread over 8 components -> 4 domains
			ev.MinCycle = uint64(i * 10)
			ev.Exec = func(cy uint64) uint64 {
				executed.Add(1)
				return cy + 3
			}
			if prev == nil {
				eng.Enqueue(ev)
			} else {
				prev.AddChild(ev)
			}
			prev = ev
		}
	}
	eng.Run()
	if executed.Load() != cores*perCore {
		t.Fatalf("expected %d executions, got %d", cores*perCore, executed.Load())
	}
	// Work should be spread across domains.
	total := uint64(0)
	for i := 0; i < eng.NumDomains(); i++ {
		total += eng.Domain(i).Executed
	}
	if total != cores*perCore {
		t.Fatalf("domain execution counts should sum to the total: %d", total)
	}
}

func TestDomainOfDefaultMapping(t *testing.T) {
	eng := NewEngine(4)
	if eng.DomainOf(7) != 3 || eng.DomainOf(8) != 0 {
		t.Fatalf("default component-to-domain mapping should be modulo")
	}
	eng.AssignComponent(7, 1)
	if eng.DomainOf(7) != 1 {
		t.Fatalf("explicit assignment should win")
	}
	if eng.DomainOf(-3) < 0 || eng.DomainOf(-3) >= 4 {
		t.Fatalf("negative component IDs must still map to a valid domain")
	}
	// Engine with zero requested domains clamps to one.
	one := NewEngine(0)
	if one.NumDomains() != 1 {
		t.Fatalf("engine should have at least one domain")
	}
}

func TestNilExecFinishesInstantly(t *testing.T) {
	eng := NewEngine(1)
	s := NewSlab(4)
	ev := s.Alloc()
	ev.Comp = 0
	ev.MinCycle = 42
	eng.Enqueue(ev)
	end := eng.Run()
	if !ev.Finished() || ev.FinishCycle() != 42 || end != 42 {
		t.Fatalf("nil-exec event should finish at its dispatch cycle: %d", ev.FinishCycle())
	}
}

// Property: for random chains with random latencies and lower bounds, every
// event executes exactly once, finish cycles are monotone along each chain,
// and no event finishes before its lower bound.
func TestEventChainProperties(t *testing.T) {
	f := func(latsRaw []uint8, domainsRaw uint8) bool {
		if len(latsRaw) == 0 {
			return true
		}
		if len(latsRaw) > 64 {
			latsRaw = latsRaw[:64]
		}
		nd := int(domainsRaw%6) + 1
		eng := NewEngine(nd)
		s := NewSlab(128)
		var chain []*Event
		var prev *Event
		for i, l := range latsRaw {
			ev := s.Alloc()
			ev.Comp = i % (nd * 2)
			ev.MinCycle = uint64(i)
			lat := uint64(l % 50)
			ev.Exec = func(c uint64) uint64 { return c + lat }
			if prev == nil {
				eng.Enqueue(ev)
			} else {
				prev.AddChild(ev)
			}
			chain = append(chain, ev)
			prev = ev
		}
		eng.Run()
		var last uint64
		for _, ev := range chain {
			if !ev.Finished() {
				return false
			}
			if ev.FinishCycle() < ev.MinCycle {
				return false
			}
			if ev.FinishCycle() < last {
				return false
			}
			last = ev.FinishCycle()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
