package virt

import (
	"strings"
	"testing"

	"zsim/internal/trace"
)

func testWorkload(threads int, blocks int) *trace.Workload {
	p := trace.DefaultParams()
	p.BlocksPerThread = blocks
	return trace.New("virt-test", p, threads)
}

func TestThreadStateString(t *testing.T) {
	states := []ThreadState{StateRunnable, StateRunning, StateBlockedLock, StateBlockedBarrier,
		StateBlockedSyscall, StateFastForward, StateDone}
	for _, st := range states {
		if st.String() == "" || strings.HasPrefix(st.String(), "state(") {
			t.Fatalf("state %d has no name", st)
		}
	}
	if ThreadState(99).String() != "state(99)" {
		t.Fatalf("unknown state fallback broken")
	}
}

func TestSchedulerBasicAssignment(t *testing.T) {
	s := NewScheduler(4)
	if s.NumCores() != 4 {
		t.Fatalf("cores: %d", s.NumCores())
	}
	w := testWorkload(3, 100)
	s.AddWorkload(w)
	if s.NumThreads() != 3 || s.LiveThreads() != 3 {
		t.Fatalf("threads: %d live %d", s.NumThreads(), s.LiveThreads())
	}
	asg := s.ScheduleInterval(0)
	if len(asg) != 3 {
		t.Fatalf("3 threads on 4 cores should all be scheduled, got %d", len(asg))
	}
	seenCores := map[int]bool{}
	for _, a := range asg {
		if seenCores[a.Core] {
			t.Fatalf("core %d assigned twice", a.Core)
		}
		seenCores[a.Core] = true
		if a.Thread.State != StateRunning {
			t.Fatalf("assigned thread should be running")
		}
	}
	// Next interval: still running, same assignments.
	asg2 := s.ScheduleInterval(1000)
	if len(asg2) != 3 {
		t.Fatalf("running threads should stay scheduled")
	}
}

func TestSchedulerOversubscription(t *testing.T) {
	// 8 software threads on 2 cores: every thread must eventually get CPU
	// time via round-robin descheduling.
	s := NewScheduler(2)
	w := testWorkload(8, 50)
	s.AddWorkload(w)
	ran := make(map[int]int)
	now := uint64(0)
	for interval := 0; interval < 20; interval++ {
		asg := s.ScheduleInterval(now)
		if len(asg) > 2 {
			t.Fatalf("cannot schedule more threads than cores")
		}
		for _, a := range asg {
			ran[a.Thread.ID]++
			// Simulate the thread being descheduled at the end of the interval
			// (time multiplexing).
			s.Deschedule(a.Thread, now+1000)
		}
		now += 1000
	}
	if len(ran) != 8 {
		t.Fatalf("all 8 threads should have run, got %d: %v", len(ran), ran)
	}
	if s.ContextSwitches.Load() == 0 {
		t.Fatalf("context switches should be counted")
	}
}

func TestSchedulerAffinity(t *testing.T) {
	s := NewScheduler(4)
	w := testWorkload(2, 10)
	p := &Process{ID: 0, Name: "pinned", Affinity: []int{2}}
	for i := 0; i < 2; i++ {
		p.Threads = append(p.Threads, &Thread{Stream: w.NewThread(i)})
	}
	s.AddProcess(p)
	asg := s.ScheduleInterval(0)
	if len(asg) != 1 {
		t.Fatalf("only one thread fits on the single allowed core, got %d", len(asg))
	}
	if asg[0].Core != 2 {
		t.Fatalf("affinity should pin the thread to core 2, got %d", asg[0].Core)
	}
	// Per-thread affinity overrides the process affinity.
	s2 := NewScheduler(4)
	p2 := &Process{ID: 0, Affinity: []int{0}}
	p2.Threads = append(p2.Threads, &Thread{Stream: w.NewThread(0), Affinity: []int{3}})
	s2.AddProcess(p2)
	asg = s2.ScheduleInterval(0)
	if len(asg) != 1 || asg[0].Core != 3 {
		t.Fatalf("thread affinity should win: %+v", asg)
	}
}

func TestLockBlockingAndHandoff(t *testing.T) {
	s := NewScheduler(4)
	w := testWorkload(2, 10)
	s.AddWorkload(w)
	t0, t1 := s.Thread(0), s.Thread(1)
	s.ScheduleInterval(0)

	if !s.OnLockAcquire(t0, 7, 100) {
		t.Fatalf("uncontended lock should be acquired")
	}
	if !s.HoldsLock(t0, 7) {
		t.Fatalf("holder not recorded")
	}
	if s.OnLockAcquire(t1, 7, 150) {
		t.Fatalf("contended lock should block")
	}
	if t1.State != StateBlockedLock {
		t.Fatalf("blocked thread state wrong: %v", t1.State)
	}
	if s.LockBlocks.Load() != 1 {
		t.Fatalf("lock block should be counted")
	}

	// Release at cycle 500: t1 acquires and becomes runnable with its clock
	// advanced to the release point.
	s.OnLockRelease(t0, 7, 500)
	if !s.HoldsLock(t1, 7) {
		t.Fatalf("waiter should inherit the lock")
	}
	if t1.State != StateRunnable || t1.Cycle != 500 {
		t.Fatalf("woken waiter should be runnable at the release cycle, got %v at %d", t1.State, t1.Cycle)
	}
	// Releasing a lock you don't hold is ignored.
	s.OnLockRelease(t0, 7, 600)
	if !s.HoldsLock(t1, 7) {
		t.Fatalf("spurious release must not steal the lock")
	}
	// The woken thread gets scheduled again.
	asg := s.ScheduleInterval(1000)
	found := false
	for _, a := range asg {
		if a.Thread.ID == t1.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("woken thread should be scheduled")
	}
}

func TestBarrierReleasesWhenAllArrive(t *testing.T) {
	s := NewScheduler(4)
	w := testWorkload(3, 10)
	s.AddWorkload(w)
	s.ScheduleInterval(0)
	t0, t1, t2 := s.Thread(0), s.Thread(1), s.Thread(2)

	s.OnBarrier(t0, 1, 100)
	s.OnBarrier(t1, 1, 300)
	if t0.State != StateBlockedBarrier || t1.State != StateBlockedBarrier {
		t.Fatalf("threads should wait at the barrier")
	}
	s.OnBarrier(t2, 1, 200)
	// All three arrived: all runnable, clocks advanced to the slowest (300).
	for _, th := range []*Thread{t0, t1, t2} {
		if th.State != StateRunnable {
			t.Fatalf("barrier should release all threads, %d is %v", th.ID, th.State)
		}
		if th.Cycle != 300 {
			t.Fatalf("released thread should sync to the latest arrival, got %d", th.Cycle)
		}
	}
	if s.BarrierWaits.Load() != 3 {
		t.Fatalf("barrier waits should be counted")
	}
}

func TestBarrierIgnoresFinishedThreads(t *testing.T) {
	s := NewScheduler(2)
	w := testWorkload(2, 10)
	s.AddWorkload(w)
	s.ScheduleInterval(0)
	t0, t1 := s.Thread(0), s.Thread(1)
	// Thread 1 finishes; a barrier must then only require thread 0.
	s.OnDone(t1, 50)
	if s.LiveThreads() != 1 {
		t.Fatalf("live threads: %d", s.LiveThreads())
	}
	s.OnBarrier(t0, 3, 100)
	if t0.State != StateRunnable {
		t.Fatalf("sole live thread should pass the barrier immediately, got %v", t0.State)
	}
}

func TestDoneReleasesHeldLocks(t *testing.T) {
	s := NewScheduler(2)
	w := testWorkload(2, 10)
	s.AddWorkload(w)
	s.ScheduleInterval(0)
	t0, t1 := s.Thread(0), s.Thread(1)
	s.OnLockAcquire(t0, 1, 10)
	s.OnLockAcquire(t1, 1, 20) // blocks
	s.OnDone(t0, 100)
	if t1.State != StateRunnable || !s.HoldsLock(t1, 1) {
		t.Fatalf("finishing holder should hand the lock to the waiter")
	}
}

func TestBlockedSyscallJoinLeave(t *testing.T) {
	s := NewScheduler(2)
	w := testWorkload(2, 10)
	s.AddWorkload(w)
	s.ScheduleInterval(0)
	t0 := s.Thread(0)
	s.OnBlockedSyscall(t0, 1000, 5000)
	if t0.State != StateBlockedSyscall {
		t.Fatalf("thread should be blocked in the kernel")
	}
	// Before the wake time it is not scheduled.
	asg := s.ScheduleInterval(2000)
	for _, a := range asg {
		if a.Thread.ID == t0.ID {
			t.Fatalf("blocked thread must not be scheduled")
		}
	}
	// After the wake time it rejoins with its clock advanced.
	asg = s.ScheduleInterval(7000)
	found := false
	for _, a := range asg {
		if a.Thread.ID == t0.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("thread should rejoin after its syscall completes")
	}
	if t0.Cycle < 6000 {
		t.Fatalf("woken thread's clock should reflect the blocked time, got %d", t0.Cycle)
	}
	if s.SyscallBlocks.Load() != 1 {
		t.Fatalf("syscall blocks should be counted")
	}
}

func TestFastForwardSkipsBlocks(t *testing.T) {
	s := NewScheduler(1)
	w := testWorkload(1, 100)
	p := &Process{ID: 0}
	p.Threads = append(p.Threads, &Thread{Stream: w.NewThread(0), FastForwardBlocks: 30})
	s.AddProcess(p)
	th := s.Thread(0)
	if th.State != StateFastForward {
		t.Fatalf("thread should start fast-forwarding")
	}
	asg := s.ScheduleInterval(0)
	if len(asg) != 1 {
		t.Fatalf("fast-forwarded thread should be schedulable afterwards")
	}
	if th.FastForwardBlocks != 0 {
		t.Fatalf("fast-forward blocks should be consumed")
	}
}

func TestMultiprocessScheduling(t *testing.T) {
	// Two processes (client and server) share the chip; both get cores.
	s := NewScheduler(4)
	w1 := testWorkload(2, 50)
	w2 := testWorkload(2, 50)
	p1 := s.AddWorkload(w1)
	p2 := &Process{ID: 1, Name: "server"}
	for i := 0; i < 2; i++ {
		p2.Threads = append(p2.Threads, &Thread{Stream: w2.NewThread(i)})
	}
	s.AddProcess(p2)
	if p1.ID == p2.ID {
		t.Fatalf("processes should have distinct IDs")
	}
	asg := s.ScheduleInterval(0)
	procs := map[int]int{}
	for _, a := range asg {
		procs[a.Thread.Proc]++
	}
	if len(procs) != 2 {
		t.Fatalf("both processes should be scheduled: %v", procs)
	}
	// Barriers are per-process: process 0's barrier does not wait for
	// process 1's threads.
	s.OnBarrier(s.Thread(0), 1, 10)
	s.OnBarrier(s.Thread(1), 1, 20)
	if s.Thread(0).State != StateRunnable {
		t.Fatalf("process-0 barrier should release without process 1")
	}
}

func TestTimeVirtualizer(t *testing.T) {
	tv := NewTimeVirtualizer(2.0)
	if tv.Rdtsc(12345) != 12345 {
		t.Fatalf("rdtsc should return the simulated cycle")
	}
	n1 := tv.Nanos(0)
	n2 := tv.Nanos(2_000_000_000) // 1 simulated second at 2 GHz
	if n2-n1 != 1_000_000_000 {
		t.Fatalf("1s of simulated cycles should advance virtual time by 1s, got %d", n2-n1)
	}
	if tv.SleepCycles(1000) != 2000 {
		t.Fatalf("sleep conversion wrong: %d", tv.SleepCycles(1000))
	}
	if tv.RdtscReads != 1 || tv.TimeReads != 2 {
		t.Fatalf("virtualization counters wrong")
	}
	// Degenerate frequency clamps.
	if NewTimeVirtualizer(0).FreqGHz != 2.0 {
		t.Fatalf("zero frequency should default")
	}
}

func TestSystemView(t *testing.T) {
	sv := NewSystemView(1024, 32, 256, 8192)
	_, _, _, _ = sv.CPUID(0)
	eax, _, _, _ := sv.CPUID(1)
	if eax != 1024 {
		t.Fatalf("CPUID leaf 1 should report the simulated core count, got %d", eax)
	}
	a, b, c, _ := sv.CPUID(4)
	if a != 32 || b != 256 || c != 8192 {
		t.Fatalf("CPUID leaf 4 should report simulated cache sizes")
	}
	if x, _, _, _ := sv.CPUID(99); x != 0 {
		t.Fatalf("unknown leaves return zero")
	}
	if sv.GetCPU(5) != 5 || sv.GetCPU(-1) != 0 || sv.GetCPU(4000) != 0 {
		t.Fatalf("GetCPU virtualization wrong")
	}
	info := sv.ProcCPUInfo()
	if !strings.Contains(info, "processor\t: 1023") || !strings.Contains(info, "GenuineZsim") {
		t.Fatalf("cpuinfo should describe the simulated machine")
	}
	if sv.CPUIDReads == 0 || sv.ProcReads == 0 {
		t.Fatalf("virtualization counters should advance")
	}
}

func TestMagicOps(t *testing.T) {
	if DecodeMagic(0x5a5a0001) != MagicROIBegin || DecodeMagic(0x5a5a0002) != MagicROIEnd ||
		DecodeMagic(0x5a5a0003) != MagicHeartbeat || DecodeMagic(42) != MagicNone {
		t.Fatalf("magic op decoding wrong")
	}
	for _, m := range []MagicOp{MagicNone, MagicROIBegin, MagicROIEnd, MagicHeartbeat} {
		if m.String() == "" {
			t.Fatalf("magic op %d has no name", m)
		}
	}
	if MagicOp(77).String() != "magic(77)" {
		t.Fatalf("unknown magic fallback broken")
	}
}

// ---------------------------------------------------------------------------
// Mid-interval scheduler (ResolveRound) tests
// ---------------------------------------------------------------------------

func TestResolveRoundGrantsFreeLockAndResumes(t *testing.T) {
	s := NewScheduler(2)
	s.AddWorkload(testWorkload(2, 10))
	asg := s.ScheduleInterval(0)
	if len(asg) != 2 {
		t.Fatalf("both threads should be scheduled, got %d", len(asg))
	}
	t0 := asg[0].Thread
	t0.Cycle = 150
	t0.Record(OpLockAcquire, 5, 150, 0)
	next := s.ResolveRound(asg, 0, 1000, nil, nil)
	if !s.HoldsLock(t0, 5) {
		t.Fatalf("uncontended acquire should be granted at the round boundary")
	}
	found := false
	for _, a := range next {
		if a.Thread.ID == t0.ID {
			found = true
			if a.Core != asg[0].Core {
				t.Fatalf("granted thread should resume on its own core")
			}
		}
	}
	if !found {
		t.Fatalf("granted thread should be re-assigned within the interval")
	}
	if len(t0.pending) != 0 {
		t.Fatalf("pending ops should be drained by ResolveRound")
	}
}

func TestResolveRoundArbitratesBySimulatedCycle(t *testing.T) {
	// Two threads race for one lock. The thread with the earlier simulated
	// cycle must win, regardless of the order the workers recorded the ops
	// (which in a real run depends on host scheduling).
	s := NewScheduler(2)
	s.AddWorkload(testWorkload(2, 10))
	asg := s.ScheduleInterval(0)
	tA, tB := s.Thread(0), s.Thread(1)
	tA.Cycle = 200
	tA.Record(OpLockAcquire, 9, 200, 0)
	tB.Cycle = 100
	tB.Record(OpLockAcquire, 9, 100, 0)
	s.ResolveRound(asg, 0, 1000, nil, nil)
	if !s.HoldsLock(tB, 9) {
		t.Fatalf("the earlier acquire (cycle 100) should win the lock")
	}
	if tA.State != StateBlockedLock {
		t.Fatalf("the later acquire should block, got %v", tA.State)
	}
}

func TestResolveRoundMidIntervalLockHandoff(t *testing.T) {
	// The holder releases mid-interval: the blocked waiter rejoins within the
	// same interval on the freed core instead of waiting for the next one.
	s := NewScheduler(2)
	s.AddWorkload(testWorkload(2, 10))
	asg := s.ScheduleInterval(0)
	t0, t1 := s.Thread(0), s.Thread(1)

	t0.Cycle = 10
	t0.Record(OpLockAcquire, 1, 10, 0)
	t1.Cycle = 20
	t1.Record(OpLockAcquire, 1, 20, 0)
	round1 := s.ResolveRound(asg, 0, 1000, nil, nil)
	if !s.HoldsLock(t0, 1) || t1.State != StateBlockedLock {
		t.Fatalf("t0 should hold the lock, t1 should block")
	}
	if len(round1) != 1 || round1[0].Thread.ID != t0.ID {
		t.Fatalf("only the holder should run the next round, got %+v", round1)
	}

	// t0 releases at cycle 500 and runs to the interval end.
	t0.Record(OpLockRelease, 1, 500, 0)
	t0.Cycle = 1000
	round2 := s.ResolveRound(round1, 0, 1000, nil, nil)
	if !s.HoldsLock(t1, 1) {
		t.Fatalf("waiter should inherit the lock at the release")
	}
	if t1.Cycle != 500 {
		t.Fatalf("woken waiter should inherit the release cycle, got %d", t1.Cycle)
	}
	if len(round2) != 1 || round2[0].Thread.ID != t1.ID {
		t.Fatalf("woken waiter should rejoin within the interval, got %+v", round2)
	}
	if s.MidIntervalJoins.Load() == 0 {
		t.Fatalf("mid-interval join should be counted")
	}
}

func TestResolveRoundSyscallLeaveAndJoin(t *testing.T) {
	// One core, two threads: the running thread blocks in a syscall and the
	// waiting thread takes the core immediately; when the syscall completes
	// inside the interval, the first thread rejoins.
	s := NewScheduler(1)
	s.AddWorkload(testWorkload(2, 10))
	asg := s.ScheduleInterval(0)
	if len(asg) != 1 {
		t.Fatalf("one core fits one thread")
	}
	t0, t1 := s.Thread(0), s.Thread(1)

	t0.Cycle = 100
	t0.Record(OpSyscall, 0, 100, 300)
	round1 := s.ResolveRound(asg, 0, 1000, nil, nil)
	// The wake (cycle 400) falls inside the interval, so t0 is already
	// runnable again — but queued behind t1, which takes the core first.
	if t0.State != StateRunnable || t0.WakeCycle != 400 {
		t.Fatalf("t0 should be woken for a mid-interval rejoin, got %v at %d", t0.State, t0.WakeCycle)
	}
	if len(round1) != 1 || round1[0].Thread.ID != t1.ID || round1[0].Core != 0 {
		t.Fatalf("waiting thread should take the freed core mid-interval, got %+v", round1)
	}

	// t1 blocks too; t0's syscall has completed by then, so it rejoins.
	t1.Cycle = 450
	t1.Record(OpSyscall, 0, 450, 5000)
	round2 := s.ResolveRound(round1, 0, 1000, nil, nil)
	if len(round2) != 1 || round2[0].Thread.ID != t0.ID {
		t.Fatalf("t0 should rejoin after its syscall completes, got %+v", round2)
	}
	if t0.Cycle != 400 {
		t.Fatalf("rejoining thread's clock should reflect the wake cycle, got %d", t0.Cycle)
	}
	if s.SyscallBlocks.Load() != 2 {
		t.Fatalf("both syscalls should be counted, got %d", s.SyscallBlocks.Load())
	}
}

func TestResolveRoundHonoursAffinityOnFreedCores(t *testing.T) {
	s := NewScheduler(2)
	w := testWorkload(3, 10)
	p := &Process{ID: 0}
	p.Threads = append(p.Threads,
		&Thread{Stream: w.NewThread(0)},
		&Thread{Stream: w.NewThread(1)},
		&Thread{Stream: w.NewThread(2), Affinity: []int{0}})
	s.AddProcess(p)
	asg := s.ScheduleInterval(0)
	if len(asg) != 2 {
		t.Fatalf("two cores fit two threads")
	}
	// Core 1's thread blocks; the pinned thread may not take core 1.
	t1 := s.Thread(1)
	t1.Cycle = 50
	t1.Record(OpSyscall, 0, 50, 100000)
	next := s.ResolveRound(asg, 0, 1000, nil, nil)
	for _, a := range next {
		if a.Thread.ID == 2 {
			t.Fatalf("pinned thread must not be placed on core 1")
		}
	}
	if s.Thread(2).State != StateRunnable {
		t.Fatalf("pinned thread should stay runnable in the queue")
	}
}

func TestResolveRoundRespectsIntervalEnd(t *testing.T) {
	s := NewScheduler(1)
	s.AddWorkload(testWorkload(2, 10))
	asg := s.ScheduleInterval(0)
	t0 := s.Thread(0)
	t0.Cycle = 990
	t0.Record(OpSyscall, 0, 990, 100000)
	// The core's clock has passed the interval end: no join is possible.
	next := s.ResolveRound(asg, 0, 1000, []uint64{1100}, nil)
	if len(next) != 0 {
		t.Fatalf("no thread can run before the interval ends, got %+v", next)
	}
	if s.Thread(1).State != StateRunnable {
		t.Fatalf("unplaced thread should stay runnable for the next interval")
	}
}

func TestEndIntervalTimeMultiplexes(t *testing.T) {
	s := NewScheduler(2)
	s.AddWorkload(testWorkload(4, 10))
	asg := s.ScheduleInterval(0)
	for _, a := range asg {
		a.Thread.Cycle = 1000
	}
	s.EndInterval(1000)
	for _, a := range asg {
		if a.Thread.State != StateRunnable {
			t.Fatalf("oversubscribed threads should be descheduled at the interval end")
		}
	}
	asg2 := s.ScheduleInterval(1000)
	for _, a := range asg2 {
		if a.Thread.ID != 2 && a.Thread.ID != 3 {
			t.Fatalf("waiting threads should get the cores next interval, got thread %d", a.Thread.ID)
		}
	}
}

func TestRunnableAndLiveCounts(t *testing.T) {
	s := NewScheduler(2)
	s.AddWorkload(testWorkload(3, 10))
	if s.NumRunnable() != 3 || s.LiveThreads() != 3 {
		t.Fatalf("counts: runnable=%d live=%d", s.NumRunnable(), s.LiveThreads())
	}
	asg := s.ScheduleInterval(0)
	if s.NumRunnable() != 1 {
		t.Fatalf("two placed threads leave one runnable, got %d", s.NumRunnable())
	}
	s.OnDone(asg[0].Thread, 100)
	if s.LiveThreads() != 2 {
		t.Fatalf("done thread should leave the live count, got %d", s.LiveThreads())
	}
	if _, ok := s.NextSyscallWake(); ok {
		t.Fatalf("no syscall-blocked threads yet")
	}
	s.OnBlockedSyscall(asg[1].Thread, 200, 500)
	if wake, ok := s.NextSyscallWake(); !ok || wake != 700 {
		t.Fatalf("next wake should be 700, got %d/%v", wake, ok)
	}
}

// TestBarrierSparseProcessIDs covers the per-process live-count table with
// caller-assigned, non-contiguous process IDs: barriers stay per-process and
// release against each process's own live count, including after threads of
// another process finish.
func TestBarrierSparseProcessIDs(t *testing.T) {
	s := NewScheduler(4)
	mk := func(id, threads int) *Process {
		w := testWorkload(threads, 10)
		p := &Process{ID: id, Name: "p"}
		for i := 0; i < threads; i++ {
			p.Threads = append(p.Threads, &Thread{Stream: w.NewThread(i)})
		}
		s.AddProcess(p)
		return p
	}
	pa := mk(3, 2) // sparse IDs: 3 and 9
	pb := mk(9, 2)
	s.ScheduleInterval(0)

	// Process 9's first thread finishes; its barrier then needs only one
	// arrival, while process 3 still needs both of its threads.
	s.OnDone(pb.Threads[0], 10)
	s.OnBarrier(pa.Threads[0], 0, 100)
	if pa.Threads[0].State != StateBlockedBarrier {
		t.Fatalf("process 3 barrier must wait for its second thread")
	}
	s.OnBarrier(pb.Threads[1], 0, 200)
	if pb.Threads[1].State != StateRunnable {
		t.Fatalf("process 9's sole live thread should pass its barrier")
	}
	s.OnBarrier(pa.Threads[1], 0, 300)
	if pa.Threads[0].State != StateRunnable || pa.Threads[0].Cycle != 300 {
		t.Fatalf("process 3 barrier should release both threads at cycle 300")
	}
}
