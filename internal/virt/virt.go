// Package virt implements the lightweight user-level virtualization layer
// that is the paper's third contribution (Section 3.3): the machinery that
// lets complex workloads — multiprocess applications, programs with more
// threads than cores, client-server programs that block in the kernel, and
// timing-sensitive code — run on a user-level simulator.
//
// It provides:
//
//   - a simulated process/thread model with a round-robin scheduler that
//     supports per-process and per-thread core affinities and thread
//     oversubscription (more software threads than simulated cores);
//   - synchronization state (locks, workload barriers) resolved against
//     simulated time, so lock contention and barrier waits shape the
//     simulated schedule exactly as futexes shape a native run;
//   - blocking-syscall handling: threads that enter a blocking system call
//     leave the interval barrier and rejoin when the call completes, so the
//     rest of the simulation keeps advancing (the paper's join/leave
//     mechanism);
//   - timing virtualization (a virtual rdtsc/time source tied to simulated
//     cycles) and system-view virtualization (a virtualized CPUID/procfs
//     description of the simulated machine);
//   - per-process fast-forwarding and magic-op handling.
//
// # Scheduler sharding and mid-interval rescheduling
//
// The scheduler is sharded: lock state lives in hash-sharded tables behind
// per-shard mutexes, barrier state behind its own mutex, the run queue
// behind a small queue mutex, per-core run slots are plain slots touched
// only by the (serialized) scheduling entry points, and the runnable/live
// thread counts are atomics. The bound-weave driver never takes any of
// these locks on its per-block hot path: bound workers record
// synchronization operations thread-locally (Thread.Record) and the driver
// resolves them in deterministic simulated-time order — sorted by (cycle,
// thread ID, program order) — at mid-interval round boundaries
// (ResolveRound). A thread that blocks on a lock or syscall therefore frees
// its core *within* the interval, and ResolveRound immediately pulls the
// next runnable thread onto the freed core (the paper's join/leave applied
// inside the interval, not just at its edges). Because every scheduling
// decision depends only on simulated state, schedules are reproducible for
// a fixed seed regardless of GOMAXPROCS or host thread count.
package virt

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"zsim/internal/trace"
)

// ThreadState is the scheduling state of a simulated software thread.
type ThreadState uint8

// Thread states.
const (
	StateRunnable ThreadState = iota
	StateRunning
	StateBlockedLock
	StateBlockedBarrier
	StateBlockedSyscall
	StateFastForward
	StateDone
)

// String returns a short name for the state.
func (s ThreadState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlockedLock:
		return "blocked-lock"
	case StateBlockedBarrier:
		return "blocked-barrier"
	case StateBlockedSyscall:
		return "blocked-syscall"
	case StateFastForward:
		return "fast-forward"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// OpKind identifies a synchronization operation recorded by a bound worker.
type OpKind uint8

// Synchronization operation kinds, in the order the trace emits them.
const (
	OpNone OpKind = iota
	// OpDone marks the thread's stream as finished.
	OpDone
	// OpBarrier is an arrival at workload barrier ID.
	OpBarrier
	// OpSyscall enters a blocking system call for Arg cycles.
	OpSyscall
	// OpLockAcquire attempts to acquire lock ID; the thread pauses until the
	// round's arbitration grants or blocks it.
	OpLockAcquire
	// OpLockRelease releases lock ID; the thread keeps executing.
	OpLockRelease
)

// PendingOp is one synchronization operation recorded during a bound round,
// to be resolved deterministically at the next round boundary.
type PendingOp struct {
	Kind  OpKind
	ID    int    // lock or barrier identifier
	Cycle uint64 // simulated cycle the operation occurred at
	Arg   uint64 // extra operand (blocking-syscall duration)
}

// Thread is one simulated software thread: an instruction stream plus
// scheduling state. Threads belong to a Process.
type Thread struct {
	ID     int
	Proc   int
	Stream *trace.Thread
	State  ThreadState
	// Affinity restricts the cores this thread may run on (nil/empty = any).
	Affinity []int
	// Cycle is the thread's virtual time: the cycle of the core it last ran
	// on when it was descheduled (or blocked).
	Cycle uint64
	// WakeCycle is when a syscall-blocked thread becomes runnable again.
	WakeCycle uint64
	// WaitLock is the lock the thread is blocked on (when StateBlockedLock).
	WaitLock int
	// FastForwardBlocks is the number of blocks to skip at near-native speed
	// before detailed simulation starts for this thread.
	FastForwardBlocks int

	// Core is the per-core run slot the thread currently occupies (-1 when
	// not placed). It makes descheduling O(1) instead of a slot scan.
	Core int

	// queued marks run-queue membership (guarded by the scheduler's queue
	// mutex), replacing the per-call dedup map of the old design.
	queued bool

	// pending holds the synchronization operations recorded by the bound
	// worker driving this thread during the current round. It is written
	// lock-free by the single worker that owns the thread and drained by
	// ResolveRound at the round boundary.
	pending []PendingOp
}

// Record appends a synchronization operation observed by the bound worker
// driving this thread. It touches only thread-local state: no scheduler lock
// is taken on the bound phase's hot path.
func (t *Thread) Record(kind OpKind, id int, cycle, arg uint64) {
	t.pending = append(t.pending, PendingOp{Kind: kind, ID: id, Cycle: cycle, Arg: arg})
}

// Process is a simulated OS process: a group of threads sharing a virtual
// system view. Multiprocess workloads (e.g. client-server) create several.
type Process struct {
	ID      int
	Name    string
	Threads []*Thread
	// Affinity restricts all of the process's threads to a set of cores.
	Affinity []int
}

// Scheduler is the user-level scheduler: it assigns runnable threads to
// simulated cores (round-robin, affinity-aware), tracks synchronization
// state, and implements the blocking-syscall join/leave protocol — both at
// interval boundaries (ScheduleInterval) and inside intervals
// (ResolveRound).
//
// Concurrency: the assignment entry points (ScheduleInterval, ResolveRound,
// EndInterval) must be driver-serialized; the OnXxx handlers take the
// fine-grained shard locks and may be called while other shards are in use,
// but a given thread must only be operated on by one caller at a time.
type Scheduler struct {
	numCores int
	procs    []*Process
	threads  []*Thread

	// runQueue holds runnable thread IDs in round-robin order, guarded by
	// runqMu; Thread.queued gives O(1) membership.
	runqMu   sync.Mutex
	runQueue []int

	// running[i] is the per-core run slot: the thread ID running on core i,
	// or -1.
	running []int

	// lockShards hash-partition the futex table so concurrent lock
	// operations on different locks never contend on one mutex.
	lockShards [numLockShards]lockShard

	barMu    sync.Mutex
	barriers map[barrierKey]*barrierState

	// runnable and live are atomic so the driver's idle/fast-forward checks
	// never take a lock or rescan the thread table.
	runnable atomic.Int64
	live     atomic.Int64
	// procLive[p] counts process p's live (not Done) threads, maintained by
	// setState with atomic adds (same ownership discipline as the global live
	// counter). checkBarriers reads it instead of scanning the whole thread
	// table on every barrier arrival and thread exit, which barrier-heavy
	// thousand-thread runs do thousands of times per interval.
	procLive []int64

	// wakeQ is a min-heap of (wake cycle, thread ID) over syscall-blocked
	// threads, so waking and peeking are O(log blocked) instead of an
	// O(threads) table scan per round (blocking-heavy 1,024-core runs do
	// thousands of such scans per interval). Entries are validated against
	// the thread's current state at pop time. It is only touched by the
	// driver-serialized entry points and the (driver-ordered) OnXxx handlers.
	wakeQ []wakeEntry
	// ffPending lists threads created in the fast-forward state; the first
	// wake() drains it (threads never enter fast-forward later).
	ffPending []int

	// Reusable driver-serialized scratch.
	ops       []pendingRef
	freeCores []freeCore
	wakeScr   []int
	// barScr is checkBarriers' reusable key scratch, guarded by barMu.
	barScr []int

	// Statistics (atomic: different shard holders update them concurrently).
	ContextSwitches  atomic.Uint64
	MidIntervalJoins atomic.Uint64
	LockBlocks       atomic.Uint64
	BarrierWaits     atomic.Uint64
	SyscallBlocks    atomic.Uint64
}

// numLockShards is the number of lock-table shards (a power of two).
const numLockShards = 16

type lockShard struct {
	mu sync.Mutex
	m  map[int]*lockState
}

type lockState struct {
	held    bool
	holder  int
	waiters []int // thread IDs in (deterministic) arrival order
	// releaseCycle is the simulated cycle of the most recent release, used to
	// time the hand-off to the next waiter.
	releaseCycle uint64
}

// barrierKey identifies a barrier: workload barriers are per-process.
type barrierKey struct {
	proc int
	id   int
}

type barrierState struct {
	arrived  []int
	maxCycle uint64
}

// pendingRef pairs a recorded operation with its thread for global ordering.
type pendingRef struct {
	t   *Thread
	op  PendingOp
	seq int
}

// cmpPending orders operations by (cycle, thread ID, program order): the
// deterministic arbitration order of a round.
func cmpPending(a, b pendingRef) int {
	switch {
	case a.op.Cycle != b.op.Cycle:
		if a.op.Cycle < b.op.Cycle {
			return -1
		}
		return 1
	case a.t.ID != b.t.ID:
		return a.t.ID - b.t.ID
	default:
		return a.seq - b.seq
	}
}

// freeCore is a schedulable core slot ordered by (cycle, id), so joining
// threads land on the least-advanced core first.
type freeCore struct {
	cycle uint64
	core  int
}

// wakeEntry is one syscall-blocked thread in the wake min-heap, ordered by
// (cycle, tid) for determinism.
type wakeEntry struct {
	cycle uint64
	tid   int32
}

func wakeLess(a, b wakeEntry) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.tid < b.tid
}

// pushWake inserts a thread into the wake heap.
func (s *Scheduler) pushWake(tid int, cycle uint64) {
	q := append(s.wakeQ, wakeEntry{cycle: cycle, tid: int32(tid)})
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !wakeLess(q[i], q[p]) {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	s.wakeQ = q
}

// popWakeMin removes and returns the heap minimum. Caller checks emptiness.
func (s *Scheduler) popWakeMin() wakeEntry {
	q := s.wakeQ
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && wakeLess(q[r], q[l]) {
			m = r
		}
		if !wakeLess(q[m], q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	s.wakeQ = q
	return top
}

// wakeStale reports whether a heap entry no longer describes a live
// syscall-block (defensive: no state transition currently invalidates an
// entry without popping it).
func (s *Scheduler) wakeStale(e wakeEntry) bool {
	t := s.threads[e.tid]
	return t.State != StateBlockedSyscall || t.WakeCycle != e.cycle
}

// drainWakeQ pops every entry whose wake cycle satisfies the predicate
// bound (strict selects cycle < bound, otherwise cycle <= bound) into the
// reusable scratch, sorted by thread ID — the same order the previous
// thread-table scan woke threads in, so schedules are unchanged.
func (s *Scheduler) drainWakeQ(bound uint64, strict bool) []int {
	ids := s.wakeScr[:0]
	for len(s.wakeQ) > 0 {
		top := s.wakeQ[0]
		if s.wakeStale(top) {
			s.popWakeMin()
			continue
		}
		if strict {
			if top.cycle >= bound {
				break
			}
		} else if top.cycle > bound {
			break
		}
		s.popWakeMin()
		ids = append(ids, int(top.tid))
	}
	slices.Sort(ids)
	s.wakeScr = ids
	return ids
}

// NewScheduler creates a scheduler for a chip with numCores cores.
func NewScheduler(numCores int) *Scheduler {
	if numCores < 1 {
		numCores = 1
	}
	s := &Scheduler{
		numCores: numCores,
		running:  make([]int, numCores),
		barriers: make(map[barrierKey]*barrierState),
	}
	for i := range s.lockShards {
		s.lockShards[i].m = make(map[int]*lockState)
	}
	for i := range s.running {
		s.running[i] = -1
	}
	return s
}

// NumCores returns the number of simulated cores.
func (s *Scheduler) NumCores() int { return s.numCores }

// Reset restores the scheduler to its just-constructed (empty) state for
// warm-simulator reuse: all processes, threads, synchronization state and
// statistics are dropped while every slice, map and shard keeps its
// capacity, so re-adding the same workloads allocates (almost) nothing. The
// scheduler must be quiescent (no concurrent entry points).
func (s *Scheduler) Reset() {
	s.procs = s.procs[:0]
	s.threads = s.threads[:0]
	s.runQueue = s.runQueue[:0]
	for i := range s.running {
		s.running[i] = -1
	}
	for i := range s.lockShards {
		clear(s.lockShards[i].m)
	}
	clear(s.barriers)
	s.runnable.Store(0)
	s.live.Store(0)
	s.procLive = s.procLive[:0]
	s.wakeQ = s.wakeQ[:0]
	s.ffPending = s.ffPending[:0]
	s.ops = s.ops[:0]
	s.freeCores = s.freeCores[:0]
	s.wakeScr = s.wakeScr[:0]
	s.barScr = s.barScr[:0]
	s.ContextSwitches.Store(0)
	s.MidIntervalJoins.Store(0)
	s.LockBlocks.Store(0)
	s.BarrierWaits.Store(0)
	s.SyscallBlocks.Store(0)
}

// AddProcess registers a process and its threads. Threads inherit the
// process's affinity unless they have their own.
func (s *Scheduler) AddProcess(p *Process) {
	s.procs = append(s.procs, p)
	for p.ID >= 0 && len(s.procLive) <= p.ID {
		s.procLive = append(s.procLive, 0)
	}
	for _, t := range p.Threads {
		if len(t.Affinity) == 0 {
			t.Affinity = p.Affinity
		}
		t.ID = len(s.threads)
		t.Proc = p.ID
		t.Core = -1
		s.threads = append(s.threads, t)
		s.live.Add(1)
		if p.ID >= 0 {
			s.procLive[p.ID]++
		}
		if t.FastForwardBlocks > 0 {
			t.State = StateFastForward
			s.ffPending = append(s.ffPending, t.ID)
		} else {
			t.State = StateRunnable
			s.runnable.Add(1)
		}
		s.enqueue(t.ID)
	}
}

// AddWorkload is a convenience that wraps a trace.Workload's threads into a
// single process with no affinity restrictions.
func (s *Scheduler) AddWorkload(w *trace.Workload) *Process {
	p := &Process{ID: len(s.procs), Name: w.Name}
	for i := 0; i < w.Threads; i++ {
		p.Threads = append(p.Threads, &Thread{Stream: w.NewThread(i)})
	}
	s.AddProcess(p)
	return p
}

// Thread returns the thread with the given ID.
func (s *Scheduler) Thread(id int) *Thread { return s.threads[id] }

// NumThreads returns the total number of software threads.
func (s *Scheduler) NumThreads() int { return len(s.threads) }

// LiveThreads returns the number of threads that are not Done (an atomic
// snapshot; no thread-table scan).
func (s *Scheduler) LiveThreads() int { return int(s.live.Load()) }

// NumRunnable returns the number of runnable threads (atomic snapshot).
func (s *Scheduler) NumRunnable() int { return int(s.runnable.Load()) }

// SchedCounts is an atomic snapshot of the scheduler's statistics counters
// and thread-population gauges, for telemetry publication.
type SchedCounts struct {
	Live             int
	Runnable         int
	ContextSwitches  uint64
	MidIntervalJoins uint64
	LockBlocks       uint64
	BarrierWaits     uint64
	SyscallBlocks    uint64
}

// Counts snapshots the scheduler's counters. Safe to call concurrently with
// scheduling; each field is individually atomic.
func (s *Scheduler) Counts() SchedCounts {
	return SchedCounts{
		Live:             int(s.live.Load()),
		Runnable:         int(s.runnable.Load()),
		ContextSwitches:  s.ContextSwitches.Load(),
		MidIntervalJoins: s.MidIntervalJoins.Load(),
		LockBlocks:       s.LockBlocks.Load(),
		BarrierWaits:     s.BarrierWaits.Load(),
		SyscallBlocks:    s.SyscallBlocks.Load(),
	}
}

// setState transitions a thread's state, maintaining the runnable and live
// counters. Callers must own the thread (one scheduling context at a time).
func (s *Scheduler) setState(t *Thread, st ThreadState) {
	if t.State == st {
		return
	}
	if t.State == StateRunnable {
		s.runnable.Add(-1)
	}
	if st == StateRunnable {
		s.runnable.Add(1)
	}
	if st == StateDone {
		s.live.Add(-1)
		if t.Proc >= 0 && t.Proc < len(s.procLive) {
			atomic.AddInt64(&s.procLive[t.Proc], -1)
		}
	}
	t.State = st
}

// enqueue appends a thread to the run queue if it is not already a member.
func (s *Scheduler) enqueue(tid int) {
	t := s.threads[tid]
	s.runqMu.Lock()
	if !t.queued {
		t.queued = true
		s.runQueue = append(s.runQueue, tid)
	}
	s.runqMu.Unlock()
}

// allowedOn reports whether thread t may run on the given core.
func allowedOn(t *Thread, core int) bool {
	if len(t.Affinity) == 0 {
		return true
	}
	for _, c := range t.Affinity {
		if c == core {
			return true
		}
	}
	return false
}

// Assignment maps one core to the thread it runs this interval.
type Assignment struct {
	Core   int
	Thread *Thread
}

// ScheduleInterval assigns runnable threads to cores for the next interval
// and returns the assignments. Threads already running stay on their core
// unless they blocked; free cores pull from the run queue round-robin,
// honouring affinities. Oversubscribed threads take turns across intervals.
func (s *Scheduler) ScheduleInterval(now uint64) []Assignment {
	return s.ScheduleIntervalInto(now, nil)
}

// ScheduleIntervalInto is ScheduleInterval writing into a reusable buffer, so
// the steady-state interval loop performs no allocation.
func (s *Scheduler) ScheduleIntervalInto(now uint64, out []Assignment) []Assignment {
	// Wake syscall-blocked and fast-forwarding threads whose time has come.
	s.wake(now)

	// Threads still marked running keep their cores; everything else vacates
	// its slot.
	nFree := 0
	for c := 0; c < s.numCores; c++ {
		tid := s.running[c]
		if tid >= 0 {
			t := s.threads[tid]
			if t.State == StateRunning {
				continue
			}
			s.running[c] = -1
			if t.Core == c {
				t.Core = -1
			}
		}
		nFree++
	}

	// Fill free cores from the run queue (round-robin, affinity-aware,
	// lowest-numbered allowed core first). The queue is compacted in place:
	// placed and no-longer-runnable entries drop out, the rest keep order.
	if nFree > 0 {
		s.runqMu.Lock()
		q := s.runQueue
		w := 0
		for _, tid := range q {
			t := s.threads[tid]
			if t.State != StateRunnable {
				t.queued = false
				continue
			}
			core := -1
			if nFree > 0 {
				for c := 0; c < s.numCores; c++ {
					if s.running[c] < 0 && allowedOn(t, c) {
						core = c
						break
					}
				}
			}
			if core < 0 {
				q[w] = tid
				w++
				continue
			}
			s.place(t, core)
			nFree--
		}
		s.runQueue = q[:w]
		s.runqMu.Unlock()
	}

	// Emit the interval's assignments in core order.
	out = out[:0]
	for c := 0; c < s.numCores; c++ {
		if tid := s.running[c]; tid >= 0 && s.threads[tid].State == StateRunning {
			out = append(out, Assignment{Core: c, Thread: s.threads[tid]})
		}
	}
	return out
}

// place puts a runnable thread onto a free core slot. Callers hold runqMu.
func (s *Scheduler) place(t *Thread, core int) {
	s.running[core] = t.ID
	t.Core = core
	t.queued = false
	s.setState(t, StateRunning)
	s.ContextSwitches.Add(1)
}

// ResolveRound is the mid-interval scheduler: called by the bound-weave
// driver after every round of bound execution, it (1) resolves the
// synchronization operations the round's workers recorded, in deterministic
// (cycle, thread, program-order) order; (2) wakes syscall-blocked threads
// whose wake time falls inside the interval so they rejoin without waiting
// for the next barrier; and (3) computes the next round's assignments:
// threads that paused for lock arbitration and were granted resume on their
// cores, and freed cores immediately pull runnable threads from the queue
// (the join/leave scheduler applied inside the interval). coreCycle[i] is
// core i's current clock (nil treats every core as being at now). The
// returned slice is empty once nothing can make progress before intervalEnd.
func (s *Scheduler) ResolveRound(ran []Assignment, now, intervalEnd uint64, coreCycle []uint64, out []Assignment) []Assignment {
	// 1. Gather and arbitrate the round's operations deterministically.
	s.ops = s.ops[:0]
	for _, a := range ran {
		for i := range a.Thread.pending {
			s.ops = append(s.ops, pendingRef{t: a.Thread, op: a.Thread.pending[i], seq: i})
		}
	}
	slices.SortFunc(s.ops, cmpPending)
	for _, r := range s.ops {
		t, op := r.t, r.op
		switch op.Kind {
		case OpDone:
			s.OnDone(t, op.Cycle)
		case OpBarrier:
			s.OnBarrier(t, op.ID, op.Cycle)
		case OpSyscall:
			s.OnBlockedSyscall(t, op.Cycle, op.Arg)
		case OpLockAcquire:
			// Granted acquires leave the thread Running on its core, so it
			// resumes below; contended ones block it and free the core.
			s.OnLockAcquire(t, op.ID, op.Cycle)
		case OpLockRelease:
			s.OnLockRelease(t, op.ID, op.Cycle)
		}
	}
	for _, a := range ran {
		a.Thread.pending = a.Thread.pending[:0]
	}

	// 2. Mid-interval syscall joins: wake threads whose syscall completes
	// inside this interval; they become placeable immediately. The wake heap
	// makes this O(woken log blocked) instead of an O(threads) scan.
	for _, tid := range s.drainWakeQ(intervalEnd, true) {
		t := s.threads[tid]
		s.setState(t, StateRunnable)
		if t.Cycle < t.WakeCycle {
			t.Cycle = t.WakeCycle
		}
		s.enqueue(t.ID)
	}

	// 3a. Threads still running with time left resume on their cores
	// (granted lock acquires). Threads that reached intervalEnd keep their
	// slot but are not re-run.
	out = out[:0]
	for c := 0; c < s.numCores; c++ {
		if tid := s.running[c]; tid >= 0 {
			t := s.threads[tid]
			if t.State == StateRunning && t.Cycle < intervalEnd {
				out = append(out, Assignment{Core: c, Thread: t})
			}
		}
	}

	// 3b. Freed cores that can still execute part of the interval pull
	// runnable threads, least-advanced core first.
	s.freeCores = s.freeCores[:0]
	for c := 0; c < s.numCores; c++ {
		if s.running[c] >= 0 {
			continue
		}
		cyc := now
		if coreCycle != nil && coreCycle[c] > cyc {
			cyc = coreCycle[c]
		}
		if cyc >= intervalEnd {
			continue
		}
		// Insertion keeps (cycle, id) order; the list is small.
		i := len(s.freeCores)
		s.freeCores = append(s.freeCores, freeCore{cycle: cyc, core: c})
		for i > 0 && s.freeCores[i-1].cycle > cyc {
			s.freeCores[i-1], s.freeCores[i] = s.freeCores[i], s.freeCores[i-1]
			i--
		}
	}
	if len(s.freeCores) > 0 {
		s.runqMu.Lock()
		q := s.runQueue
		w := 0
		for _, tid := range q {
			t := s.threads[tid]
			if t.State != StateRunnable {
				t.queued = false
				continue
			}
			if len(s.freeCores) == 0 || t.Cycle >= intervalEnd {
				q[w] = tid
				w++
				continue
			}
			placed := false
			for i, fc := range s.freeCores {
				if !allowedOn(t, fc.core) {
					continue
				}
				start := fc.cycle
				if t.Cycle > start {
					start = t.Cycle
				}
				if start >= intervalEnd {
					continue
				}
				s.place(t, fc.core)
				s.MidIntervalJoins.Add(1)
				out = append(out, Assignment{Core: fc.core, Thread: t})
				s.freeCores = append(s.freeCores[:i], s.freeCores[i+1:]...)
				placed = true
				break
			}
			if !placed {
				q[w] = tid
				w++
			}
		}
		s.runQueue = q[:w]
		s.runqMu.Unlock()
	}
	return out
}

// EndInterval applies end-of-interval time multiplexing: when there are more
// live software threads than cores, threads that completed the interval are
// descheduled (back of the run queue) so waiting threads get cores next
// interval.
func (s *Scheduler) EndInterval(now uint64) {
	if s.live.Load() <= int64(s.numCores) {
		return
	}
	for c := 0; c < s.numCores; c++ {
		tid := s.running[c]
		if tid < 0 {
			continue
		}
		if t := s.threads[tid]; t.State == StateRunning {
			// t.Cycle is where the thread's last block actually ended — it
			// may overshoot the interval end, and that overshoot must be
			// kept or the cycles would be simulated again next placement.
			s.Deschedule(t, t.Cycle)
		}
	}
}

// NextSyscallWake returns the earliest wake cycle over all syscall-blocked
// threads, or ok=false when no thread is blocked in a syscall. The driver
// uses it to fast-forward idle intervals directly to the next join instead
// of stepping empty intervals one by one. With the wake heap this is an O(1)
// peek (plus lazy removal of stale entries).
func (s *Scheduler) NextSyscallWake() (cycle uint64, ok bool) {
	for len(s.wakeQ) > 0 {
		top := s.wakeQ[0]
		if s.wakeStale(top) {
			s.popWakeMin()
			continue
		}
		return top.cycle, true
	}
	return 0, false
}

// wake transitions syscall-blocked threads whose wake time has passed and
// fast-forwarding threads back to runnable. Wakeable threads come from the
// wake heap (drained in thread-ID order, matching the table scan this
// replaces); fast-forwarding threads only exist before their first wake and
// are drained from ffPending.
func (s *Scheduler) wake(now uint64) {
	for _, tid := range s.drainWakeQ(now, false) {
		t := s.threads[tid]
		s.setState(t, StateRunnable)
		if t.Cycle < t.WakeCycle {
			t.Cycle = t.WakeCycle
		}
		s.enqueue(t.ID)
	}
	if len(s.ffPending) == 0 {
		return
	}
	for _, tid := range s.ffPending {
		t := s.threads[tid]
		if t.State != StateFastForward {
			continue
		}
		// Fast-forwarding threads skip their warmup blocks at near-native
		// speed (no timing): consume them here, outside timed simulation.
		for t.FastForwardBlocks > 0 {
			b := t.Stream.NextBlock()
			t.FastForwardBlocks--
			if b.Sync == trace.SyncDone {
				s.setState(t, StateDone)
				break
			}
		}
		if t.State != StateDone {
			s.setState(t, StateRunnable)
			s.enqueue(t.ID)
		}
	}
	s.ffPending = s.ffPending[:0]
}

// Deschedule removes a thread from its core (it keeps its runnable state and
// goes to the back of the run queue) — used for time multiplexing when there
// are more threads than cores.
func (s *Scheduler) Deschedule(t *Thread, now uint64) {
	t.Cycle = now
	if t.State == StateRunning {
		s.setState(t, StateRunnable)
		s.enqueue(t.ID)
	}
	s.clearCore(t)
}

// clearCore vacates the thread's run slot (O(1) via Thread.Core).
func (s *Scheduler) clearCore(t *Thread) {
	if t.Core >= 0 && t.Core < len(s.running) && s.running[t.Core] == t.ID {
		s.running[t.Core] = -1
	}
	t.Core = -1
}

// shard returns the lock shard owning lockID.
func (s *Scheduler) shard(lockID int) *lockShard {
	return &s.lockShards[uint(lockID)%numLockShards]
}

// OnDone marks a thread as finished.
func (s *Scheduler) OnDone(t *Thread, now uint64) {
	t.Cycle = now
	s.setState(t, StateDone)
	s.clearCore(t)
	// A finishing thread behaves like a lock holder that never returns;
	// release anything it held (defensive: well-formed workloads release
	// before finishing). Held locks are collected and released in ascending
	// ID order — map iteration order must not leak into the schedule.
	var held []int
	for i := range s.lockShards {
		sh := &s.lockShards[i]
		sh.mu.Lock()
		for id, l := range sh.m {
			if l.held && l.holder == t.ID {
				held = append(held, id)
			}
		}
		sh.mu.Unlock()
	}
	slices.Sort(held)
	for _, id := range held {
		s.releaseLock(id, now)
	}
	// Barriers it participated in must not wait for it.
	s.checkBarriers(now)
}

// OnLockAcquire attempts to acquire the lock for the thread at the given
// cycle. It returns true if the lock was acquired; otherwise the thread is
// blocked (futex-style) and will be made runnable when the lock is released.
func (s *Scheduler) OnLockAcquire(t *Thread, lockID int, now uint64) bool {
	sh := s.shard(lockID)
	sh.mu.Lock()
	l := sh.m[lockID]
	if l == nil {
		l = &lockState{}
		sh.m[lockID] = l
	}
	if !l.held {
		l.held = true
		l.holder = t.ID
		sh.mu.Unlock()
		return true
	}
	l.waiters = append(l.waiters, t.ID)
	sh.mu.Unlock()
	s.LockBlocks.Add(1)
	s.setState(t, StateBlockedLock)
	t.WaitLock = lockID
	t.Cycle = now
	s.clearCore(t)
	return false
}

// OnLockRelease releases the lock at the given cycle, waking the oldest
// waiter (which inherits the release cycle if it is later than its own).
func (s *Scheduler) OnLockRelease(t *Thread, lockID int, now uint64) {
	sh := s.shard(lockID)
	sh.mu.Lock()
	l := sh.m[lockID]
	if l == nil || !l.held || l.holder != t.ID {
		sh.mu.Unlock()
		return // tolerate spurious releases
	}
	sh.mu.Unlock()
	s.releaseLock(lockID, now)
}

func (s *Scheduler) releaseLock(lockID int, now uint64) {
	sh := s.shard(lockID)
	sh.mu.Lock()
	l := sh.m[lockID]
	l.held = false
	l.releaseCycle = now
	next := -1
	if len(l.waiters) > 0 {
		next = l.waiters[0]
		// Compact in place so the slice keeps its capacity (popping via
		// waiters[1:] would leak capacity and re-allocate forever).
		copy(l.waiters, l.waiters[1:])
		l.waiters = l.waiters[:len(l.waiters)-1]
		l.held = true
		l.holder = next
	}
	sh.mu.Unlock()
	if next < 0 {
		return
	}
	nt := s.threads[next]
	s.setState(nt, StateRunnable)
	if nt.Cycle < now {
		nt.Cycle = now
	}
	s.enqueue(next)
}

// HoldsLock reports whether the thread currently holds the lock (test helper).
func (s *Scheduler) HoldsLock(t *Thread, lockID int) bool {
	sh := s.shard(lockID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l := sh.m[lockID]
	return l != nil && l.held && l.holder == t.ID
}

// OnBarrier records the thread's arrival at a workload barrier. When every
// live thread of the same process has arrived, all are released with their
// cycles advanced to the latest arrival.
func (s *Scheduler) OnBarrier(t *Thread, barrierID int, now uint64) {
	key := barrierKey{proc: t.Proc, id: 0} // arrival-matched: any barrier id pairs up
	_ = barrierID
	s.barMu.Lock()
	b := s.barriers[key]
	if b == nil {
		b = &barrierState{}
		s.barriers[key] = b
	}
	b.arrived = append(b.arrived, t.ID)
	if now > b.maxCycle {
		b.maxCycle = now
	}
	s.barMu.Unlock()
	s.setState(t, StateBlockedBarrier)
	t.Cycle = now
	s.BarrierWaits.Add(1)
	s.clearCore(t)
	s.checkBarriers(now)
}

// checkBarriers releases any barrier at which every live thread of the
// process has arrived. Barriers are visited in ascending process order so
// the release order (and thus the run queue) is deterministic. The live
// count comes from the per-process counter setState maintains, so a release
// check is O(arrived) instead of an O(threads) table scan.
func (s *Scheduler) checkBarriers(now uint64) {
	s.barMu.Lock()
	keys := s.barScr[:0]
	for key := range s.barriers {
		keys = append(keys, key.proc)
	}
	slices.Sort(keys)
	for _, proc := range keys {
		key := barrierKey{proc: proc, id: 0}
		b := s.barriers[key]
		if b == nil {
			continue
		}
		live := 0
		if proc >= 0 && proc < len(s.procLive) {
			live = int(atomic.LoadInt64(&s.procLive[proc]))
		} else {
			// Out-of-range (e.g. negative caller-assigned) process IDs keep
			// the pre-counter behavior: count the process's live threads.
			for _, t := range s.threads {
				if t.Proc == proc && t.State != StateDone {
					live++
				}
			}
		}
		if live == 0 || len(b.arrived) < live {
			continue
		}
		for _, tid := range b.arrived {
			t := s.threads[tid]
			if t.State != StateBlockedBarrier {
				continue
			}
			s.setState(t, StateRunnable)
			if t.Cycle < b.maxCycle {
				t.Cycle = b.maxCycle
			}
			s.enqueue(tid)
		}
		delete(s.barriers, key)
	}
	s.barScr = keys[:0]
	s.barMu.Unlock()
}

// OnBlockedSyscall marks the thread as blocked in the kernel for the given
// number of cycles; it leaves the interval barrier and rejoins when the
// syscall completes.
func (s *Scheduler) OnBlockedSyscall(t *Thread, now, durationCycles uint64) {
	s.setState(t, StateBlockedSyscall)
	t.Cycle = now
	t.WakeCycle = now + durationCycles
	s.pushWake(t.ID, t.WakeCycle)
	s.SyscallBlocks.Add(1)
	s.clearCore(t)
}
