// Package virt implements the lightweight user-level virtualization layer
// that is the paper's third contribution (Section 3.3): the machinery that
// lets complex workloads — multiprocess applications, programs with more
// threads than cores, client-server programs that block in the kernel, and
// timing-sensitive code — run on a user-level simulator.
//
// It provides:
//
//   - a simulated process/thread model with a round-robin scheduler that
//     supports per-process and per-thread core affinities and thread
//     oversubscription (more software threads than simulated cores);
//   - synchronization state (locks, workload barriers) resolved against
//     simulated time, so lock contention and barrier waits shape the
//     simulated schedule exactly as futexes shape a native run;
//   - blocking-syscall handling: threads that enter a blocking system call
//     leave the interval barrier and rejoin when the call completes, so the
//     rest of the simulation keeps advancing (the paper's join/leave
//     mechanism);
//   - timing virtualization (a virtual rdtsc/time source tied to simulated
//     cycles) and system-view virtualization (a virtualized CPUID/procfs
//     description of the simulated machine);
//   - per-process fast-forwarding and magic-op handling.
package virt

import (
	"fmt"
	"sort"

	"zsim/internal/trace"
)

// ThreadState is the scheduling state of a simulated software thread.
type ThreadState uint8

// Thread states.
const (
	StateRunnable ThreadState = iota
	StateRunning
	StateBlockedLock
	StateBlockedBarrier
	StateBlockedSyscall
	StateFastForward
	StateDone
)

// String returns a short name for the state.
func (s ThreadState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlockedLock:
		return "blocked-lock"
	case StateBlockedBarrier:
		return "blocked-barrier"
	case StateBlockedSyscall:
		return "blocked-syscall"
	case StateFastForward:
		return "fast-forward"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Thread is one simulated software thread: an instruction stream plus
// scheduling state. Threads belong to a Process.
type Thread struct {
	ID     int
	Proc   int
	Stream *trace.Thread
	State  ThreadState
	// Affinity restricts the cores this thread may run on (nil/empty = any).
	Affinity []int
	// Cycle is the thread's virtual time: the cycle of the core it last ran
	// on when it was descheduled (or blocked).
	Cycle uint64
	// WakeCycle is when a syscall-blocked thread becomes runnable again.
	WakeCycle uint64
	// WaitLock is the lock the thread is blocked on (when StateBlockedLock).
	WaitLock int
	// FastForwardBlocks is the number of blocks to skip at near-native speed
	// before detailed simulation starts for this thread.
	FastForwardBlocks int
}

// Process is a simulated OS process: a group of threads sharing a virtual
// system view. Multiprocess workloads (e.g. client-server) create several.
type Process struct {
	ID      int
	Name    string
	Threads []*Thread
	// Affinity restricts all of the process's threads to a set of cores.
	Affinity []int
}

// Scheduler is the user-level scheduler: it assigns runnable threads to
// simulated cores each interval (round-robin, affinity-aware), tracks
// synchronization state, and implements the blocking-syscall join/leave
// protocol.
type Scheduler struct {
	numCores int
	procs    []*Process
	threads  []*Thread

	// runQueue holds runnable thread IDs in round-robin order.
	runQueue []int
	// running[i] is the thread ID running on core i, or -1.
	running []int

	locks    map[int]*lockState
	barriers map[barrierKey]*barrierState

	// Statistics.
	ContextSwitches uint64
	LockBlocks      uint64
	BarrierWaits    uint64
	SyscallBlocks   uint64
}

type lockState struct {
	held    bool
	holder  int
	waiters []int // thread IDs in FIFO order
	// releaseCycle is the simulated cycle of the most recent release, used to
	// time the hand-off to the next waiter.
	releaseCycle uint64
}

// barrierKey identifies a barrier: workload barriers are per-process.
type barrierKey struct {
	proc int
	id   int
}

type barrierState struct {
	arrived  []int
	maxCycle uint64
}

// NewScheduler creates a scheduler for a chip with numCores cores.
func NewScheduler(numCores int) *Scheduler {
	if numCores < 1 {
		numCores = 1
	}
	s := &Scheduler{
		numCores: numCores,
		running:  make([]int, numCores),
		locks:    make(map[int]*lockState),
		barriers: make(map[barrierKey]*barrierState),
	}
	for i := range s.running {
		s.running[i] = -1
	}
	return s
}

// NumCores returns the number of simulated cores.
func (s *Scheduler) NumCores() int { return s.numCores }

// AddProcess registers a process and its threads. Threads inherit the
// process's affinity unless they have their own.
func (s *Scheduler) AddProcess(p *Process) {
	s.procs = append(s.procs, p)
	for _, t := range p.Threads {
		if len(t.Affinity) == 0 {
			t.Affinity = p.Affinity
		}
		t.ID = len(s.threads)
		t.Proc = p.ID
		s.threads = append(s.threads, t)
		if t.FastForwardBlocks > 0 {
			t.State = StateFastForward
		} else {
			t.State = StateRunnable
		}
		s.runQueue = append(s.runQueue, t.ID)
	}
}

// AddWorkload is a convenience that wraps a trace.Workload's threads into a
// single process with no affinity restrictions.
func (s *Scheduler) AddWorkload(w *trace.Workload) *Process {
	p := &Process{ID: len(s.procs), Name: w.Name}
	for i := 0; i < w.Threads; i++ {
		p.Threads = append(p.Threads, &Thread{Stream: w.NewThread(i)})
	}
	s.AddProcess(p)
	return p
}

// Thread returns the thread with the given ID.
func (s *Scheduler) Thread(id int) *Thread { return s.threads[id] }

// NumThreads returns the total number of software threads.
func (s *Scheduler) NumThreads() int { return len(s.threads) }

// LiveThreads returns the number of threads that are not Done.
func (s *Scheduler) LiveThreads() int {
	n := 0
	for _, t := range s.threads {
		if t.State != StateDone {
			n++
		}
	}
	return n
}

// allowedOn reports whether thread t may run on the given core.
func allowedOn(t *Thread, core int) bool {
	if len(t.Affinity) == 0 {
		return true
	}
	for _, c := range t.Affinity {
		if c == core {
			return true
		}
	}
	return false
}

// Assignment maps one core to the thread it runs this interval.
type Assignment struct {
	Core   int
	Thread *Thread
}

// ScheduleInterval assigns runnable threads to cores for the next interval
// and returns the assignments. Threads already running stay on their core
// unless they blocked; free cores pull from the run queue round-robin,
// honouring affinities. Oversubscribed threads take turns across intervals.
func (s *Scheduler) ScheduleInterval(now uint64) []Assignment {
	// Wake syscall-blocked and fast-forwarding threads whose time has come.
	s.wake(now)

	// Threads still marked running keep their cores.
	var out []Assignment
	freeCores := make([]int, 0, s.numCores)
	for c := 0; c < s.numCores; c++ {
		tid := s.running[c]
		if tid >= 0 && s.threads[tid].State == StateRunning {
			out = append(out, Assignment{Core: c, Thread: s.threads[tid]})
		} else {
			s.running[c] = -1
			freeCores = append(freeCores, c)
		}
	}

	// Fill free cores from the run queue (round-robin, affinity-aware).
	if len(freeCores) > 0 {
		for _, tid := range append([]int(nil), s.runQueue...) {
			if len(freeCores) == 0 {
				break
			}
			t := s.threads[tid]
			if t.State != StateRunnable {
				continue
			}
			for i, c := range freeCores {
				if allowedOn(t, c) {
					s.running[c] = tid
					t.State = StateRunning
					s.ContextSwitches++
					out = append(out, Assignment{Core: c, Thread: t})
					freeCores = append(freeCores[:i], freeCores[i+1:]...)
					break
				}
			}
		}
	}
	// Placed threads are now Running and are filtered out; the rest keep
	// their queue order for the next interval.
	s.runQueue = filterRunnable(s.runQueue, s.threads)

	sort.Slice(out, func(i, j int) bool { return out[i].Core < out[j].Core })
	return out
}

// filterRunnable drops queue entries that are no longer runnable.
func filterRunnable(q []int, threads []*Thread) []int {
	out := q[:0]
	seen := make(map[int]bool, len(q))
	for _, tid := range q {
		if seen[tid] {
			continue
		}
		seen[tid] = true
		if threads[tid].State == StateRunnable {
			out = append(out, tid)
		}
	}
	return out
}

// wake transitions syscall-blocked threads whose wake time has passed and
// fast-forwarding threads back to runnable.
func (s *Scheduler) wake(now uint64) {
	for _, t := range s.threads {
		switch t.State {
		case StateBlockedSyscall:
			if t.WakeCycle <= now {
				t.State = StateRunnable
				if t.Cycle < t.WakeCycle {
					t.Cycle = t.WakeCycle
				}
				s.runQueue = append(s.runQueue, t.ID)
			}
		case StateFastForward:
			// Fast-forwarding threads skip their warmup blocks at near-native
			// speed (no timing): consume them here, outside timed simulation.
			for t.FastForwardBlocks > 0 {
				b := t.Stream.NextBlock()
				t.FastForwardBlocks--
				if b.Sync == trace.SyncDone {
					t.State = StateDone
					break
				}
			}
			if t.State != StateDone {
				t.State = StateRunnable
				s.runQueue = append(s.runQueue, t.ID)
			}
		}
	}
}

// Deschedule removes a thread from its core (it keeps its runnable state and
// goes to the back of the run queue) — used for time multiplexing when there
// are more threads than cores.
func (s *Scheduler) Deschedule(t *Thread, now uint64) {
	t.Cycle = now
	if t.State == StateRunning {
		t.State = StateRunnable
		s.runQueue = append(s.runQueue, t.ID)
	}
	s.clearCore(t.ID)
}

func (s *Scheduler) clearCore(tid int) {
	for c, id := range s.running {
		if id == tid {
			s.running[c] = -1
		}
	}
}

// OnDone marks a thread as finished.
func (s *Scheduler) OnDone(t *Thread, now uint64) {
	t.Cycle = now
	t.State = StateDone
	s.clearCore(t.ID)
	// A finishing thread behaves like a lock holder that never returns;
	// release anything it held (defensive: well-formed workloads release
	// before finishing).
	for id, l := range s.locks {
		if l.held && l.holder == t.ID {
			s.releaseLock(id, now)
		}
	}
	// Barriers it participated in must not wait for it.
	s.checkBarriers(now)
}

// OnLockAcquire attempts to acquire the lock for the thread at the given
// cycle. It returns true if the lock was acquired; otherwise the thread is
// blocked (futex-style) and will be made runnable when the lock is released.
func (s *Scheduler) OnLockAcquire(t *Thread, lockID int, now uint64) bool {
	l := s.locks[lockID]
	if l == nil {
		l = &lockState{}
		s.locks[lockID] = l
	}
	if !l.held {
		l.held = true
		l.holder = t.ID
		return true
	}
	l.waiters = append(l.waiters, t.ID)
	t.State = StateBlockedLock
	t.WaitLock = lockID
	t.Cycle = now
	s.LockBlocks++
	s.clearCore(t.ID)
	return false
}

// OnLockRelease releases the lock at the given cycle, waking the oldest
// waiter (which inherits the release cycle if it is later than its own).
func (s *Scheduler) OnLockRelease(t *Thread, lockID int, now uint64) {
	l := s.locks[lockID]
	if l == nil || !l.held || l.holder != t.ID {
		return // tolerate spurious releases
	}
	s.releaseLock(lockID, now)
}

func (s *Scheduler) releaseLock(lockID int, now uint64) {
	l := s.locks[lockID]
	l.held = false
	l.releaseCycle = now
	if len(l.waiters) == 0 {
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	nt := s.threads[next]
	l.held = true
	l.holder = next
	nt.State = StateRunnable
	if nt.Cycle < now {
		nt.Cycle = now
	}
	s.runQueue = append(s.runQueue, next)
}

// HoldsLock reports whether the thread currently holds the lock (test helper).
func (s *Scheduler) HoldsLock(t *Thread, lockID int) bool {
	l := s.locks[lockID]
	return l != nil && l.held && l.holder == t.ID
}

// OnBarrier records the thread's arrival at a workload barrier. When every
// live thread of the same process has arrived, all are released with their
// cycles advanced to the latest arrival.
func (s *Scheduler) OnBarrier(t *Thread, barrierID int, now uint64) {
	key := barrierKey{proc: t.Proc, id: 0} // arrival-matched: any barrier id pairs up
	_ = barrierID
	b := s.barriers[key]
	if b == nil {
		b = &barrierState{}
		s.barriers[key] = b
	}
	b.arrived = append(b.arrived, t.ID)
	if now > b.maxCycle {
		b.maxCycle = now
	}
	t.State = StateBlockedBarrier
	t.Cycle = now
	s.BarrierWaits++
	s.clearCore(t.ID)
	s.checkBarriers(now)
}

// checkBarriers releases any barrier at which every live thread of the
// process has arrived.
func (s *Scheduler) checkBarriers(now uint64) {
	for key, b := range s.barriers {
		live := 0
		for _, t := range s.threads {
			if t.Proc == key.proc && t.State != StateDone {
				live++
			}
		}
		if live == 0 || len(b.arrived) < live {
			continue
		}
		for _, tid := range b.arrived {
			t := s.threads[tid]
			if t.State != StateBlockedBarrier {
				continue
			}
			t.State = StateRunnable
			if t.Cycle < b.maxCycle {
				t.Cycle = b.maxCycle
			}
			s.runQueue = append(s.runQueue, tid)
		}
		delete(s.barriers, key)
	}
}

// OnBlockedSyscall marks the thread as blocked in the kernel for the given
// number of cycles; it leaves the interval barrier and rejoins when the
// syscall completes.
func (s *Scheduler) OnBlockedSyscall(t *Thread, now, durationCycles uint64) {
	t.State = StateBlockedSyscall
	t.Cycle = now
	t.WakeCycle = now + durationCycles
	s.SyscallBlocks++
	s.clearCore(t.ID)
}
