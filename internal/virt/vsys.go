package virt

import "fmt"

// This file holds the timing-virtualization and system-virtualization pieces
// of Section 3.3: the virtual time sources exposed to simulated code (rdtsc,
// clock_gettime, sleeps and timeouts), the virtualized system view (CPUID,
// /proc, /sys, getcpu), and magic-op decoding.

// TimeVirtualizer translates simulated cycles into the time values the
// simulated program observes, isolating it from host time: rdtsc returns the
// simulated cycle count and wall-clock interfaces derive nanoseconds from the
// simulated frequency. Self-profiling and timeout-based code therefore sees
// time advance at simulated speed.
type TimeVirtualizer struct {
	// FreqGHz is the simulated core frequency used to convert cycles to
	// nanoseconds.
	FreqGHz float64
	// BaseNanos is the virtual epoch (the value a zero-cycle read returns).
	BaseNanos uint64

	// RdtscReads and TimeReads count virtualized reads, mirroring zsim's
	// virtualization counters.
	RdtscReads uint64
	TimeReads  uint64
}

// NewTimeVirtualizer creates a time virtualizer for the given frequency.
func NewTimeVirtualizer(freqGHz float64) *TimeVirtualizer {
	if freqGHz <= 0 {
		freqGHz = 2.0
	}
	return &TimeVirtualizer{FreqGHz: freqGHz, BaseNanos: 1_600_000_000_000_000_000}
}

// Rdtsc returns the virtualized timestamp counter for a thread running at the
// given simulated cycle.
func (tv *TimeVirtualizer) Rdtsc(cycle uint64) uint64 {
	tv.RdtscReads++
	return cycle
}

// Nanos returns the virtualized wall-clock time in nanoseconds at the given
// simulated cycle.
func (tv *TimeVirtualizer) Nanos(cycle uint64) uint64 {
	tv.TimeReads++
	return tv.BaseNanos + uint64(float64(cycle)/tv.FreqGHz)
}

// SleepCycles converts a requested sleep duration in nanoseconds into the
// simulated cycles the thread must remain blocked (used to virtualize sleep
// and timeout syscalls).
func (tv *TimeVirtualizer) SleepCycles(nanos uint64) uint64 {
	return uint64(float64(nanos) * tv.FreqGHz)
}

// SystemView is the virtualized hardware description exposed to simulated
// programs: the number of cores and cache sizes of the *simulated* chip, not
// the host. Programs that self-tune (OpenMP runtimes, JVMs, math libraries)
// read this instead of the host's CPUID//proc.
type SystemView struct {
	NumCores   int
	NumSockets int
	L1DKB      int
	L2KB       int
	L3KB       int
	VendorID   string

	// CPUIDReads and ProcReads count virtualized queries.
	CPUIDReads uint64
	ProcReads  uint64
}

// NewSystemView builds the virtualized view for a simulated chip.
func NewSystemView(numCores, l1dKB, l2KB, l3KB int) *SystemView {
	return &SystemView{
		NumCores:   numCores,
		NumSockets: 1,
		L1DKB:      l1dKB,
		L2KB:       l2KB,
		L3KB:       l3KB,
		VendorID:   "GenuineZsim",
	}
}

// CPUID returns the virtualized processor description (a simplified leaf
// model: leaf 0 returns the vendor, leaf 1 the core count, leaf 4 the cache
// sizes).
func (sv *SystemView) CPUID(leaf uint32) (eax, ebx, ecx, edx uint32) {
	sv.CPUIDReads++
	switch leaf {
	case 0:
		return 4, 0x7573696e, 0x5a65476e, 0x6d697365 // max leaf + packed vendor
	case 1:
		return uint32(sv.NumCores), uint32(sv.NumSockets), 0, 0
	case 4:
		return uint32(sv.L1DKB), uint32(sv.L2KB), uint32(sv.L3KB), 0
	default:
		return 0, 0, 0, 0
	}
}

// GetCPU returns the core the thread currently runs on (the virtualized
// getcpu/sched_getcpu syscall).
func (sv *SystemView) GetCPU(core int) int {
	sv.ProcReads++
	if core < 0 || core >= sv.NumCores {
		return 0
	}
	return core
}

// ProcCPUInfo renders a /proc/cpuinfo-style description of the simulated
// machine, the analogue of zsim's pre-generated /proc tree that open()
// redirection serves to the workload.
func (sv *SystemView) ProcCPUInfo() string {
	sv.ProcReads++
	out := ""
	for i := 0; i < sv.NumCores; i++ {
		out += fmt.Sprintf("processor\t: %d\nvendor_id\t: %s\ncache size\t: %d KB\ncpu cores\t: %d\n\n",
			i, sv.VendorID, sv.L3KB, sv.NumCores)
	}
	return out
}

// MagicOp identifies a simulator-control operation embedded in the simulated
// program as a special NOP sequence (Section 3.3, "Fast-forwarding and
// control"). Magic ops are identified at instrumentation (decode) time.
type MagicOp uint8

// Magic operations supported by the simulator.
const (
	// MagicNone means the instruction is not a magic op.
	MagicNone MagicOp = iota
	// MagicROIBegin marks the start of the region of interest: detailed
	// simulation begins here (ends fast-forwarding).
	MagicROIBegin
	// MagicROIEnd marks the end of the region of interest.
	MagicROIEnd
	// MagicHeartbeat lets workloads report forward progress to the harness.
	MagicHeartbeat
)

// String returns the magic op's name.
func (m MagicOp) String() string {
	switch m {
	case MagicNone:
		return "none"
	case MagicROIBegin:
		return "roi-begin"
	case MagicROIEnd:
		return "roi-end"
	case MagicHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("magic(%d)", uint8(m))
	}
}

// DecodeMagic interprets the immediate operand of a magic NOP.
func DecodeMagic(imm uint64) MagicOp {
	switch imm {
	case 0x5a5a0001:
		return MagicROIBegin
	case 0x5a5a0002:
		return MagicROIEnd
	case 0x5a5a0003:
		return MagicHeartbeat
	default:
		return MagicNone
	}
}
